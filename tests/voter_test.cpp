// Unit tests for the voter: field-by-field comparison semantics over
// concrete and symbolic retirement records, fork behaviour at possible
// divergences, and the guarantee that semantically-equal symbolic
// expressions never produce false mismatches.
#include <gtest/gtest.h>

#include "core/voter.hpp"
#include "expr/builder.hpp"
#include "symex/engine.hpp"

namespace rvsym::core {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;

iss::RetireInfo baseRecord(ExprBuilder& eb) {
  iss::RetireInfo r;
  r.pc = eb.constant(0x80000000, 32);
  r.next_pc = eb.constant(0x80000004, 32);
  r.instr = eb.constant(0x13, 32);
  return r;
}

struct VoterFixture : ::testing::Test {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  Voter voter;
};

TEST_F(VoterFixture, IdenticalRecordsAgree) {
  const iss::RetireInfo a = baseRecord(eb);
  const iss::RetireInfo b = baseRecord(eb);
  EXPECT_FALSE(voter.compare(st, a, b).has_value());
}

TEST_F(VoterFixture, TrapFlagDifferenceIsConcrete) {
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  b.trap = true;
  b.cause = 2;
  const auto m = voter.compare(st, a, b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->field, "trap");
}

TEST_F(VoterFixture, TrapCauseCompared) {
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  a.trap = b.trap = true;
  a.cause = 2;
  b.cause = 4;
  const auto m = voter.compare(st, a, b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->field, "trap_cause");
}

TEST_F(VoterFixture, NextPcConstantDifference) {
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  b.next_pc = eb.constant(0x80000008, 32);
  const auto m = voter.compare(st, a, b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->field, "next_pc");
}

TEST_F(VoterFixture, RdChannelPresenceDifference) {
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  a.rd_index = eb.constant(1, 5);
  a.rd_value = eb.constant(7, 32);
  const auto m = voter.compare(st, a, b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->field, "rd_channel");
}

TEST_F(VoterFixture, MemChannelCompared) {
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  a.mem_valid = b.mem_valid = true;
  a.mem_is_store = b.mem_is_store = true;
  a.mem_size = 4;
  b.mem_size = 2;
  a.mem_addr = b.mem_addr = eb.constant(0x100, 32);
  a.mem_data = b.mem_data = eb.constant(0xAB, 32);
  const auto m = voter.compare(st, a, b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->field, "mem_size");
}

TEST_F(VoterFixture, SemanticallyEqualExpressionsAgree) {
  // x + x vs 2*x: structurally different, semantically identical — the
  // solver must prove them equal, no fork, no mismatch.
  const ExprRef x = eb.variable("x", 32);
  iss::RetireInfo a = baseRecord(eb);
  iss::RetireInfo b = baseRecord(eb);
  a.rd_index = b.rd_index = eb.constant(1, 5);
  a.rd_value = eb.add(x, x);
  b.rd_value = eb.mul(x, eb.constant(2, 32));
  EXPECT_FALSE(voter.compare(st, a, b).has_value());
}

TEST(VoterForking, PossibleDivergenceForksBothWays) {
  // rd values x and 5: equal only when x == 5, so the voter must fork —
  // one mismatch path and one agreeing path.
  ExprBuilder eb;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  symex::Engine engine(eb, opts);
  std::uint64_t agreed = 0;
  const auto report = engine.run([&](symex::ExecState& s) {
    Voter voter;
    iss::RetireInfo a = baseRecord(s.builder());
    iss::RetireInfo b = baseRecord(s.builder());
    a.rd_index = b.rd_index = s.builder().constant(1, 5);
    a.rd_value = s.makeSymbolic("x", 32);
    b.rd_value = s.builder().constant(5, 32);
    if (auto m = voter.compare(s, a, b)) s.fail(Voter::describe(*m));
    ++agreed;
  });
  EXPECT_EQ(report.error_paths, 1u);
  EXPECT_EQ(report.completed_paths, 1u);
  EXPECT_EQ(agreed, 1u);
  // The agreeing path is constrained to x == 5.
  const symex::PathRecord* ok = nullptr;
  for (const auto& p : report.paths)
    if (p.end == symex::PathEnd::Completed) ok = &p;
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->has_test);
  EXPECT_EQ(ok->test.lookup("x"), std::make_optional<std::uint64_t>(5));
}

TEST(VoterForking, DescribeFormatsFieldAndDetail) {
  const Mismatch m{"rd_value", "detail text"};
  const std::string s = Voter::describe(m);
  EXPECT_NE(s.find("rd_value"), std::string::npos);
  EXPECT_NE(s.find("detail text"), std::string::npos);
}

}  // namespace
}  // namespace rvsym::core
