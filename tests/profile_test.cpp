// Tests for the profiling stack: the slow-query corpus format
// (round-trip, replay, ddmin shrinking), SolverTelemetry's dump gating,
// and the phase profiler's folded-stack canonicalization — in
// particular that --jobs 1 and --jobs 4 runs of the same workload
// canonicalize to byte-identical stack sets.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "expr/builder.hpp"
#include "expr/serialize.hpp"
#include "obs/phase.hpp"
#include "solver/corpus.hpp"
#include "solver/solver.hpp"
#include "solver/telemetry.hpp"

namespace rvsym {
namespace {

namespace fs = std::filesystem;
using expr::ExprBuilder;
using expr::ExprRef;
using solver::CheckResult;
using solver::CorpusQuery;

// --- Corpus format ------------------------------------------------------------

CorpusQuery sampleQuery(ExprBuilder& eb) {
  const ExprRef x = eb.variable("x", 32);
  CorpusQuery q;
  q.constraints = {eb.ult(x, eb.constant(10, 32)),
                   eb.ugt(x, eb.constant(3, 32))};
  q.assumption = eb.eqConst(x, 7);
  q.verdict = CheckResult::Sat;
  q.sat_us = 1234;
  q.bitblast_us = 56;
  return q;
}

TEST(Corpus, FormatParseRoundTripPreservesQuery) {
  ExprBuilder eb;
  const CorpusQuery q = sampleQuery(eb);
  const std::string text = solver::formatQuery(q);
  ASSERT_FALSE(text.empty());

  ExprBuilder eb2;  // parse into a fresh builder: no shared interning
  std::string err;
  const auto back = solver::parseQuery(eb2, text, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->constraints.size(), 2u);
  EXPECT_TRUE(back->assumption);
  EXPECT_EQ(back->verdict, CheckResult::Sat);
  EXPECT_EQ(back->sat_us, 1234u);
  EXPECT_EQ(back->bitblast_us, 56u);
  EXPECT_GT(back->nodes, 0u);

  // Serialization is canonical: reformatting the parsed query is
  // byte-identical, so corpus files are stable across load/store.
  EXPECT_EQ(solver::formatQuery(*back), text);
}

TEST(Corpus, BoundedFormatWithRoomMatchesUnboundedBody) {
  ExprBuilder eb;
  const CorpusQuery q = sampleQuery(eb);
  const std::string full = solver::formatQuery(q);
  const std::string bounded =
      solver::formatQueryBounded(q.constraints, q.assumption, 1 << 20);
  ASSERT_FALSE(bounded.empty());
  EXPECT_EQ(bounded.find("; truncated"), std::string::npos);

  // Same body (everything after the blank header separator) — only the
  // verdict/timing header fields differ, since nothing has solved yet.
  const std::size_t full_body = full.find("\n\n");
  const std::size_t bounded_body = bounded.find("\n\n");
  ASSERT_NE(full_body, std::string::npos);
  ASSERT_NE(bounded_body, std::string::npos);
  EXPECT_EQ(bounded.substr(bounded_body), full.substr(full_body));
  EXPECT_NE(bounded.find("verdict unknown\n"), std::string::npos);

  // A complete bounded render is a parseable rvsym-query-v1 document.
  ExprBuilder eb2;
  std::string err;
  const auto back = solver::parseQuery(eb2, bounded, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->constraints.size(), q.constraints.size());
}

TEST(Corpus, BoundedFormatStopsSerializingAtTheBudget) {
  ExprBuilder eb;
  ExprRef acc = eb.variable("x", 32);
  for (int i = 0; i < 4096; ++i)
    acc = eb.add(acc, eb.variable("y" + std::to_string(i), 32));
  const std::vector<ExprRef> constraints = {
      eb.eq(acc, eb.constant(0, 32))};

  constexpr std::size_t kBudget = 512;
  const std::string bounded =
      solver::formatQueryBounded(constraints, nullptr, kBudget);
  ASSERT_FALSE(bounded.empty());
  EXPECT_NE(bounded.find("; truncated\n"), std::string::npos);
  // Budget + one final line + header, nowhere near the full DAG's text.
  EXPECT_LT(bounded.size(), kBudget + 256);
  EXPECT_EQ(bounded.find("\nroot "), std::string::npos);

  const std::string full = solver::formatQuery(
      [&] {
        CorpusQuery q;
        q.constraints = constraints;
        return q;
      }());
  EXPECT_GT(full.size(), 8 * kBudget);
}

TEST(ExprSerialize, BoundedMatchesUnboundedWhenUnderBudget) {
  ExprBuilder eb;
  const ExprRef x = eb.variable("x", 32);
  const std::vector<ExprRef> roots = {eb.ult(x, eb.constant(10, 32)),
                                      eb.ugt(x, eb.constant(3, 32))};
  const auto full = expr::serializeNodes(roots);
  const auto bounded = expr::serializeNodesBounded(roots, 1 << 20);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(bounded.has_value());
  EXPECT_FALSE(bounded->truncated);
  EXPECT_EQ(bounded->text, *full);
  EXPECT_GT(bounded->nodes, 0u);
}

TEST(Corpus, ReplayReproducesRecordedVerdicts) {
  {
    ExprBuilder eb;
    const CorpusQuery q = sampleQuery(eb);
    std::uint64_t us = 0;
    EXPECT_EQ(solver::replayQuery(eb, q, &us), CheckResult::Sat);
  }
  {
    ExprBuilder eb;
    const ExprRef x = eb.variable("x", 8);
    CorpusQuery q;
    q.constraints = {eb.ult(x, eb.constant(5, 8)),
                     eb.ugt(x, eb.constant(10, 8))};
    q.verdict = CheckResult::Unsat;
    EXPECT_EQ(solver::replayQuery(eb, q), CheckResult::Unsat);
  }
}

TEST(Corpus, DdminShrinksToMinimalCoreWithSameVerdict) {
  ExprBuilder eb;
  const ExprRef x = eb.variable("x", 16);
  const ExprRef y = eb.variable("y", 16);
  CorpusQuery q;
  // Exactly one unsat core {x < 5, x > 10}; the y constraints and the
  // loose x bound are noise ddmin must discard.
  q.constraints = {eb.ult(x, eb.constant(5, 16)),
                   eb.ugt(y, eb.constant(0, 16)),
                   eb.ugt(x, eb.constant(10, 16)),
                   eb.ult(y, eb.constant(9999, 16)),
                   eb.ult(x, eb.constant(500, 16))};
  q.verdict = CheckResult::Unsat;

  std::uint64_t replays = 0;
  const std::vector<ExprRef> minimal =
      solver::ddminConstraints(eb, q, &replays);
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_GT(replays, 0u);

  CorpusQuery reduced = q;
  reduced.constraints = minimal;
  EXPECT_EQ(solver::replayQuery(eb, reduced), CheckResult::Unsat);
}

TEST(Corpus, DdminOnSatQueryMayDropEverything) {
  // Every subset of a sat conjunction is sat, so the 1-minimal subset
  // preserving the verdict is empty — the degenerate but correct floor.
  ExprBuilder eb;
  const ExprRef x = eb.variable("x", 8);
  CorpusQuery q;
  q.constraints = {eb.ult(x, eb.constant(200, 8))};
  q.verdict = CheckResult::Sat;
  const std::vector<ExprRef> minimal = solver::ddminConstraints(eb, q);
  EXPECT_TRUE(minimal.empty());
  CorpusQuery reduced = q;
  reduced.constraints = minimal;
  EXPECT_EQ(solver::replayQuery(eb, reduced), CheckResult::Sat);
}

// --- SolverTelemetry gating ---------------------------------------------------

TEST(Telemetry, RecordGatesDumpOnThresholdVerdictAndDedup) {
  solver::SolverTelemetry::Options opts;
  opts.slow_query_us = 100;
  opts.corpus_dir = testing::TempDir() + "rvsym_telemetry_gate";
  solver::SolverTelemetry t(opts);

  solver::SolverTelemetry::Query slow;
  slow.hash = {0x1111, 0x2222};
  slow.sat_us = 150;
  slow.verdict = CheckResult::Sat;
  EXPECT_TRUE(t.record(slow));   // slow + definitive + fresh hash
  EXPECT_FALSE(t.record(slow));  // same hash: already claimed for dump

  solver::SolverTelemetry::Query fast = slow;
  fast.hash = {0x3333, 0x4444};
  fast.sat_us = 10;
  EXPECT_FALSE(t.record(fast));  // under the threshold

  solver::SolverTelemetry::Query unknown = slow;
  unknown.hash = {0x5555, 0x6666};
  unknown.verdict = CheckResult::Unknown;
  EXPECT_FALSE(t.record(unknown));  // budget artifact: never dumped

  solver::SolverTelemetry::Query hit = slow;
  hit.hash = {0x7777, 0x8888};
  hit.disposition = solver::SolverTelemetry::Disposition::Hit;
  EXPECT_FALSE(t.record(hit));  // cache hit: nothing was solved

  EXPECT_EQ(t.queries(), 5u);
  EXPECT_EQ(t.slowQueries(), 3u);  // slow, slow-again, unknown
}

TEST(Telemetry, DumpedQueryLoadsAndReplaysToRecordedVerdict) {
  const std::string dir = testing::TempDir() + "rvsym_telemetry_dump";
  fs::remove_all(dir);
  solver::SolverTelemetry::Options opts;
  opts.slow_query_us = 1;
  opts.corpus_dir = dir;
  solver::SolverTelemetry t(opts);

  ExprBuilder eb;
  const CorpusQuery q = sampleQuery(eb);
  solver::SolverTelemetry::Query rec;
  rec.hash = {0xabcd, 0xef01};
  rec.sat_us = 99;
  rec.verdict = CheckResult::Sat;
  ASSERT_TRUE(t.record(rec));
  ASSERT_TRUE(t.dump(rec, q.constraints, q.assumption, "p cnf 0 0\n"));
  EXPECT_EQ(t.dumpedQueries(), 1u);

  std::string query_path, cnf_path;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".query") query_path = e.path().string();
    if (e.path().extension() == ".cnf") cnf_path = e.path().string();
  }
  ASSERT_FALSE(query_path.empty());
  EXPECT_FALSE(cnf_path.empty());

  ExprBuilder eb2;
  std::string err;
  const auto loaded = solver::loadQueryFile(eb2, query_path, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  EXPECT_EQ(loaded->verdict, CheckResult::Sat);
  EXPECT_EQ(loaded->sat_us, 99u);
  EXPECT_EQ(solver::replayQuery(eb2, *loaded), CheckResult::Sat);
  fs::remove_all(dir);
}

// --- PhaseProfiler ------------------------------------------------------------

TEST(PhaseProfiler, FoldedAttributesSelfTimePerStack) {
  obs::PhaseProfiler p;
  {
    const obs::PhaseTimer a(&p, "path");
    const obs::PhaseTimer b(&p, "solver");
  }
  {
    const obs::PhaseTimer a(&p, "path");
  }
  EXPECT_EQ(p.distinctStacks(), 2u);
  const std::string folded = p.folded();
  EXPECT_NE(folded.find("path "), std::string::npos);
  EXPECT_NE(folded.find("path;solver "), std::string::npos);
}

TEST(PhaseProfiler, CanonicalizeZeroesTheValueColumn) {
  EXPECT_EQ(obs::PhaseProfiler::canonicalizeFolded(
                "path 123\npath;rtl;solver 4567\n"),
            "path 0\npath;rtl;solver 0\n");
}

TEST(PhaseProfiler, NullProfilerTimerIsANoop) {
  const obs::PhaseTimer t(nullptr, "path");  // must not crash
}

TEST(PhaseProfiler, FoldedStacksAreJobsInvariantAfterCanonicalization) {
  const auto runFolded = [](unsigned jobs) {
    ExprBuilder eb;
    core::SessionOptions options;
    options.cosim.instr_limit = 1;
    options.engine.max_paths = 40;
    options.engine.jobs = jobs;
    obs::PhaseProfiler profiler;
    options.engine.profiler = &profiler;
    core::VerificationSession session(eb, options);
    (void)session.run();
    return obs::PhaseProfiler::canonicalizeFolded(profiler.folded());
  };
  const std::string one = runFolded(1);
  const std::string four = runFolded(4);
  EXPECT_FALSE(one.empty());
  // Which stacks exist is structural (same workload, same paths); only
  // the zeroed value column differed between worker counts.
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace rvsym
