// Unit and property tests for the expression library: reference
// semantics, constant folding, hash-consing, simplification rules and
// the evaluator.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "expr/expr.hpp"
#include "expr/print.hpp"

namespace rvsym::expr {
namespace {

// --- Reference semantics ---------------------------------------------------

TEST(ApplyOp, AddWraps) {
  EXPECT_EQ(applyOp(Kind::Add, 8, 0xFF, 0x01), 0x00u);
  EXPECT_EQ(applyOp(Kind::Add, 32, 0xFFFFFFFFu, 2), 1u);
  EXPECT_EQ(applyOp(Kind::Add, 64, ~0ULL, 1), 0u);
}

TEST(ApplyOp, SubWraps) {
  EXPECT_EQ(applyOp(Kind::Sub, 8, 0, 1), 0xFFu);
  EXPECT_EQ(applyOp(Kind::Sub, 32, 5, 7), 0xFFFFFFFEu);
}

TEST(ApplyOp, DivisionByZeroConventions) {
  // RISC-V: x / 0 == all-ones, x % 0 == x.
  EXPECT_EQ(applyOp(Kind::UDiv, 32, 1234, 0), 0xFFFFFFFFu);
  EXPECT_EQ(applyOp(Kind::URem, 32, 1234, 0), 1234u);
  EXPECT_EQ(applyOp(Kind::SDiv, 32, 1234, 0), 0xFFFFFFFFu);
  EXPECT_EQ(applyOp(Kind::SRem, 32, 1234, 0), 1234u);
}

TEST(ApplyOp, SignedDivisionOverflow) {
  // MIN / -1 == MIN; MIN % -1 == 0.
  EXPECT_EQ(applyOp(Kind::SDiv, 32, 0x80000000u, 0xFFFFFFFFu), 0x80000000u);
  EXPECT_EQ(applyOp(Kind::SRem, 32, 0x80000000u, 0xFFFFFFFFu), 0u);
  EXPECT_EQ(applyOp(Kind::SDiv, 8, 0x80, 0xFF), 0x80u);
}

TEST(ApplyOp, SignedDivisionRoundsTowardZero) {
  // -7 / 2 == -3 (0xFFFFFFFD), -7 % 2 == -1.
  EXPECT_EQ(applyOp(Kind::SDiv, 32, static_cast<std::uint32_t>(-7), 2),
            static_cast<std::uint32_t>(-3));
  EXPECT_EQ(applyOp(Kind::SRem, 32, static_cast<std::uint32_t>(-7), 2),
            static_cast<std::uint32_t>(-1));
}

TEST(ApplyOp, ShiftsSaturate) {
  EXPECT_EQ(applyOp(Kind::Shl, 32, 1, 31), 0x80000000u);
  EXPECT_EQ(applyOp(Kind::Shl, 32, 1, 32), 0u);
  EXPECT_EQ(applyOp(Kind::LShr, 32, 0x80000000u, 31), 1u);
  EXPECT_EQ(applyOp(Kind::LShr, 32, 0x80000000u, 40), 0u);
  EXPECT_EQ(applyOp(Kind::AShr, 32, 0x80000000u, 31), 0xFFFFFFFFu);
  EXPECT_EQ(applyOp(Kind::AShr, 32, 0x80000000u, 99), 0xFFFFFFFFu);
  EXPECT_EQ(applyOp(Kind::AShr, 32, 0x40000000u, 99), 0u);
}

TEST(ApplyOp, SignedComparisons) {
  EXPECT_EQ(applyOp(Kind::Slt, 32, 0xFFFFFFFFu, 0), 1u);  // -1 < 0
  EXPECT_EQ(applyOp(Kind::Slt, 32, 0, 0xFFFFFFFFu), 0u);
  EXPECT_EQ(applyOp(Kind::Sle, 8, 0x80, 0x7F), 1u);  // -128 <= 127
  EXPECT_EQ(applyOp(Kind::Ult, 32, 0xFFFFFFFFu, 0), 0u);
}

TEST(SignExtendHelper, Works) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80000000u, 32), INT64_C(-2147483648));
}

// --- Hash consing -------------------------------------------------------------

TEST(Interning, StructurallyEqualNodesAreIdentical) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto y = eb.variable("y", 32);
  auto a = eb.add(x, y);
  auto b = eb.add(x, y);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), eb.add(y, x).get());  // not canonicalized across vars
}

TEST(Interning, SameNameSameVariable) {
  ExprBuilder eb;
  auto x1 = eb.variable("x", 32);
  auto x2 = eb.variable("x", 32);
  EXPECT_EQ(x1.get(), x2.get());
  EXPECT_THROW(eb.variable("x", 16), std::invalid_argument);
}

TEST(Interning, ConstantsInterned) {
  ExprBuilder eb;
  EXPECT_EQ(eb.constant(42, 32).get(), eb.constant(42, 32).get());
  EXPECT_NE(eb.constant(42, 32).get(), eb.constant(42, 16).get());
}

// --- Folding and simplification ------------------------------------------------

TEST(Folding, BinaryOverConstants) {
  ExprBuilder eb;
  auto e = eb.add(eb.constant(3, 32), eb.constant(4, 32));
  ASSERT_TRUE(e->isConstant());
  EXPECT_EQ(e->constantValue(), 7u);
}

TEST(Folding, ComparisonNarrowsToWidthOne) {
  ExprBuilder eb;
  auto e = eb.ult(eb.constant(3, 32), eb.constant(4, 32));
  ASSERT_TRUE(e->isConstant());
  EXPECT_EQ(e->width(), 1u);
  EXPECT_EQ(e->constantValue(), 1u);
}

TEST(Simplify, Identities) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto zero = eb.constant(0, 32);
  auto ones = eb.constant(0xFFFFFFFFu, 32);
  EXPECT_EQ(eb.add(x, zero).get(), x.get());
  EXPECT_EQ(eb.sub(x, zero).get(), x.get());
  EXPECT_TRUE(eb.sub(x, x)->isZero());
  EXPECT_TRUE(eb.xorOp(x, x)->isZero());
  EXPECT_EQ(eb.andOp(x, ones).get(), x.get());
  EXPECT_TRUE(eb.andOp(x, zero)->isZero());
  EXPECT_EQ(eb.orOp(x, zero).get(), x.get());
  EXPECT_EQ(eb.orOp(x, ones).get(), ones.get());
  EXPECT_EQ(eb.notOp(eb.notOp(x)).get(), x.get());
  EXPECT_EQ(eb.neg(eb.neg(x)).get(), x.get());
  EXPECT_TRUE(eb.eq(x, x)->isConstantValue(1));
  EXPECT_TRUE(eb.ult(x, x)->isZero());
  EXPECT_TRUE(eb.ule(x, x)->isConstantValue(1));
}

TEST(Simplify, ExtractOfExtract) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto inner = eb.extract(x, 8, 16);
  auto outer = eb.extract(inner, 4, 8);
  EXPECT_EQ(outer->kind(), Kind::Extract);
  EXPECT_EQ(outer->operand(0).get(), x.get());
  EXPECT_EQ(outer->extractLow(), 12u);
  EXPECT_EQ(outer->width(), 8u);
}

TEST(Simplify, ExtractOfConcatRoutes) {
  ExprBuilder eb;
  auto hi = eb.variable("hi", 16);
  auto lo = eb.variable("lo", 16);
  auto c = eb.concat(hi, lo);
  EXPECT_EQ(eb.extract(c, 0, 16).get(), lo.get());
  EXPECT_EQ(eb.extract(c, 16, 16).get(), hi.get());
  EXPECT_EQ(eb.extract(c, 4, 8)->operand(0).get(), lo.get());
}

TEST(Simplify, ConcatOfAdjacentExtractsMerges) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto low = eb.extract(x, 0, 8);
  auto high = eb.extract(x, 8, 8);
  auto merged = eb.concat(high, low);
  EXPECT_EQ(merged->kind(), Kind::Extract);
  EXPECT_EQ(merged->width(), 16u);
  EXPECT_EQ(merged->extractLow(), 0u);
}

TEST(Simplify, FullWidthExtractIsIdentity) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  EXPECT_EQ(eb.extract(x, 0, 32).get(), x.get());
}

TEST(Simplify, EqOverConcatSplits) {
  ExprBuilder eb;
  auto hi = eb.variable("h", 8);
  auto lo = eb.variable("l", 8);
  auto cond = eb.eq(eb.concat(hi, lo), eb.constant(0x1234, 16));
  // Must be a conjunction of the two field equalities.
  ASSERT_EQ(cond->kind(), Kind::And);
}

TEST(Simplify, IteCollapses) {
  ExprBuilder eb;
  auto c = eb.variable("c", 1);
  auto x = eb.variable("x", 32);
  auto y = eb.variable("y", 32);
  EXPECT_EQ(eb.ite(eb.trueExpr(), x, y).get(), x.get());
  EXPECT_EQ(eb.ite(eb.falseExpr(), x, y).get(), y.get());
  EXPECT_EQ(eb.ite(c, x, x).get(), x.get());
  EXPECT_EQ(eb.ite(c, eb.trueExpr(), eb.falseExpr()).get(), c.get());
}

TEST(Simplify, BoolEqCollapses) {
  ExprBuilder eb;
  auto c = eb.variable("c", 1);
  EXPECT_EQ(eb.eq(c, eb.trueExpr()).get(), c.get());
  EXPECT_EQ(eb.eq(c, eb.falseExpr()).get(), eb.notOp(c).get());
}

// --- Evaluator vs builder folding: property sweep --------------------------------

using OpCase = std::tuple<Kind, unsigned>;

class BinaryOpProperty : public ::testing::TestWithParam<OpCase> {};

TEST_P(BinaryOpProperty, FoldingMatchesEvaluator) {
  const auto [kind, width] = GetParam();
  ExprBuilder eb;
  auto x = eb.variable("x", width);
  auto y = eb.variable("y", width);

  std::mt19937_64 rng(0xC0FFEE ^ (static_cast<unsigned>(kind) << 8) ^ width);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng() & widthMask(width);
    const std::uint64_t b = rng() & widthMask(width);

    // Symbolic evaluation path.
    ExprRef sym;
    switch (kind) {
      case Kind::Add: sym = eb.add(x, y); break;
      case Kind::Sub: sym = eb.sub(x, y); break;
      case Kind::Mul: sym = eb.mul(x, y); break;
      case Kind::UDiv: sym = eb.udiv(x, y); break;
      case Kind::SDiv: sym = eb.sdiv(x, y); break;
      case Kind::URem: sym = eb.urem(x, y); break;
      case Kind::SRem: sym = eb.srem(x, y); break;
      case Kind::And: sym = eb.andOp(x, y); break;
      case Kind::Or: sym = eb.orOp(x, y); break;
      case Kind::Xor: sym = eb.xorOp(x, y); break;
      case Kind::Shl: sym = eb.shl(x, y); break;
      case Kind::LShr: sym = eb.lshr(x, y); break;
      case Kind::AShr: sym = eb.ashr(x, y); break;
      case Kind::Eq: sym = eb.eq(x, y); break;
      case Kind::Ult: sym = eb.ult(x, y); break;
      case Kind::Ule: sym = eb.ule(x, y); break;
      case Kind::Slt: sym = eb.slt(x, y); break;
      case Kind::Sle: sym = eb.sle(x, y); break;
      default: FAIL() << "unhandled kind";
    }
    Assignment asg;
    asg.set(x->variableId(), a);
    asg.set(y->variableId(), b);
    const std::uint64_t via_eval = evaluate(sym, asg);

    // Constant-folding path.
    ExprRef folded;
    auto ca = eb.constant(a, width);
    auto cb = eb.constant(b, width);
    switch (kind) {
      case Kind::Add: folded = eb.add(ca, cb); break;
      case Kind::Sub: folded = eb.sub(ca, cb); break;
      case Kind::Mul: folded = eb.mul(ca, cb); break;
      case Kind::UDiv: folded = eb.udiv(ca, cb); break;
      case Kind::SDiv: folded = eb.sdiv(ca, cb); break;
      case Kind::URem: folded = eb.urem(ca, cb); break;
      case Kind::SRem: folded = eb.srem(ca, cb); break;
      case Kind::And: folded = eb.andOp(ca, cb); break;
      case Kind::Or: folded = eb.orOp(ca, cb); break;
      case Kind::Xor: folded = eb.xorOp(ca, cb); break;
      case Kind::Shl: folded = eb.shl(ca, cb); break;
      case Kind::LShr: folded = eb.lshr(ca, cb); break;
      case Kind::AShr: folded = eb.ashr(ca, cb); break;
      case Kind::Eq: folded = eb.eq(ca, cb); break;
      case Kind::Ult: folded = eb.ult(ca, cb); break;
      case Kind::Ule: folded = eb.ule(ca, cb); break;
      case Kind::Slt: folded = eb.slt(ca, cb); break;
      case Kind::Sle: folded = eb.sle(ca, cb); break;
      default: FAIL() << "unhandled kind";
    }
    ASSERT_TRUE(folded->isConstant());
    EXPECT_EQ(folded->constantValue(), via_eval)
        << kindName(kind) << " w=" << width << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllWidths, BinaryOpProperty,
    ::testing::Combine(
        ::testing::Values(Kind::Add, Kind::Sub, Kind::Mul, Kind::UDiv,
                          Kind::SDiv, Kind::URem, Kind::SRem, Kind::And,
                          Kind::Or, Kind::Xor, Kind::Shl, Kind::LShr,
                          Kind::AShr, Kind::Eq, Kind::Ult, Kind::Ule,
                          Kind::Slt, Kind::Sle),
        ::testing::Values(1u, 8u, 12u, 32u, 64u)),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return std::string(kindName(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// --- Structural operators under evaluation -------------------------------------

TEST(Evaluator, ConcatExtractExtend) {
  ExprBuilder eb;
  auto x = eb.variable("x", 16);
  Assignment asg;
  asg.set(x->variableId(), 0xABCD);

  EXPECT_EQ(evaluate(eb.extract(x, 4, 8), asg), 0xBCu);
  EXPECT_EQ(evaluate(eb.concat(x, x), asg), 0xABCDABCDu);
  EXPECT_EQ(evaluate(eb.zext(x, 32), asg), 0xABCDu);
  EXPECT_EQ(evaluate(eb.sext(x, 32), asg), 0xFFFFABCDu);
  auto pos = eb.variable("pos", 16);
  asg.set(pos->variableId(), 0x7BCD);
  EXPECT_EQ(evaluate(eb.sext(pos, 32), asg), 0x7BCDu);
}

TEST(Evaluator, IteSelects) {
  ExprBuilder eb;
  auto c = eb.variable("c", 1);
  auto x = eb.variable("x", 32);
  auto y = eb.variable("y", 32);
  auto e = eb.ite(c, x, y);
  Assignment asg;
  asg.set(x->variableId(), 111);
  asg.set(y->variableId(), 222);
  asg.set(c->variableId(), 1);
  EXPECT_EQ(evaluate(e, asg), 111u);
  asg.set(c->variableId(), 0);
  EXPECT_EQ(evaluate(e, asg), 222u);
}

TEST(Evaluator, SharedSubtreesEvaluateOnce) {
  ExprBuilder eb;
  auto x = eb.variable("x", 64);
  // Build a deep balanced DAG: without memoization this would be 2^40 work.
  ExprRef e = x;
  for (int i = 0; i < 40; ++i) e = eb.add(e, e);
  Assignment asg;
  asg.set(x->variableId(), 1);
  EXPECT_EQ(evaluate(e, asg), (std::uint64_t{1} << 40));
}

TEST(Printer, RendersBasics) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto e = eb.add(x, eb.constant(4, 32));
  const std::string s = toString(e);
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

TEST(DagSize, CountsDistinctNodes) {
  ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto sum = eb.add(x, x);
  EXPECT_EQ(sum->dagSize(), 2u);
}

}  // namespace
}  // namespace rvsym::expr
