// Direct unit tests for the shared CSR file: the implemented-set matrix
// across the three configurations, read/write semantics per register,
// resolve() forking over symbolic addresses, counters, WARL masking and
// trap-state sequencing.
#include <gtest/gtest.h>

#include "expr/builder.hpp"
#include "iss/csrfile.hpp"
#include "rv32/csr.hpp"
#include "symex/engine.hpp"

namespace rvsym::iss {
namespace {

using namespace rv32::csr;
using expr::ExprBuilder;
using expr::ExprRef;

struct CsrFixture : ::testing::Test {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};

  ExprRef word(std::uint32_t v) { return eb.constant(v, 32); }
  std::uint32_t value(const ExprRef& e) {
    EXPECT_TRUE(e->isConstant());
    return static_cast<std::uint32_t>(e->constantValue());
  }
};

// --- Implemented sets per configuration -------------------------------------

TEST_F(CsrFixture, VpImplementsFullSet) {
  CsrFile f(eb, CsrConfig::riscvVp());
  for (std::uint16_t a : {kMstatus, kMie, kMtvec, kMepc, kMcause, kMip,
                          kMscratch, kMcounteren, kCycle, kTime, kInstreth})
    EXPECT_TRUE(f.isImplemented(a)) << a;
  EXPECT_TRUE(f.isImplemented(0xB10));  // mhpmcounter16
  EXPECT_TRUE(f.isImplemented(0x330));  // mhpmevent16
  EXPECT_FALSE(f.isImplemented(0x400));
  EXPECT_FALSE(f.isImplemented(0x105));  // stvec: no S-mode
}

TEST_F(CsrFixture, MicroRv32ImplementsSubset) {
  CsrFile f(eb, CsrConfig::microrv32());
  for (std::uint16_t a : {kMstatus, kMie, kMtvec, kMepc, kMcause, kMip,
                          kMcycle, kMinstret, kMcycleh, kMinstreth})
    EXPECT_TRUE(f.isImplemented(a)) << a;
  for (std::uint16_t a : {kMscratch, kMcounteren, kCycle, kTime, kInstret})
    EXPECT_FALSE(f.isImplemented(a)) << a;
  EXPECT_FALSE(f.isImplemented(0xB10));
}

// --- Read / write semantics ----------------------------------------------------

TEST_F(CsrFixture, ScratchStorageRoundTrip) {
  CsrFile f(eb, CsrConfig::specCorrect());
  EXPECT_FALSE(f.write(kMscratch, word(0x12345678)));
  const auto r = f.read(kMscratch);
  ASSERT_FALSE(r.trap);
  EXPECT_EQ(value(r.value), 0x12345678u);
}

TEST_F(CsrFixture, MstatusWarlMasksToMieMpie) {
  CsrFile f(eb, CsrConfig::specCorrect());
  EXPECT_FALSE(f.write(kMstatus, word(0xFFFFFFFF)));
  const auto r = f.read(kMstatus);
  ASSERT_FALSE(r.trap);
  // Only MIE (bit 3), MPIE (bit 7) stored; MPP pinned to M (bits 12:11).
  EXPECT_EQ(value(r.value), 0x88u | (0x3u << 11));
}

TEST_F(CsrFixture, MtvecMepcMaskLowBits) {
  CsrFile f(eb, CsrConfig::specCorrect());
  f.write(kMtvec, word(0x80001003));
  EXPECT_EQ(value(f.read(kMtvec).value), 0x80001000u);
  f.write(kMepc, word(0x80000002));
  EXPECT_EQ(value(f.read(kMepc).value), 0x80000000u);
}

TEST_F(CsrFixture, MisaIsWarlReadOnlyValue) {
  CsrConfig cfg = CsrConfig::specCorrect();
  CsrFile f(eb, cfg);
  EXPECT_FALSE(f.write(kMisa, word(0)));
  EXPECT_EQ(value(f.read(kMisa).value), cfg.misa);
}

TEST_F(CsrFixture, ReadOnlyWritePolicy) {
  CsrFile spec(eb, CsrConfig::specCorrect());
  EXPECT_TRUE(spec.write(kMarchid, word(1)));
  EXPECT_TRUE(spec.write(kCycle, word(1)));
  CsrFile micro(eb, CsrConfig::microrv32());
  EXPECT_FALSE(micro.write(kMarchid, word(1)));  // authentic missing trap
}

TEST_F(CsrFixture, CounterWritePolicy) {
  CsrFile micro(eb, CsrConfig::microrv32());
  EXPECT_TRUE(micro.write(kMcycle, word(0)));   // authentic trap-on-write
  EXPECT_TRUE(micro.write(kMip, word(0)));
  CsrFile spec(eb, CsrConfig::specCorrect());
  EXPECT_FALSE(spec.write(kMcycle, word(0)));
  EXPECT_FALSE(spec.write(kMip, word(0)));
}

TEST_F(CsrFixture, DelegationReadQuirk) {
  CsrFile vp(eb, CsrConfig::riscvVp());
  EXPECT_TRUE(vp.read(kMedeleg).trap);
  EXPECT_TRUE(vp.read(kMideleg).trap);
  EXPECT_FALSE(vp.write(kMedeleg, word(1)));  // writes still fine
  CsrFile spec(eb, CsrConfig::specCorrect());
  EXPECT_FALSE(spec.read(kMedeleg).trap);
}

TEST_F(CsrFixture, UnimplementedAccessPolicy) {
  CsrFile spec(eb, CsrConfig::specCorrect());
  EXPECT_TRUE(spec.read(CsrFile::kUnimplemented).trap);
  EXPECT_TRUE(spec.write(CsrFile::kUnimplemented, word(1)));
  CsrFile micro(eb, CsrConfig::microrv32());
  const auto r = micro.read(CsrFile::kUnimplemented);
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(value(r.value), 0u);
  EXPECT_FALSE(micro.write(CsrFile::kUnimplemented, word(1)));
}

// --- Counters -------------------------------------------------------------------

TEST_F(CsrFixture, CountersSplitLowHigh) {
  CsrFile f(eb, CsrConfig::specCorrect());
  for (int i = 0; i < 5; ++i) f.tickCycle();
  for (int i = 0; i < 3; ++i) f.tickInstret();
  EXPECT_EQ(value(f.read(kMcycle).value), 5u);
  EXPECT_EQ(value(f.read(kMcycleh).value), 0u);
  EXPECT_EQ(value(f.read(kMinstret).value), 3u);
  // Unprivileged shadows alias the machine counters.
  EXPECT_EQ(value(f.read(kCycle).value), 5u);
  EXPECT_EQ(value(f.read(kTime).value), 5u);
  EXPECT_EQ(value(f.read(kInstret).value), 3u);
}

TEST_F(CsrFixture, CounterHighWordCarries) {
  CsrFile f(eb, CsrConfig::specCorrect());
  f.write(kMcycle, word(0xFFFFFFFF));
  f.tickCycle();
  EXPECT_EQ(value(f.read(kMcycle).value), 0u);
  EXPECT_EQ(value(f.read(kMcycleh).value), 1u);
}

TEST_F(CsrFixture, CounterWritesReplaceHalves) {
  CsrFile f(eb, CsrConfig::specCorrect());
  f.write(kMcycle, word(0x11111111));
  f.write(kMcycleh, word(0x22222222));
  EXPECT_EQ(value(f.read(kMcycle).value), 0x11111111u);
  EXPECT_EQ(value(f.read(kMcycleh).value), 0x22222222u);
}

TEST_F(CsrFixture, HpmStorage) {
  CsrFile f(eb, CsrConfig::specCorrect());
  EXPECT_EQ(value(f.read(0xB10).value), 0u);  // mhpmcounter16 resets to 0
  EXPECT_FALSE(f.write(0xB10, word(77)));
  EXPECT_EQ(value(f.read(0xB10).value), 77u);
  EXPECT_FALSE(f.write(0x330, word(5)));      // mhpmevent16
  EXPECT_EQ(value(f.read(0x330).value), 5u);
}

// --- Trap entry / return ----------------------------------------------------------

TEST_F(CsrFixture, TrapEntrySequence) {
  CsrFile f(eb, CsrConfig::specCorrect());
  f.write(kMtvec, word(0x80002000));
  f.write(kMstatus, word(0x8));  // MIE=1
  const ExprRef target = f.enterTrap(word(0x80000010), 11, word(0));
  EXPECT_EQ(value(target), 0x80002000u);
  EXPECT_EQ(value(f.read(kMepc).value), 0x80000010u);
  EXPECT_EQ(value(f.read(kMcause).value), 11u);
  // MIE cleared, MPIE holds the old MIE.
  const std::uint32_t mstatus = value(f.read(kMstatus).value);
  EXPECT_EQ(mstatus & 0x8u, 0u);
  EXPECT_EQ(mstatus & 0x80u, 0x80u);
  // MRET restores.
  const ExprRef resume = f.doMret();
  EXPECT_EQ(value(resume), 0x80000010u);
  EXPECT_EQ(value(f.read(kMstatus).value) & 0x8u, 0x8u);
}

// --- resolve() over symbolic addresses ----------------------------------------------

TEST_F(CsrFixture, ResolveConstantAddress) {
  CsrFile f(eb, CsrConfig::specCorrect());
  EXPECT_EQ(f.resolve(st, eb.constant(kMstatus, 12)), kMstatus);
  EXPECT_EQ(f.resolve(st, eb.constant(0x400, 12)), CsrFile::kUnimplemented);
}

TEST_F(CsrFixture, ResolveEnumeratesImplementedSet) {
  // Symbolic address: DFS over resolve() must reach every implemented
  // single CSR plus the three ranges plus the unimplemented bucket.
  ExprBuilder local;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  symex::Engine engine(local, opts);
  std::set<std::uint16_t> seen;
  std::uint64_t unimpl = 0;
  const auto report = engine.run([&](symex::ExecState& s) {
    CsrFile f(local, CsrConfig::specCorrect());
    const ExprRef addr = s.makeSymbolic("csr_addr", 12);
    const std::uint16_t r = f.resolve(s, addr);
    if (r == CsrFile::kUnimplemented)
      ++unimpl;
    else
      seen.insert(r);
  });
  EXPECT_GE(seen.size(), 26u + 3u);  // singles + one per range
  EXPECT_GE(unimpl, 1u);
  EXPECT_EQ(report.error_paths, 0u);
  EXPECT_TRUE(seen.count(kMstatus));
  EXPECT_TRUE(seen.count(kInstreth));
}

TEST_F(CsrFixture, InterruptRequestGating) {
  CsrFile f(eb, CsrConfig::specCorrect());
  const auto request = [&] {
    const ExprRef r = f.interruptRequest(11);
    EXPECT_TRUE(r->isConstant());
    return r->constantValue() != 0;
  };
  EXPECT_FALSE(request());
  f.setInterruptLine(11, true);
  EXPECT_FALSE(request());  // pending but not enabled
  f.write(kMie, word(1u << 11));
  EXPECT_FALSE(request());  // enabled but MIE off
  f.write(kMstatus, word(0x8));
  EXPECT_TRUE(request());
  f.setInterruptLine(11, false);
  EXPECT_FALSE(request());
}

}  // namespace
}  // namespace rvsym::iss
