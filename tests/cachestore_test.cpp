// Tests for the persistent query-cache store (rvsym-cachestore-v1):
// round-trip through load/absorb, cross-handle warm start, torn-tail
// tolerance, and the compaction invariants (dedup, rename-before-unlink
// leaving a single main.rvqc, idempotence).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "solver/cachestore.hpp"
#include "solver/cexcache.hpp"
#include "solver/querycache.hpp"

namespace rvsym::solver {
namespace {

namespace fs = std::filesystem;

class CacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rvsym_cachestore_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

CanonHash h(std::uint64_t lo, std::uint64_t hi) { return CanonHash{lo, hi}; }

CexCache::Model model(std::initializer_list<
                      std::pair<CanonHash, std::uint64_t>> values) {
  CexCache::Model m;
  for (const auto& [var, val] : values) m.values.emplace_back(var, val);
  m.sort();
  return m;
}

std::vector<std::string> storeFileNames(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& ent : fs::directory_iterator(dir))
    names.push_back(ent.path().filename().string());
  std::sort(names.begin(), names.end());
  return names;
}

TEST_F(CacheStoreTest, AbsorbThenLoadRoundTrips) {
  QueryCache qc;
  CexCache cex;
  qc.insert(h(1, 2), true);
  qc.insert(h(3, 4), false);
  cex.insertModel(h(5, 6), model({{h(10, 11), 0xdeadbeefULL}, {h(12, 13), 7}}));
  cex.insertCore({h(20, 21), h(22, 23)});

  CacheStore writer(dir(), "w0");
  const auto absorbed = writer.absorb(&qc, &cex);
  EXPECT_EQ(absorbed.verdicts, 2u);
  EXPECT_EQ(absorbed.models, 1u);
  EXPECT_EQ(absorbed.cores, 1u);

  // A fresh handle (fresh process) loads everything back.
  QueryCache qc2;
  CexCache cex2;
  CacheStore reader(dir(), "w1");
  const auto loaded = reader.load(&qc2, &cex2);
  EXPECT_EQ(loaded.verdicts, 2u);
  EXPECT_EQ(loaded.models, 1u);
  EXPECT_EQ(loaded.cores, 1u);
  EXPECT_EQ(loaded.bad_lines, 0u);

  EXPECT_EQ(qc2.lookup(h(1, 2)), std::optional<bool>(true));
  EXPECT_EQ(qc2.lookup(h(3, 4)), std::optional<bool>(false));
  const auto m = cex2.lookupModel(h(5, 6));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get(h(10, 11)), std::optional<std::uint64_t>(0xdeadbeefULL));
  EXPECT_EQ(m->get(h(12, 13)), std::optional<std::uint64_t>(7));
  // Superset of the stored core subsumes.
  EXPECT_TRUE(cex2.subsumesUnsat({h(20, 21), h(22, 23), h(99, 99)}));
}

TEST_F(CacheStoreTest, AbsorbAppendsOnlyNewFacts) {
  QueryCache qc;
  qc.insert(h(1, 2), true);
  CacheStore writer(dir(), "w0");
  EXPECT_EQ(writer.absorb(&qc, nullptr).verdicts, 1u);
  // Same cache again: nothing new.
  EXPECT_EQ(writer.absorb(&qc, nullptr).verdicts, 0u);
  qc.insert(h(3, 4), false);
  EXPECT_EQ(writer.absorb(&qc, nullptr).verdicts, 1u);

  // Entries loaded at start are known and never re-appended.
  QueryCache qc2;
  CacheStore second(dir(), "w1");
  EXPECT_EQ(second.load(&qc2, nullptr).verdicts, 2u);
  EXPECT_EQ(second.absorb(&qc2, nullptr).verdicts, 0u);
}

TEST_F(CacheStoreTest, TornTailIsSkippedSilently) {
  QueryCache qc;
  qc.insert(h(1, 2), true);
  qc.insert(h(3, 4), false);
  CacheStore writer(dir(), "w0");
  writer.absorb(&qc, nullptr);

  // Simulate a writer killed mid-append: chop bytes off the last line.
  const std::string seg = writer.segmentPath();
  const auto size = fs::file_size(seg);
  fs::resize_file(seg, size - 3);

  QueryCache qc2;
  CacheStore reader(dir(), "w1");
  const auto loaded = reader.load(&qc2, nullptr);
  EXPECT_EQ(loaded.verdicts, 1u);
  EXPECT_EQ(loaded.bad_lines, 0u);  // torn tail, not corruption

  // An *interior* malformed line is corruption and is counted.
  {
    std::ofstream out(dir() + "/seg-bad.rvqc");
    out << "rvsym-cachestore-v1\n"
        << "v zz zz s\n"
        << "v 5 6 s\n";
  }
  QueryCache qc3;
  CacheStore reader2(dir(), "w2");
  const auto loaded2 = reader2.load(&qc3, nullptr);
  EXPECT_EQ(loaded2.bad_lines, 1u);
  EXPECT_EQ(qc3.lookup(h(5, 6)), std::optional<bool>(true));
}

TEST_F(CacheStoreTest, CompactMergesDedupesAndDropsSegments) {
  // Two writers with overlapping facts.
  QueryCache qc_a, qc_b;
  qc_a.insert(h(1, 2), true);
  qc_a.insert(h(3, 4), false);
  qc_b.insert(h(3, 4), false);  // duplicate fact
  qc_b.insert(h(5, 6), true);
  CacheStore a(dir(), "wa"), b(dir(), "wb");
  a.absorb(&qc_a, nullptr);
  b.absorb(&qc_b, nullptr);
  ASSERT_EQ(storeFileNames(dir()).size(), 2u);

  std::string err;
  const auto entries = CacheStore::compact(dir(), &err);
  ASSERT_TRUE(entries.has_value()) << err;
  EXPECT_EQ(*entries, 3u);
  EXPECT_EQ(storeFileNames(dir()),
            std::vector<std::string>{"main.rvqc"});

  // Everything is still loadable, exactly once.
  QueryCache qc2;
  CacheStore reader(dir(), "w1");
  EXPECT_EQ(reader.load(&qc2, nullptr).verdicts, 3u);
  EXPECT_EQ(qc2.lookup(h(1, 2)), std::optional<bool>(true));
  EXPECT_EQ(qc2.lookup(h(3, 4)), std::optional<bool>(false));
  EXPECT_EQ(qc2.lookup(h(5, 6)), std::optional<bool>(true));

  // Idempotent: compacting a compacted store changes nothing.
  const auto again = CacheStore::compact(dir(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(*again, 3u);
}

TEST_F(CacheStoreTest, CompactEmptyDirProducesEmptyMain) {
  fs::create_directories(dir());
  std::string err;
  const auto entries = CacheStore::compact(dir(), &err);
  ASSERT_TRUE(entries.has_value()) << err;
  EXPECT_EQ(*entries, 0u);
  QueryCache qc;
  CacheStore reader(dir(), "w0");
  EXPECT_EQ(reader.load(&qc, nullptr).verdicts, 0u);
}

TEST_F(CacheStoreTest, ModelAndCoreRoundTripThroughCompaction) {
  CexCache cex;
  cex.insertModel(h(5, 6), model({{h(10, 11), 42}}));
  cex.insertCore({h(20, 21)});
  CacheStore writer(dir(), "w0");
  writer.absorb(nullptr, &cex);
  std::string err;
  ASSERT_TRUE(CacheStore::compact(dir(), &err).has_value()) << err;

  CexCache cex2;
  CacheStore reader(dir(), "w1");
  const auto loaded = reader.load(nullptr, &cex2);
  EXPECT_EQ(loaded.models, 1u);
  EXPECT_EQ(loaded.cores, 1u);
  const auto m = cex2.lookupModel(h(5, 6));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get(h(10, 11)), std::optional<std::uint64_t>(42));
  EXPECT_TRUE(cex2.subsumesUnsat({h(20, 21), h(1, 1)}));
}

TEST_F(CacheStoreTest, LoadMissingDirIsEmpty) {
  QueryCache qc;
  CacheStore reader(dir() + "/nonexistent-sub", "w0");
  const auto loaded = reader.load(&qc, nullptr);
  EXPECT_EQ(loaded.verdicts, 0u);
}

}  // namespace
}  // namespace rvsym::solver
