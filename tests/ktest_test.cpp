// Tests for the KTest-style test-vector persistence: serialization
// round trips, corruption rejection, file and directory export, and the
// end-to-end generate → save → load → replay-lookup flow.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "symex/engine.hpp"
#include "symex/ktest.hpp"

namespace rvsym::symex {
namespace {

TestVector sampleVector() {
  TestVector tv;
  tv.values.push_back({"instr@80000000", 32, 0x00208033});
  tv.values.push_back({"reg_x1", 32, 0xDEADBEEF});
  tv.values.push_back({"mem@00001000", 8, 0x7F});
  tv.values.push_back({"wide", 64, 0xFFFFFFFFFFFFFFFFull});
  return tv;
}

TEST(KTest, SerializeParseRoundTrip) {
  const TestVector tv = sampleVector();
  const std::string text = serializeTestVector(tv);
  const std::optional<TestVector> back = parseTestVector(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->values.size(), tv.values.size());
  for (std::size_t i = 0; i < tv.values.size(); ++i) {
    EXPECT_EQ(back->values[i].name, tv.values[i].name);
    EXPECT_EQ(back->values[i].width, tv.values[i].width);
    EXPECT_EQ(back->values[i].value, tv.values[i].value);
  }
}

TEST(KTest, RejectsCorruptInput) {
  EXPECT_FALSE(parseTestVector("").has_value());
  EXPECT_FALSE(parseTestVector("wrong-magic\n1\nx 32 0\n").has_value());
  EXPECT_FALSE(parseTestVector("rvtest-v1\n2\nx 32 0\n").has_value());
  EXPECT_FALSE(parseTestVector("rvtest-v1\n1\nx 0 0\n").has_value());
  EXPECT_FALSE(parseTestVector("rvtest-v1\n1\nx 128 0\n").has_value());
}

TEST(KTest, EmptyVectorRoundTrips) {
  const std::optional<TestVector> back =
      parseTestVector(serializeTestVector(TestVector{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->values.empty());
}

TEST(KTest, FileSaveLoad) {
  const std::string path = "/tmp/rvsym_ktest_test.rvtest";
  ASSERT_TRUE(saveTestVector(sampleVector(), path));
  const std::optional<TestVector> back = loadTestVector(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->lookup("reg_x1"),
            std::make_optional<std::uint64_t>(0xDEADBEEF));
  std::remove(path.c_str());
  EXPECT_FALSE(loadTestVector(path).has_value());
}

TEST(KTest, ExportsReportVectors) {
  const std::string dir = "/tmp/rvsym_ktest_dir";
  std::filesystem::remove_all(dir);

  // Generate a few real vectors from a tiny exploration.
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.instr_limit = 1;
  EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 12;
  core::CoSimulation cosim(eb, cfg);
  Engine engine(eb, opts);
  const EngineReport report = engine.run(cosim.program());
  ASSERT_GT(report.test_vectors, 0u);

  const std::size_t written = exportReportVectors(report, dir);
  EXPECT_EQ(written, report.test_vectors);

  // Each exported file must load and contain the first instruction.
  const std::optional<TestVector> first =
      loadTestVector(dir + "/test000001.rvtest");
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->lookup("instr@80000000").has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rvsym::symex
