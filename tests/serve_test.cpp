// rvsym-serve tests: wire-protocol framing (partial I/O, oversized
// rejection), job-store crash/resume goldens, scheduler policy, and
// end-to-end daemon runs with thread workers — concurrent client
// submits, worker-crash containment, journal resume, and the warm
// persistent-cache acceptance check. The end-to-end suite doubles as
// the serve_tsan aggregate: every socket, decoder and scheduler touch
// happens across the test, daemon and worker threads.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analyze/json_reader.hpp"
#include "obs/fleet/history.hpp"
#include "obs/fleet/trace_merge.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "serve/jobstore.hpp"
#include "serve/proto.hpp"
#include "serve/scheduler.hpp"

namespace fs = std::filesystem;
using rvsym::obs::analyze::JsonValue;
using rvsym::obs::analyze::parseJson;
using namespace rvsym::serve;

namespace {

std::string makeTempDir() {
  char tmpl[] = "/tmp/rvsym_serve_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

struct TempDir {
  std::string path = makeTempDir();
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// --- Framing ------------------------------------------------------------------------------

TEST(Framing, RoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string a = "{\"cmd\":\"ping\"}";
  const std::string b(1000, 'x');
  std::string err;
  EXPECT_TRUE(writeFrame(sv[0], a, &err)) << err;
  EXPECT_TRUE(writeFrame(sv[0], b, &err)) << err;
  ::close(sv[0]);

  EXPECT_EQ(readFrame(sv[1], &err).value_or(""), a);
  EXPECT_EQ(readFrame(sv[1], &err).value_or(""), b);
  // Peer closed at a frame boundary: clean EOF, no error text.
  err = "sentinel";
  EXPECT_FALSE(readFrame(sv[1], &err).has_value());
  EXPECT_TRUE(err.empty());
  ::close(sv[1]);
}

TEST(Framing, TornEofIsAnError) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // A header promising 8 bytes, then only 3 and EOF.
  const std::string header = frameHeader(8);
  ASSERT_EQ(::write(sv[0], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  ASSERT_EQ(::write(sv[0], "abc", 3), 3);
  ::close(sv[0]);
  std::string err;
  EXPECT_FALSE(readFrame(sv[1], &err).has_value());
  EXPECT_FALSE(err.empty());
  ::close(sv[1]);
}

TEST(Framing, ReadFrameRejectsOversized) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string header = frameHeader(kMaxFrameBytes + 1);
  ASSERT_EQ(::write(sv[0], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  std::string err;
  EXPECT_FALSE(readFrame(sv[1], &err).has_value());
  EXPECT_FALSE(err.empty());
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Framing, WriteFrameRejectsOversized) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string err;
  EXPECT_FALSE(writeFrame(sv[0], std::string(kMaxFrameBytes + 1, 'x'), &err));
  EXPECT_FALSE(err.empty());
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Framing, DecoderByteAtATime) {
  // The decoder must reassemble frames no matter how the bytes are
  // chopped; one byte per feed() is the worst case poll() can deliver.
  const std::vector<std::string> payloads = {"{\"a\":1}", "{}",
                                             std::string(300, 'y')};
  std::string wire;
  for (const auto& p : payloads) wire += frameHeader(p.size()) + p;

  FrameDecoder dec;
  std::vector<std::string> out;
  for (char byte : wire) {
    dec.feed(std::string_view(&byte, 1));
    while (const auto f = dec.next()) out.push_back(*f);
  }
  EXPECT_EQ(out, payloads);
  EXPECT_FALSE(dec.corrupt());
}

TEST(Framing, DecoderRejectsOversizedAndStaysCorrupt) {
  FrameDecoder dec;
  dec.feed(frameHeader(kMaxFrameBytes + 1));
  std::string err;
  EXPECT_FALSE(dec.next(&err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(dec.corrupt());
  // Feeding more valid bytes doesn't resurrect the connection.
  const std::string good = "{}";
  dec.feed(frameHeader(good.size()) + good);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.corrupt());
}

TEST(Framing, DecoderRejectsZeroLength) {
  FrameDecoder dec;
  dec.feed(frameHeader(0));
  std::string err;
  EXPECT_FALSE(dec.next(&err).has_value());
  EXPECT_TRUE(dec.corrupt());
}

TEST(Framing, ParseEndpoint) {
  auto ep = parseEndpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ep->path, "/tmp/x.sock");
  EXPECT_EQ(ep->spec(), "unix:/tmp/x.sock");

  ep = parseEndpoint("tcp:8123");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(ep->port, 8123);

  // A bare path is a unix socket (the common case).
  ep = parseEndpoint("/run/rvsym.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::Unix);

  std::string err;
  EXPECT_FALSE(parseEndpoint("tcp:notaport", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// --- Job specs ----------------------------------------------------------------------------

TEST(JobSpecJson, RoundTrip) {
  JobSpec spec;
  spec.kind = "mutate";
  spec.mutant_ids = {"swap:bne:beq", "dec:srai:b13"};
  spec.min_instr_limit = 1;
  spec.max_instr_limit = 2;
  spec.max_paths_per_hunt = 5000;
  spec.max_seconds_per_hunt = 12.5;
  spec.num_symbolic_regs = 1;
  spec.scenario = "rv32i";
  spec.solver_opt = "all";
  spec.max_shards = 3;

  std::string err;
  const auto back = JobSpec::fromJsonText(spec.toJson(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->kind, spec.kind);
  EXPECT_EQ(back->mutant_ids, spec.mutant_ids);
  EXPECT_EQ(back->min_instr_limit, spec.min_instr_limit);
  EXPECT_EQ(back->max_instr_limit, spec.max_instr_limit);
  EXPECT_EQ(back->max_paths_per_hunt, spec.max_paths_per_hunt);
  EXPECT_EQ(back->max_seconds_per_hunt, spec.max_seconds_per_hunt);
  EXPECT_EQ(back->num_symbolic_regs, spec.num_symbolic_regs);
  EXPECT_EQ(back->max_shards, spec.max_shards);
  // Round trip is stable: rendering the parsed spec again is identical.
  EXPECT_EQ(back->toJson(), spec.toJson());
}

TEST(JobSpecJson, RejectsBadKind) {
  std::string err;
  EXPECT_FALSE(JobSpec::fromJsonText("{\"kind\":\"dance\"}", &err));
  EXPECT_FALSE(err.empty());
}

TEST(Units, VerifySweepIsThePaperTable) {
  JobSpec spec;
  spec.kind = "verify";
  const auto units = enumerateUnits(spec);
  ASSERT_TRUE(units.has_value());
  ASSERT_EQ(units->size(), 10u);
  EXPECT_EQ(units->front(), "E0");
  EXPECT_EQ(units->back(), "E9");
}

TEST(Units, MutateRejectsUnknownId) {
  JobSpec spec;
  spec.mutant_ids = {"dec:not:real"};
  std::string err;
  EXPECT_FALSE(enumerateUnits(spec, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Units, ReplayNeedsAReadableCorpus) {
  JobSpec spec;
  spec.kind = "replay";
  spec.corpus_dir = "/nonexistent/corpus";
  std::string err;
  EXPECT_FALSE(enumerateUnits(spec, &err).has_value());
  EXPECT_FALSE(err.empty());
}

// --- Job store ----------------------------------------------------------------------------

JobSpec tinySpec() {
  JobSpec spec;
  spec.mutant_ids = {"swap:bne:beq"};
  return spec;
}

TEST(JobStoreTest, AppendAndLoad) {
  TempDir dir;
  JobStore store(dir.path);
  EXPECT_EQ(store.nextJobId(), "j0");
  std::string err;
  ASSERT_TRUE(store.createJob("j0", tinySpec(), &err)) << err;
  EXPECT_FALSE(store.createJob("j0", tinySpec()));  // id taken
  EXPECT_EQ(store.nextJobId(), "j1");

  store.appendLine("j0", "{\"ev\":\"unit\",\"unit\":\"a\",\"verdict\":\"killed\"}");
  store.appendLine("j0", "{\"ev\":\"unit\",\"unit\":\"b\",\"verdict\":\"survived\"}");
  store.appendLine("j0", "{\"ev\":\"final\",\"status\":\"done\"}");

  const auto jobs = JobStore(dir.path).loadAll();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, "j0");
  EXPECT_TRUE(jobs[0].finished);
  EXPECT_EQ(jobs[0].unit_records.size(), 2u);
  EXPECT_NE(jobs[0].final_record.find("\"done\""), std::string::npos);
  EXPECT_TRUE(jobs[0].repair_note.empty());
}

TEST(JobStoreTest, FirstVerdictWins) {
  TempDir dir;
  JobStore store(dir.path);
  ASSERT_TRUE(store.createJob("j0", tinySpec()));
  store.appendLine("j0", "{\"ev\":\"unit\",\"unit\":\"a\",\"verdict\":\"killed\"}");
  store.appendLine("j0", "{\"ev\":\"unit\",\"unit\":\"a\",\"verdict\":\"survived\"}");
  const auto jobs = JobStore(dir.path).loadAll();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_NE(jobs[0].unit_records.at("a").find("killed"), std::string::npos);
}

TEST(JobStoreTest, TornTailIsDroppedAndRepaired) {
  TempDir dir;
  JobStore store(dir.path);
  ASSERT_TRUE(store.createJob("j0", tinySpec()));
  store.appendLine("j0", "{\"ev\":\"unit\",\"unit\":\"a\",\"verdict\":\"killed\"}");
  {
    // kill -9 mid-write: the journal ends in half a JSON object.
    std::ofstream out(store.journalPath("j0"),
                      std::ios::app | std::ios::binary);
    out << "{\"ev\":\"unit\",\"unit\":\"b\",\"verd";
  }
  auto jobs = JobStore(dir.path).loadAll();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].unit_records.size(), 1u);  // torn line dropped
  EXPECT_FALSE(jobs[0].finished);
  EXPECT_FALSE(jobs[0].repair_note.empty());

  // The repair truncated the file: a second load is clean, and a fresh
  // append starts on its own line.
  jobs = JobStore(dir.path).loadAll();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].repair_note.empty());
  JobStore(dir.path).appendLine(
      "j0", "{\"ev\":\"unit\",\"unit\":\"b\",\"verdict\":\"survived\"}");
  jobs = JobStore(dir.path).loadAll();
  EXPECT_EQ(jobs[0].unit_records.size(), 2u);
}

TEST(JobStoreTest, UnterminatedParsableTailIsCompleted) {
  TempDir dir;
  JobStore store(dir.path);
  ASSERT_TRUE(store.createJob("j0", tinySpec()));
  {
    // Flushed line, crash before the newline: parsable, keep it.
    std::ofstream out(store.journalPath("j0"),
                      std::ios::app | std::ios::binary);
    out << "{\"ev\":\"unit\",\"unit\":\"a\",\"verdict\":\"killed\"}";
  }
  auto jobs = JobStore(dir.path).loadAll();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].unit_records.size(), 1u);
  EXPECT_FALSE(jobs[0].repair_note.empty());
  // Repair appended the newline in place.
  jobs = JobStore(dir.path).loadAll();
  EXPECT_EQ(jobs[0].unit_records.size(), 1u);
  EXPECT_TRUE(jobs[0].repair_note.empty());
}

// --- Scheduler ----------------------------------------------------------------------------

std::vector<std::string> namedUnits(unsigned n) {
  std::vector<std::string> units;
  for (unsigned i = 0; i < n; ++i) units.push_back("u" + std::to_string(i));
  return units;
}

TEST(Sched, ShardsChopAndComplete) {
  Scheduler::Options so;
  so.units_per_shard = 4;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(10)));

  unsigned shards = 0, units = 0;
  while (const auto shard = sched.nextShard("w0")) {
    ++shards;
    for (const auto& u : shard->units) {
      (void)u;
      ++units;
      sched.onUnitDone("j0");
    }
    sched.onShardDone("w0", "j0", shard->index);
  }
  EXPECT_EQ(shards, 3u);  // 4 + 4 + 2
  EXPECT_EQ(units, 10u);
  const auto prog = sched.progress("j0");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->state, JobState::Done);
  EXPECT_EQ(prog->units_done, 10u);
  EXPECT_TRUE(sched.idle());
}

TEST(Sched, FairnessInterleavesJobs) {
  Scheduler::Options so;
  so.units_per_shard = 1;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(4)));
  ASSERT_TRUE(sched.submit("j1", 0, namedUnits(4)));
  // Two pulls without completions: the second must come from the other
  // job (fewest shards in flight), not drain j0 first.
  const auto first = sched.nextShard("w0");
  const auto second = sched.nextShard("w1");
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->job_id, "j0");
  EXPECT_EQ(second->job_id, "j1");
}

TEST(Sched, WorkStealingDrainsABusyJob) {
  Scheduler::Options so;
  so.units_per_shard = 1;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(6)));
  // Both workers pull from the same job: nothing pins shards to the
  // worker that started it.
  const auto a = sched.nextShard("w0");
  const auto b = sched.nextShard("w1");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->job_id, "j0");
  EXPECT_EQ(b->job_id, "j0");
  EXPECT_NE(a->index, b->index);
}

TEST(Sched, QuotaCapsShardsInFlight) {
  Scheduler::Options so;
  so.units_per_shard = 1;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", /*max_shards=*/1, namedUnits(4)));
  const auto a = sched.nextShard("w0");
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(sched.nextShard("w1").has_value());  // quota reached
  sched.onUnitDone("j0");
  sched.onShardDone("w0", "j0", a->index);
  EXPECT_TRUE(sched.nextShard("w1").has_value());  // slot freed
}

TEST(Sched, BackpressureRefusesPastMaxQueued) {
  Scheduler::Options so;
  so.max_queued_jobs = 2;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(1)));
  ASSERT_TRUE(sched.submit("j1", 0, namedUnits(1)));
  std::string why;
  EXPECT_FALSE(sched.submit("j2", 0, namedUnits(1), 0, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(sched.submit("j0", 0, namedUnits(1)));  // duplicate id

  // Finishing a job frees an admission slot.
  const auto shard = sched.nextShard("w0");
  ASSERT_TRUE(shard.has_value());
  sched.onUnitDone(shard->job_id);
  sched.onShardDone("w0", shard->job_id, shard->index);
  EXPECT_TRUE(sched.submit("j2", 0, namedUnits(1)));
}

TEST(Sched, CancelDropsTheQueue) {
  Scheduler::Options so;
  so.units_per_shard = 1;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(4)));
  const auto inflight = sched.nextShard("w0");
  ASSERT_TRUE(inflight.has_value());
  ASSERT_TRUE(sched.cancel("j0"));
  EXPECT_FALSE(sched.cancel("j0"));  // already terminal
  EXPECT_FALSE(sched.nextShard("w1").has_value());
  const auto prog = sched.progress("j0");
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->state, JobState::Cancelled);
  // The in-flight shard still drains.
  sched.onUnitDone("j0");
  sched.onShardDone("w0", "j0", inflight->index);
  EXPECT_TRUE(sched.idle());
}

TEST(Sched, WorkerGoneFailsItsJobs) {
  Scheduler::Options so;
  so.units_per_shard = 1;
  Scheduler sched(so);
  ASSERT_TRUE(sched.submit("j0", 0, namedUnits(2)));
  ASSERT_TRUE(sched.submit("j1", 0, namedUnits(2)));
  ASSERT_TRUE(sched.nextShard("w0").has_value());  // j0
  ASSERT_TRUE(sched.nextShard("w1").has_value());  // j1
  const auto failed = sched.onWorkerGone("w0");
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "j0");
  EXPECT_EQ(sched.progress("j0")->state, JobState::Failed);
  // j1 is untouched and still schedulable.
  EXPECT_EQ(sched.progress("j1")->state, JobState::Running);
  EXPECT_TRUE(sched.nextShard("w1").has_value());
}

// --- End to end ---------------------------------------------------------------------------

/// A daemon on its own thread with in-process workers. Stopped by a
/// drain command (not the signal flag) so the test threads never write
/// state the daemon thread reads unsynchronized.
struct DaemonHarness {
  TempDir dir;
  DaemonOptions opts;
  std::unique_ptr<Daemon> daemon;
  std::thread thread;
  bool running = false;

  Endpoint endpoint() const { return opts.endpoint; }

  bool start(const std::string& state_dir, const std::string& cache_dir = "",
             unsigned workers = 2, unsigned fail_after_units = 0) {
    opts.endpoint.kind = Endpoint::Kind::Unix;
    opts.endpoint.path = dir.path + "/sock";
    opts.state_dir = state_dir;
    opts.cache_dir = cache_dir;
    opts.workers = workers;
    opts.thread_workers = true;
    opts.worker_fail_after_units = fail_after_units;
    daemon = std::make_unique<Daemon>(opts);
    std::string err;
    if (!daemon->init(&err)) {
      ADD_FAILURE() << "daemon init: " << err;
      return false;
    }
    thread = std::thread([this] { daemon->run(); });
    running = true;
    return true;
  }

  void drainAndJoin() {
    if (!running) return;
    requestOnce(endpoint(), "{\"cmd\":\"drain\"}");
    thread.join();
    running = false;
  }

  ~DaemonHarness() { drainAndJoin(); }
};

/// submit + watch: streams unit records until the final record lands.
std::optional<JsonValue> submitAndWait(const Endpoint& ep,
                                       const JobSpec& spec,
                                       std::string* job_id = nullptr) {
  std::string err;
  const int fd = connectTo(ep, &err);
  if (fd < 0) {
    ADD_FAILURE() << "connect: " << err;
    return std::nullopt;
  }
  const auto reply = request(
      fd, "{\"cmd\":\"submit\",\"watch\":true,\"spec\":" + spec.toJson() + "}",
      &err);
  std::optional<JsonValue> final_rec;
  if (!reply) {
    ADD_FAILURE() << "submit: " << err;
  } else if (const auto v = parseJson(*reply);
             !v || !v->getBool("ok").value_or(false)) {
    ADD_FAILURE() << "submit refused: " << *reply;
  } else {
    if (job_id) *job_id = v->getString("job").value_or("");
    while (const auto frame = readFrame(fd, &err)) {
      const auto rec = parseJson(*frame);
      if (rec && rec->getString("ev").value_or("") == "final") {
        final_rec = rec;
        break;
      }
    }
    if (!final_rec) ADD_FAILURE() << "watch ended early: " << err;
  }
  ::close(fd);
  return final_rec;
}

/// Job verdict-set fingerprint from its journal: unit -> verdict.
std::map<std::string, std::string> verdictSet(const std::string& state_dir,
                                              const std::string& job_id) {
  std::map<std::string, std::string> out;
  for (const auto& job : JobStore(state_dir).loadAll()) {
    if (job.id != job_id) continue;
    for (const auto& [unit, line] : job.unit_records)
      if (const auto v = parseJson(line))
        out[unit] = v->getString("verdict").value_or("<error>");
  }
  return out;
}

JobSpec quickMutateSpec(std::vector<std::string> ids) {
  JobSpec spec;
  spec.kind = "mutate";
  spec.mutant_ids = std::move(ids);
  spec.max_instr_limit = 2;
  return spec;
}

TEST(ServeE2E, PingAndStatus) {
  DaemonHarness d;
  ASSERT_TRUE(d.start(d.dir.path + "/state"));
  const auto pong = requestOnce(d.endpoint(), "{\"cmd\":\"ping\"}");
  ASSERT_TRUE(pong.has_value());
  EXPECT_NE(pong->find("pong"), std::string::npos);

  const auto status = requestOnce(d.endpoint(), "{\"cmd\":\"status\"}");
  ASSERT_TRUE(status.has_value());
  const auto v = parseJson(*status);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->getBool("ok").value_or(false));
  EXPECT_EQ(v->getU64("workers").value_or(0), 2u);

  // The status_record reply is an rvsym-timeseries-v1 status document
  // (what rvsym-top --connect renders).
  const auto rec = requestOnce(d.endpoint(), "{\"cmd\":\"status_record\"}");
  ASSERT_TRUE(rec.has_value());
  const auto rv = parseJson(*rec);
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->getString("ev").value_or(""), "status");
  EXPECT_EQ(rv->getString("schema").value_or(""), "rvsym-timeseries-v1");
  EXPECT_EQ(rv->getString("kind").value_or(""), "serve");

  const auto bad = requestOnce(d.endpoint(), "{\"cmd\":\"frobnicate\"}");
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("unknown command"), std::string::npos);
}

TEST(ServeE2E, ConcurrentClientsSubmitAndSteal) {
  DaemonHarness d;
  ASSERT_TRUE(d.start(d.dir.path + "/state", "", /*workers=*/2));

  // Four clients race their submits; two workers pull shards from
  // whichever jobs are pending, so completions interleave.
  const std::vector<std::vector<std::string>> picks = {
      {"dec:srai:b13"},
      {"swap:bne:beq"},
      {"stuck:addi:b0=0"},
      {"dec:srai:b13", "swap:bne:beq"},
  };
  std::vector<std::optional<JsonValue>> finals(picks.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < picks.size(); ++i)
    clients.emplace_back([&, i] {
      finals[i] = submitAndWait(d.endpoint(), quickMutateSpec(picks[i]));
    });
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < picks.size(); ++i) {
    ASSERT_TRUE(finals[i].has_value()) << "client " << i;
    EXPECT_EQ(finals[i]->getString("status").value_or(""), "done");
    EXPECT_EQ(finals[i]->getU64("units_done").value_or(0), picks[i].size());
  }
  // Spot-check one deterministic verdict through the aggregate.
  const JsonValue* verdicts = finals[1]->find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  EXPECT_EQ(verdicts->getU64("killed").value_or(0), 1u);
}

TEST(ServeE2E, WorkerCrashFailsJobAndDaemonSurvives) {
  DaemonHarness d;
  // One worker that drops its connection after the first unit.
  ASSERT_TRUE(d.start(d.dir.path + "/state", "", /*workers=*/1,
                      /*fail_after_units=*/1));

  std::string job_id;
  const auto final_rec = submitAndWait(
      d.endpoint(),
      quickMutateSpec({"dec:srai:b13", "swap:bne:beq", "stuck:addi:b0=0"}),
      &job_id);
  ASSERT_TRUE(final_rec.has_value());
  EXPECT_EQ(final_rec->getString("status").value_or(""), "failed");
  // The verdict reported before the crash was journaled.
  EXPECT_GE(final_rec->getU64("units_done").value_or(99), 1u);
  EXPECT_LT(final_rec->getU64("units_done").value_or(99), 3u);

  // The daemon respawned the worker (without the fail hook) and keeps
  // serving: the next job completes.
  const auto second =
      submitAndWait(d.endpoint(), quickMutateSpec({"swap:bne:beq"}));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->getString("status").value_or(""), "done");
}

TEST(ServeE2E, RestartResumesToIdenticalVerdicts) {
  const std::vector<std::string> ids = {"dec:srai:b13", "dec:srai:b12",
                                        "swap:bne:beq", "stuck:addi:b0=0"};
  // Reference: one uninterrupted run.
  TempDir ref_state;
  std::string ref_job;
  {
    DaemonHarness d;
    ASSERT_TRUE(d.start(ref_state.path, "", /*workers=*/1));
    const auto final_rec =
        submitAndWait(d.endpoint(), quickMutateSpec(ids), &ref_job);
    ASSERT_TRUE(final_rec.has_value());
    ASSERT_EQ(final_rec->getString("status").value_or(""), "done");
  }
  const auto want = verdictSet(ref_state.path, ref_job);
  ASSERT_EQ(want.size(), ids.size());

  // Simulate kill -9 mid-campaign: a journal holding the header and the
  // first two unit verdicts, no final record.
  TempDir cut_state;
  {
    std::ifstream in(JobStore(ref_state.path).journalPath(ref_job),
                     std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ofstream out(JobStore(cut_state.path).journalPath(ref_job),
                      std::ios::binary);
    std::string line;
    for (int kept = 0; kept < 3 && std::getline(in, line); ++kept)
      out << line << "\n";  // header + 2 units
  }

  // Restart on the cut journal: init() resumes the job, judges only the
  // remaining units, and the verdict set converges to the reference.
  DaemonHarness d;
  ASSERT_TRUE(d.start(cut_state.path, "", /*workers=*/1));
  std::string err;
  const int fd = connectTo(d.endpoint(), &err);
  ASSERT_GE(fd, 0) << err;
  const auto reply =
      request(fd, "{\"cmd\":\"watch\",\"job\":\"" + ref_job + "\"}", &err);
  ASSERT_TRUE(reply.has_value()) << err;
  auto rec = parseJson(*reply);
  while (rec && rec->getString("ev").value_or("") != "final") {
    const auto frame = readFrame(fd, &err);
    ASSERT_TRUE(frame.has_value()) << err;
    rec = parseJson(*frame);
  }
  ::close(fd);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->getString("status").value_or(""), "done");
  EXPECT_EQ(rec->getU64("units_done").value_or(0), ids.size());

  EXPECT_EQ(verdictSet(cut_state.path, ref_job), want);
}

TEST(ServeE2E, WarmPersistentCacheCutsSatSolves) {
  const std::vector<std::string> ids = {"dec:srai:b12", "swap:bne:beq",
                                        "stuck:addi:b0=0"};
  TempDir cache;
  const std::string cache_dir = cache.path + "/qc";

  // Cold run: every query is a miss, solved for real, appended to the
  // store; the clean drain compacts the segments into main.rvqc.
  std::uint64_t cold_solves = 0;
  {
    DaemonHarness d;
    ASSERT_TRUE(d.start(d.dir.path + "/state", cache_dir, /*workers=*/1));
    const auto final_rec =
        submitAndWait(d.endpoint(), quickMutateSpec(ids));
    ASSERT_TRUE(final_rec.has_value());
    ASSERT_EQ(final_rec->getString("status").value_or(""), "done");
    cold_solves = final_rec->getU64("qc_sat_solves").value_or(0);
  }
  ASSERT_GE(cold_solves, 2u) << "cold run produced no solver work to cache";

  // Warm run: a fresh daemon + fresh worker on the same store. The
  // identical job must hit the persistent cache for at least half its
  // SAT solves (the acceptance bar; in practice nearly all hit).
  DaemonHarness d;
  ASSERT_TRUE(d.start(d.dir.path + "/state", cache_dir, /*workers=*/1));
  const auto final_rec = submitAndWait(d.endpoint(), quickMutateSpec(ids));
  ASSERT_TRUE(final_rec.has_value());
  ASSERT_EQ(final_rec->getString("status").value_or(""), "done");
  const std::uint64_t warm_solves =
      final_rec->getU64("qc_sat_solves").value_or(0);
  EXPECT_LE(warm_solves * 2, cold_solves)
      << "warm=" << warm_solves << " cold=" << cold_solves;
  EXPECT_GT(final_rec->getU64("qc_hits").value_or(0), 0u);
}

TEST(ServeE2E, CancelQueuedJobFinalizesCancelled) {
  DaemonHarness d;
  // Cancel races the judging, so the terminal status may be cancelled
  // (queue dropped in time) or done (the only shard was already in
  // flight); the contract under test is that a final record always
  // lands on the watch stream and the daemon stays responsive.
  ASSERT_TRUE(d.start(d.dir.path + "/state", "", /*workers=*/1));
  std::string err;
  const int fd = connectTo(d.endpoint(), &err);
  ASSERT_GE(fd, 0) << err;
  const auto reply = request(
      fd,
      "{\"cmd\":\"submit\",\"watch\":true,\"spec\":" +
          quickMutateSpec({"dec:srai:b13", "swap:bne:beq"}).toJson() + "}",
      &err);
  ASSERT_TRUE(reply.has_value()) << err;
  const auto v = parseJson(*reply);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->getBool("ok").value_or(false)) << *reply;
  const std::string job_id = v->getString("job").value_or("");

  const auto cancel_reply = requestOnce(
      d.endpoint(), "{\"cmd\":\"cancel\",\"job\":\"" + job_id + "\"}");
  ASSERT_TRUE(cancel_reply.has_value());

  // The watch stream still terminates with a final record.
  std::optional<JsonValue> final_rec;
  while (const auto frame = readFrame(fd, &err)) {
    const auto rec = parseJson(*frame);
    if (rec && rec->getString("ev").value_or("") == "final") {
      final_rec = rec;
      break;
    }
  }
  ::close(fd);
  ASSERT_TRUE(final_rec.has_value()) << err;
  const std::string status = final_rec->getString("status").value_or("");
  EXPECT_TRUE(status == "cancelled" || status == "done") << status;
  EXPECT_TRUE(requestOnce(d.endpoint(), "{\"cmd\":\"ping\"}").has_value());
}

// --- Fleet observability (DESIGN.md §14) --------------------------------------------------

TEST(ServeE2E, MetricsExpositionMatchesJournalAndIsByteStable) {
  DaemonHarness d;
  d.opts.trace_dir = d.dir.path + "/traces";
  ASSERT_TRUE(d.start(d.dir.path + "/state", "", /*workers=*/2));

  std::string j0, j1;
  const auto f0 = submitAndWait(
      d.endpoint(), quickMutateSpec({"dec:srai:b13", "swap:bne:beq"}), &j0);
  const auto f1 =
      submitAndWait(d.endpoint(), quickMutateSpec({"stuck:addi:b0=0"}), &j1);
  ASSERT_TRUE(f0.has_value());
  ASSERT_TRUE(f1.has_value());
  ASSERT_EQ(f0->getString("status").value_or(""), "done");
  ASSERT_EQ(f1->getString("status").value_or(""), "done");

  const auto scrape = [&]() -> std::string {
    const auto reply = requestOnce(d.endpoint(), "{\"cmd\":\"metrics\"}");
    EXPECT_TRUE(reply.has_value());
    if (!reply) return "";
    const auto v = parseJson(*reply);
    EXPECT_TRUE(v.has_value() && v->getBool("ok").value_or(false));
    return v ? v->getString("exposition").value_or("") : "";
  };
  const std::string text = scrape();

  // The acceptance identity: the fleet-wide solver-query counter at
  // quiescence equals the journal solver_checks sums exactly (the
  // worker mirrors the journal field per unit, so no telemetry-vs-
  // journal drift can creep in).
  std::uint64_t journal_checks = 0;
  for (const auto& job : JobStore(d.dir.path + "/state").loadAll())
    for (const auto& [unit, line] : job.unit_records)
      if (const auto v = parseJson(line))
        journal_checks += v->getU64("solver_checks").value_or(0);
  ASSERT_GT(journal_checks, 0u);
  const std::string needle =
      "rvsym_solver_queries_total " + std::to_string(journal_checks) + "\n";
  EXPECT_NE(text.find(needle), std::string::npos)
      << "journal sum " << journal_checks << " not in exposition:\n"
      << text;

  // Per-job series for both jobs, with their terminal state.
  EXPECT_NE(text.find("rvsym_job_state{job=\"" + j0 + "\",state=\"done\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rvsym_job_state{job=\"" + j1 + "\",state=\"done\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rvsym_serve_units_recorded_total 3"),
            std::string::npos);

  // No time-derived values render: an idle daemon scrapes byte-stable.
  EXPECT_EQ(text, scrape());

  // The workers request summarizes the same per-source snapshots.
  const auto wreply = requestOnce(d.endpoint(), "{\"cmd\":\"workers\"}");
  ASSERT_TRUE(wreply.has_value());
  const auto wv = parseJson(*wreply);
  ASSERT_TRUE(wv.has_value());
  ASSERT_TRUE(wv->getBool("ok").value_or(false));
  const JsonValue* wlist = wv->find("workers");
  ASSERT_NE(wlist, nullptr);
  EXPECT_GE(wlist->items().size(), 2u);
  std::uint64_t worker_units = 0;
  for (const auto& w : wlist->items())
    worker_units += w.getU64("units").value_or(0);
  EXPECT_EQ(worker_units, 3u);
}

TEST(ServeE2E, RunHistoryAppendsPerFinalizedJob) {
  const std::string state_dir = makeTempDir();
  std::string j0, j1;
  {
    DaemonHarness d;
    ASSERT_TRUE(d.start(state_dir, "", /*workers=*/2));
    const auto f0 = submitAndWait(
        d.endpoint(), quickMutateSpec({"dec:srai:b13", "swap:bne:beq"}), &j0);
    const auto f1 = submitAndWait(d.endpoint(),
                                  quickMutateSpec({"stuck:addi:b0=0"}), &j1);
    ASSERT_TRUE(f0.has_value());
    ASSERT_TRUE(f1.has_value());
  }
  rvsym::obs::fleet::RunHistory store(state_dir + "/runs.rvhx");
  std::vector<std::string> warnings;
  const auto runs = store.loadAll(&warnings);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].job, j0);
  EXPECT_EQ(runs[0].status, "done");
  EXPECT_EQ(runs[0].units_done, 2u);
  EXPECT_GT(runs[0].solver_checks, 0u);
  EXPECT_GT(runs[0].wall_s, 0.0);
  EXPECT_EQ(runs[1].job, j1);
  EXPECT_EQ(runs[1].units_done, 1u);
  // The journal's verdict mix lands in the record.
  std::uint64_t verdict_total = 0;
  for (const auto& [name, n] : runs[0].verdicts) verdict_total += n;
  EXPECT_EQ(verdict_total, 2u);
  fs::remove_all(state_dir);
}

TEST(ServeE2E, TraceDirYieldsMergeableChromeTraces) {
  DaemonHarness d;
  d.opts.trace_dir = d.dir.path + "/traces";
  ASSERT_TRUE(d.start(d.dir.path + "/state", "", /*workers=*/2));
  std::string job_id;
  const auto final_rec = submitAndWait(
      d.endpoint(), quickMutateSpec({"dec:srai:b13", "swap:bne:beq"}),
      &job_id);
  ASSERT_TRUE(final_rec.has_value());
  d.drainAndJoin();

  // The daemon trace always exists; at least one worker judged units.
  EXPECT_TRUE(fs::exists(d.opts.trace_dir + "/daemon.trace.json"));
  std::size_t worker_traces = 0;
  for (const auto& ent : fs::directory_iterator(d.opts.trace_dir))
    if (ent.path().filename().string().rfind("worker-", 0) == 0)
      ++worker_traces;
  ASSERT_GE(worker_traces, 1u);

  const std::string out = d.opts.trace_dir + "/merged.trace.json";
  std::string err;
  const auto stats =
      rvsym::obs::fleet::mergeChromeTraceDir(d.opts.trace_dir, out, &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_EQ(stats->files, 1u + worker_traces);

  // The merged timeline holds the job -> shard -> unit containment
  // within the worker's pid.
  const std::ifstream in(out, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = parseJson(buf.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::optional<JsonValue> job_span, shard_span;
  for (const auto& ev : events->items()) {
    if (ev.getString("ph").value_or("") != "X") continue;
    const std::string name = ev.getString("name").value_or("");
    // The worker-side job envelope (the daemon also emits one under its
    // own pid; the worker's carries the shard).
    if (name == "job " + job_id && ev.getU64("pid").value_or(0) != 1)
      job_span = ev;
    if (name == "shard " + job_id + "/0") shard_span = ev;
  }
  ASSERT_TRUE(job_span.has_value());
  ASSERT_TRUE(shard_span.has_value());
  EXPECT_EQ(job_span->getU64("pid").value_or(0),
            shard_span->getU64("pid").value_or(0));
  const std::uint64_t jts = job_span->getU64("ts").value_or(0);
  const std::uint64_t jdur = job_span->getU64("dur").value_or(0);
  const std::uint64_t sts = shard_span->getU64("ts").value_or(0);
  const std::uint64_t sdur = shard_span->getU64("dur").value_or(0);
  EXPECT_LE(jts, sts);
  EXPECT_LE(sts + sdur, jts + jdur);
}

}  // namespace
