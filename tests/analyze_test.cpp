// Tests for the offline analysis layer (src/obs/analyze): the JSON
// reader, path-tree reconstruction from the JSONL lifecycle trace, the
// coverage replay, the HTML rendering and the run differ — including
// the round-trip acceptance checks: tree-derived counts equal the
// engine's report, per-path solver-time attribution sums to the metrics
// registry's total, and jobs=1 vs jobs=N runs diff clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "core/session.hpp"
#include "fault/faults.hpp"
#include "obs/analyze/coverage_map.hpp"
#include "obs/analyze/diff.hpp"
#include "obs/analyze/json_reader.hpp"
#include "obs/analyze/path_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rvsym;
using namespace rvsym::obs::analyze;

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_EQ(parseJson("true")->asBool(), true);
  EXPECT_EQ(parseJson("false")->asBool(), false);
  EXPECT_DOUBLE_EQ(parseJson("42")->asDouble(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->asDouble(), -1500.0);
  EXPECT_EQ(parseJson("\"hi\"")->asString(), "hi");
}

TEST(JsonReader, ParsesNestedStructure) {
  const auto v = parseJson(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": true})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->isObject());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].getString("b"), "x");
  EXPECT_TRUE(v->find("c")->find("d")->isNull());
  EXPECT_EQ(v->getBool("e"), true);
}

TEST(JsonReader, DecodesEscapes) {
  const auto v = parseJson(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(v.has_value());
  // A = 'A'; é = é in UTF-8 (0xC3 0xA9).
  EXPECT_EQ(v->asString(), std::string("a\"b\\c\ndA\xC3\xA9"));
}

TEST(JsonReader, DecodesSurrogatePairs) {
  const auto v = parseJson(R"("😀")");  // U+1F600
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->asString(), std::string("\xF0\x9F\x98\x80"));
}

TEST(JsonReader, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parseJson("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parseJson("[1,]").has_value());
  EXPECT_FALSE(parseJson("{\"a\" 1}").has_value());
  EXPECT_FALSE(parseJson("12 34").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
}

TEST(JsonReader, RoundTripsTraceEventOutput) {
  // What the writer emits, the reader must parse.
  obs::TraceEvent ev("path_end");
  ev.num("path", std::uint64_t{7})
      .str("msg", "quote \" and \n control")
      .boolean("has_test", true)
      .num("t_solver_us", std::uint64_t{123});
  const auto v = parseJson(ev.toJsonl());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->getString("ev"), "path_end");
  EXPECT_EQ(v->getU64("path"), 7u);
  EXPECT_EQ(v->getString("msg"), "quote \" and \n control");
  EXPECT_EQ(v->getBool("has_test"), true);
  EXPECT_EQ(v->getU64("t_solver_us"), 123u);
}

// ---------------------------------------------------------------------------
// Path-tree reconstruction on a hand-written trace

std::vector<std::string> miniTrace() {
  return {
      R"({"ev":"run_start","searcher":"dfs","jobs":1,"trace_version":1})",
      R"({"ev":"schedule","path":0,"depth":0})",
      R"({"ev":"fork","path":1,"parent":0,"depth":1})",
      R"({"ev":"fork","path":2,"parent":0,"depth":2})",
      R"({"ev":"path_end","path":0,"end":"completed","instr":2,"decisions":2,)"
      R"("forks":2,"solver_checks":5,"has_test":true,"msg":"",)"
      R"("tags":"class:alu,op:addi","test":"instr@80000000=32:13",)"
      R"("t_solver_us":100,"t_rtl_us":40})",
      R"({"ev":"fork","path":3,"parent":2,"depth":3})",
      R"({"ev":"path_end","path":2,"end":"error","instr":1,"decisions":2,)"
      R"("forks":1,"solver_checks":3,"has_test":false,"msg":"boom",)"
      R"("t_solver_us":50})",
      R"({"ev":"path_end","path":3,"end":"infeasible","instr":0,)"
      R"("decisions":0,"forks":0,"solver_checks":1,"has_test":false,)"
      R"("msg":"","t_solver_us":25})",
      // Path 1 forked but never scheduled: stays unexplored.
      R"({"ev":"run_end","paths":4,"completed":1,"errors":1,"unexplored":1,)"
      R"("instr":3,"t_s":0.1})",
  };
}

TEST(PathTree, ReconstructsStructure) {
  std::string err;
  const auto tree = PathTree::fromTraceLines(miniTrace(), &err);
  ASSERT_TRUE(tree.has_value()) << err;
  EXPECT_EQ(tree->size(), 4u);
  EXPECT_EQ(tree->jobs(), 1u);
  EXPECT_EQ(tree->searcher(), "dfs");

  const PathNode& root = tree->root();
  EXPECT_EQ(root.children, (std::vector<std::uint64_t>{1, 2}));
  ASSERT_NE(tree->node(3), nullptr);
  EXPECT_EQ(tree->node(3)->parent, 2u);

  const TreeCounts c = tree->counts();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.error, 1u);
  EXPECT_EQ(c.infeasible, 1u);
  EXPECT_EQ(c.unexplored, 1u);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.instructions, 3u);
  EXPECT_EQ(c.tests, 1u);
}

TEST(PathTree, AttributesTime) {
  const auto tree = PathTree::fromTraceLines(miniTrace());
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->totalUs("solver"), 175u);
  EXPECT_EQ(tree->totalUs("rtl"), 40u);

  // Subtree rollup: path 2's subtree = paths 2 and 3.
  const SubtreeStats sub = tree->subtree(2);
  EXPECT_EQ(sub.paths, 2u);
  EXPECT_EQ(sub.solverUs(), 75u);
  EXPECT_EQ(sub.solver_checks, 4u);

  const auto top = tree->topPaths(2, "solver");
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->id, 0u);
  EXPECT_EQ(top[1]->id, 2u);

  const auto by_class = tree->timeByTag("class:", "solver");
  ASSERT_EQ(by_class.size(), 1u);
  EXPECT_EQ(by_class.at("class:alu"), 100u);
}

TEST(PathTree, RejectsTracesWithoutRunStart) {
  std::string err;
  EXPECT_FALSE(
      PathTree::fromTraceLines({R"({"ev":"fork","path":1,"parent":0})"}, &err)
          .has_value());
  EXPECT_NE(err.find("run_start"), std::string::npos);
}

TEST(PathTree, RejectsForkFromUnknownParent) {
  std::string err;
  const std::vector<std::string> lines = {
      R"({"ev":"run_start","searcher":"dfs","jobs":1,"trace_version":1})",
      R"({"ev":"fork","path":5,"parent":9,"depth":1})",
  };
  EXPECT_FALSE(PathTree::fromTraceLines(lines, &err).has_value());
  EXPECT_NE(err.find("unknown parent"), std::string::npos);
}

TEST(PathTree, SkipsNonTraceLines) {
  std::vector<std::string> lines = miniTrace();
  lines.insert(lines.begin() + 1, "");
  lines.insert(lines.begin() + 2, "some interleaved log output");
  const auto tree = PathTree::fromTraceLines(lines);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 4u);
}

TEST(CoverageMap, ParsesSerializedTestVectors) {
  const auto tv =
      parseSerializedTest("reg_x1=32:0 instr@80000000=32:fe010ee3");
  ASSERT_TRUE(tv.has_value());
  ASSERT_EQ(tv->values.size(), 2u);
  EXPECT_EQ(tv->values[0].name, "reg_x1");
  EXPECT_EQ(tv->values[0].width, 32u);
  EXPECT_EQ(tv->values[0].value, 0u);
  EXPECT_EQ(tv->values[1].name, "instr@80000000");
  EXPECT_EQ(tv->values[1].value, 0xfe010ee3u);

  EXPECT_FALSE(parseSerializedTest("malformed-token").has_value());
  EXPECT_FALSE(parseSerializedTest("a=32:zz").has_value());
}

// ---------------------------------------------------------------------------
// Round trip against a real engine run (the acceptance criteria). These
// need a live trace, so they vanish when the event sites are compiled
// out with -DRVSYM_DISABLE_TRACING=ON.
#ifndef RVSYM_OBS_NO_TRACING

core::SessionReport runFaultScenario(unsigned jobs, obs::TraceSink* trace,
                                     obs::MetricsRegistry* metrics) {
  expr::ExprBuilder eb;
  core::SessionOptions opts;
  opts.cosim.rtl = rtl::fixedRtlConfig();
  opts.cosim.iss.csr = iss::CsrConfig::specCorrect();
  opts.cosim.instr_limit = 1;
  opts.cosim.instr_constraint =
      core::CoSimulation::blockSystemInstructions();
  opts.cosim.metrics = metrics;
  // E5 (decoder don't-care) + a modest budget: enough paths for a real
  // tree with forks, errors and test vectors, small enough for CI.
  for (const fault::InjectedError& e : fault::allErrors())
    if (std::string(e.id) == "E5") e.apply(opts.cosim);
  opts.engine.max_paths = 60;
  opts.engine.stop_on_error = false;
  opts.engine.jobs = jobs;
  opts.engine.trace = trace;
  opts.engine.metrics = metrics;
  core::VerificationSession session(eb, opts);
  return session.run();
}

TEST(RoundTrip, TreeCountsMatchEngineReport) {
  obs::BufferTraceSink trace;
  obs::MetricsRegistry metrics;
  const core::SessionReport report = runFaultScenario(1, &trace, &metrics);
  ASSERT_GT(report.engine.totalPaths(), 10u);
  ASSERT_GT(report.engine.error_paths, 0u);

  std::string err;
  const auto tree = PathTree::fromTraceLines(trace.lines(), &err);
  ASSERT_TRUE(tree.has_value()) << err;

  // The tree, rebuilt from the trace alone, reproduces the engine's
  // verdict counters exactly.
  const TreeCounts c = tree->counts();
  EXPECT_EQ(c.completed, report.engine.completed_paths);
  EXPECT_EQ(c.error, report.engine.error_paths);
  EXPECT_EQ(c.infeasible, report.engine.infeasible_paths);
  EXPECT_EQ(c.limited, report.engine.limited_paths);
  EXPECT_EQ(c.unexplored, report.engine.unexplored_forks);
  EXPECT_EQ(c.total(), report.engine.totalPaths());
  EXPECT_EQ(c.instructions, report.engine.instructions);
  EXPECT_EQ(c.tests, report.engine.test_vectors);
}

TEST(RoundTrip, SolverTimeAttributionSumsToRegistryTotal) {
  obs::BufferTraceSink trace;
  obs::MetricsRegistry metrics;
  runFaultScenario(1, &trace, &metrics);

  const auto tree = PathTree::fromTraceLines(trace.lines());
  ASSERT_TRUE(tree.has_value());

  // Per-path t_solver_us fields and the registry's solver.check_us
  // histogram time the identical SolveTimer population, so at jobs=1
  // the sums agree exactly (the acceptance bound is 1%).
  const std::uint64_t tree_us = tree->totalUs("solver");
  const std::uint64_t registry_us =
      metrics.histogram("solver.check_us").sumMicros();
  EXPECT_EQ(tree_us, registry_us);
}

TEST(RoundTrip, CoverageFromTraceMatchesCoverageFromReport) {
  obs::BufferTraceSink trace;
  const core::SessionReport report = runFaultScenario(1, &trace, nullptr);

  const auto tree = PathTree::fromTraceLines(trace.lines());
  ASSERT_TRUE(tree.has_value());
  const core::CoverageCollector from_trace = coverageFromTree(*tree);

  core::CoverageCollector from_report;
  from_report.addReport(report.engine);

  EXPECT_EQ(from_trace.opcodesCovered(), from_report.opcodesCovered());
  EXPECT_EQ(from_trace.coveredCells(), from_report.coveredCells());
  EXPECT_EQ(from_trace.csrAddresses(), from_report.csrAddresses());
  EXPECT_EQ(from_trace.trapCauses(), from_report.trapCauses());
  EXPECT_EQ(from_trace.voterChannels(), from_report.voterChannels());
  EXPECT_EQ(from_trace.distinctWords(), from_report.distinctWords());
}

TEST(RoundTrip, DiffReportsParityAcrossJobs) {
  obs::BufferTraceSink trace1, trace2;
  runFaultScenario(1, &trace1, nullptr);
  runFaultScenario(2, &trace2, nullptr);

  auto tree1 = PathTree::fromTraceLines(trace1.lines());
  auto tree2 = PathTree::fromTraceLines(trace2.lines());
  ASSERT_TRUE(tree1.has_value());
  ASSERT_TRUE(tree2.has_value());

  RunArtifacts a, b;
  a.tree = std::move(*tree1);
  a.coverage = coverageFromTree(a.tree);
  b.tree = std::move(*tree2);
  b.coverage = coverageFromTree(b.tree);
  const DiffResult diff = diffRuns(a, b);
  EXPECT_TRUE(diff.identical()) << diff.render();
}

TEST(RoundTrip, DiffDetectsMutatedTrace) {
  obs::BufferTraceSink trace;
  runFaultScenario(1, &trace, nullptr);

  std::vector<std::string> mutated = trace.lines();
  // Flip one deterministic field: the first error verdict.
  bool flipped = false;
  for (std::string& line : mutated) {
    const std::size_t pos = line.find("\"end\":\"error\"");
    if (pos != std::string::npos) {
      line.replace(pos, 13, "\"end\":\"completed\"");
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);

  auto tree1 = PathTree::fromTraceLines(trace.lines());
  auto tree2 = PathTree::fromTraceLines(mutated);
  ASSERT_TRUE(tree1.has_value());
  ASSERT_TRUE(tree2.has_value());
  RunArtifacts a, b;
  a.tree = std::move(*tree1);
  b.tree = std::move(*tree2);
  const DiffResult diff = diffRuns(a, b);
  EXPECT_FALSE(diff.identical());
  // The difference names the path whose verdict changed.
  bool mentions_end = false;
  for (const std::string& d : diff.differences)
    if (d.find("end differs") != std::string::npos) mentions_end = true;
  EXPECT_TRUE(mentions_end) << diff.render();
}

TEST(RoundTrip, HtmlReportEmbedsCoverageData) {
  obs::BufferTraceSink trace;
  runFaultScenario(1, &trace, nullptr);
  const auto tree = PathTree::fromTraceLines(trace.lines());
  ASSERT_TRUE(tree.has_value());
  const core::CoverageCollector cov = coverageFromTree(*tree);

  const std::string html = renderHtmlReport(cov, &*tree, "unit test");
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("coverage-data"), std::string::npos);
  // The embedded JSON island must itself parse and carry the cell map.
  const std::size_t open = html.find("id=\"coverage-data\">");
  ASSERT_NE(open, std::string::npos);
  const std::size_t start = html.find('\n', open) + 1;
  const std::size_t end = html.find("</script>", start);
  ASSERT_NE(end, std::string::npos);
  const auto data = parseJson(html.substr(start, end - start));
  ASSERT_TRUE(data.has_value());
  const JsonValue* cells = data->find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->getU64("total"), 48u);
}

#endif  // RVSYM_OBS_NO_TRACING

}  // namespace
