// Tests for the path-exploration engine: forking, replay alignment,
// known-bits fast path, assume pruning, searchers, budgets and test-vector
// generation.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "symex/engine.hpp"
#include "symex/knownbits.hpp"
#include "symex/state.hpp"

namespace rvsym::symex {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;

EngineOptions defaultOptions() {
  EngineOptions o;
  o.stop_on_error = false;
  return o;
}

// --- Known bits ----------------------------------------------------------------

TEST(KnownBits, EqConstOnExtractRecordsField) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto instr = eb.variable("instr", 32);
  kb.assumeTrue(eb.eq(eb.extract(instr, 0, 7), eb.constant(0x33, 7)));

  // The same field compared against the same constant is decided true...
  auto same = eb.eq(eb.extract(instr, 0, 7), eb.constant(0x33, 7));
  EXPECT_EQ(kb.tryEvalBool(same), std::make_optional(true));
  // ...and against a different constant decided false.
  auto other = eb.eq(eb.extract(instr, 0, 7), eb.constant(0x13, 7));
  EXPECT_EQ(kb.tryEvalBool(other), std::make_optional(false));
  // An unrelated field stays unknown.
  auto funct3 = eb.eq(eb.extract(instr, 12, 3), eb.constant(0, 3));
  EXPECT_EQ(kb.tryEvalBool(funct3), std::nullopt);
}

TEST(KnownBits, SubFieldOfKnownFieldIsKnown) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto instr = eb.variable("instr", 32);
  kb.assumeTrue(eb.eq(eb.extract(instr, 0, 8), eb.constant(0xA5, 8)));
  auto low_nibble = eb.eq(eb.extract(instr, 0, 4), eb.constant(0x5, 4));
  EXPECT_EQ(kb.tryEvalBool(low_nibble), std::make_optional(true));
  auto high_nibble = eb.eq(eb.extract(instr, 4, 4), eb.constant(0x3, 4));
  EXPECT_EQ(kb.tryEvalBool(high_nibble), std::make_optional(false));
}

TEST(KnownBits, SingleBitFacts) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto v = eb.variable("v", 32);
  kb.assumeTrue(eb.bit(v, 3));                 // bit 3 == 1
  kb.assumeTrue(eb.notOp(eb.bit(v, 4)));       // bit 4 == 0
  EXPECT_EQ(kb.tryEvalBool(eb.bit(v, 3)), std::make_optional(true));
  EXPECT_EQ(kb.tryEvalBool(eb.bit(v, 4)), std::make_optional(false));
  EXPECT_EQ(kb.tryEvalBool(eb.bit(v, 5)), std::nullopt);
}

TEST(KnownBits, ConjunctionDescends) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto v = eb.variable("v", 16);
  kb.assumeTrue(eb.boolAnd(eb.eq(eb.extract(v, 0, 8), eb.constant(1, 8)),
                           eb.eq(eb.extract(v, 8, 8), eb.constant(2, 8))));
  EXPECT_EQ(kb.tryEvalBool(eb.eqConst(v, 0x0201)), std::make_optional(true));
  EXPECT_EQ(kb.tryEvalBool(eb.eqConst(v, 0x0202)), std::make_optional(false));
}

TEST(KnownBits, ComputePropagatesThroughOps) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto v = eb.variable("v", 8);
  kb.assumeTrue(eb.eqConst(v, 0x0F));
  EXPECT_EQ(kb.tryEvalBool(
                eb.eq(eb.andOp(v, eb.constant(0xF0, 8)), eb.constant(0, 8))),
            std::make_optional(true));
  EXPECT_EQ(kb.tryEvalBool(
                eb.eq(eb.xorOp(v, eb.constant(0xFF, 8)), eb.constant(0xF0, 8))),
            std::make_optional(true));
  EXPECT_EQ(kb.tryEvalBool(eb.ult(v, eb.constant(0x10, 8))),
            std::make_optional(true));
  EXPECT_EQ(kb.tryEvalBool(eb.slt(v, eb.constant(0, 8))),
            std::make_optional(false));
}

TEST(KnownBits, AddCarriesThroughKnownLowBits) {
  ExprBuilder eb;
  KnownBitsTracker kb;
  auto v = eb.variable("v", 8);
  kb.assumeTrue(eb.eq(eb.extract(v, 0, 4), eb.constant(0xF, 4)));
  // v + 1 has low nibble 0 regardless of the unknown high nibble.
  auto sum_low =
      eb.eq(eb.extract(eb.add(v, eb.constant(1, 8)), 0, 4), eb.constant(0, 4));
  EXPECT_EQ(kb.tryEvalBool(sum_low), std::make_optional(true));
}

TEST(KnownBits, ComputeIsSoundOnRandomExpressions) {
  // Soundness property: whatever compute() claims to know about an
  // expression must hold under EVERY assignment consistent with the
  // recorded facts. Exercised over random small expressions and random
  // bit-level facts, checked by brute force.
  std::mt19937 rng(0x50D1);
  for (int round = 0; round < 150; ++round) {
    ExprBuilder eb;
    KnownBitsTracker kb;
    auto v = eb.variable("v", 6);

    // Random facts: a random subfield pinned to a random value.
    const unsigned lo = rng() % 5;
    const unsigned w = 1 + rng() % (6 - lo);
    const std::uint64_t field = rng() & expr::widthMask(w);
    kb.assumeTrue(eb.eq(eb.extract(v, lo, w), eb.constant(field, w)));

    // Random expression over v.
    ExprRef e;
    switch (rng() % 8) {
      case 0: e = eb.andOp(v, eb.constant(rng() & 63, 6)); break;
      case 1: e = eb.orOp(v, eb.constant(rng() & 63, 6)); break;
      case 2: e = eb.xorOp(v, eb.constant(rng() & 63, 6)); break;
      case 3: e = eb.add(v, eb.constant(rng() & 63, 6)); break;
      case 4: e = eb.notOp(v); break;
      case 5: e = eb.extract(eb.zext(v, 12), rng() % 6, 4); break;
      case 6: e = eb.concat(eb.extract(v, 0, 3), eb.extract(v, 3, 3)); break;
      default:
        e = eb.ite(eb.eqConst(eb.extract(v, 0, 2), rng() & 3),
                   eb.constant(rng() & 63, 6), v);
        break;
    }

    const KnownBits claimed = kb.compute(e);
    // Brute force over all v consistent with the fact.
    for (std::uint64_t val = 0; val < 64; ++val) {
      if (((val >> lo) & expr::widthMask(w)) != field) continue;
      expr::Assignment asg;
      asg.set(v->variableId(), val);
      const std::uint64_t actual = expr::evaluate(e, asg);
      EXPECT_EQ(actual & claimed.mask, claimed.value & claimed.mask)
          << "round " << round << " v=" << val;
    }
  }
}

// --- Engine: path enumeration -----------------------------------------------------

TEST(Engine, EnumeratesAllLeavesOfBranchTree) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  std::multiset<int> leaves;
  auto report = engine.run([&](ExecState& st) {
    auto v = st.makeSymbolic("v", 2);
    int leaf = 0;
    if (st.branch(st.builder().bit(v, 0))) leaf |= 1;
    if (st.branch(st.builder().bit(v, 1))) leaf |= 2;
    leaves.insert(leaf);
  });
  EXPECT_EQ(report.completed_paths, 4u);
  EXPECT_EQ(report.error_paths, 0u);
  EXPECT_EQ(leaves.size(), 4u);
  EXPECT_EQ(std::set<int>(leaves.begin(), leaves.end()).size(), 4u);
}

TEST(Engine, ConstraintsPruneInfeasibleDirections) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    st.assume(b.ult(v, b.constant(10, 8)));
    // Infeasible direction must not fork.
    if (st.branch(b.uge(v, b.constant(100, 8)))) st.fail("impossible");
  });
  EXPECT_EQ(report.completed_paths, 1u);
  EXPECT_EQ(report.error_paths, 0u);
}

TEST(Engine, AssumeFalseTerminatesInfeasible) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    st.assume(st.builder().falseExpr());
    FAIL() << "unreachable";
  });
  EXPECT_EQ(report.completed_paths, 0u);
  EXPECT_EQ(report.infeasible_paths, 1u);
}

TEST(Engine, ContradictoryAssumesPrune) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    st.assume(b.eqConst(v, 3));
    st.assume(b.eqConst(v, 4));
    FAIL() << "unreachable";
  });
  EXPECT_EQ(report.infeasible_paths, 1u);
}

TEST(Engine, ErrorPathsCarryMessageAndTestVector) {
  ExprBuilder eb;
  EngineOptions opts = defaultOptions();
  Engine engine(eb, opts);
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("magic", 32);
    if (st.branch(b.eqConst(v, 0xDEADBEEF))) st.fail("found magic");
  });
  EXPECT_EQ(report.error_paths, 1u);
  EXPECT_EQ(report.completed_paths, 1u);
  const PathRecord* err = report.firstError();
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->message, "found magic");
  ASSERT_TRUE(err->has_test);
  EXPECT_EQ(err->test.lookup("magic"), std::make_optional<std::uint64_t>(0xDEADBEEF));
}

TEST(Engine, StopOnErrorLeavesForksUnexplored) {
  ExprBuilder eb;
  EngineOptions opts = defaultOptions();
  opts.stop_on_error = true;
  opts.take_true_first = true;
  Engine engine(eb, opts);
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    // First branch forks; true direction errors immediately.
    if (st.branch(b.eqConst(v, 1))) st.fail("bug");
    // False direction would keep forking — should never be scheduled.
    st.branch(b.eqConst(v, 2));
    st.branch(b.eqConst(v, 3));
  });
  EXPECT_EQ(report.error_paths, 1u);
  EXPECT_TRUE(report.stopped_early);
  EXPECT_GE(report.unexplored_forks, 1u);
  EXPECT_GE(report.partialPaths(), 2u);
}

TEST(Engine, KnownBitsAvoidsSolverOnRedundantBranches) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto instr = st.makeSymbolic("instr", 32);
    st.assume(b.eq(b.extract(instr, 0, 7), b.constant(0x33, 7)));
    // Decoder-style cascade: all of these are decided by known bits.
    EXPECT_TRUE(st.branch(b.eq(b.extract(instr, 0, 7), b.constant(0x33, 7))));
    EXPECT_FALSE(st.branch(b.eq(b.extract(instr, 0, 7), b.constant(0x13, 7))));
    EXPECT_FALSE(st.branch(b.eq(b.extract(instr, 0, 7), b.constant(0x03, 7))));
  });
  EXPECT_EQ(report.completed_paths, 1u);
  EXPECT_GE(report.knownbits_decided, 3u);
  EXPECT_EQ(report.solver_decided, 0u);
}

TEST(Engine, ForkedConstraintsFeedKnownBits) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  std::uint64_t knownbits_hits = 0;
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 4);
    // This branch forks; afterwards each side knows the field value.
    const bool is5 = st.branch(b.eqConst(v, 5));
    if (is5) {
      EXPECT_TRUE(st.branch(b.eqConst(v, 5)));
      knownbits_hits += st.stats().knownbits_decided;
    }
  });
  EXPECT_EQ(report.completed_paths, 2u);
  EXPECT_GE(knownbits_hits, 1u);
}

TEST(Engine, ConcretizePinsValue) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("addr", 32);
    st.assume(b.ult(v, b.constant(0x100, 32)));
    const std::uint64_t val = st.concretize(v);
    EXPECT_LT(val, 0x100u);
    // After pinning, equality with the value must be definitely true.
    EXPECT_TRUE(st.mustBeTrue(b.eqConst(v, val)));
  });
  EXPECT_EQ(report.completed_paths, 1u);
}

TEST(Engine, InstructionBudgetStopsRun) {
  ExprBuilder eb;
  EngineOptions opts = defaultOptions();
  opts.max_instructions = 10;
  Engine engine(eb, opts);
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    st.countInstruction(4);
    // 256 leaves: far more work than the 10-instruction budget allows.
    for (unsigned i = 0; i < 8; ++i) st.branch(b.bit(v, i));
  });
  EXPECT_TRUE(report.stopped_early);
  EXPECT_GE(report.instructions, 10u);
}

TEST(Engine, MaxPathsBudget) {
  ExprBuilder eb;
  EngineOptions opts = defaultOptions();
  opts.max_paths = 3;
  Engine engine(eb, opts);
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    for (unsigned i = 0; i < 8; ++i) st.branch(b.bit(v, i));
  });
  EXPECT_TRUE(report.stopped_early);
  EXPECT_EQ(report.completed_paths, 3u);
  EXPECT_GE(report.unexplored_forks, 1u);
}

TEST(Engine, SearchersCoverSameLeaves) {
  for (auto searcher : {EngineOptions::Searcher::Dfs,
                        EngineOptions::Searcher::Bfs,
                        EngineOptions::Searcher::Random}) {
    ExprBuilder eb;
    EngineOptions opts = defaultOptions();
    opts.searcher = searcher;
    Engine engine(eb, opts);
    std::multiset<std::uint64_t> leaves;
    auto report = engine.run([&](ExecState& st) {
      auto& b = st.builder();
      auto v = st.makeSymbolic("v", 3);
      std::uint64_t leaf = 0;
      for (unsigned i = 0; i < 3; ++i)
        if (st.branch(b.bit(v, i))) leaf |= 1u << i;
      leaves.insert(leaf);
    });
    EXPECT_EQ(report.completed_paths, 8u) << "searcher " << static_cast<int>(searcher);
    EXPECT_EQ(std::set<std::uint64_t>(leaves.begin(), leaves.end()).size(), 8u);
  }
}

TEST(Engine, ReplayAlignmentWithMixedBranchKinds) {
  // A program whose branch sequence interleaves const-folded, known-bits
  // and solver branches: replay must still enumerate exactly the leaves.
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  std::multiset<int> leaves;
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    int leaf = 0;
    EXPECT_TRUE(st.branch(b.trueExpr()));            // const-folded
    if (st.branch(b.eqConst(v, 7))) leaf |= 1;       // solver fork
    EXPECT_FALSE(st.branch(b.falseExpr()));          // const-folded
    if (leaf & 1) {
      EXPECT_TRUE(st.branch(b.eqConst(v, 7)));       // known-bits decided
    } else if (st.branch(b.ult(v, b.constant(4, 8)))) {  // solver fork
      leaf |= 2;
    }
    leaves.insert(leaf);
  });
  EXPECT_EQ(report.completed_paths, 3u);
  EXPECT_EQ(std::set<int>(leaves.begin(), leaves.end()),
            (std::set<int>{0, 1, 2}));
}

TEST(Engine, TestVectorsForEachCompletedPath) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("sel", 8);
    st.branch(b.ult(v, b.constant(16, 8)));
  });
  EXPECT_EQ(report.completed_paths, 2u);
  EXPECT_EQ(report.test_vectors, 2u);
  // Vectors must actually satisfy the branch direction of their path.
  bool saw_low = false, saw_high = false;
  for (const auto& p : report.paths) {
    ASSERT_TRUE(p.has_test);
    const auto val = p.test.lookup("sel");
    ASSERT_TRUE(val.has_value());
    (*val < 16 ? saw_low : saw_high) = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Engine, DecisionBudgetTerminatesPath) {
  ExprBuilder eb;
  EngineOptions opts = defaultOptions();
  opts.max_decisions_per_path = 4;
  opts.max_paths = 40;
  Engine engine(eb, opts);
  auto report = engine.run([&](ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 32);
    for (unsigned i = 0; i < 32; ++i) st.branch(b.bit(v, i));
  });
  EXPECT_GT(report.limited_paths, 0u);
  EXPECT_EQ(report.completed_paths, 0u);
}

TEST(Engine, FinishTerminatesAsCompleted) {
  ExprBuilder eb;
  Engine engine(eb, defaultOptions());
  auto report = engine.run([&](ExecState& st) {
    st.makeSymbolic("v", 8);
    st.finish();
  });
  EXPECT_EQ(report.completed_paths, 1u);
}

}  // namespace
}  // namespace rvsym::symex
