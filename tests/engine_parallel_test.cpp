// Tests for the parallel exploration engine and the cross-path query
// cache: jobs=1 must reproduce the sequential engine byte-for-byte,
// jobs=N must reproduce jobs=1 (speculative execution under ordered
// commit), workers must get private builders, and a cached verdict must
// always equal what a fresh solver derives.
#include <gtest/gtest.h>

#include <mutex>
#include <random>
#include <set>
#include <vector>

#include "expr/builder.hpp"
#include "solver/querycache.hpp"
#include "solver/solver.hpp"
#include "symex/engine.hpp"
#include "symex/parallel.hpp"
#include "symex/state.hpp"

namespace rvsym::symex {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;

// A branching program with completed, error and infeasible endings,
// expressed purely through the ExecState interface so it runs
// identically on any worker's private builder.
void treeProgram(ExecState& st) {
  ExprBuilder& eb = st.builder();
  const ExprRef x = st.makeSymbolic("x", 8);
  // Shared-prefix assume: re-checked on every replayed path, so the
  // cross-path cache sees the same query once per path.
  st.assume(eb.notOp(eb.eqConst(x, 0xFF)));
  unsigned v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    st.countInstruction();
    if (st.branch(eb.bit(x, i))) v |= 1u << i;
  }
  if (v == 0b0101) st.fail("bad pattern 0101");
  if (v >= 12) {
    const ExprRef y = st.makeSymbolic("y", 8);
    st.countInstruction(2);
    if (st.branch(eb.ult(y, eb.constant(16, 8))))
      st.assume(eb.bit(y, 7));  // contradicts y < 16 -> Infeasible
  }
}

void expectVectorsEqual(const TestVector& a, const TestVector& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].name, b.values[i].name);
    EXPECT_EQ(a.values[i].width, b.values[i].width);
    EXPECT_EQ(a.values[i].value, b.values[i].value);
  }
}

// Field-by-field report comparison. `seconds` and the qcache counters
// are the documented exceptions: wall time always differs, and cache
// traffic includes speculatively executed paths.
void expectReportsEqual(const EngineReport& a, const EngineReport& b) {
  EXPECT_EQ(a.completed_paths, b.completed_paths);
  EXPECT_EQ(a.error_paths, b.error_paths);
  EXPECT_EQ(a.infeasible_paths, b.infeasible_paths);
  EXPECT_EQ(a.limited_paths, b.limited_paths);
  EXPECT_EQ(a.unexplored_forks, b.unexplored_forks);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.test_vectors, b.test_vectors);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.const_decided, b.const_decided);
  EXPECT_EQ(a.knownbits_decided, b.knownbits_decided);
  EXPECT_EQ(a.solver_decided, b.solver_decided);
  EXPECT_EQ(a.solver_checks, b.solver_checks);
  EXPECT_EQ(a.stopped_early, b.stopped_early);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].end, b.paths[i].end) << "path " << i;
    EXPECT_EQ(a.paths[i].message, b.paths[i].message) << "path " << i;
    EXPECT_EQ(a.paths[i].instructions, b.paths[i].instructions) << "path " << i;
    EXPECT_EQ(a.paths[i].decisions, b.paths[i].decisions) << "path " << i;
    ASSERT_EQ(a.paths[i].has_test, b.paths[i].has_test) << "path " << i;
    if (a.paths[i].has_test) expectVectorsEqual(a.paths[i].test, b.paths[i].test);
  }
}

EngineReport runSequential(const EngineOptions& opts) {
  ExprBuilder eb;
  Engine engine(eb, opts);
  return engine.run(treeProgram);
}

EngineReport runParallel(const EngineOptions& opts, unsigned jobs) {
  ParallelEngineOptions popts;
  static_cast<EngineOptions&>(popts) = opts;
  popts.jobs = jobs;
  ParallelEngine engine(popts);
  return engine.run([](WorkerContext&) { return PathProgram(treeProgram); });
}

EngineOptions baseOptions() {
  EngineOptions o;
  o.stop_on_error = false;
  return o;
}

TEST(ParallelEngine, Jobs1MatchesSequentialEngine) {
  const EngineOptions opts = baseOptions();
  const EngineReport seq = runSequential(opts);
  const EngineReport par = runParallel(opts, 1);
  // Sanity: the program actually produces a non-trivial mix of endings.
  EXPECT_GT(seq.completed_paths, 0u);
  EXPECT_GT(seq.error_paths, 0u);
  EXPECT_GT(seq.infeasible_paths, 0u);
  expectReportsEqual(seq, par);
}

TEST(ParallelEngine, Jobs4MatchesJobs1) {
  const EngineOptions opts = baseOptions();
  const EngineReport one = runParallel(opts, 1);
  const EngineReport four = runParallel(opts, 4);
  expectReportsEqual(one, four);
  // Same set of emitted test vectors in particular: compare the ordered
  // multiset of (name, value) flattenings as an extra explicit check.
  std::multiset<std::string> va, vb;
  const auto flat = [](const EngineReport& r, std::multiset<std::string>& out) {
    for (const PathRecord& p : r.paths)
      if (p.has_test)
        for (const TestValue& v : p.test.values)
          out.insert(v.name + "=" + std::to_string(v.value));
  };
  flat(one, va);
  flat(four, vb);
  EXPECT_EQ(va, vb);
}

TEST(ParallelEngine, ParityAcrossSearchers) {
  for (const EngineOptions::Searcher s :
       {EngineOptions::Searcher::Dfs, EngineOptions::Searcher::Bfs,
        EngineOptions::Searcher::Random}) {
    EngineOptions opts = baseOptions();
    opts.searcher = s;
    const EngineReport seq = runSequential(opts);
    const EngineReport par = runParallel(opts, 3);
    expectReportsEqual(seq, par);
  }
}

TEST(ParallelEngine, StopOnErrorParity) {
  EngineOptions opts = baseOptions();
  opts.stop_on_error = true;
  const EngineReport seq = runSequential(opts);
  const EngineReport par = runParallel(opts, 4);
  EXPECT_EQ(seq.error_paths, 1u);
  EXPECT_TRUE(seq.stopped_early);
  expectReportsEqual(seq, par);
}

TEST(ParallelEngine, MaxPathsBudgetParity) {
  EngineOptions opts = baseOptions();
  opts.max_paths = 7;
  const EngineReport seq = runSequential(opts);
  const EngineReport par = runParallel(opts, 4);
  EXPECT_TRUE(seq.stopped_early);
  expectReportsEqual(seq, par);
}

TEST(ParallelEngine, WorkersGetPrivateBuilders) {
  ParallelEngineOptions opts;
  opts.stop_on_error = false;
  opts.jobs = 4;
  std::mutex mu;
  std::vector<unsigned> worker_ids;
  std::set<const ExprBuilder*> builders;
  ParallelEngine engine(opts);
  engine.run([&](WorkerContext& ctx) {
    std::lock_guard<std::mutex> lk(mu);
    worker_ids.push_back(ctx.worker_id);
    builders.insert(&ctx.builder);
    const ExprBuilder* mine = &ctx.builder;
    return [mine](ExecState& st) {
      // Every path a worker runs uses that worker's own builder.
      ASSERT_EQ(&st.builder(), mine);
      treeProgram(st);
    };
  });
  EXPECT_EQ(worker_ids.size(), 4u);
  EXPECT_EQ(builders.size(), 4u);  // four distinct private builders
}

TEST(ParallelEngine, CacheHitsReportedOnRepeatedStructure) {
  ParallelEngineOptions opts;
  opts.stop_on_error = false;
  opts.jobs = 1;  // deterministic traffic: hits come from replayed assumes
  ParallelEngine engine(opts);
  const EngineReport r = engine.run(PathProgram(treeProgram));
  EXPECT_GT(r.qcache_misses, 0u);
  EXPECT_GT(r.qcache_hits, 0u);
  // The shared-prefix assume is re-checked once per path after the first.
  EXPECT_GE(r.qcache_hits, r.totalPaths() - 1);
}

// --- Query cache ------------------------------------------------------------

TEST(ParallelQueryCache, CanonicalHashIsBuilderIndependent) {
  ExprBuilder a, b;
  solver::CanonicalHasher ha, hb;
  // Interleave unrelated allocations in builder b so ids diverge.
  b.variable("noise", 17);
  const auto build = [](ExprBuilder& eb) {
    const ExprRef x = eb.variable("x", 32);
    const ExprRef y = eb.variable("y", 32);
    return eb.eq(eb.add(x, y), eb.constant(0xCAFE, 32));
  };
  const solver::CanonHash hash_a = ha.hash(build(a));
  const solver::CanonHash hash_b = hb.hash(build(b));
  EXPECT_EQ(hash_a, hash_b);

  // A structurally different expression hashes differently.
  const ExprRef other = a.eq(a.add(a.variable("x", 32), a.variable("y", 32)),
                             a.constant(0xBEEF, 32));
  EXPECT_FALSE(ha.hash(other) == hash_a);
  // Different variable NAME means a different canonical query.
  const ExprRef renamed = a.eq(
      a.add(a.variable("x", 32), a.variable("z", 32)), a.constant(0xCAFE, 32));
  EXPECT_FALSE(ha.hash(renamed) == hash_a);

  // Set accumulation is order-independent (conjunction semantics).
  const solver::CanonHash h1 = ha.hash(other);
  solver::CanonHash s1 = solver::canonSetAdd({}, hash_a);
  s1 = solver::canonSetAdd(s1, h1);
  solver::CanonHash s2 = solver::canonSetAdd({}, h1);
  s2 = solver::canonSetAdd(s2, hash_a);
  EXPECT_EQ(s1, s2);
}

TEST(ParallelQueryCache, CachedVerdictMatchesFreshSolver) {
  // Randomized cross-builder check: whatever verdict the cache serves
  // must equal what a fresh, cache-less solver derives for the same
  // structural query.
  std::mt19937 rng(0xCAC4E);
  solver::QueryCache cache(4);

  std::uint64_t exercised = 0;
  for (int round = 0; round < 40; ++round) {
    const std::uint32_t seed = rng();
    // Recreates the identical structural query from the round seed, in
    // whatever builder it is given.
    const auto buildQuery = [&](ExprBuilder& eb, solver::PathSolver& ps,
                                ExprRef& assumption) {
      std::mt19937 r2(seed);
      const auto rc = [&r2, &eb]() -> ExprRef {
        const ExprRef a = eb.variable("a", 8);
        const ExprRef b = eb.variable("b", 8);
        const std::uint64_t c1 = r2() & 0xFF, c2 = r2() & 0xFF;
        ExprRef cond;
        switch (r2() % 4) {
          case 0:
            cond = eb.eq(eb.add(a, eb.constant(c1, 8)), eb.constant(c2, 8));
            break;
          case 1: cond = eb.ult(eb.xorOp(a, b), eb.constant(c1 | 1, 8)); break;
          case 2:
            cond = eb.bit(eb.add(a, b), static_cast<unsigned>(c1 % 8));
            break;
          default:
            cond = eb.eq(eb.andOp(a, eb.constant(c1, 8)), eb.constant(c2, 8));
            break;
        }
        return (r2() % 2) ? eb.notOp(cond) : cond;
      };
      const unsigned n = 1 + r2() % 3;
      bool ok = true;
      for (unsigned i = 0; i < n; ++i) ok = ps.addConstraint(rc()) && ok;
      assumption = rc();
      return ok;
    };

    // Builder A, cache attached: the defining solve (miss + insert).
    ExprBuilder ea;
    solver::CanonicalHasher hashera;
    solver::PathSolver psa(ea);
    psa.attachCache(&cache, &hashera);
    ExprRef assume_a;
    if (!buildQuery(ea, psa, assume_a)) continue;  // folded unsat: skip
    const solver::CheckResult va = psa.check(assume_a);

    // Builder B, no cache: the ground truth.
    ExprBuilder eb2;
    solver::PathSolver truth(eb2);
    ExprRef assume_t;
    ASSERT_TRUE(buildQuery(eb2, truth, assume_t));
    EXPECT_EQ(truth.check(assume_t), va) << "round " << round;

    // Builder C, cache attached: must be served the same verdict.
    ExprBuilder ec;
    ec.variable("skew", 3);  // desynchronize variable ids on purpose
    solver::CanonicalHasher hasherc;
    solver::PathSolver psc(ec);
    psc.attachCache(&cache, &hasherc);
    ExprRef assume_c;
    ASSERT_TRUE(buildQuery(ec, psc, assume_c));
    EXPECT_EQ(psc.check(assume_c), va) << "round " << round;
    exercised += psc.stats().cache_hits;
  }
  EXPECT_GT(exercised, 0u);          // the cross-builder path actually hit
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace rvsym::symex
