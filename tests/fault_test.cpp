// Tests for the injected-error registry: every fault E0-E9 must (a) be
// representable, (b) change observable behaviour on a concrete witness
// (covered in rtl_test), and (c) be FOUND by the symbolic co-simulation
// under the Table II configuration — the paper's headline capability.
#include <gtest/gtest.h>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "rv32/instr.hpp"
#include "symex/engine.hpp"

namespace rvsym::fault {
namespace {

using core::CosimConfig;
using core::CoSimulation;
using expr::ExprBuilder;

/// The Table II co-simulation base: fixed DUT + spec-correct ISS, CSR
/// (SYSTEM) instruction generation blocked, one injected error applied.
CosimConfig tableTwoConfig(const InjectedError& error, unsigned instr_limit) {
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = instr_limit;
  cfg.instr_constraint = CoSimulation::blockSystemInstructions();
  error.apply(cfg);
  return cfg;
}

TEST(Registry, HasTenDistinctErrors) {
  const auto errors = allErrors();
  ASSERT_EQ(errors.size(), 10u);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    EXPECT_EQ(errors[i].id, "E" + std::to_string(i));
    EXPECT_NE(errors[i].description[0], '\0');
  }
  EXPECT_EQ(&errorById("E7"), &allErrors()[7]);
  EXPECT_THROW(errorById("E10"), std::out_of_range);
}

TEST(Registry, DecoderFaultsTargetDistinctPatterns) {
  const auto errors = allErrors();
  EXPECT_TRUE(errors[0].has_dont_care);
  EXPECT_TRUE(errors[1].has_dont_care);
  EXPECT_TRUE(errors[2].has_dont_care);
  EXPECT_NE(errors[0].dont_care.op, errors[1].dont_care.op);
  EXPECT_NE(errors[1].dont_care.op, errors[2].dont_care.op);
  for (int i = 3; i < 10; ++i) {
    EXPECT_FALSE(errors[static_cast<std::size_t>(i)].has_dont_care);
    EXPECT_NE(errors[static_cast<std::size_t>(i)].flag, nullptr);
  }
}

TEST(Registry, ApplySetsExactlyOneFault) {
  for (const InjectedError& e : allErrors()) {
    CosimConfig cfg;
    e.apply(cfg);
    const int decoder = cfg.decode_dont_cares.empty() ? 0 : 1;
    int flags = 0;
    const rtl::ExecFaults& f = cfg.faults;
    for (bool b : {f.addi_result_bit0_stuck0, f.sub_result_bit31_stuck0,
                   f.jal_no_pc_update, f.bne_behaves_as_beq,
                   f.lbu_endianness_flip, f.lb_no_sign_extend,
                   f.lw_low_half_only})
      flags += b ? 1 : 0;
    EXPECT_EQ(decoder + flags, 1) << e.id;
  }
}

/// Symbolic hunt for one injected error. Scoped by an opcode constraint
/// to keep unit-test runtimes small; the unguided hunt is exercised by
/// the integration test and the Table II bench.
class SymbolicHunt : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicHunt, FindsInjectedError) {
  const InjectedError& error = allErrors()[static_cast<std::size_t>(GetParam())];
  ExprBuilder eb;
  CosimConfig cfg = tableTwoConfig(error, 1);

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 3000;
  opts.max_seconds = 120;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());

  ASSERT_GT(report.error_paths, 0u)
      << error.id << " (" << error.description << ") not found";

  // The witness must involve the targeted instruction.
  const symex::PathRecord* err = report.firstError();
  ASSERT_NE(err, nullptr);
  ASSERT_TRUE(err->has_test);
  const auto word = err->test.lookup(
      core::SymbolicInstrMemory::variableName(0x80000000));
  ASSERT_TRUE(word.has_value());
  const std::uint32_t instr = static_cast<std::uint32_t>(*word);
  const rv32::Decoded d = rv32::decode(instr);
  // E0-E2 witnesses are reserved encodings (Illegal to the spec decoder);
  // E3-E9 witnesses decode to the faulty instruction.
  std::string mnemonic = rv32::opcodeName(d.op);
  for (char& c : mnemonic) c = static_cast<char>(std::toupper(c));
  if (error.has_dont_care) {
    EXPECT_EQ(d.op, rv32::Opcode::Illegal)
        << rv32::disassemble(instr);
  } else {
    EXPECT_EQ(mnemonic, error.target) << rv32::disassemble(instr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllErrors, SymbolicHunt, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return "E" + std::to_string(info.param);
                         });

TEST(SymbolicHunt, NoFalsePositivesWithoutFault) {
  // The identical configuration with NO injected fault must be clean.
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = CoSimulation::blockSystemInstructions();

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 400;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  EXPECT_EQ(report.error_paths, 0u);
}

}  // namespace
}  // namespace rvsym::fault
