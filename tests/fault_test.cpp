// Tests for the injected-error registry: every fault E0-E9 must (a) be
// representable, (b) change observable behaviour on a concrete witness
// (covered in rtl_test), and (c) be FOUND by the symbolic co-simulation
// under the Table II configuration — the paper's headline capability.
#include <gtest/gtest.h>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "rv32/instr.hpp"
#include "symex/engine.hpp"

namespace rvsym::fault {
namespace {

using core::CosimConfig;
using core::CoSimulation;
using expr::ExprBuilder;

/// The Table II co-simulation base: fixed DUT + spec-correct ISS, CSR
/// (SYSTEM) instruction generation blocked, one injected error applied.
CosimConfig tableTwoConfig(const InjectedError& error, unsigned instr_limit) {
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = instr_limit;
  cfg.instr_constraint = CoSimulation::blockSystemInstructions();
  error.apply(cfg);
  return cfg;
}

TEST(Registry, HasTenDistinctErrors) {
  const auto errors = allErrors();
  ASSERT_EQ(errors.size(), 10u);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    EXPECT_EQ(errors[i].id, "E" + std::to_string(i));
    EXPECT_NE(errors[i].description[0], '\0');
  }
  EXPECT_EQ(&errorById("E7"), &allErrors()[7]);
  EXPECT_THROW(errorById("E10"), std::out_of_range);
}

TEST(Registry, DecoderFaultsTargetDistinctPatterns) {
  const auto errors = allErrors();
  EXPECT_TRUE(errors[0].isDecoderFault());
  EXPECT_TRUE(errors[1].isDecoderFault());
  EXPECT_TRUE(errors[2].isDecoderFault());
  EXPECT_NE(errors[0].mutant().op, errors[1].mutant().op);
  EXPECT_NE(errors[1].mutant().op, errors[2].mutant().op);
  for (int i = 3; i < 10; ++i)
    EXPECT_FALSE(errors[static_cast<std::size_t>(i)].isDecoderFault());
}

TEST(Registry, EveryErrorIsAnEnumeratedMutant) {
  // The registry names points of the machine-enumerated space — each id
  // must resolve, and the enumeration must contain it.
  const auto space = mut::enumerateSpace();
  for (const InjectedError& e : allErrors()) {
    const mut::Mutant m = e.mutant();
    EXPECT_EQ(m.id(), e.mutant_id);
    bool found = false;
    for (const mut::Mutant& s : space) found |= s.id() == m.id();
    EXPECT_TRUE(found) << e.id << " (" << e.mutant_id
                       << ") not in the enumerated space";
  }
}

TEST(Registry, ApplySetsExactlyOneFault) {
  for (const InjectedError& e : allErrors()) {
    CosimConfig cfg;
    e.apply(cfg);
    const rtl::ExecFaults& f = cfg.faults;
    int set = static_cast<int>(cfg.decode_dont_cares.size() +
                               f.stuck_bits.size() + f.branch_swaps.size() +
                               f.mem_faults.size());
    for (int i = 0; i < rtl::ExecFaults::kNumFlags; ++i)
      set += f.flag(static_cast<rtl::ExecFaults::Flag>(i)) ? 1 : 0;
    EXPECT_EQ(set, 1) << e.id;
  }
}

/// Symbolic hunt for one injected error. Scoped by an opcode constraint
/// to keep unit-test runtimes small; the unguided hunt is exercised by
/// the integration test and the Table II bench.
class SymbolicHunt : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicHunt, FindsInjectedError) {
  const InjectedError& error = allErrors()[static_cast<std::size_t>(GetParam())];
  ExprBuilder eb;
  CosimConfig cfg = tableTwoConfig(error, 1);

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 3000;
  opts.max_seconds = 120;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());

  ASSERT_GT(report.error_paths, 0u)
      << error.id << " (" << error.description << ") not found";

  // The witness must involve the targeted instruction.
  const symex::PathRecord* err = report.firstError();
  ASSERT_NE(err, nullptr);
  ASSERT_TRUE(err->has_test);
  const auto word = err->test.lookup(
      core::SymbolicInstrMemory::variableName(0x80000000));
  ASSERT_TRUE(word.has_value());
  const std::uint32_t instr = static_cast<std::uint32_t>(*word);
  const rv32::Decoded d = rv32::decode(instr);
  // E0-E2 witnesses are reserved encodings (Illegal to the spec decoder);
  // E3-E9 witnesses decode to the faulty instruction.
  std::string mnemonic = rv32::opcodeName(d.op);
  for (char& c : mnemonic) c = static_cast<char>(std::toupper(c));
  if (error.isDecoderFault()) {
    EXPECT_EQ(d.op, rv32::Opcode::Illegal)
        << rv32::disassemble(instr);
  } else {
    EXPECT_EQ(mnemonic, error.target) << rv32::disassemble(instr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllErrors, SymbolicHunt, ::testing::Range(0, 10),
                         [](const auto& info) {
                           return "E" + std::to_string(info.param);
                         });

TEST(SymbolicHunt, NoFalsePositivesWithoutFault) {
  // The identical configuration with NO injected fault must be clean.
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = CoSimulation::blockSystemInstructions();

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 400;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  EXPECT_EQ(report.error_paths, 0u);
}

}  // namespace
}  // namespace rvsym::fault
