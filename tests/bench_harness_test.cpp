// Tests for the rvsym-bench harness library: the shared Reporter's
// rvsym-bench-v1 schema, median aggregation, the bench registry, and
// compareRuns' regression gate (the CI perf-smoke exit-code contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "harness/reporter.hpp"
#include "obs/analyze/json_reader.hpp"

namespace rvsym {
namespace {

using obs::analyze::JsonValue;
using obs::analyze::parseJson;

// --- Reporter -----------------------------------------------------------------

TEST(Reporter, EmitsTheBenchV1Schema) {
  bench::Reporter r("demo");
  r.param("searcher", "dfs")
      .param("jobs", std::uint64_t{4})
      .param("deterministic", true)
      .counter("paths", 42)
      .metric("seconds", 1.5)
      .payload("{\"rows\":[]}")
      .ok(true);
  std::string err;
  const auto doc = parseJson(r.toJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->getString("schema").value_or(""), "rvsym-bench-v1");
  EXPECT_EQ(doc->getString("name").value_or(""), "demo");
  EXPECT_EQ(doc->getBool("ok").value_or(false), true);
  // A standalone bench is a complete single-repeat document.
  EXPECT_EQ(doc->getU64("repeats").value_or(0), 1u);
  ASSERT_NE(doc->find("median_us"), nullptr);
  const JsonValue* params = doc->find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->getString("searcher").value_or(""), "dfs");
  EXPECT_EQ(params->getU64("jobs").value_or(0), 4u);
  EXPECT_EQ(params->getBool("deterministic").value_or(false), true);
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->getU64("paths").value_or(0), 42u);
  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->getNumber("seconds").value_or(0.0), 1.5);
  const JsonValue* payload = doc->find("payload");
  ASSERT_NE(payload, nullptr);
  ASSERT_TRUE(payload->isObject());
  ASSERT_NE(payload->find("rows"), nullptr);
}

TEST(Reporter, DefaultsToOkTrueAndNoPayload) {
  bench::Reporter r("empty");
  std::string err;
  const auto doc = parseJson(r.toJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->getBool("ok").value_or(false), true);
  EXPECT_EQ(doc->find("payload"), nullptr);
}

// --- Aggregation and registry -------------------------------------------------

TEST(Harness, MedianU64) {
  EXPECT_EQ(bench::medianU64({}), 0u);
  EXPECT_EQ(bench::medianU64({7}), 7u);
  EXPECT_EQ(bench::medianU64({3, 1, 2}), 2u);
  EXPECT_EQ(bench::medianU64({4, 1, 3, 2}), 2u);  // (2+3)/2 floored
  EXPECT_EQ(bench::medianU64({100, 1, 100}), 100u);
}

TEST(Harness, RegistryCoversAllTenBenchesWithSmokeSubset) {
  const auto& benches = bench::allBenches();
  EXPECT_EQ(benches.size(), 10u);
  std::size_t smoke = 0;
  for (const auto& b : benches) {
    EXPECT_FALSE(b.name.empty());
    EXPECT_FALSE(b.exe.empty());
    if (b.smoke) ++smoke;
  }
  // Everything but the ~45s fuzz_vs_symex comparison gates CI.
  EXPECT_EQ(smoke, 9u);
}

TEST(Harness, EnvJsonParsesAndNamesThePlatform) {
  std::string err;
  const auto env = parseJson(bench::envJson(), &err);
  ASSERT_TRUE(env.has_value()) << err;
  EXPECT_FALSE(env->getString("os").value_or("").empty());
  EXPECT_FALSE(env->getString("arch").value_or("").empty());
  EXPECT_GT(env->getU64("hardware_concurrency").value_or(0), 0u);
}

// --- compareRuns --------------------------------------------------------------

struct FakeBench {
  std::string name;
  std::uint64_t median_us;
  bool ok = true;
};

std::string writeRunDoc(const std::string& stem,
                        const std::vector<FakeBench>& benches) {
  std::string json =
      "{\"schema\":\"rvsym-bench-run-v1\",\"suite\":\"smoke\","
      "\"repeats\":1,\"warmup\":0,\"env\":{},\"benches\":[";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    if (i) json += ",";
    json += "{\"name\":\"" + benches[i].name + "\",\"ok\":" +
            (benches[i].ok ? "true" : "false") +
            ",\"wall_median_us\":" + std::to_string(benches[i].median_us) +
            ",\"wall_us\":[" + std::to_string(benches[i].median_us) + "]}";
  }
  json += "]}";
  const std::string path = testing::TempDir() + stem + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << json;
  return path;
}

TEST(Compare, PassesWhenWithinThreshold) {
  const std::string base =
      writeRunDoc("cmp_base", {{"table1", 1000}, {"table2", 2000}});
  const std::string cur =
      writeRunDoc("cmp_cur", {{"table1", 1500}, {"table2", 1900}});
  // +50% on table1 is inside the 100% gate.
  EXPECT_EQ(bench::compareRuns(cur, base, 100.0), 0);
}

TEST(Compare, FailsOnRegressionBeyondThreshold) {
  const std::string base = writeRunDoc("cmp_base_slow", {{"table1", 1000}});
  const std::string cur = writeRunDoc("cmp_cur_slow", {{"table1", 2500}});
  EXPECT_NE(bench::compareRuns(cur, base, 100.0), 0);
  // The same delta passes a looser gate.
  EXPECT_EQ(bench::compareRuns(cur, base, 200.0), 0);
}

TEST(Compare, FailsWhenABaselineBenchDisappears) {
  const std::string base =
      writeRunDoc("cmp_base_miss", {{"table1", 1000}, {"table2", 2000}});
  const std::string cur = writeRunDoc("cmp_cur_miss", {{"table1", 1000}});
  EXPECT_NE(bench::compareRuns(cur, base, 100.0), 0);
}

TEST(Compare, FailsWhenABenchFailsItsOwnClaims) {
  const std::string base = writeRunDoc("cmp_base_ok", {{"table1", 1000}});
  const std::string cur =
      writeRunDoc("cmp_cur_notok", {{"table1", 900, /*ok=*/false}});
  EXPECT_NE(bench::compareRuns(cur, base, 100.0), 0);
}

TEST(Compare, NewBenchesAreInformationalOnly) {
  const std::string base = writeRunDoc("cmp_base_new", {{"table1", 1000}});
  const std::string cur =
      writeRunDoc("cmp_cur_new", {{"table1", 1000}, {"micro", 50}});
  EXPECT_EQ(bench::compareRuns(cur, base, 100.0), 0);
}

TEST(Compare, RejectsUnreadableOrForeignDocuments) {
  const std::string base = writeRunDoc("cmp_base_r", {{"table1", 1000}});
  EXPECT_EQ(bench::compareRuns(testing::TempDir() + "does_not_exist.json",
                               base, 100.0),
            2);
  const std::string foreign = testing::TempDir() + "cmp_foreign.json";
  {
    std::ofstream out(foreign, std::ios::trunc);
    out << "{\"schema\":\"something-else\"}";
  }
  EXPECT_EQ(bench::compareRuns(foreign, base, 100.0), 2);
}

}  // namespace
}  // namespace rvsym
