// Tests for the RV32 ISA utilities: encoder/decoder round trips,
// immediate extraction, the decode table's disjointness, symbolic field
// extraction vs the concrete decoder, CSR map and the disassembler.
#include <gtest/gtest.h>

#include <random>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "rv32/csr.hpp"
#include "rv32/encode.hpp"
#include "rv32/fields.hpp"
#include "rv32/instr.hpp"

namespace rvsym::rv32 {
namespace {

// --- Decode table sanity -----------------------------------------------------

TEST(DecodeTable, PatternsArePairwiseDisjoint) {
  const auto table = decodeTable();
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      const auto& a = table[i];
      const auto& b = table[j];
      const std::uint32_t common = a.mask & b.mask;
      EXPECT_NE(a.match & common, b.match & common)
          << opcodeName(a.op) << " overlaps " << opcodeName(b.op);
    }
  }
}

TEST(DecodeTable, MatchBitsWithinMask) {
  for (const DecodePattern& p : decodeTable())
    EXPECT_EQ(p.match & ~p.mask, 0u) << opcodeName(p.op);
}

TEST(DecodeTable, CoversAllOpcodesOnce) {
  std::set<Opcode> seen;
  for (const DecodePattern& p : decodeTable())
    EXPECT_TRUE(seen.insert(p.op).second) << opcodeName(p.op);
  EXPECT_EQ(seen.size(), 48u);
  EXPECT_EQ(seen.count(Opcode::Illegal), 0u);
}

// --- Round trips -----------------------------------------------------------------

struct RoundTrip {
  const char* name;
  std::uint32_t word;
  Opcode op;
  unsigned rd, rs1, rs2;
  std::int32_t imm;
};

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(EncodeDecodeRoundTrip, DecodesBack) {
  const RoundTrip& t = GetParam();
  const Decoded d = decode(t.word);
  EXPECT_EQ(d.op, t.op) << disassemble(t.word);
  if (writesRd(t.op)) {
    EXPECT_EQ(d.rd, t.rd);
  }
  if (readsRs1(t.op)) {
    EXPECT_EQ(d.rs1, t.rs1);
  }
  if (readsRs2(t.op)) {
    EXPECT_EQ(d.rs2, t.rs2);
  }
  if (t.imm != 0) {
    EXPECT_EQ(d.imm, t.imm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodeDecodeRoundTrip,
    ::testing::Values(
        RoundTrip{"lui", enc::lui(5, 0x12345000), Opcode::Lui, 5, 0, 0,
                  0x12345000},
        RoundTrip{"auipc", enc::auipc(1, static_cast<std::int32_t>(0x80000000)),
                  Opcode::Auipc, 1, 0, 0,
                  static_cast<std::int32_t>(0x80000000)},
        RoundTrip{"jal", enc::jal(1, -2048), Opcode::Jal, 1, 0, 0, -2048},
        RoundTrip{"jal_pos", enc::jal(0, 0xFFFFE), Opcode::Jal, 0, 0, 0,
                  0xFFFFE},
        RoundTrip{"jalr", enc::jalr(1, 2, -4), Opcode::Jalr, 1, 2, 0, -4},
        RoundTrip{"beq", enc::beq(3, 4, -8), Opcode::Beq, 0, 3, 4, -8},
        RoundTrip{"bne", enc::bne(3, 4, 4094), Opcode::Bne, 0, 3, 4, 4094},
        RoundTrip{"blt", enc::blt(5, 6, -4096), Opcode::Blt, 0, 5, 6, -4096},
        RoundTrip{"bge", enc::bge(7, 8, 16), Opcode::Bge, 0, 7, 8, 16},
        RoundTrip{"bltu", enc::bltu(9, 10, 32), Opcode::Bltu, 0, 9, 10, 32},
        RoundTrip{"bgeu", enc::bgeu(11, 12, 64), Opcode::Bgeu, 0, 11, 12, 64},
        RoundTrip{"lb", enc::lb(1, 2, -1), Opcode::Lb, 1, 2, 0, -1},
        RoundTrip{"lh", enc::lh(3, 4, 2047), Opcode::Lh, 3, 4, 0, 2047},
        RoundTrip{"lw", enc::lw(5, 6, -2048), Opcode::Lw, 5, 6, 0, -2048},
        RoundTrip{"lbu", enc::lbu(7, 8, 1), Opcode::Lbu, 7, 8, 0, 1},
        RoundTrip{"lhu", enc::lhu(9, 10, 2), Opcode::Lhu, 9, 10, 0, 2},
        RoundTrip{"sb", enc::sb(1, 2, -1), Opcode::Sb, 0, 2, 1, -1},
        RoundTrip{"sh", enc::sh(3, 4, 2047), Opcode::Sh, 0, 4, 3, 2047},
        RoundTrip{"sw", enc::sw(5, 6, -2048), Opcode::Sw, 0, 6, 5, -2048},
        RoundTrip{"addi", enc::addi(1, 2, -5), Opcode::Addi, 1, 2, 0, -5},
        RoundTrip{"slti", enc::slti(3, 4, 100), Opcode::Slti, 3, 4, 0, 100},
        RoundTrip{"sltiu", enc::sltiu(5, 6, 7), Opcode::Sltiu, 5, 6, 0, 7},
        RoundTrip{"xori", enc::xori(7, 8, -1), Opcode::Xori, 7, 8, 0, -1},
        RoundTrip{"ori", enc::ori(9, 10, 255), Opcode::Ori, 9, 10, 0, 255},
        RoundTrip{"andi", enc::andi(11, 12, 15), Opcode::Andi, 11, 12, 0, 15},
        RoundTrip{"add", enc::add(1, 2, 3), Opcode::Add, 1, 2, 3, 0},
        RoundTrip{"sub", enc::sub(4, 5, 6), Opcode::Sub, 4, 5, 6, 0},
        RoundTrip{"sll", enc::sll(7, 8, 9), Opcode::Sll, 7, 8, 9, 0},
        RoundTrip{"slt", enc::slt(10, 11, 12), Opcode::Slt, 10, 11, 12, 0},
        RoundTrip{"sltu", enc::sltu(13, 14, 15), Opcode::Sltu, 13, 14, 15, 0},
        RoundTrip{"xor", enc::xor_(16, 17, 18), Opcode::Xor, 16, 17, 18, 0},
        RoundTrip{"srl", enc::srl(19, 20, 21), Opcode::Srl, 19, 20, 21, 0},
        RoundTrip{"sra", enc::sra(22, 23, 24), Opcode::Sra, 22, 23, 24, 0},
        RoundTrip{"or", enc::or_(25, 26, 27), Opcode::Or, 25, 26, 27, 0},
        RoundTrip{"and", enc::and_(28, 29, 30), Opcode::And, 28, 29, 30, 0}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Decode, Shifts) {
  const Decoded slli = decode(enc::slli(1, 2, 31));
  EXPECT_EQ(slli.op, Opcode::Slli);
  EXPECT_EQ(slli.shamt, 31);
  const Decoded srli = decode(enc::srli(1, 2, 0));
  EXPECT_EQ(srli.op, Opcode::Srli);
  const Decoded srai = decode(enc::srai(1, 2, 7));
  EXPECT_EQ(srai.op, Opcode::Srai);
  EXPECT_EQ(srai.shamt, 7);
}

TEST(Decode, SystemInstructions) {
  EXPECT_EQ(decode(enc::ecall()).op, Opcode::Ecall);
  EXPECT_EQ(decode(enc::ebreak()).op, Opcode::Ebreak);
  EXPECT_EQ(decode(enc::mret()).op, Opcode::Mret);
  EXPECT_EQ(decode(enc::wfi()).op, Opcode::Wfi);
  EXPECT_EQ(decode(enc::fence()).op, Opcode::Fence);
}

TEST(Decode, CsrInstructions) {
  const Decoded d = decode(enc::csrrw(1, csr::kMcycle, 2));
  EXPECT_EQ(d.op, Opcode::Csrrw);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.csr, csr::kMcycle);
  const Decoded di = decode(enc::csrrsi(3, csr::kMarchid, 5));
  EXPECT_EQ(di.op, Opcode::Csrrsi);
  EXPECT_EQ(di.zimm, 5);
  EXPECT_EQ(di.csr, csr::kMarchid);
}

TEST(Decode, ReservedEncodingsAreIllegal) {
  // Shift with funct7 bit 25 set (reserved next to SLLI).
  EXPECT_EQ(decode(enc::slli(1, 2, 3) | (1u << 25)).op, Opcode::Illegal);
  // funct3=5 branch does exist (bge); funct3=2 branch does not.
  EXPECT_EQ(decode(enc::bType(4, 1, 2, 2, 0x63)).op, Opcode::Illegal);
  // Load with funct3=3 (ld) is RV64-only.
  EXPECT_EQ(decode(enc::iType(0, 1, 3, 2, 0x03)).op, Opcode::Illegal);
  EXPECT_EQ(decode(0).op, Opcode::Illegal);
  EXPECT_EQ(decode(0xFFFFFFFFu).op, Opcode::Illegal);
}

// --- Immediate extraction: symbolic matches concrete (property) ---------------------

TEST(SymbolicFields, ImmediatesMatchConcreteDecoder) {
  expr::ExprBuilder eb;
  auto v = eb.variable("insn", 32);
  std::mt19937 rng(1234);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t word = rng();
    expr::Assignment asg;
    asg.set(v->variableId(), word);
    EXPECT_EQ(evaluate(sym::immI(eb, v), asg),
              static_cast<std::uint32_t>(immI(word)));
    EXPECT_EQ(evaluate(sym::immS(eb, v), asg),
              static_cast<std::uint32_t>(immS(word)));
    EXPECT_EQ(evaluate(sym::immB(eb, v), asg),
              static_cast<std::uint32_t>(immB(word)));
    EXPECT_EQ(evaluate(sym::immU(eb, v), asg),
              static_cast<std::uint32_t>(immU(word)));
    EXPECT_EQ(evaluate(sym::immJ(eb, v), asg),
              static_cast<std::uint32_t>(immJ(word)));
    EXPECT_EQ(evaluate(sym::rd(eb, v), asg), (word >> 7) & 31);
    EXPECT_EQ(evaluate(sym::rs1(eb, v), asg), (word >> 15) & 31);
    EXPECT_EQ(evaluate(sym::rs2(eb, v), asg), (word >> 20) & 31);
    EXPECT_EQ(evaluate(sym::csrAddr(eb, v), asg), word >> 20);
  }
}

TEST(SymbolicFields, MatchesAgreesWithConcreteDecode) {
  expr::ExprBuilder eb;
  auto v = eb.variable("insn", 32);
  std::mt19937 rng(99);
  // Seed with real encodings plus random words.
  std::vector<std::uint32_t> words{enc::add(1, 2, 3), enc::slli(4, 5, 6),
                                   enc::wfi(), enc::ecall(),
                                   enc::csrrw(1, 0x300, 2)};
  for (int i = 0; i < 200; ++i) words.push_back(rng());
  for (std::uint32_t w : words) {
    expr::Assignment asg;
    asg.set(v->variableId(), w);
    const Decoded d = decode(w);
    for (const DecodePattern& p : decodeTable()) {
      const bool concrete = (w & p.mask) == p.match;
      EXPECT_EQ(evaluate(sym::matches(eb, v, p), asg), concrete ? 1u : 0u);
      if (concrete) {
        EXPECT_EQ(d.op, p.op);
      }
    }
  }
}

// --- CSR map --------------------------------------------------------------------------

TEST(CsrMap, NamesKnownCsrs) {
  EXPECT_STREQ(csrName(csr::kMstatus), "mstatus");
  EXPECT_STREQ(csrName(csr::kMcycle), "mcycle");
  EXPECT_STREQ(csrName(csr::kMhartid), "mhartid");
  EXPECT_STREQ(csrName(0xB10), "mhpmcounter16");
  EXPECT_STREQ(csrName(0xB83), "mhpmcounter3h");
  EXPECT_STREQ(csrName(0x330), "mhpmevent16");
  EXPECT_STREQ(csrName(csr::kTimeh), "timeh");
  EXPECT_EQ(csrName(0x400), nullptr);
}

TEST(CsrMap, ReadOnlyAddressScheme) {
  EXPECT_TRUE(csr::isReadOnlyAddress(csr::kMvendorid));
  EXPECT_TRUE(csr::isReadOnlyAddress(csr::kMhartid));
  EXPECT_TRUE(csr::isReadOnlyAddress(csr::kCycle));
  EXPECT_TRUE(csr::isReadOnlyAddress(csr::kInstreth));
  EXPECT_FALSE(csr::isReadOnlyAddress(csr::kMstatus));
  EXPECT_FALSE(csr::isReadOnlyAddress(csr::kMcycle));
  EXPECT_FALSE(csr::isReadOnlyAddress(csr::kMscratch));
}

TEST(CsrMap, Ranges) {
  EXPECT_TRUE(csr::isMhpmcounter(0xB03));
  EXPECT_TRUE(csr::isMhpmcounter(0xB1F));
  EXPECT_FALSE(csr::isMhpmcounter(0xB20));
  EXPECT_FALSE(csr::isMhpmcounter(csr::kMcycle));
  EXPECT_TRUE(csr::isMhpmevent(0x323));
  EXPECT_FALSE(csr::isMhpmevent(0x322));
}

// --- Disassembler ------------------------------------------------------------------------

TEST(Disassembler, RendersRepresentativeForms) {
  EXPECT_EQ(disassemble(enc::addi(1, 2, -5)), "addi x1, x2, -5");
  EXPECT_EQ(disassemble(enc::add(3, 4, 5)), "add x3, x4, x5");
  EXPECT_EQ(disassemble(enc::lw(1, 2, 8)), "lw x1, 8(x2)");
  EXPECT_EQ(disassemble(enc::sw(1, 2, -4)), "sw x1, -4(x2)");
  EXPECT_EQ(disassemble(enc::beq(1, 2, 16)), "beq x1, x2, 16");
  EXPECT_EQ(disassemble(enc::jal(1, 2048)), "jal x1, 2048");
  EXPECT_EQ(disassemble(enc::slli(1, 2, 7)), "slli x1, x2, 7");
  EXPECT_EQ(disassemble(enc::csrrw(0, csr::kMcycle, 1)),
            "csrrw x0, mcycle, x1");
  EXPECT_EQ(disassemble(enc::csrrwi(0, 0x400, 3)), "csrrwi x0, 0x400, 3");
  EXPECT_EQ(disassemble(enc::wfi()), "wfi");
  EXPECT_EQ(disassemble(0), ".word 0x0");
}

TEST(RegNames, AbiNames) {
  EXPECT_STREQ(regName(0), "zero");
  EXPECT_STREQ(regName(1), "ra");
  EXPECT_STREQ(regName(2), "sp");
  EXPECT_STREQ(regName(10), "a0");
  EXPECT_STREQ(regName(31), "t6");
}

// --- Opcode predicates -----------------------------------------------------------------------

TEST(Predicates, Consistency) {
  for (const DecodePattern& p : decodeTable()) {
    if (isLoad(p.op)) {
      EXPECT_TRUE(writesRd(p.op));
      EXPECT_TRUE(readsRs1(p.op));
      EXPECT_FALSE(readsRs2(p.op));
    }
    if (isStore(p.op)) {
      EXPECT_FALSE(writesRd(p.op));
      EXPECT_TRUE(readsRs2(p.op));
    }
    if (isCsrOp(p.op)) {
      EXPECT_TRUE(writesRd(p.op));
    }
  }
}

}  // namespace
}  // namespace rvsym::rv32
