// Tests for the coverage collector and the VCD trace writer.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cosim.hpp"
#include "core/coverage.hpp"
#include "expr/builder.hpp"
#include "rtl/vcd.hpp"
#include "rv32/encode.hpp"
#include "symex/engine.hpp"

namespace rvsym {
namespace {

using namespace rv32;

symex::TestVector vectorWith(std::initializer_list<std::uint32_t> words) {
  symex::TestVector tv;
  std::uint32_t addr = 0x80000000;
  for (std::uint32_t w : words) {
    char name[24];
    std::snprintf(name, sizeof name, "instr@%08x", addr);
    tv.values.push_back({name, 32, w});
    addr += 4;
  }
  tv.values.push_back({"reg_x1", 32, 0});  // non-instruction entries ignored
  return tv;
}

TEST(Coverage, CountsOpcodesAndCsrs) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::add(1, 2, 3), enc::addi(1, 2, 3),
                                enc::csrrw(1, csr::kMcycle, 2),
                                enc::csrrs(1, csr::kMstatus, 0)}));
  EXPECT_EQ(cov.opcodesCovered(), 4u);
  EXPECT_TRUE(cov.covers(Opcode::Add));
  EXPECT_TRUE(cov.covers(Opcode::Csrrw));
  EXPECT_FALSE(cov.covers(Opcode::Lw));
  EXPECT_EQ(cov.csrAddressesCovered(), 2u);
  EXPECT_FALSE(cov.coversIllegal());
  EXPECT_EQ(cov.distinctWords(), 4u);
}

TEST(Coverage, TracksIllegalEncodings) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({0xFFFFFFFF}));
  EXPECT_TRUE(cov.coversIllegal());
  EXPECT_EQ(cov.opcodesCovered(), 0u);
}

TEST(Coverage, DeduplicatesWords) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::nop(), enc::nop()}));
  cov.addTestVector(vectorWith({enc::nop()}));
  EXPECT_EQ(cov.distinctWords(), 1u);
  EXPECT_EQ(cov.totalWords(), 3u);
}

TEST(Coverage, PercentAndHoles) {
  core::CoverageCollector cov;
  EXPECT_DOUBLE_EQ(cov.opcodeCoveragePercent(), 0.0);
  EXPECT_EQ(cov.uncoveredOpcodes().size(), decodeTable().size());
  cov.addTestVector(vectorWith({enc::add(1, 2, 3)}));
  EXPECT_GT(cov.opcodeCoveragePercent(), 0.0);
  EXPECT_EQ(cov.uncoveredOpcodes().size(), decodeTable().size() - 1);
  EXPECT_NE(cov.summary().find("1/48"), std::string::npos);
}

TEST(Coverage, DenominatorDerivesFromOpcodeEnum) {
  // The coverage denominator must come from the enum (statically tied to
  // the decode table in instr.cpp), not a hardcoded literal.
  EXPECT_EQ(kLegalOpcodeCount, decodeTable().size());
  core::CoverageCollector cov;
  for (const DecodePattern& p : decodeTable())
    cov.addTestVector(vectorWith({p.match}));
  EXPECT_EQ(cov.opcodesCovered(), kLegalOpcodeCount);
  EXPECT_DOUBLE_EQ(cov.opcodeCoveragePercent(), 100.0);
  EXPECT_TRUE(cov.uncoveredOpcodes().empty());
  EXPECT_TRUE(cov.uncoveredCells().empty());
  EXPECT_DOUBLE_EQ(cov.cellCoveragePercent(), 100.0);
}

TEST(Coverage, UncoveredOpcodesReportHoles) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::add(1, 2, 3)}));
  const std::set<Opcode> missing = cov.uncoveredOpcodes();
  EXPECT_EQ(missing.size(), kLegalOpcodeCount - 1);
  EXPECT_TRUE(missing.count(Opcode::Lw));
  EXPECT_FALSE(missing.count(Opcode::Add));
  // The hole report names each uncovered decoder cell with its opcode.
  const std::string holes = cov.holeReport();
  EXPECT_NE(holes.find("(lw)"), std::string::npos);
  EXPECT_EQ(holes.find("(add)"), std::string::npos);
}

TEST(Coverage, DecoderCellsDistinguishSelectorFields) {
  // ADD and SUB share opcode7/funct3 and differ only in funct7; ECALL
  // and EBREAK differ only in the rs2 field. Each must get its own cell.
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::add(1, 2, 3)}));
  EXPECT_EQ(cov.coveredCells().size(), 1u);
  cov.addTestVector(vectorWith({enc::sub(1, 2, 3)}));
  EXPECT_EQ(cov.coveredCells().size(), 2u);
  cov.addTestVector(vectorWith({enc::ecall(), enc::ebreak()}));
  EXPECT_EQ(cov.coveredCells().size(), 4u);
  // An immediate change must NOT create a new cell: funct7 of ADDI is
  // immediate bits, canonicalized to the wildcard.
  cov.addTestVector(vectorWith({enc::addi(1, 2, 1), enc::addi(1, 2, -1)}));
  EXPECT_EQ(cov.coveredCells().size(), 5u);
}

TEST(Coverage, IllegalCellsChartProbedSpace) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({0xFFFFFFFF}));
  EXPECT_EQ(cov.illegalCellsProbed().size(), 1u);
  EXPECT_TRUE(cov.coveredCells().empty());
  const core::DecoderCell& c = *cov.illegalCellsProbed().begin();
  EXPECT_EQ(c.opcode7, 0x7F);
  EXPECT_EQ(c.funct3, 7);
}

TEST(Coverage, CsrBinsTrapCausesAndVoterChannels) {
  core::CoverageCollector cov;
  EXPECT_EQ(cov.uncoveredCsrBins().size(), core::csrBinNames().size());
  EXPECT_EQ(cov.uncoveredVoterChannels().size(),
            core::voterChannelNames().size());

  cov.addTestVector(vectorWith({enc::csrrw(1, csr::kMstatus, 2)}));
  EXPECT_EQ(cov.coveredCsrBins(), std::set<std::string>{"trap-setup"});
  EXPECT_EQ(std::string(core::csrBinName(csr::kMcycle)), "machine-counters");
  EXPECT_EQ(std::string(core::csrBinName(csr::kMepc)), "trap-handling");
  EXPECT_EQ(std::string(core::csrBinName(0x7C0)), "other");

  // Tags feed run-level coverage through addPathRecord.
  symex::PathRecord record;
  record.tags = {"trap:2", "voter:pc", "voter:rd", "class:alu"};
  cov.addPathRecord(record);
  EXPECT_EQ(cov.trapCauses(), std::set<std::uint32_t>{2});
  EXPECT_EQ(cov.voterChannels(), (std::set<std::string>{"pc", "rd"}));
  EXPECT_EQ(cov.uncoveredVoterChannels().size(),
            core::voterChannelNames().size() - 2);
  const std::string holes = cov.holeReport();
  EXPECT_NE(holes.find("voter channel mem"), std::string::npos);
  EXPECT_NE(holes.find("csr bin machine-info"), std::string::npos);
}

TEST(Coverage, JsonMapShape) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::add(1, 2, 3)}));
  const std::string json = cov.toJson();
  EXPECT_NE(json.find("\"opcodes\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":48"), std::string::npos);
  EXPECT_NE(json.find("\"opcode\":\"add\""), std::string::npos);
  EXPECT_NE(json.find("\"voter_channels\""), std::string::npos);
  EXPECT_NE(json.find("\"trap_causes\""), std::string::npos);
}

TEST(Coverage, SymbolicExplorationBuildsHighCoverage) {
  // The paper's claim: the generated test set has high coverage. A free
  // exploration of a few hundred paths must cover most opcodes.
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.instr_limit = 1;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 500;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());

  core::CoverageCollector cov;
  cov.addReport(report);
  EXPECT_GE(cov.opcodeCoveragePercent(), 75.0) << cov.summary();
  EXPECT_TRUE(cov.coversIllegal());
  EXPECT_GT(cov.csrAddressesCovered(), 5u);
}

// --- VCD --------------------------------------------------------------------

TEST(Vcd, HeaderAndChanges) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  std::ostringstream out;
  rtl::VcdWriter vcd(out, core);

  // Drive a NOP through the core, sampling each tick.
  bool retired = false;
  for (int i = 0; i < 20 && !retired; ++i) {
    core.tick(st);
    if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
      core.ibus.instruction = eb.constant(rv32::enc::nop(), 32);
      core.ibus.instruction_ready = true;
    } else if (!core.ibus.fetch_enable) {
      core.ibus.instruction_ready = false;
    }
    retired = core.rvfi.valid;
    vcd.sample();
  }
  ASSERT_TRUE(retired);

  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 32"), std::string::npos);
  EXPECT_NE(text.find("imem_fetchEnable"), std::string::npos);
  EXPECT_NE(text.find("rvfi_valid"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  // Time markers and at least one multi-bit change.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  // The fetch address appears as a 32-bit binary change.
  EXPECT_NE(text.find(
                "b10000000000000000000000000000000"),
            std::string::npos);
}

TEST(Vcd, SymbolicValuesRenderAsX) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  std::ostringstream out;
  rtl::VcdWriter vcd(out, core);
  core.ibus.instruction = eb.variable("some_symbolic_instr", 32);
  core.ibus.instruction_ready = true;
  core.tick(st);  // Fetch
  core.tick(st);  // WaitInstr latches the symbolic word
  vcd.sample();
  EXPECT_NE(out.str().find(std::string(32, 'x')), std::string::npos);
}

}  // namespace
}  // namespace rvsym
