// Tests for the coverage collector and the VCD trace writer.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cosim.hpp"
#include "core/coverage.hpp"
#include "expr/builder.hpp"
#include "rtl/vcd.hpp"
#include "rv32/encode.hpp"
#include "symex/engine.hpp"

namespace rvsym {
namespace {

using namespace rv32;

symex::TestVector vectorWith(std::initializer_list<std::uint32_t> words) {
  symex::TestVector tv;
  std::uint32_t addr = 0x80000000;
  for (std::uint32_t w : words) {
    char name[24];
    std::snprintf(name, sizeof name, "instr@%08x", addr);
    tv.values.push_back({name, 32, w});
    addr += 4;
  }
  tv.values.push_back({"reg_x1", 32, 0});  // non-instruction entries ignored
  return tv;
}

TEST(Coverage, CountsOpcodesAndCsrs) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::add(1, 2, 3), enc::addi(1, 2, 3),
                                enc::csrrw(1, csr::kMcycle, 2),
                                enc::csrrs(1, csr::kMstatus, 0)}));
  EXPECT_EQ(cov.opcodesCovered(), 4u);
  EXPECT_TRUE(cov.covers(Opcode::Add));
  EXPECT_TRUE(cov.covers(Opcode::Csrrw));
  EXPECT_FALSE(cov.covers(Opcode::Lw));
  EXPECT_EQ(cov.csrAddressesCovered(), 2u);
  EXPECT_FALSE(cov.coversIllegal());
  EXPECT_EQ(cov.distinctWords(), 4u);
}

TEST(Coverage, TracksIllegalEncodings) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({0xFFFFFFFF}));
  EXPECT_TRUE(cov.coversIllegal());
  EXPECT_EQ(cov.opcodesCovered(), 0u);
}

TEST(Coverage, DeduplicatesWords) {
  core::CoverageCollector cov;
  cov.addTestVector(vectorWith({enc::nop(), enc::nop()}));
  cov.addTestVector(vectorWith({enc::nop()}));
  EXPECT_EQ(cov.distinctWords(), 1u);
  EXPECT_EQ(cov.totalWords(), 3u);
}

TEST(Coverage, PercentAndHoles) {
  core::CoverageCollector cov;
  EXPECT_DOUBLE_EQ(cov.opcodeCoveragePercent(), 0.0);
  EXPECT_EQ(cov.uncoveredOpcodes().size(), decodeTable().size());
  cov.addTestVector(vectorWith({enc::add(1, 2, 3)}));
  EXPECT_GT(cov.opcodeCoveragePercent(), 0.0);
  EXPECT_EQ(cov.uncoveredOpcodes().size(), decodeTable().size() - 1);
  EXPECT_NE(cov.summary().find("1/48"), std::string::npos);
}

TEST(Coverage, SymbolicExplorationBuildsHighCoverage) {
  // The paper's claim: the generated test set has high coverage. A free
  // exploration of a few hundred paths must cover most opcodes.
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.instr_limit = 1;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 500;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());

  core::CoverageCollector cov;
  cov.addReport(report);
  EXPECT_GE(cov.opcodeCoveragePercent(), 75.0) << cov.summary();
  EXPECT_TRUE(cov.coversIllegal());
  EXPECT_GT(cov.csrAddressesCovered(), 5u);
}

// --- VCD --------------------------------------------------------------------

TEST(Vcd, HeaderAndChanges) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  std::ostringstream out;
  rtl::VcdWriter vcd(out, core);

  // Drive a NOP through the core, sampling each tick.
  bool retired = false;
  for (int i = 0; i < 20 && !retired; ++i) {
    core.tick(st);
    if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
      core.ibus.instruction = eb.constant(rv32::enc::nop(), 32);
      core.ibus.instruction_ready = true;
    } else if (!core.ibus.fetch_enable) {
      core.ibus.instruction_ready = false;
    }
    retired = core.rvfi.valid;
    vcd.sample();
  }
  ASSERT_TRUE(retired);

  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 32"), std::string::npos);
  EXPECT_NE(text.find("imem_fetchEnable"), std::string::npos);
  EXPECT_NE(text.find("rvfi_valid"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  // Time markers and at least one multi-bit change.
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  // The fetch address appears as a 32-bit binary change.
  EXPECT_NE(text.find(
                "b10000000000000000000000000000000"),
            std::string::npos);
}

TEST(Vcd, SymbolicValuesRenderAsX) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  std::ostringstream out;
  rtl::VcdWriter vcd(out, core);
  core.ibus.instruction = eb.variable("some_symbolic_instr", 32);
  core.ibus.instruction_ready = true;
  core.tick(st);  // Fetch
  core.tick(st);  // WaitInstr latches the symbolic word
  vcd.sample();
  EXPECT_NE(out.str().find(std::string(32, 'x')), std::string::npos);
}

}  // namespace
}  // namespace rvsym
