// Tests for the flight recorder and crash forensics (DESIGN.md §12):
// ring wraparound and torn-slot rejection, concurrent writers vs a
// snapshotting reader (the TSan target), the seqlock'd in-flight query
// slot, async-signal-safe formatting, busy-bracket nesting for the
// stall watchdog, live watchdog stall detection, and — in a forked
// child — the fatal-signal dump path end to end, parsed back with the
// obs::analyze bundle loader.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#ifndef _WIN32
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "obs/analyze/crash_report.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/flightrec/ring.hpp"
#include "obs/flightrec/sigsafe.hpp"
#include "obs/timeseries.hpp"

namespace rvsym::obs::flightrec {
namespace {

namespace fs = std::filesystem;

std::string tempDir(const char* stem) {
  fs::path dir = fs::temp_directory_path() /
                 (std::string(stem) + "." + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

#ifndef RVSYM_OBS_NO_TRACING

// --- ThreadRing ------------------------------------------------------------

TEST(ThreadRing, EmitAndSnapshotInOrder) {
  ThreadRing ring(16, 256);
  ring.emit(EventKind::PathCommit, 7, 1, 42, "ok", 100);
  ring.emit(EventKind::SolverBegin, 0xabcd, 0x1234, 3, "check", 200);
  ring.emit(EventKind::Phase, 2, 0, 0, "decode", 300);

  Event out[16];
  const std::size_t n = ring.snapshot(out, 16);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0].kind, EventKind::PathCommit);
  EXPECT_EQ(out[0].index, 0u);
  EXPECT_EQ(out[0].t_us, 100u);
  EXPECT_EQ(out[0].a, 7u);
  EXPECT_EQ(out[0].c, 42u);
  EXPECT_STREQ(out[0].tag, "ok");
  EXPECT_EQ(out[1].kind, EventKind::SolverBegin);
  EXPECT_EQ(out[1].a, 0xabcdu);
  EXPECT_STREQ(out[1].tag, "check");
  EXPECT_EQ(out[2].kind, EventKind::Phase);
  EXPECT_STREQ(out[2].tag, "decode");
  EXPECT_EQ(ring.seq(), 3u);
}

TEST(ThreadRing, WraparoundKeepsNewestWindow) {
  ThreadRing ring(8, 256);  // capacity rounds to 8
  const std::size_t cap = ring.capacity();
  const std::uint64_t total = 3 * cap + 5;
  for (std::uint64_t i = 0; i < total; ++i)
    ring.emit(EventKind::Mark, i, i * 2, 0, "wrap", 1000 + i);

  std::vector<Event> out(cap + 4);
  const std::size_t n = ring.snapshot(out.data(), out.size());
  ASSERT_EQ(n, cap);
  // Oldest-first, contiguous, ending at the last emitted event.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].index, total - cap + i);
    EXPECT_EQ(out[i].a, total - cap + i);
    EXPECT_EQ(out[i].t_us, 1000 + total - cap + i);
  }
  EXPECT_EQ(ring.seq(), total);
}

TEST(ThreadRing, SnapshotSmallerBufferTakesNewest) {
  ThreadRing ring(16, 256);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.emit(EventKind::Mark, i, 0, 0, nullptr, i);
  Event out[4];
  const std::size_t n = ring.snapshot(out, 4);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(out[0].index, 6u);
  EXPECT_EQ(out[3].index, 9u);
}

TEST(ThreadRing, LongTagsTruncateAtSixteenBytes) {
  ThreadRing ring(8, 256);
  ring.emit(EventKind::Mark, 0, 0, 0, "0123456789abcdefOVERFLOW", 1);
  Event out[1];
  ASSERT_EQ(ring.snapshot(out, 1), 1u);
  EXPECT_STREQ(out[0].tag, "0123456789abcdef");
}

TEST(ThreadRing, BusyBracketsNest) {
  ThreadRing ring(8, 256);
  EXPECT_EQ(ring.busy_since_us.load(), 0u);
  ring.busyBegin(100);  // campaign-level bracket
  EXPECT_EQ(ring.busy_since_us.load(), 100u);
  ring.busyBegin(200);  // nested engine-level bracket
  EXPECT_EQ(ring.busy_since_us.load(), 100u);  // outermost wins
  ring.busyEnd();
  EXPECT_EQ(ring.busy_since_us.load(), 100u);  // still busy
  ring.busyEnd();
  EXPECT_EQ(ring.busy_since_us.load(), 0u);  // outermost end clears
  ring.busyEnd();                            // unbalanced: ignored
  EXPECT_EQ(ring.busy_since_us.load(), 0u);
  ring.busyBegin(300);
  ring.busyBegin(400);
  ring.busyReset();  // slot reclaim clears depth too
  EXPECT_EQ(ring.busy_since_us.load(), 0u);
  ring.busyBegin(500);
  EXPECT_EQ(ring.busy_since_us.load(), 500u);  // depth really reset
  ring.busyEnd();
}

// Concurrent single-writer emit vs a reader snapshotting the same ring
// (the seqlock torn-slot path) plus multiple rings written in parallel —
// the flightrec_tsan CI target runs exactly this suite under TSan.
TEST(RingConcurrency, WriterVsSnapshotReader) {
  ThreadRing ring(32, 256);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.emit(EventKind::Mark, i, i ^ 0x5555, 0, "spin", i);
      ++i;
    }
  });
  std::vector<Event> out(64);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  std::uint64_t snapshots = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = ring.snapshot(out.data(), out.size());
    // Whatever survives the tear filter must be coherent: ascending
    // contiguous indices with the payload echoing the index.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].a, out[i].index);
      EXPECT_EQ(out[i].b, out[i].index ^ 0x5555);
      if (i > 0) EXPECT_EQ(out[i].index, out[i - 1].index + 1);
    }
    ++snapshots;
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(snapshots, 0u);
}

TEST(RingConcurrency, ManyThreadsOnPrivateRecorder) {
  FlightRecorder::Options opts;
  opts.ring_capacity = 64;
  opts.max_threads = 8;
  opts.inflight_bytes = 512;
  FlightRecorder rec(opts);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 2000;
  std::vector<std::thread> threads;
  std::vector<ThreadRing*> rings(kThreads, nullptr);
  std::atomic<int> registered{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      char name[8];
      std::snprintf(name, sizeof name, "w%d", t);
      ThreadRing* ring = rec.registerThread(name);
      ASSERT_NE(ring, nullptr);
      rings[t] = ring;
      registered.fetch_add(1);
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        ring->busyBegin(i);
        ring->emit(EventKind::PathCommit, i, 0, t, "p", i);
        ring->inflight().set(name, std::strlen(name), i, t);
        ring->busyEnd();
      }
    });
  }
  // Reader races against all writers.
  std::vector<Event> out(128);
  char q[64];
  while (registered.load() < kThreads) std::this_thread::yield();
  for (int pass = 0; pass < 50; ++pass)
    for (int t = 0; t < kThreads; ++t) {
      rings[t]->snapshot(out.data(), out.size());
      std::uint64_t lo = 0, hi = 0;
      rings[t]->inflight().read(q, sizeof q, &lo, &hi);
    }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(rings[t]->seq(), kEvents);
    const std::size_t n = rings[t]->snapshot(out.data(), out.size());
    ASSERT_GT(n, 0u);
    EXPECT_EQ(out[n - 1].index, kEvents - 1);
  }
}

TEST(FlightRecorder, SlotReuseAfterRelease) {
  FlightRecorder::Options opts;
  opts.max_threads = 2;
  FlightRecorder rec(opts);
  ThreadRing* a = rec.registerThread("first");
  ThreadRing* b = rec.registerThread("second");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(rec.registerThread("third"), nullptr);  // table full
  a->busyBegin(10);
  rec.releaseThread(a);
  ThreadRing* c = rec.registerThread("fourth");
  ASSERT_EQ(c, a);  // slot recycled
  EXPECT_EQ(c->busy_since_us.load(), 0u);  // reclaim cleared busy state
  EXPECT_STREQ(c->name, "fourth");
}

// --- InFlightSlot ----------------------------------------------------------

TEST(InFlightSlot, RoundTripAndClear) {
  InFlightSlot slot(128);
  const char* query = "(set-logic QF_BV)\n(check-sat)\n";
  slot.set(query, std::strlen(query), 0xdeadbeef, 0x1122334455667788ull);

  char out[128];
  std::uint64_t lo = 0, hi = 0;
  const std::size_t n = slot.read(out, sizeof out, &lo, &hi);
  ASSERT_EQ(n, std::strlen(query));
  EXPECT_EQ(std::string(out, n), query);
  EXPECT_EQ(lo, 0xdeadbeefu);
  EXPECT_EQ(hi, 0x1122334455667788ull);

  slot.clear();
  EXPECT_EQ(slot.pendingBytes(), 0u);
  EXPECT_EQ(slot.read(out, sizeof out, &lo, &hi), 0u);
}

TEST(InFlightSlot, TruncatesToCapacity) {
  InFlightSlot slot(16);
  const std::string big(100, 'q');
  slot.set(big.data(), big.size(), 1, 2);
  char out[64];
  std::uint64_t lo = 0, hi = 0;
  const std::size_t n = slot.read(out, sizeof out, &lo, &hi);
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(std::string(out, n), std::string(16, 'q'));
}

// --- SigsafeWriter ---------------------------------------------------------

TEST(SigsafeWriter, FormatsThroughRawFd) {
  const std::string dir = tempDir("rvsym-sigsafe");
  const std::string path = dir + "/out.txt";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  {
    SigsafeWriter w(fd);
    w.str("n=");
    w.dec(18446744073709551615ull);
    w.str(" s=");
    w.sdec(-42);
    w.str(" h=");
    w.hex(0xbeef, 8);
    w.ch(' ');
    w.jsonString("a\"b\nc");
    ASSERT_TRUE(w.ok());
  }
  ::close(fd);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n),
            "n=18446744073709551615 s=-42 h=0000beef \"a\\\"b\\u000ac\"");
  fs::remove_all(dir);
}

TEST(SigsafeWriter, SignalNames) {
  EXPECT_STREQ(signalName(SIGSEGV), "SIGSEGV");
  EXPECT_STREQ(signalName(SIGABRT), "SIGABRT");
  EXPECT_STREQ(signalName(SIGBUS), "SIGBUS");
  EXPECT_STREQ(signalName(SIGFPE), "SIGFPE");
}

TEST(EventKindNames, StableWireNames) {
  EXPECT_STREQ(eventKindName(EventKind::PathCommit), "path_commit");
  EXPECT_STREQ(eventKindName(EventKind::SolverBegin), "solver_begin");
  EXPECT_STREQ(eventKindName(EventKind::SolverEnd), "solver_end");
  EXPECT_STREQ(eventKindName(EventKind::MutantBegin), "mutant_begin");
  EXPECT_STREQ(eventKindName(EventKind::MutantVerdict), "mutant_verdict");
}

#ifndef _WIN32

// --- Watchdog / dump path --------------------------------------------------

// Helper: the watchdog-only forensics configuration (no signal
// handlers, so a failing test cannot hijack gtest's own crash
// reporting).
ForensicsOptions watchdogOnly(const std::string& dir, double stall_s) {
  ForensicsOptions o;
  o.crash_dir = dir;
  o.stall_timeout_s = stall_s;
  o.poll_interval_s = 0.05;
  o.tool = "flightrec_test";
  o.install_signal_handlers = false;
  return o;
}

std::vector<std::string> bundleDirs(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.is_directory() &&
        e.path().filename().string().rfind("crash-", 0) == 0)
      out.push_back(e.path().string());
  return out;
}

TEST(CrashForensics, RequestDumpWritesParsableBundle) {
  const std::string dir = tempDir("rvsym-dump");
  std::string err;
  ASSERT_TRUE(installForensics(watchdogOnly(dir, 0), &err)) << err;

  setThreadName("dumper");
  emit(EventKind::Phase, 1, 0, 0, "setup");
  emit(EventKind::SolverBegin, 0x1111, 0x2222, 5, "check");
  emit(EventKind::SolverEnd, 0x1111, 1, 123, nullptr);
  const char* q = "rvsym-query-v1\n(check-sat)\n";
  inflightSet(q, std::strlen(q), 0x1111, 0x2222);

  std::string bundle;
  ASSERT_TRUE(requestDump("test", &bundle));
  inflightClear();
  releaseCurrentThread();
  shutdownForensics();

  std::string lerr;
  const auto b = analyze::loadCrashBundle(bundle, &lerr);
  ASSERT_TRUE(b.has_value()) << lerr;
  EXPECT_EQ(b->reason, "test");
  EXPECT_EQ(b->tool, "flightrec_test");
  EXPECT_EQ(b->signal, 0);

  bool found_thread = false;
  for (const auto& t : b->threads)
    if (t.name == "dumper") {
      found_thread = true;
      EXPECT_GE(t.events, 3u);
      EXPECT_TRUE(t.inflight);
    }
  EXPECT_TRUE(found_thread);

  bool saw_phase = false;
  for (const auto& e : b->events)
    if (e.ev == "phase" && e.tag == "setup") saw_phase = true;
  EXPECT_TRUE(saw_phase);

  // The begin/end pair reconstructs as one completed unsat query.
  const auto timeline = analyze::solverQueryTimeline(*b);
  ASSERT_FALSE(timeline.empty());
  const auto& qt = timeline.back();
  EXPECT_TRUE(qt.completed);
  EXPECT_EQ(qt.hash_lo, 0x1111u);
  EXPECT_EQ(qt.verdict, 1u);
  EXPECT_EQ(qt.solve_us, 123u);

  bool saw_query = false;
  for (const auto& [slot, text] : b->inflight)
    if (text.find("rvsym-query-v1") != std::string::npos) saw_query = true;
  EXPECT_TRUE(saw_query);

  const std::string report = analyze::renderCrashReport(*b);
  EXPECT_NE(report.find("dumper"), std::string::npos);
  EXPECT_NE(report.find("reason"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CrashForensics, WatchdogFlagsStallWithoutKillingRun) {
  const std::string dir = tempDir("rvsym-stall");
  std::string err;
  constexpr double kStall = 0.25;
  ASSERT_TRUE(installForensics(watchdogOnly(dir, kStall), &err)) << err;

  setThreadName("stuck");
  emit(EventKind::Mark, 1, 0, 0, "before-hang");
  busyBegin();  // ...and then never emits again: a wedged worker.

  // A stall must be declared within 2x the timeout; give scheduling
  // slack on loaded CI runners before calling it a failure.
  std::vector<std::string> bundles;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    bundles = bundleDirs(dir);
    if (!bundles.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  busyEnd();
  ASSERT_EQ(bundles.size(), 1u) << "watchdog never flagged the stall";
  EXPECT_NE(bundles[0].find("-stall"), std::string::npos);

  std::string lerr;
  const auto b = analyze::loadCrashBundle(bundles[0], &lerr);
  ASSERT_TRUE(b.has_value()) << lerr;
  EXPECT_EQ(b->reason, "stall");
  bool stalled_thread = false;
  for (const auto& t : b->threads)
    if (t.name == "stuck") stalled_thread = t.stalled;
  EXPECT_TRUE(stalled_thread);
  // The run itself survived (we are still here) and keeps working.
  emit(EventKind::Mark, 2, 0, 0, "after-hang");
  releaseCurrentThread();
  shutdownForensics();
  fs::remove_all(dir);
}

TEST(CrashForensics, HealthyBusyThreadDoesNotTrip) {
  const std::string dir = tempDir("rvsym-healthy");
  std::string err;
  ASSERT_TRUE(installForensics(watchdogOnly(dir, 0.2), &err)) << err;
  setThreadName("healthy");
  busyBegin();
  // Busy the whole time but emitting events — never a stall.
  for (int i = 0; i < 10; ++i) {
    emit(EventKind::Mark, static_cast<std::uint64_t>(i), 0, 0, "beat");
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  busyEnd();
  EXPECT_TRUE(bundleDirs(dir).empty());
  releaseCurrentThread();
  shutdownForensics();
  fs::remove_all(dir);
}

TEST(CrashForensics, SecondInstallFails) {
  const std::string dir = tempDir("rvsym-twice");
  std::string err;
  ASSERT_TRUE(installForensics(watchdogOnly(dir, 0), &err)) << err;
  EXPECT_FALSE(installForensics(watchdogOnly(dir, 0), &err));
  EXPECT_NE(err.find("already installed"), std::string::npos);
  shutdownForensics();
  fs::remove_all(dir);
}

#if defined(__SANITIZE_THREAD__)
#define RVSYM_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RVSYM_TEST_UNDER_TSAN 1
#endif
#endif

#ifndef RVSYM_TEST_UNDER_TSAN

// The full fatal path: a forked child installs the signal handlers,
// records events and an in-flight query, then dies on SIGSEGV. The
// parent parses the bundle the handler wrote on the way down.
// (Skipped under TSan: fork without exec is unsupported there.)
TEST(CrashForensics, FatalSignalInChildWritesBundle) {
  const std::string dir = tempDir("rvsym-fatal");

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. No gtest machinery from here on; any failure path must
    // _exit with a distinctive code instead of crashing "successfully".
    ForensicsOptions o;
    o.crash_dir = dir;
    o.tool = "flightrec_test_child";
    o.install_signal_handlers = true;
    std::string cerr_;
    if (!installForensics(o, &cerr_)) ::_exit(41);
    setThreadName("victim");
    emit(EventKind::Phase, 1, 0, 0, "child");
    emit(EventKind::MutantBegin, 7, 0, 0, "dec:slli:b2");
    emit(EventKind::SolverBegin, 0xfeed, 0xf00d, 9, "check");
    const char* q = "rvsym-query-v1\n; from the child\n";
    inflightSet(q, std::strlen(q), 0xfeed, 0xf00d);
    busyBegin();
    ::raise(SIGSEGV);
    ::_exit(42);  // unreachable: the handler re-raises
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited " << WEXITSTATUS(status) << " instead of crashing";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const auto bundles = bundleDirs(dir);
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_NE(bundles[0].find("-signal"), std::string::npos);

  std::string lerr;
  const auto b = analyze::loadCrashBundle(bundles[0], &lerr);
  ASSERT_TRUE(b.has_value()) << lerr;
  EXPECT_EQ(b->reason, "signal");
  EXPECT_EQ(b->signal, SIGSEGV);
  EXPECT_EQ(b->signal_name, "SIGSEGV");
  EXPECT_EQ(b->tool, "flightrec_test_child");
  EXPECT_EQ(b->pid, static_cast<std::uint64_t>(pid));

  bool victim = false;
  for (const auto& t : b->threads)
    if (t.name == "victim") {
      victim = true;
      EXPECT_TRUE(t.busy);
      EXPECT_TRUE(t.inflight);
    }
  EXPECT_TRUE(victim);

  bool saw_mutant = false;
  for (const auto& e : b->events)
    if (e.ev == "mutant_begin" && e.a == 7) saw_mutant = true;
  EXPECT_TRUE(saw_mutant);

  const auto inflight = analyze::inFlightMutants(*b);
  ASSERT_EQ(inflight.size(), 1u);
  EXPECT_EQ(inflight[0].enum_index, 7u);
  EXPECT_EQ(inflight[0].thread, "victim");

  bool saw_query = false;
  for (const auto& [slot, text] : b->inflight)
    if (text.find("from the child") != std::string::npos) saw_query = true;
  EXPECT_TRUE(saw_query);

  // The interleaved renderer picks all of it up.
  const std::string report = analyze::renderCrashReport(*b);
  EXPECT_NE(report.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(report.find("victim"), std::string::npos);
  EXPECT_NE(report.find("dec:slli:b2"), std::string::npos);
  fs::remove_all(dir);
}

// The timeseries sampler's crash hook: a child crashing mid-run still
// leaves a stream that closes with the abnormal ts_final footer.
TEST(CrashForensics, SamplerFlushesAbnormalFinalOnFatal) {
  const std::string dir = tempDir("rvsym-tsflush");
  const std::string stream = dir + "/ts.jsonl";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ForensicsOptions o;
    o.crash_dir = dir + "/crashes";
    o.tool = "flightrec_test_child";
    std::string cerr_;
    if (!installForensics(o, &cerr_)) ::_exit(41);
    MetricsRegistry registry;
    TimeseriesOptions topts;
    topts.out_path = stream;
    topts.interval_s = 0.01;
    topts.kind = "verify";
    TimeseriesSampler sampler(topts, registry);
    if (!sampler.start(&cerr_)) ::_exit(43);
    // Let at least one tick land so the footer carries a live sample.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::raise(SIGSEGV);
    ::_exit(42);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited " << WEXITSTATUS(status) << " instead of crashing";

  std::FILE* f = std::fopen(stream.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"ev\":\"ts_header\""), std::string::npos);
  EXPECT_NE(content.find("\"ev\":\"ts_final\""), std::string::npos);
  EXPECT_NE(content.find("\"t_abnormal\":true"), std::string::npos);
  fs::remove_all(dir);
}

#endif  // RVSYM_TEST_UNDER_TSAN
#endif  // !_WIN32

#else  // RVSYM_OBS_NO_TRACING — the compiled-out configuration.

TEST(NoTracing, EverythingRefusesOrNoOps) {
  EXPECT_EQ(FlightRecorder::installGlobal(), nullptr);
  EXPECT_EQ(currentRing(), nullptr);
  emit(EventKind::Mark, 1, 2, 3, "noop");  // must not crash

  std::string err;
  ForensicsOptions o;
  o.crash_dir = "/tmp/never-created";
  EXPECT_FALSE(installForensics(o, &err));
  EXPECT_NE(err.find("compiled out"), std::string::npos);
  EXPECT_FALSE(forensicsInstalled());
  EXPECT_FALSE(requestDump("x", nullptr));
  EXPECT_EQ(addCrashWriter({nullptr, nullptr}), -1);
}

#endif  // RVSYM_OBS_NO_TRACING

}  // namespace
}  // namespace rvsym::obs::flightrec
