// Tests for the Processor Configuration Description (Fig. 1): derived
// RtlConfig/IssConfig pairs are mutually consistent — the central
// property is that ANY pair derived from one description is
// lockstep-clean under free symbolic exploration, while pairs from
// different descriptions mismatch.
#include <gtest/gtest.h>

#include "core/cosim.hpp"
#include "core/procconfig.hpp"
#include "expr/builder.hpp"
#include "symex/engine.hpp"

namespace rvsym::core {
namespace {

symex::EngineReport explore(const CosimConfig& cfg, std::uint64_t paths) {
  expr::ExprBuilder eb;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = paths;
  opts.max_seconds = 120;
  opts.max_stored_paths = 1;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  return engine.run(cosim.program());
}

TEST(ProcessorConfig, DerivationIsInternallyConsistent) {
  const ProcessorConfig pc = ProcessorConfig::specCompliant();
  const rtl::RtlConfig r = pc.rtlConfig();
  const iss::IssConfig i = pc.issConfig();
  EXPECT_EQ(r.support_misaligned, !i.trap_misaligned);
  EXPECT_EQ(r.enable_interrupts, i.enable_interrupts);
  EXPECT_EQ(r.csr.has_mscratch, i.csr.has_mscratch);
  EXPECT_EQ(r.csr.trap_on_unimplemented, i.csr.trap_on_unimplemented);
  EXPECT_FALSE(r.csr.trap_on_medeleg_read);  // never the VP quirks
  EXPECT_FALSE(i.csr.trap_on_medeleg_read);
}

struct ConfigCase {
  const char* name;
  ProcessorConfig config;
};

class DerivedPairLockstep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(DerivedPairLockstep, FreeExplorationIsClean) {
  const ProcessorConfig& pc = GetParam().config;
  CosimConfig cfg;
  cfg.rtl = pc.rtlConfig();
  cfg.iss = pc.issConfig();
  cfg.instr_limit = 1;
  const auto report = explore(cfg, 250);
  EXPECT_EQ(report.error_paths, 0u)
      << GetParam().name << ": derived pairs must agree by construction";
  EXPECT_GE(report.completed_paths, 60u);
}

ProcessorConfig misalignedSupporting() {
  ProcessorConfig pc;
  pc.misaligned_access_support = true;
  return pc;
}

ProcessorConfig lenientNoWfi() {
  ProcessorConfig pc;
  pc.spec_traps = false;
  pc.implement_wfi = false;
  return pc;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DerivedPairLockstep,
    ::testing::Values(
        ConfigCase{"specCompliant", ProcessorConfig::specCompliant()},
        ConfigCase{"minimalController", ProcessorConfig::minimalController()},
        ConfigCase{"misalignedSupporting", misalignedSupporting()},
        ConfigCase{"lenientNoWfi", lenientNoWfi()}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ProcessorConfig, MixedDescriptionsMismatch) {
  // RTL from the minimal controller, ISS from the compliant description:
  // the paper's Table-I situation (inconsistent configuration) — the
  // co-simulation must detect it.
  CosimConfig cfg;
  cfg.rtl = ProcessorConfig::minimalController().rtlConfig();
  cfg.iss = ProcessorConfig::specCompliant().issConfig();
  cfg.instr_limit = 1;
  const auto report = explore(cfg, 400);
  EXPECT_GT(report.error_paths, 0u);
}

}  // namespace
}  // namespace rvsym::core
