// Tests for the mutation-testing subsystem: space enumeration and id
// round-trips, the solver-backed decode-equivalence pre-check, campaign
// verdicts on a golden mutant subset, journal determinism across worker
// counts, resume semantics, and replay of killed-mutant test vectors
// through the repro-bundle machinery.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/faults.hpp"
#include "mut/campaign.hpp"
#include "mut/journal.hpp"
#include "mut/space.hpp"
#include "obs/analyze/coverage_map.hpp"
#include "obs/analyze/mutation_report.hpp"
#include "obs/bundle.hpp"

namespace rvsym::mut {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- Space enumeration --------------------------------------------------------------------

TEST(Space, EnumeratesEveryFamilyDeterministically) {
  const auto space = enumerateSpace();
  std::size_t dec = 0, stuck = 0, swap = 0, mem = 0, flag = 0;
  for (const Mutant& m : space) {
    switch (m.kind) {
      case MutantKind::DecodeBit: ++dec; break;
      case MutantKind::StuckBit: ++stuck; break;
      case MutantKind::BranchSwap: ++swap; break;
      case MutantKind::MemFault: ++mem; break;
      case MutantKind::CtrlFlag: ++flag; break;
    }
  }
  // One mutant per clearable pattern bit, 2 per ALU result bit, every
  // ordered branch pair, the load/store lane faults, the control flags.
  EXPECT_EQ(dec, 650u);
  EXPECT_EQ(stuck, 21u * 32u * 2u);
  EXPECT_EQ(swap, 6u * 5u);
  EXPECT_EQ(mem, 13u);
  EXPECT_EQ(flag, 4u);
  EXPECT_EQ(space.size(), dec + stuck + swap + mem + flag);

  // Enumeration order is part of the journal contract.
  const auto again = enumerateSpace();
  ASSERT_EQ(again.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    EXPECT_EQ(again[i].id(), space[i].id());
}

TEST(Space, IdsRoundTripAndAreUnique) {
  const auto space = enumerateSpace();
  std::set<std::string> seen;
  for (const Mutant& m : space) {
    EXPECT_TRUE(seen.insert(m.id()).second) << "duplicate id " << m.id();
    const Mutant back = mutantById(m.id());
    EXPECT_EQ(back.id(), m.id());
    EXPECT_EQ(back.kind, m.kind);
    EXPECT_EQ(back.op, m.op);
  }
  EXPECT_THROW(mutantById("dec:slli:b99"), std::out_of_range);
  EXPECT_THROW(mutantById("bogus"), std::out_of_range);
}

TEST(Space, FiltersSelectSubsets) {
  SpaceFilter f;
  f.kinds = {MutantKind::BranchSwap};
  f.ops = {rv32::Opcode::Bne};
  const auto subset = enumerateSpace(f);
  ASSERT_EQ(subset.size(), 5u);
  for (const Mutant& m : subset) {
    EXPECT_EQ(m.kind, MutantKind::BranchSwap);
    EXPECT_EQ(m.op, rv32::Opcode::Bne);
  }
}

TEST(Space, PaperMutantsAreTenDistinctSpacePoints) {
  const auto paper = paperMutants();
  ASSERT_EQ(paper.size(), 10u);
  const auto space = enumerateSpace();
  std::set<std::string> ids;
  for (const PaperMutant& pm : paper) {
    EXPECT_TRUE(ids.insert(pm.mutant.id()).second);
    bool found = false;
    for (const Mutant& s : space) found |= s.id() == pm.mutant.id();
    EXPECT_TRUE(found) << pm.paper_id << " = " << pm.mutant.id();
  }
  EXPECT_STREQ(paper[0].paper_id, "E0");
  EXPECT_EQ(paper[0].mutant.id(), "dec:slli:b25");
}

// --- Decode equivalence -------------------------------------------------------------------

TEST(DecodeEquivalence, ClassifiesKnownBits) {
  // Clearing SRAI's bit 13 widens its pattern onto words an earlier row
  // (ANDI, funct3 111) already captures -> provably equivalent.
  EXPECT_TRUE(decodeBitIsEquivalent(mutantById("dec:srai:b13")));
  // E0: SLLI accepts the reserved funct7 bit -> behaviour change.
  EXPECT_FALSE(decodeBitIsEquivalent(mutantById("dec:slli:b25")));
  // Bit 12 is set in SRAI's own match, so clearing the mask kills the
  // row for its own encodings (dead row) -> behaviour change.
  EXPECT_FALSE(decodeBitIsEquivalent(mutantById("dec:srai:b12")));
}

// --- Judging ------------------------------------------------------------------------------

TEST(Judge, PaperErrorsAreKilledAtLimitOne) {
  CampaignOptions opts;
  opts.max_instr_limit = 2;
  // E5 (JAL no PC update) and E6 (BNE behaves as BEQ) are cheap hunts.
  for (const char* paper_id : {"E5", "E6"}) {
    const Mutant m = fault::errorById(paper_id).mutant();
    const MutantResult r = judgeMutant(m, opts, nullptr, {});
    EXPECT_EQ(r.verdict, Verdict::Killed) << paper_id;
    EXPECT_EQ(r.kill_instr_limit, 1u) << paper_id;
    EXPECT_TRUE(r.has_kill_test) << paper_id;
    EXPECT_FALSE(r.kill_message.empty()) << paper_id;
  }
}

TEST(Judge, MinInstrLimitPinsTheHunt) {
  CampaignOptions opts;
  opts.min_instr_limit = opts.max_instr_limit = 2;
  const Mutant m = mutantById("swap:bne:beq");
  const MutantResult r = judgeMutant(m, opts, nullptr, {});
  EXPECT_EQ(r.verdict, Verdict::Killed);
  EXPECT_EQ(r.kill_instr_limit, 2u);  // limit-1 hunt skipped
}

/// The golden subset: one equivalent decoder bit, one behaviour-changing
/// decoder bit, a branch swap and a stuck ALU bit — every verdict source
/// except survival (no mutant in the space survives these budgets
/// cheaply enough to pin in a unit test).
std::vector<Mutant> goldenSubset() {
  return {mutantById("dec:srai:b13"), mutantById("dec:srai:b12"),
          mutantById("swap:bne:beq"), mutantById("stuck:addi:b0=0")};
}

TEST(Campaign, GoldenSubsetVerdicts) {
  CampaignOptions opts;
  CampaignRunner runner(opts);
  const CampaignReport report = runner.run(goldenSubset());
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.results[0].verdict, Verdict::Equivalent);
  EXPECT_EQ(report.results[1].verdict, Verdict::Killed);
  EXPECT_EQ(report.results[2].verdict, Verdict::Killed);
  EXPECT_EQ(report.results[3].verdict, Verdict::Killed);
  EXPECT_EQ(report.killed, 3u);
  EXPECT_EQ(report.survived, 0u);
  EXPECT_EQ(report.equivalent, 1u);
  EXPECT_DOUBLE_EQ(report.mutationScore(), 1.0);
  // Killed mutants carry a replayable test vector and the minimum limit.
  EXPECT_TRUE(report.results[2].has_kill_test);
  EXPECT_EQ(report.results[2].kill_instr_limit, 1u);
}

// --- Journal determinism and resume -------------------------------------------------------

TEST(Campaign, JournalIsCanonicallyIdenticalAcrossJobs) {
  const std::string dir = ::testing::TempDir();
  const std::string j1 = dir + "/mut_jobs1.jsonl";
  const std::string j4 = dir + "/mut_jobs4.jsonl";

  CampaignOptions opts;
  opts.journal_path = j1;
  CampaignRunner(opts).run(goldenSubset());
  opts.journal_path = j4;
  opts.jobs = 4;
  CampaignRunner(opts).run(goldenSubset());

  const std::string c1 = obs::analyze::canonicalizeMutationJournal(slurp(j1));
  const std::string c4 = obs::analyze::canonicalizeMutationJournal(slurp(j4));
  EXPECT_FALSE(c1.empty());
  EXPECT_EQ(c1, c4);

  // And the structured differ agrees.
  const auto a = obs::analyze::loadMutationJournal(j1);
  const auto b = obs::analyze::loadMutationJournal(j4);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(obs::analyze::diffMutationJournals(*a, *b).empty());
}

TEST(Campaign, ResumeSkipsJudgedMutantsAndCompletedIsNoOp) {
  const std::string path = ::testing::TempDir() + "/mut_resume.jsonl";

  // Full campaign, then resume: everything skipped, journal unchanged.
  CampaignOptions opts;
  opts.journal_path = path;
  CampaignRunner(opts).run(goldenSubset());
  const std::string before = slurp(path);

  opts.resume = true;
  const CampaignReport resumed = CampaignRunner(opts).run(goldenSubset());
  EXPECT_EQ(resumed.skipped, 4u);
  EXPECT_TRUE(resumed.results.empty());
  EXPECT_EQ(slurp(path), before);

  // Truncate to header + first verdict: resume judges only the rest.
  std::istringstream in(before);
  std::string header, first, line;
  std::getline(in, header);
  std::getline(in, first);
  {
    std::ofstream out(path, std::ios::trunc);
    out << header << '\n' << first << '\n';
  }
  const CampaignReport partial = CampaignRunner(opts).run(goldenSubset());
  EXPECT_EQ(partial.skipped, 1u);
  EXPECT_EQ(partial.results.size(), 3u);
  EXPECT_EQ(obs::analyze::canonicalizeMutationJournal(slurp(path)),
            obs::analyze::canonicalizeMutationJournal(before));
}

// --- Journal format -----------------------------------------------------------------------

TEST(Journal, KillTestRoundTripsThroughParseSerializedTest) {
  CampaignOptions opts;
  const MutantResult r = judgeMutant(mutantById("swap:bne:beq"), opts,
                                     nullptr, {});
  ASSERT_EQ(r.verdict, Verdict::Killed);
  ASSERT_TRUE(r.has_kill_test);
  const std::string s = serializeTest(r.kill_test);
  const auto parsed = obs::analyze::parseSerializedTest(s);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->values.size(), r.kill_test.values.size());
  for (std::size_t i = 0; i < parsed->values.size(); ++i) {
    EXPECT_EQ(parsed->values[i].name, r.kill_test.values[i].name);
    EXPECT_EQ(parsed->values[i].value, r.kill_test.values[i].value);
    EXPECT_EQ(parsed->values[i].width, r.kill_test.values[i].width);
  }
}

TEST(Journal, LoaderReadsWhatTheCampaignWrites) {
  const std::string path = ::testing::TempDir() + "/mut_load.jsonl";
  CampaignOptions opts;
  opts.journal_path = path;
  CampaignRunner(opts).run(goldenSubset());

  std::string err;
  const auto journal = obs::analyze::loadMutationJournal(path, &err);
  ASSERT_TRUE(journal.has_value()) << err;
  EXPECT_EQ(journal->scenario, "rv32i");
  EXPECT_EQ(journal->declared_mutants, 4u);
  ASSERT_EQ(journal->entries.size(), 4u);
  EXPECT_EQ(journal->entries[0].verdict, "equivalent");
  EXPECT_EQ(journal->entries[2].mutant, "swap:bne:beq");
  EXPECT_EQ(journal->entries[2].verdict, "killed");
  const auto s = obs::analyze::summarizeMutationJournal(*journal);
  EXPECT_EQ(s.killed, 3u);
  EXPECT_EQ(s.equivalent, 1u);
  EXPECT_DOUBLE_EQ(s.mutationScore(), 1.0);
  // The HTML report renders without survivors.
  const std::string html = obs::analyze::renderMutationHtml(*journal);
  EXPECT_NE(html.find("mutation score 100.0%"), std::string::npos);
  EXPECT_NE(html.find("every non-equivalent mutant was killed"),
            std::string::npos);
}

// --- Killed-mutant replay through the repro-bundle machinery ------------------------------

TEST(Replay, KilledMutantTestVectorReproduces) {
  CampaignOptions opts;
  const Mutant m = mutantById("swap:bne:beq");
  const MutantResult r = judgeMutant(m, opts, nullptr, {});
  ASSERT_EQ(r.verdict, Verdict::Killed);
  ASSERT_TRUE(r.has_kill_test);

  obs::BundleDescriptor desc;
  desc.fault_id = m.id();  // bundle replay resolves mutation-space ids
  desc.scenario = opts.scenario;
  desc.instr_limit = r.kill_instr_limit;
  desc.num_symbolic_regs = opts.num_symbolic_regs;
  desc.message = r.kill_message;

  const std::string dir = ::testing::TempDir() + "/mut_bundle";
  ASSERT_TRUE(obs::writeMismatchBundle(dir, desc, r.kill_test));
  const auto replay = obs::replayBundle(dir);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->reproduced) << replay->message;
  EXPECT_TRUE(replay->verdict_matches)
      << replay->recorded_field << " vs " << replay->field;
}

}  // namespace
}  // namespace rvsym::mut
