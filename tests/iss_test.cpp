// Golden-model tests for the reference ISS: per-instruction semantics,
// alignment traps, CSR matrix (including the authentic VP quirks),
// counters and trap handling. Concrete programs run through the same
// symbolic machinery (all values fold to constants).
#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <vector>

#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "iss/iss.hpp"
#include "rv32/csr.hpp"
#include "rv32/encode.hpp"

namespace rvsym::iss {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;
using namespace rv32;

constexpr std::uint32_t kResetPc = 0x80000000;

/// Concrete program memory.
class ProgramMemory final : public InstrSourceIf {
 public:
  void load(std::uint32_t base, const std::vector<std::uint32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i)
      words_[base + 4 * static_cast<std::uint32_t>(i)] = words[i];
  }
  ExprRef fetch(symex::ExecState& st, std::uint32_t addr) override {
    auto it = words_.find(addr);
    const std::uint32_t word = it == words_.end() ? 0 : it->second;
    return st.builder().constant(word, 32);
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> words_;
};

struct IssFixture : ::testing::Test {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  ProgramMemory imem;
  core::InitialImage image;
  core::SymbolicDataMemory dmem{image};

  std::unique_ptr<Iss> iss;

  void makeIss(IssConfig cfg = {}) {
    iss = std::make_unique<Iss>(eb, imem, dmem, cfg);
  }

  void setReg(unsigned i, std::uint32_t v) {
    iss->regs().set(eb, i, eb.constant(v, 32));
  }
  std::uint32_t reg(unsigned i) {
    const ExprRef& e = iss->regs().get(i);
    EXPECT_TRUE(e->isConstant());
    return static_cast<std::uint32_t>(e->constantValue());
  }
  std::uint32_t pcValue() {
    EXPECT_TRUE(iss->pc()->isConstant());
    return static_cast<std::uint32_t>(iss->pc()->constantValue());
  }
  /// Runs one instruction placed at the current PC.
  RetireInfo run1(std::uint32_t word) {
    imem.load(pcValue(), {word});
    return iss->step(st);
  }
  void setMemByte(std::uint32_t addr, std::uint8_t v) {
    dmem.setByte(addr, eb.constant(v, 8));
  }
};

// --- ALU golden cases (parameterized) ----------------------------------------

struct AluCase {
  const char* name;
  std::uint32_t word;       // uses rs1=x1, rs2=x2, rd=x3
  std::uint32_t x1, x2;
  std::uint32_t expected;   // x3 after execution
};

class AluGolden : public IssFixture,
                  public ::testing::WithParamInterface<AluCase> {};

TEST_P(AluGolden, ComputesExpected) {
  const AluCase& c = GetParam();
  makeIss();
  setReg(1, c.x1);
  setReg(2, c.x2);
  const RetireInfo r = run1(c.word);
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(reg(3), c.expected);
  EXPECT_EQ(pcValue(), kResetPc + 4);
}

INSTANTIATE_TEST_SUITE_P(
    Rv32iAlu, AluGolden,
    ::testing::Values(
        AluCase{"add", enc::add(3, 1, 2), 5, 7, 12},
        AluCase{"add_wrap", enc::add(3, 1, 2), 0xFFFFFFFF, 2, 1},
        AluCase{"sub", enc::sub(3, 1, 2), 5, 7, 0xFFFFFFFE},
        AluCase{"sll", enc::sll(3, 1, 2), 1, 35, 8},  // amount mod 32
        AluCase{"slt_true", enc::slt(3, 1, 2), 0xFFFFFFFF, 0, 1},
        AluCase{"slt_false", enc::slt(3, 1, 2), 0, 0xFFFFFFFF, 0},
        AluCase{"sltu_true", enc::sltu(3, 1, 2), 0, 0xFFFFFFFF, 1},
        AluCase{"xor", enc::xor_(3, 1, 2), 0xFF00FF00, 0x0F0F0F0F, 0xF00FF00F},
        AluCase{"srl", enc::srl(3, 1, 2), 0x80000000, 31, 1},
        AluCase{"sra", enc::sra(3, 1, 2), 0x80000000, 31, 0xFFFFFFFF},
        AluCase{"or", enc::or_(3, 1, 2), 0xF0, 0x0F, 0xFF},
        AluCase{"and", enc::and_(3, 1, 2), 0xFF, 0x0F, 0x0F},
        AluCase{"addi", enc::addi(3, 1, -5), 3, 0, 0xFFFFFFFE},
        AluCase{"slti", enc::slti(3, 1, 1), 0xFFFFFFFF, 0, 1},
        AluCase{"sltiu", enc::sltiu(3, 1, 1), 0xFFFFFFFF, 0, 0},
        AluCase{"xori", enc::xori(3, 1, -1), 0x12345678, 0, 0xEDCBA987},
        AluCase{"ori", enc::ori(3, 1, 0x70), 0x07, 0, 0x77},
        AluCase{"andi", enc::andi(3, 1, 0x0F), 0xFF, 0, 0x0F},
        AluCase{"slli", enc::slli(3, 1, 4), 0x1, 0, 0x10},
        AluCase{"srli", enc::srli(3, 1, 4), 0x80000000, 0, 0x08000000},
        AluCase{"srai", enc::srai(3, 1, 4), 0x80000000, 0, 0xF8000000}),
    [](const auto& info) { return std::string(info.param.name); });

// --- Control flow ---------------------------------------------------------------

TEST_F(IssFixture, LuiAuipc) {
  makeIss();
  RetireInfo r = run1(enc::lui(1, 0xABCDE000));
  EXPECT_EQ(reg(1), 0xABCDE000u);
  r = run1(enc::auipc(2, 0x1000));
  EXPECT_EQ(reg(2), kResetPc + 4 + 0x1000);
}

TEST_F(IssFixture, JalLinksAndJumps) {
  makeIss();
  const RetireInfo r = run1(enc::jal(1, 16));
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(reg(1), kResetPc + 4);
  EXPECT_EQ(pcValue(), kResetPc + 16);
}

TEST_F(IssFixture, JalrClearsBit0) {
  makeIss();
  setReg(2, kResetPc + 101);  // bit 0 set; must be cleared
  const RetireInfo r = run1(enc::jalr(1, 2, 0));
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(pcValue(), kResetPc + 100);
  EXPECT_EQ(reg(1), kResetPc + 4);
}

TEST_F(IssFixture, JalMisalignedTargetTraps) {
  makeIss();
  const RetireInfo r = run1(enc::jal(1, 6));  // target & 3 == 2
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::MisalignedFetch));
  EXPECT_EQ(reg(1), 0u);  // link register not written on trap
}

TEST_F(IssFixture, BranchTakenAndNotTaken) {
  makeIss();
  setReg(1, 5);
  setReg(2, 5);
  run1(enc::beq(1, 2, 12));
  EXPECT_EQ(pcValue(), kResetPc + 12);
  run1(enc::bne(1, 2, 12));
  EXPECT_EQ(pcValue(), kResetPc + 16);  // not taken
  setReg(3, 0xFFFFFFFF);                // -1
  setReg(4, 1);
  run1(enc::blt(3, 4, 8));              // -1 < 1 signed: taken
  EXPECT_EQ(pcValue(), kResetPc + 24);
  run1(enc::bltu(3, 4, 8));             // 0xFFFFFFFF < 1 unsigned: not taken
  EXPECT_EQ(pcValue(), kResetPc + 28);
  run1(enc::bgeu(3, 4, 8));             // taken
  EXPECT_EQ(pcValue(), kResetPc + 36);
}

// --- Memory ----------------------------------------------------------------------

TEST_F(IssFixture, LoadSignAndZeroExtension) {
  makeIss();
  setMemByte(0x100, 0x80);
  setMemByte(0x101, 0xFF);
  setReg(1, 0x100);

  run1(enc::lb(3, 1, 0));
  EXPECT_EQ(reg(3), 0xFFFFFF80u);
  run1(enc::lbu(3, 1, 0));
  EXPECT_EQ(reg(3), 0x80u);
  run1(enc::lh(3, 1, 0));
  EXPECT_EQ(reg(3), 0xFFFF80u | 0xFF000000u);  // 0xFFFF FF80
  run1(enc::lhu(3, 1, 0));
  EXPECT_EQ(reg(3), 0xFF80u);
}

TEST_F(IssFixture, WordRoundTripLittleEndian) {
  makeIss();
  setReg(1, 0x200);
  setReg(2, 0xDEADBEEF);
  RetireInfo r = run1(enc::sw(2, 1, 0));
  EXPECT_TRUE(r.mem_valid);
  EXPECT_TRUE(r.mem_is_store);
  EXPECT_EQ(r.mem_size, 4u);
  run1(enc::lw(3, 1, 0));
  EXPECT_EQ(reg(3), 0xDEADBEEFu);
  // Byte order: lowest byte at lowest address.
  run1(enc::lbu(4, 1, 0));
  EXPECT_EQ(reg(4), 0xEFu);
  run1(enc::lbu(4, 1, 3));
  EXPECT_EQ(reg(4), 0xDEu);
}

TEST_F(IssFixture, MisalignedAccessesTrap) {
  makeIss();
  setReg(1, 0x101);
  RetireInfo r = run1(enc::lw(3, 1, 0));
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::MisalignedLoad));
  r = run1(enc::lh(3, 1, 0));
  EXPECT_TRUE(r.trap);
  r = run1(enc::sh(2, 1, 0));
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::MisalignedStore));
  // Byte accesses never trap.
  r = run1(enc::lb(3, 1, 0));
  EXPECT_FALSE(r.trap);
}

TEST_F(IssFixture, MisalignedCheckCanBeDisabled) {
  IssConfig cfg;
  cfg.trap_misaligned = false;
  makeIss(cfg);
  setReg(1, 0x101);
  setMemByte(0x101, 0x34);
  setMemByte(0x102, 0x12);
  const RetireInfo r = run1(enc::lh(3, 1, 0));
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(reg(3), 0x1234u);
}

// --- Traps and machine mode ----------------------------------------------------------

TEST_F(IssFixture, EcallTrapsAndMretReturns) {
  makeIss();
  // Set mtvec to a handler address.
  setReg(1, 0x80001000);
  run1(enc::csrrw(0, csr::kMtvec, 1));
  const RetireInfo r = run1(enc::ecall());
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::EcallFromM));
  EXPECT_EQ(pcValue(), 0x80001000u);
  // mepc holds the faulting PC; mret returns there.
  run1(enc::csrrs(5, csr::kMepc, 0));
  EXPECT_EQ(reg(5), kResetPc + 4);
  run1(enc::mret());
  EXPECT_EQ(pcValue(), kResetPc + 4);
}

TEST_F(IssFixture, IllegalInstructionTraps) {
  makeIss();
  const RetireInfo r = run1(0xFFFFFFFF);
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::IllegalInstr));
}

TEST_F(IssFixture, WfiIsNop) {
  makeIss();
  const RetireInfo r = run1(enc::wfi());
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(pcValue(), kResetPc + 4);
}

TEST_F(IssFixture, FenceIsNop) {
  makeIss();
  const RetireInfo r = run1(enc::fence());
  EXPECT_FALSE(r.trap);
}

// --- CSR matrix ----------------------------------------------------------------------

TEST_F(IssFixture, CsrReadWriteSetClear) {
  makeIss();
  setReg(1, 0xF0);
  run1(enc::csrrw(2, csr::kMscratch, 1));  // mscratch = 0xF0, x2 = 0
  EXPECT_EQ(reg(2), 0u);
  setReg(1, 0x0F);
  run1(enc::csrrs(2, csr::kMscratch, 1));  // x2 = 0xF0, mscratch |= 0x0F
  EXPECT_EQ(reg(2), 0xF0u);
  setReg(1, 0xF0);
  run1(enc::csrrc(2, csr::kMscratch, 1));  // x2 = 0xFF, mscratch &= ~0xF0
  EXPECT_EQ(reg(2), 0xFFu);
  run1(enc::csrrs(2, csr::kMscratch, 0));  // read only
  EXPECT_EQ(reg(2), 0x0Fu);
}

TEST_F(IssFixture, CsrImmediateVariants) {
  makeIss();
  run1(enc::csrrwi(0, csr::kMscratch, 21));
  run1(enc::csrrsi(1, csr::kMscratch, 0));
  EXPECT_EQ(reg(1), 21u);
  run1(enc::csrrci(0, csr::kMscratch, 1));
  run1(enc::csrrsi(1, csr::kMscratch, 0));
  EXPECT_EQ(reg(1), 20u);
}

TEST_F(IssFixture, UnimplementedCsrTraps) {
  makeIss();
  const RetireInfo r = run1(enc::csrrwi(0, 0x400, 0));
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::IllegalInstr));
}

TEST_F(IssFixture, ReadOnlyCsrWriteTraps) {
  makeIss();
  RetireInfo r = run1(enc::csrrw(0, csr::kMarchid, 0));
  EXPECT_TRUE(r.trap);
  r = run1(enc::csrrs(1, csr::kMhartid, 2));  // rs1 != x0: write attempt
  EXPECT_TRUE(r.trap);
  // Read-only CSR read is fine.
  r = run1(enc::csrrs(1, csr::kMhartid, 0));
  EXPECT_FALSE(r.trap);
}

TEST_F(IssFixture, VpQuirkTrapsOnDelegationRead) {
  makeIss();  // riscvVp config: quirks active
  RetireInfo r = run1(enc::csrrw(1, csr::kMedeleg, 0));  // rd!=0: read
  EXPECT_TRUE(r.trap);
  r = run1(enc::csrrwi(1, csr::kMideleg, 0));
  EXPECT_TRUE(r.trap);
  // CSRRW with rd=x0 skips the read and therefore does NOT trip the bug.
  r = run1(enc::csrrw(0, csr::kMedeleg, 2));
  EXPECT_FALSE(r.trap);
}

TEST_F(IssFixture, SpecCorrectConfigHasNoQuirks) {
  IssConfig cfg;
  cfg.csr = CsrConfig::specCorrect();
  makeIss(cfg);
  const RetireInfo r = run1(enc::csrrw(1, csr::kMedeleg, 0));
  EXPECT_FALSE(r.trap);
}

TEST_F(IssFixture, CountersAdvancePerInstruction) {
  makeIss();
  run1(enc::nop());
  run1(enc::nop());
  run1(enc::nop());
  // Abstract ISS timing: mcycle == minstret == instructions retired.
  run1(enc::csrrs(1, csr::kMcycle, 0));
  EXPECT_EQ(reg(1), 3u);
  run1(enc::csrrs(1, csr::kMinstret, 0));
  EXPECT_EQ(reg(1), 4u);
  // Unprivileged shadows mirror the machine counters.
  run1(enc::csrrs(1, csr::kCycle, 0));
  EXPECT_EQ(reg(1), 5u);
  run1(enc::csrrs(1, csr::kInstreth, 0));
  EXPECT_EQ(reg(1), 0u);
}

TEST_F(IssFixture, TrappedInstructionsDoNotRetire) {
  makeIss();
  run1(0xFFFFFFFF);  // illegal: traps
  iss->setPc(eb.constant(kResetPc + 0x40, 32));
  run1(enc::csrrs(1, csr::kMinstret, 0));
  EXPECT_EQ(reg(1), 0u);  // nothing retired yet
  run1(enc::csrrs(1, csr::kMcycle, 0));
  EXPECT_EQ(reg(1), 2u);  // but cycles advanced (trap + csrrs)
}

TEST_F(IssFixture, CounterWritesArePreserved) {
  makeIss();
  setReg(1, 1000);
  run1(enc::csrrw(0, csr::kMinstret, 1));
  run1(enc::csrrs(2, csr::kMinstret, 0));
  EXPECT_EQ(reg(2), 1001u);  // the write retired, advancing by one
}

TEST_F(IssFixture, MstatusTrapStack) {
  makeIss();
  // Enable MIE.
  setReg(1, 0x8);
  run1(enc::csrrw(0, csr::kMstatus, 1));
  run1(enc::ecall());
  // After trap: MIE=0, MPIE=1.
  run1(enc::csrrs(2, csr::kMstatus, 0));
  EXPECT_EQ(reg(2) & 0x8u, 0u);
  EXPECT_EQ(reg(2) & 0x80u, 0x80u);
  run1(enc::mret());
  // After mret: MIE restored.
  run1(enc::csrrs(2, csr::kMstatus, 0));
  EXPECT_EQ(reg(2) & 0x8u, 0x8u);
}

TEST_F(IssFixture, X0StaysZero) {
  makeIss();
  setReg(1, 42);
  run1(enc::add(0, 1, 1));
  EXPECT_EQ(reg(0), 0u);
  const RetireInfo r = run1(enc::addi(0, 1, 1));
  EXPECT_EQ(reg(0), 0u);
  // RVFI rd channel is normalized to zero for x0.
  ASSERT_TRUE(r.rd_value != nullptr);
  EXPECT_TRUE(r.rd_value->isZero());
}

// --- Concrete vs symbolic pipeline agreement (property) ------------------------

TEST(ConcreteVsSymbolic, PinnedSymbolicMatchesConcreteExecution) {
  // Run random valid instructions twice: (a) as a concrete word through
  // the ISS, (b) as a symbolic word pinned by klee_assume. The retired
  // rd value must agree semantically — this exercises the entire
  // symbolic pipeline (fields, mux register file, solver) against the
  // plain interpreter.
  std::mt19937 rng(20260704);
  const auto table = rv32::decodeTable();
  for (int round = 0; round < 25; ++round) {
    // Pick an ALU-ish instruction writing x3 from x1/x2.
    std::uint32_t word;
    rv32::Decoded d;
    do {
      const rv32::DecodePattern& p = table[rng() % table.size()];
      word = (static_cast<std::uint32_t>(rng()) & ~p.mask) | p.match;
      word &= ~((31u << 7) | (31u << 15) | (31u << 20));
      word |= (3u << 7) | (1u << 15) | (2u << 20);
      word = (word & ~p.mask) | p.match;
      d = rv32::decode(word);
    } while (!rv32::writesRd(d.op) || rv32::isLoad(d.op) ||
             rv32::isCsrOp(d.op) || d.op == rv32::Opcode::Jalr ||
             d.op == rv32::Opcode::Jal);
    const std::uint32_t x1 = rng(), x2 = rng();

    // (a) concrete.
    expr::ExprBuilder eb_c;
    symex::ExecState st_c(eb_c, {}, {});
    ProgramMemory imem_c;
    core::InitialImage img_c;
    core::SymbolicDataMemory dmem_c(img_c);
    IssConfig cfg;
    cfg.csr = CsrConfig::specCorrect();
    Iss iss_c(eb_c, imem_c, dmem_c, cfg);
    iss_c.regs().set(eb_c, 1, eb_c.constant(x1, 32));
    iss_c.regs().set(eb_c, 2, eb_c.constant(x2, 32));
    imem_c.load(0x80000000, {word});
    iss_c.step(st_c);
    ASSERT_TRUE(iss_c.regs().get(3)->isConstant()) << rv32::disassemble(word);
    const std::uint32_t expected = static_cast<std::uint32_t>(
        iss_c.regs().get(3)->constantValue());

    // (b) symbolic, pinned by assumes.
    expr::ExprBuilder eb_s;
    symex::ExecState st_s(eb_s, {}, {});
    struct PinnedSource final : InstrSourceIf {
      std::uint32_t word;
      expr::ExprRef fetch(symex::ExecState& s, std::uint32_t) override {
        const expr::ExprRef v = s.makeSymbolic("instr", 32);
        s.assume(s.builder().eqConst(v, word));
        return v;
      }
    } imem_s;
    imem_s.word = word;
    core::InitialImage img_s;
    core::SymbolicDataMemory dmem_s(img_s);
    Iss iss_s(eb_s, imem_s, dmem_s, cfg);
    const expr::ExprRef sx1 = st_s.makeSymbolic("x1", 32);
    const expr::ExprRef sx2 = st_s.makeSymbolic("x2", 32);
    st_s.assume(eb_s.eqConst(sx1, x1));
    st_s.assume(eb_s.eqConst(sx2, x2));
    iss_s.regs().set(eb_s, 1, sx1);
    iss_s.regs().set(eb_s, 2, sx2);
    iss_s.step(st_s);
    EXPECT_TRUE(st_s.mustBeTrue(
        eb_s.eq(iss_s.regs().get(3), eb_s.constant(expected, 32))))
        << rv32::disassemble(word) << " x1=" << x1 << " x2=" << x2;
  }
}

}  // namespace
}  // namespace rvsym::iss
