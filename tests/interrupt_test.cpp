// Tests for machine-interrupt support (extension feature): gating by
// mstatus.MIE / mie / mip, priority order, trap-state updates, lockstep
// agreement between the two models, and mismatch detection when only one
// model implements interrupts.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/cosim.hpp"
#include "core/monitor.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "iss/iss.hpp"
#include "rtl/core.hpp"
#include "rv32/csr.hpp"
#include "rv32/encode.hpp"
#include "symex/engine.hpp"

namespace rvsym {
namespace {

using namespace rv32;
constexpr std::uint32_t kResetPc = 0x80000000;

struct IssIrqFixture : ::testing::Test {
  expr::ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  core::InitialImage image;
  core::SymbolicDataMemory dmem{image};

  struct ProgMem final : iss::InstrSourceIf {
    std::unordered_map<std::uint32_t, std::uint32_t> words;
    expr::ExprRef fetch(symex::ExecState& s, std::uint32_t addr) override {
      auto it = words.find(addr);
      return s.builder().constant(it == words.end() ? 0x13 : it->second, 32);
    }
  } imem;

  std::unique_ptr<iss::Iss> iss_;

  void makeIss() {
    iss::IssConfig cfg;
    cfg.csr = iss::CsrConfig::specCorrect();
    iss_ = std::make_unique<iss::Iss>(eb, imem, dmem, cfg);
  }
  void put(std::uint32_t addr, std::uint32_t word) {
    imem.words[addr] = word;
  }
  std::uint32_t reg(unsigned i) {
    return static_cast<std::uint32_t>(iss_->regs().get(i)->constantValue());
  }
  std::uint32_t pc() {
    return static_cast<std::uint32_t>(iss_->pc()->constantValue());
  }
};

TEST_F(IssIrqFixture, InterruptRedirectsToHandler) {
  makeIss();
  // mtvec = handler; mie.MEIE = 1; mstatus.MIE = 1.
  put(kResetPc + 0, enc::lui(1, 0x80002000));
  put(kResetPc + 4, enc::csrrw(0, csr::kMtvec, 1));
  put(kResetPc + 8, enc::csrrwi(0, csr::kMie, 0));  // placeholder
  iss_->step(st);
  iss_->step(st);
  // mie bit 11 needs a register value (zimm is only 5 bits).
  iss_->regs().set(eb, 2, eb.constant(1u << 11, 32));
  put(kResetPc + 8, enc::csrrw(0, csr::kMie, 2));
  iss_->step(st);
  iss_->regs().set(eb, 3, eb.constant(0x8, 32));
  put(kResetPc + 12, enc::csrrw(0, csr::kMstatus, 3));
  iss_->step(st);

  // No interrupt pending yet: next instruction executes normally.
  put(kResetPc + 16, enc::addi(4, 0, 7));
  iss_->step(st);
  EXPECT_EQ(reg(4), 7u);

  // Raise the external line: the NEXT step takes the interrupt first.
  iss_->csrs().setInterruptLine(11, true);
  put(0x80002000, enc::addi(5, 0, 9));  // handler body
  const iss::RetireInfo r = iss_->step(st);
  EXPECT_FALSE(r.trap);  // the retired instruction is the handler's first
  EXPECT_EQ(reg(5), 9u);
  // mcause must record the external machine interrupt.
  EXPECT_TRUE(iss_->csrs().mcause()->isConstantValue(0x8000000Bu));
  // mepc points at the interrupted instruction.
  EXPECT_TRUE(iss_->csrs().mepc()->isConstantValue(kResetPc + 20));
}

TEST_F(IssIrqFixture, MaskedInterruptIsNotTaken) {
  makeIss();
  iss_->csrs().setInterruptLine(11, true);  // pending but MIE=0, MEIE=0
  put(kResetPc, enc::addi(4, 0, 1));
  iss_->step(st);
  EXPECT_EQ(reg(4), 1u);
  EXPECT_EQ(pc(), kResetPc + 4);
}

TEST_F(IssIrqFixture, PriorityExternalOverSoftwareOverTimer) {
  makeIss();
  iss_->regs().set(eb, 2, eb.constant((1u << 11) | (1u << 3) | (1u << 7), 32));
  put(kResetPc + 0, enc::csrrw(0, csr::kMie, 2));
  iss_->regs().set(eb, 3, eb.constant(0x8, 32));
  put(kResetPc + 4, enc::csrrw(0, csr::kMstatus, 3));
  iss_->step(st);
  iss_->step(st);
  iss_->csrs().setInterruptLine(3, true);
  iss_->csrs().setInterruptLine(7, true);
  iss_->csrs().setInterruptLine(11, true);
  iss_->step(st);  // takes MEI first
  EXPECT_TRUE(iss_->csrs().mcause()->isConstantValue(0x8000000Bu));
}

// --- Co-simulation lockstep with interrupts ------------------------------------

core::CosimConfig irqConfig() {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 3;
  cfg.irq_line = 11;
  cfg.irq_at_cycle = 6;
  return cfg;
}

TEST(CosimInterrupts, BothModelsAgreeUnderInjection) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg = irqConfig();
  // Free symbolic instructions + an injected external interrupt: no
  // mismatch may surface (both models share the interrupt semantics).
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 150;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  EXPECT_EQ(report.error_paths, 0u);
  EXPECT_GE(report.completed_paths, 20u);
}

TEST(CosimInterrupts, AsymmetricSupportIsDetected) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg = irqConfig();
  cfg.rtl.enable_interrupts = false;  // RTL ignores the line
  // Scenario assume: pin the enabling sequence (csrrw mstatus, x1;
  // csrrw mie, x2) with SYMBOLIC x1/x2 — the engine solves for register
  // values that enable the interrupt, which only the ISS then takes.
  const std::uint32_t prog[] = {
      enc::csrrw(0, csr::kMstatus, 1),
      enc::csrrw(0, csr::kMie, 2),
      enc::nop(),
  };
  cfg.instr_constraint = [prog](symex::ExecState& st,
                                const expr::ExprRef& instr) {
    const std::string& name = instr->name();
    const auto addr = static_cast<std::uint32_t>(
        std::strtoul(name.c_str() + name.find('@') + 1, nullptr, 16));
    const std::uint32_t index = (addr - kResetPc) / 4;
    const std::uint32_t word = index < 3 ? prog[index] : enc::nop();
    st.assume(st.builder().eqConst(instr, word));
  };
  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 4000;
  opts.max_seconds = 120;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  EXPECT_GT(report.error_paths, 0u)
      << "interrupt-support mismatch must be discoverable";
}

// --- RVFI monitor ------------------------------------------------------------------

TEST(RvfiMonitor, AcceptsWellFormedStream) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  core::RvfiMonitor mon;
  iss::RetireInfo r;
  r.pc = eb.constant(kResetPc, 32);
  r.next_pc = eb.constant(kResetPc + 4, 32);
  r.instr = eb.constant(enc::nop(), 32);
  EXPECT_FALSE(mon.check(st, r).has_value());
  r.pc = r.next_pc;
  r.next_pc = eb.constant(kResetPc + 8, 32);
  EXPECT_FALSE(mon.check(st, r).has_value());
  EXPECT_EQ(mon.checkedRetirements(), 2u);
}

TEST(RvfiMonitor, CatchesChainBreak) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  core::RvfiMonitor mon;
  iss::RetireInfo r;
  r.pc = eb.constant(kResetPc, 32);
  r.next_pc = eb.constant(kResetPc + 4, 32);
  EXPECT_FALSE(mon.check(st, r).has_value());
  r.pc = eb.constant(kResetPc + 8, 32);  // skips an address
  ASSERT_TRUE(mon.check(st, r).has_value());
}

TEST(RvfiMonitor, CatchesX0Violation) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  core::RvfiMonitor mon;
  iss::RetireInfo r;
  r.pc = eb.constant(kResetPc, 32);
  r.next_pc = eb.constant(kResetPc + 4, 32);
  r.rd_index = eb.constant(0, 5);
  r.rd_value = eb.constant(7, 32);  // nonzero through x0: violation
  const auto v = mon.check(st, r);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("x0"), std::string::npos);
}

TEST(RvfiMonitor, CatchesTrapWithSideEffects) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  core::RvfiMonitor mon;
  iss::RetireInfo r;
  r.pc = eb.constant(kResetPc, 32);
  r.next_pc = eb.constant(0, 32);
  r.trap = true;
  r.cause = 2;
  r.rd_index = eb.constant(1, 5);
  r.rd_value = eb.constant(1, 32);
  EXPECT_TRUE(mon.check(st, r).has_value());
}

TEST(RvfiMonitor, CleanOnRealCosimStreams) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 2;
  cfg.enable_rvfi_monitor = true;
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 80;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  EXPECT_EQ(report.error_paths, 0u);
}

}  // namespace
}  // namespace rvsym
