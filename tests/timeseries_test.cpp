// Live-telemetry round trips: the TimeseriesSampler's producer records
// through the obs::analyze consumer (the rvsym-top / `rvsym-report
// timeseries` path), the deterministic-surface diff behind the sampler's
// --jobs parity promise, and Chrome Trace Event well-formedness for the
// SpanCollector export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/analyze/json_reader.hpp"
#include "obs/analyze/timeseries.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_events.hpp"

namespace rvsym::obs {
namespace {

using analyze::JsonValue;
using analyze::parseJson;

HeartbeatSnapshot campaignSnapshot() {
  HeartbeatSnapshot s;
  s.elapsed_s = 1.5;
  s.has_paths = true;
  s.paths_done = 40;
  s.paths_completed = 37;
  s.paths_error = 3;
  s.paths_partial = 3;
  s.worklist_depth = 2;
  s.instructions = 40;
  s.has_campaign = true;
  s.mutants_total = 10;
  s.mutants_judged = 6;
  s.mutants_killed = 5;
  s.mutants_survived = 1;
  s.has_solver = true;
  s.solver_solves = 100;
  s.solver_qps = 66.7;
  s.solver_p50_us = 12;
  s.solver_p90_us = 80;
  s.solver_p99_us = 400;
  s.answered_exact = 900;
  s.qcache_hits = 900;
  s.qcache_misses = 100;
  return s;
}

TEST(TimeseriesRoundTrip, SampleJsonParsesBackFieldForField) {
  MetricsRegistry reg;
  reg.counter("engine.paths_committed").add(40);
  const std::string line =
      TimeseriesSampler::sampleJson(campaignSnapshot(), &reg, 7);

  analyze::TimeseriesRun run;
  std::string err;
  ASSERT_TRUE(analyze::parseTimeseriesRecord(line, run, &err)) << err;
  ASSERT_EQ(run.samples.size(), 1u);
  const analyze::TimeseriesSample& s = run.samples[0];
  EXPECT_EQ(s.seq, 7u);
  EXPECT_DOUBLE_EQ(s.t_s, 1.5);
  EXPECT_TRUE(s.has_paths);
  EXPECT_EQ(s.paths_done, 40u);
  EXPECT_EQ(s.paths_completed, 37u);
  EXPECT_EQ(s.paths_errors, 3u);
  EXPECT_EQ(s.worklist, 2u);
  EXPECT_TRUE(s.has_campaign);
  EXPECT_EQ(s.mutants_total, 10u);
  EXPECT_EQ(s.mutants_judged, 6u);
  EXPECT_EQ(s.mutants_killed, 5u);
  EXPECT_TRUE(s.has_solver);
  EXPECT_EQ(s.solver_solves, 100u);
  EXPECT_EQ(s.p99_us, 400u);
  EXPECT_EQ(s.answered_exact, 900u);
  EXPECT_EQ(s.qcache_hits, 900u);
  EXPECT_EQ(s.qcache_misses, 100u);
}

TEST(TimeseriesRoundTrip, FinalJsonSplitsDeterministicFromTiming) {
  const std::string line =
      TimeseriesSampler::finalJson(campaignSnapshot(), "mutate", 1.5, 3);
  std::string err;
  const auto v = parseJson(line, &err);
  ASSERT_TRUE(v) << err;
  // Deterministic progress fields are unprefixed...
  EXPECT_TRUE(v->find("paths"));
  EXPECT_TRUE(v->find("campaign"));
  // ...every timing-dependent field carries the t_/qc_ prefix, nothing
  // else does (the canonicalization contract).
  for (const auto& [key, val] : v->members()) {
    (void)val;
    if (key == "t_s" || key == "t_samples") continue;
    const bool prefixed =
        key.rfind("t_", 0) == 0 || key.rfind("qc_", 0) == 0;
    const bool deterministic = key == "ev" || key == "kind" ||
                               key == "paths" || key == "instr" ||
                               key == "campaign" || key == "work";
    EXPECT_TRUE(prefixed || deterministic) << "unclassified field: " << key;
  }
  EXPECT_TRUE(v->find("qc_answered"));
}

TEST(TimeseriesRoundTrip, SamplerStreamLoadsAndDiffsAsParity) {
#ifdef RVSYM_OBS_NO_TRACING
  GTEST_SKIP() << "sampler compiled out (RVSYM_DISABLE_TRACING)";
#endif
  MetricsRegistry reg;
  reg.counter("engine.paths_committed").add(25);
  reg.counter("engine.paths_completed").add(25);
  reg.histogram("solver.check_us").record(50);

  const auto write_stream = [&](const std::string& path,
                                std::uint64_t extra_hits) {
    // Identical deterministic state, different cache traffic — the
    // situation two --jobs values produce.
    reg.counter("qcache.hits").add(extra_hits);
    TimeseriesOptions opts;
    opts.out_path = path;
    opts.interval_s = 0.005;
    opts.kind = "verify";
    opts.total_work = 25;
    TimeseriesSampler sampler(opts, reg);
    std::string err;
    ASSERT_TRUE(sampler.start(&err)) << err;
    while (sampler.samples() < 1) std::this_thread::yield();
    sampler.stop();
  };

  const std::string path_a = ::testing::TempDir() + "ts_parity_a.jsonl";
  const std::string path_b = ::testing::TempDir() + "ts_parity_b.jsonl";
  write_stream(path_a, 10);
  write_stream(path_b, 7);

  std::string err;
  const auto a = analyze::loadTimeseries(path_a, &err);
  ASSERT_TRUE(a) << err;
  const auto b = analyze::loadTimeseries(path_b, &err);
  ASSERT_TRUE(b) << err;
  EXPECT_EQ(a->header.kind, "verify");
  EXPECT_EQ(a->header.total_work, 25u);
  EXPECT_GE(a->samples.size(), 1u);
  ASSERT_TRUE(a->final_record.has_value());
  ASSERT_TRUE(b->final_record.has_value());

  // Different qcache totals, same progress: parity must hold.
  EXPECT_NE(a->final_record->getU64("qc_hits"),
            b->final_record->getU64("qc_hits"));
  EXPECT_EQ(analyze::canonicalFinal(*a->final_record),
            analyze::canonicalFinal(*b->final_record));
  EXPECT_TRUE(analyze::diffTimeseries(*a, *b).empty());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TimeseriesDiff, FlagsDeterministicDivergence) {
  const auto run_with = [](std::uint64_t done) {
    HeartbeatSnapshot s;
    s.has_paths = true;
    s.paths_done = done;
    s.paths_completed = done;
    analyze::TimeseriesRun run;
    EXPECT_TRUE(analyze::parseTimeseriesRecord(
        "{\"ev\":\"ts_header\",\"schema\":\"rvsym-timeseries-v1\","
        "\"version\":1,\"kind\":\"verify\",\"interval_s\":0.5,"
        "\"total_work\":0}",
        run));
    EXPECT_TRUE(analyze::parseTimeseriesRecord(
        TimeseriesSampler::finalJson(s, "verify", 9.0, 18), run));
    return run;
  };
  const analyze::TimeseriesRun a = run_with(40);
  const analyze::TimeseriesRun b = run_with(41);
  EXPECT_TRUE(analyze::diffTimeseries(a, a).empty());
  EXPECT_FALSE(analyze::diffTimeseries(a, b).empty());
}

TEST(TimeseriesStatus, StatusObjectParsesAsSingleSample) {
#ifdef RVSYM_OBS_NO_TRACING
  GTEST_SKIP() << "sampler compiled out (RVSYM_DISABLE_TRACING)";
#endif
  MetricsRegistry reg;
  reg.counter("engine.paths_committed").add(3);
  const std::string status = ::testing::TempDir() + "ts_status_test.json";
  TimeseriesOptions opts;
  opts.status_path = status;
  opts.interval_s = 0.005;
  opts.kind = "verify";
  TimeseriesSampler sampler(opts, reg);
  std::string err;
  ASSERT_TRUE(sampler.start(&err)) << err;
  while (sampler.samples() < 1) std::this_thread::yield();
  sampler.stop();

  std::ifstream in(status);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // No .tmp file left behind by the atomic rewrite.
  EXPECT_FALSE(std::ifstream(status + ".tmp").good());
  analyze::TimeseriesRun run;
  ASSERT_TRUE(analyze::parseTimeseriesRecord(text, run, &err)) << err;
  EXPECT_EQ(run.header.kind, "verify");
  ASSERT_EQ(run.samples.size(), 1u);
  EXPECT_EQ(run.samples[0].paths_done, 3u);
  std::remove(status.c_str());
}

// --- Chrome Trace Event export --------------------------------------------

TEST(ChromeTrace, DocumentIsWellFormedWithMonotonicTracks) {
  SpanCollector spans;
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&spans, t] {
      for (int i = 0; i < 50; ++i)
        spans.addEnding("q" + std::to_string(t), "solver", 3,
                        {{"disposition", "\"solve\""},
                         {"expr_nodes", std::to_string(i)}});
    });
  }
  for (std::thread& t : producers) t.join();

  const std::string doc = spans.toChromeTrace();
  std::string err;
  const auto v = parseJson(doc, &err);
  ASSERT_TRUE(v) << err;

  const JsonValue* events = v->find("traceEvents");
  ASSERT_TRUE(events && events->isArray());
  std::map<std::uint64_t, std::uint64_t> last_ts;   // tid -> last ts
  std::map<std::uint64_t, bool> named;              // tid -> metadata seen
  std::size_t complete_events = 0;
  for (const JsonValue& ev : events->items()) {
    const auto ph = ev.getString("ph");
    ASSERT_TRUE(ph);
    const std::uint64_t tid = ev.getU64("tid").value_or(~0ull);
    if (*ph == "M") {
      EXPECT_EQ(ev.getString("name").value_or(""), "thread_name");
      named[tid] = true;
      continue;
    }
    ASSERT_EQ(*ph, "X");
    ++complete_events;
    // Every track is named before its first complete event and its
    // timestamps never go backwards (the chrome://tracing contract).
    EXPECT_TRUE(named[tid]) << "unnamed track " << tid;
    const std::uint64_t ts = ev.getU64("ts").value_or(0);
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;
    EXPECT_EQ(ev.getString("cat").value_or(""), "solver");
    const JsonValue* args = ev.find("args");
    ASSERT_TRUE(args);
    EXPECT_EQ(args->getString("disposition").value_or(""), "solve");
  }
  EXPECT_EQ(complete_events, 150u);
  EXPECT_EQ(last_ts.size(), 3u);
  EXPECT_EQ(v->getString("displayTimeUnit").value_or(""), "ms");
}

TEST(ChromeTrace, WriteToFileRoundTrips) {
  SpanCollector spans;
  spans.addEnding("decode", "phase", 12);
  const std::string path = ::testing::TempDir() + "trace_events_test.json";
  ASSERT_TRUE(spans.writeChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string err;
  const auto v = parseJson(text, &err);
  ASSERT_TRUE(v) << err;
  const JsonValue* other = v->find("otherData");
  ASSERT_TRUE(other);
  EXPECT_EQ(other->getString("producer").value_or(""), "rvsym");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rvsym::obs
