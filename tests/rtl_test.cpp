// Tests for the MicroRV32-class RTL core model: bus protocol conformance,
// multi-cycle timing, per-instruction RVFI results, strobe planning for
// aligned and misaligned accesses, the authentic-bug switches, and every
// injected fault E0-E9 on a concrete witness.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "rtl/core.hpp"
#include "rv32/csr.hpp"
#include "rv32/encode.hpp"

namespace rvsym::rtl {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;
using namespace rv32;

constexpr std::uint32_t kResetPc = 0x80000000;

struct RtlBench : ::testing::Test {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  core::InitialImage image;
  core::SymbolicDataMemory mem{image};
  std::unordered_map<std::uint32_t, std::uint32_t> program;
  std::unique_ptr<MicroRv32Core> core;

  struct BusTrace {
    unsigned fetches = 0;
    std::vector<std::pair<std::uint32_t, std::uint8_t>> data_txns;  // addr,strobe
  } trace;

  void makeCore(RtlConfig cfg = {}) {
    core = std::make_unique<MicroRv32Core>(eb, cfg);
  }

  void setReg(unsigned i, std::uint32_t v) {
    core->regs().set(eb, i, eb.constant(v, 32));
  }
  std::uint32_t reg(unsigned i) {
    const ExprRef& e = core->regs().get(i);
    EXPECT_TRUE(e->isConstant());
    return static_cast<std::uint32_t>(e->constantValue());
  }
  void setMemByte(std::uint32_t addr, std::uint8_t v) {
    mem.setByte(addr, eb.constant(v, 8));
  }
  std::uint8_t memByte(std::uint32_t addr) {
    const ExprRef b = mem.byteAt(st, addr);
    EXPECT_TRUE(b->isConstant());
    return static_cast<std::uint8_t>(b->constantValue());
  }

  /// Drives the clock + testbench protocol until the next retirement.
  iss::RetireInfo stepOne(std::uint32_t instruction_word) {
    program[constantPc()] = instruction_word;
    for (int cycles = 0; cycles < 200; ++cycles) {
      core->tick(st);
      if (core->ibus.fetch_enable && !core->ibus.instruction_ready) {
        auto it = program.find(core->ibus.address);
        const std::uint32_t word = it == program.end() ? 0 : it->second;
        core->ibus.instruction = eb.constant(word, 32);
        core->ibus.instruction_ready = true;
        ++trace.fetches;
      } else if (!core->ibus.fetch_enable) {
        core->ibus.instruction_ready = false;
      }
      if (core->dbus.enable && !core->dbus.data_ready) {
        trace.data_txns.emplace_back(core->dbus.address, core->dbus.strobe);
        if (core->dbus.write)
          mem.storeStrobed(st, core->dbus.address, core->dbus.strobe,
                           core->dbus.wdata);
        else
          core->dbus.rdata =
              mem.loadStrobed(st, core->dbus.address, core->dbus.strobe);
        core->dbus.data_ready = true;
      } else if (!core->dbus.enable) {
        core->dbus.data_ready = false;
      }
      if (core->rvfi.valid) return core->rvfi.info;
    }
    ADD_FAILURE() << "core did not retire within 200 cycles";
    return {};
  }

  std::uint32_t constantPc() {
    EXPECT_TRUE(core->pc()->isConstant());
    return static_cast<std::uint32_t>(core->pc()->constantValue());
  }
};

// --- Basic execution & timing ----------------------------------------------------

TEST_F(RtlBench, AddRetiresWithRvfi) {
  makeCore();
  setReg(1, 5);
  setReg(2, 7);
  const iss::RetireInfo r = stepOne(enc::add(3, 1, 2));
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(reg(3), 12u);
  ASSERT_TRUE(r.pc->isConstant());
  EXPECT_EQ(r.pc->constantValue(), kResetPc);
  ASSERT_TRUE(r.next_pc->isConstant());
  EXPECT_EQ(r.next_pc->constantValue(), kResetPc + 4);
  ASSERT_TRUE(r.rd_value->isConstant());
  EXPECT_EQ(r.rd_value->constantValue(), 12u);
}

TEST_F(RtlBench, MultiCycleTiming) {
  makeCore();
  const std::uint64_t before = core->cycleCount();
  stepOne(enc::nop());
  const std::uint64_t alu_cycles = core->cycleCount() - before;
  // Fetch handshake + execute + writeback: strictly more than one cycle.
  EXPECT_GE(alu_cycles, 3u);
  EXPECT_LE(alu_cycles, 8u);

  setReg(1, 0x100);
  const std::uint64_t before_mem = core->cycleCount();
  stepOne(enc::lw(2, 1, 0));
  const std::uint64_t mem_cycles = core->cycleCount() - before_mem;
  EXPECT_GT(mem_cycles, alu_cycles);  // memory adds bus cycles
}

TEST_F(RtlBench, RvfiValidForExactlyOneTick) {
  makeCore();
  stepOne(enc::nop());
  EXPECT_TRUE(core->rvfi.valid);
  core->tick(st);
  EXPECT_FALSE(core->rvfi.valid);
}

// --- Strobe planning -----------------------------------------------------------------

TEST_F(RtlBench, AlignedWordUsesSingleFullStrobe) {
  makeCore();
  setReg(1, 0x100);
  setReg(2, 0xCAFEBABE);
  stepOne(enc::sw(2, 1, 0));
  ASSERT_EQ(trace.data_txns.size(), 1u);
  EXPECT_EQ(trace.data_txns[0], (std::pair<std::uint32_t, std::uint8_t>{
                                    0x100, 0b1111}));
  EXPECT_EQ(memByte(0x100), 0xBE);
  EXPECT_EQ(memByte(0x103), 0xCA);
}

TEST_F(RtlBench, AlignedHalfStrobes) {
  makeCore();
  setReg(1, 0x100);
  setReg(2, 0x1234);
  stepOne(enc::sh(2, 1, 0));
  stepOne(enc::sh(2, 1, 2));
  ASSERT_EQ(trace.data_txns.size(), 2u);
  EXPECT_EQ(trace.data_txns[0].second, 0b0011);
  EXPECT_EQ(trace.data_txns[1].second, 0b1100);
  EXPECT_EQ(trace.data_txns[1].first, 0x100u);  // word-aligned address
  EXPECT_EQ(memByte(0x102), 0x34);
  EXPECT_EQ(memByte(0x103), 0x12);
}

TEST_F(RtlBench, ByteStrobeSelectsLane) {
  makeCore();
  setReg(1, 0x100);
  setReg(2, 0xAB);
  stepOne(enc::sb(2, 1, 3));
  ASSERT_EQ(trace.data_txns.size(), 1u);
  EXPECT_EQ(trace.data_txns[0].second, 0b1000);
  EXPECT_EQ(memByte(0x103), 0xAB);
}

TEST_F(RtlBench, MisalignedWordSplitsIntoByteTransactions) {
  makeCore();  // authentic: misaligned supported
  setReg(1, 0x101);
  setReg(2, 0x44332211);
  const iss::RetireInfo r = stepOne(enc::sw(2, 1, 0));
  EXPECT_FALSE(r.trap);
  ASSERT_EQ(trace.data_txns.size(), 4u);
  EXPECT_EQ(trace.data_txns[0].second, 0b0010);  // 0x101 lane 1
  EXPECT_EQ(trace.data_txns[3].second, 0b0001);  // 0x104 lane 0
  EXPECT_EQ(trace.data_txns[3].first, 0x104u);
  EXPECT_EQ(memByte(0x101), 0x11);
  EXPECT_EQ(memByte(0x104), 0x44);
}

TEST_F(RtlBench, MisalignedLoadAssemblesCorrectly) {
  makeCore();
  for (unsigned i = 0; i < 6; ++i)
    setMemByte(0x100 + i, static_cast<std::uint8_t>(0x10 * (i + 1)));
  setReg(1, 0x101);
  stepOne(enc::lw(3, 1, 0));
  EXPECT_EQ(reg(3), 0x50403020u);
}

// --- Authentic bug switches -------------------------------------------------------------

TEST_F(RtlBench, AuthenticCoreSupportsMisaligned) {
  makeCore();  // default: authentic MicroRV32
  setReg(1, 0x102);
  setMemByte(0x102, 0xCD);
  setMemByte(0x103, 0xAB);
  const iss::RetireInfo r = stepOne(enc::lh(3, 1, 1));  // address 0x103
  EXPECT_FALSE(r.trap) << "MicroRV32 supports misaligned accesses";
}

TEST_F(RtlBench, FixedCoreTrapsOnMisaligned) {
  makeCore(fixedRtlConfig());
  setReg(1, 0x103);
  const iss::RetireInfo r = stepOne(enc::lh(3, 1, 0));
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::MisalignedLoad));
}

TEST_F(RtlBench, AuthenticWfiTraps) {
  makeCore();
  const iss::RetireInfo r = stepOne(enc::wfi());
  EXPECT_TRUE(r.trap) << "MicroRV32 is missing WFI";
  EXPECT_EQ(r.cause, static_cast<std::uint32_t>(Cause::IllegalInstr));
}

TEST_F(RtlBench, FixedWfiIsNop) {
  makeCore(fixedRtlConfig());
  const iss::RetireInfo r = stepOne(enc::wfi());
  EXPECT_FALSE(r.trap);
}

TEST_F(RtlBench, AuthenticCsrBugs) {
  makeCore();
  // Missing trap at access of unimplemented CSRs: reads as zero.
  iss::RetireInfo r = stepOne(enc::csrrwi(1, 0x400, 0));
  EXPECT_FALSE(r.trap);
  EXPECT_EQ(reg(1), 0u);
  // Missing trap at write to read-only id registers.
  r = stepOne(enc::csrrw(0, csr::kMarchid, 0));
  EXPECT_FALSE(r.trap);
  // Trap at write access to mcycle / mip.
  r = stepOne(enc::csrrw(0, csr::kMcycle, 0));
  EXPECT_TRUE(r.trap);
}

TEST_F(RtlBench, FixedCsrBehaviour) {
  makeCore(fixedRtlConfig());
  iss::RetireInfo r = stepOne(enc::csrrwi(1, 0x400, 0));
  EXPECT_TRUE(r.trap);  // spec: illegal instruction
  core->setPc(eb.constant(kResetPc + 0x40, 32));
  r = stepOne(enc::csrrw(0, csr::kMarchid, 0));
  EXPECT_TRUE(r.trap);
  core->setPc(eb.constant(kResetPc + 0x80, 32));
  r = stepOne(enc::csrrw(0, csr::kMcycle, 0));
  EXPECT_FALSE(r.trap);
}

TEST_F(RtlBench, CycleCountsPerClockTick) {
  makeCore();  // authentic: mcycle counts real cycles
  stepOne(enc::nop());
  stepOne(enc::csrrs(1, csr::kMcycle, 0));
  // Far more cycles than the 1 instruction an ISS would count.
  EXPECT_GT(reg(1), 1u);
}

// --- Injected faults E0-E9 on concrete witnesses ------------------------------------------

TEST_F(RtlBench, E0ReservedEncodingDecodesAsSlli) {
  makeCore(fixedRtlConfig());
  for (DecodePattern& p : core->decodeTableMut())
    if (p.op == Opcode::Slli) p.mask &= ~(1u << 25);
  setReg(1, 1);
  const std::uint32_t reserved = enc::slli(3, 1, 4) | (1u << 25);
  const iss::RetireInfo r = stepOne(reserved);
  EXPECT_FALSE(r.trap) << "faulty decoder accepts the reserved encoding";
  EXPECT_EQ(reg(3), 0x10u);
}

TEST_F(RtlBench, E3AddiLowBitStuckAtZero) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.stuck_bits.push_back({Opcode::Addi, 0, false});
  makeCore(cfg);
  setReg(1, 2);
  stepOne(enc::addi(3, 1, 1));  // 3 -> faulty 2
  EXPECT_EQ(reg(3), 2u);
}

TEST_F(RtlBench, E4SubHighBitStuckAtZero) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.stuck_bits.push_back({Opcode::Sub, 31, false});
  makeCore(cfg);
  setReg(1, 0);
  setReg(2, 1);
  stepOne(enc::sub(3, 1, 2));  // -1 -> faulty 0x7FFFFFFF
  EXPECT_EQ(reg(3), 0x7FFFFFFFu);
}

TEST_F(RtlBench, E5JalDoesNotChangePc) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.setFlag(ExecFaults::kJalNoPcUpdate);
  makeCore(cfg);
  const iss::RetireInfo r = stepOne(enc::jal(1, 64));
  EXPECT_EQ(r.next_pc->constantValue(), kResetPc + 4);  // not +64
  EXPECT_EQ(reg(1), kResetPc + 4);                      // link still written
}

TEST_F(RtlBench, E6BneBehavesAsBeq) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.branch_swaps.push_back({Opcode::Bne, Opcode::Beq});
  makeCore(cfg);
  setReg(1, 5);
  setReg(2, 5);
  const iss::RetireInfo r = stepOne(enc::bne(1, 2, 16));
  EXPECT_EQ(r.next_pc->constantValue(), kResetPc + 16);  // wrongly taken
}

TEST_F(RtlBench, E7LbuEndiannessFlip) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.mem_faults.push_back({Opcode::Lbu, MemFaultKind::EndianFlip});
  makeCore(cfg);
  setMemByte(0x100, 0x11);
  setMemByte(0x103, 0x44);
  setReg(1, 0x100);
  stepOne(enc::lbu(3, 1, 0));  // should read 0x11, reads lane 3 instead
  EXPECT_EQ(reg(3), 0x44u);
}

TEST_F(RtlBench, E8LbMissingSignExtension) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.mem_faults.push_back({Opcode::Lb, MemFaultKind::SignFlip});
  makeCore(cfg);
  setMemByte(0x100, 0x80);
  setReg(1, 0x100);
  stepOne(enc::lb(3, 1, 0));
  EXPECT_EQ(reg(3), 0x80u);  // not 0xFFFFFF80
}

TEST_F(RtlBench, E9LwLoadsOnlyLowerHalf) {
  RtlConfig cfg = fixedRtlConfig();
  cfg.faults.mem_faults.push_back({Opcode::Lw, MemFaultKind::LowHalf});
  makeCore(cfg);
  for (unsigned i = 0; i < 4; ++i)
    setMemByte(0x100 + i, static_cast<std::uint8_t>(0x11 * (i + 1)));
  setReg(1, 0x100);
  stepOne(enc::lw(3, 1, 0));
  EXPECT_EQ(reg(3), 0x2211u);
}

TEST_F(RtlBench, FaultsAreInertWhenDisabled) {
  makeCore(fixedRtlConfig());
  setReg(1, 2);
  stepOne(enc::addi(3, 1, 1));
  EXPECT_EQ(reg(3), 3u);
  setMemByte(0x200, 0x80);
  setReg(1, 0x200);
  stepOne(enc::lb(4, 1, 0));
  EXPECT_EQ(reg(4), 0xFFFFFF80u);
}

// --- Trap state ------------------------------------------------------------------------------

TEST_F(RtlBench, EcallSetsTrapCsrs) {
  makeCore();
  setReg(1, 0x80002000);
  stepOne(enc::csrrw(0, csr::kMtvec, 1));
  const iss::RetireInfo r = stepOne(enc::ecall());
  EXPECT_TRUE(r.trap);
  EXPECT_EQ(constantPc(), 0x80002000u);
  stepOne(enc::csrrs(2, csr::kMepc, 0));
  EXPECT_EQ(reg(2), kResetPc + 4);
  stepOne(enc::csrrs(2, csr::kMcause, 0));
  EXPECT_EQ(reg(2), static_cast<std::uint32_t>(Cause::EcallFromM));
}

}  // namespace
}  // namespace rvsym::rtl
