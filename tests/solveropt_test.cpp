// Tests for the solver acceleration stack (DESIGN.md §10): SolverOptions
// parsing, the counterexample/subsumption cache, UNSAT-core extraction,
// the pre-bitblast rewriter, constraint slicing — and the property that
// holds the whole design together: every layer combination produces the
// same verdicts and the same model() bytes as the plain solver, because
// each layer only changes how an answer is obtained, never which.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "expr/rewrite.hpp"
#include "solver/cexcache.hpp"
#include "solver/options.hpp"
#include "solver/querycache.hpp"
#include "solver/sat.hpp"
#include "solver/solver.hpp"
#include "symex/engine.hpp"

namespace rvsym::solver {
namespace {

using expr::Assignment;
using expr::ExprBuilder;
using expr::ExprRef;

// --- SolverOptions parsing ------------------------------------------------------

TEST(SolverOptions, ParseSpecs) {
  SolverOptions o;
  EXPECT_TRUE(parseSolverOpt("all", &o));
  EXPECT_EQ(o, SolverOptions::all());
  EXPECT_TRUE(parseSolverOpt("none", &o));
  EXPECT_EQ(o, SolverOptions::none());
  EXPECT_FALSE(o.any());

  EXPECT_TRUE(parseSolverOpt("cex", &o));
  EXPECT_TRUE(o.cex_cache);
  EXPECT_FALSE(o.unsat_cores);
  EXPECT_FALSE(o.selectorMode());

  EXPECT_TRUE(parseSolverOpt("cex,cores", &o));
  EXPECT_TRUE(o.cex_cache);
  EXPECT_TRUE(o.unsat_cores);
  EXPECT_TRUE(o.selectorMode());

  std::string err;
  EXPECT_FALSE(parseSolverOpt("cex,bogus", &o, &err));
  EXPECT_FALSE(err.empty());
}

TEST(SolverOptions, NameRoundTrips) {
  const std::vector<std::string> specs = {"all", "none", "cex", "cex,cores",
                                          "rewrite", "slice"};
  for (const std::string& spec : specs) {
    SolverOptions o;
    ASSERT_TRUE(parseSolverOpt(spec, &o)) << spec;
    SolverOptions back;
    ASSERT_TRUE(parseSolverOpt(solverOptName(o), &back)) << spec;
    EXPECT_EQ(o, back) << spec;
  }
}

// --- CexCache -------------------------------------------------------------------

CanonHash h(std::uint64_t lo, std::uint64_t hi) { return CanonHash{lo, hi}; }

TEST(CexCache, ModelStoreFirstWriterWins) {
  CexCache cex;
  EXPECT_FALSE(cex.lookupModel(h(1, 1)).has_value());

  CexCache::Model m1;
  m1.values = {{h(10, 0), 7}, {h(20, 0), 9}};
  cex.insertModel(h(1, 1), m1);
  CexCache::Model m2;
  m2.values = {{h(10, 0), 99}};
  cex.insertModel(h(1, 1), m2);  // same key, different witness: dropped

  const auto got = cex.lookupModel(h(1, 1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get(h(10, 0)), std::make_optional<std::uint64_t>(7));
  EXPECT_EQ(got->get(h(20, 0)), std::make_optional<std::uint64_t>(9));
  EXPECT_FALSE(got->get(h(30, 0)).has_value());
  EXPECT_EQ(cex.stats().models, 1u);
}

TEST(CexCache, CoreSubsetSubsumes) {
  CexCache cex;
  cex.insertCore({h(1, 0), h(2, 0)});
  cex.insertCore({h(2, 0), h(1, 0)});  // same set: deduplicated
  EXPECT_EQ(cex.stats().cores, 1u);

  // Supersets of {1,2} are subsumed, others are not.
  EXPECT_TRUE(cex.subsumesUnsat({h(1, 0), h(2, 0)}));
  EXPECT_TRUE(cex.subsumesUnsat({h(3, 0), h(1, 0), h(2, 0)}));
  EXPECT_TRUE(cex.subsumesUnsat({h(1, 0), h(1, 0), h(2, 0)}));  // dups ok
  EXPECT_FALSE(cex.subsumesUnsat({h(1, 0), h(3, 0)}));
  EXPECT_FALSE(cex.subsumesUnsat({h(2, 0)}));
  EXPECT_FALSE(cex.subsumesUnsat({}));
}

// --- SatSolver final-conflict cores ---------------------------------------------

TEST(Sat, FinalConflictIsCoreOverAssumptions) {
  SatSolver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  const Var c = s.newVar();
  s.addClause(mkLit(a), mkLit(b));   // a | b
  s.addClause(~mkLit(a), mkLit(c));  // a -> c
  ASSERT_EQ(s.solve(), SatSolver::Result::Sat);  // clauses alone: Sat

  // {a, ~c} conflicts with a->c; ~b is irrelevant and must not be needed.
  const std::vector<Lit> assumps = {~mkLit(b), mkLit(a), ~mkLit(c)};
  ASSERT_EQ(s.solve(assumps), SatSolver::Result::Unsat);
  const std::vector<Lit> core = s.conflict();
  ASSERT_FALSE(core.empty());
  for (const Lit l : core)
    EXPECT_NE(std::find(assumps.begin(), assumps.end(), l), assumps.end());
  // The core alone must still be unsatisfiable with the clauses.
  EXPECT_EQ(s.solve(core), SatSolver::Result::Unsat);
}

TEST(Sat, ConflictEmptyWhenClausesAloneUnsat) {
  SatSolver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a));
  EXPECT_FALSE(s.addClause(~mkLit(a)));
  EXPECT_EQ(s.solve({mkLit(b)}), SatSolver::Result::Unsat);
  EXPECT_TRUE(s.conflict().empty());
}

TEST(Sat, RandomConflictCoresAreValid) {
  std::mt19937 rng(0x5EED5);
  for (int round = 0; round < 40; ++round) {
    SatSolver s;
    const int num_vars = 5 + static_cast<int>(rng() % 6);
    for (int v = 0; v < num_vars; ++v) s.newVar();
    for (int cl = 0; cl < num_vars * 2; ++cl) {
      std::vector<Lit> clause;
      const int len = 2 + static_cast<int>(rng() % 2);
      for (int k = 0; k < len; ++k)
        clause.push_back(
            mkLit(static_cast<Var>(rng() % static_cast<unsigned>(num_vars)),
                  (rng() & 1) != 0));
      s.addClause(clause);
    }
    if (s.solve() != SatSolver::Result::Sat) continue;  // want Sat clause DB

    std::vector<Lit> assumps;
    for (int v = 0; v < num_vars; ++v)
      assumps.push_back(mkLit(static_cast<Var>(v), (rng() & 1) != 0));
    if (s.solve(assumps) != SatSolver::Result::Unsat) continue;

    const std::vector<Lit> core = s.conflict();
    ASSERT_FALSE(core.empty()) << "round " << round;
    for (const Lit l : core)
      EXPECT_NE(std::find(assumps.begin(), assumps.end(), l), assumps.end())
          << "round " << round;
    EXPECT_EQ(s.solve(core), SatSolver::Result::Unsat) << "round " << round;
    EXPECT_TRUE(s.okay());
  }
}

// --- Pre-bitblast rewrite -------------------------------------------------------

TEST(Rewrite, EqualitySubstRecognizesPins) {
  ExprBuilder eb;
  expr::SubstMap subst;
  const ExprRef v = eb.variable("v", 8);
  const ExprRef flag = eb.variable("flag", 1);

  EXPECT_TRUE(expr::addEqualitySubst(eb, eb.eqConst(v, 42), &subst));
  EXPECT_TRUE(expr::addEqualitySubst(eb, flag, &subst));  // bare 1-bit: pins 1
  EXPECT_FALSE(
      expr::addEqualitySubst(eb, eb.ult(v, eb.constant(99, 8)), &subst));
  EXPECT_EQ(subst.size(), 2u);

  // Under the environment, expressions over pinned variables fold.
  const ExprRef folded =
      expr::rewriteExpr(eb, eb.eq(eb.add(v, v), eb.constant(84, 8)), subst);
  ASSERT_TRUE(folded->isConstant());
  EXPECT_EQ(folded->constantValue(), 1u);
  const ExprRef f2 = expr::rewriteExpr(eb, eb.notOp(flag), subst);
  ASSERT_TRUE(f2->isConstant());
  EXPECT_EQ(f2->constantValue(), 0u);
}

/// Random expression over named variables, used by the rewrite and
/// pipeline fuzzers below.
ExprRef randomBv(ExprBuilder& eb, std::mt19937_64& rng, unsigned width,
                 int depth) {
  if (depth <= 0) {
    switch (rng() % 4) {
      case 0: return eb.variable("x", width);
      case 1: return eb.variable("y", width);
      case 2: return eb.variable("z", width);
      default: return eb.constant(rng(), width);
    }
  }
  const auto sub = [&] { return randomBv(eb, rng, width, depth - 1); };
  switch (rng() % 10) {
    case 0: return eb.add(sub(), sub());
    case 1: return eb.sub(sub(), sub());
    case 2: return eb.andOp(sub(), sub());
    case 3: return eb.orOp(sub(), sub());
    case 4: return eb.xorOp(sub(), sub());
    case 5: return eb.notOp(sub());
    case 6: return eb.zext(eb.extract(sub(), 0, width / 2), width);
    case 7: return eb.sext(eb.extract(sub(), 0, width / 2), width);
    case 8: return eb.ite(eb.eq(sub(), sub()), sub(), sub());
    default: return eb.mul(sub(), sub());
  }
}

ExprRef randomBool(ExprBuilder& eb, std::mt19937_64& rng, unsigned width,
                   int depth) {
  const auto bv = [&] { return randomBv(eb, rng, width, depth); };
  switch (rng() % (depth > 0 ? 6 : 4)) {
    case 0: return eb.eq(bv(), bv());
    case 1: return eb.ult(bv(), bv());
    case 2: return eb.ule(bv(), bv());
    case 3: return eb.slt(bv(), bv());
    case 4:
      return eb.boolAnd(randomBool(eb, rng, width, depth - 1),
                        randomBool(eb, rng, width, depth - 1));
    default:
      return eb.boolNot(randomBool(eb, rng, width, depth - 1));
  }
}

TEST(Rewrite, DifferentialAgainstEvaluate) {
  // rewriteExpr must be equivalence-preserving under the substitution
  // environment: for assignments consistent with the pins, original and
  // rewritten expressions evaluate identically (expr::evaluate is the
  // single source of truth).
  const unsigned width = 8;
  for (int round = 0; round < 200; ++round) {
    ExprBuilder eb;
    std::mt19937_64 rng(0xD1FF + static_cast<unsigned>(round) * 131);
    const ExprRef x = eb.variable("x", width);
    const ExprRef y = eb.variable("y", width);
    const ExprRef z = eb.variable("z", width);

    expr::SubstMap subst;
    const std::uint64_t x_pin = rng() & 0xFF;
    expr::addEqualitySubst(eb, eb.eqConst(x, x_pin), &subst);

    const ExprRef e = randomBool(eb, rng, width, 2);
    const ExprRef r = expr::rewriteExpr(eb, e, subst);
    for (int sample = 0; sample < 16; ++sample) {
      Assignment asg;
      asg.set(x->variableId(), x_pin);  // consistent with the pin
      asg.set(y->variableId(), rng() & 0xFF);
      asg.set(z->variableId(), rng() & 0xFF);
      EXPECT_EQ(expr::evaluate(e, asg), expr::evaluate(r, asg))
          << "round " << round << " sample " << sample;
    }
  }
}

// --- PathSolver pipeline: differential + brute-force fuzz -----------------------

/// Brute-force satisfiability of (constraints ∧ assumption) over the
/// three 4-bit variables — ground truth for the pipeline fuzzer.
bool bruteSat(const std::vector<ExprRef>& constraints, const ExprRef& assumption,
              std::uint64_t xid, std::uint64_t yid, std::uint64_t zid) {
  for (std::uint64_t v = 0; v < (1u << 12); ++v) {
    Assignment asg;
    asg.set(xid, v & 0xF);
    asg.set(yid, (v >> 4) & 0xF);
    asg.set(zid, (v >> 8) & 0xF);
    bool all = true;
    for (const ExprRef& c : constraints)
      if (expr::evaluate(c, asg) != 1) {
        all = false;
        break;
      }
    if (all && (!assumption || expr::evaluate(assumption, asg) == 1))
      return true;
  }
  return false;
}

TEST(SolverOpt, DifferentialFuzzAllLayersVsPlain) {
  // One builder, hasher and shared caches across every round — the same
  // cross-path reuse shape a live engine run produces — against (a) a
  // fresh plain solver per round and (b) brute force at width 4.
  const unsigned width = 4;
  ExprBuilder eb;
  CanonicalHasher hasher;
  QueryCache qc;
  CexCache cex;
  const ExprRef x = eb.variable("x", width);
  const ExprRef y = eb.variable("y", width);
  const ExprRef z = eb.variable("z", width);

  for (int round = 0; round < 60; ++round) {
    std::mt19937_64 rng(0xFA57 + static_cast<unsigned>(round) * 977);
    PathSolver plain(eb);  // SolverOptions::none() by default
    PathSolver accel(eb);
    accel.setOptions(SolverOptions::all());
    accel.attachCache(&qc, &hasher);
    accel.attachCexCache(&cex);

    std::vector<ExprRef> constraints;
    bool path_dead = false;
    for (int step = 0; step < 10 && !path_dead; ++step) {
      const ExprRef e = randomBool(eb, rng, width, 2);
      if (rng() % 3 == 0) {
        if (e->isConstant()) continue;  // engines stop on constant-false
        // Only conjoin satisfiable extensions, like the engine does
        // after a Sat branch check.
        std::vector<ExprRef> next = constraints;
        next.push_back(e);
        if (!bruteSat(next, nullptr, x->variableId(), y->variableId(),
                      z->variableId())) {
          path_dead = true;
          continue;
        }
        ASSERT_TRUE(plain.addConstraint(e));
        ASSERT_TRUE(accel.addConstraint(e));
        constraints = std::move(next);
      } else {
        const bool expected = bruteSat(constraints, e, x->variableId(),
                                       y->variableId(), z->variableId());
        const CheckResult want =
            expected ? CheckResult::Sat : CheckResult::Unsat;
        EXPECT_EQ(plain.check(e), want) << "round " << round << " step " << step;
        EXPECT_EQ(accel.check(e), want) << "round " << round << " step " << step;
      }
    }
    if (path_dead) continue;
    EXPECT_EQ(plain.checkPath(), CheckResult::Sat) << "round " << round;
    EXPECT_EQ(accel.checkPath(), CheckResult::Sat) << "round " << round;

    // model() purity: identical bytes no matter which layers ran or what
    // the caches contain.
    const auto mp = plain.model();
    const auto ma = accel.model();
    ASSERT_TRUE(mp.has_value());
    ASSERT_TRUE(ma.has_value());
    EXPECT_EQ(mp->values(), ma->values()) << "round " << round;
  }
  // The shared stores must have seen real traffic for this to have
  // tested anything.
  EXPECT_GT(cex.stats().models + cex.stats().cores, 0u);
}

TEST(SolverOpt, SlicingSolvesOnlyTheConnectedComponent) {
  ExprBuilder eb;
  PathSolver ps(eb);
  ps.setOptions(SolverOptions::all());
  const ExprRef x = eb.variable("x", 8);
  const ExprRef y = eb.variable("y", 8);
  ASSERT_TRUE(ps.addConstraint(eb.ult(x, eb.constant(10, 8))));
  ASSERT_TRUE(ps.addConstraint(eb.ult(y, eb.constant(5, 8))));

  // The assumption touches only x; y's conjunct is a separate component
  // (and y=0 — the value unsolved variables default to — satisfies it,
  // so the sliced model extends to a whole-set witness).
  EXPECT_EQ(ps.check(eb.eqConst(x, 3)), CheckResult::Sat);
  EXPECT_GE(ps.stats().sliced_solves, 1u);
  EXPECT_EQ(ps.check(eb.eqConst(x, 12)), CheckResult::Unsat);
  EXPECT_EQ(ps.checkPath(), CheckResult::Sat);
}

TEST(SolverOpt, BudgetedChecksBypassAccelerationLayers) {
  // A nonzero conflict budget must reach the real solver: Unknown is
  // budget-dependent, so no cache layer may answer (or record) it.
  ExprBuilder eb;
  QueryCache qc;
  CanonicalHasher hasher;
  PathSolver ps(eb);
  ps.setOptions(SolverOptions::all());
  ps.attachCache(&qc, &hasher);
  const ExprRef x = eb.variable("x", 8);
  ASSERT_TRUE(ps.addConstraint(eb.ult(x, eb.constant(200, 8))));
  EXPECT_EQ(ps.check(eb.eqConst(x, 7), 1'000'000), CheckResult::Sat);
  const QueryStats& s = ps.stats();
  EXPECT_EQ(s.cex_model_hits + s.cex_core_hits + s.rewrite_decided, 0u);
  EXPECT_GE(s.sat_solves, 1u);
}

// --- Shared caches under concurrency --------------------------------------------

TEST(SolverOpt, SharedCachesAcrossThreadsKeepVerdicts) {
  // Four workers, each with a private builder and hasher (the canonical
  // hash is name-based, so entries transfer across builders), sharing
  // one QueryCache and one CexCache — the parallel engine's exact
  // sharing shape. Workloads overlap heavily so cross-thread hits are
  // real; every verdict must match the single-threaded plain reference.
  const unsigned width = 4;
  const int kThreads = 4;
  const int kRounds = 12;
  const int kSteps = 8;

  // Reference pass: plain solver, fresh per round.
  std::vector<std::vector<CheckResult>> expected(kRounds);
  {
    ExprBuilder eb;
    const ExprRef x = eb.variable("x", width);
    const ExprRef y = eb.variable("y", width);
    const ExprRef z = eb.variable("z", width);
    (void)x;
    (void)y;
    (void)z;
    for (int round = 0; round < kRounds; ++round) {
      std::mt19937_64 rng(0xC0DE + static_cast<unsigned>(round) * 31);
      PathSolver ps(eb);
      for (int step = 0; step < kSteps; ++step) {
        const ExprRef e = randomBool(eb, rng, width, 2);
        if (e->isConstant()) continue;
        if (step % 3 == 0) {
          if (ps.check(e) == CheckResult::Sat) ps.addConstraint(e);
        } else {
          expected[static_cast<std::size_t>(round)].push_back(ps.check(e));
        }
      }
    }
  }

  QueryCache shared_qc;
  CexCache shared_cex;
  std::vector<char> ok(static_cast<std::size_t>(kThreads), 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExprBuilder eb;
      CanonicalHasher hasher;
      const ExprRef x = eb.variable("x", width);
      const ExprRef y = eb.variable("y", width);
      const ExprRef z = eb.variable("z", width);
      (void)x;
      (void)y;
      (void)z;
      for (int round = 0; round < kRounds; ++round) {
        // Same seeds in every thread: maximal cache-key overlap.
        std::mt19937_64 rng(0xC0DE + static_cast<unsigned>(round) * 31);
        PathSolver ps(eb);
        ps.setOptions(SolverOptions::all());
        ps.attachCache(&shared_qc, &hasher);
        ps.attachCexCache(&shared_cex);
        std::size_t qi = 0;
        for (int step = 0; step < kSteps; ++step) {
          const ExprRef e = randomBool(eb, rng, width, 2);
          if (e->isConstant()) continue;
          if (step % 3 == 0) {
            if (ps.check(e) == CheckResult::Sat) ps.addConstraint(e);
          } else {
            const CheckResult got = ps.check(e);
            if (got != expected[static_cast<std::size_t>(round)][qi])
              ok[static_cast<std::size_t>(t)] = 0;
            ++qi;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_TRUE(ok[static_cast<std::size_t>(t)]) << "thread " << t;
}

// --- Engine-level parity --------------------------------------------------------

TEST(SolverOpt, EngineReportIdenticalAcrossLayerConfigs) {
  // The layers must never change what the engine explores or reports:
  // path counts, per-path decision strings and test-vector bytes are
  // byte-identical between --solver-opt=none and the full stack.
  const auto program = [](symex::ExecState& st) {
    auto& b = st.builder();
    auto v = st.makeSymbolic("v", 8);
    auto w = st.makeSymbolic("w", 8);
    st.assume(b.ult(v, b.constant(200, 8)));
    if (st.branch(b.eqConst(v, 0x42))) {
      if (st.branch(b.ult(w, b.constant(3, 8)))) st.fail("low w");
    } else if (st.branch(b.bit(v, 0))) {
      st.assume(b.eq(w, v));
    }
  };

  const auto runWith = [&](const char* spec) {
    ExprBuilder eb;
    symex::EngineOptions opts;
    opts.stop_on_error = false;
    SolverOptions sopt;
    EXPECT_TRUE(parseSolverOpt(spec, &sopt));
    opts.solver_opt = sopt;
    symex::Engine engine(eb, opts);
    return engine.run(program);
  };

  const symex::EngineReport base = runWith("none");
  EXPECT_GT(base.completed_paths, 0u);
  EXPECT_EQ(base.error_paths, 1u);
  for (const char* spec : {"cex", "cex,cores", "rewrite", "slice", "all"}) {
    const symex::EngineReport r = runWith(spec);
    EXPECT_EQ(r.completed_paths, base.completed_paths) << spec;
    EXPECT_EQ(r.error_paths, base.error_paths) << spec;
    EXPECT_EQ(r.infeasible_paths, base.infeasible_paths) << spec;
    EXPECT_EQ(r.solver_checks, base.solver_checks) << spec;
    ASSERT_EQ(r.paths.size(), base.paths.size()) << spec;
    for (std::size_t i = 0; i < r.paths.size(); ++i) {
      EXPECT_EQ(r.paths[i].decisions, base.paths[i].decisions) << spec;
      EXPECT_EQ(r.paths[i].has_test, base.paths[i].has_test) << spec;
      ASSERT_EQ(r.paths[i].test.values.size(), base.paths[i].test.values.size())
          << spec;
      for (std::size_t j = 0; j < r.paths[i].test.values.size(); ++j) {
        EXPECT_EQ(r.paths[i].test.values[j].name,
                  base.paths[i].test.values[j].name)
            << spec;
        EXPECT_EQ(r.paths[i].test.values[j].value,
                  base.paths[i].test.values[j].value)
            << spec;
      }
    }
  }
}

}  // namespace
}  // namespace rvsym::solver
