// Tests for the observability subsystem: the shared JSON serializer,
// the thread-safe metrics registry, histogram bucketing, the JSONL
// trace sinks, and the engine-level trace determinism contract
// (jobs=1 and jobs=4 produce identical traces once the documented
// wall-clock/query-cache fields are stripped).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "expr/builder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"
#include "symex/parallel.hpp"
#include "symex/state.hpp"

namespace rvsym::obs {
namespace {

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape(std::string("a\nb\tc\x01")), "a\\nb\\tc\\u0001");
}

TEST(JsonWriter, NestedStructure) {
  JsonWriter w;
  w.beginObject();
  w.field("name", "he said \"hi\"");
  w.field("n", std::uint64_t{42});
  w.field("neg", std::int64_t{-7});
  w.field("flag", true);
  w.key("arr").beginArray();
  w.value(1u);
  w.value("two");
  w.nullValue();
  w.endArray();
  w.key("nested").rawValue("{\"x\":1}");
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"he said \\\"hi\\\"\",\"n\":42,\"neg\":-7,"
            "\"flag\":true,\"arr\":[1,\"two\",null],\"nested\":{\"x\":1}}");
}

TEST(JsonWriter, NonFiniteDoublesDegradeToNull) {
  JsonWriter w;
  w.beginArray();
  w.value(1.5);
  w.value(std::nan(""));
  w.value(HUGE_VAL);
  w.value(-HUGE_VAL);
  w.endArray();
  EXPECT_EQ(w.str(), "[1.5,null,null,null]");
}

TEST(JsonWriter, Utf8PassesThroughUnmangled) {
  // Multi-byte UTF-8 is legal inside JSON strings and must survive
  // byte-for-byte: escaping applies to ", \ and control characters only.
  const std::string utf8 = "caf\xC3\xA9 \xE2\x86\x92 \xF0\x9F\x98\x80";
  EXPECT_EQ(jsonEscape(utf8), utf8);
  JsonWriter w;
  w.beginObject();
  w.field("s", utf8);
  w.endObject();
  EXPECT_EQ(w.str(), "{\"s\":\"" + utf8 + "\"}");
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // All of 0x00-0x1F must render as an escape; the named short forms
  // for the common ones, \u00XX for the rest.
  EXPECT_EQ(jsonEscape(std::string("\x00", 1)), "\\u0000");
  EXPECT_EQ(jsonEscape("\b"), "\\b");
  EXPECT_EQ(jsonEscape("\f"), "\\f");
  EXPECT_EQ(jsonEscape("\r"), "\\r");
  EXPECT_EQ(jsonEscape("\x1F"), "\\u001f");
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = jsonEscape(std::string(1, static_cast<char>(c)));
    EXPECT_GE(escaped.size(), 2u) << "control char " << c << " not escaped";
    EXPECT_EQ(escaped[0], '\\');
  }
  // DEL (0x7F) and high bytes are not control characters in JSON terms.
  EXPECT_EQ(jsonEscape("\x7F"), "\x7F");
}

// --- Histogram ------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket i covers [2^i, 2^(i+1)); bucket 0 also takes 0.
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 0u);
  EXPECT_EQ(Histogram::bucketFor(2), 1u);
  EXPECT_EQ(Histogram::bucketFor(3), 1u);
  EXPECT_EQ(Histogram::bucketFor(4), 2u);
  EXPECT_EQ(Histogram::bucketFor(1023), 9u);
  EXPECT_EQ(Histogram::bucketFor(1024), 10u);
  // Everything at or above 2^24 us lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucketFor(1ull << 24), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucketFor(~0ull), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0ull);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 2ull);
  EXPECT_EQ(Histogram::bucketLowerBound(10), 1024ull);
}

TEST(Histogram, RecordAggregates) {
  Histogram h;
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(1 << 20);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sumMicros(), 0u + 3 + 3 + (1 << 20));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(20), 1u);
  h.recordSeconds(0.000002);  // 2us -> bucket 1
  EXPECT_EQ(h.bucket(1), 3u);
}

TEST(Gauge, TracksMax) {
  Gauge g;
  g.set(5);
  g.sampleMax(5);
  g.set(2);
  g.sampleMax(2);
  EXPECT_EQ(g.get(), 2);
  EXPECT_EQ(g.max(), 5);
}

TEST(ScopedTimer, NullHistogramIsNoop) {
  ScopedTimer t(nullptr);  // must not crash or read the clock
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, StableHandles) {
  MetricsRegistry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&r.counter("y"), &a);
}

TEST(MetricsRegistry, ConcurrentRecording) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      // Same names from every thread: exercises both the registry map
      // (mutex) and the instruments (lock-free atomics).
      Counter& c = r.counter("shared.counter");
      Histogram& h = r.histogram("shared.hist");
      Gauge& g = r.gauge("shared.gauge");
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i % 7));
        g.sampleMax(t * kIters + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.counter("shared.counter").get(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(r.histogram("shared.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(r.gauge("shared.gauge").max(),
            static_cast<std::int64_t>(kThreads) * kIters - 1);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  MetricsRegistry r;
  r.counter("c.one").add(3);
  r.gauge("g.depth").set(4);
  r.gauge("g.depth").sampleMax(9);
  r.histogram("h.lat").record(5);
  const std::string json = r.toJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.depth\":{\"value\":4,\"max\":9}"),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"h.lat\":{\"count\":1,\"sum_us\":5"),
            std::string::npos) << json;
  // Zero buckets are elided: exactly one bucket entry for the sample.
  EXPECT_NE(json.find("\"buckets\":[{\"ge_us\":4,\"n\":1}]"),
            std::string::npos) << json;
}

// --- Trace events and sinks -----------------------------------------------

TEST(Trace, EventRendersJsonl) {
  TraceEvent ev("path_end");
  ev.num("path", std::uint64_t{7})
      .str("end", "error")
      .boolean("has_test", true)
      .str("msg", "quote \" and newline\n");
  EXPECT_EQ(ev.toJsonl(),
            "{\"ev\":\"path_end\",\"path\":7,\"end\":\"error\","
            "\"has_test\":true,\"msg\":\"quote \\\" and newline\\n\"}");
}

TEST(Trace, BufferSinkCollectsLines) {
  BufferTraceSink sink;
  sink.emit(TraceEvent("a").num("x", std::uint64_t{1}));
  sink.emit(TraceEvent("b").str("y", "z"));
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0], "{\"ev\":\"a\",\"x\":1}");
  EXPECT_EQ(sink.joined(), "{\"ev\":\"a\",\"x\":1}\n{\"ev\":\"b\",\"y\":\"z\"}\n");
}

TEST(Trace, JsonlSinkRoundTripsThroughFile) {
  const std::string path = testing::TempDir() + "/obs_trace_test.jsonl";
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.emit(TraceEvent("run_start").num("jobs", std::uint64_t{1}));
    sink.emit(TraceEvent("run_end").num("paths", std::uint64_t{3}));
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string l1, l2;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_EQ(l1, "{\"ev\":\"run_start\",\"jobs\":1}");
  EXPECT_EQ(l2, "{\"ev\":\"run_end\",\"paths\":3}");
  std::remove(path.c_str());
}

#ifndef RVSYM_OBS_NO_TRACING
TEST(Trace, MacroSkipsEventConstructionOnNullSink) {
  int evaluations = 0;
  const auto make = [&evaluations] {
    ++evaluations;
    return TraceEvent("x");
  };
  TraceSink* null_sink = nullptr;
  RVSYM_TRACE(null_sink, make());
  EXPECT_EQ(evaluations, 0);
  BufferTraceSink buf;
  RVSYM_TRACE(&buf, make());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(buf.lines().size(), 1u);
}
#endif

// --- Engine trace determinism ---------------------------------------------

// A branching program with completed, error and infeasible endings (the
// same shape the parallel-engine parity tests use), including a message
// that needs JSON escaping.
void traceProgram(symex::ExecState& st) {
  expr::ExprBuilder& eb = st.builder();
  const expr::ExprRef x = st.makeSymbolic("x", 8);
  st.assume(eb.notOp(eb.eqConst(x, 0xFF)));
  unsigned v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    st.countInstruction();
    if (st.branch(eb.bit(x, i))) v |= 1u << i;
  }
  if (v == 0b0101) st.fail("bad \"pattern\" 0101");
  if (v >= 12) {
    const expr::ExprRef y = st.makeSymbolic("y", 8);
    st.countInstruction(2);
    if (st.branch(eb.ult(y, eb.constant(16, 8))))
      st.assume(eb.bit(y, 7));  // contradicts y < 16 -> Infeasible
  }
}

#ifndef RVSYM_OBS_NO_TRACING
std::string runTraced(unsigned jobs) {
  BufferTraceSink sink;
  symex::ParallelEngineOptions opts;
  opts.jobs = jobs;
  opts.stop_on_error = false;
  opts.trace = &sink;
  symex::ParallelEngine engine(opts);
  engine.run([](symex::WorkerContext&) { return traceProgram; });
  return sink.joined();
}

/// Strips the documented timing-dependent fields: "t_*" (wall clock),
/// "qc_*" (query-cache traffic) and the run_start jobs count — the only
/// parts of a trace allowed to differ across worker counts.
std::string stripTimingFields(const std::string& trace) {
  static const std::regex timing(
      R"re(,"(t_|qc_)[A-Za-z0-9_]*":[0-9.eE+-]+|,"jobs":[0-9]+)re");
  return std::regex_replace(trace, timing, "");
}

TEST(TraceDeterminism, RepeatedRunsAreByteIdentical) {
  const std::string a = stripTimingFields(runTraced(1));
  const std::string b = stripTimingFields(runTraced(1));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"ev\":\"run_start\""), std::string::npos);
  EXPECT_NE(a.find("\"ev\":\"fork\""), std::string::npos);
  EXPECT_NE(a.find("bad \\\"pattern\\\" 0101"), std::string::npos);
}

TEST(TraceDeterminism, Jobs1AndJobs4Match) {
  const std::string seq = stripTimingFields(runTraced(1));
  const std::string par = stripTimingFields(runTraced(4));
  EXPECT_EQ(seq, par);
}

TEST(TraceDeterminism, ForkTreeReconstructs) {
  // Every fork line must name an already-scheduled parent, and every
  // scheduled path id must have been introduced by a fork (or be the
  // root 0) — the invariants a post-mortem tree builder relies on.
  const std::string trace = runTraced(4);
  std::istringstream in(trace);
  std::string line;
  std::set<std::uint64_t> known{0};
  const std::regex fork_re(R"re("ev":"fork","path":(\d+),"parent":(\d+))re");
  const std::regex sched_re(R"re("ev":"schedule","path":(\d+))re");
  std::smatch m;
  while (std::getline(in, line)) {
    if (std::regex_search(line, m, fork_re)) {
      EXPECT_TRUE(known.count(std::stoull(m[2]))) << line;
      EXPECT_TRUE(known.insert(std::stoull(m[1])).second) << line;
    } else if (std::regex_search(line, m, sched_re)) {
      EXPECT_TRUE(known.count(std::stoull(m[1]))) << line;
    }
  }
  EXPECT_GT(known.size(), 1u);
}
#endif  // RVSYM_OBS_NO_TRACING

TEST(EngineMetrics, RegistrySeesSolverAndCommitActivity) {
  MetricsRegistry registry;
  symex::ParallelEngineOptions opts;
  opts.jobs = 2;
  opts.stop_on_error = false;
  opts.metrics = &registry;
  symex::ParallelEngine engine(opts);
  const symex::EngineReport report =
      engine.run([](symex::WorkerContext&) { return traceProgram; });

  EXPECT_EQ(registry.counter("engine.paths_committed").get(),
            report.totalPaths() - report.unexplored_forks);
  EXPECT_GT(registry.histogram("solver.check_us").count(), 0u);
  EXPECT_GE(registry.gauge("engine.worklist_depth").max(), 1);
  // The qcache satellite: registry counters mirror the report's cache
  // traffic (both are timing-dependent totals, but they must agree with
  // each other within one run).
  EXPECT_EQ(registry.counter("qcache.hits").get(), report.qcache_hits);
  EXPECT_EQ(registry.counter("qcache.misses").get(), report.qcache_misses);
}

TEST(EngineReportJson, SharedSerializerShape) {
  symex::EngineReport report;
  report.completed_paths = 3;
  report.error_paths = 1;
  report.seconds = 0.25;
  report.qcache_hits = 7;
  const std::string json = symex::reportToJson(report);
  EXPECT_NE(json.find("\"completed_paths\":3"), std::string::npos);
  EXPECT_NE(json.find("\"error_paths\":1"), std::string::npos);
  // Timing-dependent fields live in their own sub-object.
  EXPECT_NE(json.find("\"timing\":{\"seconds\":0.25,\"qcache_hits\":7,"
                      "\"qcache_misses\":0}"),
            std::string::npos) << json;
}

// --- Histogram quantile edge cases ----------------------------------------

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantileMicros(0.5), 0u);
  EXPECT_EQ(h.quantileMicros(0.99), 0u);
  EXPECT_EQ(h.quantileLowerBound(0.5), 0u);
}

TEST(HistogramQuantile, SingleSampleIsExact) {
  // One sample puts everything in one bucket, so the mean (= the
  // sample) is returned — not the bucket's power-of-2 lower bound.
  Histogram h;
  h.record(100);
  EXPECT_EQ(h.quantileMicros(0.0), 100u);
  EXPECT_EQ(h.quantileMicros(0.5), 100u);
  EXPECT_EQ(h.quantileMicros(1.0), 100u);
}

TEST(HistogramQuantile, AllSamplesInOneBucketUseMean) {
  // 70/80/90 all land in bucket [64, 128); every quantile is the mean.
  Histogram h;
  h.record(70);
  h.record(80);
  h.record(90);
  EXPECT_EQ(h.quantileMicros(0.5), 80u);
  EXPECT_EQ(h.quantileMicros(0.99), 80u);
}

TEST(HistogramQuantile, InterpolatesWithinSpanningBuckets) {
  // One sample in bucket [0,2), one in [512,1024): the midpoint
  // convention places a bucket's only sample at its center.
  Histogram h;
  h.record(1);
  h.record(1000);
  EXPECT_EQ(h.quantileMicros(0.5), 1u);    // rank 1: 0 + 0.5 * 2
  EXPECT_EQ(h.quantileMicros(0.99), 768u); // rank 2: 512 + 0.5 * 512
  // q clamps to [first, last] sample rank.
  EXPECT_EQ(h.quantileMicros(0.0), h.quantileMicros(0.5));
  EXPECT_EQ(h.quantileMicros(1.0), h.quantileMicros(0.99));
}

TEST(HistogramQuantile, OverflowBucketDegradesToLowerBound) {
  // The open-ended overflow bucket has no upper bound to interpolate
  // toward; quantiles landing there pin to its lower bound.
  Histogram h;
  h.record(1);
  h.record((1ull << 24) + 5);
  h.record((1ull << 25) + 5);
  EXPECT_EQ(h.quantileMicros(0.99), 1ull << 24);
}

TEST(MetricsRegistry, SummaryJsonShape) {
  MetricsRegistry r;
  r.counter("c.one").add(3);
  r.gauge("g.depth").sampleMax(9);
  r.histogram("h.lat").record(100);
  r.histogram("h.empty");  // count == 0: percentile fields elided
  const std::string json = r.toSummaryJson();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":3}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h.lat\":{\"count\":1,\"sum_us\":100,\"p50_us\":100,"
                      "\"p90_us\":100,\"p99_us\":100}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h.empty\":{\"count\":0,\"sum_us\":0}"),
            std::string::npos)
      << json;
}

// --- Live telemetry concurrency (race-checked via the obs_tsan entry) -----

TEST(TimeseriesSampler, SamplesConcurrentlyWithRegistryWriters) {
  const std::string stream = ::testing::TempDir() + "obs_ts_stream.jsonl";
  const std::string status = ::testing::TempDir() + "obs_ts_status.json";
  std::remove(stream.c_str());
  std::remove(status.c_str());

  MetricsRegistry r;
  TimeseriesOptions opts;
  opts.out_path = stream;
  opts.status_path = status;
  opts.interval_s = 0.002;
  opts.kind = "verify";
  opts.total_work = 1000;
  TimeseriesSampler sampler(opts, r);
  std::string err;
#ifdef RVSYM_OBS_NO_TRACING
  // The compile-out contract: start() refuses and names the cause.
  EXPECT_FALSE(sampler.start(&err));
  EXPECT_NE(err.find("tracing compiled out"), std::string::npos) << err;
  return;
#endif
  ASSERT_TRUE(sampler.start(&err)) << err;

  // Writers hammer the exact instruments the sampler snapshots while it
  // runs flat out — the race surface the TSan aggregate entry checks.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&r] {
      for (int i = 0; i < 5000; ++i) {
        r.counter("engine.paths_committed").add();
        r.histogram("solver.check_us").record(
            static_cast<std::uint64_t>(i % 200));
        r.gauge("engine.worklist_depth").sampleMax(i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  while (sampler.samples() < 2) std::this_thread::yield();
  sampler.stop();
  EXPECT_GE(sampler.samples(), 2u);

  std::ifstream in(stream);
  ASSERT_TRUE(in.good());
  std::string line, last;
  std::getline(in, line);
  EXPECT_NE(line.find("\"ev\":\"ts_header\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"schema\":\"rvsym-timeseries-v1\""),
            std::string::npos);
  while (std::getline(in, line))
    if (!line.empty()) last = line;
  EXPECT_NE(last.find("\"ev\":\"ts_final\""), std::string::npos) << last;
  // The final counter totals are deterministic (commit-order counters),
  // so they sit in the parity-diffed section, by exact value.
  EXPECT_NE(last.find("\"done\":20000"), std::string::npos) << last;

  std::ifstream st(status);
  ASSERT_TRUE(st.good());
  std::string status_text((std::istreambuf_iterator<char>(st)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(status_text.find("\"ev\":\"status\""), std::string::npos);
  std::remove(stream.c_str());
  std::remove(status.c_str());
}

TEST(SpanCollector, ConcurrentProducersGetDistinctTracks) {
  SpanCollector spans;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&spans] {
      for (int i = 0; i < kSpansPerThread; ++i)
        spans.addEnding("work", "phase", 5,
                        {{"i", std::to_string(i)}});
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(spans.dropped(), 0u);

  std::set<std::uint32_t> tracks;
  std::uint64_t last_ts = 0;
  std::uint32_t last_tid = ~0u;
  for (const Span& s : spans.sorted()) {
    tracks.insert(s.tid);
    if (s.tid == last_tid) EXPECT_GE(s.ts_us, last_ts);
    last_tid = s.tid;
    last_ts = s.ts_us;
  }
  EXPECT_EQ(tracks.size(), static_cast<std::size_t>(kThreads));
}

TEST(SpanCollector, DropsPastCapInsteadOfGrowing) {
  SpanCollector spans(/*max_spans=*/10);
  for (int i = 0; i < 25; ++i) spans.addEnding("s", "solver", 1);
  EXPECT_EQ(spans.size(), 10u);
  EXPECT_EQ(spans.dropped(), 15u);
  const std::string doc = spans.toChromeTrace();
  EXPECT_NE(doc.find("\"dropped_spans\":15"), std::string::npos) << doc;
}

}  // namespace
}  // namespace rvsym::obs
