// Fleet observability plane tests (DESIGN.md §14): histogram bucket
// merge vs pooled-sample quantiles, registry snapshot round-trips, the
// FleetAggregator merge semantics, Prometheus exposition edge cases
// (label escaping, +Inf/_sum/_count consistency, byte-stable repeat
// renders), the runs.rvhx history store with its two-case tail repair,
// baseline-driven regression flagging, and the cross-process Chrome-
// trace merge (pid remapping, epoch-aligned timestamps, preserved span
// containment).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/exposition.hpp"
#include "obs/fleet/history.hpp"
#include "obs/fleet/trace_merge.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace fs = std::filesystem;
using namespace rvsym::obs;
using namespace rvsym::obs::fleet;

namespace {

std::string makeTempDir() {
  char tmpl[] = "/tmp/rvsym_fleet_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

struct TempDir {
  std::string path = makeTempDir();
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out << text;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// --- Histogram merge ----------------------------------------------------------------------

// The satellite acceptance check: two histograms filled from disjoint
// sample sets, merged bucket-wise, must report the same quantiles as
// one histogram that saw the pooled samples — to the bucket (the merge
// is exact at bucket resolution, so equality is exact, not "within").
TEST(HistogramMerge, MergedQuantilesMatchPooledSamples) {
  Histogram a, b, pooled;
  std::mt19937 rng(7);
  // Two deliberately different shapes: a is fast (1-64us), b is a
  // heavy tail (1ms-1s), so neither alone predicts the pooled mix.
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t us = 1 + rng() % 64;
    a.record(us);
    pooled.record(us);
  }
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t us = 1000 + rng() % 1000000;
    b.record(us);
    pooled.record(us);
  }
  Histogram merged;
  merged.merge(a);
  merged.merge(b);

  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.sumMicros(), pooled.sumMicros());
  for (unsigned i = 0; i < Histogram::kBuckets; ++i)
    EXPECT_EQ(merged.bucket(i), pooled.bucket(i)) << "bucket " << i;
  for (const double q : {0.5, 0.9, 0.99})
    EXPECT_EQ(merged.quantileMicros(q), pooled.quantileMicros(q)) << q;
}

TEST(HistogramMerge, AddRawClampsOverflowBucket) {
  Histogram h;
  h.addRaw(Histogram::kBuckets + 5, 3, 300);  // clamps into the last bucket
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sumMicros(), 300u);
}

// --- Snapshot round-trip ------------------------------------------------------------------

TEST(RegistrySnapshot, RoundTripsThroughToJson) {
  MetricsRegistry reg;
  reg.counter("solver.queries").add(42);
  reg.gauge("engine.worklist").set(17);
  reg.gauge("engine.worklist").sampleMax(17);
  reg.gauge("engine.worklist").set(5);  // sampled max stays 17
  reg.histogram("solver.check_us").record(3);
  reg.histogram("solver.check_us").record(900);

  const RegistrySnapshot snap = RegistrySnapshot::of(reg);
  ASSERT_EQ(snap.counters.count("solver.queries"), 1u);
  EXPECT_EQ(snap.counters.at("solver.queries"), 42u);
  ASSERT_EQ(snap.gauges.count("engine.worklist"), 1u);
  EXPECT_EQ(snap.gauges.at("engine.worklist").value, 5);
  EXPECT_EQ(snap.gauges.at("engine.worklist").max, 17);
  ASSERT_EQ(snap.histograms.count("solver.check_us"), 1u);
  const HistogramSnapshot& h = snap.histograms.at("solver.check_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum_us, 903u);
  // Bucket placement survives the ge_us wire encoding.
  const auto live = toHistogram(h);
  EXPECT_EQ(live->count(), 2u);
  EXPECT_EQ(live->sumMicros(), 903u);
  EXPECT_EQ(live->bucket(Histogram::bucketFor(3)), 1u);
  EXPECT_EQ(live->bucket(Histogram::bucketFor(900)), 1u);
}

TEST(RegistrySnapshot, RejectsNonObjectAndSkipsMalformed) {
  EXPECT_FALSE(RegistrySnapshot::fromJsonText("[1,2]").has_value());
  EXPECT_FALSE(RegistrySnapshot::fromJsonText("not json").has_value());
  const auto snap = RegistrySnapshot::fromJsonText(
      R"({"counters":{"ok":1,"bad":"x"},"gauges":{"g":{"value":2}}})");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->counters.count("ok"), 1u);
  EXPECT_EQ(snap->counters.count("bad"), 0u);
  EXPECT_EQ(snap->gauges.at("g").value, 2);
}

// --- Aggregator ---------------------------------------------------------------------------

TEST(FleetAggregator, CountersSumGaugesLastWriteHistogramsMerge) {
  MetricsRegistry w0, w1;
  w0.counter("serve.units").add(3);
  w1.counter("serve.units").add(5);
  w0.gauge("engine.worklist").set(10);
  w0.gauge("engine.worklist").sampleMax(10);
  w1.gauge("engine.worklist").set(7);
  w1.gauge("engine.worklist").sampleMax(7);
  w0.histogram("solver.check_us").record(2);
  w1.histogram("solver.check_us").record(2000);

  FleetAggregator agg;
  agg.update("w0", RegistrySnapshot::of(w0));
  agg.update("w1", RegistrySnapshot::of(w1));
  // A later report from the same worker replaces, never double-counts.
  w0.counter("serve.units").add(1);
  agg.update("w0", RegistrySnapshot::of(w0));

  const RegistrySnapshot m = agg.merged();
  EXPECT_EQ(m.counters.at("serve.units"), 9u);  // 4 + 5, not 3+4+5
  EXPECT_EQ(m.gauges.at("engine.worklist").value, 17);
  EXPECT_EQ(m.gauges.at("engine.worklist").max, 10);
  const HistogramSnapshot& h = m.histograms.at("solver.check_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum_us, 2002u);
  EXPECT_EQ(h.buckets[Histogram::bucketFor(2)], 1u);
  EXPECT_EQ(h.buckets[Histogram::bucketFor(2000)], 1u);
}

// --- Exposition ---------------------------------------------------------------------------

TEST(Exposition, EscapesLabelBytes) {
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabel("a\nb"), "a\\nb");

  ExpositionInput in;
  in.jobs.push_back({"j\"0\n", "mu\\tate", "done", 1, 1});
  const std::string text = renderExposition(in);
  EXPECT_NE(text.find("job=\"j\\\"0\\n\""), std::string::npos);
  EXPECT_NE(text.find("kind=\"mu\\\\tate\""), std::string::npos);
}

TEST(Exposition, MetricNameManglesToPrometheusCharset) {
  EXPECT_EQ(promMetricName("solver.check_us"), "rvsym_solver_check_us");
  EXPECT_EQ(promMetricName("a-b c"), "rvsym_a_b_c");
}

TEST(Exposition, HistogramBucketsAreCumulativeAndConsistent) {
  MetricsRegistry reg;
  reg.histogram("solver.check_us").record(1);
  reg.histogram("solver.check_us").record(3);
  reg.histogram("solver.check_us").record(1000000);

  ExpositionInput in;
  in.fleet = RegistrySnapshot::of(reg);
  const std::string text = renderExposition(in);

  // +Inf must equal _count, and the finite buckets must be monotone
  // non-decreasing up to it.
  EXPECT_NE(text.find("rvsym_solver_check_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rvsym_solver_check_us_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("rvsym_solver_check_us_sum 1000004\n"),
            std::string::npos);

  std::uint64_t prev = 0;
  std::size_t buckets_seen = 0;
  std::size_t pos = 0;
  const std::string needle = "rvsym_solver_check_us_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    if (text.compare(pos, 4, "+Inf") == 0) break;
    const std::size_t sp = text.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t cum =
        std::strtoull(text.c_str() + sp + 2, nullptr, 10);
    EXPECT_GE(cum, prev);
    prev = cum;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen, static_cast<std::size_t>(Histogram::kBuckets - 1));
  EXPECT_LE(prev, 3u);
}

TEST(Exposition, RepeatRendersAreByteIdentical) {
  MetricsRegistry w0;
  w0.counter("serve.units").add(2);
  w0.gauge("engine.worklist").set(4);
  w0.histogram("solver.check_us").record(17);

  ExpositionInput in;
  in.workers["w0"] = RegistrySnapshot::of(w0);
  FleetAggregator agg;
  agg.update("w0", in.workers["w0"]);
  in.fleet = agg.merged();
  in.jobs.push_back({"j0", "mutate", "running", 1, 2});

  EXPECT_EQ(renderExposition(in), renderExposition(in));
}

// --- Run history --------------------------------------------------------------------------

namespace {

RunRecord sampleRun(const std::string& job, std::uint64_t units,
                    double wall_s) {
  RunRecord r;
  r.job = job;
  r.kind = "mutate";
  r.scenario = "rv32i";
  r.solver_opt = "all";
  r.status = "done";
  r.units_total = units;
  r.units_done = units;
  r.verdicts["killed"] = units;
  r.solver_checks = 10 * units;
  r.wall_s = wall_s;
  r.env_json = runEnvJson();
  return r;
}

}  // namespace

TEST(RunHistory, AppendAndLoadRoundTrip) {
  TempDir dir;
  const std::string path = dir.path + "/runs.rvhx";
  {
    RunHistory store(path);
    ASSERT_TRUE(store.append(sampleRun("j0", 2, 0.25)));
    ASSERT_TRUE(store.append(sampleRun("j1", 1, 0.5)));
  }
  RunHistory store(path);
  std::vector<std::string> warnings;
  const auto runs = store.loadAll(&warnings);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].job, "j0");
  EXPECT_EQ(runs[0].units_done, 2u);
  EXPECT_EQ(runs[0].verdicts.at("killed"), 2u);
  EXPECT_DOUBLE_EQ(runs[1].wall_s, 0.5);
  EXPECT_NE(runs[1].env_json.find("\"os\""), std::string::npos);

  const std::string listing = renderHistoryList(runs);
  EXPECT_NE(listing.find("j0"), std::string::npos);
  EXPECT_NE(listing.find("j1"), std::string::npos);
  const std::string shown = renderHistoryShow(runs[0]);
  EXPECT_NE(shown.find("killed=2"), std::string::npos);
}

TEST(RunHistory, TornTailIsTruncatedThenAppendsCleanly) {
  TempDir dir;
  const std::string path = dir.path + "/runs.rvhx";
  {
    RunHistory store(path);
    ASSERT_TRUE(store.append(sampleRun("j0", 1, 0.1)));
  }
  // Simulate a daemon killed mid-append: torn unparsable tail bytes.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"schema\":\"rvsym-runs-v1\",\"job\":\"j1\",\"ki";
  }
  RunHistory store(path);
  std::vector<std::string> warnings;
  auto runs = store.loadAll(&warnings);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(warnings.empty());
  // The repair leaves a line-aligned file: the next append must parse.
  ASSERT_TRUE(store.append(sampleRun("j2", 1, 0.1)));
  runs = store.loadAll();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].job, "j2");
}

TEST(RunHistory, UnterminatedParsableTailGetsItsNewline) {
  TempDir dir;
  const std::string path = dir.path + "/runs.rvhx";
  writeFile(path, sampleRun("j0", 1, 0.1).toJsonLine());  // no newline
  RunHistory store(path);
  std::vector<std::string> warnings;
  auto runs = store.loadAll(&warnings);
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_TRUE(store.append(sampleRun("j1", 1, 0.1)));
  runs = store.loadAll();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].job, "j1");
}

TEST(RunHistory, MissingFileIsEmpty) {
  TempDir dir;
  RunHistory store(dir.path + "/nope.rvhx");
  EXPECT_TRUE(store.loadAll().empty());
}

// --- Regression flagging ------------------------------------------------------------------

namespace {

std::string benchBaseline(double wall_median_us, int hunts) {
  std::string doc =
      "{\"schema\":\"rvsym-bench-run-v1\",\"benches\":[{\"name\":\"table2\","
      "\"wall_median_us\":" + std::to_string(wall_median_us) +
      ",\"report\":{\"payload\":{\"hunts\":[";
  for (int i = 0; i < hunts; ++i) {
    if (i) doc += ",";
    doc += "{\"mutant\":\"m" + std::to_string(i) + "\"}";
  }
  doc += "]}}}]}";
  return doc;
}

}  // namespace

TEST(Regress, GenerousBudgetFlagsNothingTightBudgetFlagsAll) {
  TempDir dir;
  const std::vector<RunRecord> runs = {sampleRun("j0", 2, 0.002),
                                       sampleRun("j1", 1, 0.005)};
  // Generous: 1s median over 10 hunts = 100ms/unit budget.
  writeFile(dir.path + "/ok.json", benchBaseline(1e6, 10));
  std::string err;
  auto findings = flagRegressions(runs, dir.path + "/ok.json", {}, &err);
  ASSERT_TRUE(findings.has_value()) << err;
  EXPECT_TRUE(findings->empty());

  // Tight: 10us median over 10 hunts = 1us/unit budget; both runs blow it.
  writeFile(dir.path + "/tight.json", benchBaseline(10, 10));
  findings = flagRegressions(runs, dir.path + "/tight.json", {}, &err);
  ASSERT_TRUE(findings.has_value()) << err;
  ASSERT_EQ(findings->size(), 2u);
  EXPECT_EQ((*findings)[0].job, "j0");
  EXPECT_GT((*findings)[0].us_per_unit, (*findings)[0].budget_us);
}

TEST(Regress, UnusableBaselineIsAnError) {
  TempDir dir;
  std::string err;
  EXPECT_FALSE(
      flagRegressions({}, dir.path + "/missing.json", {}, &err).has_value());
  writeFile(dir.path + "/bad.json", "{\"schema\":\"other\"}");
  EXPECT_FALSE(
      flagRegressions({}, dir.path + "/bad.json", {}, &err).has_value());
  EXPECT_NE(err.find("rvsym-bench-run-v1"), std::string::npos);
  writeFile(dir.path + "/nohunts.json",
            "{\"schema\":\"rvsym-bench-run-v1\",\"benches\":[{\"name\":"
            "\"table2\",\"wall_median_us\":100}]}");
  EXPECT_FALSE(
      flagRegressions({}, dir.path + "/nohunts.json", {}, &err).has_value());
}

// --- Trace merge --------------------------------------------------------------------------

namespace {

/// One fake per-process chrome trace in the shape the daemon writes:
/// an epoch in otherData for cross-file alignment, pid 1 everywhere.
std::string fakeTrace(const std::string& pname, std::uint64_t epoch_us,
                      const std::vector<std::string>& events) {
  std::string doc = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) doc += ",";
    doc += events[i];
  }
  doc += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"test\","
         "\"process_name\":\"" + pname + "\",\"epoch_us\":" +
         std::to_string(epoch_us) + "}}";
  return doc;
}

std::string spanEvent(const std::string& name, std::uint64_t ts,
                      std::uint64_t dur) {
  return "{\"name\":\"" + name + "\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":" +
         std::to_string(ts) + ",\"dur\":" + std::to_string(dur) +
         ",\"pid\":1,\"tid\":0}";
}

}  // namespace

TEST(TraceMerge, RemapsPidsAndAlignsEpochs) {
  TempDir dir;
  // Daemon booted its collector at epoch 1000us, the worker at 1500us:
  // after alignment the worker's local ts 0 lands at merged ts 500.
  writeFile(dir.path + "/daemon.trace.json",
            fakeTrace("rvsym-serve daemon", 1000,
                      {spanEvent("job j0", 0, 900)}));
  writeFile(dir.path + "/worker-w0.trace.json",
            fakeTrace("worker w0", 1500,
                      {spanEvent("shard j0/0", 0, 300),
                       spanEvent("unit m1", 10, 100)}));

  const std::string out = dir.path + "/merged.trace.json";
  std::string err;
  const auto stats = mergeChromeTraceDir(dir.path, out, &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_EQ(stats->files, 2u);
  EXPECT_EQ(stats->skipped, 0u);

  const std::string merged = readFile(out);
  const auto doc = rvsym::obs::analyze::parseJson(merged);
  ASSERT_TRUE(doc.has_value());
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::uint64_t daemon_pid = 0, worker_pid = 0;
  std::uint64_t job_ts = 0, job_dur = 0, shard_ts = 0, shard_dur = 0,
                unit_ts = 0;
  for (const auto& ev : events->items()) {
    const std::string name = ev.getString("name").value_or("");
    if (name == "process_name") {
      const auto* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      const std::string pname = args->getString("name").value_or("");
      if (pname == "rvsym-serve daemon")
        daemon_pid = ev.getU64("pid").value_or(0);
      else if (pname == "worker w0")
        worker_pid = ev.getU64("pid").value_or(0);
    } else if (name == "job j0") {
      job_ts = ev.getU64("ts").value_or(0);
      job_dur = ev.getU64("dur").value_or(0);
      EXPECT_EQ(ev.getU64("pid").value_or(0), 1u);
    } else if (name == "shard j0/0") {
      shard_ts = ev.getU64("ts").value_or(0);
      shard_dur = ev.getU64("dur").value_or(0);
      EXPECT_EQ(ev.getU64("pid").value_or(0), 2u);
    } else if (name == "unit m1") {
      unit_ts = ev.getU64("ts").value_or(0);
    }
  }
  // Distinct pids per input file, daemon first (sorted by filename).
  EXPECT_EQ(daemon_pid, 1u);
  EXPECT_EQ(worker_pid, 2u);
  // Epoch alignment: worker events shifted by 1500-1000 = 500us, and
  // the cross-process containment (job wraps shard wraps unit) holds
  // on the merged timeline.
  EXPECT_EQ(job_ts, 0u);
  EXPECT_EQ(shard_ts, 500u);
  EXPECT_EQ(unit_ts, 510u);
  EXPECT_LE(job_ts, shard_ts);
  EXPECT_LE(shard_ts + shard_dur, job_ts + job_dur);

  // The merged output itself is excluded on a re-merge of the dir.
  const auto again = mergeChromeTraceDir(dir.path, out, &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->files, 2u);
}

TEST(TraceMerge, SkipsNonTraceJsonAndFailsOnEmptyDir) {
  TempDir dir;
  std::string err;
  EXPECT_FALSE(
      mergeChromeTraceDir(dir.path, dir.path + "/out.json", &err).has_value());
  writeFile(dir.path + "/junk.json", "{\"not\":\"a trace\"}");
  writeFile(dir.path + "/good.trace.json",
            fakeTrace("p", 0, {spanEvent("s", 0, 1)}));
  const auto stats =
      mergeChromeTraceDir(dir.path, dir.path + "/out.json", &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_EQ(stats->files, 1u);
  EXPECT_EQ(stats->skipped, 1u);
}
