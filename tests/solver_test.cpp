// Tests for the CDCL SAT solver, the bit-blaster and the PathSolver
// query layer. The central property: for random expressions, any model
// the solver produces must satisfy the expression under the reference
// evaluator, and brute-force satisfiability at small widths must agree
// with the solver's verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "solver/bitblast.hpp"
#include "solver/sat.hpp"
#include "solver/solver.hpp"

namespace rvsym::solver {
namespace {

using expr::Assignment;
using expr::ExprBuilder;
using expr::ExprRef;
using expr::Kind;

// --- Raw SAT ------------------------------------------------------------------

TEST(Sat, TrivialSatAndUnsat) {
  SatSolver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  EXPECT_TRUE(s.addClause(mkLit(a), mkLit(b)));
  EXPECT_EQ(s.solve(), SatSolver::Result::Sat);

  EXPECT_TRUE(s.addClause(~mkLit(a)));
  // (a|b) with a=false propagates b=true; asserting ~b is a level-0
  // conflict, which addClause reports by returning false.
  EXPECT_FALSE(s.addClause(~mkLit(b)));
  EXPECT_EQ(s.solve(), SatSolver::Result::Unsat);
  EXPECT_FALSE(s.okay());
}

TEST(Sat, UnitPropagationChain) {
  SatSolver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.newVar());
  for (int i = 0; i + 1 < 20; ++i)
    s.addClause(~mkLit(v[static_cast<size_t>(i)]),
                mkLit(v[static_cast<size_t>(i + 1)]));
  s.addClause(mkLit(v[0]));
  ASSERT_EQ(s.solve(), SatSolver::Result::Sat);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(s.modelValue(v[static_cast<size_t>(i)]), LBool::True);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: classic small UNSAT requiring real search.
  SatSolver s;
  const int P = 4, H = 3;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (int p = 0; p < P; ++p)
    for (int h = 0; h < H; ++h) x[static_cast<size_t>(p)][static_cast<size_t>(h)] = s.newVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(mkLit(x[static_cast<size_t>(p)][static_cast<size_t>(h)]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.addClause(~mkLit(x[static_cast<size_t>(p1)][static_cast<size_t>(h)]),
                    ~mkLit(x[static_cast<size_t>(p2)][static_cast<size_t>(h)]));
  EXPECT_EQ(s.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, AssumptionsDoNotPoisonSolver) {
  SatSolver s;
  const Var a = s.newVar();
  s.addClause(mkLit(a));
  EXPECT_EQ(s.solve({~mkLit(a)}), SatSolver::Result::Unsat);
  EXPECT_TRUE(s.okay());  // only the assumption failed
  EXPECT_EQ(s.solve({mkLit(a)}), SatSolver::Result::Sat);
  EXPECT_EQ(s.solve(), SatSolver::Result::Sat);
}

TEST(Sat, IncrementalAddAfterSolve) {
  SatSolver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(mkLit(a), mkLit(b));
  ASSERT_EQ(s.solve(), SatSolver::Result::Sat);
  s.addClause(~mkLit(a));
  ASSERT_EQ(s.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(s.modelValue(b), LBool::True);
  s.addClause(~mkLit(b));
  EXPECT_EQ(s.solve(), SatSolver::Result::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // Large pigeonhole with a tiny conflict budget must hit the budget.
  SatSolver s;
  const int P = 9, H = 8;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x)
    for (Var& v : row) v = s.newVar();
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(mkLit(x[static_cast<size_t>(p)][static_cast<size_t>(h)]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h)
    for (int p1 = 0; p1 < P; ++p1)
      for (int p2 = p1 + 1; p2 < P; ++p2)
        s.addClause(~mkLit(x[static_cast<size_t>(p1)][static_cast<size_t>(h)]),
                    ~mkLit(x[static_cast<size_t>(p2)][static_cast<size_t>(h)]));
  EXPECT_EQ(s.solve({}, 10), SatSolver::Result::Unknown);
}

// --- Randomized CNF: CDCL vs brute force --------------------------------------

TEST(Sat, RandomCnfAgreesWithBruteForce) {
  std::mt19937 rng(0xC0F1);
  for (int round = 0; round < 60; ++round) {
    const int num_vars = 4 + static_cast<int>(rng() % 9);   // 4..12
    const int num_clauses = num_vars * (2 + static_cast<int>(rng() % 3));
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng() % 3);
      for (int k = 0; k < len; ++k)
        clause.push_back(mkLit(static_cast<Var>(rng() % static_cast<unsigned>(num_vars)),
                               (rng() & 1) != 0));
      clauses.push_back(std::move(clause));
    }

    // Brute force.
    bool expected_sat = false;
    for (std::uint32_t m = 0; m < (1u << num_vars) && !expected_sat; ++m) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (Lit l : clause)
          if ((((m >> var(l)) & 1) != 0) != sign(l)) any = true;
        if (!any) { all = false; break; }
      }
      expected_sat = all;
    }

    // CDCL.
    SatSolver s;
    for (int v = 0; v < num_vars; ++v) s.newVar();
    bool trivially_unsat = false;
    for (const auto& clause : clauses)
      if (!s.addClause(clause)) trivially_unsat = true;
    const auto result = s.solve();
    EXPECT_EQ(result == SatSolver::Result::Sat, expected_sat)
        << "round " << round;
    if (trivially_unsat) {
      EXPECT_FALSE(expected_sat);
    }
    if (result == SatSolver::Result::Sat) {
      // The model must satisfy every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (Lit l : clause)
          if (s.modelValueBool(l)) any = true;
        EXPECT_TRUE(any) << "model violates a clause, round " << round;
      }
    }
  }
}

// --- Bit-blasting: random-expression property ------------------------------------

/// Builds a random expression over two variables, depth-bounded.
ExprRef randomExpr(ExprBuilder& eb, std::mt19937_64& rng, unsigned width,
                   int depth) {
  const ExprRef x = eb.variable("x", width);
  const ExprRef y = eb.variable("y", width);
  if (depth == 0) {
    switch (rng() % 3) {
      case 0: return x;
      case 1: return y;
      default: return eb.constant(rng(), width);
    }
  }
  const auto sub = [&] { return randomExpr(eb, rng, width, depth - 1); };
  switch (rng() % 14) {
    case 0: return eb.add(sub(), sub());
    case 1: return eb.sub(sub(), sub());
    case 2: return eb.mul(sub(), sub());
    case 3: return eb.andOp(sub(), sub());
    case 4: return eb.orOp(sub(), sub());
    case 5: return eb.xorOp(sub(), sub());
    case 6: return eb.notOp(sub());
    case 7: return eb.neg(sub());
    case 8: return eb.shl(sub(), sub());
    case 9: return eb.lshr(sub(), sub());
    case 10: return eb.ashr(sub(), sub());
    case 11: return eb.udiv(sub(), sub());
    case 12: return eb.urem(sub(), sub());
    default:
      return eb.ite(eb.eq(sub(), sub()), sub(), sub());
  }
}

class BlastProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BlastProperty, ModelsSatisfyExpressions) {
  const unsigned width = GetParam();
  for (int round = 0; round < 30; ++round) {
    ExprBuilder eb;
    std::mt19937_64 rng(0xB1A57 + static_cast<unsigned>(round) * 977 + width);
    const ExprRef e = randomExpr(eb, rng, width, 3);
    const ExprRef target = eb.constant(rng() & expr::widthMask(width), width);
    const ExprRef cond = eb.eq(e, target);

    // Brute force over both variables (widths are small).
    const ExprRef x = eb.variable("x", width);
    const ExprRef y = eb.variable("y", width);
    bool expected_sat = false;
    for (std::uint64_t a = 0; a <= expr::widthMask(width) && !expected_sat; ++a)
      for (std::uint64_t b = 0; b <= expr::widthMask(width); ++b) {
        Assignment asg;
        asg.set(x->variableId(), a);
        asg.set(y->variableId(), b);
        if (evaluate(cond, asg) == 1) {
          expected_sat = true;
          break;
        }
      }

    SatSolver sat;
    BitBlaster bb(sat, eb);
    ASSERT_TRUE(bb.assertTrue(cond) || !expected_sat);
    const auto result = sat.solve();
    if (expected_sat) {
      ASSERT_EQ(result, SatSolver::Result::Sat) << "round " << round;
      Assignment model;
      model.set(x->variableId(), bb.modelValue(x));
      model.set(y->variableId(), bb.modelValue(y));
      EXPECT_EQ(evaluate(cond, model), 1u)
          << "model does not satisfy expression, round " << round;
      EXPECT_EQ(bb.modelValue(e), target->constantValue());
    } else {
      EXPECT_EQ(result, SatSolver::Result::Unsat) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, BlastProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "w" + std::to_string(info.param);
                         });

// --- Bit-blasting: targeted 32-bit cases ------------------------------------------

struct Blast32 : ::testing::Test {
  ExprBuilder eb;
  SatSolver sat;
  BitBlaster bb{sat, eb};

  /// Checks that `cond` is satisfiable and returns x's model value.
  std::uint64_t solveFor(const ExprRef& cond, const ExprRef& x) {
    EXPECT_TRUE(bb.assertTrue(cond));
    EXPECT_EQ(sat.solve(), SatSolver::Result::Sat);
    return bb.modelValue(x);
  }
};

TEST_F(Blast32, SolvesAdditionInverse) {
  auto x = eb.variable("x", 32);
  const std::uint64_t v =
      solveFor(eb.eq(eb.add(x, eb.constant(100, 32)), eb.constant(7, 32)), x);
  EXPECT_EQ(v, (7u - 100u) & 0xFFFFFFFFu);
}

TEST_F(Blast32, SolvesMultiplicationFactor) {
  auto x = eb.variable("x", 32);
  const std::uint64_t v = solveFor(
      eb.eq(eb.mul(x, eb.constant(3, 32)), eb.constant(51, 32)), x);
  EXPECT_EQ((v * 3) & 0xFFFFFFFFu, 51u);
}

TEST_F(Blast32, SolvesShiftAmount) {
  auto x = eb.variable("x", 32);   // value
  auto s = eb.variable("s", 32);   // amount
  auto cond = eb.boolAnd(
      eb.eq(eb.shl(x, s), eb.constant(0x100, 32)),
      eb.boolAnd(eb.eq(x, eb.constant(1, 32)), eb.ult(s, eb.constant(32, 32))));
  EXPECT_TRUE(bb.assertTrue(cond));
  ASSERT_EQ(sat.solve(), SatSolver::Result::Sat);
  EXPECT_EQ(bb.modelValue(s), 8u);
}

TEST_F(Blast32, ShiftOverflowYieldsZero) {
  auto x = eb.variable("x", 32);
  // shl by >= width is 0 for every x, so asserting the negation is a
  // level-0 conflict (assertTrue reports false) and the solver is unsat.
  auto cond = eb.ne(eb.shl(x, eb.constant(32, 32)), eb.constant(0, 32));
  EXPECT_FALSE(bb.assertTrue(cond));
  EXPECT_EQ(sat.solve(), SatSolver::Result::Unsat);
}

TEST_F(Blast32, AshrFillsSign) {
  auto x = eb.variable("x", 32);
  auto cond = eb.boolAnd(
      eb.eq(eb.ashr(x, eb.constant(31, 32)), eb.constant(0xFFFFFFFFu, 32)),
      eb.ult(x, eb.constant(0x80000001u, 32)));
  const std::uint64_t v = solveFor(cond, x);
  EXPECT_EQ(v, 0x80000000u);
}

TEST_F(Blast32, DivisionRiscvConventions) {
  auto x = eb.variable("x", 32);
  // x / 0 must be all ones for every x: the negation is unsat.
  auto bad = eb.ne(eb.udiv(x, eb.constant(0, 32)), eb.constant(0xFFFFFFFFu, 32));
  EXPECT_TRUE(bb.assertTrue(eb.notOp(bad)));
  auto is_bad_possible = eb.eq(eb.udiv(x, eb.constant(0, 32)),
                               eb.constant(0xFFFFFFFFu, 32));
  EXPECT_TRUE(bb.assertTrue(is_bad_possible));
  EXPECT_EQ(sat.solve(), SatSolver::Result::Sat);
}

TEST_F(Blast32, SignedDivisionOverflowCase) {
  auto x = eb.variable("x", 32);
  auto cond = eb.eq(eb.sdiv(eb.constant(0x80000000u, 32),
                            eb.constant(0xFFFFFFFFu, 32)),
                    x);
  const std::uint64_t v = solveFor(cond, x);
  EXPECT_EQ(v, 0x80000000u);
}

TEST_F(Blast32, SignedComparisonCrossesZero) {
  auto x = eb.variable("x", 32);
  auto cond = eb.boolAnd(eb.slt(x, eb.constant(0, 32)),
                         eb.ult(eb.constant(0x7FFFFFFFu, 32), x));
  EXPECT_TRUE(bb.assertTrue(cond));
  ASSERT_EQ(sat.solve(), SatSolver::Result::Sat);
  EXPECT_GE(bb.modelValue(x), 0x80000000u);
}

// --- PathSolver -----------------------------------------------------------------

TEST(PathSolver, IncrementalNarrowing) {
  ExprBuilder eb;
  PathSolver ps(eb);
  auto x = eb.variable("x", 32);

  EXPECT_EQ(ps.check(eb.eqConst(x, 5)), CheckResult::Sat);
  ASSERT_TRUE(ps.addConstraint(eb.ult(x, eb.constant(10, 32))));
  EXPECT_EQ(ps.check(eb.eqConst(x, 5)), CheckResult::Sat);
  EXPECT_EQ(ps.check(eb.eqConst(x, 15)), CheckResult::Unsat);
  ASSERT_TRUE(ps.addConstraint(eb.ugt(x, eb.constant(8, 32))));
  EXPECT_EQ(ps.check(eb.eqConst(x, 9)), CheckResult::Sat);
  EXPECT_EQ(ps.check(eb.eqConst(x, 5)), CheckResult::Unsat);

  auto m = ps.model();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get(x->variableId()), 9u);
}

TEST(PathSolver, ModelCoversAllVariables) {
  ExprBuilder eb;
  PathSolver ps(eb);
  auto x = eb.variable("x", 32);
  auto y = eb.variable("y", 8);   // never constrained
  ASSERT_TRUE(ps.addConstraint(eb.eqConst(x, 42)));
  auto m = ps.model();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get(x->variableId()), 42u);
  EXPECT_TRUE(m->contains(y->variableId()));
}

TEST(PathSolver, ConstantFastPath) {
  ExprBuilder eb;
  PathSolver ps(eb);
  EXPECT_EQ(ps.check(eb.trueExpr()), CheckResult::Sat);
  EXPECT_EQ(ps.check(eb.falseExpr()), CheckResult::Unsat);
  EXPECT_GE(ps.stats().constant_fastpath, 2u);
}

TEST(PathSolver, UnsatPathStaysUnsat) {
  ExprBuilder eb;
  PathSolver ps(eb);
  auto x = eb.variable("x", 8);
  ASSERT_TRUE(ps.addConstraint(eb.eqConst(x, 1)));
  EXPECT_FALSE(ps.addConstraint(eb.eqConst(x, 2)) &&
               ps.checkPath() != CheckResult::Unsat);
  EXPECT_EQ(ps.check(eb.eqConst(x, 1)), CheckResult::Unsat);
  EXPECT_FALSE(ps.model().has_value());
}

TEST(PathSolver, ModelWithAssumptionDoesNotPersist) {
  ExprBuilder eb;
  PathSolver ps(eb);
  auto x = eb.variable("x", 32);
  ASSERT_TRUE(ps.addConstraint(eb.ult(x, eb.constant(100, 32))));
  auto m1 = ps.model(eb.eqConst(x, 77));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->get(x->variableId()), 77u);
  // The assumption must not have become permanent.
  EXPECT_EQ(ps.check(eb.eqConst(x, 3)), CheckResult::Sat);
}

}  // namespace
}  // namespace rvsym::solver
