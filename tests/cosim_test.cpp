// Tests for the co-simulation layer: symbolic memories, sliced
// registers, bus glue, the voter, and the central soundness property —
// a bug-free RTL/ISS pair produces NO mismatches for any instruction and
// any register/memory values, while each authentic-bug configuration is
// caught.
#include <gtest/gtest.h>

#include <random>

#include "core/classify.hpp"
#include "core/cosim.hpp"
#include "core/session.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "rv32/csr.hpp"
#include "rv32/encode.hpp"

namespace rvsym::core {
namespace {

using expr::ExprBuilder;
using expr::ExprRef;
using namespace rv32;

/// Pins the symbolic instruction stream to a fixed program: address ->
/// word, falling back to NOP for unlisted addresses. (The instruction
/// variables stay symbolic; klee_assume fixes their value, which
/// exercises the same machinery as free exploration.)
InstrConstraint pinnedProgram(std::vector<std::uint32_t> words,
                              std::uint32_t base = 0x80000000) {
  return [words = std::move(words), base](symex::ExecState& st,
                                          const ExprRef& instr) {
    // The variable name encodes its address.
    const std::string& name = instr->name();
    const auto addr = static_cast<std::uint32_t>(
        std::strtoul(name.c_str() + name.find('@') + 1, nullptr, 16));
    std::uint32_t word = enc::nop();
    if (addr >= base && (addr - base) / 4 < words.size() &&
        (addr - base) % 4 == 0)
      word = words[(addr - base) / 4];
    st.assume(st.builder().eqConst(instr, word));
  };
}

CosimConfig compatibleConfig() {
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  return cfg;
}

symex::EngineReport explore(ExprBuilder& eb, const CosimConfig& cfg,
                            symex::EngineOptions opts = {}) {
  opts.stop_on_error = false;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  return engine.run(cosim.program());
}

// --- Symbolic memory units ---------------------------------------------------------

TEST(SymbolicInstrMemory, CachesPerAddress) {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  SymbolicInstrMemory imem;
  const ExprRef a1 = imem.fetch(st, 0x80000000);
  const ExprRef a2 = imem.fetch(st, 0x80000000);
  const ExprRef b = imem.fetch(st, 0x80000004);
  EXPECT_EQ(a1.get(), a2.get()) << "same address must give one instruction";
  EXPECT_NE(a1.get(), b.get());
  EXPECT_EQ(imem.generatedWords(), 2u);
}

TEST(SymbolicInstrMemory, ConstraintApplied) {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  SymbolicInstrMemory imem(CoSimulation::blockSystemInstructions());
  const ExprRef w = imem.fetch(st, 0x80000000);
  // SYSTEM opcodes must now be infeasible on this path.
  EXPECT_TRUE(st.mustBeTrue(eb.ne(eb.extract(w, 0, 7), eb.constant(0x73, 7))));
}

TEST(SymbolicDataMemory, SharedInitPrivateWrites) {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  InitialImage image;
  SymbolicDataMemory a(image);
  SymbolicDataMemory b(image);
  // Identical initial content (same symbolic variable)...
  EXPECT_EQ(a.byteAt(st, 0x100).get(), b.byteAt(st, 0x100).get());
  // ...but writes are private.
  a.setByte(0x100, eb.constant(0xAA, 8));
  EXPECT_NE(a.byteAt(st, 0x100).get(), b.byteAt(st, 0x100).get());
  EXPECT_TRUE(a.byteAt(st, 0x100)->isConstant());
}

TEST(SymbolicDataMemory, StrobedStoreTouchesOnlySelectedLanes) {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  InitialImage image;
  SymbolicDataMemory m(image);
  const ExprRef untouched = m.byteAt(st, 0x102);
  m.storeStrobed(st, 0x100, 0b0011, eb.constant(0xAABBCCDD, 32));
  EXPECT_TRUE(m.byteAt(st, 0x100)->isConstantValue(0xDD));
  EXPECT_TRUE(m.byteAt(st, 0x101)->isConstantValue(0xCC));
  EXPECT_EQ(m.byteAt(st, 0x102).get(), untouched.get());
}

TEST(SymbolicDataMemory, LittleEndianWordAssembly) {
  ExprBuilder eb;
  symex::ExecState st{eb, {}, {}};
  InitialImage image;
  SymbolicDataMemory m(image);
  for (unsigned i = 0; i < 4; ++i)
    m.setByte(0x200 + i, eb.constant(0x11 * (i + 1), 8));
  const ExprRef w = m.loadWord(st, eb.constant(0x200, 32));
  ASSERT_TRUE(w->isConstant());
  EXPECT_EQ(w->constantValue(), 0x44332211u);
}

// --- Lockstep soundness: no false mismatches ------------------------------------------

TEST(Lockstep, PinnedAluProgramAgrees) {
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 3;
  cfg.instr_constraint = pinnedProgram({
      enc::addi(1, 0, 42),
      enc::slli(2, 1, 4),
      enc::sub(3, 2, 1),
  });
  const auto report = explore(eb, cfg);
  EXPECT_EQ(report.error_paths, 0u);
  EXPECT_GE(report.completed_paths, 1u);
}

TEST(Lockstep, SymbolicRegistersStillAgree) {
  // With symbolic register content the agreement must hold for ALL
  // values — a much stronger check than any concrete run.
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 1;
  cfg.num_symbolic_regs = 2;
  cfg.instr_constraint = pinnedProgram({enc::add(3, 1, 2)});
  const auto report = explore(eb, cfg);
  EXPECT_EQ(report.error_paths, 0u);
}

class LockstepRandomInstr : public ::testing::TestWithParam<int> {};

TEST_P(LockstepRandomInstr, FixedPairNeverMismatches) {
  // Random single instructions from the whole RV32I+Zicsr space,
  // executed over fully symbolic x1/x2 and symbolic memory.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 6; ++round) {
    ExprBuilder eb;
    std::uint32_t word = rng();
    // Bias half the rounds towards valid encodings.
    if (round % 2 == 0) {
      const auto table = decodeTable();
      const DecodePattern& p = table[rng() % table.size()];
      word = (word & ~p.mask) | p.match;
    }
    CosimConfig cfg = compatibleConfig();
    cfg.instr_limit = 1;
    cfg.instr_constraint = pinnedProgram({word});
    const auto report = explore(eb, cfg);
    EXPECT_EQ(report.error_paths, 0u)
        << "false mismatch for " << disassemble(word) << " (0x" << std::hex
        << word << ")";
    EXPECT_GE(report.totalPaths(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockstepRandomInstr, ::testing::Range(0, 5));

TEST(Lockstep, FreeExplorationOfFixedPairIsClean) {
  // Unconstrained symbolic instruction on the fixed pair: every explored
  // path must agree (bounded sweep).
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 1;
  symex::EngineOptions opts;
  opts.max_paths = 150;
  const auto report = explore(eb, cfg, opts);
  EXPECT_EQ(report.error_paths, 0u);
  EXPECT_GE(report.completed_paths, 50u);
}

// --- Authentic-bug detection -----------------------------------------------------------

TEST(Detection, MisalignedLoadMismatch) {
  ExprBuilder eb;
  CosimConfig cfg;  // authentic RTL + authentic ISS
  cfg.instr_limit = 1;
  cfg.instr_constraint = CoSimulation::onlyMajorOpcode(0x03);  // loads
  symex::EngineOptions opts;
  opts.max_paths = 200;
  const auto report = explore(eb, cfg, opts);
  EXPECT_GT(report.error_paths, 0u);
  const auto findings = classifyReport(report);
  bool found_alignment = false;
  for (const Finding& f : findings)
    if (f.description == "Missing alignment check") found_alignment = true;
  EXPECT_TRUE(found_alignment);
}

TEST(Detection, WfiMismatch) {
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.instr_limit = 1;
  cfg.instr_constraint = pinnedProgram({enc::wfi()});
  const auto report = explore(eb, cfg);
  ASSERT_GT(report.error_paths, 0u);
  const auto findings = classifyReport(report);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].description, "Missing WFI instruction");
  EXPECT_EQ(findings[0].r_class, "E");
}

TEST(Detection, VpDelegationReadBug) {
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.instr_limit = 1;
  cfg.instr_constraint = pinnedProgram({enc::csrrw(1, csr::kMedeleg, 0)});
  const auto report = explore(eb, cfg);
  ASSERT_GT(report.error_paths, 0u);
  const auto findings = classifyReport(report);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].r_class, "E*");
}

TEST(Detection, MscratchNeedsTwoInstructions) {
  // Writing mscratch is silently ignored by the RTL core; the divergence
  // becomes observable only at the read-back — instruction limit 2.
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.instr_limit = 2;
  cfg.instr_constraint = pinnedProgram({
      enc::csrrw(0, csr::kMscratch, 1),   // write symbolic x1
      enc::csrrs(2, csr::kMscratch, 0),   // read back
  });
  const auto report = explore(eb, cfg);
  ASSERT_GT(report.error_paths, 0u);
  const auto findings = classifyReport(report);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].subject, "mscratch");
  EXPECT_EQ(findings[0].description, "unimpl. Privileged CSR");

  // At instruction limit 1 the same write is NOT observable.
  ExprBuilder eb2;
  CosimConfig cfg1 = cfg;
  cfg1.instr_limit = 1;
  cfg1.instr_constraint = pinnedProgram({enc::csrrw(0, csr::kMscratch, 1)});
  const auto report1 = explore(eb2, cfg1);
  EXPECT_EQ(report1.error_paths, 0u);
}

TEST(Detection, ErrorPathProvidesConcreteReproducer) {
  ExprBuilder eb;
  CosimConfig cfg;
  cfg.instr_limit = 1;
  cfg.instr_constraint = CoSimulation::onlyMajorOpcode(0x23);  // stores
  symex::EngineOptions opts;
  opts.max_paths = 120;
  const auto report = explore(eb, cfg, opts);
  ASSERT_GT(report.error_paths, 0u);
  const symex::PathRecord* err = report.firstError();
  ASSERT_NE(err, nullptr);
  ASSERT_TRUE(err->has_test);
  const auto word =
      err->test.lookup(SymbolicInstrMemory::variableName(0x80000000));
  ASSERT_TRUE(word.has_value());
  const Decoded d = decode(static_cast<std::uint32_t>(*word));
  EXPECT_TRUE(isStore(d.op)) << disassemble(static_cast<std::uint32_t>(*word));
}

// --- Sliced symbolic registers ------------------------------------------------------------

TEST(SlicedRegisters, SliceSizeControlsStateSpace) {
  // More symbolic registers -> at least as many explored paths for the
  // same budget-free exploration of a branch instruction.
  std::uint64_t paths_by_slice[2] = {0, 0};
  const unsigned slices[2] = {0, 2};
  for (int i = 0; i < 2; ++i) {
    ExprBuilder eb;
    CosimConfig cfg = compatibleConfig();
    cfg.instr_limit = 1;
    cfg.num_symbolic_regs = slices[i];
    cfg.instr_constraint = pinnedProgram({enc::beq(1, 2, 8)});
    const auto report = explore(eb, cfg);
    paths_by_slice[i] = report.totalPaths();
  }
  // With concrete (zero) registers BEQ x1,x2 is decided; with symbolic
  // registers both directions fork.
  EXPECT_LT(paths_by_slice[0], paths_by_slice[1]);
}

TEST(SlicedRegisters, X0NeverSymbolic) {
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 1;
  cfg.num_symbolic_regs = 31;  // even a full slice must leave x0 alone
  cfg.instr_constraint = pinnedProgram({enc::add(3, 0, 0)});
  const auto report = explore(eb, cfg);
  EXPECT_EQ(report.error_paths, 0u);
}

// --- Execution controller ---------------------------------------------------------------------

TEST(ExecutionController, InstructionLimitBoundsPathLength) {
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 2;
  cfg.instr_constraint = pinnedProgram({enc::nop(), enc::nop(), enc::nop()});
  const auto report = explore(eb, cfg);
  ASSERT_EQ(report.completed_paths, 1u);
  EXPECT_EQ(report.paths[0].instructions, 2u);
}

TEST(ExecutionController, CycleLimitTerminatesPath) {
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 100;
  cfg.cycle_limit = 10;  // too few cycles to retire 100 instructions
  cfg.instr_constraint = pinnedProgram({enc::nop()});
  const auto report = explore(eb, cfg);
  EXPECT_EQ(report.completed_paths, 1u);
  EXPECT_LT(report.paths[0].instructions, 5u);
}

// --- Bus wait states -----------------------------------------------------------------------

TEST(BusWaitStates, LockstepHoldsUnderSlowBuses) {
  for (unsigned waits : {1u, 3u}) {
    ExprBuilder eb;
    CosimConfig cfg = compatibleConfig();
    cfg.instr_limit = 2;
    cfg.bus_wait_states = waits;
    symex::EngineOptions opts;
    opts.max_paths = 120;
    const auto report = explore(eb, cfg, opts);
    EXPECT_EQ(report.error_paths, 0u) << waits << " wait states";
    EXPECT_GE(report.completed_paths, 20u);
  }
}

TEST(BusWaitStates, StretchCyclesNotSemantics) {
  // The same pinned program must retire identical results with and
  // without wait states; only the cycle budget differs.
  for (unsigned waits : {0u, 2u}) {
    ExprBuilder eb;
    CosimConfig cfg = compatibleConfig();
    cfg.instr_limit = 3;
    cfg.bus_wait_states = waits;
    cfg.instr_constraint = pinnedProgram({
        enc::addi(1, 0, 42),
        enc::sw(1, 0, 0x100),
        enc::lw(2, 0, 0x100),
    });
    const auto report = explore(eb, cfg);
    EXPECT_EQ(report.error_paths, 0u) << waits;
    ASSERT_GE(report.completed_paths, 1u);
    EXPECT_EQ(report.paths[0].instructions, 3u) << waits;
  }
}

TEST(BusWaitStates, FaultsStillFoundOnSlowBuses) {
  ExprBuilder eb;
  CosimConfig cfg = compatibleConfig();
  cfg.instr_limit = 1;
  cfg.bus_wait_states = 2;
  cfg.instr_constraint = CoSimulation::onlyMajorOpcode(0x03);  // loads
  CosimConfig buggy = cfg;
  buggy.rtl.faults.mem_faults.push_back(
      {rv32::Opcode::Lb, rtl::MemFaultKind::SignFlip});  // E8
  symex::EngineOptions opts;
  opts.max_paths = 400;
  const auto report = explore(eb, buggy, opts);
  EXPECT_GT(report.error_paths, 0u);
}

// --- Mismatch message plumbing ----------------------------------------------------------------

TEST(MismatchMessage, RoundTrips) {
  const Mismatch m{"rd_value", "destination register value differs"};
  const std::string msg = formatMismatchMessage(m, 0x80000004);
  std::string field;
  std::uint32_t pc = 0;
  ASSERT_TRUE(parseMismatchMessage(msg, field, pc));
  EXPECT_EQ(field, "rd_value");
  EXPECT_EQ(pc, 0x80000004u);
}

}  // namespace
}  // namespace rvsym::core
