// Tests for the random-testing baseline: generation policy, determinism,
// absence of false positives on the fixed pair, detection of "broad"
// faults, and the expected blindness to single-value corner cases.
#include <gtest/gtest.h>

#include <set>

#include "fault/faults.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/hybrid.hpp"
#include "rv32/instr.hpp"

namespace rvsym::fuzz {
namespace {

core::CosimConfig fixedPair() {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  return cfg;
}

TEST(RandomImage, DeterministicPerSeedAndAddress) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  RandomImage a(42), b(42), c(43);
  const auto byte = [&](RandomImage& img, std::uint32_t addr) {
    const expr::ExprRef e = img.byteAt(st, addr);
    EXPECT_TRUE(e->isConstant());
    return e->constantValue();
  };
  EXPECT_EQ(byte(a, 0x100), byte(b, 0x100));
  EXPECT_EQ(byte(a, 0x100), byte(a, 0x100));
  // Different seeds / addresses give (overwhelmingly) different content.
  int diff = 0;
  for (std::uint32_t i = 0; i < 64; ++i)
    if (byte(a, i) != byte(c, i)) ++diff;
  EXPECT_GT(diff, 32);
}

TEST(Generation, RespectsSystemBlock) {
  FuzzOptions opts;
  opts.block_system = true;
  std::uint64_t rng = 12345;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t w = CosimFuzzer::randomInstruction(rng, opts);
    EXPECT_NE(w & 0x7F, 0x73u);
  }
}

TEST(Generation, ValidBiasProducesDecodableWords) {
  FuzzOptions opts;
  opts.valid_bias_percent = 100;
  std::uint64_t rng = 999;
  int decodable = 0;
  std::set<rv32::Opcode> seen;
  for (int i = 0; i < 3000; ++i) {
    const std::uint32_t w = CosimFuzzer::randomInstruction(rng, opts);
    const rv32::Decoded d = rv32::decode(w);
    if (d.op != rv32::Opcode::Illegal) {
      ++decodable;
      seen.insert(d.op);
    }
  }
  EXPECT_GT(decodable, 2800);  // pattern bits force a valid encoding
  EXPECT_GT(seen.size(), 35u); // and the sweep covers most opcodes
}

TEST(Fuzzer, NoFalsePositivesOnFixedPair) {
  FuzzOptions opts;
  opts.max_tests = 3000;
  opts.max_seconds = 30;
  CosimFuzzer fuzzer;
  const FuzzReport r = fuzzer.run(fixedPair(), opts);
  EXPECT_FALSE(r.found) << r.mismatch_message;
  EXPECT_EQ(r.tests, 3000u);
  EXPECT_GT(r.instructions, 0u);
}

TEST(Fuzzer, FindsBroadFault) {
  core::CosimConfig cfg = fixedPair();
  fault::errorById("E3").apply(cfg);  // ADDI stuck bit: easy for random
  FuzzOptions opts;
  opts.max_tests = 50000;
  opts.max_seconds = 30;
  CosimFuzzer fuzzer;
  const FuzzReport r = fuzzer.run(cfg, opts);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(rv32::decode(r.witness_instr).op, rv32::Opcode::Addi)
      << rv32::disassemble(r.witness_instr);
}

TEST(Fuzzer, MissesCornerCaseWithinBudget) {
  // X0 only triggers for rs2 == 0xCAFEBABE — a 1-in-2^32 event per ADD.
  core::CosimConfig cfg = fixedPair();
  fault::errorById("X0").apply(cfg);
  FuzzOptions opts;
  opts.max_tests = 20000;
  opts.max_seconds = 20;
  CosimFuzzer fuzzer;
  const FuzzReport r = fuzzer.run(cfg, opts);
  EXPECT_FALSE(r.found) << "a 20k-test budget hitting a 1-in-2^32 value "
                           "would be astonishing";
}

TEST(Fuzzer, DeterministicForFixedSeed) {
  core::CosimConfig cfg = fixedPair();
  fault::errorById("E3").apply(cfg);
  FuzzOptions opts;
  opts.max_tests = 50000;
  opts.max_seconds = 30;
  opts.seed = 77;
  CosimFuzzer fuzzer;
  const FuzzReport a = fuzzer.run(cfg, opts);
  const FuzzReport b = fuzzer.run(cfg, opts);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.tests, b.tests);
  EXPECT_EQ(a.witness_instr, b.witness_instr);
}

TEST(Fuzzer, InstrLimitTwoRunsPrograms) {
  FuzzOptions opts;
  opts.max_tests = 200;
  opts.instr_limit = 2;
  CosimFuzzer fuzzer;
  const FuzzReport r = fuzzer.run(fixedPair(), opts);
  EXPECT_FALSE(r.found);
  // Most tests retire two instructions (some trap on the first).
  EXPECT_GT(r.instructions, r.tests);
}

TEST(Hybrid, BroadFaultFoundByFuzzPhase) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg = fixedPair();
  fault::errorById("E3").apply(cfg);
  HybridOptions opts;
  opts.fuzz.max_tests = 50000;
  const HybridReport r = runHybrid(eb, cfg, opts);
  EXPECT_EQ(r.found_by, HybridReport::FoundBy::Fuzzing);
  EXPECT_EQ(r.symex_paths, 0u) << "phase 2 must not run";
}

TEST(Hybrid, CornerCaseFallsThroughToSymbolic) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg = fixedPair();
  fault::errorById("X0").apply(cfg);
  HybridOptions opts;
  opts.fuzz.max_tests = 5000;
  opts.fuzz.max_seconds = 5;
  const HybridReport r = runHybrid(eb, cfg, opts);
  EXPECT_EQ(r.found_by, HybridReport::FoundBy::Symbolic);
  EXPECT_GT(r.fuzz_tests, 0u);
  EXPECT_GT(r.symex_paths, 0u);
}

TEST(Hybrid, CleanDutFindsNothing) {
  expr::ExprBuilder eb;
  HybridOptions opts;
  opts.fuzz.max_tests = 2000;
  opts.symex.max_paths = 150;
  opts.symex.max_seconds = 30;
  const HybridReport r = runHybrid(eb, fixedPair(), opts);
  EXPECT_FALSE(r.found());
  EXPECT_GT(r.totalSeconds(), 0.0);
}

}  // namespace
}  // namespace rvsym::fuzz
