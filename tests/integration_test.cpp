// End-to-end integration: miniature versions of the paper's two
// experiments driven through the public VerificationSession API.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/session.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "obs/bundle.hpp"

namespace rvsym {
namespace {

using core::CosimConfig;
using core::CoSimulation;
using core::Finding;
using core::SessionOptions;
using core::VerificationSession;

// --- Table I (miniature): authentic MicroRV32 vs authentic VP ------------------

TEST(TableOne, UnguidedSweepFindsMultipleCategories) {
  expr::ExprBuilder eb;
  SessionOptions options;
  options.cosim.instr_limit = 1;
  options.engine.max_paths = 400;
  options.engine.max_seconds = 60;
  VerificationSession session(eb, options);
  const auto report = session.run();

  std::set<std::string> descriptions;
  for (const Finding& f : report.findings) descriptions.insert(f.description);

  EXPECT_GE(report.findings.size(), 10u);
  EXPECT_TRUE(descriptions.count("Missing alignment check"));
  EXPECT_TRUE(descriptions.count("Missing WFI instruction"));
  EXPECT_TRUE(descriptions.count("Trap at write access"));
  EXPECT_TRUE(descriptions.count("Missing trap at write"));

  // Result classes must cover both RTL errors and ISS errors.
  std::set<std::string> classes;
  for (const Finding& f : report.findings) classes.insert(f.r_class);
  EXPECT_TRUE(classes.count("E"));
  EXPECT_TRUE(classes.count("E*"));
  EXPECT_TRUE(classes.count("M"));
}

TEST(TableOne, CsrScenarioAtLimitTwoFindsStatefulMismatches) {
  expr::ExprBuilder eb;
  SessionOptions options;
  options.cosim.instr_limit = 2;
  options.cosim.instr_constraint = CoSimulation::onlySystemInstructions();
  options.engine.max_paths = 500;
  options.engine.max_seconds = 90;
  VerificationSession session(eb, options);
  const auto report = session.run();

  std::set<std::string> subjects;
  for (const Finding& f : report.findings) subjects.insert(f.subject);
  // Stateful CSRs that only diverge on read-back.
  EXPECT_GE(report.findings.size(), 5u);
  EXPECT_GT(report.engine.error_paths, 0u);
}

// --- Table II (miniature): two injected errors, both instruction limits -----------

TEST(TableTwo, FindsDecoderAndDatapathFaults) {
  for (const char* id : {"E0", "E3"}) {
    for (unsigned limit : {1u, 2u}) {
      expr::ExprBuilder eb;
      CosimConfig cfg;
      cfg.rtl = rtl::fixedRtlConfig();
      cfg.iss.csr = iss::CsrConfig::specCorrect();
      cfg.instr_limit = limit;
      cfg.instr_constraint = CoSimulation::blockSystemInstructions();
      fault::errorById(id).apply(cfg);

      symex::EngineOptions opts;
      opts.stop_on_error = true;
      opts.max_paths = 4000;
      opts.max_seconds = 120;
      CoSimulation cosim(eb, cfg);
      symex::Engine engine(eb, opts);
      const auto report = engine.run(cosim.program());
      EXPECT_GT(report.error_paths, 0u)
          << id << " at instruction limit " << limit;
      EXPECT_GT(report.instructions, 0u);
      EXPECT_GT(report.partialPaths(), 0u);
    }
  }
}

// --- Mismatch-repro bundles ----------------------------------------------------------

TEST(ReproBundle, WriteAndReplayRoundTrip) {
  // Hunt one injected error, dump a repro bundle for the mismatch, then
  // replay the bundle from disk alone and expect the same voter verdict.
  expr::ExprBuilder eb;
  CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = CoSimulation::blockSystemInstructions();
  fault::errorById("E5").apply(cfg);

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 4000;
  opts.max_seconds = 120;
  CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  ASSERT_GT(report.error_paths, 0u);

  const std::string dir = testing::TempDir() + "/rvsym_bundle_test";
  std::filesystem::remove_all(dir);
  obs::BundleDescriptor base;
  base.fault_id = "E5";
  base.scenario = "rv32i";
  base.instr_limit = 1;
  base.num_symbolic_regs = 2;
  ASSERT_EQ(obs::writeReportBundles(dir, base, report), 1u);

  const std::string bundle = dir + "/bundle-000";
  for (const char* file : {"manifest.json", "test.rvtest", "instrs.txt",
                           "rvfi_rtl.jsonl", "rvfi_iss.jsonl", "trace.vcd"}) {
    EXPECT_TRUE(std::filesystem::exists(bundle + "/" + file)) << file;
    EXPECT_GT(std::filesystem::file_size(bundle + "/" + file), 0u) << file;
  }

  const auto manifest = obs::loadBundleManifest(bundle);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->fault_id, "E5");
  EXPECT_EQ(manifest->scenario, "rv32i");
  EXPECT_EQ(manifest->instr_limit, 1u);
  EXPECT_NE(manifest->message.find("voter mismatch"), std::string::npos);

  const auto replay = obs::replayBundle(bundle);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->reproduced);
  EXPECT_TRUE(replay->verdict_matches)
      << "recorded " << replay->recorded_field << " got " << replay->field;
  std::filesystem::remove_all(dir);
}

// --- Cross-experiment sanity ---------------------------------------------------------

TEST(Session, ReportsEngineCountersConsistently) {
  expr::ExprBuilder eb;
  SessionOptions options;
  options.cosim.instr_limit = 1;
  options.engine.max_paths = 60;
  VerificationSession session(eb, options);
  const auto report = session.run();
  EXPECT_EQ(report.engine.totalPaths(),
            report.engine.completed_paths + report.engine.partialPaths());
  EXPECT_GT(report.engine.instructions, 0u);
  EXPECT_GT(report.engine.seconds, 0.0);
  // Findings only come from error paths.
  EXPECT_LE(report.findings.size(), report.engine.error_paths);
}

TEST(Session, RenderedTableContainsHeaderAndRows) {
  std::vector<Finding> findings;
  Finding f;
  f.subject = "WFI";
  f.example = "wfi";
  f.description = "Missing WFI instruction";
  f.r_class = "E";
  findings.push_back(f);
  const std::string table = core::renderFindingsTable(findings);
  EXPECT_NE(table.find("Instruction & CSR"), std::string::npos);
  EXPECT_NE(table.find("WFI"), std::string::npos);
  EXPECT_NE(table.find("Missing WFI instruction"), std::string::npos);
}

}  // namespace
}  // namespace rvsym
