// rvsym-serve — the distributed verification campaign service.
//
//   rvsym-serve daemon --socket EP --state-dir DIR [--cache-dir DIR]
//       [--workers N] [--engine-jobs N] [--units-per-shard N]
//       [--max-queued-jobs N] [--idle-compact SECS] [--crash-dir DIR]
//       [--thread-workers] [--fail-after-units N] [--verbose]
//       Run the campaign server: accept jobs over EP ("unix:<path>" or
//       "tcp:<port>", loopback), schedule them across worker processes
//       that share the persistent query-cache store, journal every
//       verdict (kill -9 at any instant resumes on restart), and
//       compact the cache store while idle.
//
//   rvsym-serve submit --socket EP (--mutate | --verify | --replay DIR)
//       [--kinds K,...] [--ops OP,...] [--mutant ID ...]
//       [--min-instr-limit K] [--max-instr-limit K] [--max-paths N]
//       [--max-seconds S] [--scenario S] [--solver-opt S]
//       [--max-shards N] [--wait]
//       Submit one job. --wait streams unit verdicts until the final
//       record and exits 0 iff the job finished "done".
//
//   rvsym-serve status --socket EP [--job ID] [--json]
//   rvsym-serve cancel --socket EP --job ID
//   rvsym-serve drain  --socket EP [--wait]
//   rvsym-serve ping   --socket EP [--json]
//   rvsym-serve scrape --socket EP
//       Fetch the fleet-wide Prometheus text exposition (DESIGN.md §14)
//       over the frame protocol and print it verbatim. The same text is
//       served as plain HTTP on the daemon's --metrics-listen endpoint.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/analyze/json_reader.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "serve/proto.hpp"
#include "serve/worker.hpp"

namespace {

using namespace rvsym;
using obs::JsonWriter;
using obs::analyze::JsonValue;
using obs::analyze::parseJson;

int usage() {
  std::fprintf(
      stderr,
      "usage: rvsym-serve daemon --socket EP --state-dir DIR\n"
      "           [--cache-dir DIR] [--workers N] [--engine-jobs N]\n"
      "           [--units-per-shard N] [--max-queued-jobs N]\n"
      "           [--idle-compact SECS] [--crash-dir DIR]\n"
      "           [--metrics-listen EP] [--trace-events-dir DIR]\n"
      "           [--no-history]\n"
      "           [--thread-workers] [--fail-after-units N] [--verbose]\n"
      "       rvsym-serve submit --socket EP\n"
      "           (--mutate | --verify | --replay DIR)\n"
      "           [--kinds K,...] [--ops OP,...] [--mutant ID ...]\n"
      "           [--min-instr-limit K] [--max-instr-limit K]\n"
      "           [--max-paths N] [--max-seconds S] [--scenario S]\n"
      "           [--solver-opt S] [--max-shards N] [--wait]\n"
      "       rvsym-serve status --socket EP [--job ID] [--json]\n"
      "       rvsym-serve cancel --socket EP --job ID\n"
      "       rvsym-serve drain --socket EP [--wait]\n"
      "       rvsym-serve ping --socket EP [--json]\n"
      "       rvsym-serve scrape --socket EP\n"
      "\n"
      "EP is unix:<path> or tcp:<port> (loopback only).\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

std::vector<std::string> splitList(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

bool parseEndpointArg(const std::string& spec, serve::Endpoint& ep) {
  std::string err;
  const auto parsed = serve::parseEndpoint(spec, &err);
  if (!parsed) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return false;
  }
  ep = *parsed;
  return true;
}

int runDaemon(int argc, char** argv) {
  serve::DaemonOptions opts;
  bool have_socket = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (!v || !parseEndpointArg(v, opts.endpoint)) return 2;
      have_socket = true;
    } else if (arg == "--state-dir") {
      const char* v = next();
      if (!v) return usage();
      opts.state_dir = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (!v) return usage();
      opts.cache_dir = v;
    } else if (arg == "--crash-dir") {
      const char* v = next();
      if (!v) return usage();
      opts.crash_dir = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage();
      opts.workers = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--engine-jobs") {
      const char* v = next();
      if (!v) return usage();
      opts.engine_jobs = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--units-per-shard") {
      const char* v = next();
      if (!v) return usage();
      opts.sched.units_per_shard = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-queued-jobs") {
      const char* v = next();
      if (!v) return usage();
      opts.sched.max_queued_jobs = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--idle-compact") {
      const char* v = next();
      if (!v) return usage();
      opts.idle_compact_s = std::atof(v);
    } else if (arg == "--metrics-listen") {
      const char* v = next();
      serve::Endpoint mep;
      if (!v || !parseEndpointArg(v, mep)) return 2;
      opts.metrics_listen = mep;
    } else if (arg == "--trace-events-dir") {
      const char* v = next();
      if (!v) return usage();
      opts.trace_dir = v;
    } else if (arg == "--no-history") {
      opts.history = false;
    } else if (arg == "--thread-workers") {
      opts.thread_workers = true;
    } else if (arg == "--fail-after-units") {
      const char* v = next();
      if (!v) return usage();
      opts.worker_fail_after_units = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      return usage();
    }
  }
  if (!have_socket || opts.state_dir.empty()) return usage();
#ifdef RVSYM_OBS_NO_TRACING
  if (!opts.trace_dir.empty()) {
    std::fprintf(stderr,
                 "--trace-events-dir needs tracing, which this build "
                 "compiled out (RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
#endif
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  opts.stop_flag = &g_stop;
  serve::Daemon daemon(std::move(opts));
  std::string err;
  if (!daemon.init(&err)) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  return daemon.run();
}

void printUnitRecord(const JsonValue& v) {
  const std::string unit = v.getString("unit").value_or("?");
  if (const auto error = v.getString("error")) {
    std::printf("  %-28s ERROR %s\n", unit.c_str(), error->c_str());
    return;
  }
  const std::string verdict = v.getString("verdict").value_or("?");
  if (const auto limit = v.getU64("kill_instr_limit"))
    std::printf("  %-28s %s (limit %llu)\n", unit.c_str(), verdict.c_str(),
                static_cast<unsigned long long>(*limit));
  else
    std::printf("  %-28s %s\n", unit.c_str(), verdict.c_str());
}

void printFinalRecord(const JsonValue& v) {
  std::printf("final: %s — %llu/%llu units",
              v.getString("status").value_or("?").c_str(),
              static_cast<unsigned long long>(
                  v.getU64("units_done").value_or(0)),
              static_cast<unsigned long long>(
                  v.getU64("units_total").value_or(0)));
  if (const JsonValue* verdicts = v.find("verdicts")) {
    for (const auto& [name, count] : verdicts->members())
      std::printf(", %s %llu", name.c_str(),
                  static_cast<unsigned long long>(count.asU64()));
  }
  std::printf(" (sat solves %llu, qcache %llu/%llu)\n",
              static_cast<unsigned long long>(
                  v.getU64("qc_sat_solves").value_or(0)),
              static_cast<unsigned long long>(
                  v.getU64("qc_hits").value_or(0)),
              static_cast<unsigned long long>(
                  v.getU64("qc_misses").value_or(0)));
}

int runSubmit(const serve::Endpoint& ep, const serve::JobSpec& spec,
              bool wait) {
  std::string err;
  const int fd = serve::connectTo(ep, &err);
  if (fd < 0) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  JsonWriter w;
  w.beginObject();
  w.field("cmd", "submit");
  w.key("spec").rawValue(spec.toJson());
  if (wait) w.field("watch", true);
  w.endObject();
  const auto reply = serve::request(fd, w.str(), &err);
  if (!reply) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    ::close(fd);
    return 1;
  }
  const auto v = parseJson(*reply);
  if (!v || !v->getBool("ok").value_or(false)) {
    std::fprintf(stderr, "rvsym-serve: submit refused: %s\n",
                 v ? v->getString("error").value_or("?").c_str()
                   : "unparsable reply");
    ::close(fd);
    return 1;
  }
  const std::string job = v->getString("job").value_or("?");
  std::printf("submitted %s (%llu units)\n", job.c_str(),
              static_cast<unsigned long long>(v->getU64("units").value_or(0)));
  if (!wait) {
    ::close(fd);
    return 0;
  }
  // Stream unit verdicts until the final record.
  int code = 1;
  for (;;) {
    const auto frame = serve::readFrame(fd, &err);
    if (!frame) {
      std::fprintf(stderr, "rvsym-serve: %s\n",
                   err.empty() ? "daemon closed the stream" : err.c_str());
      break;
    }
    const auto rec = parseJson(*frame);
    if (!rec) continue;
    const std::string ev = rec->getString("ev").value_or("");
    if (ev == "unit") {
      printUnitRecord(*rec);
    } else if (ev == "final") {
      printFinalRecord(*rec);
      code = rec->getString("status").value_or("") == "done" ? 0 : 1;
      break;
    }
  }
  ::close(fd);
  return code;
}

int runStatus(const serve::Endpoint& ep, const std::string& job,
              bool raw_json) {
  JsonWriter w;
  w.beginObject();
  w.field("cmd", "status");
  if (!job.empty()) w.field("job", job);
  w.endObject();
  std::string err;
  const auto reply = serve::requestOnce(ep, w.str(), &err);
  if (!reply) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  if (raw_json) {
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  const auto v = parseJson(*reply);
  if (!v || !v->getBool("ok").value_or(false)) {
    std::fprintf(stderr, "rvsym-serve: %s\n",
                 v ? v->getString("error").value_or("?").c_str()
                   : "unparsable reply");
    return 1;
  }
  const auto summary = [](const JsonValue& j) {
    std::printf("%-6s %-8s %-10s %llu/%llu",
                j.getString("id").value_or("?").c_str(),
                j.getString("kind").value_or("?").c_str(),
                j.getString("state").value_or("?").c_str(),
                static_cast<unsigned long long>(
                    j.getU64("units_done").value_or(0)),
                static_cast<unsigned long long>(
                    j.getU64("units_total").value_or(0)));
    if (const auto shards = j.getU64("shards_in_flight"))
      std::printf("  (%llu shards in flight)",
                  static_cast<unsigned long long>(*shards));
    std::printf("\n");
  };
  if (const JsonValue* detail = v->find("job")) {
    summary(*detail);
    if (const JsonValue* verdicts = v->find("verdicts"))
      for (const auto& [name, count] : verdicts->members())
        std::printf("  %s: %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count.asU64()));
    if (const JsonValue* final_rec = v->find("final")) printFinalRecord(*final_rec);
    return 0;
  }
  if (const JsonValue* jobs = v->find("jobs")) {
    if (jobs->items().empty()) std::printf("no jobs\n");
    for (const auto& j : jobs->items()) summary(j);
  }
  if (v->getBool("draining").value_or(false)) std::printf("(draining)\n");
  return 0;
}

int runSimple(const serve::Endpoint& ep, const char* cmd,
              const std::string& job) {
  JsonWriter w;
  w.beginObject();
  w.field("cmd", cmd);
  if (!job.empty()) w.field("job", job);
  w.endObject();
  std::string err;
  const auto reply = serve::requestOnce(ep, w.str(), &err);
  if (!reply) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  const auto v = parseJson(*reply);
  if (!v || !v->getBool("ok").value_or(false)) {
    std::fprintf(stderr, "rvsym-serve: %s\n",
                 v ? v->getString("error").value_or("?").c_str()
                   : "unparsable reply");
    return 1;
  }
  std::printf("%s\n", reply->c_str());
  return 0;
}

int runPing(const serve::Endpoint& ep, bool raw_json) {
  JsonWriter w;
  w.beginObject();
  w.field("cmd", "ping");
  w.endObject();
  std::string err;
  const auto reply = serve::requestOnce(ep, w.str(), &err);
  if (!reply) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  const auto v = parseJson(*reply);
  if (!v || !v->getBool("ok").value_or(false)) {
    std::fprintf(stderr, "rvsym-serve: %s\n",
                 v ? v->getString("error").value_or("?").c_str()
                   : "unparsable reply");
    return 1;
  }
  if (raw_json) {
    std::printf("%s\n", reply->c_str());
    return 0;
  }
  std::printf("pong: %llu workers, %llu jobs%s\n",
              static_cast<unsigned long long>(
                  v->getU64("workers").value_or(0)),
              static_cast<unsigned long long>(v->getU64("jobs").value_or(0)),
              v->getBool("draining").value_or(false) ? " (draining)" : "");
  return 0;
}

int runScrape(const serve::Endpoint& ep) {
  JsonWriter w;
  w.beginObject();
  w.field("cmd", "metrics");
  w.endObject();
  std::string err;
  const auto reply = serve::requestOnce(ep, w.str(), &err);
  if (!reply) {
    std::fprintf(stderr, "rvsym-serve: %s\n", err.c_str());
    return 1;
  }
  const auto v = parseJson(*reply);
  if (!v || !v->getBool("ok").value_or(false)) {
    std::fprintf(stderr, "rvsym-serve: %s\n",
                 v ? v->getString("error").value_or("?").c_str()
                   : "unparsable reply");
    return 1;
  }
  const auto text = v->getString("exposition");
  if (!text) {
    std::fprintf(stderr, "rvsym-serve: metrics reply has no exposition\n");
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

/// Blocks until the daemon's endpoint stops accepting connections.
int waitForExit(const serve::Endpoint& ep) {
  for (;;) {
    std::string err;
    const int fd = serve::connectTo(ep, &err);
    if (fd < 0) return 0;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "daemon") return runDaemon(argc - 2, argv + 2);

  serve::Endpoint ep;
  bool have_socket = false;
  std::string job;
  bool wait = false, raw_json = false;
  serve::JobSpec spec;
  bool have_kind = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (!v || !parseEndpointArg(v, ep)) return 2;
      have_socket = true;
    } else if (arg == "--job") {
      const char* v = next();
      if (!v) return usage();
      job = v;
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--json") {
      raw_json = true;
    } else if (arg == "--mutate") {
      spec.kind = "mutate";
      have_kind = true;
    } else if (arg == "--verify") {
      spec.kind = "verify";
      have_kind = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage();
      spec.kind = "replay";
      spec.corpus_dir = v;
      have_kind = true;
    } else if (arg == "--kinds") {
      const char* v = next();
      if (!v) return usage();
      spec.kinds = splitList(v);
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return usage();
      spec.ops = splitList(v);
    } else if (arg == "--mutant") {
      const char* v = next();
      if (!v) return usage();
      spec.mutant_ids.push_back(v);
    } else if (arg == "--min-instr-limit") {
      const char* v = next();
      if (!v) return usage();
      spec.min_instr_limit = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-instr-limit") {
      const char* v = next();
      if (!v) return usage();
      spec.max_instr_limit = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--max-paths") {
      const char* v = next();
      if (!v) return usage();
      spec.max_paths_per_hunt = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--max-seconds") {
      const char* v = next();
      if (!v) return usage();
      spec.max_seconds_per_hunt = std::atof(v);
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return usage();
      spec.scenario = v;
    } else if (arg == "--solver-opt") {
      const char* v = next();
      if (!v) return usage();
      spec.solver_opt = v;
    } else if (arg == "--max-shards") {
      const char* v = next();
      if (!v) return usage();
      spec.max_shards = static_cast<unsigned>(std::atoi(v));
    } else {
      return usage();
    }
  }
  if (!have_socket) return usage();

  if (mode == "submit") {
    if (!have_kind) return usage();
    return runSubmit(ep, spec, wait);
  }
  if (mode == "status") return runStatus(ep, job, raw_json);
  if (mode == "cancel") {
    if (job.empty()) return usage();
    return runSimple(ep, "cancel", job);
  }
  if (mode == "drain") {
    const int rc = runSimple(ep, "drain", "");
    if (rc != 0 || !wait) return rc;
    return waitForExit(ep);
  }
  if (mode == "ping") return runPing(ep, raw_json);
  if (mode == "scrape") return runScrape(ep);
  return usage();
}
