// rvsym-report — offline analysis of rvsym-verify run artifacts.
//
//   rvsym-report tree <trace.jsonl> [--top K] [--json]
//       Reconstruct the exploration path tree from the JSONL lifecycle
//       trace and print the solver/RTL/ISS time attribution: top-K most
//       expensive paths and root subtrees, dominating instruction
//       classes, verdict counts.
//
//   rvsym-report coverage <trace.jsonl> [--html FILE] [--json] [--holes]
//       Replay the per-path test vectors and tags into the
//       decoder-space coverage map ((opcode, funct3, funct7) cells, CSR
//       bins, trap causes, voter channels); print the summary, or emit
//       the full map as JSON / a self-contained HTML heatmap.
//
//   rvsym-report diff <runA> <runB>
//       Compare two runs (trace files or directories containing one)
//       in every deterministic dimension: tree shape, verdicts, tags,
//       test vectors and coverage sets. Exit 0 when identical, 1 when
//       different — CI asserts jobs=1 vs jobs=N parity with this.
//
//   rvsym-report timeseries <run.jsonl> [other.jsonl]
//       With one file: summarize a --timeseries-out stream (progress,
//       solver latency percentiles, cache split) with ASCII time plots.
//       With two: diff the deterministic surface (header + ts_final
//       minus t_*/qc_* fields) — the sampler's --jobs parity check.
//
//   rvsym-report crash <bundle-dir> [--timeline N] [--queries N]
//       Render a rvsym-crash-v1 bundle (written by --crash-dir on a
//       fatal signal, stall, or SIGUSR1): thread table with stall
//       attribution, interleaved per-thread event timeline, the last
//       solver queries with durations, and the in-flight query that was
//       on the SAT solver when the bundle was dumped.
//
//   rvsym-report trace-events --merge <dir> [--out FILE]
//       Stitch the per-process Chrome traces a campaign daemon writes
//       with --trace-events-dir (daemon.trace.json + one file per
//       worker) into a single timeline: each file gets a distinct pid,
//       timestamps are aligned on the shared steady-clock epoch, and
//       the job -> shard -> unit -> solver-query span nesting survives.
//
//   rvsym-report history list <runs.rvhx|state-dir>
//   rvsym-report history show <runs.rvhx|state-dir> <job>
//   rvsym-report history regress <runs.rvhx|state-dir> --baseline FILE
//       [--slack PCT]
//       Query the durable run-history store the daemon appends per
//       finalized job. `regress` exits 1 when any run's mean per-unit
//       judging time exceeds the baseline-derived budget.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/analyze/coverage_map.hpp"
#include "obs/analyze/crash_report.hpp"
#include "obs/analyze/diff.hpp"
#include "obs/analyze/path_tree.hpp"
#include "obs/analyze/timeseries.hpp"
#include "obs/fleet/history.hpp"
#include "obs/fleet/trace_merge.hpp"

namespace {

using namespace rvsym;
using namespace rvsym::obs::analyze;

int usage() {
  std::fprintf(
      stderr,
      "usage: rvsym-report tree <trace.jsonl> [--top K] [--json]\n"
      "       rvsym-report coverage <trace.jsonl> [--html FILE] [--json] "
      "[--holes]\n"
      "       rvsym-report diff <runA> <runB>\n"
      "       rvsym-report timeseries <run.jsonl> [other.jsonl]\n"
      "       rvsym-report crash <bundle-dir> [--timeline N] [--queries N]\n"
      "       rvsym-report trace-events --merge <dir> [--out FILE]\n"
      "       rvsym-report history list <runs.rvhx|state-dir>\n"
      "       rvsym-report history show <runs.rvhx|state-dir> <job>\n"
      "       rvsym-report history regress <runs.rvhx|state-dir>\n"
      "           --baseline FILE [--slack PCT]\n"
      "\n"
      "Consumes the artifacts a run of `rvsym-verify --trace-out ...`\n"
      "produces. `diff` accepts trace files or run directories and exits\n"
      "0 when the runs' deterministic content is identical, 1 otherwise.\n");
  return 2;
}

std::optional<PathTree> loadTree(const std::string& path) {
  std::string err;
  std::optional<PathTree> tree = PathTree::fromFile(path, &err);
  if (!tree) std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
  return tree;
}

int cmdTree(const std::vector<std::string>& args) {
  std::string trace;
  std::size_t top_k = 5;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top_k = static_cast<std::size_t>(std::strtoul(args[++i].c_str(),
                                                    nullptr, 10));
    } else if (args[i] == "--json") {
      json = true;
    } else if (trace.empty() && args[i][0] != '-') {
      trace = args[i];
    } else {
      return usage();
    }
  }
  if (trace.empty()) return usage();
  std::optional<PathTree> tree = loadTree(trace);
  if (!tree) return 1;

  if (json) {
    // Counters + attribution as one JSON object (shared serializer).
    obs::JsonWriter w;
    const TreeCounts c = tree->counts();
    w.beginObject();
    w.field("paths", c.total());
    w.field("completed", c.completed);
    w.field("errors", c.error);
    w.field("infeasible", c.infeasible);
    w.field("limited", c.limited);
    w.field("unexplored", c.unexplored);
    w.field("instructions", c.instructions);
    w.field("tests", c.tests);
    w.field("jobs", tree->jobs());
    w.key("timing").beginObject();
    w.field("t_solver_us", tree->totalUs("solver"));
    w.field("t_rtl_us", tree->totalUs("rtl"));
    w.field("t_iss_us", tree->totalUs("iss"));
    w.endObject();
    w.key("by_class").beginObject();
    for (const auto& [tag, us] : tree->timeByTag("class:", "solver"))
      w.field(tag.substr(6), us);
    w.endObject();
    w.key("top_paths").beginArray();
    for (const PathNode* n : tree->topPaths(top_k, "solver")) {
      w.beginObject();
      w.field("path", n->id);
      w.field("end", n->end);
      w.field("instr", n->instructions);
      w.field("t_solver_us", n->solverUs());
      w.endObject();
    }
    w.endArray();
    w.endObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::fputs(tree->renderReport(top_k).c_str(), stdout);
  }
  return 0;
}

int cmdCoverage(const std::vector<std::string>& args) {
  std::string trace, html;
  bool json = false, holes = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--html" && i + 1 < args.size()) {
      html = args[++i];
    } else if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--holes") {
      holes = true;
    } else if (trace.empty() && args[i][0] != '-') {
      trace = args[i];
    } else {
      return usage();
    }
  }
  if (trace.empty()) return usage();
  std::optional<PathTree> tree = loadTree(trace);
  if (!tree) return 1;
  const core::CoverageCollector cov = coverageFromTree(*tree);

  if (!html.empty()) {
    if (!writeHtmlReport(html, cov, &*tree)) {
      std::fprintf(stderr, "rvsym-report: cannot write %s\n", html.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", html.c_str());
  }
  if (json) {
    std::printf("%s\n", cov.toJson().c_str());
  } else {
    std::fputs(cov.summary().c_str(), stdout);
    if (holes) std::fputs(cov.holeReport().c_str(), stdout);
  }
  return 0;
}

int cmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  std::string err;
  std::optional<RunArtifacts> a = loadRun(args[0], &err);
  if (!a) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 2;
  }
  std::optional<RunArtifacts> b = loadRun(args[1], &err);
  if (!b) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 2;
  }
  const DiffResult result = diffRuns(*a, *b);
  std::fputs(result.render().c_str(), stdout);
  return result.identical() ? 0 : 1;
}

int cmdTimeseries(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  std::string err;
  std::optional<TimeseriesRun> a = loadTimeseries(args[0], &err);
  if (!a) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 2;
  }
  if (args.size() == 1) {
    std::fputs(renderTimeseriesSummary(*a).c_str(), stdout);
    return 0;
  }
  std::optional<TimeseriesRun> b = loadTimeseries(args[1], &err);
  if (!b) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 2;
  }
  const std::vector<std::string> diffs = diffTimeseries(*a, *b);
  if (diffs.empty()) {
    std::printf("timeseries runs are identical on the deterministic "
                "surface\n");
    return 0;
  }
  for (const std::string& d : diffs) std::printf("  %s\n", d.c_str());
  return 1;
}

int cmdCrash(const std::vector<std::string>& args) {
  std::string dir;
  std::size_t timeline = 40, queries = 8;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--timeline" && i + 1 < args.size()) {
      timeline = static_cast<std::size_t>(std::strtoul(args[++i].c_str(),
                                                       nullptr, 10));
    } else if (args[i] == "--queries" && i + 1 < args.size()) {
      queries = static_cast<std::size_t>(std::strtoul(args[++i].c_str(),
                                                      nullptr, 10));
    } else if (dir.empty() && args[i][0] != '-') {
      dir = args[i];
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();
  std::string err;
  const std::optional<CrashBundle> bundle = loadCrashBundle(dir, &err);
  if (!bundle) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 2;
  }
  std::fputs(renderCrashReport(*bundle, timeline, queries).c_str(), stdout);
  return 0;
}

int cmdTraceEvents(const std::vector<std::string>& args) {
  std::string dir, out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--merge" && i + 1 < args.size()) {
      dir = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();
#ifdef RVSYM_OBS_NO_TRACING
  std::fprintf(stderr,
               "trace-events needs tracing, which this build compiled out "
               "(RVSYM_DISABLE_TRACING)\n");
  return 2;
#else
  if (out.empty()) out = dir + "/merged.trace.json";
  std::string err;
  const auto stats = obs::fleet::mergeChromeTraceDir(dir, out, &err);
  if (!stats) {
    std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
    return 1;
  }
  std::printf("merged %llu files, %llu events -> %s",
              static_cast<unsigned long long>(stats->files),
              static_cast<unsigned long long>(stats->events), out.c_str());
  if (stats->skipped)
    std::printf(" (%llu inputs skipped)",
                static_cast<unsigned long long>(stats->skipped));
  std::printf("\n");
  return 0;
#endif
}

/// `runs.rvhx` or the state dir holding it both address the store.
std::string historyPath(const std::string& arg) {
  std::error_code ec;
  if (std::filesystem::is_directory(arg, ec)) return arg + "/runs.rvhx";
  return arg;
}

int cmdHistory(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string verb = args[0];
  std::string store_arg, job, baseline;
  obs::fleet::RegressOptions ropts;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--baseline" && i + 1 < args.size()) {
      baseline = args[++i];
    } else if (args[i] == "--slack" && i + 1 < args.size()) {
      ropts.slack_pct = std::atof(args[++i].c_str());
    } else if (store_arg.empty() && args[i][0] != '-') {
      store_arg = args[i];
    } else if (job.empty() && args[i][0] != '-') {
      job = args[i];
    } else {
      return usage();
    }
  }
  if (store_arg.empty()) return usage();
  obs::fleet::RunHistory store(historyPath(store_arg));
  std::vector<std::string> warnings;
  const std::vector<obs::fleet::RunRecord> runs = store.loadAll(&warnings);
  for (const std::string& w : warnings)
    std::fprintf(stderr, "rvsym-report: %s\n", w.c_str());

  if (verb == "list") {
    if (!job.empty()) return usage();
    std::fputs(obs::fleet::renderHistoryList(runs).c_str(), stdout);
    return 0;
  }
  if (verb == "show") {
    if (job.empty()) return usage();
    for (const auto& r : runs) {
      if (r.job != job) continue;
      std::fputs(obs::fleet::renderHistoryShow(r).c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "rvsym-report: no run record for job '%s'\n",
                 job.c_str());
    return 1;
  }
  if (verb == "regress") {
    if (baseline.empty() || !job.empty()) return usage();
    std::string err;
    const auto findings =
        obs::fleet::flagRegressions(runs, baseline, ropts, &err);
    if (!findings) {
      std::fprintf(stderr, "rvsym-report: %s\n", err.c_str());
      return 2;
    }
    if (findings->empty()) {
      std::printf("no regressions: %zu runs within budget\n", runs.size());
      return 0;
    }
    for (const auto& f : *findings)
      std::printf("REGRESSION %s: %.0f us/unit exceeds budget %.0f us/unit\n",
                  f.job.c_str(), f.us_per_unit, f.budget_us);
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (cmd == "tree") return cmdTree(args);
  if (cmd == "coverage") return cmdCoverage(args);
  if (cmd == "diff") return cmdDiff(args);
  if (cmd == "timeseries") return cmdTimeseries(args);
  if (cmd == "crash") return cmdCrash(args);
  if (cmd == "trace-events") return cmdTraceEvents(args);
  if (cmd == "history") return cmdHistory(args);
  return usage();
}
