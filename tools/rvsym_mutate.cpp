// rvsym-mutate — the RTL mutation-testing campaign driver.
//
//   rvsym-mutate list [--kinds K,...] [--ops OP,...]
//       Enumerate the mutation space (optionally filtered) and print
//       one mutant id per line plus the total.
//
//   rvsym-mutate run [filters] [--journal FILE] [--jobs N] ...
//       Judge every selected mutant with the bounded symbolic
//       co-simulation and print the mutation score. Writes the
//       resumable JSONL journal, survivor manifests, killed-mutant
//       repro bundles and the HTML survivor heatmap on request. Live
//       telemetry rides along: --timeseries-out / --status-file stream
//       rvsym-timeseries-v1 samples a concurrent `rvsym-top` renders,
//       --trace-events-out dumps a Chrome trace of phase + solver
//       spans, --metrics-out the final registry snapshot.
//
//   rvsym-mutate resume [same flags as run]
//       `run` with --resume implied: mutants already judged in the
//       journal are skipped; a completed journal makes this a no-op.
//
//   rvsym-mutate report <journal> [--html FILE] [--metrics-out FILE]
//                       [--heartbeat]
//       Offline summary of a campaign journal: score, verdict counts,
//       survivor list; optionally the self-contained HTML heatmap, the
//       summary as one JSON document (--metrics-out) or as a single
//       heartbeat line (--heartbeat) for log-grep parity with live
//       campaign output.
//
//   rvsym-mutate diff <journalA> <journalB>
//       Compare two journals' deterministic content (t_*/qc_* fields
//       stripped). Exit 0 when identical, 1 when different — CI asserts
//       --jobs 1 vs --jobs 4 campaign parity with this.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/faults.hpp"
#include "mut/campaign.hpp"
#include "mut/journal.hpp"
#include "mut/space.hpp"
#include "obs/analyze/crash_report.hpp"
#include "obs/analyze/mutation_report.hpp"
#include "obs/bundle.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_events.hpp"
#include "solver/options.hpp"
#include "solver/telemetry.hpp"

namespace {

using namespace rvsym;

int usage() {
  std::fprintf(
      stderr,
      "usage: rvsym-mutate list [--kinds K,...] [--ops OP,...]\n"
      "       rvsym-mutate run|resume [--kinds K,...] [--ops OP,...]\n"
      "           [--mutant ID ...] [--paper] [--journal FILE] [--jobs N]\n"
      "           [--engine-jobs N] [--max-instr-limit K] [--max-paths N]\n"
      "           [--max-seconds S] [--scenario S] [--survivor-dir DIR]\n"
      "           [--trace-dir DIR]\n"
      "           [--bundle-killed DIR] [--html FILE] [--heartbeat SECS]\n"
      "           [--no-equivalence] [--no-cache] [--solver-opt S]\n"
      "           [--timeseries-out FILE] [--status-file FILE]\n"
      "           [--sample-interval SECS] [--trace-events-out FILE]\n"
      "           [--metrics-out FILE] [--crash-dir DIR]\n"
      "           [--stall-timeout SECS]\n"
      "           (resume only) [--crash-bundle DIR]\n"
      "       rvsym-mutate report <journal> [--html FILE]\n"
      "           [--metrics-out FILE] [--heartbeat]\n"
      "       rvsym-mutate diff <journalA> <journalB>\n"
      "\n"
      "kinds: dec stuck swap mem flag; ops: rv32 mnemonics (slli, add,\n"
      "...). --paper selects the ten Table II errors E0-E9.\n");
  return 2;
}

std::vector<std::string> splitList(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

bool parseKind(const std::string& name, mut::MutantKind& kind) {
  for (mut::MutantKind k :
       {mut::MutantKind::DecodeBit, mut::MutantKind::StuckBit,
        mut::MutantKind::BranchSwap, mut::MutantKind::MemFault,
        mut::MutantKind::CtrlFlag}) {
    if (name == mut::mutantKindName(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

bool parseOp(const std::string& name, rv32::Opcode& op) {
  for (std::size_t i = 1; i <= rv32::kLegalOpcodeCount; ++i) {
    const auto candidate = static_cast<rv32::Opcode>(i);
    if (name == rv32::opcodeName(candidate)) {
      op = candidate;
      return true;
    }
  }
  return false;
}

struct Selection {
  mut::SpaceFilter filter;
  std::vector<std::string> mutant_ids;  ///< --mutant (overrides filter)
  bool paper = false;
};

/// The selected mutant set, in a deterministic order.
std::vector<mut::Mutant> selectMutants(const Selection& sel) {
  std::vector<mut::Mutant> mutants;
  if (sel.paper) {
    for (const mut::PaperMutant& pm : mut::paperMutants())
      mutants.push_back(pm.mutant);
    return mutants;
  }
  if (!sel.mutant_ids.empty()) {
    for (const std::string& id : sel.mutant_ids)
      mutants.push_back(mut::mutantById(id));
    return mutants;
  }
  return mut::enumerateSpace(sel.filter);
}

int cmdList(const std::vector<std::string>& args) {
  Selection sel;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--kinds" && i + 1 < args.size()) {
      for (const std::string& name : splitList(args[++i])) {
        mut::MutantKind k;
        if (!parseKind(name, k)) return usage();
        sel.filter.kinds.push_back(k);
      }
    } else if (args[i] == "--ops" && i + 1 < args.size()) {
      for (const std::string& name : splitList(args[++i])) {
        rv32::Opcode op;
        if (!parseOp(name, op)) return usage();
        sel.filter.ops.push_back(op);
      }
    } else {
      return usage();
    }
  }
  const std::vector<mut::Mutant> mutants = mut::enumerateSpace(sel.filter);
  for (const mut::Mutant& m : mutants)
    std::printf("%-24s %s\n", m.id().c_str(), m.description().c_str());
  std::printf("%zu mutants\n", mutants.size());
  return 0;
}

std::string sanitizeId(std::string id) {
  for (char& c : id)
    if (c == ':' || c == '=') c = '-';
  return id;
}

int cmdRun(const std::vector<std::string>& args, bool resume) {
  Selection sel;
  mut::CampaignOptions opts;
  opts.resume = resume;
  std::string html_path, bundle_dir;
  std::string timeseries_out, status_file, trace_events_out, metrics_out;
  std::string crash_dir, crash_bundle;
  double sample_interval = 0.5;
  double stall_timeout = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (a == "--kinds") {
      for (const std::string& name : splitList(next())) {
        mut::MutantKind k;
        if (!parseKind(name, k)) return usage();
        sel.filter.kinds.push_back(k);
      }
    } else if (a == "--ops") {
      for (const std::string& name : splitList(next())) {
        rv32::Opcode op;
        if (!parseOp(name, op)) return usage();
        sel.filter.ops.push_back(op);
      }
    } else if (a == "--mutant") {
      sel.mutant_ids.push_back(next());
    } else if (a == "--paper") {
      sel.paper = true;
    } else if (a == "--journal") {
      opts.journal_path = next();
    } else if (a == "--resume") {
      opts.resume = true;
    } else if (a == "--jobs") {
      opts.jobs = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (a == "--engine-jobs") {
      opts.engine_jobs = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (a == "--max-instr-limit") {
      opts.max_instr_limit = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (a == "--max-paths") {
      opts.max_paths_per_hunt = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--max-seconds") {
      opts.max_seconds_per_hunt = std::atof(next().c_str());
    } else if (a == "--scenario") {
      opts.scenario = next();
    } else if (a == "--survivor-dir") {
      opts.survivor_dir = next();
    } else if (a == "--trace-dir") {
      opts.trace_dir = next();
    } else if (a == "--bundle-killed") {
      bundle_dir = next();
    } else if (a == "--html") {
      html_path = next();
    } else if (a == "--heartbeat") {
      opts.heartbeat_seconds = std::atof(next().c_str());
    } else if (a == "--timeseries-out") {
      timeseries_out = next();
    } else if (a == "--status-file") {
      status_file = next();
    } else if (a == "--sample-interval") {
      sample_interval = std::atof(next().c_str());
    } else if (a == "--trace-events-out") {
      trace_events_out = next();
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--crash-dir") {
      crash_dir = next();
    } else if (a == "--stall-timeout") {
      stall_timeout = std::atof(next().c_str());
    } else if (a == "--crash-bundle") {
      crash_bundle = next();
    } else if (a == "--no-equivalence") {
      opts.check_decode_equivalence = false;
    } else if (a == "--no-cache") {
      opts.use_query_cache = false;
    } else if (a == "--solver-opt") {
      std::string err;
      if (!solver::parseSolverOpt(next(), &opts.solver_opt, &err)) {
        std::fprintf(stderr, "--solver-opt: %s\n", err.c_str());
        return 2;
      }
    } else {
      return usage();
    }
  }

  if (opts.scenario != "rv32i") {
    const auto constraint = obs::scenarioConstraint(opts.scenario);
    if (!constraint) {
      std::fprintf(stderr, "unknown scenario %s\n", opts.scenario.c_str());
      return 2;
    }
    opts.instr_constraint = *constraint;
  }
  if (!opts.survivor_dir.empty())
    std::system(("mkdir -p " + opts.survivor_dir).c_str());

  // Killed-mutant repro bundles, written as verdicts commit.
  if (!bundle_dir.empty()) {
    std::system(("mkdir -p " + bundle_dir).c_str());
    opts.on_result = [&opts, bundle_dir](const mut::MutantResult& r) {
      if (r.verdict != mut::Verdict::Killed || !r.has_kill_test) return;
      obs::BundleDescriptor desc;
      desc.fault_id = r.mutant.id();
      desc.scenario = opts.scenario;
      desc.instr_limit = r.kill_instr_limit;
      desc.num_symbolic_regs = opts.num_symbolic_regs;
      desc.message = r.kill_message;
      const std::string dir = bundle_dir + "/" + sanitizeId(r.mutant.id());
      if (!obs::writeMismatchBundle(dir, desc, r.kill_test))
        std::fprintf(stderr, "bundle replay failed for %s\n",
                     r.mutant.id().c_str());
    };
  }

#ifdef RVSYM_OBS_NO_TRACING
  if (!timeseries_out.empty() || !status_file.empty() ||
      !trace_events_out.empty()) {
    std::fprintf(stderr,
                 "--timeseries-out/--status-file/--trace-events-out need "
                 "tracing, which this build compiled out "
                 "(RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
  if (!crash_dir.empty() || stall_timeout > 0 || !crash_bundle.empty()) {
    std::fprintf(stderr,
                 "--crash-dir/--stall-timeout/--crash-bundle need crash "
                 "forensics, which this build compiled out "
                 "(RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
#endif
  if (stall_timeout > 0 && crash_dir.empty()) {
    std::fprintf(stderr, "--stall-timeout requires --crash-dir\n");
    return 2;
  }
  if (!crash_bundle.empty() && !resume) {
    std::fprintf(stderr, "--crash-bundle only makes sense with resume\n");
    return 2;
  }
  // The live surfaces (sampler, status file, crash bundles) and the
  // --metrics-out dump all read one registry; any of them turns it on.
  const bool want_registry = !metrics_out.empty() || !timeseries_out.empty() ||
                             !status_file.empty() || !crash_dir.empty();
  const bool want_spans = !trace_events_out.empty();
  obs::MetricsRegistry registry;
  if (want_registry) opts.metrics = &registry;

  // Per-query solver telemetry (implies per-check solver timing, so only
  // on when a consumer exists) and phase/solver span capture.
  std::unique_ptr<solver::SolverTelemetry> telemetry;
  if (want_registry || want_spans || !crash_dir.empty()) {
    telemetry = std::make_unique<solver::SolverTelemetry>(
        solver::SolverTelemetry::Options{});
    if (want_registry) telemetry->attachMetrics(registry);
    opts.telemetry = telemetry.get();
  }

  // Crash forensics: flight recorder + fatal/SIGUSR1 handlers + stall
  // watchdog, torn down (handlers restored, registry detached) by the
  // RAII session before this function returns.
  obs::flightrec::ForensicsSession forensics;
  if (!crash_dir.empty()) {
    obs::flightrec::ForensicsOptions fo;
    fo.crash_dir = crash_dir;
    fo.stall_timeout_s = stall_timeout;
    fo.tool = "rvsym-mutate";
    std::string err;
    if (!forensics.install(fo, &err)) {
      std::fprintf(stderr, "--crash-dir: %s\n", err.c_str());
      return 2;
    }
    obs::flightrec::setForensicsMetrics(&registry);
    obs::flightrec::setThreadName("campaign");
    if (telemetry) telemetry->enableInFlightCapture(true);
  }

  // Crash test hook: RVSYM_CRASH_AFTER_MUTANTS=N raises SIGSEGV after
  // the Nth verdict commits — CI's forensics smoke job uses it to die
  // mid-campaign at a deterministic point.
  if (const char* env = std::getenv("RVSYM_CRASH_AFTER_MUTANTS")) {
    const auto limit = static_cast<std::uint64_t>(std::atoll(env));
    auto committed = std::make_shared<std::atomic<std::uint64_t>>(0);
    auto prev = opts.on_result;
    opts.on_result = [prev, committed, limit](const mut::MutantResult& r) {
      if (prev) prev(r);
      if (committed->fetch_add(1, std::memory_order_relaxed) + 1 >= limit)
        std::raise(SIGSEGV);
    };
  }
  obs::PhaseProfiler profiler;
  obs::SpanCollector spans;
  if (want_spans) {
    profiler.attachSpans(&spans);
    telemetry->attachSpans(&spans);
    opts.profiler = &profiler;
  }

  std::vector<mut::Mutant> mutants;
  try {
    mutants = selectMutants(sel);
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "rvsym-mutate: %s\n", e.what());
    return 2;
  }

  // Cross-reference a crash bundle against the journal: name the
  // mutant(s) that were being judged when the previous run died, and
  // confirm the resume will re-judge them. The bundle's enumeration
  // indices are only meaningful under the same selection flags.
  if (!crash_bundle.empty()) {
    std::string err;
    const auto bundle = obs::analyze::loadCrashBundle(crash_bundle, &err);
    if (!bundle) {
      std::fprintf(stderr, "--crash-bundle: %s\n", err.c_str());
      return 2;
    }
    std::unordered_set<std::string> journal_judged;
    if (!opts.journal_path.empty()) {
      obs::analyze::JsonlStats scan;
      for (std::string& id : mut::judgedMutantIds(opts.journal_path, &scan))
        journal_judged.insert(std::move(id));
      const std::string warn = scan.describe(opts.journal_path);
      if (!warn.empty()) std::printf("  %s\n", warn.c_str());
    }
    std::printf("crash bundle %s: %s, %llu mutants judged at dump time\n",
                crash_bundle.c_str(),
                bundle->reason.empty() ? "?" : bundle->reason.c_str(),
                static_cast<unsigned long long>(bundle->journal_judged));
    const auto inflight = obs::analyze::inFlightMutants(*bundle);
    if (inflight.empty())
      std::printf("  no mutant was mid-judgement when the bundle was "
                  "written\n");
    for (const auto& m : inflight) {
      if (m.enum_index >= mutants.size()) {
        std::printf("  in flight: #%llu (%s…) on %s — index outside this "
                    "selection; rerun with the crashed campaign's flags\n",
                    static_cast<unsigned long long>(m.enum_index),
                    m.id_prefix.c_str(), m.thread.c_str());
        continue;
      }
      const std::string& id = mutants[m.enum_index].id();
      if (id.compare(0, m.id_prefix.size(), m.id_prefix) != 0) {
        std::printf("  in flight: #%llu (%s…) on %s — does not match %s; "
                    "selection flags differ from the crashed campaign\n",
                    static_cast<unsigned long long>(m.enum_index),
                    m.id_prefix.c_str(), m.thread.c_str(), id.c_str());
        continue;
      }
      std::printf("  in flight: %s (#%llu, thread %s) — %s\n", id.c_str(),
                  static_cast<unsigned long long>(m.enum_index),
                  m.thread.c_str(),
                  journal_judged.count(id)
                      ? "already in the journal, will be skipped"
                      : "not in the journal, this resume re-judges it");
    }
  }

  // Live sampler: one thread snapshotting the registry into the
  // timeseries stream / status file while the campaign runs.
  obs::TimeseriesOptions ts;
  ts.out_path = timeseries_out;
  ts.status_path = status_file;
  ts.interval_s = sample_interval;
  ts.kind = "mutate";
  ts.total_work = mutants.size();
  obs::TimeseriesSampler sampler(ts, registry);
  if (!timeseries_out.empty() || !status_file.empty()) {
    std::string err;
    if (!sampler.start(&err)) {
      std::fprintf(stderr, "rvsym-mutate: %s\n", err.c_str());
      return 2;
    }
  }

  mut::CampaignRunner runner(opts);
  const mut::CampaignReport report = runner.run(mutants);
  sampler.stop();

  if (want_spans) {
    if (!spans.writeChromeTrace(trace_events_out))
      std::fprintf(stderr, "cannot write --trace-events-out file '%s'\n",
                   trace_events_out.c_str());
    else
      std::printf("wrote %zu trace-event spans to %s\n", spans.size(),
                  trace_events_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::JsonWriter w;
    w.beginObject();
    w.key("campaign").beginObject();
    w.field("mutants", static_cast<std::uint64_t>(mutants.size()));
    w.field("killed", report.killed);
    w.field("survived", report.survived);
    w.field("equivalent", report.equivalent);
    w.field("skipped", report.skipped);
    w.field("score", report.mutationScore());
    w.endObject();
    w.key("metrics").rawValue(registry.toJson());
    w.endObject();
    std::ofstream out(metrics_out, std::ios::binary);
    out << w.str() << "\n";
    if (!out)
      std::fprintf(stderr, "cannot write --metrics-out file '%s'\n",
                   metrics_out.c_str());
  }

  std::printf(
      "%zu mutants: %llu killed, %llu survived, %llu equivalent, "
      "%llu skipped (resumed)\n",
      mutants.size(), static_cast<unsigned long long>(report.killed),
      static_cast<unsigned long long>(report.survived),
      static_cast<unsigned long long>(report.equivalent),
      static_cast<unsigned long long>(report.skipped));
  if (report.killed + report.survived != 0)
    std::printf("mutation score: %.1f%%\n", 100.0 * report.mutationScore());
  else if (report.skipped != 0)
    std::printf("no new verdicts (journal already complete); see "
                "`rvsym-mutate report` for the score\n");
  for (const mut::MutantResult& r : report.results)
    if (r.verdict == mut::Verdict::Survived)
      std::printf("  survivor: %-24s %s\n", r.mutant.id().c_str(),
                  r.mutant.description().c_str());
  const std::uint64_t q = report.qcache_hits + report.qcache_misses;
  if (q != 0)
    std::printf("query cache: %llu hits / %llu misses (%.1f%%)\n",
                static_cast<unsigned long long>(report.qcache_hits),
                static_cast<unsigned long long>(report.qcache_misses),
                100.0 * static_cast<double>(report.qcache_hits) /
                    static_cast<double>(q));

  if (!html_path.empty()) {
    if (opts.journal_path.empty()) {
      std::fprintf(stderr, "--html needs --journal (it renders the journal)\n");
      return 2;
    }
    const auto journal =
        obs::analyze::loadMutationJournal(opts.journal_path);
    if (!journal || !obs::analyze::writeMutationHtml(html_path, *journal)) {
      std::fprintf(stderr, "cannot write %s\n", html_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", html_path.c_str());
  }
  return 0;
}

int cmdReport(const std::vector<std::string>& args) {
  std::string journal_path, html_path, metrics_out;
  bool heartbeat = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--html" && i + 1 < args.size()) html_path = args[++i];
    else if (args[i] == "--metrics-out" && i + 1 < args.size())
      metrics_out = args[++i];
    else if (args[i] == "--heartbeat") heartbeat = true;
    else if (journal_path.empty() && args[i][0] != '-') journal_path = args[i];
    else return usage();
  }
  if (journal_path.empty()) return usage();
  std::string err;
  const auto journal = obs::analyze::loadMutationJournal(journal_path, &err);
  if (!journal) {
    std::fprintf(stderr, "rvsym-mutate: %s\n", err.c_str());
    return 1;
  }
  const obs::analyze::MutationSummary s =
      obs::analyze::summarizeMutationJournal(*journal);
  std::printf("journal: %zu judged of %llu declared (scenario %s, "
              "instruction limit %u)\n",
              journal->entries.size(),
              static_cast<unsigned long long>(journal->declared_mutants),
              journal->scenario.c_str(), journal->max_instr_limit);
  std::printf("mutation score: %.1f%% (%llu killed / %llu survived / "
              "%llu equivalent)\n",
              100.0 * s.mutationScore(),
              static_cast<unsigned long long>(s.killed),
              static_cast<unsigned long long>(s.survived),
              static_cast<unsigned long long>(s.equivalent));
  for (const obs::analyze::MutationEntry& e : journal->entries)
    if (e.verdict == "survived")
      std::printf("  survivor: %s\n", e.mutant.c_str());
  if (heartbeat) {
    // The same line a live campaign's --heartbeat prints, rebuilt from
    // the journal — greps written against live logs work offline too.
    obs::HeartbeatSnapshot hb;
    hb.has_campaign = true;
    hb.mutants_total = journal->declared_mutants;
    hb.mutants_judged = journal->entries.size();
    hb.mutants_killed = s.killed;
    hb.mutants_survived = s.survived;
    hb.mutants_equivalent = s.equivalent;
    obs::emitHeartbeatLine(hb, "report");
  }
  if (!metrics_out.empty()) {
    obs::JsonWriter w;
    w.beginObject();
    w.key("campaign").beginObject();
    w.field("declared", journal->declared_mutants);
    w.field("judged", static_cast<std::uint64_t>(journal->entries.size()));
    w.field("killed", s.killed);
    w.field("survived", s.survived);
    w.field("equivalent", s.equivalent);
    w.field("score", s.mutationScore());
    w.field("scenario", journal->scenario);
    w.field("max_instr_limit",
            static_cast<std::uint64_t>(journal->max_instr_limit));
    w.endObject();
    w.endObject();
    std::ofstream out(metrics_out, std::ios::binary);
    out << w.str() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write --metrics-out file '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  if (!html_path.empty()) {
    if (!obs::analyze::writeMutationHtml(html_path, *journal)) {
      std::fprintf(stderr, "cannot write %s\n", html_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", html_path.c_str());
  }
  return 0;
}

int cmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  std::string err;
  const auto a = obs::analyze::loadMutationJournal(args[0], &err);
  if (!a) {
    std::fprintf(stderr, "rvsym-mutate: %s\n", err.c_str());
    return 2;
  }
  const auto b = obs::analyze::loadMutationJournal(args[1], &err);
  if (!b) {
    std::fprintf(stderr, "rvsym-mutate: %s\n", err.c_str());
    return 2;
  }
  const std::vector<std::string> diffs =
      obs::analyze::diffMutationJournals(*a, *b);
  for (const std::string& d : diffs) std::printf("%s\n", d.c_str());
  std::printf("%s\n", diffs.empty() ? "journals identical" : "journals differ");
  return diffs.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "list") return cmdList(args);
  if (cmd == "run") return cmdRun(args, /*resume=*/false);
  if (cmd == "resume") return cmdRun(args, /*resume=*/true);
  if (cmd == "report") return cmdReport(args);
  if (cmd == "diff") return cmdDiff(args);
  return usage();
}
