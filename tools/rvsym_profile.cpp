// rvsym-profile — offline tooling over the slow-query corpus that
// solver telemetry dumps during a run (--slow-query-dir on
// rvsym-verify; solver/corpus.hpp documents the file format).
//
//   rvsym-profile replay <file-or-dir>...
//       Re-solves every q_*.query file from scratch on the current
//       solver and compares the verdict against the one recorded when
//       the query was dumped. Prints per-query timing (recorded vs
//       replayed) so solver changes can be judged on the exact queries
//       that were slow. Exit 1 when any verdict diverges (a recorded
//       Sat/Unsat is a semantic fact — divergence means a solver bug),
//       2 on unreadable input.
//
//   rvsym-profile shrink <file> [--out FILE]
//       ddmin over the query's constraint conjuncts: finds a 1-minimal
//       subset that still replays to the recorded verdict and writes it
//       back in corpus format (default: <file>.min). The shrunken
//       query keeps the original assumption and verdict, so it replays
//       standalone.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "expr/builder.hpp"
#include "solver/corpus.hpp"

namespace {

using namespace rvsym;
namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s replay <file-or-dir>...\n"
               "       %s shrink <file> [--out FILE]\n",
               argv0, argv0);
  return 2;
}

/// Expands directories to the q_*.query files inside them.
std::vector<std::string> collectQueryFiles(
    const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const fs::directory_entry& e : fs::directory_iterator(arg, ec))
        if (e.path().extension() == ".query")
          files.push_back(e.path().string());
    } else {
      files.push_back(arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmdReplay(const std::vector<std::string>& args) {
  const std::vector<std::string> files = collectQueryFiles(args);
  if (files.empty()) {
    std::fprintf(stderr, "no .query files found\n");
    return 2;
  }
  std::printf("%-38s %-8s %-8s %12s %12s  %s\n", "query", "recorded",
              "replayed", "was[us]", "now[us]", "verdict");
  int mismatches = 0, errors = 0;
  for (const std::string& path : files) {
    expr::ExprBuilder eb;  // fresh builder per query: no cross-talk
    std::string err;
    const auto q = solver::loadQueryFile(eb, path, &err);
    const std::string base = fs::path(path).filename().string();
    if (!q) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
      ++errors;
      continue;
    }
    std::uint64_t now_us = 0;
    const solver::CheckResult got = solver::replayQuery(eb, *q, &now_us);
    // Unknown was never dumped by telemetry (budget artifact), so any
    // recorded verdict is a semantic fact the replay must reproduce.
    const bool match = got == q->verdict;
    if (!match) ++mismatches;
    std::printf("%-38s %-8s %-8s %12llu %12llu  %s\n", base.c_str(),
                solver::verdictName(q->verdict), solver::verdictName(got),
                static_cast<unsigned long long>(q->sat_us),
                static_cast<unsigned long long>(now_us),
                match ? "ok" : "MISMATCH");
  }
  std::printf("%zu queries, %d verdict mismatches, %d unreadable\n",
              files.size(), mismatches, errors);
  if (errors) return 2;
  return mismatches == 0 ? 0 : 1;
}

int cmdShrink(const std::vector<std::string>& args) {
  std::string path;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size())
      out_path = args[++i];
    else if (path.empty())
      path = args[i];
    else {
      std::fprintf(stderr, "unexpected argument: %s\n", args[i].c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "shrink requires a query file\n");
    return 2;
  }
  if (out_path.empty()) out_path = path + ".min";

  expr::ExprBuilder eb;
  std::string err;
  const auto q = solver::loadQueryFile(eb, path, &err);
  if (!q) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  std::uint64_t replays = 0;
  const std::vector<expr::ExprRef> minimal =
      solver::ddminConstraints(eb, *q, &replays);

  solver::CorpusQuery reduced = *q;
  reduced.constraints = minimal;
  reduced.nodes = solver::countUniqueNodes([&] {
    std::vector<expr::ExprRef> roots = minimal;
    if (reduced.assumption) roots.push_back(reduced.assumption);
    return roots;
  }());
  const std::string text = solver::formatQuery(reduced);
  if (text.empty()) {
    std::fprintf(stderr, "cannot serialize reduced query\n");
    return 2;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  out << text;
  out.close();
  std::printf("%s: %zu -> %zu constraints (%llu replay solves), wrote %s\n",
              path.c_str(), q->constraints.size(), minimal.size(),
              static_cast<unsigned long long>(replays), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "replay") return cmdReplay(args);
  if (cmd == "shrink") return cmdShrink(args);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return usage(argv[0]);
}
