// rvsym-profile — offline tooling over the slow-query corpus that
// solver telemetry dumps during a run (--slow-query-dir on
// rvsym-verify; solver/corpus.hpp documents the file format).
//
//   rvsym-profile replay [--solver-opt S] [--metrics-out FILE]
//                        [--heartbeat SECS] <file-or-dir>...
//       Re-solves every q_*.query file from scratch on the current
//       solver and compares the verdict against the one recorded when
//       the query was dumped. Prints per-query timing (recorded vs
//       replayed) so solver changes can be judged on the exact queries
//       that were slow. With --solver-opt, replays through the layered
//       acceleration pipeline (caches shared across the corpus) and
//       reports which layer answered each query — the offline ablation
//       console for DESIGN.md §10. Exit 1 when any verdict diverges (a
//       recorded Sat/Unsat is a semantic fact — divergence means a
//       solver bug), 2 on unreadable input.
//
//   rvsym-profile shrink <file> [--out FILE]
//       ddmin over the query's constraint conjuncts: finds a 1-minimal
//       subset that still replays to the recorded verdict and writes it
//       back in corpus format (default: <file>.min). The shrunken
//       query keeps the original assumption and verdict, so it replays
//       standalone.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "expr/builder.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "solver/corpus.hpp"
#include "solver/options.hpp"

namespace {

using namespace rvsym;
namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s replay [--solver-opt S] [--metrics-out FILE]\n"
               "                 [--heartbeat SECS] [--crash-dir DIR]\n"
               "                 [--stall-timeout SECS] <file-or-dir>...\n"
               "       %s shrink <file> [--out FILE]\n"
               "\n"
               "--solver-opt S: replay through the layered acceleration\n"
               "pipeline (S = all | none | csv of cex,cores,rewrite,slice)\n"
               "with caches shared across the corpus, and report which\n"
               "layer answered each query.\n"
               "--metrics-out: dump replay totals + the solver latency\n"
               "histogram as one JSON document; --heartbeat: progress\n"
               "lines on stderr during long corpus sweeps.\n",
               argv0, argv0);
  return 2;
}

/// Expands directories to the q_*.query files inside them.
std::vector<std::string> collectQueryFiles(
    const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const fs::directory_entry& e : fs::directory_iterator(arg, ec))
        if (e.path().extension() == ".query")
          files.push_back(e.path().string());
    } else {
      files.push_back(arg);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmdReplay(const std::vector<std::string>& args) {
  bool accel = false;
  solver::SolverOptions sopt = solver::SolverOptions::none();
  std::vector<std::string> inputs;
  std::string metrics_out;
  std::string crash_dir;
  double heartbeat_s = 0;
  double stall_timeout = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--solver-opt" && i + 1 < args.size()) {
      std::string err;
      if (!solver::parseSolverOpt(args[++i], &sopt, &err)) {
        std::fprintf(stderr, "--solver-opt: %s\n", err.c_str());
        return 2;
      }
      accel = true;
    } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
      metrics_out = args[++i];
    } else if (args[i] == "--heartbeat" && i + 1 < args.size()) {
      heartbeat_s = std::atof(args[++i].c_str());
    } else if (args[i] == "--crash-dir" && i + 1 < args.size()) {
      crash_dir = args[++i];
    } else if (args[i] == "--stall-timeout" && i + 1 < args.size()) {
      stall_timeout = std::atof(args[++i].c_str());
    } else {
      inputs.push_back(args[i]);
    }
  }
#ifdef RVSYM_OBS_NO_TRACING
  if (!crash_dir.empty() || stall_timeout > 0) {
    std::fprintf(stderr,
                 "--crash-dir/--stall-timeout need crash forensics, which "
                 "this build compiled out (RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
#endif
  if (stall_timeout > 0 && crash_dir.empty()) {
    std::fprintf(stderr, "--stall-timeout requires --crash-dir\n");
    return 2;
  }
  const std::vector<std::string> files = collectQueryFiles(inputs);
  if (files.empty()) {
    std::fprintf(stderr, "no .query files found\n");
    return 2;
  }

  // Accelerated sweep: one builder/hasher and caches shared across the
  // whole corpus — the offline stand-in for a live run's cross-path
  // reuse. (The hasher memoizes by node pointer, so it must share the
  // builder's lifetime; hence one builder for all queries here, vs. the
  // fresh-per-query builder of the plain path below.)
  expr::ExprBuilder shared_eb;
  solver::CanonicalHasher shared_hasher;
  solver::QueryCache shared_qc;
  solver::CexCache shared_cex;
  solver::ReplayOptions ropts;
  ropts.solver_opt = sopt;
  ropts.query_cache = &shared_qc;
  ropts.cex_cache = sopt.cex_cache ? &shared_cex : nullptr;
  ropts.hasher = &shared_hasher;

  std::printf("%-38s %-8s %-8s %12s %12s  %-9s %s\n", "query", "recorded",
              "replayed", "was[us]", "now[us]", accel ? "via" : "", "verdict");
  int mismatches = 0, errors = 0;
  std::uint64_t was_total = 0, now_total = 0;
  std::map<std::string, int> via_counts;

  // Replay times feed the standard solver.check_us histogram so the
  // shared heartbeat helper renders the same percentiles a live run's
  // line shows.
  obs::MetricsRegistry registry;

  // Crash forensics over the sweep: a replay wedged on one query gets a
  // stall bundle naming the query file (the Mark events below).
  obs::flightrec::ForensicsSession forensics;
  if (!crash_dir.empty()) {
    obs::flightrec::ForensicsOptions fo;
    fo.crash_dir = crash_dir;
    fo.stall_timeout_s = stall_timeout;
    fo.tool = "rvsym-profile";
    std::string ferr;
    if (!forensics.install(fo, &ferr)) {
      std::fprintf(stderr, "--crash-dir: %s\n", ferr.c_str());
      return 2;
    }
    obs::flightrec::setForensicsMetrics(&registry);
    obs::flightrec::setThreadName("replay");
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  auto next_heartbeat = sweep_start + std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(heartbeat_s));
  std::size_t replayed = 0;
  for (const std::string& path : files) {
    expr::ExprBuilder local_eb;  // plain path: fresh builder, no cross-talk
    expr::ExprBuilder& eb = accel ? shared_eb : local_eb;
    std::string err;
    const auto q = solver::loadQueryFile(eb, path, &err);
    const std::string base = fs::path(path).filename().string();
    if (!q) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
      ++errors;
      continue;
    }
    std::uint64_t now_us = 0;
    solver::CheckResult got;
    const char* via = "";
    obs::flightrec::emit(obs::flightrec::EventKind::Mark, replayed,
                         q->constraints.size(), 0, base.c_str());
    obs::flightrec::busyBegin();
    if (accel) {
      const solver::ReplayOutcome out = solver::replayQueryOpt(eb, *q, ropts);
      got = out.verdict;
      now_us = out.solve_us;
      via = out.via;
      ++via_counts[via];
    } else {
      got = solver::replayQuery(eb, *q, &now_us);
    }
    obs::flightrec::busyEnd();
    // Unknown was never dumped by telemetry (budget artifact), so any
    // recorded verdict is a semantic fact the replay must reproduce.
    const bool match = got == q->verdict;
    if (!match) ++mismatches;
    was_total += q->sat_us;
    now_total += now_us;
    std::printf("%-38s %-8s %-8s %12llu %12llu  %-9s %s\n", base.c_str(),
                solver::verdictName(q->verdict), solver::verdictName(got),
                static_cast<unsigned long long>(q->sat_us),
                static_cast<unsigned long long>(now_us), via,
                match ? "ok" : "MISMATCH");

    registry.histogram("solver.check_us").record(now_us);
    ++replayed;
    if (heartbeat_s > 0 &&
        std::chrono::steady_clock::now() >= next_heartbeat) {
      obs::HeartbeatSnapshot hb;
      hb.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sweep_start)
                         .count();
      hb.has_work = true;
      hb.work_label = "queries";
      hb.work_done = replayed;
      hb.work_total = files.size();
      hb.readRegistry(registry);
      if (mismatches) hb.extra = "MISMATCHES=" + std::to_string(mismatches);
      obs::emitHeartbeatLine(hb, "replay");
      next_heartbeat += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(heartbeat_s));
    }
  }
  std::printf("%zu queries, %d verdict mismatches, %d unreadable\n",
              files.size(), mismatches, errors);
  if (accel) {
    std::printf("solver-opt=%s: recorded %llu us, replayed %llu us;"
                " answered via",
                solver::solverOptName(sopt).c_str(),
                static_cast<unsigned long long>(was_total),
                static_cast<unsigned long long>(now_total));
    for (const auto& [name, count] : via_counts)
      std::printf(" %s=%d", name.c_str(), count);
    std::printf("\n");
  }
  if (!metrics_out.empty()) {
    obs::JsonWriter w;
    w.beginObject();
    w.key("replay").beginObject();
    w.field("queries", static_cast<std::uint64_t>(files.size()));
    w.field("mismatches", static_cast<std::uint64_t>(mismatches));
    w.field("unreadable", static_cast<std::uint64_t>(errors));
    w.field("recorded_us", was_total);
    w.field("replayed_us", now_total);
    if (accel) {
      w.field("solver_opt", solver::solverOptName(sopt));
      w.key("via").beginObject();
      for (const auto& [name, count] : via_counts)
        w.field(name, static_cast<std::uint64_t>(count));
      w.endObject();
    }
    w.endObject();
    w.key("metrics").rawValue(registry.toJson());
    w.endObject();
    std::ofstream out(metrics_out, std::ios::binary);
    out << w.str() << "\n";
    if (!out)
      std::fprintf(stderr, "cannot write --metrics-out file '%s'\n",
                   metrics_out.c_str());
  }
  if (errors) return 2;
  return mismatches == 0 ? 0 : 1;
}

int cmdShrink(const std::vector<std::string>& args) {
  std::string path;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size())
      out_path = args[++i];
    else if (path.empty())
      path = args[i];
    else {
      std::fprintf(stderr, "unexpected argument: %s\n", args[i].c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "shrink requires a query file\n");
    return 2;
  }
  if (out_path.empty()) out_path = path + ".min";

  expr::ExprBuilder eb;
  std::string err;
  const auto q = solver::loadQueryFile(eb, path, &err);
  if (!q) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  std::uint64_t replays = 0;
  const std::vector<expr::ExprRef> minimal =
      solver::ddminConstraints(eb, *q, &replays);

  solver::CorpusQuery reduced = *q;
  reduced.constraints = minimal;
  reduced.nodes = solver::countUniqueNodes([&] {
    std::vector<expr::ExprRef> roots = minimal;
    if (reduced.assumption) roots.push_back(reduced.assumption);
    return roots;
  }());
  const std::string text = solver::formatQuery(reduced);
  if (text.empty()) {
    std::fprintf(stderr, "cannot serialize reduced query\n");
    return 2;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  out << text;
  out.close();
  std::printf("%s: %zu -> %zu constraints (%llu replay solves), wrote %s\n",
              path.c_str(), q->constraints.size(), minimal.size(),
              static_cast<unsigned long long>(replays), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "replay") return cmdReplay(args);
  if (cmd == "shrink") return cmdShrink(args);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return usage(argv[0]);
}
