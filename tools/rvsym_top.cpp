// rvsym-top — live terminal monitor for a running verification or
// mutation campaign.
//
// Point it at the file another rvsym tool is writing:
//
//   rvsym-verify --paths 100000 --timeseries-out run.jsonl &
//   rvsym-top run.jsonl
//
//   rvsym-mutate run --all --status-file status.json &
//   rvsym-top status.json
//
// Both file shapes are auto-detected from the first record: an
// append-only rvsym-timeseries-v1 JSONL stream is tailed incrementally
// (only new bytes are read each refresh), an atomically rewritten
// --status-file object is re-read whole. The view refreshes in place
// (ANSI home+clear per frame): throughput, solver latency percentiles,
// cache hit rates, done-vs-remaining progress with a rate-based ETA.
// Exits when the stream's closing ts_final record arrives, the
// producer's file vanishes, or --once was asked.
//
// When stdout is not a terminal (piped into `tee`, a CI log, `watch`),
// the in-place redraw degrades to one compact status line per refresh —
// no ANSI escapes, grep-friendly. The progress bar also adapts to
// terminals narrower than the default 80 columns.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/ioctl.h>
#include <unistd.h>
#endif

#include "obs/analyze/jsonl.hpp"
#include "obs/analyze/timeseries.hpp"
#include "serve/client.hpp"

namespace {

using namespace rvsym::obs::analyze;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] FILE\n"
      "       %s [options] --connect EP\n"
      "  FILE               a --timeseries-out JSONL stream or a\n"
      "                     --status-file JSON object\n"
      "  --connect EP       poll a running rvsym-serve daemon instead\n"
      "                     (EP is unix:<path> or tcp:<port>)\n"
      "  --interval S       refresh every S seconds        (default 1)\n"
      "  --once             render one frame and exit\n"
      "  --no-clear         append frames instead of redrawing in place\n"
      "  --line             one compact status line per refresh\n"
      "                     (the default when stdout is not a terminal)\n"
      "  --help\n",
      argv0, argv0);
}

std::string bar(double fraction, std::size_t width) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const auto filled = static_cast<std::size_t>(fraction * width + 0.5);
  std::string out(filled, '#');
  out += std::string(width - filled, '.');
  return out;
}

/// Progress-bar width for the current terminal. The bar line carries
/// ~44 columns of counts and ETA around the bar itself; keep the whole
/// line within the terminal, with a 10-column floor so the bar stays
/// readable even in tiny panes.
std::size_t terminalBarWidth() {
  long cols = 0;
#if defined(TIOCGWINSZ) && !defined(_WIN32)
  winsize ws{};
  if (ioctl(fileno(stdout), TIOCGWINSZ, &ws) == 0 && ws.ws_col > 0)
    cols = ws.ws_col;
#endif
  if (cols <= 0)
    if (const char* env = std::getenv("COLUMNS")) cols = std::atol(env);
  if (cols <= 0) cols = 80;
  if (cols >= 84) return 40;
  return cols > 54 ? static_cast<std::size_t>(cols - 44) : 10;
}

std::string fmtEta(double seconds) {
  if (seconds < 0) return "-";
  char buf[32];
  if (seconds < 90)
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  else if (seconds < 5400)
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60);
  else
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600);
  return buf;
}

/// One compact status line — the non-tty / --line rendering. Everything
/// load-bearing from the frame, greppable, no escapes.
std::string renderLine(const TimeseriesRun& run, bool finished,
                       bool reconnecting) {
  std::string out = "rvsym-top";
  char buf[192];
  if (run.samples.empty())
    return out + (reconnecting ? ": [reconnecting]"
                               : ": waiting for samples...");
  const TimeseriesSample& s = run.samples.back();
  std::snprintf(buf, sizeof buf, " %s t=%.1fs",
                run.header.kind.empty() ? "?" : run.header.kind.c_str(),
                s.t_s);
  out += buf;
  const std::uint64_t done = s.done();
  std::uint64_t total = s.total();
  if (total == 0) total = run.header.total_work;
  if (total != 0) {
    const double frac = static_cast<double>(done) / static_cast<double>(total);
    const double rate = s.t_s > 0 ? static_cast<double>(done) / s.t_s : 0;
    const double eta = rate > 0 && total > done
                           ? static_cast<double>(total - done) / rate
                           : (total > done ? -1 : 0);
    std::snprintf(buf, sizeof buf, " %llu/%llu (%.1f%%) eta %s",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total), 100.0 * frac,
                  fmtEta(eta).c_str());
  } else {
    std::snprintf(buf, sizeof buf, " %llu done",
                  static_cast<unsigned long long>(done));
  }
  out += buf;
  if (s.has_campaign) {
    std::snprintf(buf, sizeof buf, " killed=%llu survived=%llu",
                  static_cast<unsigned long long>(s.mutants_killed),
                  static_cast<unsigned long long>(s.mutants_survived));
    out += buf;
  }
  if (s.has_solver && s.solver_solves != 0) {
    std::snprintf(buf, sizeof buf, " solver=%.0fqps p50=%lluus", s.solver_qps,
                  static_cast<unsigned long long>(s.p50_us));
    out += buf;
  }
  if (!s.extra.empty()) {
    out += ' ';
    out += s.extra;
  }
  if (finished)
    out += run.final_record->getBool("t_abnormal").value_or(false)
               ? " [crashed]"
               : " [finished]";
  if (reconnecting) out += " [reconnecting]";
  return out;
}

/// One rendered frame from everything parsed so far.
std::string renderFrame(const TimeseriesRun& run, bool finished,
                        std::size_t bar_width, bool reconnecting) {
  std::string out;
  char buf[256];
  const auto add = [&](const char* line) { out += line; out += '\n'; };

  if (run.samples.empty()) {
    add(reconnecting ? "rvsym-top: [reconnecting]"
                     : "rvsym-top: waiting for samples...");
    return out;
  }
  const TimeseriesSample& s = run.samples.back();

  const char* status =
      reconnecting
          ? "  [reconnecting]"
          : finished
                ? (run.final_record->getBool("t_abnormal").value_or(false)
                       ? "  [crashed]"
                       : "  [finished]")
                : "";
  std::snprintf(buf, sizeof buf, "rvsym-top — %s  t=%.1fs  sample #%llu%s",
                run.header.kind.empty() ? "?" : run.header.kind.c_str(),
                s.t_s, static_cast<unsigned long long>(s.seq), status);
  add(buf);

  // --- Progress + ETA ----------------------------------------------------
  const std::uint64_t done = s.done();
  std::uint64_t total = s.total();
  if (total == 0) total = run.header.total_work;
  if (total != 0) {
    const double frac =
        static_cast<double>(done) / static_cast<double>(total);
    const double rate = s.t_s > 0 ? static_cast<double>(done) / s.t_s : 0;
    const double eta =
        rate > 0 && total > done
            ? static_cast<double>(total - done) / rate
            : (total > done ? -1 : 0);
    std::snprintf(buf, sizeof buf, "  [%s] %llu/%llu (%.1f%%)  eta %s",
                  bar(frac, bar_width).c_str(),
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total), 100.0 * frac,
                  fmtEta(eta).c_str());
    add(buf);
  } else {
    std::snprintf(buf, sizeof buf, "  %llu done (open-ended)",
                  static_cast<unsigned long long>(done));
    add(buf);
  }

  if (s.has_paths) {
    std::snprintf(buf, sizeof buf,
                  "  paths  %llu committed: %llu ok, %llu err, %llu partial"
                  "  worklist %llu  instr %llu",
                  static_cast<unsigned long long>(s.paths_done),
                  static_cast<unsigned long long>(s.paths_completed),
                  static_cast<unsigned long long>(s.paths_errors),
                  static_cast<unsigned long long>(s.paths_partial),
                  static_cast<unsigned long long>(s.worklist),
                  static_cast<unsigned long long>(s.instr));
    add(buf);
  }
  if (s.has_campaign) {
    std::snprintf(buf, sizeof buf,
                  "  mutants %llu/%llu judged: %llu killed, %llu survived, "
                  "%llu equivalent",
                  static_cast<unsigned long long>(s.mutants_judged),
                  static_cast<unsigned long long>(s.mutants_total),
                  static_cast<unsigned long long>(s.mutants_killed),
                  static_cast<unsigned long long>(s.mutants_survived),
                  static_cast<unsigned long long>(s.mutants_equivalent));
    add(buf);
  }
  const std::uint64_t no_solve = s.answered_exact + s.answered_cexm +
                                 s.answered_cexc + s.answered_rw;
  // A registry with no solver traffic (e.g. the bench suite sampler)
  // still reports has_solver; keep the frame to the active sections.
  if (s.has_solver && no_solve + s.solver_solves != 0) {
    std::snprintf(buf, sizeof buf,
                  "  solver %.0f qps  p50/p90/p99 %llu/%llu/%llu us  "
                  "%llu solves  %llu slow",
                  s.solver_qps, static_cast<unsigned long long>(s.p50_us),
                  static_cast<unsigned long long>(s.p90_us),
                  static_cast<unsigned long long>(s.p99_us),
                  static_cast<unsigned long long>(s.solver_solves),
                  static_cast<unsigned long long>(s.slow));
    add(buf);
    const std::uint64_t checks = no_solve + s.solver_solves;
    if (checks != 0) {
      std::snprintf(
          buf, sizeof buf,
          "  cache  %.0f%% answered without solve "
          "(exact %llu, cexm %llu, cexc %llu, rw %llu; sliced %llu)",
          100.0 * static_cast<double>(no_solve) /
              static_cast<double>(checks),
          static_cast<unsigned long long>(s.answered_exact),
          static_cast<unsigned long long>(s.answered_cexm),
          static_cast<unsigned long long>(s.answered_cexc),
          static_cast<unsigned long long>(s.answered_rw),
          static_cast<unsigned long long>(s.answered_sliced));
      add(buf);
    }
    if (s.qcache_hits + s.qcache_misses != 0) {
      std::snprintf(buf, sizeof buf, "  qcache %llu hits / %llu misses",
                    static_cast<unsigned long long>(s.qcache_hits),
                    static_cast<unsigned long long>(s.qcache_misses));
      add(buf);
    }
  }
  if (!s.extra.empty()) {
    std::snprintf(buf, sizeof buf, "  %s", s.extra.c_str());
    add(buf);
  }
  return out;
}

/// Incremental tail state over a growing JSONL stream. The decoder
/// buffers a trailing partial line across polls; finish() is never
/// called — on a live stream an unterminated line is "not written
/// yet", not truncated.
struct Tail {
  std::string path;
  std::streamoff offset = 0;
  JsonlDecoder decoder;

  /// Reads any new complete lines into `run`. False when the file
  /// cannot be opened (producer gone / not created yet).
  bool poll(TimeseriesRun& run) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < offset) {
      // Truncated — the producer restarted; start over.
      offset = 0;
      decoder.reset();
      run = TimeseriesRun{};
      run.path = path;
    }
    if (size == offset) return true;
    in.seekg(offset);
    std::string chunk(static_cast<std::size_t>(size - offset), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    offset = size;
    decoder.feed(chunk, [&](std::string_view line, std::size_t, bool) {
      parseTimeseriesRecord(line, run);
    });
    return true;
  }
};

/// Daemon mode: ask a running rvsym-serve for one status record. The
/// reply is byte-compatible with a --status-file document, so it flows
/// through the same parser and renderers as the file modes.
bool pollDaemon(const rvsym::serve::Endpoint& ep, TimeseriesRun& run) {
  const auto reply =
      rvsym::serve::requestOnce(ep, "{\"cmd\":\"status_record\"}");
  if (!reply) return false;
  TimeseriesRun fresh;
  fresh.path = ep.spec();
  if (!parseTimeseriesRecord(*reply, fresh) || fresh.samples.empty())
    return true;
  run.header = fresh.header;
  run.samples = std::move(fresh.samples);
  return true;
}

/// Status-file mode: re-read the whole (atomically rewritten) object.
bool pollStatus(const std::string& path, TimeseriesRun& run) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  TimeseriesRun fresh;
  fresh.path = path;
  // A status file is one record; a half-written legacy (non-atomic)
  // file parses as an error and keeps the previous frame.
  if (!parseTimeseriesRecord(text, fresh) || fresh.samples.empty())
    return true;
  run.header = fresh.header;
  run.samples = std::move(fresh.samples);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  double interval = 1.0;
  bool once = false;
  bool clear = true;
#ifndef _WIN32
  // Piped output gets the compact one-line-per-refresh rendering by
  // default; --no-clear still forces full appended frames.
  bool line_mode = isatty(fileno(stdout)) == 0;
#else
  bool line_mode = false;
#endif

  std::string connect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval" && i + 1 < argc) interval = std::atof(argv[++i]);
    else if (arg == "--connect" && i + 1 < argc) connect = argv[++i];
    else if (arg == "--once") once = true;
    else if (arg == "--no-clear") { clear = false; line_mode = false; }
    else if (arg == "--line") line_mode = true;
    else if (arg == "--help") { usage(argv[0]); return 0; }
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (file.empty()) file = arg;
    else {
      std::fprintf(stderr, "extra argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (file.empty() == connect.empty()) {  // exactly one source
    usage(argv[0]);
    return 2;
  }
  if (interval <= 0) interval = 1.0;

  rvsym::serve::Endpoint ep;
  if (!connect.empty()) {
    std::string err;
    const auto parsed = rvsym::serve::parseEndpoint(connect, &err);
    if (!parsed) {
      std::fprintf(stderr, "rvsym-top: %s\n", err.c_str());
      return 2;
    }
    ep = *parsed;
  }

  // Mode detection: the first record of a stream is ts_header, a status
  // file is one "status" object. Until the file exists, keep probing.
  bool status_mode = false;
  if (connect.empty()) {
    std::ifstream in(file, std::ios::binary);
    std::string first;
    if (in && std::getline(in, first))
      status_mode = first.find("\"ev\":\"status\"") != std::string::npos;
  }

  TimeseriesRun run;
  run.path = connect.empty() ? file : ep.spec();
  Tail tail;
  tail.path = file;

  int missing_polls = 0;
  // Daemon mode never gives up on a dead endpoint: a campaign server
  // restart (crash, upgrade, kill -9 + resume) is routine, so the
  // monitor renders [reconnecting] and retries with capped exponential
  // backoff instead of exiting like the file modes do.
  unsigned backoff_exp = 0;
  constexpr double kMaxBackoffS = 30.0;
  for (;;) {
    const bool present = !connect.empty()
                             ? pollDaemon(ep, run)
                             : status_mode ? pollStatus(file, run)
                                           : tail.poll(run);
    if (!present && connect.empty() && ++missing_polls > 3 &&
        !run.samples.empty()) {
      std::fprintf(stderr, "rvsym-top: %s disappeared\n", file.c_str());
      return 1;
    }
    const bool reconnecting = !present && !connect.empty();
    if (present) backoff_exp = 0;
    const bool finished = run.final_record.has_value();

    if (line_mode) {
      std::fputs((renderLine(run, finished, reconnecting) + "\n").c_str(),
                 stdout);
    } else {
      const std::string frame =
          renderFrame(run, finished, terminalBarWidth(), reconnecting);
      if (clear && !once) std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(frame.c_str(), stdout);
      if (!clear && !once) std::fputs("\n", stdout);
    }
    std::fflush(stdout);

    if (once || finished) return 0;
    double sleep_s = interval;
    if (reconnecting) {
      sleep_s = interval * static_cast<double>(1u << backoff_exp);
      if (sleep_s < kMaxBackoffS && backoff_exp < 16) ++backoff_exp;
      if (sleep_s > kMaxBackoffS) sleep_s = kMaxBackoffS;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
  }
}
