// rvsym-bench — the unified benchmark harness.
//
//   rvsym-bench list
//       Prints the bench registry with suite membership.
//
//   rvsym-bench run [--suite smoke|all] [--all] [--only NAME[,NAME...]]
//                   [--repeats N] [--warmup N] [--bin-dir DIR]
//                   [--out FILE] [--work-dir DIR]
//                   [--timeseries-out FILE] [--status-file FILE]
//                   [--sample-interval S]
//       Runs the selected benches as subprocesses (warmup + timed
//       repeats each), collects every bench's self-report, and writes
//       one rvsym-bench-run-v1 document (default: BENCH_rvsym.json in
//       the current directory — run it from the repo root to get the
//       canonical location). Exit 0 iff every bench passed its own
//       claim checks. --timeseries-out / --status-file stream suite
//       progress (kind "bench") for a concurrent `rvsym-top`.
//
//   rvsym-bench compare --baseline FILE [--current FILE]
//                       [--threshold PCT]
//       Compares two run documents by median wall clock per bench.
//       Exit 1 when any bench regressed beyond the threshold (default
//       100% — current may take up to 2x baseline; wall-clock noise on
//       shared CI runners is large, the gate catches step-function
//       regressions), failed its claim checks, or disappeared.
//
// Bench binaries are discovered in <dir of argv[0]>/../bench — the
// build-tree layout (build/tools/rvsym-bench, build/bench/bench_*) —
// overridable with --bin-dir.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace {

using namespace rvsym;
namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list\n"
      "       %s run [--suite smoke|all] [--all] [--only NAME[,NAME...]]\n"
      "              [--repeats N] [--warmup N] [--bin-dir DIR]\n"
      "              [--out FILE] [--work-dir DIR]\n"
      "              [--timeseries-out FILE] [--status-file FILE]\n"
      "              [--sample-interval S] [--crash-dir DIR]\n"
      "              [--stall-timeout S]\n"
      "       %s compare --baseline FILE [--current FILE] "
      "[--threshold PCT]\n",
      argv0, argv0, argv0);
  return 2;
}

std::string defaultBinDir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::absolute(fs::path(argv0), ec);
  if (ec) return "bench";
  return (self.parent_path().parent_path() / "bench").string();
}

std::vector<std::string> splitNames(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmdList() {
  std::printf("%-18s %-24s %-6s %s\n", "name", "binary", "smoke", "kind");
  for (const bench::BenchSpec& spec : bench::allBenches())
    std::printf("%-18s %-24s %-6s %s\n", spec.name.c_str(), spec.exe.c_str(),
                spec.smoke ? "yes" : "no",
                spec.google_benchmark ? "google-benchmark" : "rvsym-bench-v1");
  return 0;
}

int cmdRun(int argc, char** argv, const char* argv0) {
  bench::RunOptions opts;
  opts.bin_dir = defaultBinDir(argv0);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      opts.suite = argv[++i];
    } else if (std::strcmp(argv[i], "--all") == 0) {
      opts.suite = "all";
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      opts.only = splitNames(argv[++i]);
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      opts.repeats = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      opts.warmup = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--bin-dir") == 0 && i + 1 < argc) {
      opts.bin_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--work-dir") == 0 && i + 1 < argc) {
      opts.work_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries-out") == 0 && i + 1 < argc) {
      opts.timeseries_out = argv[++i];
    } else if (std::strcmp(argv[i], "--status-file") == 0 && i + 1 < argc) {
      opts.status_file = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-interval") == 0 && i + 1 < argc) {
      opts.sample_interval_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--crash-dir") == 0 && i + 1 < argc) {
      opts.crash_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--stall-timeout") == 0 && i + 1 < argc) {
      opts.stall_timeout_s = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown run option: %s\n", argv[i]);
      return usage(argv0);
    }
  }
  if (opts.suite != "smoke" && opts.suite != "all") {
    std::fprintf(stderr, "unknown suite '%s' (use smoke or all)\n",
                 opts.suite.c_str());
    return 2;
  }
  if (opts.repeats == 0) {
    std::fprintf(stderr, "--repeats must be >= 1\n");
    return 2;
  }
#ifdef RVSYM_OBS_NO_TRACING
  if (!opts.timeseries_out.empty() || !opts.status_file.empty()) {
    std::fprintf(stderr,
                 "--timeseries-out/--status-file need tracing, which this "
                 "build compiled out (RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
  if (!opts.crash_dir.empty() || opts.stall_timeout_s > 0) {
    std::fprintf(stderr,
                 "--crash-dir/--stall-timeout need crash forensics, which "
                 "this build compiled out (RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
#endif
  if (opts.stall_timeout_s > 0 && opts.crash_dir.empty()) {
    std::fprintf(stderr, "--stall-timeout requires --crash-dir\n");
    return 2;
  }
  return bench::runSuite(opts);
}

int cmdCompare(int argc, char** argv, const char* argv0) {
  std::string baseline;
  std::string current = "BENCH_rvsym.json";
  double threshold = 100.0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
      baseline = argv[++i];
    else if (std::strcmp(argv[i], "--current") == 0 && i + 1 < argc)
      current = argv[++i];
    else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc)
      threshold = std::atof(argv[++i]);
    else {
      std::fprintf(stderr, "unknown compare option: %s\n", argv[i]);
      return usage(argv0);
    }
  }
  if (baseline.empty()) {
    std::fprintf(stderr, "compare requires --baseline FILE\n");
    return usage(argv0);
  }
  return bench::compareRuns(current, baseline, threshold);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "list") return cmdList();
  if (cmd == "run") return cmdRun(argc - 2, argv + 2, argv[0]);
  if (cmd == "compare") return cmdCompare(argc - 2, argv + 2, argv[0]);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return usage(argv[0]);
}
