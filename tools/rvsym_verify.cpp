// rvsym-verify — the command-line front end of the verification flow:
// the tool a downstream user runs instead of writing C++ against the
// library. It wires scenario selection, fault injection, engine
// configuration, finding classification, coverage reporting and test-
// vector export into one binary.
//
//   rvsym-verify                         # audit the authentic MicroRV32/VP pair
//   rvsym-verify --fault E5              # hunt one injected error (fixed DUT)
//   rvsym-verify --mode fuzz --fault E3  # random-testing baseline
//   rvsym-verify --mode hybrid --fault X0
//   rvsym-verify --scenario system --limit 2 --paths 3000
//   rvsym-verify --ktest-dir out/       # export the generated test set
//   rvsym-verify --fault E5 --repro-dir out/ --trace-out run.jsonl
//   rvsym-verify --replay out/bundle-000   # re-run a mismatch bundle
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/coverage.hpp"
#include "core/session.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "fuzz/hybrid.hpp"
#include "obs/bundle.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"
#include "rv32/instr.hpp"
#include "solver/options.hpp"
#include "solver/telemetry.hpp"
#include "symex/ktest.hpp"

namespace {

using namespace rvsym;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --mode MODE        symbolic | fuzz | hybrid      (default symbolic)\n"
      "  --fault ID         inject E0..E9 / X0..X1 or a mutation-space id\n"
      "                     (e.g. dec:slli:b25, see rvsym-mutate list)\n"
      "  --scenario S       all | rv32i | system | opcode=0xNN | csr=0xNNN\n"
      "  --limit N          instruction limit              (default 1)\n"
      "  --regs N           symbolic registers             (default 2)\n"
      "  --paths N          path budget                    (default 2000)\n"
      "  --seconds S        wall-clock budget              (default 60)\n"
      "  --searcher S       dfs | bfs | random             (default dfs)\n"
      "  --jobs N           parallel exploration workers   (default 1)\n"
      "  --solver-opt S     solver acceleration layers: all | none | csv of\n"
      "                     cex,cores,rewrite,slice        (default all)\n"
      "  --stop-on-error    stop at the first mismatch\n"
      "  --monitor          enable the RVFI self-consistency monitor\n"
      "  --ktest-dir DIR    export every test vector\n"
      "  --coverage         print test-set coverage\n"
      "  --trace-out FILE   JSONL path-lifecycle event trace\n"
      "  --metrics-out FILE engine report + metrics registry as JSON\n"
      "  --heartbeat S      stderr progress line every S seconds\n"
      "  --timeseries-out F append rvsym-timeseries-v1 JSONL samples\n"
      "                     (watch live with rvsym-top)\n"
      "  --status-file F    atomically rewrite the latest sample as one\n"
      "                     JSON object every interval\n"
      "  --sample-interval S  sampling interval in seconds (default 0.5)\n"
      "  --trace-events-out F Chrome Trace Event JSON (phase + solver\n"
      "                     spans, one track per worker; open in Perfetto)\n"
      "  --profile-out FILE flamegraph-compatible folded phase stacks\n"
      "  --slow-query-dir D dump solver queries slower than the threshold\n"
      "                     as a replayable corpus (see rvsym-profile)\n"
      "  --slow-query-us N  slow-query threshold in microseconds\n"
      "                     (default 10000)\n"
      "  --repro-dir DIR    dump a repro bundle per voter mismatch\n"
      "  --replay BUNDLE    re-run a repro bundle concretely and exit\n"
      "  --crash-dir DIR    arm crash forensics: fatal signals and SIGUSR1\n"
      "                     dump a rvsym-crash-v1 bundle here (render with\n"
      "                     rvsym-report crash)\n"
      "  --stall-timeout S  with --crash-dir: dump a bundle when a worker\n"
      "                     makes no progress for S seconds (run continues)\n"
      "  --help\n",
      argv0);
}

/// --replay mode: everything the run needs is inside the bundle.
int runReplay(const std::string& bundle_dir) {
  const auto manifest = obs::loadBundleManifest(bundle_dir);
  if (!manifest) {
    std::fprintf(stderr, "cannot load bundle manifest in %s\n",
                 bundle_dir.c_str());
    return 2;
  }
  std::printf("replaying %s (fault=%s scenario=%s limit=%u regs=%u)\n",
              bundle_dir.c_str(),
              manifest->fault_id.empty() ? "-" : manifest->fault_id.c_str(),
              manifest->scenario.c_str(), manifest->instr_limit,
              manifest->num_symbolic_regs);
  std::printf("recorded: %s\n", manifest->message.c_str());

  const auto result = obs::replayBundle(bundle_dir);
  if (!result) {
    std::fprintf(stderr, "cannot replay bundle (missing test.rvtest?)\n");
    return 2;
  }
  if (!result->reproduced) {
    std::printf("replay:   no mismatch — NOT reproduced\n");
    return 1;
  }
  std::printf("replay:   %s\n", result->message.c_str());
  std::printf("verdict:  %s\n", result->verdict_matches
                                    ? "reproduced on the recorded channel"
                                    : "mismatch on a DIFFERENT channel");
  return result->verdict_matches ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "symbolic";
  std::string fault_id;
  std::string scenario = "all";
  std::string searcher = "dfs";
  std::string solver_opt_spec = "all";
  std::string ktest_dir;
  std::string trace_out, metrics_out, repro_dir, replay_dir;
  std::string profile_out, slow_query_dir;
  std::string timeseries_out, status_file, trace_events_out;
  std::string crash_dir;
  double stall_timeout = 0;
  unsigned limit = 1, regs = 2, jobs = 1;
  std::uint64_t paths = 2000;
  std::uint64_t slow_query_us = 10000;
  double seconds = 60;
  double heartbeat = 0;
  double sample_interval = 0.5;
  bool stop_on_error = false;
  bool want_coverage = false;
  bool monitor = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--mode") mode = value();
    else if (arg == "--fault") fault_id = value();
    else if (arg == "--scenario") scenario = value();
    else if (arg == "--limit") limit = static_cast<unsigned>(std::atoi(value()));
    else if (arg == "--regs") regs = static_cast<unsigned>(std::atoi(value()));
    else if (arg == "--paths") paths = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--seconds") seconds = std::atof(value());
    else if (arg == "--searcher") searcher = value();
    else if (arg == "--jobs") jobs = static_cast<unsigned>(std::atoi(value()));
    else if (arg == "--solver-opt") solver_opt_spec = value();
    else if (arg == "--ktest-dir") ktest_dir = value();
    else if (arg == "--trace-out") trace_out = value();
    else if (arg == "--metrics-out") metrics_out = value();
    else if (arg == "--heartbeat") heartbeat = std::atof(value());
    else if (arg == "--timeseries-out") timeseries_out = value();
    else if (arg == "--status-file") status_file = value();
    else if (arg == "--sample-interval") sample_interval = std::atof(value());
    else if (arg == "--trace-events-out") trace_events_out = value();
    else if (arg == "--profile-out") profile_out = value();
    else if (arg == "--slow-query-dir") slow_query_dir = value();
    else if (arg == "--slow-query-us")
      slow_query_us = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--repro-dir") repro_dir = value();
    else if (arg == "--replay") replay_dir = value();
    else if (arg == "--crash-dir") crash_dir = value();
    else if (arg == "--stall-timeout") stall_timeout = std::atof(value());
    else if (arg == "--stop-on-error") stop_on_error = true;
    else if (arg == "--coverage") want_coverage = true;
    else if (arg == "--monitor") monitor = true;
    else if (arg == "--help") { usage(argv[0]); return 0; }
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

#ifdef RVSYM_OBS_NO_TRACING
  if (!timeseries_out.empty() || !status_file.empty() ||
      !trace_events_out.empty()) {
    std::fprintf(stderr,
                 "--timeseries-out/--status-file/--trace-events-out need "
                 "tracing, which this build compiled out "
                 "(RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
  if (!crash_dir.empty() || stall_timeout > 0) {
    std::fprintf(stderr,
                 "--crash-dir/--stall-timeout need crash forensics, which "
                 "this build compiled out (RVSYM_DISABLE_TRACING)\n");
    return 2;
  }
#endif
  if (stall_timeout > 0 && crash_dir.empty()) {
    std::fprintf(stderr, "--stall-timeout requires --crash-dir\n");
    return 2;
  }

  if (!replay_dir.empty()) return runReplay(replay_dir);

  solver::SolverOptions solver_opt;
  {
    std::string err;
    if (!solver::parseSolverOpt(solver_opt_spec, &solver_opt, &err)) {
      std::fprintf(stderr, "--solver-opt: %s\n", err.c_str());
      return 2;
    }
  }

  // --- Build the co-simulation configuration ------------------------------
  core::CosimConfig cfg;
  if (!fault_id.empty()) {
    cfg.rtl = rtl::fixedRtlConfig();
    cfg.iss.csr = iss::CsrConfig::specCorrect();
    try {
      // Paper ids resolve through the registry, anything else as a
      // mutation-space id — the same vocabulary bundle replay accepts.
      fault::errorById(fault_id).apply(cfg);
    } catch (const std::out_of_range&) {
      try {
        mut::mutantById(fault_id).apply(cfg);
      } catch (const std::out_of_range& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    }
    stop_on_error = true;
  }
  cfg.instr_limit = limit;
  cfg.num_symbolic_regs = regs;
  cfg.enable_rvfi_monitor = monitor;

  if (scenario == "rv32i" || !fault_id.empty())
    cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  else if (scenario == "system")
    cfg.instr_constraint = core::CoSimulation::onlySystemInstructions();
  else if (scenario.rfind("opcode=", 0) == 0)
    cfg.instr_constraint = core::CoSimulation::onlyMajorOpcode(
        static_cast<std::uint32_t>(std::strtoul(scenario.c_str() + 7, nullptr, 0)));
  else if (scenario.rfind("csr=", 0) == 0)
    cfg.instr_constraint = core::CoSimulation::onlyCsrAddress(
        static_cast<std::uint16_t>(std::strtoul(scenario.c_str() + 4, nullptr, 0)));
  else if (scenario != "all") {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }

  // --- Fuzz / hybrid modes ---------------------------------------------------
  if (mode == "fuzz") {
    fuzz::FuzzOptions fopts;
    fopts.max_seconds = seconds;
    fopts.max_tests = 0;
    fopts.instr_limit = limit;
    fuzz::CosimFuzzer fuzzer;
    const fuzz::FuzzReport r = fuzzer.run(cfg, fopts);
    std::printf("fuzzing: %llu tests in %.2fs — %s\n",
                static_cast<unsigned long long>(r.tests), r.seconds,
                r.found ? "MISMATCH FOUND" : "no mismatch");
    if (r.found)
      std::printf("  %s\n  witness: %s\n", r.mismatch_message.c_str(),
                  rv32::disassemble(r.witness_instr).c_str());
    return r.found ? 0 : 1;
  }
  if (mode == "hybrid") {
    expr::ExprBuilder eb;
    fuzz::HybridOptions hopts;
    hopts.symex.max_seconds = seconds;
    hopts.symex.max_paths = paths;
    const fuzz::HybridReport r = fuzz::runHybrid(eb, cfg, hopts);
    std::printf("hybrid: fuzz %llu tests (%.2fs), symex %llu paths (%.2fs)\n",
                static_cast<unsigned long long>(r.fuzz_tests), r.fuzz_seconds,
                static_cast<unsigned long long>(r.symex_paths),
                r.symex_seconds);
    switch (r.found_by) {
      case fuzz::HybridReport::FoundBy::Fuzzing:
        std::printf("MISMATCH FOUND by fuzzing phase: %s\n", r.message.c_str());
        break;
      case fuzz::HybridReport::FoundBy::Symbolic:
        std::printf("MISMATCH FOUND by symbolic phase: %s\n",
                    r.message.c_str());
        break;
      case fuzz::HybridReport::FoundBy::None:
        std::printf("no mismatch within budget\n");
        break;
    }
    return r.found() ? 0 : 1;
  }
  if (mode != "symbolic") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  // --- Observability ------------------------------------------------------
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_out);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot open --trace-out file '%s'\n",
                   trace_out.c_str());
      return 2;
    }
  }
  const bool want_metrics = !metrics_out.empty();
  // The live surfaces (sampler, status file, crash bundles) read the same
  // registry the --metrics-out dump serializes, so any of them turns it on.
  const bool want_registry = want_metrics || !timeseries_out.empty() ||
                             !status_file.empty() || !crash_dir.empty();
  const bool want_spans = !trace_events_out.empty();

  // Solver telemetry: per-query timing into the registry plus the
  // slow-query corpus. On whenever a consumer exists (it implies
  // per-check solver timing, so keep it off for plain runs).
  std::unique_ptr<solver::SolverTelemetry> telemetry;
  if (!slow_query_dir.empty() || want_registry || want_spans ||
      !crash_dir.empty()) {
    solver::SolverTelemetry::Options topts;
    topts.corpus_dir = slow_query_dir;
    topts.slow_query_us = slow_query_us;
    telemetry = std::make_unique<solver::SolverTelemetry>(std::move(topts));
    if (want_registry) telemetry->attachMetrics(registry);
  }

  // Crash forensics: flight recorder + fatal/SIGUSR1 handlers + stall
  // watchdog. The RAII session detaches the registry pointer and restores
  // signal dispositions before main returns.
  obs::flightrec::ForensicsSession forensics;
  if (!crash_dir.empty()) {
    obs::flightrec::ForensicsOptions fo;
    fo.crash_dir = crash_dir;
    fo.stall_timeout_s = stall_timeout;
    fo.tool = "rvsym-verify";
    std::string err;
    if (!forensics.install(fo, &err)) {
      std::fprintf(stderr, "--crash-dir: %s\n", err.c_str());
      return 2;
    }
    obs::flightrec::setForensicsMetrics(&registry);
    obs::flightrec::setThreadName("main");
    if (telemetry) telemetry->enableInFlightCapture(true);
  }
  obs::PhaseProfiler profiler;
  obs::SpanCollector spans;
  if (want_spans) {
    // Phase spans (one per profiler frame) + per-query solver spans,
    // each on its recording thread's track.
    profiler.attachSpans(&spans);
    if (telemetry) telemetry->attachSpans(&spans);
  }

  // --- Symbolic verification session -------------------------------------------
  expr::ExprBuilder eb;
  core::SessionOptions options;
  options.cosim = cfg;
  if (want_registry) options.cosim.metrics = &registry;
  options.engine.max_paths = paths;
  options.engine.max_seconds = seconds;
  options.engine.stop_on_error = stop_on_error;
  options.engine.jobs = jobs == 0 ? 1 : jobs;
  options.engine.solver_opt = solver_opt;
  options.engine.trace = trace_sink.get();
  if (want_registry) options.engine.metrics = &registry;
  options.engine.heartbeat_seconds = heartbeat;
  options.engine.telemetry = telemetry.get();
  if (!profile_out.empty() || want_spans)
    options.engine.profiler = &profiler;
  if (searcher == "bfs")
    options.engine.searcher = symex::EngineOptions::Searcher::Bfs;
  else if (searcher == "random")
    options.engine.searcher = symex::EngineOptions::Searcher::Random;
  else if (searcher != "dfs") {
    std::fprintf(stderr, "unknown searcher '%s'\n", searcher.c_str());
    return 2;
  }

  obs::TimeseriesOptions ts_opts;
  ts_opts.out_path = timeseries_out;
  ts_opts.status_path = status_file;
  ts_opts.interval_s = sample_interval;
  ts_opts.kind = "verify";
  ts_opts.total_work = paths;
  obs::TimeseriesSampler sampler(ts_opts, registry);
  if (!timeseries_out.empty() || !status_file.empty()) {
    std::string err;
    if (!sampler.start(&err)) {
      std::fprintf(stderr, "timeseries sampler: %s\n", err.c_str());
      return 2;
    }
  }

  core::VerificationSession session(eb, options);
  const core::SessionReport report = session.run();
  sampler.stop();

  if (want_spans) {
    if (!spans.writeChromeTrace(trace_events_out))
      std::fprintf(stderr, "cannot write --trace-events-out file '%s'\n",
                   trace_events_out.c_str());
    else
      std::printf("wrote %zu trace-event spans to %s\n", spans.size(),
                  trace_events_out.c_str());
  }

  std::printf("explored %llu paths (%llu completed, %llu partial) — "
              "%llu instructions, %.2fs, %llu test vectors\n",
              static_cast<unsigned long long>(report.engine.totalPaths()),
              static_cast<unsigned long long>(report.engine.completed_paths),
              static_cast<unsigned long long>(report.engine.partialPaths()),
              static_cast<unsigned long long>(report.engine.instructions),
              report.engine.seconds,
              static_cast<unsigned long long>(report.engine.test_vectors));
  if (jobs > 1)
    std::printf("workers: %u — query cache: %llu hits / %llu misses\n", jobs,
                static_cast<unsigned long long>(report.engine.qcache_hits),
                static_cast<unsigned long long>(report.engine.qcache_misses));

  if (!report.findings.empty())
    std::printf("\n%s\n", core::renderFindingsTable(report.findings).c_str());
  else
    std::printf("no mismatches found\n");

  if (telemetry && !slow_query_dir.empty())
    std::printf("solver telemetry: %llu queries, %llu slow (> %llu us), "
                "%llu dumped to %s/\n",
                static_cast<unsigned long long>(telemetry->queries()),
                static_cast<unsigned long long>(telemetry->slowQueries()),
                static_cast<unsigned long long>(slow_query_us),
                static_cast<unsigned long long>(telemetry->dumpedQueries()),
                slow_query_dir.c_str());

  if (!profile_out.empty()) {
    std::ofstream out(profile_out, std::ios::binary);
    out << profiler.folded();
    if (!out)
      std::fprintf(stderr, "cannot write --profile-out file '%s'\n",
                   profile_out.c_str());
    else
      std::printf("wrote folded phase stacks to %s (%zu distinct stacks)\n",
                  profile_out.c_str(), profiler.distinctStacks());
  }

  if (want_coverage) {
    core::CoverageCollector cov;
    cov.addReport(report.engine);
    std::printf("\n%s", cov.summary().c_str());
  }
  if (!ktest_dir.empty()) {
    const std::size_t n =
        symex::exportReportVectors(report.engine, ktest_dir);
    std::printf("\nexported %zu test vectors to %s/\n", n, ktest_dir.c_str());
  }

  if (want_metrics) {
    // One document, one serializer: the engine report plus the registry.
    obs::JsonWriter w;
    w.beginObject();
    w.key("report").rawValue(symex::reportToJson(report.engine));
    w.key("metrics").rawValue(registry.toJson());
    w.endObject();
    std::ofstream out(metrics_out, std::ios::binary);
    out << w.str() << "\n";
    if (!out)
      std::fprintf(stderr, "cannot write --metrics-out file '%s'\n",
                   metrics_out.c_str());
  }

  if (!repro_dir.empty()) {
    obs::BundleDescriptor base;
    base.fault_id = fault_id;
    // The fault path forces the RV32I scenario above; record what the
    // run actually constrained, not what was asked for.
    base.scenario = fault_id.empty() ? scenario : "rv32i";
    base.instr_limit = limit;
    base.num_symbolic_regs = regs;
    const std::size_t n =
        obs::writeReportBundles(repro_dir, base, report.engine);
    std::printf("wrote %zu repro bundle%s to %s/\n", n, n == 1 ? "" : "s",
                repro_dir.c_str());
  }
  return fault_id.empty() ? 0 : (report.engine.error_paths > 0 ? 0 : 1);
}
