// Engine micro-benchmarks (google-benchmark): the building blocks whose
// cost determines how far the symbolic co-simulation scales — expression
// construction, SAT-backed feasibility checks, concrete ISS/RTL
// execution speed, one full co-simulation path, and the known-bits
// fast-path ablation.
#include <benchmark/benchmark.h>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "iss/iss.hpp"
#include "rtl/core.hpp"
#include "rv32/encode.hpp"
#include "solver/solver.hpp"
#include "symex/engine.hpp"
#include "symex/parallel.hpp"

#include <memory>

namespace {

using namespace rvsym;

// --- Expression layer -------------------------------------------------------

void BM_ExprBuildAdd32(benchmark::State& state) {
  expr::ExprBuilder eb;
  auto x = eb.variable("x", 32);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eb.add(x, eb.constant(i++ & 0xFFFF, 32)));
  }
}
BENCHMARK(BM_ExprBuildAdd32);

void BM_ExprInterningHit(benchmark::State& state) {
  expr::ExprBuilder eb;
  auto x = eb.variable("x", 32);
  auto y = eb.variable("y", 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eb.add(x, y));  // always the same node
  }
}
BENCHMARK(BM_ExprInterningHit);

void BM_ExprEvaluateDeepDag(benchmark::State& state) {
  expr::ExprBuilder eb;
  auto x = eb.variable("x", 64);
  expr::ExprRef e = x;
  for (int i = 0; i < 64; ++i) e = eb.add(e, e);
  expr::Assignment asg;
  asg.set(x->variableId(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::evaluate(e, asg));
  }
}
BENCHMARK(BM_ExprEvaluateDeepDag);

// --- Solver layer -------------------------------------------------------------

void BM_SolverDecoderQuery(benchmark::State& state) {
  // The hot co-simulation query shape: is `instr & mask == match`
  // feasible under a handful of prior field constraints?
  for (auto _ : state) {
    state.PauseTiming();
    expr::ExprBuilder eb;
    solver::PathSolver ps(eb);
    auto instr = eb.variable("instr", 32);
    ps.addConstraint(eb.eq(eb.extract(instr, 0, 7), eb.constant(0x33, 7)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        ps.check(eb.eq(eb.andOp(instr, eb.constant(0xFE00707Fu, 32)),
                       eb.constant(0x33u, 32))));
  }
}
BENCHMARK(BM_SolverDecoderQuery);

void BM_SolverArithmeticInversion(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    expr::ExprBuilder eb;
    solver::PathSolver ps(eb);
    auto x = eb.variable("x", 32);
    state.ResumeTiming();
    ps.addConstraint(
        eb.eq(eb.mul(x, eb.constant(3, 32)), eb.constant(0x99, 32)));
    benchmark::DoNotOptimize(ps.model());
  }
}
BENCHMARK(BM_SolverArithmeticInversion);

// --- Processor models (concrete execution speed) --------------------------------

void BM_IssConcreteStep(benchmark::State& state) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  core::SymbolicInstrMemory imem([](symex::ExecState& s,
                                    const expr::ExprRef& w) {
    s.assume(s.builder().eqConst(w, rv32::enc::addi(1, 1, 1)));
  });
  core::InitialImage image;
  core::SymbolicDataMemory dmem(image);
  iss::IssConfig cfg;
  cfg.csr = iss::CsrConfig::specCorrect();
  iss::Iss iss(eb, imem, dmem, cfg);
  // Loop in place so the fetch cache stays warm.
  for (auto _ : state) {
    iss.setPc(eb.constant(0x80000000, 32));
    benchmark::DoNotOptimize(iss.step(st));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IssConcreteStep);

void BM_RtlConcreteInstruction(benchmark::State& state) {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});
  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  const expr::ExprRef insn = eb.constant(rv32::enc::addi(1, 1, 1), 32);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    core.setPc(eb.constant(0x80000000, 32));
    bool retired = false;
    while (!retired) {
      core.tick(st);
      ++cycles;
      if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
        core.ibus.instruction = insn;
        core.ibus.instruction_ready = true;
      } else if (!core.ibus.fetch_enable) {
        core.ibus.instruction_ready = false;
      }
      retired = core.rvfi.valid;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles_per_instr"] =
      benchmark::Counter(static_cast<double>(cycles) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RtlConcreteInstruction);

// --- Full co-simulation -----------------------------------------------------------

void BM_CosimSymbolicExploration(benchmark::State& state) {
  // One bounded symbolic exploration of the authentic pair per iteration.
  for (auto _ : state) {
    expr::ExprBuilder eb;
    core::CosimConfig cfg;
    cfg.instr_limit = 1;
    symex::EngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = static_cast<std::uint64_t>(state.range(0));
    opts.collect_test_vectors = false;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    benchmark::DoNotOptimize(engine.run(cosim.program()));
  }
}
BENCHMARK(BM_CosimSymbolicExploration)->Arg(25)->Arg(100);

void BM_KnownBitsAblation(benchmark::State& state) {
  // The same exploration with / without the known-bits fast path;
  // range(0)==1 enables it.
  const bool use_kb = state.range(0) != 0;
  for (auto _ : state) {
    expr::ExprBuilder eb;
    core::CosimConfig cfg;
    cfg.instr_limit = 1;
    symex::EngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = 50;
    opts.use_known_bits = use_kb;
    opts.collect_test_vectors = false;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    const auto report = engine.run(cosim.program());
    state.counters["solver_checks"] =
        benchmark::Counter(static_cast<double>(report.solver_checks));
    state.counters["knownbits_hits"] =
        benchmark::Counter(static_cast<double>(report.knownbits_decided));
  }
}
BENCHMARK(BM_KnownBitsAblation)->Arg(1)->Arg(0);

void BM_ParallelExplorationJobs(benchmark::State& state) {
  // Jobs-scaling: the same bounded exploration on range(0) workers.
  // The committer hands out path prefixes in sequential searcher order,
  // so path/instruction counts are identical for every jobs value; only
  // wall-clock and cache traffic change.
  const unsigned jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    core::CosimConfig cfg;
    cfg.instr_limit = 1;
    symex::ParallelEngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = 100;
    opts.collect_test_vectors = false;
    opts.jobs = jobs;
    symex::ParallelEngine engine(opts);
    const auto report = engine.run([&cfg](symex::WorkerContext& ctx) {
      auto cosim = std::make_shared<core::CoSimulation>(ctx.builder, cfg);
      return [cosim](symex::ExecState& st) { cosim->runPath(st); };
    });
    state.counters["paths"] =
        benchmark::Counter(static_cast<double>(report.totalPaths()));
    state.counters["qcache_hits"] =
        benchmark::Counter(static_cast<double>(report.qcache_hits));
  }
}
BENCHMARK(BM_ParallelExplorationJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
