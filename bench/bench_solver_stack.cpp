// Ablation for the layered solver-acceleration stack (DESIGN.md §10):
// counterexample caching, UNSAT-core subsumption, pre-bitblast rewrite
// and independent-constraint slicing, each individually toggled via
// SolverOptions so the contribution of every layer is isolated.
//
// Two claims are checked per configuration:
//   * soundness/determinism — the engine report (path counts, decision-
//     stage counters, solver checks, per-path decisions and test
//     vectors) is byte-identical to the --solver-opt=none baseline: the
//     layers change how verdicts are obtained, never which;
//   * acceleration — the full stack answers a substantial share of
//     checks without a SAT solve (the per-layer disposition counters
//     are reported per row).
//
// Workload: the Table II-style free exploration (RV32I scenario,
// instruction limit 1, fixed path budget) plus one E5 hunt — the same
// solver traffic shape the paper's runs generate.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "solver/options.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

core::CosimConfig baseConfig() {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.num_symbolic_regs = 2;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  return cfg;
}

struct ConfigRun {
  std::string spec;
  symex::EngineReport report;
  symex::EngineReport hunt;  ///< the E5 hunt's report
  std::uint64_t solver_us = 0;
  std::uint64_t sat_solves = 0;  ///< checks that reached the SAT solver
  std::uint64_t cex_model = 0, cex_core = 0, rewrites = 0, sliced = 0;
};

ConfigRun runConfig(const std::string& spec) {
  ConfigRun r;
  r.spec = spec;
  solver::SolverOptions sopt;
  std::string err;
  if (!solver::parseSolverOpt(spec, &sopt, &err)) {
    std::fprintf(stderr, "bad spec %s: %s\n", spec.c_str(), err.c_str());
    std::exit(2);
  }
  obs::MetricsRegistry reg;

  {  // Free exploration.
    expr::ExprBuilder eb;
    core::CosimConfig cfg = baseConfig();
    symex::EngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = 400;
    opts.max_seconds = 120;
    opts.solver_opt = sopt;
    opts.metrics = &reg;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    r.report = engine.run(cosim.program());
  }
  {  // E5 hunt (stop at the mismatch).
    expr::ExprBuilder eb;
    core::CosimConfig cfg = baseConfig();
    fault::errorById("E5").apply(cfg);
    symex::EngineOptions opts;
    opts.stop_on_error = true;
    opts.max_paths = 3000;
    opts.max_seconds = 60;
    opts.solver_opt = sopt;
    opts.metrics = &reg;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    r.hunt = engine.run(cosim.program());
  }

  for (const symex::PathRecord& p : r.report.paths) r.solver_us += p.solver_us;
  for (const symex::PathRecord& p : r.hunt.paths) r.solver_us += p.solver_us;
  r.sat_solves = reg.histogram("solver.check_us").count();
  r.cex_model = reg.counter("solver.cex_model_hits").get();
  r.cex_core = reg.counter("solver.cex_core_hits").get();
  r.rewrites = reg.counter("solver.rewrite_decided").get();
  r.sliced = reg.counter("solver.sliced_solves").get();
  return r;
}

/// Deterministic-report equality: every field of the EngineReport
/// contract except the timing-dependent ones (seconds, qcache_*,
/// solver_us). Mirrors what the --jobs parity tests compare.
bool sameReport(const symex::EngineReport& a, const symex::EngineReport& b,
                std::string* why) {
  const auto fail = [&](const char* field) {
    if (why) *why = field;
    return false;
  };
  if (a.completed_paths != b.completed_paths) return fail("completed_paths");
  if (a.error_paths != b.error_paths) return fail("error_paths");
  if (a.infeasible_paths != b.infeasible_paths)
    return fail("infeasible_paths");
  if (a.limited_paths != b.limited_paths) return fail("limited_paths");
  if (a.unexplored_forks != b.unexplored_forks)
    return fail("unexplored_forks");
  if (a.instructions != b.instructions) return fail("instructions");
  if (a.test_vectors != b.test_vectors) return fail("test_vectors");
  if (a.branches != b.branches) return fail("branches");
  if (a.const_decided != b.const_decided) return fail("const_decided");
  if (a.knownbits_decided != b.knownbits_decided)
    return fail("knownbits_decided");
  if (a.solver_decided != b.solver_decided) return fail("solver_decided");
  if (a.solver_checks != b.solver_checks) return fail("solver_checks");
  if (a.paths.size() != b.paths.size()) return fail("paths.size");
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    const symex::PathRecord& pa = a.paths[i];
    const symex::PathRecord& pb = b.paths[i];
    if (pa.end != pb.end) return fail("path.end");
    if (pa.decisions != pb.decisions) return fail("path.decisions");
    if (pa.has_test != pb.has_test) return fail("path.has_test");
    if (pa.test.values.size() != pb.test.values.size())
      return fail("path.test.size");
    for (std::size_t j = 0; j < pa.test.values.size(); ++j) {
      if (pa.test.values[j].name != pb.test.values[j].name ||
          pa.test.values[j].width != pb.test.values[j].width ||
          pa.test.values[j].value != pb.test.values[j].value)
        return fail("path.test.value");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("solver_stack");
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];

  const std::vector<std::string> specs = {"none",    "cex",   "cex,cores",
                                          "rewrite", "slice", "all"};

  std::printf("SOLVER ACCELERATION STACK — PER-LAYER ABLATION\n\n");
  std::printf("%-10s | %9s %9s | %8s %8s %8s %8s | %10s %9s\n", "layers",
              "checks", "solves", "cexm", "cexc", "rw", "sliced", "solver[us]",
              "time[s]");
  std::printf("%s\n", std::string(96, '-').c_str());

  obs::JsonWriter w;  // --out payload: one row per configuration
  w.beginObject();
  w.key("rows").beginArray();

  bool claims_ok = true;
  ConfigRun baseline;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ConfigRun r = runConfig(specs[i]);
    const double seconds = r.report.seconds + r.hunt.seconds;
    std::printf("%-10s | %9llu %9llu | %8llu %8llu %8llu %8llu | %10llu "
                "%9.3f\n",
                r.spec.c_str(),
                static_cast<unsigned long long>(r.report.solver_checks +
                                                r.hunt.solver_checks),
                static_cast<unsigned long long>(r.sat_solves),
                static_cast<unsigned long long>(r.cex_model),
                static_cast<unsigned long long>(r.cex_core),
                static_cast<unsigned long long>(r.rewrites),
                static_cast<unsigned long long>(r.sliced),
                static_cast<unsigned long long>(r.solver_us), seconds);

    if (i == 0) {
      baseline = r;
    } else {
      // The soundness claim: identical deterministic reports.
      std::string why;
      if (!sameReport(baseline.report, r.report, &why) ||
          !sameReport(baseline.hunt, r.hunt, &why)) {
        std::printf("  !! report diverges from none baseline at %s\n",
                    why.c_str());
        claims_ok = false;
      }
    }

    w.beginObject();
    w.field("solver_opt", r.spec);
    w.field("solver_checks", r.report.solver_checks + r.hunt.solver_checks);
    w.field("sat_solves", r.sat_solves);
    w.field("cex_model_hits", r.cex_model);
    w.field("cex_core_hits", r.cex_core);
    w.field("rewrite_decided", r.rewrites);
    w.field("sliced_solves", r.sliced);
    w.field("solver_us", r.solver_us);
    w.field("seconds", seconds);
    w.field("e5_found", r.hunt.error_paths > 0);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  std::printf(
      "\nclaims checked:\n"
      "  * every configuration reproduces the --solver-opt=none report\n"
      "    byte-for-byte (paths, decisions, test vectors) — the layers\n"
      "    are sound;\n"
      "  * per-layer disposition counters isolate each layer's share of\n"
      "    answered checks.\n");
  std::printf("%s\n", claims_ok ? "all claims hold" : "CLAIMS VIOLATED");

  if (!out_path.empty()) {
    reporter.param("configs", static_cast<std::uint64_t>(specs.size()))
        .param("claims_checked", std::string("report-parity-across-layers"))
        .counter("baseline_solver_us", baseline.solver_us)
        .ok(claims_ok)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  return claims_ok ? 0 : 1;
}
