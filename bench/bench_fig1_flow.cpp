// Regenerates Fig. 1 of the paper: the end-to-end tool flow. The figure
// is a diagram, not a measurement; this bench exercises each stage of
// the substitute flow and reports the per-stage cost so the pipeline
// structure is visible:
//
//   paper:  SpinalHDL --SBT--> Verilog --verilator--> RTL core (C++) -+
//           C++ ISS description --configurator--> ISS (C++)          -+-> LLVM --> KLEE
//   here:   processor configuration --> RTL core model + ISS model   -+
//           --> co-simulation binding --> symbolic execution engine --> test vectors
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cosim.hpp"
#include "core/session.hpp"
#include "expr/builder.hpp"
#include "harness/reporter.hpp"
#include "rv32/encode.hpp"

namespace {

using namespace rvsym;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fig1_flow");
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  std::printf("FIG. 1 — TOOL-FLOW STAGES (substitute flow, per-stage cost)\n\n");

  // Stage 1: processor configuration description.
  auto t0 = Clock::now();
  core::CosimConfig config;             // authentic MicroRV32 + VP
  config.instr_limit = 1;
  const double t_config = secondsSince(t0);

  // Stage 2: "SBT + verilator": elaborate the RTL core model and run one
  // concrete sanity instruction through it (the moral equivalent of
  // compiling the verilated core).
  t0 = Clock::now();
  expr::ExprBuilder eb;
  {
    symex::ExecState st(eb, {}, {});
    rtl::MicroRv32Core core(eb, config.rtl);
    core.regs().set(eb, 1, eb.constant(20, 32));
    core.regs().set(eb, 2, eb.constant(22, 32));
    bool retired = false;
    for (int i = 0; i < 50 && !retired; ++i) {
      core.tick(st);
      if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
        core.ibus.instruction = eb.constant(rv32::enc::add(3, 1, 2), 32);
        core.ibus.instruction_ready = true;
      }
      retired = core.rvfi.valid;
    }
    std::printf("  RTL core elaboration + smoke instruction: %s\n",
                retired ? "ok" : "FAILED");
  }
  const double t_rtl = secondsSince(t0);

  // Stage 3: "configurator": elaborate the ISS and run the same sanity
  // instruction.
  t0 = Clock::now();
  {
    symex::ExecState st(eb, {}, {});
    core::SymbolicInstrMemory imem([](symex::ExecState& s,
                                      const expr::ExprRef& w) {
      s.assume(s.builder().eqConst(w, rv32::enc::add(3, 1, 2)));
    });
    core::InitialImage image;
    core::SymbolicDataMemory dmem(image);
    iss::Iss iss(eb, imem, dmem, config.iss);
    iss.regs().set(eb, 1, eb.constant(20, 32));
    iss.regs().set(eb, 2, eb.constant(22, 32));
    const iss::RetireInfo r = iss.step(st);
    // The rd index is a field of the (assume-pinned) symbolic word, so the
    // register holds a mux expression; check semantically.
    const bool ok = !r.trap && st.mustBeTrue(eb.eq(iss.regs().get(3),
                                                   eb.constant(42, 32)));
    std::printf("  ISS elaboration + smoke instruction:      %s\n",
                ok ? "ok" : "FAILED");
  }
  const double t_iss = secondsSince(t0);

  // Stage 4: co-simulation binding (testbench main + voter + memories).
  t0 = Clock::now();
  core::CoSimulation cosim(eb, config);
  const double t_bind = secondsSince(t0);

  // Stage 5: symbolic execution (the KLEE box) — bounded exploration.
  t0 = Clock::now();
  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 300;
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());
  const double t_symex = secondsSince(t0);

  // Stage 6: test-vector emission.
  std::printf("  symbolic exploration:                     %llu paths, "
              "%llu mismatch paths\n",
              static_cast<unsigned long long>(report.totalPaths()),
              static_cast<unsigned long long>(report.error_paths));

  std::printf("\n%-44s %10s\n", "flow stage", "time [s]");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%-44s %10.4f\n", "processor configuration description", t_config);
  std::printf("%-44s %10.4f\n", "RTL core elaboration (SBT+verilator box)", t_rtl);
  std::printf("%-44s %10.4f\n", "ISS elaboration (configurator box)", t_iss);
  std::printf("%-44s %10.4f\n", "co-simulation binding (main/voter/memories)",
              t_bind);
  std::printf("%-44s %10.4f\n", "symbolic execution engine (KLEE box)", t_symex);
  std::printf("%-44s %10llu\n", "emitted test vectors",
              static_cast<unsigned long long>(report.test_vectors));

  const bool ok = report.error_paths > 0;  // the buggy core must yield findings
  if (!out_path.empty()) {
    reporter.metric("config_s", t_config)
        .metric("rtl_elaboration_s", t_rtl)
        .metric("iss_elaboration_s", t_iss)
        .metric("cosim_binding_s", t_bind)
        .metric("symex_s", t_symex)
        .counter("paths", report.totalPaths())
        .counter("error_paths", report.error_paths)
        .counter("test_vectors", report.test_vectors)
        .ok(ok);
    reporter.writeFile(out_path);
  }
  return ok ? 0 : 1;
}
