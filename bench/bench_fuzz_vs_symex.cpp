// Fuzzing baseline vs symbolic execution (the paper's motivating
// comparison, §I): "even a state-of-the-art fuzzing-based approach is
// still susceptible to miss corner case bugs ... the working solution to
// address the issue of finding corner-case bugs efficiently is by using
// the symbolic execution technique."
//
// Both engines drive the identical co-simulation testbench. For every
// injected error (E0-E9 plus the corner-case extension faults X0/X1) we
// report tests/time for the random baseline against paths/time for the
// symbolic engine. The expected shape: random testing finds the
// "broad" faults quickly but misses the single-value corner cases (X0:
// ADD wrong only for rs2 == 0xCAFEBABE; X1: BLT wrong only for
// rs1 == INT32_MIN), which the symbolic engine solves for directly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "fuzz/fuzzer.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "symex/parallel.hpp"

namespace {

using namespace rvsym;

unsigned g_jobs = 1;  // --jobs N: workers for the symbolic side

core::CosimConfig configFor(const fault::InjectedError& error) {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  error.apply(cfg);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("fuzz_vs_symex");
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      g_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  std::printf("FUZZING BASELINE vs SYMBOLIC EXECUTION\n");
  std::printf("(identical co-simulation testbench; budget: 60s or 300k "
              "random tests per error; symbolic workers: %u)\n\n",
              g_jobs);
  std::printf("%-5s %-42s | %-9s %9s %9s | %-9s %9s %9s\n", "", "", "fuzzing",
              "tests", "time[s]", "symbolic", "paths", "time[s]");
  std::printf("%s\n", std::string(110, '-').c_str());

  int fuzz_found = 0, symex_found = 0, total = 0;
  std::vector<const fault::InjectedError*> errors;
  for (const auto& e : fault::allErrors()) errors.push_back(&e);
  for (const auto& e : fault::extensionErrors()) errors.push_back(&e);

  obs::JsonWriter w;  // --out payload: one row per error
  w.beginObject();
  w.key("rows").beginArray();

  for (const fault::InjectedError* error : errors) {
    ++total;
    const core::CosimConfig cfg = configFor(*error);

    // Random baseline.
    fuzz::FuzzOptions fopts;
    fopts.max_tests = 300000;
    fopts.max_seconds = 60;
    fuzz::CosimFuzzer fuzzer;
    const fuzz::FuzzReport fr = fuzzer.run(cfg, fopts);
    fuzz_found += fr.found ? 1 : 0;

    // Symbolic engine (one co-sim harness per worker).
    symex::ParallelEngineOptions sopts;
    sopts.stop_on_error = true;
    sopts.max_seconds = 60;
    sopts.jobs = g_jobs;
    symex::ParallelEngine engine(sopts);
    const symex::EngineReport sr =
        engine.run([&cfg](symex::WorkerContext& ctx) {
          auto cosim = std::make_shared<core::CoSimulation>(ctx.builder, cfg);
          return [cosim](symex::ExecState& st) { cosim->runPath(st); };
        });
    symex_found += sr.error_paths > 0 ? 1 : 0;

    std::printf("%-5s %-42s | %-9s %9llu %9.2f | %-9s %9llu %9.3f\n",
                error->id, error->description,
                fr.found ? "found" : "MISSED",
                static_cast<unsigned long long>(fr.tests), fr.seconds,
                sr.error_paths > 0 ? "found" : "MISSED",
                static_cast<unsigned long long>(sr.totalPaths()), sr.seconds);

    w.beginObject();
    w.field("error", error->id);
    w.field("description", error->description);
    w.key("fuzz").beginObject();
    w.field("found", fr.found);
    w.field("tests", fr.tests);
    w.field("seconds", fr.seconds);
    w.endObject();
    w.key("symex").beginObject();
    w.field("found", sr.error_paths > 0);
    w.key("report").rawValue(symex::reportToJson(sr));
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.endObject();

  std::printf("%s\n", std::string(110, '-').c_str());
  std::printf("found: fuzzing %d/%d, symbolic %d/%d\n", fuzz_found, total,
              symex_found, total);
  std::printf(
      "\npaper claim checked: the random baseline misses the single-value\n"
      "corner-case faults (X0, X1) within its budget while the symbolic\n"
      "engine finds every fault, corner cases included.\n");

  if (!out_path.empty()) {
    reporter.param("jobs", g_jobs)
        .counter("errors", static_cast<std::uint64_t>(total))
        .counter("fuzz_found", static_cast<std::uint64_t>(fuzz_found))
        .counter("symex_found", static_cast<std::uint64_t>(symex_found))
        .ok(symex_found == total)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  return symex_found == total ? 0 : 1;
}
