// Regenerates Table I of the paper: the errors (E), ISS errors (E*) and
// implementation mismatches (M) found by symbolically co-simulating the
// authentic MicroRV32 configuration against the authentic RISC-V VP ISS
// configuration.
//
// The paper collected these findings "by continuously applying" the
// approach — i.e. across multiple runs with different scenario
// assumptions and after fixing earlier findings. This bench reproduces
// that as four passes:
//   1. unguided sweep at instruction limit 1 (alignment, WFI, CSR traps),
//   2. CSR-focused sweep at instruction limit 2 (stateful CSRs that only
//      diverge at read-back: mscratch, mcounteren, mhpm*),
//   3. counter-read pass with the trap-on-write bug fixed (surfaces the
//      "Cycle Count Mismatch" rows the trap otherwise shadows),
//   4. a second unguided sweep at limit 2 for leftovers.
// Findings are merged, deduplicated and checked against the expected
// paper rows.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "expr/builder.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "rv32/csr.hpp"

namespace {

using namespace rvsym;
using core::CosimConfig;
using core::CoSimulation;
using core::Finding;

unsigned g_jobs = 1;  // --jobs N: parallel exploration workers per pass

std::vector<Finding> runPass(const char* label, CosimConfig cfg,
                             std::uint64_t max_paths, double max_seconds,
                             symex::EngineReport* stats_out) {
  expr::ExprBuilder eb;
  core::SessionOptions options;
  options.cosim = std::move(cfg);
  options.engine.max_paths = max_paths;
  options.engine.max_seconds = max_seconds;
  options.engine.max_stored_paths = 1;  // keep memory flat; errors always kept
  options.engine.jobs = g_jobs;
  core::VerificationSession session(eb, options);
  core::SessionReport report = session.run();
  std::printf(
      "  pass %-28s: %5llu paths (%llu partial), %6llu instr, %6.2fs, "
      "%2zu findings\n",
      label, static_cast<unsigned long long>(report.engine.totalPaths()),
      static_cast<unsigned long long>(report.engine.partialPaths()),
      static_cast<unsigned long long>(report.engine.instructions),
      report.engine.seconds, report.findings.size());
  if (stats_out) *stats_out = report.engine;
  return std::move(report.findings);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("table1");
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      g_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  std::printf("TABLE I — CO-SIMULATION RESULTS (R): ERRORS (E) AND "
              "MISMATCHES (M) IN MICRORV32 AND THE VP (E*)\n");
  std::printf("(exploration workers: %u)\n\n", g_jobs);

  std::vector<Finding> all;
  std::set<std::string> seen;
  const auto merge = [&](std::vector<Finding> fs) {
    for (Finding& f : fs)
      if (seen.insert(f.key()).second) all.push_back(std::move(f));
  };

  // Pass 1: unguided, instruction limit 1.
  {
    CosimConfig cfg;
    cfg.instr_limit = 1;
    merge(runPass("unguided limit-1", std::move(cfg), 3000, 120, nullptr));
  }
  // Pass 2: CSR scenario, instruction limit 2 (stateful CSR read-back).
  {
    CosimConfig cfg;
    cfg.instr_limit = 2;
    cfg.instr_constraint = CoSimulation::onlySystemInstructions();
    merge(runPass("CSR-scenario limit-2", std::move(cfg), 4000, 180, nullptr));
  }
  // Pass 3: counter reads with the trap-on-write bug fixed, so the
  // deeper "Cycle Count Mismatch" behaviour becomes reachable.
  {
    CosimConfig cfg;
    cfg.instr_limit = 1;
    cfg.rtl.csr.trap_on_counter_write = false;  // "after the fix"
    cfg.instr_constraint = CoSimulation::onlySystemInstructions();
    merge(runPass("counters post-fix limit-1", std::move(cfg), 3000, 120,
                  nullptr));
  }
  // Pass 4: targeted stateful-CSR scenarios at instruction limit 2 —
  // CSRs whose divergence only shows at read-back (write is silently
  // dropped by the RTL core). One representative per Table I row family.
  {
    const std::uint16_t targets[] = {
        rv32::csr::kMscratch, rv32::csr::kMcounteren,
        0xB10,  /* mhpmcounter16  */
        0xB83,  /* mhpmcounter3h  */
        0x330,  /* mhpmevent16    */
        rv32::csr::kMinstret,
    };
    for (std::uint16_t target : targets) {
      CosimConfig cfg;
      cfg.instr_limit = 2;
      cfg.instr_constraint = CoSimulation::onlyCsrAddress(target);
      const char* name = rv32::csrName(target);
      merge(runPass(name ? name : "csr", std::move(cfg), 1500, 60, nullptr));
    }
  }
  // Pass 5: unguided, instruction limit 2 (leftover stateful behaviour).
  {
    CosimConfig cfg;
    cfg.instr_limit = 2;
    merge(runPass("unguided limit-2", std::move(cfg), 3000, 120, nullptr));
  }

  std::printf("\n%s\n", core::renderFindingsTable(all).c_str());

  // --- Paper comparison ------------------------------------------------------
  struct ExpectedRow {
    const char* subject;
    const char* description;
  };
  // The 21 distinct (subject, description) rows of Table I. (The paper
  // prints SHU for one store row — a typo for SB-class stores; our store
  // alignment rows are SB/SH/SW. mimpid is an extra id register of the
  // same class as marchid/mvendorid/mhartid.)
  const std::vector<ExpectedRow> expected{
      {"LW", "Missing alignment check"},
      {"LH", "Missing alignment check"},
      {"LHU", "Missing alignment check"},
      {"SW", "Missing alignment check"},
      {"SH", "Missing alignment check"},
      {"WFI", "Missing WFI instruction"},
      {"unimpl. CSRs", "Missing trap at access"},
      {"marchid", "Missing trap at write"},
      {"mvendorid", "Missing trap at write"},
      {"mhartid", "Missing trap at write"},
      {"medeleg", "VP traps at medeleg read"},
      {"mideleg", "VP traps at mideleg read"},
      {"mip", "Trap at write access"},
      {"mcycle", "Trap at write access"},
      {"mcycle", "Cycle Count Mismatch"},
      {"minstret", "Trap at write access"},
      {"minstret", "Cycle Count Mismatch"},
      {"mcycleh", "Trap at write access"},
      {"minstreth", "Trap at write access"},
      {"cycle", "unimpl. Unprivileged CSR"},
      {"cycleh", "unimpl. Unprivileged CSR"},
      {"instret", "unimpl. Unprivileged CSR"},
      {"instreth", "unimpl. Unprivileged CSR"},
      {"time", "unimpl. Unprivileged CSR"},
      {"timeh", "unimpl. Unprivileged CSR"},
      {"mhpmcounter3-31", "unimpl. Privileged CSR"},
      {"mhpmcounter3-31h", "unimpl. Privileged CSR"},
      {"mhpmevent3-31", "unimpl. Privileged CSR"},
      {"mscratch", "unimpl. Privileged CSR"},
      {"mcounteren", "unimpl. Privileged CSR"},
  };

  int reproduced = 0;
  std::vector<const ExpectedRow*> missing;
  for (const ExpectedRow& row : expected) {
    const std::string key = std::string(row.subject) + "|" + row.description;
    if (seen.count(key))
      ++reproduced;
    else
      missing.push_back(&row);
  }
  std::printf("paper rows reproduced: %d / %zu\n", reproduced,
              expected.size());
  for (const ExpectedRow* row : missing)
    std::printf("  MISSING: %-18s %s\n", row->subject, row->description);
  const int extras = static_cast<int>(all.size()) - reproduced;
  std::printf("additional findings beyond the paper's rows: %d\n", extras);

  if (!out_path.empty()) {
    // Machine-readable dump of the merged findings (shared schema —
    // subjects/descriptions can contain arbitrary text and stay valid).
    obs::JsonWriter w;
    w.beginObject();
    w.key("findings").beginArray();
    for (const Finding& f : all) {
      w.beginObject();
      w.field("subject", f.subject);
      w.field("example", f.example);
      w.field("description", f.description);
      w.field("class", f.r_class);
      w.field("voter_field", f.voter_field);
      w.endObject();
    }
    w.endArray();
    w.key("missing").beginArray();
    for (const ExpectedRow* row : missing) {
      w.beginObject();
      w.field("subject", row->subject);
      w.field("description", row->description);
      w.endObject();
    }
    w.endArray();
    w.endObject();
    reporter.param("jobs", g_jobs)
        .counter("paper_rows_reproduced", static_cast<std::uint64_t>(reproduced))
        .counter("paper_rows_expected",
                 static_cast<std::uint64_t>(expected.size()))
        .counter("findings", static_cast<std::uint64_t>(all.size()))
        .ok(missing.empty())
        .payload(w.str());
    reporter.writeFile(out_path);
  }

  return missing.empty() ? 0 : 1;
}
