// Ablation for the sliced symbolic registers (paper §IV-C.3 and §V-A):
// the paper argues that (a) making only the memory symbolic needs
// instruction traces of length >= 2 and misses register-dependent bugs
// at trace length 1, and (b) making the whole register bank symbolic
// blows up the state space ("a non-optimized symbolic execution requires
// more than 30 days of runtime"), while 2 symbolic registers suffice for
// RV32I.
//
// Measured here per slice size {0, 2, 4, 8, 16, 31}:
//   * whether the register-value-dependent injected error E4 (SUB
//     stuck-at bit) is found at instruction limit 1,
//   * exploration cost for a fixed free exploration budget
//     (paths / instructions / solver queries / time).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

core::CosimConfig baseConfig(unsigned num_symbolic_regs) {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.num_symbolic_regs = num_symbolic_regs;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ablation_slicing");
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  obs::JsonWriter w;  // --out payload: one row per slice size
  w.beginObject();
  w.key("rows").beginArray();
  // The paper's claim (§V-A): slice 0 hides the register-dependent
  // fault, slice >= 2 exposes it.
  bool claims_ok = true;
  std::printf("ABLATION — SLICED SYMBOLIC REGISTERS\n\n");
  std::printf("%-10s | %-12s %9s | %8s %9s %12s %9s\n", "symbolic",
              "E4 found?", "time[s]", "paths", "partial", "solver-chk",
              "time[s]");
  std::printf("%-10s | %-12s %9s | %8s %9s %12s %9s\n", "registers",
              "(limit 1)", "", "(free exploration, 600-path budget)", "", "",
              "");
  std::printf("%s\n", std::string(84, '-').c_str());

  for (unsigned slice : {0u, 2u, 4u, 8u, 16u, 31u}) {
    // Part A: does the slice expose the register-dependent fault E4?
    bool e4_found = false;
    double e4_time = 0;
    {
      expr::ExprBuilder eb;
      core::CosimConfig cfg = baseConfig(slice);
      fault::errorById("E4").apply(cfg);
      symex::EngineOptions opts;
      opts.stop_on_error = true;
      opts.max_paths = 3000;
      opts.max_seconds = 60;
      core::CoSimulation cosim(eb, cfg);
      symex::Engine engine(eb, opts);
      const auto report = engine.run(cosim.program());
      e4_found = report.error_paths > 0;
      e4_time = report.seconds;
    }

    // Part B: cost of a fixed-budget free exploration.
    expr::ExprBuilder eb;
    core::CosimConfig cfg = baseConfig(slice);
    symex::EngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = 600;
    opts.max_seconds = 120;
    opts.max_stored_paths = 1;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    const auto report = engine.run(cosim.program());

    std::printf("%-10u | %-12s %9.3f | %8llu %9llu %12llu %9.3f\n", slice,
                e4_found ? "found" : "NOT FOUND", e4_time,
                static_cast<unsigned long long>(report.totalPaths()),
                static_cast<unsigned long long>(report.partialPaths()),
                static_cast<unsigned long long>(report.solver_checks),
                report.seconds);
    claims_ok = claims_ok && (e4_found == (slice >= 2));
    w.beginObject();
    w.field("symbolic_regs", slice);
    w.field("e4_found", e4_found);
    w.field("e4_seconds", e4_time);
    w.field("paths", report.totalPaths());
    w.field("partial_paths", report.partialPaths());
    w.field("solver_checks", report.solver_checks);
    w.field("seconds", report.seconds);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  std::printf(
      "\npaper claims checked:\n"
      "  * slice 0 (memory-only symbolic): register-dependent faults are\n"
      "    invisible at trace length 1 (E4 NOT FOUND) — symbolic registers\n"
      "    avoid the need for length-2 traces;\n"
      "  * slice 2 suffices for RV32I (no instruction has more than two\n"
      "    source registers);\n"
      "  * larger slices only add exploration cost.\n");
  if (!out_path.empty()) {
    reporter.param("claims_checked", std::string("e4-visible-iff-slice>=2"))
        .ok(claims_ok)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  return 0;
}
