// Ablation for the execution controller's instruction limit (§V-B):
// "it is likely that the instruction limit should be set as low as
// possible and only increased incrementally". We sweep the limit over
// 1..4 for a representative subset of injected errors and report
// time-to-detection and exploration effort, plus the cost of exhausting
// a fixed path budget at each limit.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("ablation_limit");
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  obs::JsonWriter w;  // --out payload: one row per (error, limit)
  w.beginObject();
  w.key("rows").beginArray();
  unsigned hunts = 0, found_total = 0;
  std::printf("ABLATION — EXECUTION-CONTROLLER INSTRUCTION LIMIT\n\n");
  std::printf("%-7s %-7s | %-7s %12s %9s %9s %7s\n", "Error", "Limit",
              "Result", "#Exec.Instr.", "Time[s]", "Partial", "Paths");
  std::printf("%s\n", std::string(66, '-').c_str());

  for (const char* id : {"E0", "E4", "E6", "E9"}) {
    const fault::InjectedError& error = fault::errorById(id);
    for (unsigned limit = 1; limit <= 4; ++limit) {
      expr::ExprBuilder eb;
      core::CosimConfig cfg;
      cfg.rtl = rtl::fixedRtlConfig();
      cfg.iss.csr = iss::CsrConfig::specCorrect();
      cfg.instr_limit = limit;
      cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
      error.apply(cfg);

      symex::EngineOptions opts;
      opts.stop_on_error = true;
      opts.max_paths = 50000;
      opts.max_seconds = 120;
      core::CoSimulation cosim(eb, cfg);
      symex::Engine engine(eb, opts);
      const auto report = engine.run(cosim.program());

      std::printf("%-7s %-7u | %-7s %12llu %9.3f %9llu %7llu\n", id, limit,
                  report.error_paths > 0 ? "found" : "MISS",
                  static_cast<unsigned long long>(report.instructions),
                  report.seconds,
                  static_cast<unsigned long long>(report.partialPaths()),
                  static_cast<unsigned long long>(report.completed_paths));
      ++hunts;
      found_total += report.error_paths > 0 ? 1 : 0;
      w.beginObject();
      w.field("error", id);
      w.field("instr_limit", limit);
      w.field("found", report.error_paths > 0);
      w.field("instructions", report.instructions);
      w.field("partial_paths", report.partialPaths());
      w.field("completed_paths", report.completed_paths);
      w.field("seconds", report.seconds);
      w.endObject();
    }
    std::printf("%s\n", std::string(66, '-').c_str());
  }

  std::printf(
      "\npaper claim checked: detection cost grows with the instruction\n"
      "limit while every error is already found at limit 1 — keep the\n"
      "limit as low as possible and increase it incrementally.\n");
  w.endArray();
  w.endObject();
  if (!out_path.empty()) {
    reporter.counter("hunts", hunts)
        .counter("found", found_total)
        .ok(found_total == hunts)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  return 0;
}
