// Jobs-scaling benchmark for the parallel exploration engine: runs a
// fixed workload (the Table II E0-E9 hunt at instruction limit 1, plus
// an unguided limit-1 sweep) across a ladder of worker counts and
// emits both a human-readable table and a machine-readable JSON file
//
//   [{"workload": "...", "jobs": N, "seconds": S,
//     "paths": P, "cache_hits": H}, ...]
//
// for plotting / CI trend tracking. The committer hands out prefixes
// in sequential searcher order, so `paths` must be identical down each
// column — a free cross-check of the determinism guarantee that the
// table prints explicitly.
//
//   bench_scaling [--jobs-list 1,2,4,8] [--out bench_scaling.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "fault/faults.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "symex/parallel.hpp"

namespace {

using namespace rvsym;

struct Sample {
  std::string workload;
  unsigned jobs = 1;
  double seconds = 0;
  std::uint64_t paths = 0;
  std::uint64_t cache_hits = 0;
  bool found = false;
};

Sample runWorkload(const std::string& name, const core::CosimConfig& cfg,
                   bool stop_on_error, unsigned jobs) {
  symex::ParallelEngineOptions opts;
  opts.stop_on_error = stop_on_error;
  opts.max_seconds = 300;
  opts.max_paths = stop_on_error ? 200000 : 400;
  opts.collect_test_vectors = false;
  opts.jobs = jobs;

  symex::ParallelEngine engine(opts);
  const symex::EngineReport report =
      engine.run([&cfg](symex::WorkerContext& ctx) {
        auto cosim = std::make_shared<core::CoSimulation>(ctx.builder, cfg);
        return [cosim](symex::ExecState& st) { cosim->runPath(st); };
      });

  Sample s;
  s.workload = name;
  s.jobs = jobs;
  s.seconds = report.seconds;
  s.paths = report.totalPaths();
  s.cache_hits = report.qcache_hits;
  s.found = report.error_paths > 0;
  return s;
}

std::string samplesJson(const std::vector<Sample>& samples) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("samples").beginArray();
  for (const Sample& s : samples) {
    w.beginObject();
    w.field("workload", s.workload);
    w.field("jobs", s.jobs);
    w.field("seconds", s.seconds);
    w.field("paths", s.paths);
    w.field("cache_hits", s.cache_hits);
    w.field("found", s.found);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("scaling");
  std::vector<unsigned> jobs_list{1, 2, 4, 8};
  std::string out_path = "bench_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs-list") == 0 && i + 1 < argc) {
      jobs_list.clear();
      for (const char* p = argv[++i]; *p;) {
        jobs_list.push_back(static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (!p) break;
        ++p;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs-list 1,2,4,8] [--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  // Workload 1: the Table II fault hunt, E0-E9 at instruction limit 1,
  // stop at first mismatch (the acceptance workload for the speedup).
  // Workload 2: an unguided bounded sweep of the authentic pair, which
  // exercises the cache on a no-error exploration profile.
  struct Workload {
    std::string name;
    std::vector<core::CosimConfig> configs;
    bool stop_on_error = false;
  };
  std::vector<Workload> workloads;
  {
    Workload hunt;
    hunt.name = "table2-E0-E9-limit1";
    hunt.stop_on_error = true;
    for (const fault::InjectedError& error : fault::allErrors()) {
      core::CosimConfig cfg;
      cfg.rtl = rtl::fixedRtlConfig();
      cfg.iss.csr = iss::CsrConfig::specCorrect();
      cfg.instr_limit = 1;
      cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
      error.apply(cfg);
      hunt.configs.push_back(std::move(cfg));
    }
    workloads.push_back(std::move(hunt));

    Workload sweep;
    sweep.name = "unguided-limit1-400paths";
    core::CosimConfig cfg;
    cfg.instr_limit = 1;
    sweep.configs.push_back(std::move(cfg));
    workloads.push_back(std::move(sweep));
  }

  std::printf("PARALLEL EXPLORATION — JOBS SCALING\n\n");
  std::printf("%-26s %5s %10s %10s %12s %6s\n", "workload", "jobs",
              "seconds", "paths", "cache_hits", "ok");
  std::printf("%s\n", std::string(74, '-').c_str());

  std::vector<Sample> samples;
  bool deterministic = true;
  int rc = 0;
  for (const Workload& w : workloads) {
    std::uint64_t baseline_paths = 0;
    for (std::size_t ji = 0; ji < jobs_list.size(); ++ji) {
      const unsigned jobs = jobs_list[ji];
      // Aggregate the per-config runs into one sample per jobs value.
      Sample agg;
      agg.workload = w.name;
      agg.jobs = jobs;
      agg.found = true;
      for (const core::CosimConfig& cfg : w.configs) {
        const Sample s = runWorkload(w.name, cfg, w.stop_on_error, jobs);
        agg.seconds += s.seconds;
        agg.paths += s.paths;
        agg.cache_hits += s.cache_hits;
        agg.found = agg.found && (!w.stop_on_error || s.found);
      }
      if (ji == 0) baseline_paths = agg.paths;
      const bool paths_match = agg.paths == baseline_paths;
      deterministic = deterministic && paths_match;
      if (w.stop_on_error && !agg.found) rc = 1;
      std::printf("%-26s %5u %10.3f %10llu %12llu %6s\n", agg.workload.c_str(),
                  agg.jobs, agg.seconds,
                  static_cast<unsigned long long>(agg.paths),
                  static_cast<unsigned long long>(agg.cache_hits),
                  paths_match && agg.found ? "yes" : "NO");
      samples.push_back(agg);
    }
  }

  std::printf("\npath counts identical across all worker counts: %s\n",
              deterministic ? "yes" : "NO");
  if (!deterministic) rc = 1;
  {
    std::string jl;
    for (unsigned j : jobs_list)
      jl += (jl.empty() ? "" : ",") + std::to_string(j);
    reporter.param("jobs_list", jl)
        .counter("samples", static_cast<std::uint64_t>(samples.size()))
        .param("deterministic", deterministic)
        .ok(rc == 0)
        .payload(samplesJson(samples));
    reporter.writeFile(out_path);
  }
  return rc;
}
