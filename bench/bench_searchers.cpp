// Ablation: search-strategy comparison (DFS / BFS / random) on the
// Table II error hunts. KLEE's default is a randomized searcher; our
// replay-based engine supports all three, and the bench shows how the
// strategy shifts time-to-detection per error class (decoder faults sit
// early in DFS order, control-flow faults favour whoever reaches the
// branch patterns first).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "harness/reporter.hpp"
#include "obs/json.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

struct Outcome {
  bool found;
  std::uint64_t paths;
  double seconds;
};

Outcome hunt(const fault::InjectedError& error,
             symex::EngineOptions::Searcher searcher) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  error.apply(cfg);

  symex::EngineOptions opts;
  opts.searcher = searcher;
  opts.stop_on_error = true;
  opts.max_seconds = 120;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const auto report = engine.run(cosim.program());
  return {report.error_paths > 0, report.totalPaths(), report.seconds};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("searchers");
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  std::printf("ABLATION — SEARCH STRATEGY (paths / time to detection)\n\n");
  std::printf("%-6s | %8s %9s | %8s %9s | %8s %9s\n", "Error", "DFS",
              "time[s]", "BFS", "time[s]", "Random", "time[s]");
  std::printf("%s\n", std::string(66, '-').c_str());

  obs::JsonWriter w;  // --out payload: one row per error x strategy
  w.beginObject();
  w.key("rows").beginArray();

  double totals[3] = {0, 0, 0};
  int found[3] = {0, 0, 0};
  for (const fault::InjectedError& error : fault::allErrors()) {
    const Outcome dfs = hunt(error, symex::EngineOptions::Searcher::Dfs);
    const Outcome bfs = hunt(error, symex::EngineOptions::Searcher::Bfs);
    const Outcome rnd = hunt(error, symex::EngineOptions::Searcher::Random);
    totals[0] += dfs.seconds;
    totals[1] += bfs.seconds;
    totals[2] += rnd.seconds;
    found[0] += dfs.found;
    found[1] += bfs.found;
    found[2] += rnd.found;
    std::printf("%-6s | %8llu %9.3f | %8llu %9.3f | %8llu %9.3f\n", error.id,
                static_cast<unsigned long long>(dfs.paths), dfs.seconds,
                static_cast<unsigned long long>(bfs.paths), bfs.seconds,
                static_cast<unsigned long long>(rnd.paths), rnd.seconds);
    const struct {
      const char* name;
      const Outcome* o;
    } strategies[] = {{"dfs", &dfs}, {"bfs", &bfs}, {"random", &rnd}};
    for (const auto& s : strategies) {
      w.beginObject();
      w.field("error", error.id);
      w.field("searcher", s.name);
      w.field("found", s.o->found);
      w.field("paths", s.o->paths);
      w.field("seconds", s.o->seconds);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();
  std::printf("%s\n", std::string(66, '-').c_str());
  std::printf("found  | %5d/10 %9.3f | %5d/10 %9.3f | %5d/10 %9.3f\n",
              found[0], totals[0], found[1], totals[1], found[2], totals[2]);
  const bool ok = found[0] == 10 && found[1] == 10 && found[2] == 10;
  if (!out_path.empty()) {
    reporter.counter("found_dfs", static_cast<std::uint64_t>(found[0]))
        .counter("found_bfs", static_cast<std::uint64_t>(found[1]))
        .counter("found_random", static_cast<std::uint64_t>(found[2]))
        .metric("seconds_dfs", totals[0])
        .metric("seconds_bfs", totals[1])
        .metric("seconds_random", totals[2])
        .ok(ok)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  return ok ? 0 : 1;
}
