#include "harness/reporter.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace rvsym::bench {

Reporter::Reporter(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

Reporter& Reporter::param(const std::string& key, const std::string& value) {
  params_.push_back({key, ParamKind::String, value, 0, false});
  return *this;
}

Reporter& Reporter::param(const std::string& key, const char* value) {
  return param(key, std::string(value));
}

Reporter& Reporter::param(const std::string& key, std::uint64_t value) {
  params_.push_back({key, ParamKind::U64, {}, value, false});
  return *this;
}

Reporter& Reporter::param(const std::string& key, bool value) {
  params_.push_back({key, ParamKind::Bool, {}, 0, value});
  return *this;
}

Reporter& Reporter::counter(const std::string& key, std::uint64_t value) {
  counters_.emplace_back(key, value);
  return *this;
}

Reporter& Reporter::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
  return *this;
}

Reporter& Reporter::payload(std::string json) {
  payload_ = std::move(json);
  has_payload_ = true;
  return *this;
}

Reporter& Reporter::ok(bool value) {
  ok_ = value;
  return *this;
}

std::string Reporter::toJson() const {
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "rvsym-bench-v1");
  w.field("name", name_);
  w.field("ok", ok_);
  // One in-process measurement: the harness overrides these with a real
  // multi-repeat aggregate at the run-document level.
  w.field("repeats", std::uint64_t{1});
  w.field("median_us", elapsed);
  w.field("min_us", elapsed);
  w.field("max_us", elapsed);
  w.key("params").beginObject();
  for (const Param& p : params_) {
    switch (p.kind) {
      case ParamKind::String: w.field(p.key, p.str); break;
      case ParamKind::U64: w.field(p.key, p.u64); break;
      case ParamKind::Bool: w.field(p.key, p.b); break;
    }
  }
  w.endObject();
  w.key("counters").beginObject();
  for (const auto& [k, v] : counters_) w.field(k, v);
  w.endObject();
  w.key("metrics").beginObject();
  for (const auto& [k, v] : metrics_) w.field(k, v);
  w.endObject();
  if (has_payload_) w.key("payload").rawValue(payload_);
  w.endObject();
  return w.str();
}

bool Reporter::writeFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", toJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace rvsym::bench
