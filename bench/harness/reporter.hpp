// bench::Reporter — the one JSON emitter every bench main shares.
//
// Before this existed each bench_*.cpp hand-rolled its own --out format
// (different top-level shapes, duplicated fopen/fprintf boilerplate, no
// common fields), which made cross-bench tooling impossible. The
// Reporter fixes the schema:
//
//   {"schema": "rvsym-bench-v1",
//    "name": "<bench name>",
//    "ok": <did every claim the bench checks hold>,
//    "repeats": 1,
//    "median_us": E, "min_us": E, "max_us": E,   // E = wall-clock since
//                                                //     Reporter creation
//    "params":   {...},    // the configuration the bench ran with
//    "counters": {...},    // integer results (paths, instructions, ...)
//    "metrics":  {...},    // floating-point results (seconds, rates)
//    "payload":  ...}      // optional bench-specific document, verbatim
//
// A bench process times itself exactly once, so its own emission always
// has repeats = 1 and median == min == max. rvsym-bench re-runs the
// binary N times and aggregates the subprocess wall clocks into a
// proper median/min/max at the run-document level — the per-bench
// fields exist so a single `bench_table1 --out x.json` invocation is
// already a complete, comparable document.
//
// Rendering goes through obs::JsonWriter (the repo-wide serializer), so
// escaping and comma placement can never be wrong here.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rvsym::bench {

class Reporter {
 public:
  /// Starts the wall clock. `name` is the canonical bench name
  /// ("table1", "scaling", ...), not the binary name.
  explicit Reporter(std::string name);

  // Configuration the bench ran with (insertion order preserved).
  Reporter& param(const std::string& key, const std::string& value);
  Reporter& param(const std::string& key, const char* value);
  Reporter& param(const std::string& key, std::uint64_t value);
  Reporter& param(const std::string& key, unsigned value) {
    return param(key, static_cast<std::uint64_t>(value));
  }
  Reporter& param(const std::string& key, bool value);

  /// Integer result (paths explored, instructions, cache hits, ...).
  Reporter& counter(const std::string& key, std::uint64_t value);
  /// Floating-point result (seconds, rates, percentages).
  Reporter& metric(const std::string& key, double value);

  /// Bench-specific document spliced verbatim under "payload" (must be
  /// valid JSON — render it with obs::JsonWriter).
  Reporter& payload(std::string json);

  /// Records whether the bench's claim checks held. Defaults to true;
  /// benches set this from the same predicate that drives their exit
  /// code so the JSON is self-contained.
  Reporter& ok(bool value);

  /// The rvsym-bench-v1 document. Reads the wall clock, so call it once
  /// when the bench is done.
  std::string toJson() const;

  /// toJson() + newline to `path`. Prints a confirmation line on
  /// success, a diagnostic to stderr on failure.
  bool writeFile(const std::string& path) const;

 private:
  enum class ParamKind { String, U64, Bool };
  struct Param {
    std::string key;
    ParamKind kind;
    std::string str;
    std::uint64_t u64 = 0;
    bool b = false;
  };

  std::string name_;
  bool ok_ = true;
  std::vector<Param> params_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string payload_;
  bool has_payload_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rvsym::bench
