// bench harness — discovery, execution and regression comparison for
// the nine bench_* binaries, consumed by tools/rvsym_bench.cpp.
//
// The harness runs each bench as a subprocess (benches are standalone
// mains with their own exit-code claim checks; in-process linking would
// force nine mains into one binary and share allocator/interning state
// between measurements), times the wall clock around each invocation,
// and asks the bench for its machine-readable self-report via the
// --out mechanism every bench supports (bench_micro, a google-benchmark
// main, reports via --benchmark_out instead). Results merge into one
// run document:
//
//   {"schema": "rvsym-bench-run-v1",
//    "suite": "smoke" | "all",
//    "repeats": N, "warmup": W,
//    "env": {"os": ..., "arch": ..., "compiler": ...,
//            "hardware_concurrency": C, "build_type": ...},
//    "benches": [
//      {"name": "table1", "ok": true,
//       "wall_median_us": M, "wall_min_us": m, "wall_max_us": x,
//       "wall_us": [per-repeat wall clocks],
//       "report": <the bench's own rvsym-bench-v1 document, verbatim>},
//      ...]}
//
// compareRuns() reads two such documents and fails (nonzero) when any
// bench's wall_median_us regressed by more than the threshold, when a
// baseline bench is missing from the current run, or when a bench's
// claim checks (`ok`) went false — the CI perf-smoke gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rvsym::bench {

/// One runnable bench binary.
struct BenchSpec {
  std::string name;  ///< canonical name ("table1", "micro", ...)
  std::string exe;   ///< binary name under the bench directory
  /// Extra arguments for a full run (--suite all).
  std::vector<std::string> full_args;
  /// Extra arguments for a smoke run — reduced budgets where the bench
  /// supports them, identical to full_args otherwise.
  std::vector<std::string> smoke_args;
  /// Included in --suite smoke (fast enough for a CI gate).
  bool smoke = false;
  /// google-benchmark main: self-report via --benchmark_out, and the
  /// emitted document is google-benchmark's schema, not rvsym-bench-v1.
  bool google_benchmark = false;
};

/// The fixed registry of all nine benches.
const std::vector<BenchSpec>& allBenches();

struct RunOptions {
  /// Directory holding the bench binaries. Empty = derive from argv[0]
  /// (<tool dir>/../bench, the build-tree layout).
  std::string bin_dir;
  std::string suite = "all";  ///< "all" or "smoke"
  /// Explicit bench names (overrides the suite selection when set).
  std::vector<std::string> only;
  unsigned repeats = 3;  ///< timed repeats per bench
  unsigned warmup = 1;   ///< untimed warmup runs per bench
  /// Run-document destination. The canonical location is
  /// <repo root>/BENCH_rvsym.json.
  std::string out_path = "BENCH_rvsym.json";
  /// Scratch directory for per-bench --out files and logs. Empty =
  /// alongside out_path.
  std::string work_dir;
  /// Live telemetry: rvsym-timeseries-v1 stream / atomically rewritten
  /// status object sampling suite progress (kind "bench", one work unit
  /// per bench invocation, warmups included) — `rvsym-top` renders
  /// either while the suite runs. Empty = off.
  std::string timeseries_out;
  std::string status_file;
  double sample_interval_s = 0.5;
  /// Crash forensics: arm fatal-signal/SIGUSR1 bundle dumps into this
  /// directory, plus stall detection (one bench invocation exceeding
  /// stall_timeout_s without finishing) when the timeout is nonzero.
  /// Empty = off.
  std::string crash_dir;
  double stall_timeout_s = 0;
};

/// One bench's aggregated outcome.
struct BenchRun {
  std::string name;
  bool ok = false;  ///< every invocation exited 0
  std::vector<std::uint64_t> wall_us;  ///< one entry per timed repeat
  std::string report_json;  ///< last repeat's self-report (may be empty)
};

std::uint64_t medianU64(std::vector<std::uint64_t> v);

/// Host metadata object for the run document.
std::string envJson();

/// Renders the rvsym-bench-run-v1 document.
std::string runDocument(const RunOptions& opts,
                        const std::vector<BenchRun>& runs);

/// Runs the selected suite, writes the run document to opts.out_path.
/// Returns 0 when every bench ran and passed its own claim checks.
int runSuite(const RunOptions& opts);

/// Compares two run documents. `threshold_pct` is the allowed median
/// wall-clock growth in percent (e.g. 100 = current may take up to 2x
/// the baseline). Returns 0 when no bench regressed; prints a
/// per-bench table either way.
int compareRuns(const std::string& current_path,
                const std::string& baseline_path, double threshold_pct);

}  // namespace rvsym::bench
