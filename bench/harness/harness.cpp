#include "harness/harness.hpp"

#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include <atomic>

#include "obs/analyze/json_reader.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace rvsym::bench {

namespace fs = std::filesystem;
using obs::analyze::JsonValue;
using obs::analyze::parseJson;

const std::vector<BenchSpec>& allBenches() {
  // Smoke membership: everything that finishes in seconds (measured:
  // fig1_flow ~0.5s, searchers/slicing ~1s, table2 ~1.6s, micro ~2s at
  // the reduced min_time, scaling ~2.4s, ablation_limit ~3s,
  // solver_stack ~4s across its six layer configurations, table1
  // ~12s). Only fuzz_vs_symex is full-suite-only (~45s): its random
  // baseline deliberately exhausts its test budget on the corner-case
  // faults, which is the point of the bench but not of a CI gate.
  static const std::vector<BenchSpec> kBenches = {
      {"table1", "bench_table1", {}, {}, true, false},
      {"table2", "bench_table2", {}, {}, true, false},
      {"fig1_flow", "bench_fig1_flow", {}, {}, true, false},
      {"ablation_slicing", "bench_ablation_slicing", {}, {}, true, false},
      {"ablation_limit", "bench_ablation_limit", {}, {}, true, false},
      {"solver_stack", "bench_solver_stack", {}, {}, true, false},
      {"micro",
       "bench_micro",
       {"--benchmark_out_format=json"},
       {"--benchmark_out_format=json", "--benchmark_min_time=0.05"},
       true,
       true},
      {"fuzz_vs_symex", "bench_fuzz_vs_symex", {}, {}, false, false},
      {"searchers", "bench_searchers", {}, {}, true, false},
      {"scaling", "bench_scaling", {}, {}, true, false},
  };
  return kBenches;
}

std::uint64_t medianU64(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

std::string envJson() {
  obs::JsonWriter w;
  w.beginObject();
#if defined(__linux__)
  w.field("os", "linux");
#elif defined(__APPLE__)
  w.field("os", "darwin");
#else
  w.field("os", "unknown");
#endif
#if defined(__x86_64__)
  w.field("arch", "x86_64");
#elif defined(__aarch64__)
  w.field("arch", "aarch64");
#else
  w.field("arch", "unknown");
#endif
#if defined(__clang__)
  w.field("compiler", "clang " + std::to_string(__clang_major__) + "." +
                          std::to_string(__clang_minor__));
#elif defined(__GNUC__)
  w.field("compiler", "gcc " + std::to_string(__GNUC__) + "." +
                          std::to_string(__GNUC_MINOR__));
#else
  w.field("compiler", "unknown");
#endif
  w.field("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
#ifdef NDEBUG
  w.field("assertions", false);
#else
  w.field("assertions", true);
#endif
  w.endObject();
  return w.str();
}

namespace {

std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs one command line; returns the exit code (or -1 when the child
/// did not exit normally) and the wall-clock microseconds.
int runCommand(const std::string& cmd, std::uint64_t& wall_us) {
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (rc == -1) return -1;
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  return -1;
}

const std::vector<std::string>& suiteArgs(const BenchSpec& spec,
                                          const std::string& suite) {
  return suite == "smoke" ? spec.smoke_args : spec.full_args;
}

}  // namespace

std::string runDocument(const RunOptions& opts,
                        const std::vector<BenchRun>& runs) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("schema", "rvsym-bench-run-v1");
  w.field("suite", opts.suite);
  w.field("repeats", static_cast<std::uint64_t>(opts.repeats));
  w.field("warmup", static_cast<std::uint64_t>(opts.warmup));
  w.key("env").rawValue(envJson());
  w.key("benches").beginArray();
  for (const BenchRun& r : runs) {
    w.beginObject();
    w.field("name", r.name);
    w.field("ok", r.ok);
    w.field("wall_median_us", medianU64(r.wall_us));
    w.field("wall_min_us", r.wall_us.empty()
                               ? 0
                               : *std::min_element(r.wall_us.begin(),
                                                   r.wall_us.end()));
    w.field("wall_max_us", r.wall_us.empty()
                               ? 0
                               : *std::max_element(r.wall_us.begin(),
                                                   r.wall_us.end()));
    w.key("wall_us").beginArray();
    for (std::uint64_t us : r.wall_us) w.value(us);
    w.endArray();
    if (!r.report_json.empty())
      w.key("report").rawValue(r.report_json);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

int runSuite(const RunOptions& opts) {
  // Select the benches to run.
  std::vector<const BenchSpec*> selected;
  for (const BenchSpec& spec : allBenches()) {
    if (!opts.only.empty()) {
      if (std::find(opts.only.begin(), opts.only.end(), spec.name) ==
          opts.only.end())
        continue;
    } else if (opts.suite == "smoke" && !spec.smoke) {
      continue;
    }
    selected.push_back(&spec);
  }
  if (!opts.only.empty() && selected.size() != opts.only.size()) {
    for (const std::string& name : opts.only)
      if (std::none_of(selected.begin(), selected.end(),
                       [&](const BenchSpec* s) { return s->name == name; }))
        std::fprintf(stderr, "unknown bench: %s\n", name.c_str());
    return 2;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benches selected (suite=%s)\n",
                 opts.suite.c_str());
    return 2;
  }

  const fs::path work = opts.work_dir.empty()
                            ? fs::path(opts.out_path).parent_path()
                            : fs::path(opts.work_dir);
  std::error_code ec;
  if (!work.empty()) fs::create_directories(work, ec);

  // Live suite telemetry: the registry counts finished bench
  // invocations; the sampler's decorate hook shapes them into the
  // generic work section (plus the in-flight bench name) so rvsym-top
  // gets a progress bar and ETA over the whole suite.
  obs::MetricsRegistry registry;
  obs::Counter& invocations = registry.counter("bench.invocations");
  std::atomic<const BenchSpec*> in_flight{nullptr};
  const std::uint64_t total_invocations =
      static_cast<std::uint64_t>(selected.size()) *
      (opts.warmup + opts.repeats);
  obs::TimeseriesOptions ts;
  ts.out_path = opts.timeseries_out;
  ts.status_path = opts.status_file;
  ts.interval_s = opts.sample_interval_s;
  ts.kind = "bench";
  ts.total_work = total_invocations;
  obs::TimeseriesSampler sampler(
      ts, registry, [&](obs::HeartbeatSnapshot& s) {
        s.has_work = true;
        s.work_label = "invocations";
        s.work_done = invocations.get();
        s.work_total = total_invocations;
        if (const BenchSpec* spec = in_flight.load())
          s.extra = "bench=" + spec->name;
      });
  if (!opts.timeseries_out.empty() || !opts.status_file.empty()) {
    std::string err;
    if (!sampler.start(&err)) {
      std::fprintf(stderr, "rvsym-bench: %s\n", err.c_str());
      return 2;
    }
  }

  // Crash forensics over the suite: each invocation is one busy bracket
  // with a Mark event, so a bench subprocess that wedges past
  // --stall-timeout produces a bundle naming the bench.
  obs::flightrec::ForensicsSession forensics;
  if (!opts.crash_dir.empty()) {
    obs::flightrec::ForensicsOptions fo;
    fo.crash_dir = opts.crash_dir;
    fo.stall_timeout_s = opts.stall_timeout_s;
    fo.tool = "rvsym-bench";
    std::string err;
    if (!forensics.install(fo, &err)) {
      std::fprintf(stderr, "--crash-dir: %s\n", err.c_str());
      return 2;
    }
    obs::flightrec::setForensicsMetrics(&registry);
    obs::flightrec::setThreadName("suite");
  }

  std::vector<BenchRun> runs;
  bool all_ok = true;
  for (const BenchSpec* spec : selected) {
    const fs::path exe = fs::path(opts.bin_dir) / spec->exe;
    if (!fs::exists(exe)) {
      std::fprintf(stderr, "bench binary not found: %s\n",
                   exe.string().c_str());
      return 2;
    }
    const fs::path out_file = work / (spec->name + ".bench.json");
    const fs::path log_file = work / (spec->name + ".log");

    std::string cmd = shellQuote(exe.string());
    for (const std::string& a : suiteArgs(*spec, opts.suite))
      cmd += " " + shellQuote(a);
    cmd += spec->google_benchmark
               ? " " + shellQuote("--benchmark_out=" + out_file.string())
               : " --out " + shellQuote(out_file.string());
    cmd += " > " + shellQuote(log_file.string()) + " 2>&1";

    BenchRun run;
    run.name = spec->name;
    run.ok = true;
    in_flight.store(spec);
    const unsigned total = opts.warmup + opts.repeats;
    for (unsigned i = 0; i < total; ++i) {
      const bool timed = i >= opts.warmup;
      std::printf("[%s] %s %u/%u ...\n", spec->name.c_str(),
                  timed ? "repeat" : "warmup",
                  timed ? i - opts.warmup + 1 : i + 1,
                  timed ? opts.repeats : opts.warmup);
      std::fflush(stdout);
      std::uint64_t wall_us = 0;
      obs::flightrec::emit(obs::flightrec::EventKind::Mark, i, 0, 0,
                           spec->name.c_str());
      obs::flightrec::busyBegin();
      const int rc = runCommand(cmd, wall_us);
      obs::flightrec::busyEnd();
      invocations.add(1);
      if (rc != 0) {
        std::fprintf(stderr, "[%s] exited with %d (log: %s)\n",
                     spec->name.c_str(), rc, log_file.string().c_str());
        run.ok = false;
      }
      if (timed) run.wall_us.push_back(wall_us);
    }
    if (auto doc = readFile(out_file.string())) {
      // Validate before splicing verbatim into the run document.
      std::string err;
      if (parseJson(*doc, &err)) {
        // Strip the trailing newline the Reporter appends.
        while (!doc->empty() && (doc->back() == '\n' || doc->back() == '\r'))
          doc->pop_back();
        run.report_json = *doc;
      } else {
        std::fprintf(stderr, "[%s] unparseable self-report (%s)\n",
                     spec->name.c_str(), err.c_str());
        run.ok = false;
      }
    } else {
      std::fprintf(stderr, "[%s] no self-report at %s\n", spec->name.c_str(),
                   out_file.string().c_str());
      run.ok = false;
    }
    all_ok = all_ok && run.ok;
    std::printf("[%s] median %.1f ms over %zu repeats%s\n", spec->name.c_str(),
                static_cast<double>(medianU64(run.wall_us)) / 1000.0,
                run.wall_us.size(), run.ok ? "" : "  (FAILED)");
    runs.push_back(std::move(run));
  }
  sampler.stop();

  std::FILE* f = std::fopen(opts.out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 opts.out_path.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n", runDocument(opts, runs).c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu benches)\n", opts.out_path.c_str(), runs.size());
  return all_ok ? 0 : 1;
}

namespace {

struct BenchSummary {
  bool ok = false;
  std::uint64_t wall_median_us = 0;
};

std::optional<std::map<std::string, BenchSummary>> loadRun(
    const std::string& path) {
  const auto text = readFile(path);
  if (!text) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::string err;
  const auto doc = parseJson(*text, &err);
  if (!doc) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), err.c_str());
    return std::nullopt;
  }
  const auto schema = doc->getString("schema");
  if (!schema || *schema != "rvsym-bench-run-v1") {
    std::fprintf(stderr, "%s: not an rvsym-bench-run-v1 document\n",
                 path.c_str());
    return std::nullopt;
  }
  const JsonValue* benches = doc->find("benches");
  if (!benches || !benches->isArray()) {
    std::fprintf(stderr, "%s: missing benches array\n", path.c_str());
    return std::nullopt;
  }
  std::map<std::string, BenchSummary> out;
  for (const JsonValue& b : benches->items()) {
    const auto name = b.getString("name");
    if (!name) continue;
    BenchSummary s;
    s.ok = b.getBool("ok").value_or(false);
    s.wall_median_us = b.getU64("wall_median_us").value_or(0);
    out[*name] = s;
  }
  return out;
}

std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

/// Closest name to `name` among the other side's benches — a renamed
/// bench shows up as missing+new, and the suggestion links the pair.
std::string nearestName(const std::string& name,
                        const std::map<std::string, BenchSummary>& pool) {
  std::string best;
  std::size_t best_dist = name.size();  // farther than that isn't a rename
  for (const auto& [cand, s] : pool) {
    (void)s;
    const std::size_t d = editDistance(name, cand);
    if (d < best_dist) {
      best_dist = d;
      best = cand;
    }
  }
  return best;
}

}  // namespace

int compareRuns(const std::string& current_path,
                const std::string& baseline_path, double threshold_pct) {
  const auto current = loadRun(current_path);
  const auto baseline = loadRun(baseline_path);
  if (!current || !baseline) return 2;

  std::printf("%-18s %14s %14s %9s  %s\n", "bench", "baseline[ms]",
              "current[ms]", "delta", "verdict");
  std::printf("%s\n", std::string(68, '-').c_str());

  int regressions = 0;
  std::vector<std::string> notes;
  for (const auto& [name, base] : *baseline) {
    const auto it = current->find(name);
    if (it == current->end()) {
      std::printf("%-18s %14.1f %14s %9s  MISSING\n", name.c_str(),
                  static_cast<double>(base.wall_median_us) / 1000.0, "-", "-");
      std::string note = "'" + name + "' is in the baseline (" +
                         baseline_path + ") but not in the current run (" +
                         current_path + ")";
      const std::string near = nearestName(name, *current);
      if (!near.empty()) note += "; did you mean '" + near + "'?";
      notes.push_back(std::move(note));
      ++regressions;
      continue;
    }
    const BenchSummary& cur = it->second;
    const double base_ms = static_cast<double>(base.wall_median_us) / 1000.0;
    const double cur_ms = static_cast<double>(cur.wall_median_us) / 1000.0;
    const double delta_pct =
        base.wall_median_us == 0
            ? 0.0
            : 100.0 * (cur_ms - base_ms) / base_ms;
    const bool slow = base.wall_median_us != 0 && delta_pct > threshold_pct;
    const bool broken = !cur.ok;
    if (slow || broken) ++regressions;
    std::printf("%-18s %14.1f %14.1f %+8.1f%%  %s\n", name.c_str(), base_ms,
                cur_ms, delta_pct,
                broken ? "FAILED" : (slow ? "REGRESSED" : "ok"));
  }
  // Benches present only in the current run are informational.
  for (const auto& [name, cur] : *current)
    if (!baseline->count(name)) {
      std::printf("%-18s %14s %14.1f %9s  new\n", name.c_str(), "-",
                  static_cast<double>(cur.wall_median_us) / 1000.0, "-");
      std::string note = "'" + name + "' is in the current run (" +
                         current_path + ") but not in the baseline (" +
                         baseline_path + ")";
      const std::string near = nearestName(name, *baseline);
      if (!near.empty()) note += "; nearest baseline name is '" + near + "'";
      notes.push_back(std::move(note));
    }

  std::printf("%s\n", std::string(68, '-').c_str());
  for (const auto& note : notes) std::printf("note: %s\n", note.c_str());
  if (regressions == 0) {
    std::printf("no regressions (threshold %.0f%%)\n", threshold_pct);
    return 0;
  }
  std::printf("%d bench(es) regressed beyond %.0f%% (or failed/missing)\n",
              regressions, threshold_pct);
  return 1;
}

}  // namespace rvsym::bench
