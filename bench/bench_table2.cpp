// Regenerates Table II of the paper: for each injected error E0-E9 and
// each instruction limit (1 and 2), run the symbolic co-simulation until
// the error is found and report: result, executed instructions, time,
// partially explored paths and completely explored paths — plus the Sum
// and Median rows.
//
// The ten errors are the ten named points of the enumerated mutation
// space (mut::paperMutants()), and each hunt is one mut::judgeMutant
// call with the instruction limit pinned — the same judging path
// rvsym-mutate campaigns use, so there is exactly one fault-fan-out
// implementation in the tree. The co-simulation is configured exactly
// as §V-B describes: RV32I only (assumptions block SYSTEM-instruction
// generation, filtering the known Table I CSR mismatches), the fixed
// DUT configuration (no Table I bugs) with one injected error, and a
// per-run budget in place of the paper's 24-hour wall-clock limit on a
// Xeon server.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/reporter.hpp"
#include "mut/campaign.hpp"
#include "mut/journal.hpp"
#include "obs/json.hpp"
#include "solver/solver.hpp"

namespace {

using namespace rvsym;

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

double medianD(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("table2");
  std::string out_path;
  unsigned jobs = 1;
  mut::CampaignOptions opts;
  opts.max_paths_per_hunt = 200000;
  opts.max_seconds_per_hunt = 300;  // scaled-down stand-in for the 24 h limit
  // Table II hunts the error at each limit; the decode pre-check would
  // reclassify nothing here (E0-E2 are behaviour-changing) but costs a
  // solver call per decoder error, so keep the measurement pure.
  opts.check_decode_equivalence = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc)
      opts.trace_dir = argv[++i];
  }
  opts.engine_jobs = jobs;  // --jobs N: exploration workers per hunt

  std::printf("TABLE II — INJECTED ERROR RESULTS (workers: %u)\n", jobs);
  std::printf(
      "(shape reproduction: absolute numbers are smaller than the paper's "
      "Xeon/KLEE runs;\n the claims to check are: all errors found, and "
      "instruction limit 1 cheaper than limit 2)\n\n");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "",
      "", "Instruction", "Limit: 1", "", "", "", "Instruction", "Limit: 2",
      "", "");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "Error",
      "Result", "#Exec.Instr.", "Time[s]", "Partial", "Paths", "Result",
      "#Exec.Instr.", "Time[s]", "Partial", "Paths");
  std::printf("%s\n", std::string(118, '-').c_str());

  struct Totals {
    std::uint64_t instr = 0, partial = 0, paths = 0;
    std::uint64_t cache_hits = 0, cache_misses = 0;
    double time = 0;
    int found = 0;
    std::vector<std::uint64_t> instr_v, partial_v, paths_v;
    std::vector<double> time_v;
    void add(const mut::MutantResult& r) {
      instr += r.instructions;
      partial += r.partial_paths;
      paths += r.paths;
      cache_hits += r.qcache_hits;
      cache_misses += r.qcache_misses;
      time += r.seconds;
      found += r.verdict == mut::Verdict::Killed ? 1 : 0;
      instr_v.push_back(r.instructions);
      partial_v.push_back(r.partial_paths);
      paths_v.push_back(r.paths);
      time_v.push_back(r.seconds);
    }
  } t1, t2;

  struct ErrorRuns {
    const char* id;
    mut::MutantResult r1, r2;
  };
  std::vector<ErrorRuns> runs;

  // One query cache across every hunt, as campaigns share it: the ten
  // errors replay near-identical decode cascades.
  solver::QueryCache cache(16);

  for (const mut::PaperMutant& pm : mut::paperMutants()) {
    // One judgeMutant per table column, instruction limit pinned.
    opts.min_instr_limit = opts.max_instr_limit = 1;
    const mut::MutantResult r1 = mut::judgeMutant(pm.mutant, opts, &cache, {});
    opts.min_instr_limit = opts.max_instr_limit = 2;
    const mut::MutantResult r2 = mut::judgeMutant(pm.mutant, opts, &cache, {});
    t1.add(r1);
    t2.add(r2);
    std::printf(
        "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu "
        "%7llu\n",
        pm.paper_id, r1.verdict == mut::Verdict::Killed ? "found" : "MISS",
        static_cast<unsigned long long>(r1.instructions), r1.seconds,
        static_cast<unsigned long long>(r1.partial_paths),
        static_cast<unsigned long long>(r1.paths),
        r2.verdict == mut::Verdict::Killed ? "found" : "MISS",
        static_cast<unsigned long long>(r2.instructions), r2.seconds,
        static_cast<unsigned long long>(r2.partial_paths),
        static_cast<unsigned long long>(r2.paths));
    runs.push_back(ErrorRuns{pm.paper_id, r1, r2});
  }

  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf(
      "%-6s | %2d/10  %12llu %9.3f %9llu %7llu | %2d/10  %12llu %9.3f %9llu "
      "%7llu\n",
      "Sum:", t1.found, static_cast<unsigned long long>(t1.instr), t1.time,
      static_cast<unsigned long long>(t1.partial),
      static_cast<unsigned long long>(t1.paths), t2.found,
      static_cast<unsigned long long>(t2.instr), t2.time,
      static_cast<unsigned long long>(t2.partial),
      static_cast<unsigned long long>(t2.paths));
  std::printf(
      "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu %7llu\n",
      "Median:", "", static_cast<unsigned long long>(median(t1.instr_v)),
      medianD(t1.time_v), static_cast<unsigned long long>(median(t1.partial_v)),
      static_cast<unsigned long long>(median(t1.paths_v)), "",
      static_cast<unsigned long long>(median(t2.instr_v)), medianD(t2.time_v),
      static_cast<unsigned long long>(median(t2.partial_v)),
      static_cast<unsigned long long>(median(t2.paths_v)));

  const auto hitRate = [](const Totals& t) {
    const std::uint64_t q = t.cache_hits + t.cache_misses;
    return q == 0 ? 0.0 : 100.0 * static_cast<double>(t.cache_hits) /
                              static_cast<double>(q);
  };
  std::printf(
      "\nquery cache: limit-1 %llu hits / %llu misses (%.1f%%), "
      "limit-2 %llu hits / %llu misses (%.1f%%)\n",
      static_cast<unsigned long long>(t1.cache_hits),
      static_cast<unsigned long long>(t1.cache_misses), hitRate(t1),
      static_cast<unsigned long long>(t2.cache_hits),
      static_cast<unsigned long long>(t2.cache_misses), hitRate(t2));

  std::printf(
      "\npaper shape check: all found = %s/%s; limit-1 total time <= "
      "limit-2 total time = %s\n",
      t1.found == 10 ? "yes" : "NO", t2.found == 10 ? "yes" : "NO",
      t1.time <= t2.time ? "yes" : "NO");

  if (!out_path.empty()) {
    // Machine-readable dump: one journal-format record per hunt (same
    // schema rvsym-mutate writes, nested under the paper error id).
    obs::JsonWriter w;
    w.beginObject();
    w.key("hunts").beginArray();
    for (const ErrorRuns& er : runs) {
      for (const auto* r : {&er.r1, &er.r2}) {
        w.beginObject();
        w.field("error", er.id);
        w.field("instr_limit", r == &er.r1 ? 1u : 2u);
        w.field("found", r->verdict == mut::Verdict::Killed);
        w.key("result").rawValue(mut::journalLine(*r));
        w.endObject();
      }
    }
    w.endArray();
    w.endObject();
    reporter.param("jobs", jobs)
        .counter("found_limit1", static_cast<std::uint64_t>(t1.found))
        .counter("found_limit2", static_cast<std::uint64_t>(t2.found))
        .counter("instructions_limit1", t1.instr)
        .counter("instructions_limit2", t2.instr)
        .counter("paths_limit1", t1.paths)
        .counter("paths_limit2", t2.paths)
        .counter("qcache_hits", t1.cache_hits + t2.cache_hits)
        .counter("qcache_misses", t1.cache_misses + t2.cache_misses)
        .metric("seconds_limit1", t1.time)
        .metric("seconds_limit2", t2.time)
        .ok(t1.found == 10 && t2.found == 10)
        .payload(w.str());
    reporter.writeFile(out_path);
  }
  // Parity assertion: every paper error must be killed at both limits.
  return (t1.found == 10 && t2.found == 10) ? 0 : 1;
}
