// Regenerates Table II of the paper: for each injected error E0-E9 and
// each instruction limit (1 and 2), run the symbolic co-simulation until
// the error is found and report: result, executed instructions, time,
// partially explored paths and completely explored paths — plus the Sum
// and Median rows.
//
// The co-simulation is configured exactly as §V-B describes: RV32I only
// (assumptions block SYSTEM-instruction generation, filtering the known
// Table I CSR mismatches), the fixed DUT configuration (no Table I bugs)
// with one injected error, and a per-run budget in place of the paper's
// 24-hour wall-clock limit on a Xeon server.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

struct RunResult {
  bool found = false;
  std::uint64_t instructions = 0;
  double seconds = 0;
  std::uint64_t partial_paths = 0;
  std::uint64_t paths = 0;
};

RunResult runHunt(const fault::InjectedError& error, unsigned instr_limit) {
  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = instr_limit;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  error.apply(cfg);

  symex::EngineOptions opts;
  opts.stop_on_error = true;  // Table II measures time-to-first-error
  opts.max_seconds = 300;     // scaled-down stand-in for the 24 h limit
  opts.max_paths = 200000;

  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());

  RunResult r;
  r.found = report.error_paths > 0;
  r.instructions = report.instructions;
  r.seconds = report.seconds;
  r.partial_paths = report.partialPaths();
  r.paths = report.completed_paths;
  return r;
}

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

double medianD(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

}  // namespace

int main() {
  std::printf("TABLE II — INJECTED ERROR RESULTS\n");
  std::printf(
      "(shape reproduction: absolute numbers are smaller than the paper's "
      "Xeon/KLEE runs;\n the claims to check are: all errors found, and "
      "instruction limit 1 cheaper than limit 2)\n\n");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "",
      "", "Instruction", "Limit: 1", "", "", "", "Instruction", "Limit: 2",
      "", "");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "Error",
      "Result", "#Exec.Instr.", "Time[s]", "Partial", "Paths", "Result",
      "#Exec.Instr.", "Time[s]", "Partial", "Paths");
  std::printf("%s\n", std::string(118, '-').c_str());

  struct Totals {
    std::uint64_t instr = 0, partial = 0, paths = 0;
    double time = 0;
    int found = 0;
    std::vector<std::uint64_t> instr_v, partial_v, paths_v;
    std::vector<double> time_v;
    void add(const RunResult& r) {
      instr += r.instructions;
      partial += r.partial_paths;
      paths += r.paths;
      time += r.seconds;
      found += r.found ? 1 : 0;
      instr_v.push_back(r.instructions);
      partial_v.push_back(r.partial_paths);
      paths_v.push_back(r.paths);
      time_v.push_back(r.seconds);
    }
  } t1, t2;

  for (const fault::InjectedError& error : fault::allErrors()) {
    const RunResult r1 = runHunt(error, 1);
    const RunResult r2 = runHunt(error, 2);
    t1.add(r1);
    t2.add(r2);
    std::printf(
        "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu "
        "%7llu\n",
        error.id, r1.found ? "found" : "MISS",
        static_cast<unsigned long long>(r1.instructions), r1.seconds,
        static_cast<unsigned long long>(r1.partial_paths),
        static_cast<unsigned long long>(r1.paths),
        r2.found ? "found" : "MISS",
        static_cast<unsigned long long>(r2.instructions), r2.seconds,
        static_cast<unsigned long long>(r2.partial_paths),
        static_cast<unsigned long long>(r2.paths));
  }

  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf(
      "%-6s | %2d/10  %12llu %9.3f %9llu %7llu | %2d/10  %12llu %9.3f %9llu "
      "%7llu\n",
      "Sum:", t1.found, static_cast<unsigned long long>(t1.instr), t1.time,
      static_cast<unsigned long long>(t1.partial),
      static_cast<unsigned long long>(t1.paths), t2.found,
      static_cast<unsigned long long>(t2.instr), t2.time,
      static_cast<unsigned long long>(t2.partial),
      static_cast<unsigned long long>(t2.paths));
  std::printf(
      "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu %7llu\n",
      "Median:", "", static_cast<unsigned long long>(median(t1.instr_v)),
      medianD(t1.time_v), static_cast<unsigned long long>(median(t1.partial_v)),
      static_cast<unsigned long long>(median(t1.paths_v)), "",
      static_cast<unsigned long long>(median(t2.instr_v)), medianD(t2.time_v),
      static_cast<unsigned long long>(median(t2.partial_v)),
      static_cast<unsigned long long>(median(t2.paths_v)));

  std::printf(
      "\npaper shape check: all found = %s/%s; limit-1 total time <= "
      "limit-2 total time = %s\n",
      t1.found == 10 ? "yes" : "NO", t2.found == 10 ? "yes" : "NO",
      t1.time <= t2.time ? "yes" : "NO");
  return (t1.found == 10 && t2.found == 10) ? 0 : 1;
}
