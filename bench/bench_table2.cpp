// Regenerates Table II of the paper: for each injected error E0-E9 and
// each instruction limit (1 and 2), run the symbolic co-simulation until
// the error is found and report: result, executed instructions, time,
// partially explored paths and completely explored paths — plus the Sum
// and Median rows.
//
// The co-simulation is configured exactly as §V-B describes: RV32I only
// (assumptions block SYSTEM-instruction generation, filtering the known
// Table I CSR mismatches), the fixed DUT configuration (no Table I bugs)
// with one injected error, and a per-run budget in place of the paper's
// 24-hour wall-clock limit on a Xeon server.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "symex/parallel.hpp"

namespace {

using namespace rvsym;

unsigned g_jobs = 1;  // --jobs N: parallel exploration workers per hunt
// --trace-dir DIR: write one JSONL lifecycle trace per hunt
// (DIR/<error>_limit<k>.jsonl) for offline analysis with rvsym-report.
std::string g_trace_dir;

struct RunResult {
  bool found = false;
  std::uint64_t instructions = 0;
  double seconds = 0;
  std::uint64_t partial_paths = 0;
  std::uint64_t paths = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::string report_json;  ///< full EngineReport (shared serializer)
};

RunResult runHunt(const fault::InjectedError& error, unsigned instr_limit) {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = instr_limit;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  error.apply(cfg);

  symex::ParallelEngineOptions opts;
  opts.stop_on_error = true;  // Table II measures time-to-first-error
  opts.max_seconds = 300;     // scaled-down stand-in for the 24 h limit
  opts.max_paths = 200000;
  opts.jobs = g_jobs;

  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!g_trace_dir.empty()) {
    const std::string path = g_trace_dir + "/" + error.id + "_limit" +
                             std::to_string(instr_limit) + ".jsonl";
    trace = std::make_unique<obs::JsonlTraceSink>(path);
    if (trace->ok()) opts.trace = trace.get();
    else std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
  }

  // Same driver path as core::Session at jobs > 1: one harness per
  // worker. At --jobs 1 this reproduces the sequential hunt exactly.
  symex::ParallelEngine engine(opts);
  const symex::EngineReport report =
      engine.run([&cfg](symex::WorkerContext& ctx) {
        auto cosim = std::make_shared<core::CoSimulation>(ctx.builder, cfg);
        return [cosim](symex::ExecState& st) { cosim->runPath(st); };
      });

  RunResult r;
  r.found = report.error_paths > 0;
  r.instructions = report.instructions;
  r.seconds = report.seconds;
  r.partial_paths = report.partialPaths();
  r.paths = report.completed_paths;
  r.cache_hits = report.qcache_hits;
  r.cache_misses = report.qcache_misses;
  r.report_json = symex::reportToJson(report);
  return r;
}

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

double medianD(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      g_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc)
      g_trace_dir = argv[++i];
  }
  std::printf("TABLE II — INJECTED ERROR RESULTS (workers: %u)\n", g_jobs);
  std::printf(
      "(shape reproduction: absolute numbers are smaller than the paper's "
      "Xeon/KLEE runs;\n the claims to check are: all errors found, and "
      "instruction limit 1 cheaper than limit 2)\n\n");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "",
      "", "Instruction", "Limit: 1", "", "", "", "Instruction", "Limit: 2",
      "", "");
  std::printf(
      "%-6s | %-6s %12s %9s %9s %7s | %-6s %12s %9s %9s %7s\n", "Error",
      "Result", "#Exec.Instr.", "Time[s]", "Partial", "Paths", "Result",
      "#Exec.Instr.", "Time[s]", "Partial", "Paths");
  std::printf("%s\n", std::string(118, '-').c_str());

  struct Totals {
    std::uint64_t instr = 0, partial = 0, paths = 0;
    std::uint64_t cache_hits = 0, cache_misses = 0;
    double time = 0;
    int found = 0;
    std::vector<std::uint64_t> instr_v, partial_v, paths_v;
    std::vector<double> time_v;
    void add(const RunResult& r) {
      instr += r.instructions;
      partial += r.partial_paths;
      paths += r.paths;
      cache_hits += r.cache_hits;
      cache_misses += r.cache_misses;
      time += r.seconds;
      found += r.found ? 1 : 0;
      instr_v.push_back(r.instructions);
      partial_v.push_back(r.partial_paths);
      paths_v.push_back(r.paths);
      time_v.push_back(r.seconds);
    }
  } t1, t2;

  struct ErrorRuns {
    const char* id;
    RunResult r1, r2;
  };
  std::vector<ErrorRuns> runs;

  for (const fault::InjectedError& error : fault::allErrors()) {
    const RunResult r1 = runHunt(error, 1);
    const RunResult r2 = runHunt(error, 2);
    t1.add(r1);
    t2.add(r2);
    runs.push_back(ErrorRuns{error.id, r1, r2});
    std::printf(
        "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu "
        "%7llu\n",
        error.id, r1.found ? "found" : "MISS",
        static_cast<unsigned long long>(r1.instructions), r1.seconds,
        static_cast<unsigned long long>(r1.partial_paths),
        static_cast<unsigned long long>(r1.paths),
        r2.found ? "found" : "MISS",
        static_cast<unsigned long long>(r2.instructions), r2.seconds,
        static_cast<unsigned long long>(r2.partial_paths),
        static_cast<unsigned long long>(r2.paths));
  }

  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf(
      "%-6s | %2d/10  %12llu %9.3f %9llu %7llu | %2d/10  %12llu %9.3f %9llu "
      "%7llu\n",
      "Sum:", t1.found, static_cast<unsigned long long>(t1.instr), t1.time,
      static_cast<unsigned long long>(t1.partial),
      static_cast<unsigned long long>(t1.paths), t2.found,
      static_cast<unsigned long long>(t2.instr), t2.time,
      static_cast<unsigned long long>(t2.partial),
      static_cast<unsigned long long>(t2.paths));
  std::printf(
      "%-6s | %-6s %12llu %9.3f %9llu %7llu | %-6s %12llu %9.3f %9llu %7llu\n",
      "Median:", "", static_cast<unsigned long long>(median(t1.instr_v)),
      medianD(t1.time_v), static_cast<unsigned long long>(median(t1.partial_v)),
      static_cast<unsigned long long>(median(t1.paths_v)), "",
      static_cast<unsigned long long>(median(t2.instr_v)), medianD(t2.time_v),
      static_cast<unsigned long long>(median(t2.partial_v)),
      static_cast<unsigned long long>(median(t2.paths_v)));

  const auto hitRate = [](const Totals& t) {
    const std::uint64_t q = t.cache_hits + t.cache_misses;
    return q == 0 ? 0.0 : 100.0 * static_cast<double>(t.cache_hits) /
                              static_cast<double>(q);
  };
  std::printf(
      "\nquery cache: limit-1 %llu hits / %llu misses (%.1f%%), "
      "limit-2 %llu hits / %llu misses (%.1f%%)\n",
      static_cast<unsigned long long>(t1.cache_hits),
      static_cast<unsigned long long>(t1.cache_misses), hitRate(t1),
      static_cast<unsigned long long>(t2.cache_hits),
      static_cast<unsigned long long>(t2.cache_misses), hitRate(t2));

  std::printf(
      "\npaper shape check: all found = %s/%s; limit-1 total time <= "
      "limit-2 total time = %s\n",
      t1.found == 10 ? "yes" : "NO", t2.found == 10 ? "yes" : "NO",
      t1.time <= t2.time ? "yes" : "NO");

  if (!out_path.empty()) {
    // Machine-readable dump: the full EngineReport per hunt, nested via
    // the shared serializer (same schema as rvsym-verify --metrics-out).
    obs::JsonWriter w;
    w.beginObject();
    w.field("jobs", g_jobs);
    w.key("hunts").beginArray();
    for (const ErrorRuns& er : runs) {
      for (const auto* r : {&er.r1, &er.r2}) {
        w.beginObject();
        w.field("error", er.id);
        w.field("instr_limit", r == &er.r1 ? 1u : 2u);
        w.field("found", r->found);
        w.key("report").rawValue(r->report_json);
        w.endObject();
      }
    }
    w.endArray();
    w.endObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    } else {
      std::fprintf(f, "%s\n", w.str().c_str());
      std::fclose(f);
      std::printf("wrote %zu hunt reports to %s\n", runs.size() * 2,
                  out_path.c_str());
    }
  }
  return (t1.found == 10 && t2.found == 10) ? 0 : 1;
}
