// MicroRV32-class RTL core model (verilated-Verilog substitute).
//
// A cycle-accurate multi-cycle FSM core written the way verilator output
// is consumed: a module object with public port structs (IBus, DBus,
// RVFI) and a tick() clock edge. Control signals are concrete bools;
// data signals are symbolic expressions.
//
// Bus protocol (paper §IV-C):
//  * IBus: core raises fetch_enable with a concrete address; the
//    testbench answers with instruction + instruction_ready for one cycle.
//  * DBus: strobe-based (AXI/Wishbone-style). Valid strobes are 0001,
//    0010, 0100, 1000 (byte), 0011, 1100 (half) and 1111 (word); the
//    address is word-aligned and the strobe selects byte lanes. A
//    misaligned access is split into several legal transactions.
//
// Authentic MicroRV32 behaviours (Table I), all switchable:
//  * fully supports misaligned loads/stores (no trap) — the ISS traps;
//  * WFI is not implemented and raises an illegal-instruction trap;
//  * CSR bugs via CsrConfig::microrv32() (missing traps for
//    unimplemented/read-only CSRs, trap-on-write for writable counters,
//    missing counters/mscratch/mcounteren, per-clock mcycle).
//
// Fault-injection hooks (Table II): the decode table is per-instance and
// mutable (E0-E2 clear mask bits), and ExecFaults switches the datapath
// faults E3-E9.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "expr/builder.hpp"
#include "iss/csrfile.hpp"
#include "iss/retire.hpp"
#include "rv32/instr.hpp"
#include "rv32/regfile.hpp"
#include "symex/state.hpp"

namespace rvsym::rtl {

/// Datapath fault switches for the injected errors E3-E9 (§V-B), plus
/// two corner-case extension faults (X0, X1) used by the fuzzing
/// comparison: bugs that only trigger on a single input value, which
/// random testing essentially never hits but symbolic execution solves
/// for directly (the paper's motivating claim).
struct ExecFaults {
  bool addi_result_bit0_stuck0 = false;  ///< E3
  bool sub_result_bit31_stuck0 = false;  ///< E4
  bool jal_no_pc_update = false;         ///< E5
  bool bne_behaves_as_beq = false;       ///< E6
  bool lbu_endianness_flip = false;      ///< E7
  bool lb_no_sign_extend = false;        ///< E8
  bool lw_low_half_only = false;         ///< E9
  /// X0: ADD result corrupted only when rs2 == 0xCAFEBABE.
  bool add_wrong_on_magic = false;
  /// X1: BLT decides wrongly only when rs1 == INT32_MIN.
  bool blt_wrong_at_int_min = false;

  /// Combines two fault sets (a fault is active if set in either).
  ExecFaults operator|(const ExecFaults& o) const {
    ExecFaults r;
    r.addi_result_bit0_stuck0 = addi_result_bit0_stuck0 || o.addi_result_bit0_stuck0;
    r.sub_result_bit31_stuck0 = sub_result_bit31_stuck0 || o.sub_result_bit31_stuck0;
    r.jal_no_pc_update = jal_no_pc_update || o.jal_no_pc_update;
    r.bne_behaves_as_beq = bne_behaves_as_beq || o.bne_behaves_as_beq;
    r.lbu_endianness_flip = lbu_endianness_flip || o.lbu_endianness_flip;
    r.lb_no_sign_extend = lb_no_sign_extend || o.lb_no_sign_extend;
    r.lw_low_half_only = lw_low_half_only || o.lw_low_half_only;
    r.add_wrong_on_magic = add_wrong_on_magic || o.add_wrong_on_magic;
    r.blt_wrong_at_int_min = blt_wrong_at_int_min || o.blt_wrong_at_int_min;
    return r;
  }
};

struct RtlConfig {
  iss::CsrConfig csr = iss::CsrConfig::microrv32();
  /// Authentic MicroRV32: misaligned loads/stores are fully supported
  /// (no trap). Set false for the spec-matching "fixed" core that traps
  /// like the reference ISS.
  bool support_misaligned = true;
  /// Authentic MicroRV32: WFI is missing and traps as illegal.
  bool missing_wfi = true;
  /// Authentic MicroRV32 pipeline behaviour: minstret is advanced when an
  /// instruction enters execution, so a CSR read of minstret observes the
  /// current instruction already counted — the ISS counts at retirement.
  /// This is the "deviating counting logic" mismatch of Table I.
  bool count_instret_at_execute = true;
  /// Take machine interrupts (MEI/MSI/MTI by priority) at fetch.
  bool enable_interrupts = true;
  std::uint32_t reset_pc = 0x80000000;
  ExecFaults faults;
};

/// A fixed core with no Table-I bugs: the DUT base for Table II.
RtlConfig fixedRtlConfig();

struct IBusPort {
  // core -> testbench
  bool fetch_enable = false;
  std::uint32_t address = 0;
  // testbench -> core
  bool instruction_ready = false;
  expr::ExprRef instruction;
};

struct DBusPort {
  // core -> testbench
  bool enable = false;
  bool write = false;
  std::uint32_t address = 0;   ///< word-aligned
  std::uint8_t strobe = 0;     ///< byte-lane select, see header comment
  expr::ExprRef wdata;         ///< 32-bit store data (lanes per strobe)
  // testbench -> core
  bool data_ready = false;
  expr::ExprRef rdata;         ///< full 32-bit word at `address`
};

struct RvfiPort {
  bool valid = false;  ///< high for exactly one tick per retirement
  iss::RetireInfo info;
};

class MicroRv32Core {
 public:
  MicroRv32Core(expr::ExprBuilder& eb, RtlConfig config = {});

  /// One clock edge. The testbench services bus requests between ticks.
  void tick(symex::ExecState& st);

  IBusPort ibus;
  DBusPort dbus;
  RvfiPort rvfi;

  /// The per-instance decode table (mutable for E0-E2 injection).
  std::vector<rv32::DecodePattern>& decodeTableMut() { return decode_table_; }
  ExecFaults& faults() { return config_.faults; }

  rv32::RegFile& regs() { return regs_; }
  iss::CsrFile& csrs() { return csrs_; }
  const expr::ExprRef& pc() const { return pc_; }
  void setPc(const expr::ExprRef& pc) { pc_ = pc; }
  const RtlConfig& config() const { return config_; }
  std::uint64_t cycleCount() const { return cycle_count_; }

 private:
  enum class State { Fetch, WaitInstr, Execute, MemIssue, MemWait, WriteBack };

  /// One strobed bus transaction of a (possibly split) access.
  struct Txn {
    std::uint32_t word_addr = 0;
    std::uint8_t strobe = 0;
    std::uint8_t first_byte = 0;  ///< index of the access byte in lane 0..3
    std::uint8_t num_bytes = 0;
  };

  void execute(symex::ExecState& st);
  void finishLoad(symex::ExecState& st);
  rv32::Opcode decodeSymbolic(symex::ExecState& st, const expr::ExprRef& instr);
  /// Forks over the two low address bits and returns them concretely.
  unsigned resolveLow2(symex::ExecState& st, const expr::ExprRef& addr);
  /// Splits an access at `addr` of `bytes` bytes into legal transactions.
  std::vector<Txn> planAccess(std::uint32_t addr, unsigned bytes) const;
  void issueTxn(const Txn& txn);
  void raiseTrap(rv32::Cause cause, const expr::ExprRef& tval);
  void setRdChannel(const expr::ExprRef& rd_idx, const expr::ExprRef& value);
  void retire();

  expr::ExprBuilder& eb_;
  RtlConfig config_;
  std::vector<rv32::DecodePattern> decode_table_;
  rv32::RegFile regs_;
  iss::CsrFile csrs_;

  State state_ = State::Fetch;
  expr::ExprRef pc_;
  std::uint32_t pc_concrete_ = 0;
  expr::ExprRef instr_;
  std::uint64_t cycle_count_ = 0;

  // In-flight retirement record, filled across Execute/Mem/WriteBack.
  iss::RetireInfo pending_;

  // In-flight memory access.
  rv32::Opcode mem_op_ = rv32::Opcode::Illegal;
  std::uint32_t mem_addr_c_ = 0;
  unsigned mem_bytes_ = 0;
  std::vector<Txn> txns_;
  std::size_t txn_index_ = 0;
  expr::ExprRef store_data_;               // up to 32 bits
  std::array<expr::ExprRef, 4> load_bytes_;
  expr::ExprRef rd_idx_pending_;
};

}  // namespace rvsym::rtl
