// MicroRV32-class RTL core model (verilated-Verilog substitute).
//
// A cycle-accurate multi-cycle FSM core written the way verilator output
// is consumed: a module object with public port structs (IBus, DBus,
// RVFI) and a tick() clock edge. Control signals are concrete bools;
// data signals are symbolic expressions.
//
// Bus protocol (paper §IV-C):
//  * IBus: core raises fetch_enable with a concrete address; the
//    testbench answers with instruction + instruction_ready for one cycle.
//  * DBus: strobe-based (AXI/Wishbone-style). Valid strobes are 0001,
//    0010, 0100, 1000 (byte), 0011, 1100 (half) and 1111 (word); the
//    address is word-aligned and the strobe selects byte lanes. A
//    misaligned access is split into several legal transactions.
//
// Authentic MicroRV32 behaviours (Table I), all switchable:
//  * fully supports misaligned loads/stores (no trap) — the ISS traps;
//  * WFI is not implemented and raises an illegal-instruction trap;
//  * CSR bugs via CsrConfig::microrv32() (missing traps for
//    unimplemented/read-only CSRs, trap-on-write for writable counters,
//    missing counters/mscratch/mcounteren, per-clock mcycle).
//
// Fault-injection hooks (Table II): the decode table is per-instance and
// mutable (E0-E2 clear mask bits), and ExecFaults switches the datapath
// faults E3-E9.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "expr/builder.hpp"
#include "iss/csrfile.hpp"
#include "iss/retire.hpp"
#include "rv32/instr.hpp"
#include "rv32/regfile.hpp"
#include "symex/state.hpp"

namespace rvsym::rtl {

/// Kinds of parameterized load/store-lane faults (generalizing the
/// paper's E7-E9 to every memory operation).
enum class MemFaultKind : std::uint8_t {
  /// Byte lanes selected/placed in reversed order (E7 on LBU).
  EndianFlip,
  /// Extension polarity inverted: LB/LH zero-extend (E8 on LB),
  /// LBU/LHU sign-extend.
  SignFlip,
  /// Only the low 16 bits of a word access take effect (E9 on LW; on
  /// SW the upper half of the store data is zeroed).
  LowHalf,
};

/// Datapath fault model for the injected errors of §V-B and the mutation
/// campaign engine built on top of them. The paper's fixed list E3-E9 is
/// generalized into three table-driven parameterized families (stuck-at
/// result bits, branch-comparator swaps, load/store-lane faults) plus a
/// small set of parameterless switches.
///
/// The parameterless switches are backed by an enum-indexed array so
/// operator| can never silently drop a field: adding a Flag without
/// extending the descriptor table breaks the static_assert in core.cpp,
/// and the OR-combine loops over the array instead of naming members.
struct ExecFaults {
  /// Parameterless switches. kJalNoPcUpdate is the paper's E5; the X*
  /// flags are single-value corner-case bugs used by the fuzzing
  /// comparison: random testing essentially never hits them but symbolic
  /// execution solves for them directly (the paper's motivating claim).
  enum Flag : unsigned {
    kJalNoPcUpdate = 0,   ///< E5: JAL does not change the PC
    kJalrNoPcUpdate,      ///< E5 generalized to JALR
    kAddWrongOnMagic,     ///< X0: ADD corrupted only when rs2 == 0xCAFEBABE
    kBltWrongAtIntMin,    ///< X1: BLT wrong only when rs1 == INT32_MIN
    kNumFlags,
  };
  std::array<bool, kNumFlags> flags{};

  /// Stuck-at fault on one bit of an instruction's ALU result
  /// (generalizing E3/E4 to every result bit of every ALU op).
  struct StuckBit {
    rv32::Opcode op;
    std::uint8_t bit;  ///< 0..31
    bool value;        ///< stuck-at-1 when true, stuck-at-0 when false
  };
  std::vector<StuckBit> stuck_bits;

  /// Branch comparator swap: `op` evaluates the condition of
  /// `behaves_as` (generalizing E6 to every ordered branch pair).
  struct BranchSwap {
    rv32::Opcode op;
    rv32::Opcode behaves_as;
  };
  std::vector<BranchSwap> branch_swaps;

  /// Load/store-lane fault on one memory operation.
  struct MemFault {
    rv32::Opcode op;
    MemFaultKind kind;
  };
  std::vector<MemFault> mem_faults;

  bool flag(Flag f) const { return flags[f]; }
  void setFlag(Flag f, bool v = true) { flags[f] = v; }

  bool any() const {
    for (bool b : flags)
      if (b) return true;
    return !stuck_bits.empty() || !branch_swaps.empty() ||
           !mem_faults.empty();
  }

  /// AND mask clearing every bit of `op`'s result stuck at 0.
  std::uint32_t resultAndMask(rv32::Opcode op) const {
    std::uint32_t m = 0xFFFFFFFFu;
    for (const StuckBit& s : stuck_bits)
      if (s.op == op && !s.value) m &= ~(1u << s.bit);
    return m;
  }
  /// OR mask setting every bit of `op`'s result stuck at 1.
  std::uint32_t resultOrMask(rv32::Opcode op) const {
    std::uint32_t m = 0;
    for (const StuckBit& s : stuck_bits)
      if (s.op == op && s.value) m |= 1u << s.bit;
    return m;
  }
  /// The comparator `op` actually evaluates (itself when unswapped).
  rv32::Opcode branchBehavesAs(rv32::Opcode op) const {
    for (const BranchSwap& b : branch_swaps)
      if (b.op == op) return b.behaves_as;
    return op;
  }
  bool hasMemFault(rv32::Opcode op, MemFaultKind kind) const {
    for (const MemFault& m : mem_faults)
      if (m.op == op && m.kind == kind) return true;
    return false;
  }

  /// Combines two fault sets (a fault is active if set in either).
  ExecFaults operator|(const ExecFaults& o) const {
    ExecFaults r = *this;
    for (unsigned i = 0; i < kNumFlags; ++i)
      r.flags[i] = flags[i] || o.flags[i];
    r.stuck_bits.insert(r.stuck_bits.end(), o.stuck_bits.begin(),
                        o.stuck_bits.end());
    r.branch_swaps.insert(r.branch_swaps.end(), o.branch_swaps.begin(),
                          o.branch_swaps.end());
    r.mem_faults.insert(r.mem_faults.end(), o.mem_faults.begin(),
                        o.mem_faults.end());
    return r;
  }
};

/// Static descriptor of one ExecFaults::Flag — the name is the stable
/// identifier used in mutant ids, journals and bundle manifests.
struct ExecFaultFlagInfo {
  const char* name;
  const char* description;
  /// The instruction the switch targets (campaign reporting).
  rv32::Opcode target;
};

/// One entry per ExecFaults::Flag, in enum order; core.cpp statically
/// asserts the table covers every flag.
std::span<const ExecFaultFlagInfo> execFaultFlagTable();

struct RtlConfig {
  iss::CsrConfig csr = iss::CsrConfig::microrv32();
  /// Authentic MicroRV32: misaligned loads/stores are fully supported
  /// (no trap). Set false for the spec-matching "fixed" core that traps
  /// like the reference ISS.
  bool support_misaligned = true;
  /// Authentic MicroRV32: WFI is missing and traps as illegal.
  bool missing_wfi = true;
  /// Authentic MicroRV32 pipeline behaviour: minstret is advanced when an
  /// instruction enters execution, so a CSR read of minstret observes the
  /// current instruction already counted — the ISS counts at retirement.
  /// This is the "deviating counting logic" mismatch of Table I.
  bool count_instret_at_execute = true;
  /// Take machine interrupts (MEI/MSI/MTI by priority) at fetch.
  bool enable_interrupts = true;
  std::uint32_t reset_pc = 0x80000000;
  ExecFaults faults;
};

/// A fixed core with no Table-I bugs: the DUT base for Table II.
RtlConfig fixedRtlConfig();

struct IBusPort {
  // core -> testbench
  bool fetch_enable = false;
  std::uint32_t address = 0;
  // testbench -> core
  bool instruction_ready = false;
  expr::ExprRef instruction;
};

struct DBusPort {
  // core -> testbench
  bool enable = false;
  bool write = false;
  std::uint32_t address = 0;   ///< word-aligned
  std::uint8_t strobe = 0;     ///< byte-lane select, see header comment
  expr::ExprRef wdata;         ///< 32-bit store data (lanes per strobe)
  // testbench -> core
  bool data_ready = false;
  expr::ExprRef rdata;         ///< full 32-bit word at `address`
};

struct RvfiPort {
  bool valid = false;  ///< high for exactly one tick per retirement
  iss::RetireInfo info;
};

class MicroRv32Core {
 public:
  MicroRv32Core(expr::ExprBuilder& eb, RtlConfig config = {});

  /// One clock edge. The testbench services bus requests between ticks.
  void tick(symex::ExecState& st);

  IBusPort ibus;
  DBusPort dbus;
  RvfiPort rvfi;

  /// The per-instance decode table (mutable for E0-E2 injection).
  std::vector<rv32::DecodePattern>& decodeTableMut() { return decode_table_; }
  ExecFaults& faults() { return config_.faults; }

  rv32::RegFile& regs() { return regs_; }
  iss::CsrFile& csrs() { return csrs_; }
  const expr::ExprRef& pc() const { return pc_; }
  void setPc(const expr::ExprRef& pc) { pc_ = pc; }
  const RtlConfig& config() const { return config_; }
  std::uint64_t cycleCount() const { return cycle_count_; }

 private:
  enum class State { Fetch, WaitInstr, Execute, MemIssue, MemWait, WriteBack };

  /// One strobed bus transaction of a (possibly split) access.
  struct Txn {
    std::uint32_t word_addr = 0;
    std::uint8_t strobe = 0;
    std::uint8_t first_byte = 0;  ///< index of the access byte in lane 0..3
    std::uint8_t num_bytes = 0;
  };

  void execute(symex::ExecState& st);
  void finishLoad(symex::ExecState& st);
  rv32::Opcode decodeSymbolic(symex::ExecState& st, const expr::ExprRef& instr);
  /// Forks over the two low address bits and returns them concretely.
  unsigned resolveLow2(symex::ExecState& st, const expr::ExprRef& addr);
  /// Splits an access at `addr` of `bytes` bytes into legal transactions.
  std::vector<Txn> planAccess(std::uint32_t addr, unsigned bytes) const;
  void issueTxn(const Txn& txn);
  void raiseTrap(rv32::Cause cause, const expr::ExprRef& tval);
  void setRdChannel(const expr::ExprRef& rd_idx, const expr::ExprRef& value);
  void retire();

  expr::ExprBuilder& eb_;
  RtlConfig config_;
  std::vector<rv32::DecodePattern> decode_table_;
  rv32::RegFile regs_;
  iss::CsrFile csrs_;

  State state_ = State::Fetch;
  expr::ExprRef pc_;
  std::uint32_t pc_concrete_ = 0;
  expr::ExprRef instr_;
  std::uint64_t cycle_count_ = 0;

  // In-flight retirement record, filled across Execute/Mem/WriteBack.
  iss::RetireInfo pending_;

  // In-flight memory access.
  rv32::Opcode mem_op_ = rv32::Opcode::Illegal;
  std::uint32_t mem_addr_c_ = 0;
  unsigned mem_bytes_ = 0;
  std::vector<Txn> txns_;
  std::size_t txn_index_ = 0;
  expr::ExprRef store_data_;               // up to 32 bits
  std::array<expr::ExprRef, 4> load_bytes_;
  expr::ExprRef rd_idx_pending_;
};

}  // namespace rvsym::rtl
