// VCD (Value Change Dump) trace writer for the RTL core model — the
// standard EDA waveform format, so concrete co-simulation runs can be
// inspected in GTKWave and friends exactly like a verilated simulation.
//
// Symbolic (non-constant) data values are dumped as 'x', matching how a
// real simulator renders unknowns.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rtl/core.hpp"

namespace rvsym::rtl {

class VcdWriter {
 public:
  /// Binds to a core and writes the VCD header to `out`. The stream must
  /// outlive the writer.
  VcdWriter(std::ostream& out, const MicroRv32Core& core,
            const std::string& top_name = "microrv32");

  /// Samples every traced signal at the current time step and emits the
  /// changes. Call once per core tick (after testbench servicing).
  void sample();

 private:
  struct Signal {
    std::string name;
    unsigned width;
    char id;
    std::string last;  // last emitted value string
  };

  void writeHeader(const std::string& top_name);
  std::string formatValue(const expr::ExprRef& e, unsigned width) const;
  std::string formatBits(std::uint64_t v, unsigned width) const;
  void emit(Signal& sig, const std::string& value);

  std::ostream& out_;
  const MicroRv32Core& core_;
  std::vector<Signal> signals_;
  std::uint64_t time_ = 0;
};

}  // namespace rvsym::rtl
