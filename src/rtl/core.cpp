#include "rtl/core.hpp"

#include <cassert>

#include "rv32/fields.hpp"

namespace rvsym::rtl {

using expr::ExprRef;
using rv32::Cause;
using rv32::Opcode;
using symex::ExecState;

namespace {

// One row per ExecFaults::Flag, in enum order. Extending the Flag enum
// without describing the new switch here is a compile error — the
// OR-combine in ExecFaults::operator| iterates the array, so the only
// way to "forget" a flag is to forget this table, and the assert below
// catches that.
constexpr ExecFaultFlagInfo kFlagTable[] = {
    {"jal_no_pc_update", "JAL does not change the PC", Opcode::Jal},
    {"jalr_no_pc_update", "JALR does not change the PC", Opcode::Jalr},
    {"add_wrong_on_magic", "ADD result corrupted only when rs2 == 0xCAFEBABE",
     Opcode::Add},
    {"blt_wrong_at_int_min", "BLT decides wrongly only when rs1 == INT32_MIN",
     Opcode::Blt},
};
static_assert(std::size(kFlagTable) == ExecFaults::kNumFlags,
              "every ExecFaults::Flag needs a descriptor row");

}  // namespace

std::span<const ExecFaultFlagInfo> execFaultFlagTable() { return kFlagTable; }

RtlConfig fixedRtlConfig() {
  RtlConfig c;
  c.csr = iss::CsrConfig::specCorrect();
  // Match the reference ISS behaviours so that only injected faults
  // diverge: trap on misaligned accesses, implement WFI, count cycles
  // like the abstract ISS timing model.
  c.support_misaligned = false;
  c.missing_wfi = false;
  c.count_instret_at_execute = false;
  c.csr.cycle_counts_instructions = true;
  return c;
}

MicroRv32Core::MicroRv32Core(expr::ExprBuilder& eb, RtlConfig config)
    : eb_(eb),
      config_(config),
      decode_table_(rv32::decodeTable().begin(), rv32::decodeTable().end()),
      regs_(eb),
      csrs_(eb, config.csr),
      pc_(eb.constant(config.reset_pc, 32)) {}

Opcode MicroRv32Core::decodeSymbolic(ExecState& st, const ExprRef& instr) {
  // First match wins: E0-E2 widen a row by clearing mask bits, making
  // formerly-reserved encodings decode as the (faulty) row.
  for (const rv32::DecodePattern& p : decode_table_)
    if (st.branch(rv32::sym::matches(eb_, instr, p))) return p.op;
  return Opcode::Illegal;
}

unsigned MicroRv32Core::resolveLow2(ExecState& st, const ExprRef& addr) {
  const ExprRef low2 = eb_.extract(addr, 0, 2);
  for (unsigned k = 0; k < 3; ++k)
    if (st.branch(eb_.eqConst(low2, k))) return k;
  return 3;
}

std::vector<MicroRv32Core::Txn> MicroRv32Core::planAccess(
    std::uint32_t addr, unsigned bytes) const {
  std::vector<Txn> txns;
  const unsigned offset = addr & 3;
  if (bytes == 4 && offset == 0) {
    txns.push_back({addr, 0b1111, 0, 4});
    return txns;
  }
  if (bytes == 2 && offset == 0) {
    txns.push_back({addr, 0b0011, 0, 2});
    return txns;
  }
  if (bytes == 2 && offset == 2) {
    txns.push_back({addr & ~3u, 0b1100, 0, 2});
    return txns;
  }
  // Everything else (single bytes and misaligned accesses) is issued as
  // byte transactions — the only remaining legal strobes.
  for (unsigned i = 0; i < bytes; ++i) {
    const std::uint32_t byte_addr = addr + i;
    txns.push_back({byte_addr & ~3u,
                    static_cast<std::uint8_t>(1u << (byte_addr & 3)),
                    static_cast<std::uint8_t>(i), 1});
  }
  return txns;
}

void MicroRv32Core::issueTxn(const Txn& txn) {
  dbus.enable = true;
  dbus.write = mem_op_ == Opcode::Sb || mem_op_ == Opcode::Sh ||
               mem_op_ == Opcode::Sw;
  dbus.address = txn.word_addr;
  dbus.strobe = txn.strobe;
  if (dbus.write) {
    // Place the store bytes on their lanes; unselected lanes are zero.
    // A store-side EndianFlip fault places the data bytes in reversed
    // order (lane selection is unchanged, so the fault is invisible on
    // the store channel and only a load-back can expose it).
    const bool flip =
        config_.faults.hasMemFault(mem_op_, MemFaultKind::EndianFlip);
    ExprRef word = eb_.constant(0, 32);
    for (unsigned i = 0; i < txn.num_bytes; ++i) {
      const unsigned byte_index = txn.first_byte + i;
      const unsigned lane = (mem_addr_c_ + byte_index) & 3;
      const unsigned src =
          flip ? mem_bytes_ - 1 - byte_index : byte_index;
      const ExprRef byte = eb_.extract(store_data_, src * 8, 8);
      word = eb_.orOp(
          word, eb_.shl(eb_.zext(byte, 32), eb_.constant(lane * 8, 32)));
    }
    dbus.wdata = word;
  } else {
    dbus.wdata = eb_.constant(0, 32);
  }
}

void MicroRv32Core::raiseTrap(Cause cause, const ExprRef& tval) {
  pending_.trap = true;
  pending_.cause = static_cast<std::uint32_t>(cause);
  pending_.rd_index = nullptr;
  pending_.rd_value = nullptr;
  pending_.mem_valid = false;
  pending_.next_pc =
      csrs_.enterTrap(pending_.pc, static_cast<std::uint32_t>(cause), tval);
  state_ = State::WriteBack;
}

void MicroRv32Core::setRdChannel(const ExprRef& rd_idx, const ExprRef& value) {
  regs_.write(eb_, rd_idx, value);
  pending_.rd_index = rd_idx;
  pending_.rd_value =
      eb_.ite(eb_.eqConst(rd_idx, 0), eb_.constant(0, 32), value);
}

void MicroRv32Core::retire() {
  // In the ISS-compatible timing configuration, mcycle advances once per
  // retirement instead of once per clock tick.
  if (config_.csr.cycle_counts_instructions) csrs_.tickCycle();
  rvfi.valid = true;
  rvfi.info = pending_;
  pc_ = pending_.next_pc;
  if (!pending_.trap && !config_.count_instret_at_execute)
    csrs_.tickInstret();
  state_ = State::Fetch;
}

void MicroRv32Core::tick(ExecState& st) {
  if (!config_.csr.cycle_counts_instructions)
    csrs_.tickCycle();  // authentic wall-clock cycle counting (per tick)
  ++cycle_count_;
  rvfi.valid = false;

  switch (state_) {
    case State::Fetch: {
      // Interrupts are sampled at fetch, priority MEI > MSI > MTI,
      // mirroring the reference model's between-instruction semantics.
      if (config_.enable_interrupts) {
        static constexpr struct {
          unsigned bit;
          std::uint32_t cause;
        } kIrqs[] = {{11, 0x8000000Bu}, {3, 0x80000003u}, {7, 0x80000007u}};
        for (const auto& irq : kIrqs) {
          if (st.branch(csrs_.interruptRequest(irq.bit))) {
            pc_ = csrs_.enterTrap(pc_, irq.cause, eb_.constant(0, 32));
            break;
          }
        }
      }
      pc_concrete_ = static_cast<std::uint32_t>(st.concretize(pc_));
      pc_ = eb_.constant(pc_concrete_, 32);
      ibus.address = pc_concrete_;
      ibus.fetch_enable = true;
      state_ = State::WaitInstr;
      break;
    }
    case State::WaitInstr:
      if (ibus.instruction_ready) {
        instr_ = ibus.instruction;
        ibus.fetch_enable = false;
        state_ = State::Execute;
      }
      break;
    case State::Execute:
      execute(st);
      break;
    case State::MemIssue:
      issueTxn(txns_[txn_index_]);
      state_ = State::MemWait;
      break;
    case State::MemWait:
      if (dbus.data_ready) {
        const Txn& txn = txns_[txn_index_];
        if (!dbus.write) {
          const bool lane_flip =  // E7 generalized: any load, lane xor 3
              config_.faults.hasMemFault(mem_op_, MemFaultKind::EndianFlip);
          for (unsigned i = 0; i < txn.num_bytes; ++i) {
            const unsigned byte_index = txn.first_byte + i;
            unsigned lane = (mem_addr_c_ + byte_index) & 3;
            if (lane_flip) lane ^= 3;
            load_bytes_[byte_index] = eb_.extract(dbus.rdata, lane * 8, 8);
          }
        }
        dbus.enable = false;
        ++txn_index_;
        if (txn_index_ < txns_.size()) {
          state_ = State::MemIssue;
        } else if (dbus.write) {
          state_ = State::WriteBack;
        } else {
          finishLoad(st);
          state_ = State::WriteBack;
        }
      }
      break;
    case State::WriteBack:
      retire();
      break;
  }
}

void MicroRv32Core::finishLoad(ExecState&) {
  // Assemble the loaded value from the captured lanes.
  ExprRef raw;
  switch (mem_bytes_) {
    case 1:
      raw = load_bytes_[0];
      break;
    case 2:
      raw = eb_.concat(load_bytes_[1], load_bytes_[0]);
      break;
    default:
      raw = eb_.concat(eb_.concat(load_bytes_[3], load_bytes_[2]),
                       eb_.concat(load_bytes_[1], load_bytes_[0]));
      break;
  }

  // E8 generalized: inverted extension polarity on any sub-word load.
  const bool sign_flip =
      config_.faults.hasMemFault(mem_op_, MemFaultKind::SignFlip);
  ExprRef value;
  switch (mem_op_) {
    case Opcode::Lb:
    case Opcode::Lh:
      value = sign_flip ? eb_.zext(raw, 32) : eb_.sext(raw, 32);
      break;
    case Opcode::Lbu:
    case Opcode::Lhu:
      value = sign_flip ? eb_.sext(raw, 32) : eb_.zext(raw, 32);
      break;
    default:  // Lw
      if (config_.faults.hasMemFault(mem_op_, MemFaultKind::LowHalf))  // E9
        value = eb_.zext(eb_.extract(raw, 0, 16), 32);
      else
        value = raw;
      break;
  }
  setRdChannel(rd_idx_pending_, value);
  pending_.mem_valid = true;
  pending_.mem_is_store = false;
  pending_.mem_size = mem_bytes_;
  pending_.mem_addr = eb_.constant(mem_addr_c_, 32);
  pending_.mem_data = eb_.zext(raw, 32);
}

void MicroRv32Core::execute(ExecState& st) {
  if (config_.count_instret_at_execute) csrs_.tickInstret();
  pending_ = iss::RetireInfo{};
  pending_.pc = pc_;
  pending_.instr = instr_;
  const ExprRef word4 = eb_.constant(4, 32);
  pending_.next_pc = eb_.add(pc_, word4);

  const ExprRef instr = instr_;
  const Opcode op = decodeSymbolic(st, instr);

  const ExprRef rd_idx = rv32::sym::rd(eb_, instr);
  const ExprRef rs1_val = regs_.read(eb_, rv32::sym::rs1(eb_, instr));
  const ExprRef rs2_val = regs_.read(eb_, rv32::sym::rs2(eb_, instr));

  // ALU write-back with stuck-at result-bit faults applied (E3/E4
  // generalized: any bit of any ALU result, stuck at either value). The
  // empty-table check keeps the fault-free hot path mask-free.
  const auto setAluResult = [&](const ExprRef& v0) {
    ExprRef v = v0;
    if (!config_.faults.stuck_bits.empty()) {
      const std::uint32_t and_mask = config_.faults.resultAndMask(op);
      const std::uint32_t or_mask = config_.faults.resultOrMask(op);
      if (and_mask != 0xFFFFFFFFu)
        v = eb_.andOp(v, eb_.constant(and_mask, 32));
      if (or_mask != 0) v = eb_.orOp(v, eb_.constant(or_mask, 32));
    }
    setRdChannel(rd_idx, v);
  };

  const auto fetchMisaligned = [&](const ExprRef& target) {
    return st.branch(eb_.ne(eb_.andOp(target, eb_.constant(3, 32)),
                            eb_.constant(0, 32)));
  };

  // Starts a data access: forks over the low address bits, applies the
  // misalignment policy, concretizes and plans bus transactions.
  const auto startMem = [&](const ExprRef& addr_e, unsigned bytes,
                            Opcode memop) -> bool {
    const unsigned low2 = bytes == 1 ? 0 : resolveLow2(st, addr_e);
    const bool is_misaligned =
        (bytes == 4 && low2 != 0) || (bytes == 2 && (low2 & 1) != 0);
    if (is_misaligned && !config_.support_misaligned) {
      raiseTrap(memop == Opcode::Sb || memop == Opcode::Sh ||
                        memop == Opcode::Sw
                    ? Cause::MisalignedStore
                    : Cause::MisalignedLoad,
                addr_e);
      return false;
    }
    mem_op_ = memop;
    mem_bytes_ = bytes;
    mem_addr_c_ = static_cast<std::uint32_t>(st.concretize(addr_e));
    txns_ = planAccess(mem_addr_c_, bytes);
    txn_index_ = 0;
    rd_idx_pending_ = rd_idx;
    issueTxn(txns_[0]);
    state_ = State::MemWait;
    return true;
  };

  switch (op) {
    case Opcode::Lui:
      setAluResult(rv32::sym::immU(eb_, instr));
      break;
    case Opcode::Auipc:
      setAluResult(eb_.add(pc_, rv32::sym::immU(eb_, instr)));
      break;
    case Opcode::Jal: {
      const ExprRef target = eb_.add(pc_, rv32::sym::immJ(eb_, instr));
      if (fetchMisaligned(target)) {
        raiseTrap(Cause::MisalignedFetch, target);
        return;
      }
      setRdChannel(rd_idx, eb_.add(pc_, word4));
      if (!config_.faults.flag(ExecFaults::kJalNoPcUpdate))  // E5 keeps pc+4
        pending_.next_pc = target;
      break;
    }
    case Opcode::Jalr: {
      const ExprRef target =
          eb_.andOp(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)),
                    eb_.constant(~1u, 32));
      if (fetchMisaligned(target)) {
        raiseTrap(Cause::MisalignedFetch, target);
        return;
      }
      setRdChannel(rd_idx, eb_.add(pc_, word4));
      if (!config_.faults.flag(ExecFaults::kJalrNoPcUpdate))
        pending_.next_pc = target;
      break;
    }
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu: {
      // E6 generalized: a comparator swap makes `op` evaluate the
      // condition of another branch.
      const Opcode cmp = config_.faults.branchBehavesAs(op);
      ExprRef cond;
      switch (cmp) {
        case Opcode::Beq: cond = eb_.eq(rs1_val, rs2_val); break;
        case Opcode::Bne: cond = eb_.ne(rs1_val, rs2_val); break;
        case Opcode::Blt: cond = eb_.slt(rs1_val, rs2_val); break;
        case Opcode::Bge: cond = eb_.sge(rs1_val, rs2_val); break;
        case Opcode::Bltu: cond = eb_.ult(rs1_val, rs2_val); break;
        default: cond = eb_.uge(rs1_val, rs2_val); break;
      }
      if (op == Opcode::Blt &&
          config_.faults.flag(ExecFaults::kBltWrongAtIntMin))  // X1
        cond = eb_.ite(eb_.eqConst(rs1_val, 0x80000000u), eb_.notOp(cond),
                       cond);
      if (st.branch(cond)) {
        const ExprRef target = eb_.add(pc_, rv32::sym::immB(eb_, instr));
        if (fetchMisaligned(target)) {
          raiseTrap(Cause::MisalignedFetch, target);
          return;
        }
        pending_.next_pc = target;
      }
      break;
    }
    case Opcode::Lb:
    case Opcode::Lbu:
      if (!startMem(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)), 1, op))
        return;
      return;  // retirement continues in the memory states
    case Opcode::Lh:
    case Opcode::Lhu:
      if (!startMem(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)), 2, op))
        return;
      return;
    case Opcode::Lw:
      if (!startMem(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)), 4, op))
        return;
      return;
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw: {
      const unsigned bytes = op == Opcode::Sw ? 4 : op == Opcode::Sh ? 2 : 1;
      store_data_ = eb_.extract(rs2_val, 0, bytes * 8);
      if (config_.faults.hasMemFault(op, MemFaultKind::LowHalf))  // SW width
        store_data_ = eb_.zext(eb_.extract(rs2_val, 0, 16), 32);
      const ExprRef addr_e = eb_.add(rs1_val, rv32::sym::immS(eb_, instr));
      if (!startMem(addr_e, bytes, op)) return;
      pending_.mem_valid = true;
      pending_.mem_is_store = true;
      pending_.mem_size = bytes;
      pending_.mem_addr = eb_.constant(mem_addr_c_, 32);
      pending_.mem_data = eb_.zext(store_data_, 32);
      return;
    }
    case Opcode::Addi:
      setAluResult(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Slti:
      setAluResult(eb_.zext(eb_.slt(rs1_val, rv32::sym::immI(eb_, instr)), 32));
      break;
    case Opcode::Sltiu:
      setAluResult(eb_.zext(eb_.ult(rs1_val, rv32::sym::immI(eb_, instr)), 32));
      break;
    case Opcode::Xori:
      setAluResult(eb_.xorOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Ori:
      setAluResult(eb_.orOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Andi:
      setAluResult(eb_.andOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Slli:
      setAluResult(eb_.shl(rs1_val,
                           eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Srli:
      setAluResult(eb_.lshr(rs1_val,
                            eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Srai:
      setAluResult(eb_.ashr(rs1_val,
                            eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Add: {
      ExprRef v = eb_.add(rs1_val, rs2_val);
      if (config_.faults.flag(ExecFaults::kAddWrongOnMagic))  // X0
        v = eb_.ite(eb_.eqConst(rs2_val, 0xCAFEBABE),
                    eb_.xorOp(v, eb_.constant(1, 32)), v);
      setAluResult(v);
      break;
    }
    case Opcode::Sub:
      setAluResult(eb_.sub(rs1_val, rs2_val));
      break;
    case Opcode::Sll:
      setAluResult(eb_.shl(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Slt:
      setAluResult(eb_.zext(eb_.slt(rs1_val, rs2_val), 32));
      break;
    case Opcode::Sltu:
      setAluResult(eb_.zext(eb_.ult(rs1_val, rs2_val), 32));
      break;
    case Opcode::Xor:
      setAluResult(eb_.xorOp(rs1_val, rs2_val));
      break;
    case Opcode::Srl:
      setAluResult(eb_.lshr(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Sra:
      setAluResult(eb_.ashr(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Or:
      setAluResult(eb_.orOp(rs1_val, rs2_val));
      break;
    case Opcode::And:
      setAluResult(eb_.andOp(rs1_val, rs2_val));
      break;
    case Opcode::Fence:
      break;
    case Opcode::Wfi:
      if (config_.missing_wfi) {
        // Authentic MicroRV32 error: WFI is not implemented at all and
        // erroneously raises an (illegal-instruction) trap.
        raiseTrap(Cause::IllegalInstr, instr);
        return;
      }
      break;  // NOP implementation, as the spec allows
    case Opcode::Ecall:
      raiseTrap(Cause::EcallFromM, eb_.constant(0, 32));
      return;
    case Opcode::Ebreak:
      raiseTrap(Cause::Breakpoint, pending_.pc);
      return;
    case Opcode::Mret:
      pending_.next_pc = csrs_.doMret();
      break;
    case Opcode::Csrrw:
    case Opcode::Csrrs:
    case Opcode::Csrrc:
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci: {
      const bool is_imm = op == Opcode::Csrrwi || op == Opcode::Csrrsi ||
                          op == Opcode::Csrrci;
      const bool is_rw = op == Opcode::Csrrw || op == Opcode::Csrrwi;
      const ExprRef src = is_imm ? rv32::sym::zimm(eb_, instr) : rs1_val;
      const ExprRef src_field = is_imm
                                    ? rv32::sym::zimm(eb_, instr)
                                    : eb_.zext(rv32::sym::rs1(eb_, instr), 32);

      const std::uint16_t addr =
          csrs_.resolve(st, rv32::sym::csrAddr(eb_, instr));
      const bool do_read = !is_rw || !st.branch(eb_.eqConst(rd_idx, 0));
      const bool do_write =
          is_rw || st.branch(eb_.ne(src_field, eb_.constant(0, 32)));

      ExprRef old = eb_.constant(0, 32);
      if (do_read) {
        const iss::CsrFile::ReadResult rr = csrs_.read(addr);
        if (rr.trap) {
          raiseTrap(Cause::IllegalInstr, instr);
          return;
        }
        old = rr.value;
      }
      if (do_write) {
        ExprRef new_value;
        if (is_rw)
          new_value = src;
        else if (op == Opcode::Csrrs || op == Opcode::Csrrsi)
          new_value = eb_.orOp(old, src);
        else
          new_value = eb_.andOp(old, eb_.notOp(src));
        if (csrs_.write(addr, new_value)) {
          raiseTrap(Cause::IllegalInstr, instr);
          return;
        }
      }
      setRdChannel(rd_idx, old);
      break;
    }
    case Opcode::Illegal:
      raiseTrap(Cause::IllegalInstr, instr);
      return;
  }

  state_ = State::WriteBack;
}

}  // namespace rvsym::rtl
