#include "rtl/vcd.hpp"

namespace rvsym::rtl {

namespace {

enum SignalIndex {
  kClk = 0,
  kFetchEnable,
  kIMemAddress,
  kIMemInstruction,
  kIMemReady,
  kDMemEnable,
  kDMemWrite,
  kDMemAddress,
  kDMemStrobe,
  kDMemWdata,
  kDMemRdata,
  kDMemReady,
  kRvfiValid,
  kRvfiPc,
  kRvfiNextPc,
  kRvfiTrap,
  kNumSignals,
};

}  // namespace

VcdWriter::VcdWriter(std::ostream& out, const MicroRv32Core& core,
                     const std::string& top_name)
    : out_(out), core_(core) {
  const struct {
    const char* name;
    unsigned width;
  } defs[kNumSignals] = {
      {"clk", 1},
      {"imem_fetchEnable", 1},
      {"imem_address", 32},
      {"imem_instruction", 32},
      {"imem_instructionReady", 1},
      {"dmem_enable", 1},
      {"dmem_write", 1},
      {"dmem_address", 32},
      {"dmem_wrStrobe", 4},
      {"dmem_writeData", 32},
      {"dmem_readData", 32},
      {"dmem_dataReady", 1},
      {"rvfi_valid", 1},
      {"rvfi_pc_rdata", 32},
      {"rvfi_pc_wdata", 32},
      {"rvfi_trap", 1},
  };
  char id = '!';
  for (const auto& d : defs) {
    signals_.push_back(Signal{d.name, d.width, id++, {}});
  }
  writeHeader(top_name);
}

void VcdWriter::writeHeader(const std::string& top_name) {
  out_ << "$date rvsym $end\n";
  out_ << "$version rvsym MicroRV32 core model $end\n";
  out_ << "$timescale 1ns $end\n";
  out_ << "$scope module " << top_name << " $end\n";
  for (const Signal& s : signals_) {
    out_ << "$var wire " << s.width << " " << s.id << " " << s.name;
    if (s.width > 1) out_ << " [" << (s.width - 1) << ":0]";
    out_ << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::formatBits(std::uint64_t v, unsigned width) const {
  std::string bits;
  for (unsigned i = width; i-- > 0;) bits += ((v >> i) & 1) ? '1' : '0';
  return bits;
}

std::string VcdWriter::formatValue(const expr::ExprRef& e,
                                   unsigned width) const {
  if (!e) return std::string(width, 'x');
  if (!e->isConstant()) return std::string(width, 'x');
  return formatBits(e->constantValue(), width);
}

void VcdWriter::emit(Signal& sig, const std::string& value) {
  if (value == sig.last) return;
  sig.last = value;
  if (sig.width == 1)
    out_ << value << sig.id << "\n";
  else
    out_ << "b" << value << " " << sig.id << "\n";
}

void VcdWriter::sample() {
  out_ << "#" << time_++ << "\n";
  emit(signals_[kClk], time_ % 2 == 1 ? "1" : "0");
  emit(signals_[kFetchEnable], core_.ibus.fetch_enable ? "1" : "0");
  emit(signals_[kIMemAddress], formatBits(core_.ibus.address, 32));
  emit(signals_[kIMemInstruction], formatValue(core_.ibus.instruction, 32));
  emit(signals_[kIMemReady], core_.ibus.instruction_ready ? "1" : "0");
  emit(signals_[kDMemEnable], core_.dbus.enable ? "1" : "0");
  emit(signals_[kDMemWrite], core_.dbus.write ? "1" : "0");
  emit(signals_[kDMemAddress], formatBits(core_.dbus.address, 32));
  emit(signals_[kDMemStrobe], formatBits(core_.dbus.strobe, 4));
  emit(signals_[kDMemWdata], formatValue(core_.dbus.wdata, 32));
  emit(signals_[kDMemRdata], formatValue(core_.dbus.rdata, 32));
  emit(signals_[kDMemReady], core_.dbus.data_ready ? "1" : "0");
  emit(signals_[kRvfiValid], core_.rvfi.valid ? "1" : "0");
  if (core_.rvfi.valid) {
    emit(signals_[kRvfiPc], formatValue(core_.rvfi.info.pc, 32));
    emit(signals_[kRvfiNextPc], formatValue(core_.rvfi.info.next_pc, 32));
    emit(signals_[kRvfiTrap], core_.rvfi.info.trap ? "1" : "0");
  }
}

}  // namespace rvsym::rtl
