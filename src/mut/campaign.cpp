#include "mut/campaign.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "core/coverage.hpp"
#include "mut/journal.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/flightrec/ring.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace rvsym::mut {

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::Killed: return "killed";
    case Verdict::Survived: return "survived";
    case Verdict::Equivalent: return "equivalent";
  }
  return "?";
}

namespace {

/// Drops a torn partial final line so a resumed campaign's appends
/// start on a fresh line — otherwise the first re-judged verdict would
/// glue onto the torn bytes and be unreadable to every later reader.
void truncateToLastNewline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  const std::size_t nl = text.find_last_of('\n');
  const std::size_t keep = nl == std::string::npos ? 0 : nl + 1;
  if (keep == text.size()) return;
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
}

/// One bounded hunt for this mutant at one instruction limit.
symex::EngineReport runHunt(const Mutant& mutant,
                            const CampaignOptions& options, unsigned limit,
                            solver::QueryCache* shared_cache,
                            const std::function<std::string()>& extra) {
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = limit;
  cfg.num_symbolic_regs = options.num_symbolic_regs;
  cfg.instr_constraint = options.instr_constraint
                             ? options.instr_constraint
                             : core::CoSimulation::blockSystemInstructions();
  cfg.metrics = options.metrics;
  mutant.apply(cfg);

  symex::ParallelEngineOptions opts;
  opts.stop_on_error = true;  // a kill is the first voter mismatch
  opts.max_paths = options.max_paths_per_hunt;
  opts.max_seconds = options.max_seconds_per_hunt;
  opts.jobs = options.engine_jobs;
  opts.shared_cache = shared_cache;
  opts.solver_opt = options.solver_opt;
  opts.shared_cex_cache = options.shared_cex_cache;
  opts.metrics = options.metrics;
  opts.telemetry = options.telemetry;
  opts.profiler = options.profiler;
  opts.heartbeat_seconds = options.heartbeat_seconds;
  if (options.heartbeat_seconds > 0) {
    // The usual coverage extra plus the campaign progress counters —
    // the "mutants judged/killed/remaining" contract of --heartbeat.
    auto cov = core::coverageHeartbeat();
    opts.heartbeat_annotator =
        [cov, extra](const symex::EngineReport& report) {
          std::string s = cov(report);
          if (extra) {
            const std::string e = extra();
            if (!e.empty()) {
              s += ' ';
              s += e;
            }
          }
          return s;
        };
  }

  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!options.trace_dir.empty()) {
    const std::string path = options.trace_dir + "/" +
                             fileSafeId(mutant.id()) + "_limit" +
                             std::to_string(limit) + ".jsonl";
    trace = std::make_unique<obs::JsonlTraceSink>(path);
    if (trace->ok()) opts.trace = trace.get();
    else std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
  }

  symex::ParallelEngine engine(opts);
  return engine.run([&cfg](symex::WorkerContext& ctx) {
    auto cosim = std::make_shared<core::CoSimulation>(ctx.builder, cfg);
    return [cosim](symex::ExecState& st) { cosim->runPath(st); };
  });
}

}  // namespace

MutantResult judgeMutant(const Mutant& mutant, const CampaignOptions& options,
                         solver::QueryCache* shared_cache,
                         const std::function<std::string()>& heartbeat_extra) {
  MutantResult r;
  r.mutant = mutant;

  if (options.check_decode_equivalence &&
      mutant.kind == MutantKind::DecodeBit && decodeBitIsEquivalent(mutant)) {
    r.verdict = Verdict::Equivalent;
    return r;
  }

  const unsigned first =
      options.min_instr_limit == 0 ? 1 : options.min_instr_limit;
  for (unsigned limit = first; limit <= options.max_instr_limit; ++limit) {
    const symex::EngineReport report =
        runHunt(mutant, options, limit, shared_cache, heartbeat_extra);
    r.instructions += report.instructions;
    r.paths += report.completed_paths;
    r.partial_paths += report.partialPaths();
    r.solver_checks += report.solver_checks;
    r.seconds += report.seconds;
    r.qcache_hits += report.qcache_hits;
    r.qcache_misses += report.qcache_misses;
    for (const symex::PathRecord& p : report.paths) r.solver_us += p.solver_us;
    if (const symex::PathRecord* err = report.firstError()) {
      r.verdict = Verdict::Killed;
      r.kill_instr_limit = limit;
      r.kill_message = err->message;
      if (err->has_test) {
        r.kill_test = err->test;
        r.has_kill_test = true;
      }
      return r;
    }
  }
  r.verdict = Verdict::Survived;
  return r;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

CampaignReport CampaignRunner::run(const std::vector<Mutant>& mutants) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  CampaignReport report;

  // Resume: skip mutants the existing journal already judged. A torn
  // final line (the verdict a killed campaign was writing) is reported
  // and re-judged, never silently dropped.
  std::unordered_set<std::string> judged;
  if (options_.resume && !options_.journal_path.empty()) {
    obs::analyze::JsonlStats scan;
    for (std::string& id : judgedMutantIds(options_.journal_path, &scan))
      judged.insert(std::move(id));
    const std::string warn = scan.describe(options_.journal_path);
    if (!warn.empty())
      std::fprintf(stderr, "resume: %s%s\n", warn.c_str(),
                   scan.torn_tail ? "; that mutant will be re-judged" : "");
    // Repair the tail before appending: drop torn bytes, or finish a
    // parsable-but-unterminated record with its newline, so resumed
    // verdicts never glue onto the previous campaign's last write.
    if (scan.torn_tail) {
      truncateToLastNewline(options_.journal_path);
    } else if (scan.truncated_tail) {
      if (std::FILE* f = std::fopen(options_.journal_path.c_str(), "a")) {
        std::fputs("\n", f);
        std::fclose(f);
      }
    }
  }

  // `todo_enum[i]` is todo[i]'s index in the full enumeration (`mutants`).
  // Flight-recorder events carry this index, which is stable across
  // resume invocations with the same selection flags, so a crash bundle
  // can be cross-referenced against a later run's mutant list.
  std::vector<const Mutant*> todo;
  std::vector<std::size_t> todo_enum;
  todo.reserve(mutants.size());
  todo_enum.reserve(mutants.size());
  for (std::size_t mi = 0; mi < mutants.size(); ++mi) {
    const Mutant& m = mutants[mi];
    if (judged.count(m.id())) {
      ++report.skipped;
      continue;
    }
    todo.push_back(&m);
    todo_enum.push_back(mi);
  }

  std::FILE* journal = nullptr;
  if (!options_.journal_path.empty()) {
    const bool append = options_.resume && !judged.empty();
    journal = std::fopen(options_.journal_path.c_str(), append ? "a" : "w");
    if (!journal) {
      std::fprintf(stderr, "cannot open journal %s for writing\n",
                   options_.journal_path.c_str());
    } else if (!append) {
      std::fprintf(journal, "%s\n",
                   journalHeader(options_, mutants.size()).c_str());
      std::fflush(journal);
    }
  }

  std::unique_ptr<solver::QueryCache> cache;
  if (options_.use_query_cache) {
    cache = std::make_unique<solver::QueryCache>(16);
    if (options_.metrics) cache->attachMetrics(*options_.metrics);
  }

  // Campaign-wide counterexample/subsumption store: mutants replay
  // near-identical decode cascades, so models and UNSAT cores transfer
  // across hunts exactly like query-cache verdicts do.
  std::unique_ptr<solver::CexCache> cex;
  CampaignOptions run_options = options_;
  if (options_.solver_opt.cex_cache) {
    cex = std::make_unique<solver::CexCache>(16);
    if (options_.metrics) cex->attachMetrics(*options_.metrics);
    run_options.shared_cex_cache = cex.get();
  }

  // Campaign progress shared with the per-hunt heartbeat annotators.
  std::atomic<std::uint64_t> judged_count{0}, killed_count{0};
  const std::size_t total = todo.size();

  // Crash forensics: let dump bundles report the journal position
  // (skipped-on-resume + committed-this-run) alongside the ring events.
  if (!options_.journal_path.empty())
    obs::flightrec::setForensicsJournal(
        options_.journal_path.c_str(), &judged_count,
        static_cast<std::uint64_t>(report.skipped));

  // Live campaign progress in the registry (commit-order updates, so the
  // final values are deterministic): the timeseries sampler and any
  // other registry reader see judged/killed/... move as mutants commit.
  obs::Gauge* g_total = nullptr;
  obs::Counter* c_judged = nullptr;
  obs::Counter* c_killed = nullptr;
  obs::Counter* c_survived = nullptr;
  obs::Counter* c_equivalent = nullptr;
  if (options_.metrics) {
    g_total = &options_.metrics->gauge("campaign.total");
    g_total->set(static_cast<std::int64_t>(total));
    g_total->sampleMax(static_cast<std::int64_t>(total));
    c_judged = &options_.metrics->counter("campaign.judged");
    c_killed = &options_.metrics->counter("campaign.killed");
    c_survived = &options_.metrics->counter("campaign.survived");
    c_equivalent = &options_.metrics->counter("campaign.equivalent");
  }
  const auto heartbeat_extra = [&]() {
    char buf[96];
    const std::uint64_t j = judged_count.load(std::memory_order_relaxed);
    const std::uint64_t k = killed_count.load(std::memory_order_relaxed);
    std::snprintf(buf, sizeof buf,
                  "mutants=%llu/%zu killed=%llu remaining=%zu",
                  static_cast<unsigned long long>(j), total,
                  static_cast<unsigned long long>(k),
                  total - static_cast<std::size_t>(j));
    return std::string(buf);
  };

  // Judge concurrently, commit in enumeration order: workers claim
  // indices through an atomic cursor and park finished results; the
  // committer (this thread) flushes them in index order, so the journal
  // and callbacks are byte-identical for any worker count.
  struct Slot {
    MutantResult result;
    bool done = false;
  };
  std::vector<Slot> slots(todo.size());
  std::mutex mu;
  std::condition_variable done_cv;
  std::atomic<std::size_t> next{0};

  // One judgement, bracketed for the flight recorder: MutantBegin before
  // the hunt, busy stamps for the stall watchdog. The matching
  // MutantVerdict is emitted by the committer, so a bundle with a Begin
  // and no Verdict for a slot pinpoints the in-flight mutant.
  const auto judgeOne = [&](std::size_t i) {
    obs::flightrec::emit(obs::flightrec::EventKind::MutantBegin, todo_enum[i],
                         0, 0, todo[i]->id().c_str());
    obs::flightrec::busyBegin();
    MutantResult r =
        judgeMutant(*todo[i], run_options, cache.get(), heartbeat_extra);
    obs::flightrec::busyEnd();
    return r;
  };

  const auto workerLoop = [&](unsigned worker_index) {
    char fr_name[16];
    std::snprintf(fr_name, sizeof fr_name, "judge%u", worker_index);
    const obs::flightrec::ScopedThread fr_thread(fr_name);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= todo.size()) return;
      MutantResult r = judgeOne(i);
      {
        std::lock_guard<std::mutex> lk(mu);
        slots[i].result = std::move(r);
        slots[i].done = true;
      }
      done_cv.notify_all();
    }
  };

  const unsigned jobs = options_.jobs == 0 ? 1 : options_.jobs;
  std::vector<std::thread> threads;
  if (jobs > 1) {
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) threads.emplace_back(workerLoop, t);
  }

  double next_heartbeat = options_.heartbeat_seconds;
  const auto commit = [&](MutantResult& r, std::size_t enum_index) {
    obs::flightrec::emit(obs::flightrec::EventKind::MutantVerdict, enum_index,
                         static_cast<std::uint64_t>(r.verdict), 0,
                         r.mutant.id().c_str());
    judged_count.fetch_add(1, std::memory_order_relaxed);
    if (c_judged) c_judged->add();
    switch (r.verdict) {
      case Verdict::Killed:
        ++report.killed;
        killed_count.fetch_add(1, std::memory_order_relaxed);
        if (c_killed) c_killed->add();
        break;
      case Verdict::Survived:
        ++report.survived;
        if (c_survived) c_survived->add();
        break;
      case Verdict::Equivalent:
        ++report.equivalent;
        if (c_equivalent) c_equivalent->add();
        break;
    }
    report.qcache_hits += r.qcache_hits;
    report.qcache_misses += r.qcache_misses;
    if (journal) {
      std::fprintf(journal, "%s\n", journalLine(r).c_str());
      std::fflush(journal);  // an interrupted campaign keeps its prefix
    }
    if (!options_.survivor_dir.empty() && r.verdict == Verdict::Survived)
      writeSurvivorManifest(options_.survivor_dir, r, options_);
    if (options_.on_result) options_.on_result(r);
    if (options_.heartbeat_seconds > 0 && elapsed() >= next_heartbeat) {
      obs::HeartbeatSnapshot s;
      s.elapsed_s = elapsed();
      s.has_campaign = true;
      s.mutants_total = total;
      s.mutants_judged = judged_count.load(std::memory_order_relaxed);
      s.mutants_killed = report.killed;
      s.mutants_survived = report.survived;
      s.mutants_equivalent = report.equivalent;
      if (options_.metrics) s.readRegistry(*options_.metrics);
      obs::emitHeartbeatLine(s, "campaign");
      next_heartbeat = elapsed() + options_.heartbeat_seconds;
    }
    report.results.push_back(std::move(r));
  };

  if (jobs <= 1) {
    // Sequential: judge and commit inline on this thread.
    for (std::size_t i = 0; i < todo.size(); ++i) {
      MutantResult r = judgeOne(i);
      commit(r, todo_enum[i]);
    }
  } else {
    std::unique_lock<std::mutex> lk(mu);
    for (std::size_t i = 0; i < todo.size(); ++i) {
      done_cv.wait(lk, [&] { return slots[i].done; });
      MutantResult r = std::move(slots[i].result);
      lk.unlock();
      commit(r, todo_enum[i]);
      lk.lock();
    }
  }
  for (std::thread& t : threads) t.join();

  if (journal) std::fclose(journal);
  // Detach the journal position before judged_count goes out of scope.
  if (!options_.journal_path.empty())
    obs::flightrec::setForensicsJournal(nullptr, nullptr, 0);
  report.seconds = elapsed();
  return report;
}

}  // namespace rvsym::mut
