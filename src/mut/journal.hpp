// Campaign journal — the resumable JSONL record of a mutation campaign.
//
// Line 1 is a header object; every further line is one judged mutant,
// flushed in enumeration order as soon as the verdict commits, so an
// interrupted campaign leaves a valid prefix. Re-running with resume
// reads the judged ids back and skips them.
//
// Determinism contract (the PR1/PR2 trace precedent): every field is
// byte-identical across --jobs values except the wall-clock and
// cache-traffic fields, which carry the `t_` / `qc_` prefix;
// obs::analyze::canonicalizeMutationJournal strips those, and tests/CI
// compare the canonical forms across worker counts directly. One
// caveat: a survivor whose hunts end on the wall-clock budget (rather
// than a kill, the path budget or worklist exhaustion) has
// time-dependent exploration counters — campaigns that must be
// byte-reproducible should bound hunts by --max-paths.
#pragma once

#include <string>
#include <vector>

#include "mut/campaign.hpp"
#include "obs/analyze/jsonl.hpp"

namespace rvsym::mut {

/// The header line (no trailing newline).
std::string journalHeader(const CampaignOptions& options,
                          std::size_t num_mutants);

/// One judged-mutant line (no trailing newline). Deterministic fields
/// first; timing fields carry the t_/qc_ prefix.
std::string journalLine(const MutantResult& result);

/// Serializes a test vector the way path_end trace events do
/// ("name=width:hexvalue", space-joined) so
/// obs::analyze::parseSerializedTest round-trips it.
std::string serializeTest(const symex::TestVector& test);

/// A mutant id as a filename component: ':' and '=' become '-'
/// ("dec:slli:b25" -> "dec-slli-b25"). Survivor manifests, repro
/// bundles and per-hunt traces all name their files with this.
std::string fileSafeId(const std::string& id);

/// Mutant ids already judged in an existing journal file (empty when the
/// file is missing or unreadable — a fresh campaign). With `scan`, what
/// the read skipped: a campaign killed mid-write leaves a torn final
/// line whose mutant will be re-judged — resume paths must tell the
/// user (obs::analyze::JsonlStats::describe), not drop it silently.
std::vector<std::string> judgedMutantIds(
    const std::string& path, obs::analyze::JsonlStats* scan = nullptr);

/// Writes `dir/<id>.json` (id with ':'/'=' replaced by '-') describing a
/// surviving mutant and the budgets it survived — the lightweight repro
/// manifest the campaign leaves for every survivor. False on I/O error.
bool writeSurvivorManifest(const std::string& dir, const MutantResult& result,
                           const CampaignOptions& options);

}  // namespace rvsym::mut
