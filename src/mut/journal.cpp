#include "mut/journal.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/analyze/json_reader.hpp"
#include "obs/json.hpp"

namespace rvsym::mut {

std::string serializeTest(const symex::TestVector& test) {
  std::string out;
  char buf[32];
  for (const symex::TestValue& v : test.values) {
    if (!out.empty()) out += ' ';
    std::snprintf(buf, sizeof buf, "=%u:%" PRIx64, v.width, v.value);
    out += v.name;
    out += buf;
  }
  return out;
}

std::string journalHeader(const CampaignOptions& options,
                          std::size_t num_mutants) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("rvsym_mutation_campaign", 1u);
  w.field("scenario", options.scenario);
  w.field("max_instr_limit", options.max_instr_limit);
  w.field("max_paths_per_hunt", options.max_paths_per_hunt);
  w.field("max_seconds_per_hunt", options.max_seconds_per_hunt);
  w.field("num_symbolic_regs", options.num_symbolic_regs);
  w.field("mutants", static_cast<std::uint64_t>(num_mutants));
  w.endObject();
  return w.str();
}

std::string journalLine(const MutantResult& r) {
  obs::JsonWriter w;
  w.beginObject();
  // Deterministic fields first; timing-dependent ones carry the t_/qc_
  // prefix so canonicalization can strip them (the trace-field contract).
  w.field("mutant", r.mutant.id());
  w.field("kind", mutantKindName(r.mutant.kind));
  w.field("op", rv32::opcodeName(r.mutant.op));
  w.field("verdict", verdictName(r.verdict));
  if (r.verdict == Verdict::Killed) {
    w.field("kill_instr_limit", r.kill_instr_limit);
    w.field("kill_message", r.kill_message);
    if (r.has_kill_test) w.field("kill_test", serializeTest(r.kill_test));
  }
  w.field("instructions", r.instructions);
  w.field("paths", r.paths);
  w.field("partial_paths", r.partial_paths);
  w.field("solver_checks", r.solver_checks);
  w.field("t_seconds", r.seconds);
  w.field("t_solver_us", r.solver_us);
  w.field("qc_hits", r.qcache_hits);
  w.field("qc_misses", r.qcache_misses);
  w.endObject();
  return w.str();
}

std::vector<std::string> judgedMutantIds(const std::string& path,
                                         obs::analyze::JsonlStats* scan) {
  std::vector<std::string> ids;
  const auto stats = obs::analyze::forEachJsonlValue(
      path, [&](obs::analyze::JsonValue&& doc, std::size_t) {
        const auto id = doc.getString("mutant");
        const auto verdict = doc.getString("verdict");
        if (id && verdict) ids.push_back(*id);
      });
  if (stats && scan) *scan = *stats;
  return ids;
}

std::string fileSafeId(const std::string& id) {
  std::string name = id;
  for (char& c : name)
    if (c == ':' || c == '=') c = '-';
  return name;
}

bool writeSurvivorManifest(const std::string& dir, const MutantResult& r,
                           const CampaignOptions& options) {
  const std::string path = dir + "/" + fileSafeId(r.mutant.id()) + ".json";

  obs::JsonWriter w;
  w.beginObject();
  w.field("mutant", r.mutant.id());
  w.field("description", r.mutant.description());
  w.field("verdict", verdictName(r.verdict));
  w.field("scenario", options.scenario);
  w.field("max_instr_limit", options.max_instr_limit);
  w.field("max_paths_per_hunt", options.max_paths_per_hunt);
  w.field("max_seconds_per_hunt", options.max_seconds_per_hunt);
  w.field("instructions", r.instructions);
  w.field("paths", r.paths);
  w.field("partial_paths", r.partial_paths);
  w.field("solver_checks", r.solver_checks);
  w.endObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);
  return true;
}

}  // namespace rvsym::mut
