// CampaignRunner — fans an enumerated mutant set across workers and
// judges every mutant with the bounded symbolic co-simulation.
//
// Per mutant: DecodeBit mutants first get the solver-backed decode
// equivalence check (space.hpp) — a provably behaviour-preserving
// mutant is verdict `equivalent` without spending a co-simulation.
// Everything else runs hunts at instruction limits 1..max_instr_limit
// (stop-on-error, so a hunt ends at the first voter mismatch); the
// first limit that kills records the minimum-limit-to-kill, the killing
// test vector and the mismatch message. A mutant no limit kills within
// the per-hunt budgets is `survived` — the campaign's product is
// exactly that set (what the verification flow cannot see).
//
// Determinism: mutants are judged concurrently (options.jobs) but
// committed in enumeration order, and each per-mutant hunt is a
// deterministic ParallelEngine run, so verdicts, kill limits and kill
// test vectors are byte-identical across campaign worker counts. The
// shared cross-path query cache spans the whole campaign (mutants
// replay near-identical decode cascades, so verdict reuse is high);
// cache traffic and wall times are the only timing-dependent outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "mut/space.hpp"
#include "symex/parallel.hpp"

namespace rvsym::mut {

enum class Verdict : std::uint8_t {
  Killed,      ///< a voter mismatch was reached within the budgets
  Survived,    ///< no hunt found a mismatch — the campaign's finding
  Equivalent,  ///< provably behaviour-preserving (decode-equivalence)
};

const char* verdictName(Verdict v);

struct MutantResult {
  Mutant mutant;
  Verdict verdict = Verdict::Survived;

  // Killed mutants only.
  unsigned kill_instr_limit = 0;  ///< minimum instruction limit that killed
  std::string kill_message;       ///< voter mismatch message
  symex::TestVector kill_test;    ///< the killing test vector
  bool has_kill_test = false;

  // Aggregated over every hunt this mutant ran (deterministic).
  std::uint64_t instructions = 0;
  std::uint64_t paths = 0;          ///< completed paths
  std::uint64_t partial_paths = 0;
  std::uint64_t solver_checks = 0;

  // Timing-dependent (t_/qc_ journal fields).
  double seconds = 0;
  std::uint64_t solver_us = 0;
  std::uint64_t qcache_hits = 0;
  std::uint64_t qcache_misses = 0;
};

struct CampaignOptions {
  /// Campaign workers: mutants judged concurrently.
  unsigned jobs = 1;
  /// Exploration workers per mutant hunt (total threads ~= jobs *
  /// engine_jobs; the default keeps each hunt on its campaign worker).
  unsigned engine_jobs = 1;
  /// Hunts run at instruction limits min..max_instr_limit until a kill.
  /// Pinning min == max (as bench_table2 does per column) measures one
  /// specific limit instead of searching for the cheapest kill.
  unsigned min_instr_limit = 1;
  unsigned max_instr_limit = 2;
  /// Per-hunt budgets (a survivor costs max_instr_limit budgeted hunts).
  std::uint64_t max_paths_per_hunt = 200000;
  double max_seconds_per_hunt = 60;
  unsigned num_symbolic_regs = 2;
  /// Scenario constraint for generated instructions; label is recorded
  /// in the journal header. Default: the Table II "only RV32I" scenario.
  core::InstrConstraint instr_constraint;
  std::string scenario = "rv32i";
  /// Solver pre-check classifying behaviour-preserving DecodeBit
  /// mutants as Equivalent instead of hunting them.
  bool check_decode_equivalence = true;
  /// Campaign-wide cross-path query cache shared by every hunt.
  bool use_query_cache = true;
  /// Solver acceleration layers for every hunt (--solver-opt; DESIGN.md
  /// §10). Verdicts are unaffected — the layers are sound — so the
  /// mutation score and kill set are byte-identical across settings.
  solver::SolverOptions solver_opt{};
  /// Externally owned counterexample/subsumption store for direct
  /// judgeMutant callers. CampaignRunner ignores this and spans its own
  /// store across the whole campaign when the cex layer is on.
  solver::CexCache* shared_cex_cache = nullptr;
  /// JSONL journal path ("" = none). With resume, mutants already
  /// judged in the existing file are skipped and new lines appended.
  std::string journal_path;
  bool resume = false;
  /// Directory for per-survivor manifest JSON files ("" = none).
  std::string survivor_dir;
  /// Directory for per-hunt JSONL lifecycle traces ("" = none):
  /// <dir>/<file-safe mutant id>_limit<k>.jsonl, readable by rvsym-report.
  std::string trace_dir;
  /// Campaign progress lines on stderr every this many seconds (0 =
  /// off): mutants judged / killed / remaining, plus the per-hunt
  /// engine heartbeats with coverage and qcache extras.
  double heartbeat_seconds = 0;
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-query solver telemetry shared by every hunt (span export,
  /// slow-query corpus). Aggregates across mutants; timing-dependent.
  solver::SolverTelemetry* telemetry = nullptr;
  /// Phase profiler shared by every hunt (thread-local stacks, so
  /// concurrent hunts don't interleave spans within a track).
  obs::PhaseProfiler* profiler = nullptr;
  /// Commit-order callback per judged mutant (CLI progress, bundles).
  std::function<void(const MutantResult&)> on_result;
};

struct CampaignReport {
  std::vector<MutantResult> results;  ///< judged mutants, enumeration order
  std::uint64_t killed = 0;
  std::uint64_t survived = 0;
  std::uint64_t equivalent = 0;
  std::uint64_t skipped = 0;  ///< already judged in the resumed journal
  double seconds = 0;
  std::uint64_t qcache_hits = 0;
  std::uint64_t qcache_misses = 0;

  /// killed / (killed + survived) — equivalent mutants are excluded
  /// from the denominator, the standard mutation-score convention.
  double mutationScore() const {
    const std::uint64_t denom = killed + survived;
    return denom == 0 ? 0.0 : static_cast<double>(killed) /
                                  static_cast<double>(denom);
  }
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);

  /// Judges every mutant. Results commit (journal, on_result) in input
  /// order regardless of worker count.
  CampaignReport run(const std::vector<Mutant>& mutants);

  const CampaignOptions& options() const { return options_; }

 private:
  CampaignOptions options_;
};

/// Judges one mutant with a dedicated engine (the unit the campaign
/// parallelizes; exposed for tests and replay).
MutantResult judgeMutant(const Mutant& mutant, const CampaignOptions& options,
                         solver::QueryCache* shared_cache,
                         const std::function<std::string()>& heartbeat_extra);

}  // namespace rvsym::mut
