// MutationSpace — machine enumeration of RTL mutants.
//
// The paper's Table II evaluates ten hand-injected errors E0-E9. This
// module generalizes each of them into a parameterized operator family
// and enumerates the full cross product against the rv32 opcode set:
//
//   dec:<op>:b<bit>        clear one decode-table mask bit (E0-E2 family)
//   stuck:<op>:b<bit>=<v>  stuck-at-v fault on one ALU result bit (E3/E4)
//   swap:<op>:<op2>        branch comparator swap (E6 family)
//   mem:<op>:<kind>        load/store lane fault: endian / signflip /
//                          lowhalf (E7-E9 family)
//   flag:<name>            parameterless switch from the ExecFaults flag
//                          table (E5 + the X* corner-case bugs)
//
// The id strings above are the stable mutant identifiers used by the
// campaign journal, the CLI and repro-bundle manifests; id() and
// mutantById() round-trip them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cosim.hpp"

namespace rvsym::mut {

enum class MutantKind : std::uint8_t {
  DecodeBit,   ///< clear one mask bit of one decode pattern
  StuckBit,    ///< stuck-at-0/1 on one ALU result bit
  BranchSwap,  ///< branch evaluates another branch's comparator
  MemFault,    ///< load/store lane fault (rtl::MemFaultKind)
  CtrlFlag,    ///< one ExecFaults::Flag switch
};

/// The id prefix of a kind ("dec", "stuck", "swap", "mem", "flag").
const char* mutantKindName(MutantKind k);

/// One point of the mutation space. Only the fields of the active kind
/// are meaningful; the rest keep their defaults.
struct Mutant {
  MutantKind kind = MutantKind::DecodeBit;
  /// Target instruction (for CtrlFlag: the flag's target, informational).
  rv32::Opcode op = rv32::Opcode::Illegal;
  std::uint8_t bit = 0;     ///< DecodeBit: mask bit; StuckBit: result bit
  bool stuck_value = false; ///< StuckBit: stuck-at-1 when true
  rv32::Opcode behaves_as = rv32::Opcode::Illegal;  ///< BranchSwap
  rtl::MemFaultKind mem_kind = rtl::MemFaultKind::EndianFlip;
  rtl::ExecFaults::Flag flag = rtl::ExecFaults::kJalNoPcUpdate;

  /// Stable identifier, e.g. "dec:slli:b25" (see header grammar).
  std::string id() const;
  /// Human-readable description for reports.
  std::string description() const;
  /// Injects this mutant into a co-simulation configuration.
  void apply(core::CosimConfig& config) const;
};

/// Enumeration filter; empty vectors select everything.
struct SpaceFilter {
  std::vector<MutantKind> kinds;
  std::vector<rv32::Opcode> ops;
};

/// Enumerates the mutation space in a fixed, documented order (decode
/// bits in decode-table order then bit index; stuck bits in opcode order
/// then bit then value; swaps in opcode-pair order; mem faults in kind
/// then opcode order; flags in enum order). Identity mutants — points
/// whose injection provably cannot change behaviour by construction,
/// like an endian flip on a one-byte store — are excluded.
std::vector<Mutant> enumerateSpace(const SpaceFilter& filter = {});

/// Inverse of Mutant::id(). Throws std::out_of_range on unknown ids.
Mutant mutantById(const std::string& id);

/// The paper's Table II errors as named points of the space, in paper
/// order E0..E9.
struct PaperMutant {
  const char* paper_id;  ///< "E0".."E9"
  Mutant mutant;
};
std::vector<PaperMutant> paperMutants();

/// Solver-backed decode-equivalence check for a DecodeBit mutant: builds
/// the original and mutated first-match-wins decode cascades over a free
/// symbolic instruction word and asks the SAT solver whether any word
/// decodes differently. Clearing a mask bit widens one row's match set,
/// but when an earlier row already captures every newly matching word
/// (e.g. SRAI bit 30: those words hit SRLI first) the decode function —
/// and hence the core's behaviour — is unchanged, and the mutant is
/// reported `equivalent` without spending a co-simulation on it.
/// Returns false for non-DecodeBit mutants.
bool decodeBitIsEquivalent(const Mutant& m);

}  // namespace rvsym::mut
