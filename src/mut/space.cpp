#include "mut/space.hpp"

#include <cstdio>
#include <stdexcept>

#include "rv32/fields.hpp"
#include "solver/solver.hpp"

namespace rvsym::mut {

using rtl::ExecFaults;
using rtl::MemFaultKind;
using rv32::Opcode;

const char* mutantKindName(MutantKind k) {
  switch (k) {
    case MutantKind::DecodeBit: return "dec";
    case MutantKind::StuckBit: return "stuck";
    case MutantKind::BranchSwap: return "swap";
    case MutantKind::MemFault: return "mem";
    case MutantKind::CtrlFlag: return "flag";
  }
  return "?";
}

namespace {

const char* memFaultKindName(MemFaultKind k) {
  switch (k) {
    case MemFaultKind::EndianFlip: return "endian";
    case MemFaultKind::SignFlip: return "signflip";
    case MemFaultKind::LowHalf: return "lowhalf";
  }
  return "?";
}

Opcode opcodeByName(const std::string& name) {
  for (std::size_t i = 0; i <= rv32::kLegalOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    if (name == rv32::opcodeName(op)) return op;
  }
  throw std::out_of_range("unknown opcode name: " + name);
}

/// The ops whose result goes through the ALU write-back masking hook.
constexpr Opcode kAluOps[] = {
    Opcode::Lui,  Opcode::Auipc, Opcode::Addi, Opcode::Slti, Opcode::Sltiu,
    Opcode::Xori, Opcode::Ori,   Opcode::Andi, Opcode::Slli, Opcode::Srli,
    Opcode::Srai, Opcode::Add,   Opcode::Sub,  Opcode::Sll,  Opcode::Slt,
    Opcode::Sltu, Opcode::Xor,   Opcode::Srl,  Opcode::Sra,  Opcode::Or,
    Opcode::And,
};

constexpr Opcode kBranchOps[] = {
    Opcode::Beq, Opcode::Bne,  Opcode::Blt,
    Opcode::Bge, Opcode::Bltu, Opcode::Bgeu,
};

/// Meaningful (non-identity) mem-fault points. An endian flip on a
/// one-byte store is the identity (the single data byte maps to itself),
/// so SB is excluded; a one-byte *load* still flips the byte lane read
/// from the bus word, so LB/LBU stay in.
struct MemPoint {
  MemFaultKind kind;
  Opcode op;
};
constexpr MemPoint kMemPoints[] = {
    {MemFaultKind::EndianFlip, Opcode::Lb},
    {MemFaultKind::EndianFlip, Opcode::Lh},
    {MemFaultKind::EndianFlip, Opcode::Lw},
    {MemFaultKind::EndianFlip, Opcode::Lbu},
    {MemFaultKind::EndianFlip, Opcode::Lhu},
    {MemFaultKind::EndianFlip, Opcode::Sh},
    {MemFaultKind::EndianFlip, Opcode::Sw},
    {MemFaultKind::SignFlip, Opcode::Lb},
    {MemFaultKind::SignFlip, Opcode::Lh},
    {MemFaultKind::SignFlip, Opcode::Lbu},
    {MemFaultKind::SignFlip, Opcode::Lhu},
    {MemFaultKind::LowHalf, Opcode::Lw},
    {MemFaultKind::LowHalf, Opcode::Sw},
};

bool wantKind(const SpaceFilter& f, MutantKind k) {
  if (f.kinds.empty()) return true;
  for (MutantKind want : f.kinds)
    if (want == k) return true;
  return false;
}

bool wantOp(const SpaceFilter& f, Opcode op) {
  if (f.ops.empty()) return true;
  for (Opcode want : f.ops)
    if (want == op) return true;
  return false;
}

}  // namespace

std::string Mutant::id() const {
  char buf[64];
  switch (kind) {
    case MutantKind::DecodeBit:
      std::snprintf(buf, sizeof buf, "dec:%s:b%u", rv32::opcodeName(op), bit);
      break;
    case MutantKind::StuckBit:
      std::snprintf(buf, sizeof buf, "stuck:%s:b%u=%d", rv32::opcodeName(op),
                    bit, stuck_value ? 1 : 0);
      break;
    case MutantKind::BranchSwap:
      std::snprintf(buf, sizeof buf, "swap:%s:%s", rv32::opcodeName(op),
                    rv32::opcodeName(behaves_as));
      break;
    case MutantKind::MemFault:
      std::snprintf(buf, sizeof buf, "mem:%s:%s", rv32::opcodeName(op),
                    memFaultKindName(mem_kind));
      break;
    case MutantKind::CtrlFlag:
      std::snprintf(buf, sizeof buf, "flag:%s",
                    rtl::execFaultFlagTable()[flag].name);
      break;
  }
  return buf;
}

std::string Mutant::description() const {
  char buf[128];
  switch (kind) {
    case MutantKind::DecodeBit:
      std::snprintf(buf, sizeof buf,
                    "don't-care bit %u in the decode pattern of %s", bit,
                    rv32::opcodeName(op));
      break;
    case MutantKind::StuckBit:
      std::snprintf(buf, sizeof buf, "result bit %u of %s stuck at %d", bit,
                    rv32::opcodeName(op), stuck_value ? 1 : 0);
      break;
    case MutantKind::BranchSwap:
      std::snprintf(buf, sizeof buf, "%s evaluates the %s comparator",
                    rv32::opcodeName(op), rv32::opcodeName(behaves_as));
      break;
    case MutantKind::MemFault:
      switch (mem_kind) {
        case MemFaultKind::EndianFlip:
          std::snprintf(buf, sizeof buf, "byte lanes of %s reversed",
                        rv32::opcodeName(op));
          break;
        case MemFaultKind::SignFlip:
          std::snprintf(buf, sizeof buf, "extension polarity of %s inverted",
                        rv32::opcodeName(op));
          break;
        case MemFaultKind::LowHalf:
          std::snprintf(buf, sizeof buf, "only the low 16 bits of %s take effect",
                        rv32::opcodeName(op));
          break;
      }
      break;
    case MutantKind::CtrlFlag:
      return rtl::execFaultFlagTable()[flag].description;
  }
  return buf;
}

void Mutant::apply(core::CosimConfig& config) const {
  switch (kind) {
    case MutantKind::DecodeBit:
      config.decode_dont_cares.push_back({op, bit});
      break;
    case MutantKind::StuckBit:
      config.faults.stuck_bits.push_back({op, bit, stuck_value});
      break;
    case MutantKind::BranchSwap:
      config.faults.branch_swaps.push_back({op, behaves_as});
      break;
    case MutantKind::MemFault:
      config.faults.mem_faults.push_back({op, mem_kind});
      break;
    case MutantKind::CtrlFlag:
      config.faults.setFlag(flag);
      break;
  }
}

std::vector<Mutant> enumerateSpace(const SpaceFilter& filter) {
  std::vector<Mutant> out;
  if (wantKind(filter, MutantKind::DecodeBit)) {
    for (const rv32::DecodePattern& p : rv32::decodeTable()) {
      if (!wantOp(filter, p.op)) continue;
      for (unsigned b = 0; b < 32; ++b) {
        if (!(p.mask & (1u << b))) continue;
        Mutant m;
        m.kind = MutantKind::DecodeBit;
        m.op = p.op;
        m.bit = static_cast<std::uint8_t>(b);
        out.push_back(m);
      }
    }
  }
  if (wantKind(filter, MutantKind::StuckBit)) {
    for (Opcode op : kAluOps) {
      if (!wantOp(filter, op)) continue;
      for (unsigned b = 0; b < 32; ++b)
        for (bool v : {false, true}) {
          Mutant m;
          m.kind = MutantKind::StuckBit;
          m.op = op;
          m.bit = static_cast<std::uint8_t>(b);
          m.stuck_value = v;
          out.push_back(m);
        }
    }
  }
  if (wantKind(filter, MutantKind::BranchSwap)) {
    for (Opcode op : kBranchOps) {
      if (!wantOp(filter, op)) continue;
      for (Opcode as : kBranchOps) {
        if (as == op) continue;
        Mutant m;
        m.kind = MutantKind::BranchSwap;
        m.op = op;
        m.behaves_as = as;
        out.push_back(m);
      }
    }
  }
  if (wantKind(filter, MutantKind::MemFault)) {
    for (const MemPoint& p : kMemPoints) {
      if (!wantOp(filter, p.op)) continue;
      Mutant m;
      m.kind = MutantKind::MemFault;
      m.op = p.op;
      m.mem_kind = p.kind;
      out.push_back(m);
    }
  }
  if (wantKind(filter, MutantKind::CtrlFlag)) {
    const auto table = rtl::execFaultFlagTable();
    for (unsigned i = 0; i < table.size(); ++i) {
      if (!wantOp(filter, table[i].target)) continue;
      Mutant m;
      m.kind = MutantKind::CtrlFlag;
      m.op = table[i].target;
      m.flag = static_cast<ExecFaults::Flag>(i);
      out.push_back(m);
    }
  }
  return out;
}

Mutant mutantById(const std::string& id) {
  const auto bad = [&]() -> std::out_of_range {
    return std::out_of_range("unknown mutant id: " + id);
  };
  const std::size_t c1 = id.find(':');
  if (c1 == std::string::npos) throw bad();
  const std::string kind = id.substr(0, c1);
  const std::string rest = id.substr(c1 + 1);

  Mutant m;
  if (kind == "flag") {
    const auto table = rtl::execFaultFlagTable();
    for (unsigned i = 0; i < table.size(); ++i)
      if (rest == table[i].name) {
        m.kind = MutantKind::CtrlFlag;
        m.flag = static_cast<ExecFaults::Flag>(i);
        m.op = table[i].target;
        return m;
      }
    throw bad();
  }

  const std::size_t c2 = rest.find(':');
  if (c2 == std::string::npos) throw bad();
  const std::string op_name = rest.substr(0, c2);
  const std::string param = rest.substr(c2 + 1);
  m.op = opcodeByName(op_name);  // throws on unknown names

  if (kind == "dec" || kind == "stuck") {
    if (param.empty() || param[0] != 'b') throw bad();
    unsigned bit = 0;
    int value = -1;
    if (kind == "dec") {
      if (std::sscanf(param.c_str(), "b%u", &bit) != 1) throw bad();
      m.kind = MutantKind::DecodeBit;
    } else {
      if (std::sscanf(param.c_str(), "b%u=%d", &bit, &value) != 2 ||
          (value != 0 && value != 1))
        throw bad();
      m.kind = MutantKind::StuckBit;
      m.stuck_value = value == 1;
    }
    if (bit >= 32) throw bad();
    m.bit = static_cast<std::uint8_t>(bit);
    return m;
  }
  if (kind == "swap") {
    m.kind = MutantKind::BranchSwap;
    m.behaves_as = opcodeByName(param);
    return m;
  }
  if (kind == "mem") {
    m.kind = MutantKind::MemFault;
    if (param == "endian") m.mem_kind = MemFaultKind::EndianFlip;
    else if (param == "signflip") m.mem_kind = MemFaultKind::SignFlip;
    else if (param == "lowhalf") m.mem_kind = MemFaultKind::LowHalf;
    else throw bad();
    return m;
  }
  throw bad();
}

std::vector<PaperMutant> paperMutants() {
  // E2 read as SRAI (same funct7 bit as E1's SRLI) keeps the ten errors
  // distinct — the same reading src/fault documents.
  return {
      {"E0", mutantById("dec:slli:b25")},
      {"E1", mutantById("dec:srli:b25")},
      {"E2", mutantById("dec:srai:b25")},
      {"E3", mutantById("stuck:addi:b0=0")},
      {"E4", mutantById("stuck:sub:b31=0")},
      {"E5", mutantById("flag:jal_no_pc_update")},
      {"E6", mutantById("swap:bne:beq")},
      {"E7", mutantById("mem:lbu:endian")},
      {"E8", mutantById("mem:lb:signflip")},
      {"E9", mutantById("mem:lw:lowhalf")},
  };
}

bool decodeBitIsEquivalent(const Mutant& m) {
  if (m.kind != MutantKind::DecodeBit) return false;
  expr::ExprBuilder eb;
  const expr::ExprRef word = eb.variable("instr", 32);

  // First-match-wins decode as an ite cascade yielding the opcode code;
  // non-matching words fall through to Illegal (code 0).
  const auto cascade = [&](bool mutated) {
    expr::ExprRef result = eb.constant(0, 8);
    const auto table = rv32::decodeTable();
    for (std::size_t i = table.size(); i-- > 0;) {
      rv32::DecodePattern p = table[i];
      // Mirror the real injection (core/cosim.cpp) exactly: only the
      // mask bit is cleared, match stays. Clearing a bit whose match
      // value is 1 therefore kills the row (it can never equal match
      // again), which is a behaviour change too — the cascade models
      // both widening and dead-row mutants correctly.
      if (mutated && p.op == m.op) p.mask &= ~(1u << m.bit);
      result = eb.ite(rv32::sym::matches(eb, word, p),
                      eb.constant(static_cast<std::uint64_t>(p.op), 8), result);
    }
    return result;
  };

  solver::PathSolver solver(eb);
  return solver.check(eb.ne(cascade(false), cascade(true))) ==
         solver::CheckResult::Unsat;
}

}  // namespace rvsym::mut
