#include "expr/eval.hpp"

#include <cassert>

namespace rvsym::expr {

std::uint64_t applyOp(Kind kind, unsigned width, std::uint64_t a,
                      std::uint64_t b) {
  const std::uint64_t mask = widthMask(width);
  a &= mask;
  b &= mask;
  const std::int64_t sa = signExtend(a, width);
  const std::int64_t sb = signExtend(b, width);
  const std::int64_t smin = signExtend(std::uint64_t{1} << (width - 1), width);

  switch (kind) {
    case Kind::Add: return (a + b) & mask;
    case Kind::Sub: return (a - b) & mask;
    case Kind::Mul: return (a * b) & mask;
    case Kind::UDiv: return b == 0 ? mask : (a / b) & mask;
    case Kind::SDiv:
      if (b == 0) return mask;  // -1
      if (sa == smin && sb == -1) return a;
      return static_cast<std::uint64_t>(sa / sb) & mask;
    case Kind::URem: return b == 0 ? a : (a % b) & mask;
    case Kind::SRem:
      if (b == 0) return a;
      if (sa == smin && sb == -1) return 0;
      return static_cast<std::uint64_t>(sa % sb) & mask;
    case Kind::And: return a & b;
    case Kind::Or: return a | b;
    case Kind::Xor: return a ^ b;
    case Kind::Not: return ~a & mask;
    case Kind::Neg: return (~a + 1) & mask;
    case Kind::Shl: return b >= width ? 0 : (a << b) & mask;
    case Kind::LShr: return b >= width ? 0 : (a >> b) & mask;
    case Kind::AShr: {
      if (b >= width) return sa < 0 ? mask : 0;
      return static_cast<std::uint64_t>(sa >> b) & mask;
    }
    case Kind::Eq: return a == b ? 1 : 0;
    case Kind::Ult: return a < b ? 1 : 0;
    case Kind::Ule: return a <= b ? 1 : 0;
    case Kind::Slt: return sa < sb ? 1 : 0;
    case Kind::Sle: return sa <= sb ? 1 : 0;
    default:
      assert(false && "applyOp: not a value operator");
      return 0;
  }
}

namespace {

std::uint64_t evalNode(const Expr* e,
                       const Assignment& asg,
                       std::unordered_map<const Expr*, std::uint64_t>& memo);

std::uint64_t evalOperand(const Expr* e, int i, const Assignment& asg,
                          std::unordered_map<const Expr*, std::uint64_t>& memo) {
  return evalNode(e->operand(i).get(), asg, memo);
}

std::uint64_t evalNode(const Expr* e,
                       const Assignment& asg,
                       std::unordered_map<const Expr*, std::uint64_t>& memo) {
  auto it = memo.find(e);
  if (it != memo.end()) return it->second;

  std::uint64_t result = 0;
  switch (e->kind()) {
    case Kind::Constant:
      result = e->constantValue();
      break;
    case Kind::Variable:
      result = asg.get(e->variableId()) & widthMask(e->width());
      break;
    case Kind::Concat: {
      const std::uint64_t hi = evalOperand(e, 0, asg, memo);
      const std::uint64_t lo = evalOperand(e, 1, asg, memo);
      result = (hi << e->operand(1)->width()) | lo;
      break;
    }
    case Kind::Extract: {
      const std::uint64_t v = evalOperand(e, 0, asg, memo);
      result = (v >> e->extractLow()) & widthMask(e->width());
      break;
    }
    case Kind::ZExt:
      result = evalOperand(e, 0, asg, memo);
      break;
    case Kind::SExt: {
      const std::uint64_t v = evalOperand(e, 0, asg, memo);
      result = static_cast<std::uint64_t>(
                   signExtend(v, e->operand(0)->width())) &
               widthMask(e->width());
      break;
    }
    case Kind::Ite:
      result = evalOperand(e, 0, asg, memo) != 0
                   ? evalOperand(e, 1, asg, memo)
                   : evalOperand(e, 2, asg, memo);
      break;
    default: {
      const unsigned opw = e->operand(0)->width();
      const std::uint64_t a = evalOperand(e, 0, asg, memo);
      const std::uint64_t b =
          e->numOperands() > 1 ? evalOperand(e, 1, asg, memo) : 0;
      result = applyOp(e->kind(), opw, a, b);
      break;
    }
  }
  memo.emplace(e, result);
  return result;
}

}  // namespace

std::uint64_t evaluate(const ExprRef& e, const Assignment& asg) {
  std::unordered_map<const Expr*, std::uint64_t> memo;
  return evalNode(e.get(), asg, memo);
}

}  // namespace rvsym::expr
