// Debug printing for expressions: compact s-expression rendering with
// shared-subtree naming for large DAGs.
#pragma once

#include <string>

#include "expr/expr.hpp"

namespace rvsym::expr {

/// Renders `e` as an s-expression, e.g. `(add (var rs1_val) #x00000004:32)`.
/// Subtrees referenced more than once are printed once and then referred to
/// by a `%N` label to keep output linear in DAG size.
std::string toString(const ExprRef& e);

/// One-line summary: kind, width and DAG size.
std::string summary(const ExprRef& e);

}  // namespace rvsym::expr
