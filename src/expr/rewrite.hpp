// Pre-bitblast rewriting (beyond ExprBuilder's local constant folding).
//
// Used by the solver's query-answering pipeline (DESIGN.md §10):
// equality substitution propagates variables the constraint set pins to
// constants, and narrowing rules shrink comparisons against
// zero/sign-extended or concatenated terms so that assumptions which are
// decided by the constraint set alone collapse to a constant before any
// bit-blasting happens. All rewrites are equivalence-preserving under
// the substitution environment: if every pinned variable holds its
// pinned value, the rewritten expression evaluates identically to the
// original (the single source of truth is expr::evaluate, and the
// rewriter is differentially tested against it).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/builder.hpp"
#include "expr/expr.hpp"

namespace rvsym::expr {

/// Variable node -> constant expression of the same width. Keyed by the
/// interned node pointer, so a map is only meaningful for expressions
/// built by the same ExprBuilder.
using SubstMap = std::unordered_map<const Expr*, ExprRef>;

/// If `c` pins a variable to a constant — `v == k` (either operand
/// order), a bare 1-bit `v` (pins to 1), or `!v` (pins to 0) — records
/// variable -> constant in `subst`. Returns true iff a pin was added.
bool addEqualitySubst(ExprBuilder& eb, const ExprRef& c, SubstMap* subst);

/// Appends the ids of the distinct variables reachable from `e` to
/// `out`. Deduplicated within this call only.
void collectVariableIds(const ExprRef& e, std::vector<std::uint64_t>* out);

/// Rebuilds `e` bottom-up through `eb`, substituting pinned variables
/// from `subst` and applying narrowing rules (Eq/Ult/Ule against
/// ZExt/SExt/Concat operands split or shrink to the inner width). The
/// builder's constant folding then collapses decided subtrees, so an
/// assumption implied (or refuted) by the equality environment comes
/// back as a constant. Pass an empty map to narrow only.
ExprRef rewriteExpr(ExprBuilder& eb, const ExprRef& e, const SubstMap& subst);

}  // namespace rvsym::expr
