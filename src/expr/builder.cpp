#include "expr/builder.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "expr/eval.hpp"

namespace rvsym::expr {

namespace {

bool isCommutative(Kind k) {
  switch (k) {
    case Kind::Add:
    case Kind::Mul:
    case Kind::And:
    case Kind::Or:
    case Kind::Xor:
    case Kind::Eq:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExprBuilder::ExprBuilder() {
  true_ = constant(1, 1);
  false_ = constant(0, 1);
}

ExprRef ExprBuilder::intern(Kind kind, unsigned width, std::uint64_t value,
                            std::array<ExprRef, 3> ops, std::string name) {
  assert(width >= 1 && width <= 64);
  auto node = std::make_shared<const Expr>(kind, width, value, std::move(ops),
                                           std::move(name));
  auto [it, inserted] = intern_.try_emplace(node, node);
  return it->second;
}

ExprRef ExprBuilder::constant(std::uint64_t value, unsigned width) {
  return intern(Kind::Constant, width, value, {});
}

ExprRef ExprBuilder::variable(const std::string& name, unsigned width) {
  auto it = vars_by_name_.find(name);
  if (it != vars_by_name_.end()) {
    if (it->second->width() != width)
      throw std::invalid_argument("variable '" + name +
                                  "' redeclared with different width");
    return it->second;
  }
  const std::uint64_t id = variables_.size();
  auto node = std::make_shared<const Expr>(Kind::Variable, width, id,
                                           std::array<ExprRef, 3>{}, name);
  variables_.push_back(node);
  vars_by_name_.emplace(name, node);
  intern_.emplace(node, node);
  return node;
}

ExprRef ExprBuilder::binary(Kind kind, ExprRef a, ExprRef b) {
  assert(a && b);
  assert(a->width() == b->width());
  const bool is_cmp = kind == Kind::Eq || kind == Kind::Ult ||
                      kind == Kind::Ule || kind == Kind::Slt ||
                      kind == Kind::Sle;
  const unsigned result_width = is_cmp ? 1 : a->width();
  if (a->isConstant() && b->isConstant())
    return constant(applyOp(kind, a->width(), a->constantValue(),
                            b->constantValue()),
                    result_width);
  if (isCommutative(kind) && a->isConstant()) std::swap(a, b);
  return intern(kind, result_width, 0, {std::move(a), std::move(b), nullptr});
}

// --- Arithmetic -----------------------------------------------------------

ExprRef ExprBuilder::add(ExprRef a, ExprRef b) {
  if (b->isZero()) return a;
  if (a->isZero()) return b;
  return binary(Kind::Add, std::move(a), std::move(b));
}

ExprRef ExprBuilder::sub(ExprRef a, ExprRef b) {
  if (b->isZero()) return a;
  if (a.get() == b.get()) return constant(0, a->width());
  return binary(Kind::Sub, std::move(a), std::move(b));
}

ExprRef ExprBuilder::mul(ExprRef a, ExprRef b) {
  if (a->isZero()) return a;
  if (b->isZero()) return b;
  if (a->isConstantValue(1)) return b;
  if (b->isConstantValue(1)) return a;
  return binary(Kind::Mul, std::move(a), std::move(b));
}

ExprRef ExprBuilder::udiv(ExprRef a, ExprRef b) {
  if (b->isConstantValue(1)) return a;
  return binary(Kind::UDiv, std::move(a), std::move(b));
}

ExprRef ExprBuilder::sdiv(ExprRef a, ExprRef b) {
  if (b->isConstantValue(1)) return a;
  return binary(Kind::SDiv, std::move(a), std::move(b));
}

ExprRef ExprBuilder::urem(ExprRef a, ExprRef b) {
  if (b->isConstantValue(1)) return constant(0, a->width());
  return binary(Kind::URem, std::move(a), std::move(b));
}

ExprRef ExprBuilder::srem(ExprRef a, ExprRef b) {
  if (b->isConstantValue(1)) return constant(0, a->width());
  return binary(Kind::SRem, std::move(a), std::move(b));
}

ExprRef ExprBuilder::neg(ExprRef a) {
  if (a->isConstant())
    return constant(applyOp(Kind::Neg, a->width(), a->constantValue(), 0),
                    a->width());
  if (a->kind() == Kind::Neg) return a->operand(0);
  const unsigned w = a->width();
  return intern(Kind::Neg, w, 0, {std::move(a), nullptr, nullptr});
}

// --- Bitwise ----------------------------------------------------------------

ExprRef ExprBuilder::andOp(ExprRef a, ExprRef b) {
  if (a->isZero()) return a;
  if (b->isZero()) return b;
  if (a->isAllOnes()) return b;
  if (b->isAllOnes()) return a;
  if (a.get() == b.get()) return a;
  return binary(Kind::And, std::move(a), std::move(b));
}

ExprRef ExprBuilder::orOp(ExprRef a, ExprRef b) {
  if (a->isZero()) return b;
  if (b->isZero()) return a;
  if (a->isAllOnes()) return a;
  if (b->isAllOnes()) return b;
  if (a.get() == b.get()) return a;
  return binary(Kind::Or, std::move(a), std::move(b));
}

ExprRef ExprBuilder::xorOp(ExprRef a, ExprRef b) {
  if (a->isZero()) return b;
  if (b->isZero()) return a;
  if (a.get() == b.get()) return constant(0, a->width());
  if (a->isAllOnes()) return notOp(std::move(b));
  if (b->isAllOnes()) return notOp(std::move(a));
  return binary(Kind::Xor, std::move(a), std::move(b));
}

ExprRef ExprBuilder::notOp(ExprRef a) {
  if (a->isConstant())
    return constant(~a->constantValue(), a->width());
  if (a->kind() == Kind::Not) return a->operand(0);
  const unsigned w = a->width();
  return intern(Kind::Not, w, 0, {std::move(a), nullptr, nullptr});
}

// --- Shifts -----------------------------------------------------------------

ExprRef ExprBuilder::shl(ExprRef a, ExprRef amount) {
  if (amount->isZero() || a->isZero()) return a;
  return binary(Kind::Shl, std::move(a), std::move(amount));
}

ExprRef ExprBuilder::lshr(ExprRef a, ExprRef amount) {
  if (amount->isZero() || a->isZero()) return a;
  return binary(Kind::LShr, std::move(a), std::move(amount));
}

ExprRef ExprBuilder::ashr(ExprRef a, ExprRef amount) {
  if (amount->isZero() || a->isZero()) return a;
  return binary(Kind::AShr, std::move(a), std::move(amount));
}

// --- Comparisons -------------------------------------------------------------

ExprRef ExprBuilder::eq(ExprRef a, ExprRef b) {
  if (a.get() == b.get()) return true_;
  if (a->width() == 1) {
    // Boolean equality simplifies to the operand or its negation.
    if (b->isConstant()) return b->constantValue() ? a : notOp(std::move(a));
    if (a->isConstant()) return a->constantValue() ? b : notOp(std::move(b));
  }
  // eq(concat(hi, lo), c)  ==>  eq(hi, c_hi) && eq(lo, c_lo); lets the
  // known-bits fast path see through byte-assembled words.
  if (b->isConstant() && a->kind() == Kind::Concat) {
    const unsigned lo_w = a->operand(1)->width();
    ExprRef hi_eq = eq(a->operand(0),
                       constant(b->constantValue() >> lo_w,
                                a->operand(0)->width()));
    ExprRef lo_eq = eq(a->operand(1), constant(b->constantValue(), lo_w));
    return andOp(std::move(hi_eq), std::move(lo_eq));
  }
  return binary(Kind::Eq, std::move(a), std::move(b));
}

ExprRef ExprBuilder::ult(ExprRef a, ExprRef b) {
  if (a.get() == b.get()) return false_;
  if (b->isZero()) return false_;
  if (a->isZero()) {
    const unsigned bw = b->width();
    return ne(std::move(b), constant(0, bw));
  }
  return binary(Kind::Ult, std::move(a), std::move(b));
}

ExprRef ExprBuilder::ule(ExprRef a, ExprRef b) {
  if (a.get() == b.get()) return true_;
  if (a->isZero()) return true_;
  if (b->isAllOnes()) return true_;
  return binary(Kind::Ule, std::move(a), std::move(b));
}

ExprRef ExprBuilder::slt(ExprRef a, ExprRef b) {
  if (a.get() == b.get()) return false_;
  return binary(Kind::Slt, std::move(a), std::move(b));
}

ExprRef ExprBuilder::sle(ExprRef a, ExprRef b) {
  if (a.get() == b.get()) return true_;
  return binary(Kind::Sle, std::move(a), std::move(b));
}

// --- Structure ----------------------------------------------------------------

ExprRef ExprBuilder::concat(ExprRef hi, ExprRef lo) {
  const unsigned w = hi->width() + lo->width();
  assert(w <= 64);
  if (hi->isConstant() && lo->isConstant())
    return constant((hi->constantValue() << lo->width()) | lo->constantValue(),
                    w);
  if (hi->isZero()) return zext(std::move(lo), w);
  // Merge adjacent extracts of the same expression.
  if (hi->kind() == Kind::Extract && lo->kind() == Kind::Extract &&
      hi->operand(0).get() == lo->operand(0).get() &&
      hi->extractLow() == lo->extractLow() + lo->width()) {
    return extract(hi->operand(0), lo->extractLow(), w);
  }
  return intern(Kind::Concat, w, 0, {std::move(hi), std::move(lo), nullptr});
}

ExprRef ExprBuilder::extract(ExprRef e, unsigned low, unsigned width) {
  assert(low + width <= e->width());
  if (low == 0 && width == e->width()) return e;
  if (e->isConstant())
    return constant(e->constantValue() >> low, width);
  if (e->kind() == Kind::Extract)
    return extract(e->operand(0), e->extractLow() + low, width);
  if (e->kind() == Kind::Concat) {
    const unsigned lo_w = e->operand(1)->width();
    if (low + width <= lo_w) return extract(e->operand(1), low, width);
    if (low >= lo_w) return extract(e->operand(0), low - lo_w, width);
  }
  if (e->kind() == Kind::ZExt || e->kind() == Kind::SExt) {
    const unsigned inner_w = e->operand(0)->width();
    if (low + width <= inner_w) return extract(e->operand(0), low, width);
    if (e->kind() == Kind::ZExt && low >= inner_w) return constant(0, width);
  }
  // Distribute over ite so decoder fields stay field-shaped.
  if (e->kind() == Kind::Ite) {
    if (e->operand(1)->isConstant() && e->operand(2)->isConstant())
      return ite(e->operand(0), extract(e->operand(1), low, width),
                 extract(e->operand(2), low, width));
  }
  return intern(Kind::Extract, width, low, {std::move(e), nullptr, nullptr});
}

ExprRef ExprBuilder::zext(ExprRef e, unsigned width) {
  assert(width >= e->width());
  if (width == e->width()) return e;
  if (e->isConstant()) return constant(e->constantValue(), width);
  if (e->kind() == Kind::ZExt) return zext(e->operand(0), width);
  return intern(Kind::ZExt, width, 0, {std::move(e), nullptr, nullptr});
}

ExprRef ExprBuilder::sext(ExprRef e, unsigned width) {
  assert(width >= e->width());
  if (width == e->width()) return e;
  if (e->isConstant())
    return constant(
        static_cast<std::uint64_t>(signExtend(e->constantValue(), e->width())),
        width);
  if (e->kind() == Kind::SExt) return sext(e->operand(0), width);
  return intern(Kind::SExt, width, 0, {std::move(e), nullptr, nullptr});
}

ExprRef ExprBuilder::ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  assert(cond->width() == 1);
  assert(then_e->width() == else_e->width());
  if (cond->isConstant()) return cond->constantValue() ? then_e : else_e;
  if (then_e.get() == else_e.get()) return then_e;
  if (then_e->width() == 1) {
    if (then_e->isConstantValue(1) && else_e->isConstantValue(0)) return cond;
    if (then_e->isConstantValue(0) && else_e->isConstantValue(1))
      return notOp(std::move(cond));
  }
  const unsigned w = then_e->width();
  return intern(Kind::Ite, w, 0,
                {std::move(cond), std::move(then_e), std::move(else_e)});
}

// --- Convenience ----------------------------------------------------------------

ExprRef ExprBuilder::eqConst(const ExprRef& e, std::uint64_t v) {
  return eq(e, constant(v, e->width()));
}

ExprRef ExprBuilder::bit(const ExprRef& e, unsigned bit_index) {
  return extract(e, bit_index, 1);
}

}  // namespace rvsym::expr
