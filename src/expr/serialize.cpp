#include "expr/serialize.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <utility>

namespace rvsym::expr {

namespace {

bool nameSerializable(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name)
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  return true;
}

struct LineParser {
  std::string_view line;
  std::size_t pos = 0;

  std::optional<std::string_view> token() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return std::nullopt;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    return line.substr(start, pos - start);
  }
};

std::optional<std::uint64_t> parseU64(std::string_view tok, int base = 10) {
  if (tok.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : tok) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (base == 16 && c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (base == 16 && c >= 'A' && c <= 'F')
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else
      return std::nullopt;
    v = v * static_cast<std::uint64_t>(base) + digit;
  }
  return v;
}

std::optional<Kind> kindByName(std::string_view tok) {
  for (int k = 0; k <= static_cast<int>(Kind::Ite); ++k)
    if (tok == kindName(static_cast<Kind>(k))) return static_cast<Kind>(k);
  return std::nullopt;
}

ExprRef buildNode(ExprBuilder& eb, Kind kind, const ExprRef& a,
                  const ExprRef& b, const ExprRef& c) {
  switch (kind) {
    case Kind::Add: return eb.add(a, b);
    case Kind::Sub: return eb.sub(a, b);
    case Kind::Mul: return eb.mul(a, b);
    case Kind::UDiv: return eb.udiv(a, b);
    case Kind::SDiv: return eb.sdiv(a, b);
    case Kind::URem: return eb.urem(a, b);
    case Kind::SRem: return eb.srem(a, b);
    case Kind::And: return eb.andOp(a, b);
    case Kind::Or: return eb.orOp(a, b);
    case Kind::Xor: return eb.xorOp(a, b);
    case Kind::Not: return eb.notOp(a);
    case Kind::Neg: return eb.neg(a);
    case Kind::Shl: return eb.shl(a, b);
    case Kind::LShr: return eb.lshr(a, b);
    case Kind::AShr: return eb.ashr(a, b);
    case Kind::Eq: return eb.eq(a, b);
    case Kind::Ult: return eb.ult(a, b);
    case Kind::Ule: return eb.ule(a, b);
    case Kind::Slt: return eb.slt(a, b);
    case Kind::Sle: return eb.sle(a, b);
    case Kind::Concat: return eb.concat(a, b);
    case Kind::Ite: return eb.ite(a, b, c);
    default: return nullptr;  // Constant/Variable/Extract/ZExt/SExt: special
  }
}

}  // namespace

std::optional<BoundedNodes> serializeNodesBounded(
    const std::vector<ExprRef>& roots, std::size_t max_bytes) {
  // Iterative post-order over the union DAG; each node serializes once.
  std::unordered_map<const Expr*, std::uint64_t> ids;
  std::vector<const Expr*> stack;
  std::string out;
  char buf[96];
  bool truncated = false;

  const auto emit = [&](const Expr& e) -> bool {
    const std::uint64_t id = ids.size();
    switch (e.kind()) {
      case Kind::Constant:
        std::snprintf(buf, sizeof buf, "n%" PRIu64 " const 0x%" PRIx64 " %u\n",
                      id, e.constantValue(), e.width());
        out += buf;
        break;
      case Kind::Variable:
        if (!nameSerializable(e.name())) return false;
        std::snprintf(buf, sizeof buf, "n%" PRIu64 " var ", id);
        out += buf;
        out += e.name();
        std::snprintf(buf, sizeof buf, " %u\n", e.width());
        out += buf;
        break;
      case Kind::Extract:
        std::snprintf(buf, sizeof buf, "n%" PRIu64 " extract n%" PRIu64
                                       " %u %u\n",
                      id, ids.at(e.operand(0).get()), e.extractLow(),
                      e.width());
        out += buf;
        break;
      case Kind::ZExt:
      case Kind::SExt:
        std::snprintf(buf, sizeof buf, "n%" PRIu64 " %s n%" PRIu64 " %u\n", id,
                      kindName(e.kind()), ids.at(e.operand(0).get()),
                      e.width());
        out += buf;
        break;
      default: {
        std::snprintf(buf, sizeof buf, "n%" PRIu64 " %s", id,
                      kindName(e.kind()));
        out += buf;
        for (int i = 0; i < e.numOperands(); ++i) {
          std::snprintf(buf, sizeof buf, " n%" PRIu64,
                        ids.at(e.operand(i).get()));
          out += buf;
        }
        out += '\n';
        break;
      }
    }
    ids.emplace(&e, id);
    return true;
  };

  for (const ExprRef& root : roots) {
    if (!root) return std::nullopt;
    stack.push_back(root.get());
    while (!stack.empty()) {
      if (out.size() >= max_bytes) {
        truncated = true;
        break;
      }
      const Expr* node = stack.back();
      if (ids.count(node) != 0) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (int i = 0; i < node->numOperands(); ++i) {
        const Expr* op = node->operand(i).get();
        if (ids.count(op) == 0) {
          ready = false;
          stack.push_back(op);
        }
      }
      if (!ready) continue;
      stack.pop_back();
      if (!emit(*node)) return std::nullopt;
    }
    if (truncated) break;
  }
  if (!truncated) {
    for (const ExprRef& root : roots) {
      std::snprintf(buf, sizeof buf, "root n%" PRIu64 "\n", ids.at(root.get()));
      out += buf;
    }
  }
  BoundedNodes result;
  result.text = std::move(out);
  result.nodes = ids.size();
  result.truncated = truncated;
  return result;
}

std::optional<std::string> serializeNodes(const std::vector<ExprRef>& roots) {
  std::optional<BoundedNodes> b = serializeNodesBounded(
      roots, std::numeric_limits<std::size_t>::max());
  if (!b) return std::nullopt;
  return std::move(b->text);
}

std::optional<std::vector<ExprRef>> parseNodes(ExprBuilder& eb,
                                               std::string_view text,
                                               std::string* error) {
  const auto fail = [&](const std::string& why,
                        std::size_t line_no) -> std::optional<std::vector<ExprRef>> {
    if (error)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return std::nullopt;
  };

  std::unordered_map<std::uint64_t, ExprRef> nodes;
  std::vector<ExprRef> roots;

  const auto ref = [&](std::string_view tok) -> ExprRef {
    if (tok.size() < 2 || tok[0] != 'n') return nullptr;
    const std::optional<std::uint64_t> id = parseU64(tok.substr(1));
    if (!id) return nullptr;
    const auto it = nodes.find(*id);
    return it == nodes.end() ? nullptr : it->second;
  };

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start : nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    LineParser lp{line};
    const auto head = lp.token();
    if (!head) continue;

    if (*head == "root") {
      const auto tok = lp.token();
      ExprRef r = tok ? ref(*tok) : nullptr;
      if (!r) return fail("root references undefined node", line_no);
      roots.push_back(std::move(r));
      continue;
    }

    if (head->size() < 2 || (*head)[0] != 'n')
      return fail("expected node id", line_no);
    const std::optional<std::uint64_t> id = parseU64(head->substr(1));
    if (!id || nodes.count(*id) != 0)
      return fail("bad or duplicate node id", line_no);

    const auto kind_tok = lp.token();
    if (!kind_tok) return fail("missing kind", line_no);
    const std::optional<Kind> kind = kindByName(*kind_tok);
    if (!kind) return fail("unknown kind '" + std::string(*kind_tok) + "'",
                           line_no);

    ExprRef built;
    switch (*kind) {
      case Kind::Constant: {
        const auto vtok = lp.token();
        const auto wtok = lp.token();
        if (!vtok || !wtok || vtok->size() < 3 || vtok->substr(0, 2) != "0x")
          return fail("const wants 0x<hex> <width>", line_no);
        const auto v = parseU64(vtok->substr(2), 16);
        const auto w = parseU64(*wtok);
        if (!v || !w || *w == 0 || *w > 64)
          return fail("bad const value/width", line_no);
        built = eb.constant(*v, static_cast<unsigned>(*w));
        break;
      }
      case Kind::Variable: {
        const auto name = lp.token();
        const auto wtok = lp.token();
        if (!name || !wtok) return fail("var wants <name> <width>", line_no);
        const auto w = parseU64(*wtok);
        if (!w || *w == 0 || *w > 64) return fail("bad var width", line_no);
        built = eb.variable(std::string(*name), static_cast<unsigned>(*w));
        break;
      }
      case Kind::Extract: {
        const auto op = lp.token();
        const auto low = lp.token();
        const auto wtok = lp.token();
        ExprRef a = op ? ref(*op) : nullptr;
        const auto lo = low ? parseU64(*low) : std::nullopt;
        const auto w = wtok ? parseU64(*wtok) : std::nullopt;
        if (!a || !lo || !w)
          return fail("extract wants n<op> <low> <width>", line_no);
        built = eb.extract(std::move(a), static_cast<unsigned>(*lo),
                           static_cast<unsigned>(*w));
        break;
      }
      case Kind::ZExt:
      case Kind::SExt: {
        const auto op = lp.token();
        const auto wtok = lp.token();
        ExprRef a = op ? ref(*op) : nullptr;
        const auto w = wtok ? parseU64(*wtok) : std::nullopt;
        if (!a || !w) return fail("ext wants n<op> <width>", line_no);
        built = *kind == Kind::ZExt
                    ? eb.zext(std::move(a), static_cast<unsigned>(*w))
                    : eb.sext(std::move(a), static_cast<unsigned>(*w));
        break;
      }
      default: {
        ExprRef ops[3];
        const int n = arity(*kind);
        for (int i = 0; i < n; ++i) {
          const auto tok = lp.token();
          ops[i] = tok ? ref(*tok) : nullptr;
          if (!ops[i]) return fail("operand references undefined node",
                                   line_no);
        }
        built = buildNode(eb, *kind, ops[0], ops[1], ops[2]);
        break;
      }
    }
    if (!built) return fail("could not build node", line_no);
    nodes.emplace(*id, std::move(built));
  }
  if (roots.empty()) return fail("document has no root lines", line_no);
  return roots;
}

}  // namespace rvsym::expr
