// Round-trippable text serialization for expression DAGs.
//
// print.hpp renders expressions for humans; this module renders them
// for machines: the slow-query corpus dumped by the solver telemetry
// (solver/telemetry.hpp) must be replayable offline by rvsym-profile,
// which means parsing the dumped constraints back into a fresh
// ExprBuilder. The format is a flat node list in topological order —
// one node per line, operands referenced by earlier line ids — so the
// parser is a single pass and shared subtrees serialize once:
//
//   n0 var instr 32
//   n1 const 0x33 7
//   n2 extract n0 0 7
//   n3 eq n2 n1
//
// Variables are serialized by name (ids are a per-builder accident);
// parsing re-creates them through ExprBuilder::variable, so parsing the
// same document into one builder twice yields pointer-identical roots.
// Because parsing replays the ops through the builder, constant folding
// and simplification re-run — a parsed root is structurally equal to
// the serialized one whenever the source was itself built by an
// ExprBuilder (as every solver query is).
//
// Variable names may not contain whitespace or newlines; every name the
// co-simulation creates ("instr_0", "reg_x1", ...) satisfies this and
// serializeNodes() refuses (returns empty) otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/builder.hpp"
#include "expr/expr.hpp"

namespace rvsym::expr {

/// Serializes the DAGs rooted at `roots` as one shared node list.
/// Returns the node lines plus one "root nK" line per entry of `roots`,
/// in order. Returns std::nullopt if any reachable variable name
/// contains whitespace (unserializable).
std::optional<std::string> serializeNodes(const std::vector<ExprRef>& roots);

/// serializeNodes with an output budget, for consumers that truncate
/// anyway (the crash-forensics in-flight slot). The DAG walk stops as
/// soon as `text` reaches `max_bytes`, so the work done is bounded by
/// the budget rather than by the DAG size. A truncated result carries
/// node lines only (no "root" trailer — the ids it would reference may
/// not have been emitted); a complete result is byte-identical to
/// serializeNodes().
struct BoundedNodes {
  std::string text;
  std::uint64_t nodes = 0;  ///< node lines actually emitted
  bool truncated = false;
};
std::optional<BoundedNodes> serializeNodesBounded(
    const std::vector<ExprRef>& roots, std::size_t max_bytes);

/// Parses a serializeNodes() document back into `eb`. Returns the root
/// expressions in serialization order, or std::nullopt with a
/// human-readable reason in `error`.
std::optional<std::vector<ExprRef>> parseNodes(ExprBuilder& eb,
                                               std::string_view text,
                                               std::string* error = nullptr);

}  // namespace rvsym::expr
