// rvsym — symbolic bit-vector expression library.
//
// Immutable, hash-consed expression DAG over fixed-width bit-vectors
// (1..64 bits). Expressions are created exclusively through ExprBuilder
// (builder.hpp), which interns structurally identical nodes so that
// pointer equality implies structural equality.
//
// Semantics follow the RISC-V-friendly conventions documented per Kind
// below; the concrete reference semantics live in eval.hpp and are the
// single source of truth used by both the constant folder and the
// bit-blaster tests.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace rvsym::expr {

/// Expression node kinds. Arity and width rules are listed per kind.
enum class Kind : std::uint8_t {
  // Nullary.
  Constant,  ///< `value` holds the bits (masked to width).
  Variable,  ///< free bit-vector variable; `value` holds the variable id.

  // Binary arithmetic; operands and result share one width.
  Add,
  Sub,
  Mul,
  UDiv,  ///< x / 0 == all-ones (RISC-V DIVU convention)
  SDiv,  ///< x / 0 == -1; MIN / -1 == MIN (RISC-V DIV convention)
  URem,  ///< x % 0 == x
  SRem,  ///< x % 0 == x; MIN % -1 == 0

  // Bitwise; operands and result share one width.
  And,
  Or,
  Xor,
  Not,  ///< unary
  Neg,  ///< unary two's complement negate

  // Shifts. Operand 0 is the value, operand 1 the (unsigned) amount;
  // both share the result width. Amounts >= width yield 0 (Shl/LShr)
  // or the sign fill (AShr).
  Shl,
  LShr,
  AShr,

  // Comparisons; operands share a width, result has width 1.
  Eq,
  Ult,
  Ule,
  Slt,
  Sle,

  // Structure.
  Concat,   ///< operand 0 = high bits, operand 1 = low bits; width = sum
  Extract,  ///< bits [value, value + width) of operand 0
  ZExt,     ///< zero-extend operand 0 to width
  SExt,     ///< sign-extend operand 0 to width
  Ite,      ///< operand 0 (width 1) ? operand 1 : operand 2
};

/// Number of operands for a kind.
constexpr int arity(Kind k) {
  switch (k) {
    case Kind::Constant:
    case Kind::Variable:
      return 0;
    case Kind::Not:
    case Kind::Neg:
    case Kind::Extract:
    case Kind::ZExt:
    case Kind::SExt:
      return 1;
    case Kind::Ite:
      return 3;
    default:
      return 2;
  }
}

/// Human-readable mnemonic for printing and diagnostics.
const char* kindName(Kind k);

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// Returns the all-ones mask for a width in [1, 64].
constexpr std::uint64_t widthMask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Sign-extends `v` (masked to `width`) to a signed 64-bit value.
constexpr std::int64_t signExtend(std::uint64_t v, unsigned width) {
  v &= widthMask(width);
  if (width < 64 && (v >> (width - 1)) != 0) v |= ~widthMask(width);
  return static_cast<std::int64_t>(v);
}

/// One immutable DAG node. Construct only via ExprBuilder.
class Expr {
 public:
  Expr(Kind kind, unsigned width, std::uint64_t value,
       std::array<ExprRef, 3> ops, std::string name);

  Kind kind() const { return kind_; }
  unsigned width() const { return width_; }

  bool isConstant() const { return kind_ == Kind::Constant; }
  bool isVariable() const { return kind_ == Kind::Variable; }

  /// Constant bits (Constant), variable id (Variable) or low bit (Extract).
  std::uint64_t rawValue() const { return value_; }

  /// Constant value masked to width. Precondition: isConstant().
  std::uint64_t constantValue() const { return value_ & widthMask(width_); }

  /// Constant interpreted as signed. Precondition: isConstant().
  std::int64_t constantSValue() const { return signExtend(value_, width_); }

  /// True iff this is the constant `v` (masked).
  bool isConstantValue(std::uint64_t v) const {
    return isConstant() && constantValue() == (v & widthMask(width_));
  }
  bool isZero() const { return isConstantValue(0); }
  bool isAllOnes() const { return isConstantValue(widthMask(width_)); }

  /// Variable id. Precondition: isVariable().
  std::uint64_t variableId() const { return value_; }
  /// Variable name (empty for non-variables).
  const std::string& name() const { return name_; }

  /// Extract low bit index. Precondition: kind() == Kind::Extract.
  unsigned extractLow() const { return static_cast<unsigned>(value_); }

  int numOperands() const { return arity(kind_); }
  const ExprRef& operand(int i) const { return ops_[static_cast<size_t>(i)]; }

  std::size_t hash() const { return hash_; }

  /// Structural equality assuming operands are already interned
  /// (compares operand pointers, not operand structure).
  bool shallowEquals(const Expr& other) const;

  /// Total number of distinct nodes reachable from this one.
  std::size_t dagSize() const;

 private:
  Kind kind_;
  unsigned width_;
  std::uint64_t value_;
  std::array<ExprRef, 3> ops_;
  std::string name_;
  std::size_t hash_;
};

}  // namespace rvsym::expr
