#include "expr/rewrite.hpp"

#include <unordered_set>

namespace rvsym::expr {

namespace {

ExprRef narrow(ExprBuilder& eb, ExprRef e);

/// Splits Eq(inner, c) when `inner` is an extension or concatenation.
ExprRef narrowEqConst(ExprBuilder& eb, const ExprRef& inner,
                      std::uint64_t c) {
  switch (inner->kind()) {
    case Kind::ZExt: {
      const ExprRef& sub = inner->operand(0);
      if ((c & ~widthMask(sub->width())) != 0) return eb.falseExpr();
      return narrow(eb, eb.eq(sub, eb.constant(c, sub->width())));
    }
    case Kind::SExt: {
      const ExprRef& sub = inner->operand(0);
      const std::uint64_t low = c & widthMask(sub->width());
      const std::uint64_t expect =
          static_cast<std::uint64_t>(signExtend(low, sub->width())) &
          widthMask(inner->width());
      if (c != expect) return eb.falseExpr();
      return narrow(eb, eb.eq(sub, eb.constant(low, sub->width())));
    }
    case Kind::Concat: {
      const ExprRef& hi = inner->operand(0);
      const ExprRef& lo = inner->operand(1);
      const std::uint64_t cl = c & widthMask(lo->width());
      const std::uint64_t ch =
          lo->width() >= 64 ? 0 : (c >> lo->width()) & widthMask(hi->width());
      return eb.boolAnd(
          narrow(eb, eb.eq(hi, eb.constant(ch, hi->width()))),
          narrow(eb, eb.eq(lo, eb.constant(cl, lo->width()))));
    }
    default:
      return nullptr;
  }
}

/// Applies one narrowing rule to `e` (already rebuilt through the
/// builder, so constant folding has run). Returns `e` when nothing
/// fires.
ExprRef narrow(ExprBuilder& eb, ExprRef e) {
  switch (e->kind()) {
    case Kind::Eq: {
      const ExprRef& a = e->operand(0);
      const ExprRef& b = e->operand(1);
      ExprRef r;
      if (b->isConstant())
        r = narrowEqConst(eb, a, b->constantValue());
      else if (a->isConstant())
        r = narrowEqConst(eb, b, a->constantValue());
      return r ? r : e;
    }
    case Kind::Ult: {
      const ExprRef& a = e->operand(0);
      const ExprRef& b = e->operand(1);
      if (a->kind() == Kind::ZExt && b->isConstant()) {
        const ExprRef& sub = a->operand(0);
        const std::uint64_t c = b->constantValue();
        if (c == 0) return eb.falseExpr();
        if (c > widthMask(sub->width())) return eb.trueExpr();
        return eb.ult(sub, eb.constant(c, sub->width()));
      }
      if (a->isConstant() && b->kind() == Kind::ZExt) {
        const ExprRef& sub = b->operand(0);
        const std::uint64_t c = a->constantValue();
        if (c >= widthMask(sub->width())) return eb.falseExpr();
        return eb.ult(eb.constant(c, sub->width()), sub);
      }
      return e;
    }
    case Kind::Ule: {
      const ExprRef& a = e->operand(0);
      const ExprRef& b = e->operand(1);
      if (a->kind() == Kind::ZExt && b->isConstant()) {
        const ExprRef& sub = a->operand(0);
        const std::uint64_t c = b->constantValue();
        if (c >= widthMask(sub->width())) return eb.trueExpr();
        return eb.ule(sub, eb.constant(c, sub->width()));
      }
      if (a->isConstant() && b->kind() == Kind::ZExt) {
        const ExprRef& sub = b->operand(0);
        const std::uint64_t c = a->constantValue();
        if (c == 0) return eb.trueExpr();
        if (c > widthMask(sub->width())) return eb.falseExpr();
        return eb.ule(eb.constant(c, sub->width()), sub);
      }
      return e;
    }
    default:
      return e;
  }
}

/// Rebuilds one node from already-rewritten operands.
ExprRef rebuild(ExprBuilder& eb, const Expr& n, const SubstMap& subst,
                ExprRef a, ExprRef b, ExprRef c) {
  switch (n.kind()) {
    case Kind::Constant:
      return eb.constant(n.constantValue(), n.width());
    case Kind::Variable: {
      const auto it = subst.find(&n);
      if (it != subst.end()) return it->second;
      return eb.variableById(n.variableId());
    }
    case Kind::Add:
      return eb.add(std::move(a), std::move(b));
    case Kind::Sub:
      return eb.sub(std::move(a), std::move(b));
    case Kind::Mul:
      return eb.mul(std::move(a), std::move(b));
    case Kind::UDiv:
      return eb.udiv(std::move(a), std::move(b));
    case Kind::SDiv:
      return eb.sdiv(std::move(a), std::move(b));
    case Kind::URem:
      return eb.urem(std::move(a), std::move(b));
    case Kind::SRem:
      return eb.srem(std::move(a), std::move(b));
    case Kind::And:
      return eb.andOp(std::move(a), std::move(b));
    case Kind::Or:
      return eb.orOp(std::move(a), std::move(b));
    case Kind::Xor:
      return eb.xorOp(std::move(a), std::move(b));
    case Kind::Not:
      return eb.notOp(std::move(a));
    case Kind::Neg:
      return eb.neg(std::move(a));
    case Kind::Shl:
      return eb.shl(std::move(a), std::move(b));
    case Kind::LShr:
      return eb.lshr(std::move(a), std::move(b));
    case Kind::AShr:
      return eb.ashr(std::move(a), std::move(b));
    case Kind::Eq:
      return narrow(eb, eb.eq(std::move(a), std::move(b)));
    case Kind::Ult:
      return narrow(eb, eb.ult(std::move(a), std::move(b)));
    case Kind::Ule:
      return narrow(eb, eb.ule(std::move(a), std::move(b)));
    case Kind::Slt:
      return eb.slt(std::move(a), std::move(b));
    case Kind::Sle:
      return eb.sle(std::move(a), std::move(b));
    case Kind::Concat:
      return eb.concat(std::move(a), std::move(b));
    case Kind::Extract:
      return eb.extract(std::move(a), n.extractLow(), n.width());
    case Kind::ZExt:
      return eb.zext(std::move(a), n.width());
    case Kind::SExt:
      return eb.sext(std::move(a), n.width());
    case Kind::Ite:
      return eb.ite(std::move(a), std::move(b), std::move(c));
  }
  return nullptr;  // unreachable
}

}  // namespace

bool addEqualitySubst(ExprBuilder& eb, const ExprRef& c, SubstMap* subst) {
  const auto pin = [&](const ExprRef& v, std::uint64_t value) {
    // First pin wins; a conflicting second pin can only come from an
    // unsatisfiable set, where any consistent rewrite is acceptable.
    return subst->emplace(v.get(), eb.constant(value, v->width())).second;
  };
  if (c->kind() == Kind::Eq) {
    const ExprRef& a = c->operand(0);
    const ExprRef& b = c->operand(1);
    if (a->isVariable() && b->isConstant()) return pin(a, b->constantValue());
    if (b->isVariable() && a->isConstant()) return pin(b, a->constantValue());
    return false;
  }
  if (c->isVariable() && c->width() == 1) return pin(c, 1);
  if (c->kind() == Kind::Not && c->operand(0)->isVariable() &&
      c->operand(0)->width() == 1)
    return pin(c->operand(0), 0);
  return false;
}

void collectVariableIds(const ExprRef& e, std::vector<std::uint64_t>* out) {
  std::unordered_set<const Expr*> seen;
  std::vector<const Expr*> stack{e.get()};
  seen.insert(e.get());
  while (!stack.empty()) {
    const Expr* n = stack.back();
    stack.pop_back();
    if (n->isVariable()) {
      out->push_back(n->variableId());
      continue;
    }
    for (int i = 0; i < n->numOperands(); ++i) {
      const Expr* op = n->operand(i).get();
      if (seen.insert(op).second) stack.push_back(op);
    }
  }
}

ExprRef rewriteExpr(ExprBuilder& eb, const ExprRef& e, const SubstMap& subst) {
  std::unordered_map<const Expr*, ExprRef> memo;
  std::vector<const Expr*> stack{e.get()};
  while (!stack.empty()) {
    const Expr* n = stack.back();
    if (memo.count(n) != 0) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (int i = 0; i < n->numOperands(); ++i) {
      const Expr* op = n->operand(i).get();
      if (memo.count(op) == 0) {
        stack.push_back(op);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    ExprRef ops[3];
    for (int i = 0; i < n->numOperands(); ++i)
      ops[i] = memo.at(n->operand(i).get());
    memo.emplace(n, rebuild(eb, *n, subst, std::move(ops[0]),
                            std::move(ops[1]), std::move(ops[2])));
  }
  return memo.at(e.get());
}

}  // namespace rvsym::expr
