#include "expr/expr.hpp"

#include <unordered_set>
#include <vector>

namespace rvsym::expr {

const char* kindName(Kind k) {
  switch (k) {
    case Kind::Constant: return "const";
    case Kind::Variable: return "var";
    case Kind::Add: return "add";
    case Kind::Sub: return "sub";
    case Kind::Mul: return "mul";
    case Kind::UDiv: return "udiv";
    case Kind::SDiv: return "sdiv";
    case Kind::URem: return "urem";
    case Kind::SRem: return "srem";
    case Kind::And: return "and";
    case Kind::Or: return "or";
    case Kind::Xor: return "xor";
    case Kind::Not: return "not";
    case Kind::Neg: return "neg";
    case Kind::Shl: return "shl";
    case Kind::LShr: return "lshr";
    case Kind::AShr: return "ashr";
    case Kind::Eq: return "eq";
    case Kind::Ult: return "ult";
    case Kind::Ule: return "ule";
    case Kind::Slt: return "slt";
    case Kind::Sle: return "sle";
    case Kind::Concat: return "concat";
    case Kind::Extract: return "extract";
    case Kind::ZExt: return "zext";
    case Kind::SExt: return "sext";
    case Kind::Ite: return "ite";
  }
  return "?";
}

namespace {

std::size_t combineHash(std::size_t seed, std::size_t v) {
  // boost::hash_combine-style mixing.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Expr::Expr(Kind kind, unsigned width, std::uint64_t value,
           std::array<ExprRef, 3> ops, std::string name)
    : kind_(kind),
      width_(width),
      value_(kind == Kind::Constant ? (value & widthMask(width)) : value),
      ops_(std::move(ops)),
      name_(std::move(name)) {
  std::size_t h = combineHash(static_cast<std::size_t>(kind_), width_);
  h = combineHash(h, static_cast<std::size_t>(value_));
  for (int i = 0; i < arity(kind_); ++i)
    h = combineHash(h, std::hash<const Expr*>{}(ops_[static_cast<size_t>(i)].get()));
  hash_ = h;
}

bool Expr::shallowEquals(const Expr& other) const {
  if (kind_ != other.kind_ || width_ != other.width_ || value_ != other.value_)
    return false;
  for (int i = 0; i < arity(kind_); ++i)
    if (ops_[static_cast<size_t>(i)].get() !=
        other.ops_[static_cast<size_t>(i)].get())
      return false;
  // Variable identity is the id; names are informational only.
  return true;
}

std::size_t Expr::dagSize() const {
  std::unordered_set<const Expr*> seen;
  std::vector<const Expr*> stack{this};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    for (int i = 0; i < e->numOperands(); ++i)
      stack.push_back(e->operand(i).get());
  }
  return seen.size();
}

}  // namespace rvsym::expr
