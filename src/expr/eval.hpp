// Concrete reference semantics for expressions.
//
// `evaluate` interprets an expression DAG under a variable assignment.
// This is the single source of truth for the bit-vector semantics: the
// constant folder in ExprBuilder and the solver's bit-blaster are both
// tested against it.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "expr/expr.hpp"

namespace rvsym::expr {

/// Maps variable ids to concrete values (masked to the variable width on
/// use). Missing variables evaluate to 0.
class Assignment {
 public:
  void set(std::uint64_t var_id, std::uint64_t value) { values_[var_id] = value; }
  std::uint64_t get(std::uint64_t var_id) const {
    auto it = values_.find(var_id);
    return it == values_.end() ? 0 : it->second;
  }
  bool contains(std::uint64_t var_id) const { return values_.count(var_id) != 0; }
  const std::unordered_map<std::uint64_t, std::uint64_t>& values() const {
    return values_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> values_;
};

/// Applies the semantics of a non-structural binary/unary operator.
/// `a`, `b` are operand values masked to `width` (the operand width);
/// the result is masked to the result width of the operator.
std::uint64_t applyOp(Kind kind, unsigned width, std::uint64_t a, std::uint64_t b);

/// Evaluates `e` under `asg` (memoized over the DAG). Result is masked to
/// e->width().
std::uint64_t evaluate(const ExprRef& e, const Assignment& asg);

}  // namespace rvsym::expr
