// ExprBuilder — the only way to create expressions.
//
// Responsibilities:
//  * hash-consing: structurally identical nodes share one allocation, so
//    pointer equality is structural equality;
//  * constant folding: any operator over constants collapses to a
//    Constant node using the reference semantics from eval.hpp;
//  * light algebraic simplification (identity/absorbing elements,
//    x-x, x^x, eq(x,x), extract-of-concat, nested extract, ...) chosen to
//    keep the decoder-heavy workloads of the co-simulation small.
//
// A builder also owns the variable namespace: variable ids are assigned
// consecutively and names are unique (a repeated name gets the same id
// and width back; conflicting widths are an error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"

namespace rvsym::expr {

class ExprBuilder {
 public:
  ExprBuilder();

  // --- Leaves -----------------------------------------------------------
  ExprRef constant(std::uint64_t value, unsigned width);
  ExprRef boolConst(bool v) { return constant(v ? 1 : 0, 1); }
  ExprRef trueExpr() { return true_; }
  ExprRef falseExpr() { return false_; }

  /// Creates (or retrieves) the free variable `name`. Repeated calls with
  /// the same name return the identical node; the width must match.
  ExprRef variable(const std::string& name, unsigned width);
  /// Number of variables created so far.
  std::size_t numVariables() const { return variables_.size(); }
  /// Variable node by id (ids are dense, 0-based).
  const ExprRef& variableById(std::uint64_t id) const { return variables_.at(id); }

  // --- Arithmetic -------------------------------------------------------
  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef udiv(ExprRef a, ExprRef b);
  ExprRef sdiv(ExprRef a, ExprRef b);
  ExprRef urem(ExprRef a, ExprRef b);
  ExprRef srem(ExprRef a, ExprRef b);
  ExprRef neg(ExprRef a);

  // --- Bitwise ----------------------------------------------------------
  ExprRef andOp(ExprRef a, ExprRef b);
  ExprRef orOp(ExprRef a, ExprRef b);
  ExprRef xorOp(ExprRef a, ExprRef b);
  ExprRef notOp(ExprRef a);

  // --- Shifts -----------------------------------------------------------
  ExprRef shl(ExprRef a, ExprRef amount);
  ExprRef lshr(ExprRef a, ExprRef amount);
  ExprRef ashr(ExprRef a, ExprRef amount);

  // --- Comparisons (result width 1) --------------------------------------
  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef ne(ExprRef a, ExprRef b) { return notOp(eq(std::move(a), std::move(b))); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b);
  ExprRef ugt(ExprRef a, ExprRef b) { return ult(std::move(b), std::move(a)); }
  ExprRef uge(ExprRef a, ExprRef b) { return ule(std::move(b), std::move(a)); }
  ExprRef slt(ExprRef a, ExprRef b);
  ExprRef sle(ExprRef a, ExprRef b);
  ExprRef sgt(ExprRef a, ExprRef b) { return slt(std::move(b), std::move(a)); }
  ExprRef sge(ExprRef a, ExprRef b) { return sle(std::move(b), std::move(a)); }

  // --- Structure ---------------------------------------------------------
  ExprRef concat(ExprRef hi, ExprRef lo);
  ExprRef extract(ExprRef e, unsigned low, unsigned width);
  ExprRef zext(ExprRef e, unsigned width);
  ExprRef sext(ExprRef e, unsigned width);
  ExprRef ite(ExprRef cond, ExprRef then_e, ExprRef else_e);

  // --- Convenience -------------------------------------------------------
  /// eq(e, constant(v, e.width))
  ExprRef eqConst(const ExprRef& e, std::uint64_t v);
  /// Single bit `e[bit]` as a width-1 expression.
  ExprRef bit(const ExprRef& e, unsigned bit_index);
  /// Boolean connectives over width-1 expressions.
  ExprRef boolAnd(ExprRef a, ExprRef b) { return andOp(std::move(a), std::move(b)); }
  ExprRef boolOr(ExprRef a, ExprRef b) { return orOp(std::move(a), std::move(b)); }
  ExprRef boolNot(ExprRef a) { return notOp(std::move(a)); }

  /// Interning statistics.
  std::size_t numInternedNodes() const { return intern_.size(); }

 private:
  ExprRef intern(Kind kind, unsigned width, std::uint64_t value,
                 std::array<ExprRef, 3> ops, std::string name = {});
  ExprRef binary(Kind kind, ExprRef a, ExprRef b);

  struct Hash {
    std::size_t operator()(const ExprRef& e) const { return e->hash(); }
  };
  struct Eq {
    bool operator()(const ExprRef& a, const ExprRef& b) const {
      return a->shallowEquals(*b);
    }
  };
  std::unordered_map<ExprRef, ExprRef, Hash, Eq> intern_;
  std::unordered_map<std::string, ExprRef> vars_by_name_;
  std::vector<ExprRef> variables_;
  ExprRef true_;
  ExprRef false_;
};

}  // namespace rvsym::expr
