#include "expr/print.hpp"

#include <sstream>
#include <unordered_map>

namespace rvsym::expr {

namespace {

void countUses(const Expr* e, std::unordered_map<const Expr*, int>& uses) {
  if (++uses[e] > 1) return;
  for (int i = 0; i < e->numOperands(); ++i)
    countUses(e->operand(i).get(), uses);
}

struct Printer {
  const std::unordered_map<const Expr*, int>& uses;
  std::unordered_map<const Expr*, int> labels;
  std::ostringstream defs;
  int next_label = 0;

  std::string render(const Expr* e) {
    auto lit = labels.find(e);
    if (lit != labels.end()) return "%" + std::to_string(lit->second);

    std::string body = renderBody(e);
    if (e->numOperands() > 0 && uses.at(e) > 1) {
      const int label = next_label++;
      labels.emplace(e, label);
      defs << "%" << label << " = " << body << "\n";
      return "%" + std::to_string(label);
    }
    return body;
  }

  std::string renderBody(const Expr* e) {
    std::ostringstream os;
    switch (e->kind()) {
      case Kind::Constant: {
        os << "#x" << std::hex << e->constantValue() << std::dec << ":"
           << e->width();
        return os.str();
      }
      case Kind::Variable:
        return "(var " + (e->name().empty()
                              ? "v" + std::to_string(e->variableId())
                              : e->name()) +
               ":" + std::to_string(e->width()) + ")";
      case Kind::Extract:
        os << "(extract " << e->extractLow() << " " << e->width() << " "
           << render(e->operand(0).get()) << ")";
        return os.str();
      default: {
        os << "(" << kindName(e->kind());
        if (e->kind() == Kind::ZExt || e->kind() == Kind::SExt)
          os << " " << e->width();
        for (int i = 0; i < e->numOperands(); ++i)
          os << " " << render(e->operand(i).get());
        os << ")";
        return os.str();
      }
    }
  }
};

}  // namespace

std::string toString(const ExprRef& e) {
  if (!e) return "<null>";
  std::unordered_map<const Expr*, int> uses;
  countUses(e.get(), uses);
  Printer p{uses, {}, {}, 0};
  std::string root = p.render(e.get());
  std::string defs = p.defs.str();
  return defs.empty() ? root : defs + root;
}

std::string summary(const ExprRef& e) {
  if (!e) return "<null>";
  std::ostringstream os;
  os << kindName(e->kind()) << ":" << e->width() << " (" << e->dagSize()
     << " nodes)";
  return os.str();
}

}  // namespace rvsym::expr
