// Structured JSONL event tracing for the path exploration engines.
//
// One trace line per event, one JSON object per line:
//
//   {"ev":"run_start","searcher":"dfs","jobs":4,"trace_version":1}
//   {"ev":"schedule","path":7,"depth":3}
//   {"ev":"fork","path":9,"parent":7,"depth":4}
//   {"ev":"voter","path":7,"verdict":"mismatch","field":"rd_value",...}
//   {"ev":"path_end","path":7,"end":"error","instr":1,"forks":2,...}
//   {"ev":"run_end","paths":412,"t_s":1.07}
//
// Determinism contract: all lifecycle events are emitted by the engine's
// committer thread in commit order, and events produced *during* a
// path's (possibly speculative) execution are buffered in its ExecState
// and flushed at commit — so for a fixed workload the trace is
// byte-identical across --jobs values, except for fields whose name
// starts with "t_" (wall-clock) or "qc_" (query-cache traffic, which
// depends on cross-worker timing). Post-mortem consumers reconstruct
// the exploration tree from the stable path ids: the root path is 0 and
// every fork line names its parent.
//
// Cost model: with a null sink every trace macro is one pointer test;
// compiling with RVSYM_OBS_NO_TRACING removes the calls entirely (the
// benches' "tracing disabled" configuration).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace rvsym::obs {

inline constexpr int kTraceVersion = 1;

/// One event under construction: a type tag plus ordered fields whose
/// values are already rendered as raw JSON (via the num/str helpers).
struct TraceEvent {
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  explicit TraceEvent(std::string t) : type(std::move(t)) {}

  TraceEvent& num(std::string k, std::uint64_t v) {
    fields.emplace_back(std::move(k), std::to_string(v));
    return *this;
  }
  TraceEvent& num(std::string k, double v) {
    JsonWriter w;
    w.value(v);
    fields.emplace_back(std::move(k), w.str());
    return *this;
  }
  TraceEvent& str(std::string k, std::string_view v) {
    fields.emplace_back(std::move(k), "\"" + jsonEscape(v) + "\"");
    return *this;
  }
  TraceEvent& boolean(std::string k, bool v) {
    fields.emplace_back(std::move(k), v ? "true" : "false");
    return *this;
  }

  /// Renders the event as one JSONL line (no trailing newline).
  std::string toJsonl() const;
};

/// Event consumer. Implementations must tolerate concurrent emit()
/// calls (the engines funnel lifecycle events through the committer,
/// but heartbeats and ad-hoc callers may race).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& ev) = 0;
  virtual void flush() {}
};

/// Discards everything — the "runtime disabled" sink. Engines treat a
/// null TraceSink* the same way; this class exists for call sites that
/// want a non-null sink unconditionally.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override {}
};

/// Appends one line per event to a FILE (owned or borrowed).
class JsonlTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing. ok() reports failure.
  explicit JsonlTraceSink(const std::string& path);
  /// Borrows an open stream (not closed on destruction).
  explicit JsonlTraceSink(std::FILE* borrowed);
  ~JsonlTraceSink() override;

  bool ok() const { return file_ != nullptr; }
  void emit(const TraceEvent& ev) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool owned_ = false;
};

/// Collects events in memory (tests, post-mortem assembly).
class BufferTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent& ev) override;
  /// All emitted lines, one JSONL line each (no trailing newline).
  std::vector<std::string> lines() const;
  std::string joined() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

}  // namespace rvsym::obs

// Compile-time gate: building with -DRVSYM_OBS_NO_TRACING compiles every
// RVSYM_TRACE call site to nothing (the event expression is never
// evaluated). Default builds keep tracing available behind a null-sink
// test — one predicted branch when disabled at runtime.
#ifdef RVSYM_OBS_NO_TRACING
#define RVSYM_TRACE(sink_ptr, event_expr) ((void)0)
#else
#define RVSYM_TRACE(sink_ptr, event_expr)                 \
  do {                                                    \
    if (::rvsym::obs::TraceSink* _rvsym_s = (sink_ptr)) { \
      _rvsym_s->emit(event_expr);                         \
    }                                                     \
  } while (0)
#endif
