#include "obs/timeseries.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/flightrec/crashdump.hpp"
#include "obs/json.hpp"

namespace rvsym::obs {

namespace {

std::string headerJson(const TimeseriesOptions& opts) {
  JsonWriter w;
  w.beginObject();
  w.field("ev", "ts_header");
  w.field("schema", kTimeseriesSchema);
  w.field("version", kTimeseriesVersion);
  w.field("kind", opts.kind);
  w.field("interval_s", opts.interval_s);
  w.field("total_work", opts.total_work);
  w.endObject();
  return w.str();
}

void writeProgressSections(JsonWriter& w, const HeartbeatSnapshot& s) {
  if (s.has_paths) {
    w.key("paths").beginObject();
    w.field("done", s.paths_done);
    w.field("completed", s.paths_completed);
    w.field("errors", s.paths_error);
    w.field("partial", s.paths_partial);
    w.field("worklist", s.worklist_depth);
    w.endObject();
    w.field("instr", s.instructions);
  }
  if (s.has_campaign) {
    w.key("campaign").beginObject();
    w.field("total", s.mutants_total);
    w.field("judged", s.mutants_judged);
    w.field("killed", s.mutants_killed);
    w.field("survived", s.mutants_survived);
    w.field("equivalent", s.mutants_equivalent);
    w.endObject();
  }
  if (s.has_work) {
    w.key("work").beginObject();
    w.field("label", s.work_label);
    w.field("done", s.work_done);
    w.field("total", s.work_total);
    w.endObject();
  }
}

}  // namespace

std::string TimeseriesSampler::sampleJson(const HeartbeatSnapshot& s,
                                          MetricsRegistry* registry,
                                          std::uint64_t seq) {
  JsonWriter w;
  w.beginObject();
  w.field("ev", "sample");
  w.field("seq", seq);
  w.field("t_s", s.elapsed_s);
  writeProgressSections(w, s);
  if (s.has_solver) {
    w.key("solver").beginObject();
    w.field("qps", s.solver_qps);
    w.field("solves", s.solver_solves);
    w.field("p50_us", s.solver_p50_us);
    w.field("p90_us", s.solver_p90_us);
    w.field("p99_us", s.solver_p99_us);
    w.field("slow", s.slow_queries);
    w.key("answered").beginObject();
    w.field("exact", s.answered_exact);
    w.field("cexm", s.answered_cexm);
    w.field("cexc", s.answered_cexc);
    w.field("rw", s.answered_rw);
    w.field("sliced", s.answered_sliced);
    w.endObject();
    w.endObject();
    w.key("qcache").beginObject();
    w.field("hits", s.qcache_hits);
    w.field("misses", s.qcache_misses);
    w.field("hit_rate", s.cacheHitRate());
    w.endObject();
  }
  if (!s.extra.empty()) w.field("extra", s.extra);
  if (registry != nullptr) {
    // Splice the registry dump's three sections into the sample record
    // (toSummaryJson returns {"counters":..,"gauges":..,"hist":..}).
    const std::string reg = registry->toSummaryJson();
    w.key("registry").rawValue(reg);
  }
  w.endObject();
  return w.str();
}

std::string TimeseriesSampler::finalJson(const HeartbeatSnapshot& s,
                                         const std::string& kind, double t_s,
                                         std::uint64_t samples,
                                         bool abnormal) {
  // Field order: deterministic workload-derived fields first, then the
  // t_/qc_-prefixed timing-dependent tail — the same canonicalization
  // convention the trace/journal footers use, so obs::analyze can diff
  // two runs' ts_final records by dropping the prefixed fields.
  JsonWriter w;
  w.beginObject();
  w.field("ev", "ts_final");
  w.field("kind", kind);
  writeProgressSections(w, s);
  w.field("t_s", t_s);
  w.field("t_samples", samples);
  if (abnormal) w.field("t_abnormal", true);
  if (s.has_solver) {
    w.field("t_solves", s.solver_solves);
    w.field("t_slow", s.slow_queries);
    w.field("t_sliced", s.answered_sliced);
    w.field("qc_hits", s.qcache_hits);
    w.field("qc_misses", s.qcache_misses);
    // The disposition split races on the shared caches (which worker
    // solves first decides exact-hit vs cex-hit vs solve), hence the
    // parity-stripped prefix despite being counts, not times.
    w.key("qc_answered").beginObject();
    w.field("exact", s.answered_exact);
    w.field("cexm", s.answered_cexm);
    w.field("cexc", s.answered_cexc);
    w.field("rw", s.answered_rw);
    w.endObject();
  }
  w.endObject();
  return w.str();
}

TimeseriesSampler::TimeseriesSampler(TimeseriesOptions opts,
                                     MetricsRegistry& registry,
                                     Decorate decorate)
    : opts_(std::move(opts)),
      registry_(registry),
      decorate_(std::move(decorate)) {}

TimeseriesSampler::~TimeseriesSampler() { stop(); }

bool TimeseriesSampler::start(std::string* error) {
#ifdef RVSYM_OBS_NO_TRACING
  if (error)
    *error = "tracing compiled out (RVSYM_DISABLE_TRACING); rebuild without "
             "-DRVSYM_DISABLE_TRACING to use timeseries/status output";
  return false;
#else
  if (running_) return true;
  if (opts_.out_path.empty() && opts_.status_path.empty()) {
    if (error) *error = "timeseries sampler needs an output or status path";
    return false;
  }
  if (opts_.interval_s <= 0) opts_.interval_s = 0.5;
  if (!opts_.out_path.empty()) {
    stream_ = std::fopen(opts_.out_path.c_str(), "wb");
    if (stream_ == nullptr) {
      if (error) *error = "cannot open " + opts_.out_path;
      return false;
    }
    const std::string header = headerJson(opts_);
    std::fprintf(stream_, "%s\n", header.c_str());
    std::fflush(stream_);
  }
  start_time_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  running_ = true;
  // Arm the crash flush: if the process dies before stop(), the
  // registered writer appends the latest precomposed abnormal footer to
  // the stream from signal context (tick() fflushes after each record,
  // so the fd position is always at a record boundary). Only the stream
  // gets this treatment — the status file needs open/rename, which the
  // fatal path avoids.
  if (stream_ != nullptr) {
#ifndef _WIN32
    stream_fd_ = fileno(stream_);
#endif
    publishCrashRecord(snapshotNow());
    crash_writer_id_ =
        flightrec::addCrashWriter({&TimeseriesSampler::crashFlush, this});
  }
  thread_ = std::thread([this] { threadMain(); });
  return true;
#endif
}

void TimeseriesSampler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();

  // Disarm the crash flush before the clean footer goes out, so a
  // signal landing after this point can't append a second one.
  if (crash_writer_id_ >= 0) {
    flightrec::removeCrashWriter(crash_writer_id_);
    crash_writer_id_ = -1;
  }
  stream_fd_ = -1;

  // Final sample (covers runs shorter than one interval) + the
  // deterministic closing record.
  const std::uint64_t seq = samples_.fetch_add(1, std::memory_order_relaxed);
  HeartbeatSnapshot s = snapshotNow();
  if (stream_ != nullptr) {
    std::fprintf(stream_, "%s\n",
                 sampleJson(s, &registry_, seq).c_str());
    std::fprintf(
        stream_, "%s\n",
        finalJson(s, opts_.kind, s.elapsed_s, samples_.load()).c_str());
    std::fflush(stream_);
    std::fclose(stream_);
    stream_ = nullptr;
  }
  writeStatus(s, seq);
  running_ = false;
}

HeartbeatSnapshot TimeseriesSampler::snapshotNow() {
  HeartbeatSnapshot s;
  s.elapsed_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count();
  s.readProgress(registry_);
  s.readRegistry(registry_);
  if (opts_.total_work != 0 && !s.has_work && !s.has_campaign) {
    // Producers that track progress only via engine.* counters still
    // get a done-vs-total section from the header denominator.
    s.has_work = true;
    s.work_label = "paths";
    s.work_done = s.paths_done;
    s.work_total = opts_.total_work;
  }
  if (decorate_) decorate_(s);
  return s;
}

void TimeseriesSampler::tick(std::uint64_t seq) {
  HeartbeatSnapshot s = snapshotNow();
  if (stream_ != nullptr) {
    std::fprintf(stream_, "%s\n",
                 sampleJson(s, &registry_, seq).c_str());
    std::fflush(stream_);
    publishCrashRecord(s);
  }
  writeStatus(s, seq);
  if (opts_.echo_stderr) emitHeartbeatLine(s, opts_.stderr_prefix);
}

void TimeseriesSampler::publishCrashRecord(const HeartbeatSnapshot& s) {
  const std::string rec =
      finalJson(s, opts_.kind, s.elapsed_s,
                samples_.load(std::memory_order_relaxed),
                /*abnormal=*/true) +
      "\n";
  const std::uint32_t len = static_cast<std::uint32_t>(
      rec.size() < kCrashBufBytes ? rec.size() : kCrashBufBytes);
  // Seqlock write (sampler thread only): odd version while the payload
  // is inconsistent, even when readable. The crash writer may run on
  // any thread, so every byte goes through a relaxed atomic store and
  // the version flips carry the ordering.
  const std::uint32_t v = crash_ver_.load(std::memory_order_relaxed);
  crash_ver_.store(v + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::uint32_t i = 0; i < len; ++i)
    crash_buf_[i].store(rec[i], std::memory_order_relaxed);
  crash_len_.store(len, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  crash_ver_.store(v + 2, std::memory_order_release);
}

void TimeseriesSampler::crashFlush(void* ctx, bool /*fatal*/) {
#ifndef _WIN32
  // Async-signal-safe: reads the seqlock'd precomposed record and
  // write()s it after whatever tick() last fflushed. Nothing here
  // allocates, locks, or touches stdio.
  auto* self = static_cast<TimeseriesSampler*>(ctx);
  const int fd = self->stream_fd_;
  if (fd < 0) return;
  char buf[kCrashBufBytes];
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::uint32_t v0 = self->crash_ver_.load(std::memory_order_acquire);
    if (v0 == 0 || (v0 & 1u) != 0) continue;  // never published / mid-write
    const std::uint32_t len =
        self->crash_len_.load(std::memory_order_relaxed);
    if (len == 0 || len > kCrashBufBytes) continue;
    for (std::uint32_t i = 0; i < len; ++i)
      buf[i] = self->crash_buf_[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (self->crash_ver_.load(std::memory_order_relaxed) != v0) continue;
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    return;
  }
#else
  (void)ctx;
#endif
}

void TimeseriesSampler::writeStatus(const HeartbeatSnapshot& s,
                                    std::uint64_t seq) {
  if (opts_.status_path.empty()) return;
  // One JSON object combining the header fields with the latest sample,
  // rewritten atomically (tmp + rename) so readers never see a torn
  // document.
  JsonWriter w;
  w.beginObject();
  w.field("ev", "status");
  w.field("schema", kTimeseriesSchema);
  w.field("version", kTimeseriesVersion);
  w.field("kind", opts_.kind);
  w.field("interval_s", opts_.interval_s);
  w.field("total_work", opts_.total_work);
  w.key("sample").rawValue(sampleJson(s, &registry_, seq));
  w.endObject();
  const std::string tmp = opts_.status_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%s\n", w.str().c_str());
  std::fclose(f);
  std::rename(tmp.c_str(), opts_.status_path.c_str());
}

void TimeseriesSampler::threadMain() {
  const auto interval = std::chrono::duration<double>(opts_.interval_s);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lk, interval, [this] { return stop_requested_; })) break;
    const std::uint64_t seq = samples_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    tick(seq);
    lk.lock();
  }
}

}  // namespace rvsym::obs
