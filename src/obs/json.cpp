#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace rvsym::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::beforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += jsonEscape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ += '"';
  out_ += jsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  beforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::rawValue(std::string_view json) {
  beforeValue();
  out_ += json;
  return *this;
}

}  // namespace rvsym::obs
