#include "obs/bundle.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "fault/faults.hpp"
#include "mut/space.hpp"
#include "obs/json.hpp"
#include "rtl/vcd.hpp"
#include "rv32/instr.hpp"
#include "symex/ktest.hpp"

namespace rvsym::obs {

namespace fs = std::filesystem;

namespace {

/// Pins instruction-memory words to the recorded vector. Captures by
/// value: the constraint outlives the caller's locals inside the config.
core::InstrConstraint pinInstructions(symex::TestVector tv) {
  return [tv = std::move(tv)](symex::ExecState& st,
                              const expr::ExprRef& instr) {
    if (auto v = tv.lookup(instr->name()))
      st.assume(st.builder().eqConst(instr, *v));
  };
}

/// Pins the sliced symbolic register inputs to the recorded vector.
std::function<void(symex::ExecState&)> pinRegisters(symex::TestVector tv,
                                                    unsigned num_regs) {
  return [tv = std::move(tv), num_regs](symex::ExecState& st) {
    expr::ExprBuilder& eb = st.builder();
    for (unsigned i = 1; i <= num_regs; ++i) {
      const std::string name = "reg_x" + std::to_string(i);
      if (auto v = tv.lookup(name))
        st.assume(eb.eqConst(eb.variable(name, 32), *v));
    }
  };
}

/// The replay co-simulation configuration: DUT rebuilt from the
/// descriptor, every symbolic input pinned to the vector.
bool buildReplayConfig(const BundleDescriptor& desc,
                       const symex::TestVector& test,
                       core::CosimConfig& cfg) {
  if (!desc.fault_id.empty()) {
    cfg.rtl = rtl::fixedRtlConfig();
    cfg.iss.csr = iss::CsrConfig::specCorrect();
    // Mutation-space ids ("dec:slli:b25") first — campaign bundles name
    // mutants directly; the paper's "E0".."E9" registry names resolve
    // through the fault registry (which delegates to the same space).
    try {
      mut::mutantById(desc.fault_id).apply(cfg);
    } catch (const std::out_of_range&) {
      try {
        fault::errorById(desc.fault_id).apply(cfg);
      } catch (const std::out_of_range&) {
        return false;
      }
    }
  }
  cfg.instr_limit = desc.instr_limit;
  cfg.num_symbolic_regs = desc.num_symbolic_regs;
  // Scenario constraint first (same structural assumptions as the
  // recording run), then the pin — which subsumes it, but keeping both
  // turns a corrupted vector into an Infeasible path instead of an
  // exploration of the wrong scenario.
  core::InstrConstraint scenario =
      scenarioConstraint(desc.scenario).value_or(core::InstrConstraint{});
  core::InstrConstraint pin = pinInstructions(test);
  cfg.instr_constraint = [scenario = std::move(scenario),
                          pin = std::move(pin)](symex::ExecState& st,
                                                const expr::ExprRef& instr) {
    if (scenario) scenario(st, instr);
    pin(st, instr);
  };
  cfg.post_init_hook = pinRegisters(test, desc.num_symbolic_regs);
  return true;
}

symex::EngineOptions replayEngineOptions() {
  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_paths = 64;  // pinned inputs leave almost nothing to fork
  opts.collect_test_vectors = false;
  return opts;
}

std::string hexValue(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One ExprRef channel of an RVFI record: null stays null, constants
/// render as hex, and pinned-but-still-symbolic values are concretized
/// under the replay path's model. Anything left (no model available)
/// renders as "x", like an unknown in a waveform.
void exprField(JsonWriter& w, const char* key, const expr::ExprRef& e,
               const expr::Assignment* model) {
  w.key(key);
  if (!e)
    w.nullValue();
  else if (e->isConstant())
    w.value(hexValue(e->constantValue()));
  else if (model != nullptr)
    w.value(hexValue(expr::evaluate(e, *model)));
  else
    w.value("x");
}

std::string retireToJsonl(const iss::RetireInfo& r,
                          const expr::Assignment* model) {
  JsonWriter w;
  w.beginObject();
  exprField(w, "pc", r.pc, model);
  exprField(w, "next_pc", r.next_pc, model);
  exprField(w, "instr", r.instr, model);
  w.field("trap", r.trap);
  w.field("cause", static_cast<std::uint64_t>(r.cause));
  exprField(w, "rd_index", r.rd_index, model);
  exprField(w, "rd_value", r.rd_value, model);
  w.field("mem_valid", r.mem_valid);
  if (r.mem_valid) {
    w.field("mem_is_store", r.mem_is_store);
    w.field("mem_size", static_cast<std::uint64_t>(r.mem_size));
    exprField(w, "mem_addr", r.mem_addr, model);
    exprField(w, "mem_data", r.mem_data, model);
  }
  w.endObject();
  return w.str() + "\n";
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// instrs.txt: the concretized instruction stream, in address order.
std::string renderInstrStream(const symex::TestVector& test) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> words;
  for (const symex::TestValue& v : test.values) {
    const auto at = v.name.find('@');
    if (v.name.rfind("instr@", 0) != 0 || at == std::string::npos) continue;
    words.emplace_back(static_cast<std::uint32_t>(
                           std::strtoul(v.name.c_str() + at + 1, nullptr, 16)),
                       static_cast<std::uint32_t>(v.value));
  }
  std::sort(words.begin(), words.end());
  std::string out;
  char line[96];
  for (const auto& [addr, word] : words) {
    std::snprintf(line, sizeof line, "%08x: %08x  %s\n", addr, word,
                  rv32::disassemble(word).c_str());
    out += line;
  }
  return out;
}

std::string renderManifest(const BundleDescriptor& desc) {
  std::string field;
  std::uint32_t pc = 0;
  const bool parsed = core::parseMismatchMessage(desc.message, field, pc);
  char pc_buf[16];
  std::snprintf(pc_buf, sizeof pc_buf, "%08x", pc);

  JsonWriter w;
  w.beginObject();
  w.field("bundle_version", static_cast<std::int64_t>(kBundleVersion));
  w.field("fault_id", desc.fault_id);
  w.field("scenario", desc.scenario);
  w.field("instr_limit", static_cast<std::uint64_t>(desc.instr_limit));
  w.field("num_symbolic_regs",
          static_cast<std::uint64_t>(desc.num_symbolic_regs));
  w.key("mismatch").beginObject();
  w.field("message", desc.message);
  if (parsed) {
    w.field("field", field);
    w.field("pc", pc_buf);
  }
  w.endObject();
  w.endObject();
  return w.str() + "\n";
}

// --- Minimal manifest extraction ------------------------------------------
// The manifest is always produced by renderManifest above, so targeted
// key lookup plus standard JSON string unescaping is sufficient — no
// general parser needed (or wanted) in this layer.

std::string jsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char c = s[++i];
    switch (c) {
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          const unsigned cp = static_cast<unsigned>(
              std::strtoul(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
          // Our own escaper only emits \u00XX (control characters).
          out += static_cast<char>(cp & 0xff);
        }
        break;
      default: out += c; break;  // \" \\ \/
    }
  }
  return out;
}

std::optional<std::string> findStringField(const std::string& text,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  auto i = pos + needle.size();
  if (i >= text.size() || text[i] != '"') return std::nullopt;
  ++i;
  std::string raw;
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) raw += text[i++];
    raw += text[i++];
  }
  if (i >= text.size()) return std::nullopt;
  return jsonUnescape(raw);
}

std::optional<std::uint64_t> findNumberField(const std::string& text,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return static_cast<std::uint64_t>(
      std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10));
}

}  // namespace

std::optional<core::InstrConstraint> scenarioConstraint(
    const std::string& scenario) {
  if (scenario == "all") return core::InstrConstraint{};
  if (scenario == "rv32i")
    return core::CoSimulation::blockSystemInstructions();
  if (scenario == "system")
    return core::CoSimulation::onlySystemInstructions();
  if (scenario.rfind("opcode=", 0) == 0)
    return core::CoSimulation::onlyMajorOpcode(static_cast<std::uint32_t>(
        std::strtoul(scenario.c_str() + 7, nullptr, 0)));
  if (scenario.rfind("csr=", 0) == 0)
    return core::CoSimulation::onlyCsrAddress(static_cast<std::uint16_t>(
        std::strtoul(scenario.c_str() + 4, nullptr, 0)));
  return std::nullopt;
}

bool writeMismatchBundle(const std::string& dir, const BundleDescriptor& desc,
                         const symex::TestVector& test) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  bool ok = symex::saveTestVector(test, dir + "/test.rvtest");
  ok = writeFile(dir + "/instrs.txt", renderInstrStream(test)) && ok;
  ok = writeFile(dir + "/manifest.json", renderManifest(desc)) && ok;

  // Concrete replay with recorders. Two phases: first rediscover the
  // error path of the pinned program (its decision sequence), then
  // re-execute exactly that path once with the VCD and RVFI recorders
  // attached — so the recordings cover the mismatch path alone, not
  // every path the replay engine happened to schedule.
  core::CosimConfig cfg;
  if (!buildReplayConfig(desc, test, cfg)) return false;

  expr::ExprBuilder eb;
  core::CoSimulation probe(eb, cfg);
  symex::Engine engine(eb, replayEngineOptions());
  const symex::EngineReport report = engine.run(probe.program());
  const symex::PathRecord* err = report.firstError();
  if (err == nullptr) return false;  // vector does not reproduce

  std::ofstream vcd_out(dir + "/trace.vcd", std::ios::binary);
  std::ofstream rtl_out(dir + "/rvfi_rtl.jsonl", std::ios::binary);
  std::ofstream iss_out(dir + "/rvfi_iss.jsonl", std::ios::binary);
  if (!vcd_out || !rtl_out || !iss_out) return false;

  std::unique_ptr<rtl::VcdWriter> vcd;
  std::vector<std::pair<iss::RetireInfo, iss::RetireInfo>> retirements;
  cfg.on_core_built = [&](const rtl::MicroRv32Core& core) {
    vcd = std::make_unique<rtl::VcdWriter>(vcd_out, core);
  };
  cfg.on_cycle = [&] {
    if (vcd) vcd->sample();
  };
  cfg.on_retire = [&](symex::ExecState&, const iss::RetireInfo& rtl_info,
                      const iss::RetireInfo& iss_info) {
    // Buffered, not serialized here: the JSONL lines are rendered after
    // the run, under the path model, so pinned-but-symbolic values come
    // out concrete.
    retirements.emplace_back(rtl_info, iss_info);
  };

  core::CoSimulation recorder(eb, cfg);
  symex::ExecState st(eb, err->decisions, symex::ExecState::Limits{});
  try {
    recorder.runPath(st);
  } catch (const symex::PathTerminated&) {
    // Expected: the replay ends in the recorded voter mismatch.
  }
  const std::optional<expr::Assignment> model = st.pathModel();
  for (const auto& [rtl_info, iss_info] : retirements) {
    rtl_out << retireToJsonl(rtl_info, model ? &*model : nullptr);
    iss_out << retireToJsonl(iss_info, model ? &*model : nullptr);
  }
  vcd_out.flush();
  rtl_out.flush();
  iss_out.flush();
  return ok && vcd_out.good() && rtl_out.good() && iss_out.good();
}

std::size_t writeReportBundles(const std::string& dir,
                               const BundleDescriptor& base,
                               const symex::EngineReport& report) {
  std::size_t written = 0;
  for (const symex::PathRecord& p : report.paths) {
    if (p.end != symex::PathEnd::Error || !p.has_test) continue;
    char name[32];
    std::snprintf(name, sizeof name, "/bundle-%03zu", written);
    BundleDescriptor desc = base;
    desc.message = p.message;
    if (writeMismatchBundle(dir + name, desc, p.test)) ++written;
  }
  return written;
}

std::optional<BundleDescriptor> loadBundleManifest(const std::string& dir) {
  std::ifstream in(dir + "/manifest.json", std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  BundleDescriptor desc;
  desc.fault_id = findStringField(text, "fault_id").value_or("");
  desc.scenario = findStringField(text, "scenario").value_or("all");
  desc.instr_limit =
      static_cast<unsigned>(findNumberField(text, "instr_limit").value_or(1));
  desc.num_symbolic_regs = static_cast<unsigned>(
      findNumberField(text, "num_symbolic_regs").value_or(2));
  auto message = findStringField(text, "message");
  if (!message) return std::nullopt;
  desc.message = *message;
  return desc;
}

std::optional<ReplayResult> replayBundle(const std::string& dir) {
  const std::optional<BundleDescriptor> desc = loadBundleManifest(dir);
  if (!desc) return std::nullopt;
  const std::optional<symex::TestVector> test =
      symex::loadTestVector(dir + "/test.rvtest");
  if (!test) return std::nullopt;

  core::CosimConfig cfg;
  if (!buildReplayConfig(*desc, *test, cfg)) return std::nullopt;

  expr::ExprBuilder eb;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, replayEngineOptions());
  const symex::EngineReport report = engine.run(cosim.program());

  ReplayResult result;
  std::uint32_t recorded_pc = 0;
  core::parseMismatchMessage(desc->message, result.recorded_field,
                             recorded_pc);
  result.reproduced = report.error_paths > 0;
  if (const symex::PathRecord* err = report.firstError()) {
    result.message = err->message;
    std::uint32_t pc = 0;
    if (core::parseMismatchMessage(err->message, result.field, pc))
      result.verdict_matches =
          result.field == result.recorded_field && pc == recorded_pc;
  }
  return result;
}

}  // namespace rvsym::obs
