// TimeseriesSampler — the live machine-readable telemetry stream
// (`rvsym-timeseries-v1`) behind --timeseries-out / --status-file.
//
// A background thread wakes every interval, builds one
// HeartbeatSnapshot (progress sections from the engine.*/campaign.*
// registry instruments, solver/cache liveness from the solver
// instruments — the registry is the sampler's only view of the run, so
// it never races with engine internals), and appends one JSONL record
// to the stream:
//
//   {"ev":"ts_header","schema":"rvsym-timeseries-v1","version":1,
//    "kind":"verify","interval_s":0.5,"total_work":0}
//   {"ev":"sample","seq":0,"t_s":0.5,
//    "paths":{"done":..,"completed":..,"errors":..,"partial":..,
//             "worklist":..},
//    "instr":..,
//    "solver":{"qps":..,"solves":..,"p50_us":..,"p90_us":..,"p99_us":..,
//              "slow":..,
//              "answered":{"exact":..,"cexm":..,"cexc":..,"rw":..,
//                          "sliced":..}},
//    "qcache":{"hits":..,"misses":..},
//    "counters":{...},"gauges":{...},
//    "hist":{name:{"count":..,"sum_us":..,"p50_us":..,"p90_us":..,
//                  "p99_us":..}}}
//   ...
//   {"ev":"ts_final","kind":"verify",
//    "paths":{...},"instr":..,  <- deterministic across --jobs
//    "t_s":..,"t_samples":..,"qc_hits":..,"qc_misses":..}
//
// Determinism canonicalization: every `sample` record is wall-clock
// driven and therefore timing-dependent end to end, but the closing
// `ts_final` record follows the trace/journal field convention — fields
// prefixed `t_` / `qc_` are timing-dependent, everything else (final
// path counts, instructions, campaign verdict counts) is byte-identical
// across --jobs values for a fixed workload. obs::analyze diffs two
// streams on exactly the header + canonicalized ts_final.
//
// --status-file: alongside (or instead of) the stream, each tick
// rewrites one JSON object (header fields + the latest sample)
// atomically — write to <path>.tmp, then rename — so a live monitor can
// read it at any instant without tearing.
//
// Zero-cost contract: no sampler object exists unless a flag asked for
// one, and under -DRVSYM_DISABLE_TRACING (RVSYM_OBS_NO_TRACING)
// start() fails with a "tracing compiled out" error so CLIs reject the
// flags cleanly — the same compile-out story as RVSYM_TRACE.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"

namespace rvsym::obs {

inline constexpr const char* kTimeseriesSchema = "rvsym-timeseries-v1";
inline constexpr int kTimeseriesVersion = 1;

struct TimeseriesOptions {
  /// JSONL stream path ("" = no stream; status_path may still be set).
  std::string out_path;
  /// Atomically rewritten latest-status JSON object ("" = off).
  std::string status_path;
  double interval_s = 0.5;
  /// Producer kind recorded in the header: "verify" | "mutate" |
  /// "bench" | free-form.
  std::string kind = "verify";
  /// Known work denominator (mutants to judge, benches to run, the
  /// --paths budget); 0 = open-ended. rvsym-top derives ETA from it.
  std::uint64_t total_work = 0;
  /// Also emit every sample as a stderr heartbeat line (lets the
  /// sampler double as --heartbeat when both are requested).
  bool echo_stderr = false;
  const char* stderr_prefix = "rvsym";
};

class TimeseriesSampler {
 public:
  /// Optional decorator: called on the sampler thread after the
  /// registry sections are filled, before serialization — producers add
  /// work-unit progress or extra text here.
  using Decorate = std::function<void(HeartbeatSnapshot&)>;

  TimeseriesSampler(TimeseriesOptions opts, MetricsRegistry& registry,
                    Decorate decorate = nullptr);
  ~TimeseriesSampler();

  /// Opens the stream, writes the ts_header record and starts the
  /// sampling thread. False (and *error) on I/O failure or when tracing
  /// is compiled out; the sampler is then inert.
  bool start(std::string* error = nullptr);

  /// Takes one final sample, appends the ts_final record, joins the
  /// thread and closes the stream. Idempotent; the destructor calls it.
  void stop();

  bool running() const { return running_; }
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// One rvsym-timeseries-v1 sample record for `s` plus the registry
  /// dump (exposed for tests and the offline tooling).
  static std::string sampleJson(const HeartbeatSnapshot& s,
                                MetricsRegistry* registry,
                                std::uint64_t seq);
  /// The deterministic closing record (t_/qc_ fields are the only
  /// timing-dependent ones). `abnormal` adds "t_abnormal":true — the
  /// crash-flush variant, so analyze can tell a crashed stream's
  /// salvaged footer from a clean shutdown.
  static std::string finalJson(const HeartbeatSnapshot& s,
                               const std::string& kind, double t_s,
                               std::uint64_t samples, bool abnormal = false);

 private:
  void threadMain();
  HeartbeatSnapshot snapshotNow();
  void tick(std::uint64_t seq);
  void writeStatus(const HeartbeatSnapshot& s, std::uint64_t seq);
  void publishCrashRecord(const HeartbeatSnapshot& s);
  static void crashFlush(void* ctx, bool fatal);

  TimeseriesOptions opts_;
  MetricsRegistry& registry_;
  Decorate decorate_;
  std::FILE* stream_ = nullptr;
  // Crash-hook flush: every tick republishes an abnormal ts_final
  // record into crash_buf_ under a seqlock (crash_ver_ odd = writing);
  // a flightrec crash writer appends it to stream_fd_ from signal
  // context, so a crashed run's stream still closes with a footer.
  int stream_fd_ = -1;
  int crash_writer_id_ = -1;
  std::atomic<std::uint32_t> crash_ver_{0};
  std::atomic<std::uint32_t> crash_len_{0};
  static constexpr std::size_t kCrashBufBytes = 4096;
  std::atomic<char> crash_buf_[kCrashBufBytes];
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> samples_{0};
  bool running_ = false;
  bool stop_requested_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace rvsym::obs
