#include "obs/flightrec/crashdump.hpp"

#ifndef RVSYM_OBS_NO_TRACING

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__GLIBC__) || defined(__APPLE__)
#include <execinfo.h>
#define RVSYM_HAVE_BACKTRACE 1
#endif

#include "obs/flightrec/sigsafe.hpp"
#include "obs/metrics.hpp"

namespace rvsym::obs::flightrec {
namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr int kNumFatal = 4;
// Stack-broadcast signal: rarely used by anything else, default-ignored,
// so borrowing it for "write your backtrace" is low-collision.
constexpr int kStackSignal = SIGURG;
constexpr std::size_t kSnapBytes = 128 * 1024;
constexpr int kMaxWriters = 8;
constexpr int kMaxBacktrace = 64;
constexpr std::size_t kNameMax = 160;

/// All forensics state, allocated once at install. Everything the fatal
/// handler touches is either atomic, preallocated, or pre-serialized.
struct State {
  char crash_dir[512] = {0};
  char tool[64] = {0};
  double stall_timeout_s = 0;
  double poll_s = 0.25;
  bool handlers_installed = false;
  int dir_fd = -1;
  std::atomic<std::uint32_t> bundle_seq{0};

  std::atomic<MetricsRegistry*> registry{nullptr};

  std::atomic<bool> journal_set{false};
  char journal_path[512] = {0};
  std::atomic<const std::atomic<std::uint64_t>*> journal_judged{nullptr};
  std::atomic<std::uint64_t> journal_base{0};

  // Metrics snapshot double buffer: the watchdog serializes the registry
  // into the inactive half every poll and flips `snap_active`, so the
  // fatal handler only ever write()s bytes that already exist.
  struct Snap {
    std::atomic<std::uint32_t> len{0};
    std::unique_ptr<std::atomic<char>[]> data;
  };
  Snap snaps[2];
  std::atomic<int> snap_active{-1};

  struct WriterSlot {
    std::atomic<bool> used{false};  ///< slot claimed (fn/ctx being set)
    std::atomic<void (*)(void*, bool)> fn{nullptr};
    std::atomic<void*> ctx{nullptr};
  };
  WriterSlot writers[kMaxWriters];

  // All-thread stack collection: the dumping thread points stack_fd at
  // the open stacks.txt, signals one thread at a time with kStackSignal
  // and waits for the ack, so backtraces never interleave.
  std::atomic<int> stack_fd{-1};
  std::atomic<std::uint32_t> stack_ack{0};

  // One stall report per (slot, busy_since) episode.
  std::unique_ptr<std::atomic<std::uint64_t>[]> reported;
  std::unique_ptr<bool[]> stall_flags;  // watchdog-only scratch

  std::atomic<int> fatal_entered{0};

  // Dump scratch, duplicated so a fatal dump never shares buffers with
  // a concurrent watchdog dump: [0] = normal context (under dump_mu),
  // [1] = fatal context (single thread via fatal_entered).
  std::unique_ptr<Event[]> ev_scratch[2];
  std::unique_ptr<char[]> q_scratch[2];
  std::size_t ring_cap = 0;
  std::size_t inflight_cap = 0;

  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_stop = false;
  std::atomic<bool> dump_requested{false};

  struct sigaction old_fatal[kNumFatal];
  struct sigaction old_usr1, old_stack;

  std::mutex dump_mu;  // serializes normal-context dumps
};

std::atomic<State*> g_state{nullptr};

// --- tiny sigsafe string building -----------------------------------------

void appendStr(char* buf, std::size_t cap, std::size_t& len, const char* s) {
  while (s && *s && len + 1 < cap) buf[len++] = *s++;
  buf[len] = '\0';
}

void appendU64(char* buf, std::size_t cap, std::size_t& len,
               std::uint64_t v) {
  char tmp[24];
  int i = sizeof tmp;
  do {
    tmp[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (i < static_cast<int>(sizeof tmp) && len + 1 < cap)
    buf[len++] = tmp[i++];
  buf[len] = '\0';
}

/// crash-<pid>-<seq>-<reason>
void makeBundleName(State* st, const char* reason, char* buf,
                    std::size_t cap) {
  std::size_t len = 0;
  appendStr(buf, cap, len, "crash-");
  appendU64(buf, cap, len, static_cast<std::uint64_t>(::getpid()));
  appendStr(buf, cap, len, "-");
  appendU64(buf, cap, len,
            st->bundle_seq.fetch_add(1, std::memory_order_relaxed));
  appendStr(buf, cap, len, "-");
  appendStr(buf, cap, len, reason);
}

int openBundleFile(int dfd, const char* name) {
  return ::openat(dfd, name, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
}

// --- bundle sections -------------------------------------------------------

bool ringAlive(const ThreadRing* r) {
  return r->in_use.load(std::memory_order_acquire) || r->seq() != 0;
}

void writeManifest(State* st, FlightRecorder* g, int dfd, const char* reason,
                   int signo, const bool* stalled, std::uint64_t now_us) {
  const int fd = openBundleFile(dfd, "manifest.json");
  if (fd < 0) return;
  {
    SigsafeWriter w(fd);
    w.str("{\"schema\":\"rvsym-crash-v1\",\"reason\":");
    w.jsonString(reason);
    if (signo != 0) {
      w.str(",\"signal\":");
      w.dec(static_cast<std::uint64_t>(signo));
      w.str(",\"signal_name\":");
      w.jsonString(signalName(signo));
    }
    w.str(",\"pid\":");
    w.dec(static_cast<std::uint64_t>(::getpid()));
    w.str(",\"tool\":");
    w.jsonString(st->tool);
    w.str(",\"t_us\":");
    w.dec(now_us);
    if (st->journal_set.load(std::memory_order_acquire)) {
      w.str(",\"journal\":{\"path\":");
      w.jsonString(st->journal_path);
      w.str(",\"judged\":");
      std::uint64_t judged = st->journal_base.load(std::memory_order_relaxed);
      if (const auto* p = st->journal_judged.load(std::memory_order_acquire))
        judged += p->load(std::memory_order_relaxed);
      w.dec(judged);
      w.str("}");
    }
    w.str(",\"threads\":[");
    bool first = true;
    for (std::size_t i = 0; i < g->maxThreads(); ++i) {
      const ThreadRing* r = g->ringAt(i);
      if (!ringAlive(r)) continue;
      if (!first) w.ch(',');
      first = false;
      w.str("{\"slot\":");
      w.dec(i);
      w.str(",\"name\":");
      w.jsonString(r->name, sizeof r->name);
      w.str(",\"events\":");
      w.dec(r->seq());
      const std::uint64_t busy =
          r->busy_since_us.load(std::memory_order_acquire);
      const std::uint64_t last =
          r->last_event_us.load(std::memory_order_acquire);
      w.str(",\"busy\":");
      w.str(busy != 0 ? "true" : "false");
      if (busy != 0 && now_us > busy) {
        w.str(",\"busy_us\":");
        w.dec(now_us - busy);
      }
      if (last != 0 && now_us > last) {
        w.str(",\"idle_us\":");
        w.dec(now_us - last);
      }
      w.str(",\"inflight\":");
      w.str(r->inflight().pendingBytes() != 0 ? "true" : "false");
      w.str(",\"stalled\":");
      w.str(stalled && stalled[i] ? "true" : "false");
      w.str("}");
    }
    w.str("]}\n");
  }
  ::close(fd);
}

void writeRings(State* st, FlightRecorder* g, int dfd, bool fatal) {
  const int fd = openBundleFile(dfd, "flightrec.jsonl");
  if (fd < 0) return;
  Event* scratch = st->ev_scratch[fatal ? 1 : 0].get();
  {
    SigsafeWriter w(fd);
    for (std::size_t i = 0; i < g->maxThreads(); ++i) {
      const ThreadRing* r = g->ringAt(i);
      if (!ringAlive(r)) continue;
      const std::size_t n = r->snapshot(scratch, st->ring_cap);
      for (std::size_t k = 0; k < n; ++k) {
        const Event& e = scratch[k];
        w.str("{\"slot\":");
        w.dec(i);
        w.str(",\"name\":");
        w.jsonString(r->name, sizeof r->name);
        w.str(",\"i\":");
        w.dec(e.index);
        w.str(",\"t_us\":");
        w.dec(e.t_us);
        w.str(",\"ev\":");
        w.jsonString(eventKindName(e.kind));
        w.str(",\"a\":");
        w.dec(e.a);
        w.str(",\"b\":");
        w.dec(e.b);
        w.str(",\"c\":");
        w.dec(e.c);
        if (e.tag[0]) {
          w.str(",\"tag\":");
          w.jsonString(e.tag, sizeof e.tag);
        }
        w.str("}\n");
      }
    }
  }
  ::close(fd);
}

void writeInflight(State* st, FlightRecorder* g, int dfd, bool fatal) {
  char* scratch = st->q_scratch[fatal ? 1 : 0].get();
  for (std::size_t i = 0; i < g->maxThreads(); ++i) {
    const ThreadRing* r = g->ringAt(i);
    if (!ringAlive(r)) continue;
    const std::size_t n =
        r->inflight().read(scratch, st->inflight_cap, nullptr, nullptr);
    if (n == 0) continue;
    char name[64];
    std::size_t len = 0;
    appendStr(name, sizeof name, len, "inflight-");
    appendU64(name, sizeof name, len, i);
    appendStr(name, sizeof name, len, ".query");
    const int fd = openBundleFile(dfd, name);
    if (fd < 0) continue;
    SigsafeWriter w(fd);
    w.strn(scratch, n);
    w.flush();
    ::close(fd);
  }
}

void writeMetrics(State* st, int dfd, bool fatal) {
  const int fd = openBundleFile(dfd, "metrics.json");
  if (fd < 0) return;
  {
    SigsafeWriter w(fd);
    bool wrote = false;
    if (!fatal) {
      if (MetricsRegistry* reg =
              st->registry.load(std::memory_order_acquire)) {
        const std::string json = reg->toJson();  // normal context: fresh
        w.strn(json.data(), json.size());
        w.ch('\n');
        wrote = true;
      }
    }
    if (!wrote) {
      const int active = st->snap_active.load(std::memory_order_acquire);
      if (active >= 0) {
        const State::Snap& s = st->snaps[active];
        const std::uint32_t len = s.len.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < len; ++i)
          w.ch(s.data[i].load(std::memory_order_relaxed));
        w.ch('\n');
        wrote = true;
      }
    }
    if (!wrote) w.str("{}\n");
  }
  ::close(fd);
}

void writeOwnBacktrace(int fd) {
#ifdef RVSYM_HAVE_BACKTRACE
  void* addrs[kMaxBacktrace];
  const int n = backtrace(addrs, kMaxBacktrace);
  backtrace_symbols_fd(addrs, n, fd);
#else
  SigsafeWriter w(fd);
  w.str("(backtrace unavailable on this platform)\n");
#endif
}

/// kStackSignal handler: append this thread's backtrace to the fd the
/// dumper published, then ack. The dumper serializes requests, so
/// backtraces never interleave.
void stackSignalHandler(int) {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st) return;
  const int fd = st->stack_fd.load(std::memory_order_acquire);
  if (fd < 0) return;
  writeOwnBacktrace(fd);
  st->stack_ack.fetch_add(1, std::memory_order_release);
}

void writeStacks(State* st, FlightRecorder* g, int dfd, bool fatal,
                 int signo) {
  const int fd = openBundleFile(dfd, "stacks.txt");
  if (fd < 0) return;
  {
    SigsafeWriter w(fd);
    w.str("--- dumping thread");
    if (fatal) {
      w.str(" (received ");
      w.str(signalName(signo));
      w.str(")");
    }
    w.str(" ---\n");
    w.flush();
  }
  writeOwnBacktrace(fd);

  if (st->handlers_installed) {
#ifndef _WIN32
    const pthread_t self = pthread_self();
    for (std::size_t i = 0; i < g->maxThreads(); ++i) {
      ThreadRing* r = g->ringAt(i);
      if (!r->has_thread_id.load(std::memory_order_acquire)) continue;
      if (pthread_equal(r->pthread_id, self)) continue;
      {
        SigsafeWriter w(fd);
        w.str("\n--- thread ");
        w.dec(i);
        w.str(" ");
        w.strn(r->name, strnlen(r->name, sizeof r->name));
        w.str(" ---\n");
        w.flush();
      }
      const std::uint32_t ack0 =
          st->stack_ack.load(std::memory_order_acquire);
      st->stack_fd.store(fd, std::memory_order_release);
      if (pthread_kill(r->pthread_id, kStackSignal) == 0) {
        // Bounded wait (~200ms) for the target to write its backtrace.
        for (int spin = 0; spin < 100; ++spin) {
          if (st->stack_ack.load(std::memory_order_acquire) != ack0) break;
          timespec ts{0, 2 * 1000 * 1000};
          nanosleep(&ts, nullptr);
        }
        if (st->stack_ack.load(std::memory_order_acquire) == ack0) {
          SigsafeWriter w(fd);
          w.str("  (thread did not respond)\n");
        }
      } else {
        SigsafeWriter w(fd);
        w.str("  (thread gone)\n");
      }
      st->stack_fd.store(-1, std::memory_order_release);
    }
#endif
  }
  ::close(fd);
}

void runCrashWriters(State* st, bool fatal) {
  for (int i = 0; i < kMaxWriters; ++i) {
    auto fn = st->writers[i].fn.load(std::memory_order_acquire);
    if (!fn) continue;
    fn(st->writers[i].ctx.load(std::memory_order_acquire), fatal);
  }
}

/// The shared bundle writer. Fatal callers hold the fatal_entered gate;
/// normal callers hold dump_mu. `out_name` (cap kNameMax) receives the
/// bundle directory name.
bool writeBundle(State* st, const char* reason, int signo,
                 const bool* stalled, bool fatal, char* out_name) {
  FlightRecorder* g = FlightRecorder::global();
  if (!g || st->dir_fd < 0) return false;
  char name[kNameMax];
  makeBundleName(st, reason, name, sizeof name);
  if (::mkdirat(st->dir_fd, name, 0775) != 0 && errno != EEXIST) return false;
  const int dfd =
      ::openat(st->dir_fd, name, O_DIRECTORY | O_RDONLY | O_CLOEXEC);
  if (dfd < 0) return false;
  const std::uint64_t now_us = g->nowMicros();
  writeManifest(st, g, dfd, reason, signo, stalled, now_us);
  writeRings(st, g, dfd, fatal);
  writeInflight(st, g, dfd, fatal);
  writeMetrics(st, dfd, fatal);
  writeStacks(st, g, dfd, fatal, signo);
  runCrashWriters(st, fatal);
  ::close(dfd);
  if (out_name) {
    std::size_t len = 0;
    appendStr(out_name, kNameMax, len, name);
  }
  return true;
}

void announceBundle(State* st, const char* what, const char* name) {
  // stderr, via write(2): callable from signal context.
  SigsafeWriter w(2);
  w.str("rvsym: ");
  w.str(what);
  w.str(" — crash bundle: ");
  w.str(st->crash_dir);
  w.str("/");
  w.str(name);
  w.str("\n");
}

// --- signal handlers -------------------------------------------------------

int fatalIndex(int sig) {
  for (int i = 0; i < kNumFatal; ++i)
    if (kFatalSignals[i] == sig) return i;
  return -1;
}

void fatalSignalHandler(int sig, siginfo_t*, void*) {
  State* st = g_state.load(std::memory_order_acquire);
  if (st) {
    int expected = 0;
    if (!st->fatal_entered.compare_exchange_strong(expected, 1)) {
      // Another thread is writing the bundle; park so it can finish and
      // re-raise (its signal kills the whole process).
      for (;;) {
        timespec ts{1, 0};
        nanosleep(&ts, nullptr);
      }
    }
    char name[kNameMax] = {0};
    if (writeBundle(st, "signal", sig, nullptr, true, name))
      announceBundle(st, signalName(sig), name);
    // Restore the previous disposition so the default action (core
    // dump, abort) still happens with the original signal.
    const int idx = fatalIndex(sig);
    if (idx >= 0) ::sigaction(sig, &st->old_fatal[idx], nullptr);
  } else {
    ::signal(sig, SIG_DFL);
  }
  ::raise(sig);
}

void usr1Handler(int) {
  if (State* st = g_state.load(std::memory_order_acquire))
    st->dump_requested.store(true, std::memory_order_release);
}

// --- watchdog --------------------------------------------------------------

void refreshMetricsSnapshot(State* st) {
  MetricsRegistry* reg = st->registry.load(std::memory_order_acquire);
  if (!reg) return;
  const std::string json = reg->toJson();
  const int active = st->snap_active.load(std::memory_order_relaxed);
  const int next = active == 0 ? 1 : 0;
  State::Snap& s = st->snaps[next];
  std::uint32_t len = static_cast<std::uint32_t>(
      json.size() < kSnapBytes ? json.size() : kSnapBytes);
  for (std::uint32_t i = 0; i < len; ++i)
    s.data[i].store(json[i], std::memory_order_relaxed);
  s.len.store(len, std::memory_order_release);
  st->snap_active.store(next, std::memory_order_release);
}

void dumpFromWatchdog(State* st, const char* what, const char* reason,
                      const bool* stalled) {
  const std::lock_guard<std::mutex> lock(st->dump_mu);
  char name[kNameMax] = {0};
  if (writeBundle(st, reason, 0, stalled, false, name))
    announceBundle(st, what, name);
}

void scanStalls(State* st, FlightRecorder* g) {
  const std::uint64_t timeout_us =
      static_cast<std::uint64_t>(st->stall_timeout_s * 1e6);
  if (timeout_us == 0) return;
  const std::uint64_t now = g->nowMicros();
  bool any_new = false;
  char who[128] = {0};
  for (std::size_t i = 0; i < g->maxThreads(); ++i) {
    st->stall_flags[i] = false;
    const ThreadRing* r = g->ringAt(i);
    if (!r->in_use.load(std::memory_order_acquire)) continue;
    const std::uint64_t busy =
        r->busy_since_us.load(std::memory_order_acquire);
    if (busy == 0) continue;  // idle workers are not stall candidates
    const std::uint64_t last =
        r->last_event_us.load(std::memory_order_acquire);
    const std::uint64_t since = busy > last ? busy : last;
    if (now <= since || now - since < timeout_us) continue;
    st->stall_flags[i] = true;
    if (st->reported[i].load(std::memory_order_relaxed) != busy) {
      st->reported[i].store(busy, std::memory_order_relaxed);
      any_new = true;
      std::size_t len = 0;
      appendStr(who, sizeof who, len, r->name);
      appendStr(who, sizeof who, len, " busy ");
      appendU64(who, sizeof who, len, (now - since) / 1000);
      appendStr(who, sizeof who, len, "ms without progress");
    }
  }
  if (any_new) {
    char what[192];
    std::size_t len = 0;
    appendStr(what, sizeof what, len, "stall detected (");
    appendStr(what, sizeof what, len, who);
    appendStr(what, sizeof what, len, "); run continues");
    dumpFromWatchdog(st, what, "stall", st->stall_flags.get());
  }
}

void watchdogMain(State* st) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(st->wd_mu);
      st->wd_cv.wait_for(
          lock, std::chrono::duration<double>(st->poll_s),
          [st] { return st->wd_stop; });
      if (st->wd_stop) return;
    }
    FlightRecorder* g = FlightRecorder::global();
    if (!g) continue;
    refreshMetricsSnapshot(st);
    if (st->dump_requested.exchange(false, std::memory_order_acq_rel))
      dumpFromWatchdog(st, "dump requested (SIGUSR1)", "request", nullptr);
    scanStalls(st, g);
  }
}

bool makeDirs(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    cur = path.substr(0, i == path.size() ? i : i + 1);
    if (cur.empty() || cur == "/") continue;
    if (::mkdir(cur.c_str(), 0775) != 0 && errno != EEXIST) return false;
  }
  return true;
}

}  // namespace

// --- public API ------------------------------------------------------------

bool installForensics(const ForensicsOptions& opts, std::string* err) {
  if (g_state.load(std::memory_order_acquire)) {
    if (err) *err = "crash forensics already installed";
    return false;
  }
  if (opts.crash_dir.empty()) {
    if (err) *err = "crash forensics needs a --crash-dir";
    return false;
  }
  if (!makeDirs(opts.crash_dir)) {
    if (err) *err = "cannot create crash dir " + opts.crash_dir;
    return false;
  }
  const int dir_fd =
      ::open(opts.crash_dir.c_str(), O_DIRECTORY | O_RDONLY | O_CLOEXEC);
  if (dir_fd < 0) {
    if (err) *err = "cannot open crash dir " + opts.crash_dir;
    return false;
  }
  FlightRecorder* g = FlightRecorder::installGlobal(opts.recorder);
  if (!g) {
    ::close(dir_fd);
    if (err) *err = "flight recorder unavailable";
    return false;
  }

  auto st = std::make_unique<State>();
  std::snprintf(st->crash_dir, sizeof st->crash_dir, "%s",
                opts.crash_dir.c_str());
  std::snprintf(st->tool, sizeof st->tool, "%s", opts.tool.c_str());
  st->stall_timeout_s = opts.stall_timeout_s;
  st->poll_s = opts.poll_interval_s > 0 ? opts.poll_interval_s : 0.25;
  // Detect a stall within 2x the timeout: poll at least twice per window.
  if (opts.stall_timeout_s > 0 && st->poll_s > opts.stall_timeout_s / 2)
    st->poll_s = opts.stall_timeout_s / 2;
  st->dir_fd = dir_fd;
  for (auto& snap : st->snaps)
    snap.data = std::make_unique<std::atomic<char>[]>(kSnapBytes);
  st->reported =
      std::make_unique<std::atomic<std::uint64_t>[]>(g->maxThreads());
  st->stall_flags = std::make_unique<bool[]>(g->maxThreads());
  st->ring_cap = g->options().ring_capacity < 8 ? 8 : g->options().ring_capacity;
  // Ring capacity is rounded up to a power of two inside ThreadRing;
  // size the scratch from the real ring.
  st->ring_cap = g->ringAt(0)->capacity();
  st->inflight_cap = g->ringAt(0)->inflight().capacity();
  for (int i = 0; i < 2; ++i) {
    st->ev_scratch[i] = std::make_unique<Event[]>(st->ring_cap);
    st->q_scratch[i] = std::make_unique<char[]>(st->inflight_cap);
  }

#ifdef RVSYM_HAVE_BACKTRACE
  {
    // Warm up libgcc's unwinder outside signal context (first call may
    // allocate / dlopen).
    void* addrs[4];
    backtrace(addrs, 4);
  }
#endif

  State* raw = st.release();  // leaked on purpose (signal handlers)
  g_state.store(raw, std::memory_order_release);

  if (opts.install_signal_handlers) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_sigaction = fatalSignalHandler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    for (int i = 0; i < kNumFatal; ++i)
      ::sigaction(kFatalSignals[i], &sa, &raw->old_fatal[i]);

    struct sigaction usr;
    std::memset(&usr, 0, sizeof usr);
    usr.sa_handler = usr1Handler;
    usr.sa_flags = SA_RESTART;
    sigemptyset(&usr.sa_mask);
    ::sigaction(SIGUSR1, &usr, &raw->old_usr1);

    struct sigaction stk;
    std::memset(&stk, 0, sizeof stk);
    stk.sa_handler = stackSignalHandler;
    stk.sa_flags = SA_RESTART;
    sigemptyset(&stk.sa_mask);
    ::sigaction(kStackSignal, &stk, &raw->old_stack);
    raw->handlers_installed = true;
  }

  raw->watchdog = std::thread(watchdogMain, raw);
  return true;
}

void shutdownForensics() {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st) return;
  {
    const std::lock_guard<std::mutex> lock(st->wd_mu);
    st->wd_stop = true;
  }
  st->wd_cv.notify_all();
  if (st->watchdog.joinable()) st->watchdog.join();
  if (st->handlers_installed) {
    for (int i = 0; i < kNumFatal; ++i)
      ::sigaction(kFatalSignals[i], &st->old_fatal[i], nullptr);
    ::sigaction(SIGUSR1, &st->old_usr1, nullptr);
    ::sigaction(kStackSignal, &st->old_stack, nullptr);
  }
  if (st->dir_fd >= 0) ::close(st->dir_fd);
  // The State block itself is leaked: a racing requestDump may still
  // hold the pointer. Handlers are restored, so nothing fatal uses it.
  g_state.store(nullptr, std::memory_order_release);
}

bool forensicsInstalled() {
  return g_state.load(std::memory_order_acquire) != nullptr;
}

void setForensicsMetrics(MetricsRegistry* registry) {
  if (State* st = g_state.load(std::memory_order_acquire))
    st->registry.store(registry, std::memory_order_release);
}

void setForensicsJournal(const char* path,
                         const std::atomic<std::uint64_t>* judged,
                         std::uint64_t base) {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st) return;
  if (!path) {
    st->journal_set.store(false, std::memory_order_release);
    st->journal_judged.store(nullptr, std::memory_order_release);
    return;
  }
  std::snprintf(st->journal_path, sizeof st->journal_path, "%s", path);
  st->journal_base.store(base, std::memory_order_relaxed);
  st->journal_judged.store(judged, std::memory_order_release);
  st->journal_set.store(true, std::memory_order_release);
}

int addCrashWriter(CrashWriter w) {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st || !w.fn) return -1;
  for (int i = 0; i < kMaxWriters; ++i) {
    bool expected = false;
    if (!st->writers[i].used.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
      continue;
    st->writers[i].ctx.store(w.ctx, std::memory_order_release);
    st->writers[i].fn.store(w.fn, std::memory_order_release);
    return i;
  }
  return -1;
}

void removeCrashWriter(int id) {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st || id < 0 || id >= kMaxWriters) return;
  st->writers[id].fn.store(nullptr, std::memory_order_release);
  st->writers[id].ctx.store(nullptr, std::memory_order_release);
  st->writers[id].used.store(false, std::memory_order_release);
}

bool requestDump(const char* reason, std::string* bundle_dir) {
  State* st = g_state.load(std::memory_order_acquire);
  if (!st) return false;
  const std::lock_guard<std::mutex> lock(st->dump_mu);
  refreshMetricsSnapshot(st);
  char name[kNameMax] = {0};
  if (!writeBundle(st, reason ? reason : "request", 0, nullptr, false, name))
    return false;
  if (bundle_dir) {
    *bundle_dir = st->crash_dir;
    *bundle_dir += '/';
    *bundle_dir += name;
  }
  return true;
}

}  // namespace rvsym::obs::flightrec

#else  // RVSYM_OBS_NO_TRACING — stubs: forensics is compiled out.

namespace rvsym::obs::flightrec {

bool installForensics(const ForensicsOptions&, std::string* err) {
  if (err) *err = "crash forensics support compiled out (RVSYM_DISABLE_TRACING)";
  return false;
}
void shutdownForensics() {}
bool forensicsInstalled() { return false; }
void setForensicsMetrics(MetricsRegistry*) {}
void setForensicsJournal(const char*, const std::atomic<std::uint64_t>*,
                         std::uint64_t) {}
int addCrashWriter(CrashWriter) { return -1; }
void removeCrashWriter(int) {}
bool requestDump(const char*, std::string*) { return false; }

}  // namespace rvsym::obs::flightrec

#endif  // RVSYM_OBS_NO_TRACING
