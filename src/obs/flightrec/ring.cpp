#include "obs/flightrec/ring.hpp"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace rvsym::obs::flightrec {
namespace {

std::uint64_t monotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::size_t roundPow2(std::size_t v, std::size_t min) {
  std::size_t p = min;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::None: return "none";
    case EventKind::PathCommit: return "path_commit";
    case EventKind::SolverBegin: return "solver_begin";
    case EventKind::SolverEnd: return "solver_end";
    case EventKind::Phase: return "phase";
    case EventKind::MutantBegin: return "mutant_begin";
    case EventKind::MutantVerdict: return "mutant_verdict";
    case EventKind::Mark: return "mark";
  }
  return "?";
}

// --- InFlightSlot ----------------------------------------------------------

InFlightSlot::InFlightSlot(std::size_t capacity)
    : buf_(capacity ? capacity : 1) {}

void InFlightSlot::set(const char* data, std::size_t len,
                       std::uint64_t hash_lo, std::uint64_t hash_hi) {
  if (len > buf_.size()) len = buf_.size();
  version_.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
  for (std::size_t i = 0; i < len; ++i)
    buf_[i].store(data[i], std::memory_order_relaxed);
  len_.store(static_cast<std::uint32_t>(len), std::memory_order_relaxed);
  hash_lo_.store(hash_lo, std::memory_order_relaxed);
  hash_hi_.store(hash_hi, std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_release);  // even: published
}

void InFlightSlot::clear() {
  version_.fetch_add(1, std::memory_order_acq_rel);
  len_.store(0, std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_release);
}

std::size_t InFlightSlot::read(char* out, std::size_t max,
                               std::uint64_t* hash_lo,
                               std::uint64_t* hash_hi) const {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::uint32_t v1 = version_.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // writer mid-update
    std::size_t len = len_.load(std::memory_order_relaxed);
    if (len == 0) return 0;
    if (len > buf_.size()) len = buf_.size();
    if (len > max) len = max;
    for (std::size_t i = 0; i < len; ++i)
      out[i] = buf_[i].load(std::memory_order_relaxed);
    const std::uint64_t lo = hash_lo_.load(std::memory_order_relaxed);
    const std::uint64_t hi = hash_hi_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version_.load(std::memory_order_relaxed) != v1) continue;  // torn
    if (hash_lo) *hash_lo = lo;
    if (hash_hi) *hash_hi = hi;
    return len;
  }
  return 0;
}

// --- ThreadRing ------------------------------------------------------------

ThreadRing::ThreadRing(std::size_t capacity_pow2, std::size_t inflight_bytes)
    : mask_(roundPow2(capacity_pow2, 8) - 1),
      slots_(roundPow2(capacity_pow2, 8)),
      inflight_(inflight_bytes) {}

void ThreadRing::emit(EventKind kind, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c, const char* tag,
                      std::uint64_t now_us) {
  const std::uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
  detail::Slot& sl = slots_[s & mask_];
  // Invalidate first so a concurrent reader never pairs the new payload
  // with the previous lap's index.
  sl.index.store(0, std::memory_order_release);
  sl.t_us.store(now_us, std::memory_order_relaxed);
  sl.a.store(a, std::memory_order_relaxed);
  sl.b.store(b, std::memory_order_relaxed);
  sl.c.store(c, std::memory_order_relaxed);
  std::uint64_t lo = 0, hi = 0;
  if (tag && tag[0]) {
    char t[kTagBytes] = {0};
    std::size_t n = 0;
    while (n < kTagBytes && tag[n]) ++n;
    std::memcpy(t, tag, n);
    std::memcpy(&lo, t, 8);
    std::memcpy(&hi, t + 8, 8);
  }
  sl.tag_lo.store(lo, std::memory_order_relaxed);
  sl.tag_hi.store(hi, std::memory_order_relaxed);
  sl.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  sl.index.store(s + 1, std::memory_order_release);
  last_event_us.store(now_us, std::memory_order_release);
}

std::size_t ThreadRing::snapshot(Event* out, std::size_t max) const {
  const std::uint64_t end = seq_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  std::uint64_t begin = end > cap ? end - cap : 0;
  if (end - begin > max) begin = end - max;
  std::size_t n = 0;
  for (std::uint64_t i = begin; i < end && n < max; ++i) {
    const detail::Slot& sl = slots_[i & mask_];
    if (sl.index.load(std::memory_order_acquire) != i + 1) continue;
    Event e;
    e.index = i;
    e.t_us = sl.t_us.load(std::memory_order_relaxed);
    e.a = sl.a.load(std::memory_order_relaxed);
    e.b = sl.b.load(std::memory_order_relaxed);
    e.c = sl.c.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(sl.kind.load(std::memory_order_relaxed));
    const std::uint64_t lo = sl.tag_lo.load(std::memory_order_relaxed);
    const std::uint64_t hi = sl.tag_hi.load(std::memory_order_relaxed);
    std::memcpy(e.tag, &lo, 8);
    std::memcpy(e.tag + 8, &hi, 8);
    e.tag[kTagBytes] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (sl.index.load(std::memory_order_relaxed) != i + 1) continue;  // lapped
    out[n++] = e;
  }
  return n;
}

// --- FlightRecorder --------------------------------------------------------

FlightRecorder::FlightRecorder(const Options& opts) : opts_(opts) {
  epoch_ns_ = monotonicNanos();
  rings_.reserve(opts_.max_threads);
  for (std::size_t i = 0; i < opts_.max_threads; ++i)
    rings_.push_back(std::make_unique<ThreadRing>(opts_.ring_capacity,
                                                  opts_.inflight_bytes));
}

ThreadRing* FlightRecorder::registerThread(const char* name) {
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    ThreadRing* r = rings_[i].get();
    bool expected = false;
    if (!r->in_use.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
      continue;
    // Fresh slot for this thread: discard the previous occupant's tail.
    r->busyReset();
    r->last_event_us.store(0, std::memory_order_relaxed);
    r->inflight().clear();
    if (name && name[0]) {
      std::snprintf(r->name, sizeof r->name, "%s", name);
    } else {
      std::snprintf(r->name, sizeof r->name, "t%zu", i);
    }
#ifndef _WIN32
    r->pthread_id = pthread_self();
    r->has_thread_id.store(true, std::memory_order_release);
#endif
    return r;
  }
  return nullptr;  // table full; callers degrade to not recording
}

void FlightRecorder::releaseThread(ThreadRing* ring) {
  if (!ring) return;
  ring->busyReset();
  ring->inflight().clear();
  ring->has_thread_id.store(false, std::memory_order_release);
  // Ring contents stay readable (a dump right after a worker exits still
  // shows its tail) until the slot is reclaimed by a new registrant.
  ring->in_use.store(false, std::memory_order_release);
}

std::size_t FlightRecorder::slotOf(const ThreadRing* ring) const {
  for (std::size_t i = 0; i < rings_.size(); ++i)
    if (rings_[i].get() == ring) return i;
  return static_cast<std::size_t>(-1);
}

std::uint64_t FlightRecorder::nowMicros() const {
  return (monotonicNanos() - epoch_ns_) / 1000;
}

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

#ifndef RVSYM_OBS_NO_TRACING
struct TlsRef {
  FlightRecorder* owner = nullptr;
  ThreadRing* ring = nullptr;
};
thread_local TlsRef t_ref;
#endif

}  // namespace

FlightRecorder* FlightRecorder::installGlobal(const Options& opts) {
#ifdef RVSYM_OBS_NO_TRACING
  (void)opts;
  return nullptr;
#else
  FlightRecorder* cur = g_recorder.load(std::memory_order_acquire);
  if (cur) return cur;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  cur = g_recorder.load(std::memory_order_relaxed);
  if (cur) return cur;
  // Leaked on purpose: fatal signal handlers may dump during teardown.
  cur = new FlightRecorder(opts);
  g_recorder.store(cur, std::memory_order_release);
  return cur;
#endif
}

FlightRecorder* FlightRecorder::global() {
  return g_recorder.load(std::memory_order_acquire);
}

#ifndef RVSYM_OBS_NO_TRACING

ThreadRing* currentRing() {
  FlightRecorder* g = FlightRecorder::global();
  if (!g) return nullptr;
  if (t_ref.owner == g) return t_ref.ring;  // ring may be null: table full
  t_ref.owner = g;
  t_ref.ring = g->registerThread(nullptr);
  return t_ref.ring;
}

void setThreadName(const char* name) {
  FlightRecorder* g = FlightRecorder::global();
  if (!g) return;
  if (t_ref.owner == g && t_ref.ring) {
    std::snprintf(t_ref.ring->name, sizeof t_ref.ring->name, "%s",
                  name ? name : "");
    return;
  }
  t_ref.owner = g;
  t_ref.ring = g->registerThread(name);
}

void releaseCurrentThread() {
  if (t_ref.ring && t_ref.owner == FlightRecorder::global())
    t_ref.owner->releaseThread(t_ref.ring);
  t_ref = TlsRef{};
}

void emit(EventKind kind, std::uint64_t a, std::uint64_t b, std::uint64_t c,
          const char* tag) {
  FlightRecorder* g = g_recorder.load(std::memory_order_relaxed);
  if (!g) return;
  ThreadRing* r = currentRing();
  if (!r) return;
  r->emit(kind, a, b, c, tag, g->nowMicros());
}

void busyBegin() {
  FlightRecorder* g = g_recorder.load(std::memory_order_relaxed);
  if (!g) return;
  if (ThreadRing* r = currentRing()) r->busyBegin(g->nowMicros());
}

void busyEnd() {
  if (!g_recorder.load(std::memory_order_relaxed)) return;
  if (ThreadRing* r = currentRing()) r->busyEnd();
}

void inflightSet(const char* data, std::size_t len, std::uint64_t hash_lo,
                 std::uint64_t hash_hi) {
  if (!g_recorder.load(std::memory_order_relaxed)) return;
  if (ThreadRing* r = currentRing()) r->inflight().set(data, len, hash_lo,
                                                       hash_hi);
}

void inflightClear() {
  if (!g_recorder.load(std::memory_order_relaxed)) return;
  if (ThreadRing* r = currentRing()) r->inflight().clear();
}

#endif  // RVSYM_OBS_NO_TRACING

}  // namespace rvsym::obs::flightrec
