#include "obs/flightrec/sigsafe.hpp"

#include <cerrno>
#include <csignal>
#include <ctime>
#include <unistd.h>

namespace rvsym::obs::flightrec {

void SigsafeWriter::putRaw(const char* p, std::size_t n) {
  while (n > 0) {
    if (len_ == sizeof buf_) flush();
    std::size_t room = sizeof buf_ - len_;
    if (room > n) room = n;
    for (std::size_t i = 0; i < room; ++i) buf_[len_ + i] = p[i];
    len_ += room;
    p += room;
    n -= room;
  }
}

void SigsafeWriter::flush() {
  std::size_t off = 0;
  while (off < len_) {
    const ssize_t w = ::write(fd_, buf_ + off, len_ - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok_ = false;
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  len_ = 0;
}

void SigsafeWriter::ch(char c) { putRaw(&c, 1); }

void SigsafeWriter::str(const char* s) {
  if (!s) return;
  std::size_t n = 0;
  while (s[n]) ++n;
  putRaw(s, n);
}

void SigsafeWriter::strn(const char* s, std::size_t n) {
  if (s) putRaw(s, n);
}

void SigsafeWriter::dec(std::uint64_t v) {
  char tmp[24];
  int i = sizeof tmp;
  do {
    tmp[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  putRaw(tmp + i, sizeof tmp - static_cast<std::size_t>(i));
}

void SigsafeWriter::sdec(std::int64_t v) {
  if (v < 0) {
    ch('-');
    dec(static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    dec(static_cast<std::uint64_t>(v));
  }
}

void SigsafeWriter::hex(std::uint64_t v, int width) {
  char tmp[16];
  int i = sizeof tmp;
  do {
    tmp[--i] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  while (sizeof tmp - static_cast<std::size_t>(i) <
             static_cast<std::size_t>(width) &&
         i > 0)
    tmp[--i] = '0';
  putRaw(tmp + i, sizeof tmp - static_cast<std::size_t>(i));
}

void SigsafeWriter::jsonString(const char* s, std::size_t max) {
  ch('"');
  for (std::size_t i = 0; s && i < max && s[i]; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"' || c == '\\') {
      ch('\\');
      ch(static_cast<char>(c));
    } else if (c < 0x20) {
      str("\\u00");
      hex(c, 2);
    } else {
      ch(static_cast<char>(c));
    }
  }
  ch('"');
}

const char* signalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGUSR1: return "SIGUSR1";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return "SIG?";
  }
}

std::uint64_t monotonicMicros() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
}

}  // namespace rvsym::obs::flightrec
