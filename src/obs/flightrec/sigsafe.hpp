// Async-signal-safe formatting primitives for the crash-dump path.
//
// Everything here is callable from a fatal signal handler: no locale,
// no malloc, no stdio — a fixed stack buffer flushed with write(2).
// The JSON emitted through SigsafeWriter is deliberately minimal (no
// pretty-printing, \u00XX escapes for control bytes) but parses with
// the same obs/analyze JSON reader as the healthy-path streams.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rvsym::obs::flightrec {

class SigsafeWriter {
 public:
  explicit SigsafeWriter(int fd) : fd_(fd) {}
  ~SigsafeWriter() { flush(); }
  SigsafeWriter(const SigsafeWriter&) = delete;
  SigsafeWriter& operator=(const SigsafeWriter&) = delete;

  void ch(char c);
  void str(const char* s);                  ///< NUL-terminated
  void strn(const char* s, std::size_t n);  ///< exactly n bytes
  void dec(std::uint64_t v);
  void sdec(std::int64_t v);
  /// Lower-case hex; zero-padded to `width` digits when width > 0.
  void hex(std::uint64_t v, int width = 0);
  /// Emits `"` s `"` with JSON escaping, reading at most `max` bytes.
  void jsonString(const char* s, std::size_t max = static_cast<std::size_t>(-1));
  void flush();

  bool ok() const { return ok_; }

 private:
  void putRaw(const char* p, std::size_t n);

  int fd_;
  bool ok_ = true;
  std::size_t len_ = 0;
  char buf_[4096];
};

/// "SIGSEGV" / "SIGABRT" / ... / "SIG<n>". Async-signal safe.
const char* signalName(int sig);

/// CLOCK_MONOTONIC in microseconds. Async-signal safe.
std::uint64_t monotonicMicros();

}  // namespace rvsym::obs::flightrec
