// Crash forensics — the three dump triggers over the flight recorder
// (DESIGN.md §12):
//
//   (a) fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE): an async-signal-
//       safe handler writes a crash bundle and re-raises;
//   (b) a watchdog thread that declares a worker stalled when its ring
//       stamps stop advancing for --stall-timeout and dumps the same
//       bundle (plus all-thread stacks) WITHOUT killing the run;
//   (c) SIGUSR1: an explicit "dump now" for live debugging, serviced by
//       the watchdog at its next poll.
//
// A bundle is a directory (schema `rvsym-crash-v1`):
//
//   <crash-dir>/crash-<pid>-<seq>-<reason>/
//     manifest.json     reason, signal, tool, thread table, stall
//                       attribution, campaign journal position
//     flightrec.jsonl   every live ring event, one JSON object per line
//     stacks.txt        backtrace of every registered thread
//     metrics.json      metrics-registry snapshot (pre-serialized by the
//                       watchdog so the fatal path only write()s it)
//     inflight-<slot>.query
//                       the rvsym-query-v1 serialization of the query
//                       that was on thread <slot>'s SAT solver
//
// The fatal path allocates nothing and calls only async-signal-safe
// primitives; everything it writes was preallocated or pre-serialized
// at install / watchdog-poll time. Render bundles with
// `rvsym-report crash <dir>`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/flightrec/ring.hpp"

namespace rvsym::obs {
class MetricsRegistry;  // obs/metrics.hpp
}

namespace rvsym::obs::flightrec {

struct ForensicsOptions {
  /// Bundle output directory (created if missing). Required.
  std::string crash_dir;
  /// Declare a busy worker stalled after this many seconds without ring
  /// activity and dump a bundle (the run keeps going). 0 disables stall
  /// detection; fatal-signal and SIGUSR1 dumps stay armed.
  double stall_timeout_s = 0;
  /// Tool name recorded in the manifest ("rvsym-verify", ...).
  std::string tool;
  /// Watchdog poll cadence; clamped to stall_timeout/2 so a stall is
  /// detected within 2x the timeout. Also bounds SIGUSR1 latency.
  double poll_interval_s = 0.25;
  /// Tests may run the watchdog without taking over fatal signals.
  bool install_signal_handlers = true;
  FlightRecorder::Options recorder;
};

/// Installs the global flight recorder, the fatal/SIGUSR1 handlers and
/// the watchdog thread. Idempotent (second install fails). Returns
/// false with *err set on failure — including always under
/// RVSYM_OBS_NO_TRACING builds ("compiled out").
bool installForensics(const ForensicsOptions& opts, std::string* err);

/// Stops the watchdog and restores the previous signal dispositions.
/// The recorder itself stays installed (rings keep recording cheaply).
void shutdownForensics();

bool forensicsInstalled();

/// Registry to snapshot into bundles (nullptr detaches; detach before
/// the registry dies). The watchdog re-serializes it every poll into a
/// double buffer the fatal handler can write() as-is.
void setForensicsMetrics(MetricsRegistry* registry);

/// Campaign journal position for the manifest: `judged` (may be null)
/// is read at dump time and added to `base`. Pass path=nullptr to clear
/// before the counter dies.
void setForensicsJournal(const char* path,
                         const std::atomic<std::uint64_t>* judged,
                         std::uint64_t base);

/// Callback invoked while writing a bundle, e.g. the timeseries sampler
/// flushing its final sample. `fatal` is true in signal context, where
/// the callback must be async-signal safe. Returns a slot id (-1 when
/// full / not installed).
struct CrashWriter {
  void (*fn)(void* ctx, bool fatal) = nullptr;
  void* ctx = nullptr;
};
int addCrashWriter(CrashWriter w);
void removeCrashWriter(int id);

/// Writes a bundle from normal (non-signal) context — the SIGUSR1 /
/// test path. Returns false if forensics is not installed or the dump
/// failed; on success *bundle_dir (optional) is the bundle directory.
bool requestDump(const char* reason, std::string* bundle_dir);

/// RAII wrapper for CLIs: install on entry, shutdown + detach on exit
/// so no dangling registry/journal pointers survive `main`.
class ForensicsSession {
 public:
  ForensicsSession() = default;
  ~ForensicsSession() {
    if (installed_) {
      setForensicsMetrics(nullptr);
      setForensicsJournal(nullptr, nullptr, 0);
      shutdownForensics();
    }
  }
  ForensicsSession(const ForensicsSession&) = delete;
  ForensicsSession& operator=(const ForensicsSession&) = delete;

  bool install(const ForensicsOptions& opts, std::string* err) {
    installed_ = installForensics(opts, err);
    return installed_;
  }
  bool installed() const { return installed_; }

 private:
  bool installed_ = false;
};

}  // namespace rvsym::obs::flightrec
