// Flight recorder — lock-free per-thread ring buffers of recent
// structured events (path commits, solver query begin/end, phase
// transitions, mutant judgements) that cost ~nothing while the run is
// healthy and are dumped in full when something goes wrong (crash,
// stall, SIGUSR1 — see crashdump.hpp).
//
// Design (DESIGN.md §12): each registered thread owns a power-of-2 ring
// of seqlock-style slots in which *every* field is a relaxed atomic and
// the slot's event index is the publication word (release-stored last,
// 0 = never written). A reader — including one running inside a fatal
// signal handler on another thread — snapshots a ring without stopping
// the writer: it reads the reservation counter, walks the window of
// live indices, and drops any slot whose stored index does not match
// the expected one (the writer lapped it mid-read). Torn slots are
// skipped, never invented. No locks, no allocation, no syscalls on the
// emit path; when no recorder is installed an emit is one relaxed load
// and a branch.
//
// Rings also carry the watchdog's stall-detection state (busy_since /
// last_event microsecond stamps) and one seqlock'd "in-flight" buffer
// per thread into which the solver serializes the query it is about to
// solve (rvsym-query-v1 text), so a crash bundle can contain the exact
// query that was on the SAT solver when the process died.
//
// Everything here compiles out under -DRVSYM_DISABLE_TRACING
// (RVSYM_OBS_NO_TRACING): the free-function emit API becomes empty
// inlines and installGlobal() refuses.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#ifndef _WIN32
#include <pthread.h>
#endif

namespace rvsym::obs::flightrec {

/// What happened. The a/b/c payload words are kind-specific (values
/// documented at the emission sites; renderers in obs/analyze know the
/// shapes). `tag` is a short fixed-width label (phase name, mutant id
/// prefix, check kind).
enum class EventKind : std::uint8_t {
  None = 0,
  PathCommit,     ///< a=path id, b=end kind, c=instructions
  SolverBegin,    ///< a=hash.lo, b=hash.hi, c=constraint count
  SolverEnd,      ///< a=hash.lo, b=verdict, c=solve µs
  Phase,          ///< tag=phase name, a=depth
  MutantBegin,    ///< a=mutant enumeration index, tag=id prefix
  MutantVerdict,  ///< a=mutant enumeration index, b=verdict, tag=id prefix
  Mark,           ///< free-form marker: tag + a/b/c
};

/// Stable wire name ("path_commit", "solver_begin", ...). Async-signal
/// safe (returns pointers to string literals).
const char* eventKindName(EventKind k);

/// One decoded event, as handed to readers (plain data, no atomics).
struct Event {
  std::uint64_t index = 0;  ///< per-thread sequence number (0-based)
  std::uint64_t t_us = 0;   ///< microseconds since recorder start
  std::uint64_t a = 0, b = 0, c = 0;
  EventKind kind = EventKind::None;
  char tag[17] = {0};  ///< NUL-terminated
};

namespace detail {

/// One ring slot. All fields atomic so concurrent write/read is defined
/// behaviour (TSan-clean); `index` stores sequence+1 (0 = empty) and is
/// release-published after the payload.
struct Slot {
  std::atomic<std::uint64_t> index{0};
  std::atomic<std::uint64_t> t_us{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<std::uint64_t> c{0};
  std::atomic<std::uint64_t> tag_lo{0};
  std::atomic<std::uint64_t> tag_hi{0};
  std::atomic<std::uint8_t> kind{0};
};

}  // namespace detail

/// Seqlock'd fixed buffer holding the serialized in-flight solver query
/// of one thread. Writer is the owning thread; readers may run in a
/// signal handler on any thread.
class InFlightSlot {
 public:
  explicit InFlightSlot(std::size_t capacity);

  std::size_t capacity() const { return buf_.size(); }

  /// Publishes a new in-flight payload (truncated to capacity).
  void set(const char* data, std::size_t len, std::uint64_t hash_lo,
           std::uint64_t hash_hi);
  /// Marks nothing in flight (len 0).
  void clear();

  /// Copies the current payload into `out` (up to `max` bytes). Returns
  /// the number of bytes copied; 0 means nothing in flight or the
  /// writer was mid-update (torn reads are dropped, not returned).
  /// Async-signal safe.
  std::size_t read(char* out, std::size_t max, std::uint64_t* hash_lo,
                   std::uint64_t* hash_hi) const;

  /// Racy peek at the current payload length (0 = nothing in flight).
  std::uint32_t pendingBytes() const {
    return len_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> version_{0};  ///< seqlock; odd = writing
  std::atomic<std::uint32_t> len_{0};
  std::atomic<std::uint64_t> hash_lo_{0};
  std::atomic<std::uint64_t> hash_hi_{0};
  std::vector<std::atomic<char>> buf_;
};

/// One thread's ring plus its watchdog/identity state.
class ThreadRing {
 public:
  static constexpr std::size_t kTagBytes = 16;
  static constexpr std::size_t kNameBytes = 32;

  ThreadRing(std::size_t capacity_pow2, std::size_t inflight_bytes);

  /// Appends one event. Lock-free, allocation-free, wait-free.
  void emit(EventKind kind, std::uint64_t a, std::uint64_t b,
            std::uint64_t c, const char* tag, std::uint64_t now_us);

  /// Number of events ever emitted on this ring.
  std::uint64_t seq() const { return seq_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return slots_.size(); }

  /// Snapshots the live window (oldest first) into `out`, dropping any
  /// slot the writer lapped mid-read. Returns the count. Safe from a
  /// signal handler and concurrently with emit().
  std::size_t snapshot(Event* out, std::size_t max) const;

  /// Watchdog bookkeeping: a thread is a stall candidate while busy and
  /// neither stamp has advanced for the stall timeout. Brackets nest (a
  /// campaign worker judging a mutant runs the engine's per-path
  /// brackets inside its own); only the outermost pair moves the stamp.
  /// Single-writer: only the owning thread calls these.
  void busyBegin(std::uint64_t now_us) {
    const std::uint32_t d = busy_depth_.load(std::memory_order_relaxed);
    busy_depth_.store(d + 1, std::memory_order_relaxed);
    if (d == 0) busy_since_us.store(now_us, std::memory_order_release);
  }
  void busyEnd() {
    const std::uint32_t d = busy_depth_.load(std::memory_order_relaxed);
    if (d == 0) return;  // unbalanced end: ignore
    busy_depth_.store(d - 1, std::memory_order_relaxed);
    if (d == 1) busy_since_us.store(0, std::memory_order_release);
  }
  /// Clears busy state entirely regardless of depth (slot reclaim).
  void busyReset() {
    busy_depth_.store(0, std::memory_order_relaxed);
    busy_since_us.store(0, std::memory_order_release);
  }

  InFlightSlot& inflight() { return inflight_; }
  const InFlightSlot& inflight() const { return inflight_; }

  /// Thread identity. `name` is written once at registration (before
  /// in_use is published) and read by dumpers.
  char name[kNameBytes] = {0};
#ifndef _WIN32
  pthread_t pthread_id{};
#endif
  std::atomic<bool> has_thread_id{false};
  std::atomic<bool> in_use{false};

  std::atomic<std::uint64_t> busy_since_us{0};
  std::atomic<std::uint64_t> last_event_us{0};

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint32_t> busy_depth_{0};
  std::size_t mask_;
  std::vector<detail::Slot> slots_;
  InFlightSlot inflight_;
};

/// The recorder: a fixed table of thread rings, all preallocated at
/// construction so nothing on the emit or dump path ever allocates.
/// Normally used through the process-global instance (installGlobal /
/// global); tests may instantiate private recorders directly.
class FlightRecorder {
 public:
  struct Options {
    std::size_t ring_capacity = 512;  ///< events per thread (rounded to 2^k)
    std::size_t max_threads = 64;
    std::size_t inflight_bytes = 32 * 1024;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(const Options& opts);

  /// Claims a free ring slot for the calling thread. Returns nullptr if
  /// the table is full. The name is truncated to kNameBytes-1.
  ThreadRing* registerThread(const char* name);
  /// Returns a worker's slot to the pool (ring contents are discarded
  /// for reuse by the next registrant).
  void releaseThread(ThreadRing* ring);

  std::size_t maxThreads() const { return rings_.size(); }
  ThreadRing* ringAt(std::size_t i) { return rings_[i].get(); }
  const ThreadRing* ringAt(std::size_t i) const { return rings_[i].get(); }
  /// Slot index of a ring (for bundle labels).
  std::size_t slotOf(const ThreadRing* ring) const;

  /// Microseconds since the recorder was constructed (CLOCK_MONOTONIC;
  /// async-signal safe).
  std::uint64_t nowMicros() const;

  const Options& options() const { return opts_; }

  /// Process-global recorder. installGlobal is idempotent (the first
  /// options win) and the instance is intentionally leaked so signal
  /// handlers can use it during process teardown. Returns nullptr under
  /// RVSYM_OBS_NO_TRACING.
  static FlightRecorder* installGlobal(const Options& opts);
  static FlightRecorder* installGlobal() { return installGlobal(Options()); }
  static FlightRecorder* global();

 private:
  Options opts_;
  std::uint64_t epoch_ns_ = 0;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

#ifndef RVSYM_OBS_NO_TRACING

/// Registers the calling thread in the global recorder under `name`
/// (no-op if no recorder is installed or the table is full). Subsequent
/// emits from this thread land on its ring.
void setThreadName(const char* name);
/// Releases the calling thread's global-ring slot (for short-lived
/// worker threads, so campaigns do not exhaust the table).
void releaseCurrentThread();
/// The calling thread's ring in the global recorder; auto-registers an
/// anonymous ring on first use. nullptr when no recorder is installed
/// or the table is full.
ThreadRing* currentRing();

/// Hot-path emit into the calling thread's global ring. When no global
/// recorder is installed this is one relaxed load and a branch.
void emit(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
          std::uint64_t c = 0, const char* tag = nullptr);

/// Stall-watchdog brackets around a unit of work (one path execution,
/// one mutant judgement).
void busyBegin();
void busyEnd();

/// Publishes / clears the calling thread's in-flight solver query.
void inflightSet(const char* data, std::size_t len, std::uint64_t hash_lo,
                 std::uint64_t hash_hi);
void inflightClear();

/// RAII pair for worker threads: register on entry, release on exit.
class ScopedThread {
 public:
  explicit ScopedThread(const char* name) { setThreadName(name); }
  ~ScopedThread() { releaseCurrentThread(); }
  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;
};

#else  // RVSYM_OBS_NO_TRACING — the whole emit API compiles away.

inline void setThreadName(const char*) {}
inline void releaseCurrentThread() {}
inline ThreadRing* currentRing() { return nullptr; }
inline void emit(EventKind, std::uint64_t = 0, std::uint64_t = 0,
                 std::uint64_t = 0, const char* = nullptr) {}
inline void busyBegin() {}
inline void busyEnd() {}
inline void inflightSet(const char*, std::size_t, std::uint64_t,
                        std::uint64_t) {}
inline void inflightClear() {}

class ScopedThread {
 public:
  explicit ScopedThread(const char*) {}
};

#endif  // RVSYM_OBS_NO_TRACING

}  // namespace rvsym::obs::flightrec
