#include "obs/trace.hpp"

namespace rvsym::obs {

std::string TraceEvent::toJsonl() const {
  std::string line = "{\"ev\":\"" + jsonEscape(type) + "\"";
  for (const auto& [k, v] : fields) {
    line += ",\"";
    line += jsonEscape(k);
    line += "\":";
    line += v;
  }
  line += '}';
  return line;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")), owned_(true) {}

JsonlTraceSink::JsonlTraceSink(std::FILE* borrowed)
    : file_(borrowed), owned_(false) {}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ && owned_) std::fclose(file_);
}

void JsonlTraceSink::emit(const TraceEvent& ev) {
  if (!file_) return;
  const std::string line = ev.toJsonl();
  std::lock_guard<std::mutex> lk(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_) std::fflush(file_);
}

void BufferTraceSink::emit(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lk(mu_);
  lines_.push_back(ev.toJsonl());
}

std::vector<std::string> BufferTraceSink::lines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lines_;
}

std::string BufferTraceSink::joined() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const std::string& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace rvsym::obs
