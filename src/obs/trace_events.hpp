// SpanCollector — Chrome Trace Event export for live-run spans.
//
// Producers append complete spans ("X" phase events in Chrome Trace
// Event Format terms): the PhaseProfiler emits one span per phase exit
// when a collector is attached (obs/phase.hpp), and SolverTelemetry
// emits one span per solver query with the layer disposition
// (exact/cexm/cexc/rw/sliced/solve) and verdict as span args
// (solver/telemetry.hpp). toChromeTrace() renders the whole collection
// as a {"traceEvents": [...]} document loadable in Perfetto /
// chrome://tracing, with one track per producer thread (worker threads
// map to distinct tids in first-use order; a thread_name metadata event
// names each track) and events sorted by (tid, ts) so every track's
// timestamps are monotonic.
//
// Timestamps are microseconds since the collector's construction — a
// private steady-clock epoch, so spans from different components
// attached to the same collector line up on one timeline.
//
// Cost model: a null collector pointer at every producer site is one
// predicted branch (the trace null-sink convention); recording is one
// mutex-guarded vector push. The collection is capped (default 2^20
// spans ≈ a few hundred MB of JSON at the extreme) — beyond the cap
// spans are counted as dropped instead of exhausting memory, and the
// drop count lands in the trace metadata.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rvsym::obs {

struct Span {
  std::string name;
  const char* cat = "phase";  ///< "phase" | "solver" (string literal)
  std::uint32_t tid = 0;      ///< collector-assigned thread track
  std::uint64_t ts_us = 0;    ///< start, µs since the collector epoch
  std::uint64_t dur_us = 0;
  /// Span args as (key, pre-rendered JSON value) pairs — the TraceEvent
  /// idiom, so producers control quoting.
  std::vector<std::pair<std::string, std::string>> args;
};

class SpanCollector {
 public:
  explicit SpanCollector(std::size_t max_spans = 1u << 20);

  /// Stable per-(thread, collector) track id, assigned in first-use
  /// order (the committer/main thread is track 0 in practice).
  std::uint32_t threadTrack();

  /// Microseconds since the collector epoch for `tp` / for now.
  std::uint64_t sinceEpochUs(std::chrono::steady_clock::time_point tp) const;
  std::uint64_t nowUs() const {
    return sinceEpochUs(std::chrono::steady_clock::now());
  }

  /// The collector epoch on the steady clock's own timebase, in
  /// microseconds. steady_clock is CLOCK_MONOTONIC on Linux — one
  /// timebase per boot shared by every process — which is what lets the
  /// trace merger (obs/fleet/trace_merge.hpp) align collections from
  /// the daemon and its forked workers on a single timeline.
  std::uint64_t epochSteadyUs() const;

  /// Appends one complete span. Thread-safe; drops (and counts) spans
  /// past the cap.
  void add(Span s);

  /// Convenience for producers that only know a duration at completion
  /// time: a span on the calling thread's track ending now.
  void addEnding(std::string name, const char* cat, std::uint64_t dur_us,
                 std::vector<std::pair<std::string, std::string>> args = {});

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Moves out every recorded span in insertion order; the epoch, track
  /// assignments and drop count stay. Producers that batch spans over a
  /// wire (the serve worker's spans_report frames) call this once per
  /// shipment.
  std::vector<Span> drain();

  /// All spans sorted by (tid, ts_us, dur_us desc) — parents before
  /// children at equal timestamps, per-track monotonic ts.
  std::vector<Span> sorted() const;

  /// The Chrome Trace Event Format document (JSON object form).
  std::string toChromeTrace() const;

  /// Writes toChromeTrace() to `path`. False on I/O failure.
  bool writeChromeTrace(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t max_spans_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  std::uint32_t next_track_ = 0;
};

}  // namespace rvsym::obs
