// PhaseProfiler — scoped wall-time attribution across engine phases.
//
// Worker threads push named phases with RAII PhaseTimer guards
// ("path" → "rtl" → "solver", ...); the profiler aggregates *self* time
// per distinct phase stack and renders the result in flamegraph folded
// format — one "path;rtl;solver <self_us>" line per stack, directly
// consumable by flamegraph.pl / speedscope.
//
// Determinism: which stacks exist is a structural property of the
// workload, but the value column is wall time — timing-dependent like
// the trace's t_* fields. canonicalizeFolded() zeroes the values so
// profiles from --jobs 1 and --jobs N compare byte-identically, the
// same convention rvsym-report diff applies to t_*/qc_* trace fields.
//
// Thread safety: enter()/exit() touch only thread-local stack state
// plus one mutex-guarded map update per exit; a null profiler pointer
// in PhaseTimer is a no-op costing one branch and no clock read.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rvsym::obs {

class SpanCollector;  // obs/trace_events.hpp

class PhaseProfiler {
 public:
  /// When set, every exit() additionally records one complete span
  /// (name, thread track, start, duration) into the collector for
  /// Chrome-trace export. Attach before workers start; null detaches.
  void attachSpans(SpanCollector* spans) { spans_ = spans; }
  SpanCollector* spans() const { return spans_; }

  /// Pushes phase `name` onto the calling thread's phase stack. `name`
  /// must outlive the profiler (string literals in practice).
  void enter(const char* name);

  /// Pops the current phase, attributing its self time (elapsed minus
  /// time spent in nested phases) to the full stack.
  void exit();

  /// Folded-stack rendering: one "a;b;c <self_us>" line per distinct
  /// stack, sorted lexicographically by stack name.
  std::string folded() const;

  /// Replaces the value column of a folded() document with 0, leaving
  /// only the structural stack set — byte-comparable across worker
  /// counts and runs.
  static std::string canonicalizeFolded(std::string_view text);

  std::uint64_t distinctStacks() const;

 private:
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t self_us = 0;
  };
  struct Frame {
    const char* name;
    std::chrono::steady_clock::time_point start;
    std::uint64_t child_us = 0;
  };
  std::vector<Frame>& threadStack();

  mutable std::mutex mu_;
  std::map<std::string, Agg> stacks_;
  SpanCollector* spans_ = nullptr;
};

/// RAII phase guard. Null profiler = no-op.
class PhaseTimer {
 public:
  PhaseTimer(PhaseProfiler* p, const char* name) : p_(p) {
    if (p_) p_->enter(name);
  }
  ~PhaseTimer() {
    if (p_) p_->exit();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseProfiler* p_;
};

}  // namespace rvsym::obs
