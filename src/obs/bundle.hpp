// Mismatch-repro bundles — the "attach everything to the bug report"
// artifact of the observability subsystem. On a voter mismatch the
// verification flow dumps one self-contained directory:
//
//   bundle/
//     manifest.json    configuration + recorded verdict (format v1)
//     test.rvtest      the mismatch test vector (symex/ktest format)
//     instrs.txt       concretized instruction stream, disassembled
//     rvfi_rtl.jsonl   RTL retirement records of the concrete replay
//     rvfi_iss.jsonl   ISS retirement records of the concrete replay
//     trace.vcd        RTL waveform of the concrete replay (GTKWave)
//
// The RVFI records and the VCD are produced by re-running the recorded
// vector CONCRETELY (inputs pinned, recorder hooks attached), so bundle
// writing never perturbs the symbolic hot path. `replayBundle` is the
// other half: rvsym-verify --replay <dir> reconstructs the DUT
// configuration from the manifest, re-runs the vector and checks that
// the recorded voter verdict reproduces on the same channel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/cosim.hpp"
#include "symex/engine.hpp"
#include "symex/state.hpp"

namespace rvsym::obs {

/// Bundle format version (manifest "bundle_version").
inline constexpr int kBundleVersion = 1;

/// Everything needed to rebuild the co-simulation configuration at
/// replay time. Scenario hooks are not serialized: replay pins every
/// symbolic input to the recorded vector, which subsumes any generation
/// constraint, but the scenario string is kept so the replay applies the
/// same structural assumptions (and for the human reading the manifest).
struct BundleDescriptor {
  std::string fault_id;    ///< "" = authentic MicroRV32/VP pair
  std::string scenario = "all";
  unsigned instr_limit = 1;
  unsigned num_symbolic_regs = 2;
  std::string message;     ///< the PathTerminated mismatch message
};

struct ReplayResult {
  bool reproduced = false;       ///< replay hit a voter mismatch
  bool verdict_matches = false;  ///< ...on the recorded channel and PC
  std::string recorded_field;    ///< voter channel from the manifest
  std::string field;             ///< voter channel seen on replay
  std::string message;           ///< replay mismatch message
};

/// Writes a mismatch-repro bundle into `dir` (created if needed) for an
/// error path carrying test vector `test`. Returns false on I/O failure
/// or when the concrete replay cannot rediscover the error path (the
/// partial bundle is left behind for inspection either way).
bool writeMismatchBundle(const std::string& dir, const BundleDescriptor& desc,
                         const symex::TestVector& test);

/// Writes one bundle per error path of `report` that carries a test
/// vector, into dir/bundle-000, dir/bundle-001, ... `base` supplies the
/// configuration fields; the per-path message is filled in. Returns the
/// number of bundles written.
std::size_t writeReportBundles(const std::string& dir,
                               const BundleDescriptor& base,
                               const symex::EngineReport& report);

/// Loads dir/manifest.json; nullopt when missing or unreadable.
std::optional<BundleDescriptor> loadBundleManifest(const std::string& dir);

/// Re-runs the bundle's test vector concretely against the manifest's
/// DUT configuration. nullopt when the bundle cannot be loaded.
std::optional<ReplayResult> replayBundle(const std::string& dir);

/// Maps a scenario string ("all" | "rv32i" | "system" | "opcode=0xNN" |
/// "csr=0xNNN") to its instruction constraint; nullopt on unknown
/// scenarios. Shared by rvsym-verify and bundle replay so both sides
/// agree on the vocabulary.
std::optional<core::InstrConstraint> scenarioConstraint(
    const std::string& scenario);

}  // namespace rvsym::obs
