#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace rvsym::obs {

namespace {

template <typename Map>
auto& getOrCreate(std::mutex& mu, Map& map, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(name, std::make_unique<
                               typename Map::mapped_type::element_type>())
             .first;
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return getOrCreate(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return getOrCreate(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return getOrCreate(mu_, histograms_, name);
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w;
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.field(name, c->get());
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : gauges_) {
    w.key(name).beginObject();
    w.field("value", g->get());
    w.field("max", g->max());
    w.endObject();
  }
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : histograms_) {
    w.key(name).beginObject();
    w.field("count", h->count());
    w.field("sum_us", h->sumMicros());
    // Derived latency summaries (bucket-resolution, see
    // Histogram::quantileLowerBound). Elided when empty so old readers
    // see no spurious zeros.
    if (h->count() != 0) {
      w.field("p50_ge_us", h->quantileLowerBound(0.50));
      w.field("p90_ge_us", h->quantileLowerBound(0.90));
      w.field("p99_ge_us", h->quantileLowerBound(0.99));
    }
    w.key("buckets").beginArray();
    for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      w.beginObject();
      w.field("ge_us", Histogram::bucketLowerBound(i));
      w.field("n", n);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

std::string MetricsRegistry::toSummaryJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w;
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.field(name, c->get());
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : gauges_) {
    w.key(name).beginObject();
    w.field("value", g->get());
    w.field("max", g->max());
    w.endObject();
  }
  w.endObject();
  w.key("hist").beginObject();
  for (const auto& [name, h] : histograms_) {
    w.key(name).beginObject();
    w.field("count", h->count());
    w.field("sum_us", h->sumMicros());
    if (h->count() != 0) {
      w.field("p50_us", h->quantileMicros(0.50));
      w.field("p90_us", h->quantileMicros(0.90));
      w.field("p99_us", h->quantileMicros(0.99));
    }
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace rvsym::obs
