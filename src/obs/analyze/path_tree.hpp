// Exploration-tree reconstruction from the JSONL lifecycle trace.
//
// The trace's determinism contract (obs/trace.hpp) makes the tree fully
// recoverable offline: the root path is 0, every `fork` line names its
// parent, and every `path_end` line carries the path's verdict, its
// deterministic enrichment (workload tags, serialized test vector) and
// the timing-dependent attribution fields (`t_solver_us`, `t_rtl_us`,
// `t_iss_us`, ...). This module parses those lines back into a PathTree
// and answers the questions the paper's Table II rows raise but cannot
// show: WHERE did the solver time go — which subtrees, which paths,
// which instruction classes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rvsym::obs::analyze {

/// One reconstructed path (= one node of the exploration tree).
struct PathNode {
  std::uint64_t id = 0;
  /// Parent path id; the root (id 0) has no parent.
  std::optional<std::uint64_t> parent;
  /// Children in fork-discovery order (deterministic commit order).
  std::vector<std::uint64_t> children;
  /// Decision-prefix depth at which the fork creating this path was
  /// discovered (0 for the root).
  std::uint64_t fork_depth = 0;

  // --- path_end payload (absent until ended == true: a fork the run
  // --- never scheduled, e.g. under --max-paths) ---------------------------
  bool ended = false;
  std::string end;  ///< "completed" / "error" / "infeasible" / ...
  std::string message;
  std::uint64_t instructions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t forks = 0;
  std::uint64_t solver_checks = 0;
  bool has_test = false;
  /// Serialized test vector ("name=width:hexvalue", space-joined).
  std::string test;
  std::vector<std::string> tags;
  /// Per-path wall-time attribution in µs, keyed by the t_<key>_us field
  /// name stem ("solver", "rtl", "iss", ...). Timing-dependent.
  std::map<std::string, std::uint64_t> times_us;
  /// Query-cache traffic issued while executing this path, attributed to
  /// the worker that ran it (qc_worker). Timing-dependent under a shared
  /// campaign cache: what counts as a hit depends on solve order.
  std::uint64_t qc_hits = 0;
  std::uint64_t qc_misses = 0;
  std::uint64_t qc_worker = 0;

  std::uint64_t solverUs() const { return timeUs("solver"); }
  std::uint64_t timeUs(const std::string& key) const {
    const auto it = times_us.find(key);
    return it == times_us.end() ? 0 : it->second;
  }
  bool hasTag(const std::string& tag) const;
};

/// Subtree rollup for one node: this path plus all descendants.
struct SubtreeStats {
  std::uint64_t paths = 0;  ///< ended paths in the subtree
  std::uint64_t instructions = 0;
  std::uint64_t solver_checks = 0;
  std::map<std::string, std::uint64_t> times_us;

  std::uint64_t solverUs() const {
    const auto it = times_us.find("solver");
    return it == times_us.end() ? 0 : it->second;
  }
};

/// Verdict counters derived from the tree, in EngineReport terms —
/// the round-trip check against the engine's own report.
struct TreeCounts {
  std::uint64_t completed = 0;
  std::uint64_t error = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t limited = 0;  ///< "solver-limit" + "budget"
  std::uint64_t unexplored = 0;  ///< forked but never ended
  std::uint64_t instructions = 0;
  std::uint64_t tests = 0;

  std::uint64_t total() const {
    return completed + error + infeasible + limited + unexplored;
  }
};

class PathTree {
 public:
  /// Reconstructs the tree from JSONL trace lines (non-trace lines and
  /// unrelated event types are skipped). Returns nullopt with a reason
  /// when the lines do not contain a usable trace (no run_start, a fork
  /// naming an unknown parent, unparseable JSON on a trace-shaped line).
  static std::optional<PathTree> fromTraceLines(
      const std::vector<std::string>& lines, std::string* error = nullptr);
  /// Same, reading one line per row from a file.
  static std::optional<PathTree> fromFile(const std::string& path,
                                          std::string* error = nullptr);

  const std::map<std::uint64_t, PathNode>& nodes() const { return nodes_; }
  const PathNode* node(std::uint64_t id) const;
  const PathNode& root() const { return nodes_.at(0); }
  std::size_t size() const { return nodes_.size(); }

  /// run_start metadata.
  std::uint64_t jobs() const { return jobs_; }
  const std::string& searcher() const { return searcher_; }

  /// Verdict counters derived purely from the nodes.
  TreeCounts counts() const;

  /// Rollup of one subtree (the node plus every descendant).
  SubtreeStats subtree(std::uint64_t id) const;

  /// Total µs across all ended paths for one time key ("solver", "rtl",
  /// "iss"). The "solver" total is the figure that must agree with the
  /// metrics registry's solver.check_us sum.
  std::uint64_t totalUs(const std::string& key) const;

  /// The k ended paths with the largest `key` time, descending (ties
  /// broken by path id for stable output).
  std::vector<const PathNode*> topPaths(std::size_t k,
                                        const std::string& key) const;

  /// The k direct children of the root whose subtrees carry the largest
  /// `key` time, descending — the "which half of the exploration was
  /// expensive" view.
  std::vector<std::pair<std::uint64_t, SubtreeStats>> topSubtrees(
      std::size_t k, const std::string& key) const;

  /// Sums `key` µs per tag with the given prefix (e.g. prefix "class:"
  /// → {"class:alu": 1200, ...}). A path carrying n matching tags
  /// contributes its full time to each — the result answers "how much
  /// solver time did paths involving class X cost", not a partition.
  std::map<std::string, std::uint64_t> timeByTag(
      const std::string& prefix, const std::string& key) const;

  /// Query-cache traffic summed per executing worker ({hits, misses}
  /// pairs keyed by qc_worker). Only committed paths contribute — the
  /// per-worker sums therefore add up to the run_end qc_hits/qc_misses
  /// totals, which count committed outcomes (parallel.cpp).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
  qcacheByWorker() const;

  /// Multi-line human-readable report: counts, top paths, top subtrees
  /// and per-class attribution.
  std::string renderReport(std::size_t top_k = 5) const;

 private:
  std::map<std::uint64_t, PathNode> nodes_;
  std::uint64_t jobs_ = 1;
  std::string searcher_;
};

}  // namespace rvsym::obs::analyze
