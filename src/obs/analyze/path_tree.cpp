#include "obs/analyze/path_tree.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "obs/analyze/json_reader.hpp"
#include "obs/analyze/jsonl.hpp"

namespace rvsym::obs::analyze {

bool PathNode::hasTag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

namespace {

void splitCsv(const std::string& s, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      return;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::optional<PathTree> PathTree::fromTraceLines(
    const std::vector<std::string>& lines, std::string* error) {
  auto fail = [error](std::string why) -> std::optional<PathTree> {
    if (error) *error = std::move(why);
    return std::nullopt;
  };

  PathTree tree;
  bool saw_run_start = false;
  tree.nodes_[0] = PathNode{};  // the root is implicit: path id 0

  std::size_t lineno = 0;
  for (const std::string& line : lines) {
    ++lineno;
    // Tolerate non-trace content (blank lines, interleaved logs): a
    // trace line is a JSON object carrying an "ev" member.
    if (line.find("\"ev\"") == std::string::npos) continue;
    std::string jerr;
    std::optional<JsonValue> v = parseJson(line, &jerr);
    if (!v || !v->isObject())
      return fail("line " + std::to_string(lineno) + ": " +
                  (jerr.empty() ? "not a JSON object" : jerr));
    const std::optional<std::string> ev = v->getString("ev");
    if (!ev) continue;

    if (*ev == "run_start") {
      saw_run_start = true;
      tree.jobs_ = v->getU64("jobs").value_or(1);
      tree.searcher_ = v->getString("searcher").value_or("");
    } else if (*ev == "fork") {
      const std::optional<std::uint64_t> id = v->getU64("path");
      const std::optional<std::uint64_t> parent = v->getU64("parent");
      if (!id || !parent)
        return fail("line " + std::to_string(lineno) + ": malformed fork");
      if (tree.nodes_.count(*parent) == 0)
        return fail("line " + std::to_string(lineno) + ": fork from unknown parent " +
                    std::to_string(*parent));
      PathNode& n = tree.nodes_[*id];
      n.id = *id;
      n.parent = *parent;
      n.fork_depth = v->getU64("depth").value_or(0);
      tree.nodes_[*parent].children.push_back(*id);
    } else if (*ev == "path_end") {
      const std::optional<std::uint64_t> id = v->getU64("path");
      if (!id)
        return fail("line " + std::to_string(lineno) + ": malformed path_end");
      if (tree.nodes_.count(*id) == 0)
        return fail("line " + std::to_string(lineno) + ": path_end for unknown path " +
                    std::to_string(*id));
      PathNode& n = tree.nodes_[*id];
      n.id = *id;
      n.ended = true;
      n.end = v->getString("end").value_or("");
      n.message = v->getString("msg").value_or("");
      n.instructions = v->getU64("instr").value_or(0);
      n.decisions = v->getU64("decisions").value_or(0);
      n.forks = v->getU64("forks").value_or(0);
      n.solver_checks = v->getU64("solver_checks").value_or(0);
      n.has_test = v->getBool("has_test").value_or(false);
      n.test = v->getString("test").value_or("");
      if (std::optional<std::string> tags = v->getString("tags"))
        splitCsv(*tags, n.tags);
      n.qc_hits = v->getU64("qc_hits").value_or(0);
      n.qc_misses = v->getU64("qc_misses").value_or(0);
      n.qc_worker = v->getU64("qc_worker").value_or(0);
      // Every numeric t_<key>_us member is a time accumulator.
      for (const auto& [key, val] : v->members()) {
        if (key.size() > 5 && key.rfind("t_", 0) == 0 &&
            key.compare(key.size() - 3, 3, "_us") == 0 && val.isNumber())
          n.times_us[key.substr(2, key.size() - 5)] = val.asU64();
      }
    }
    // schedule / voter / run_end and future event types carry no tree
    // structure; the reconstruction ignores them.
  }

  if (!saw_run_start) return fail("no run_start event found");
  return tree;
}

std::optional<PathTree> PathTree::fromFile(const std::string& path,
                                           std::string* error) {
  std::vector<std::string> lines;
  const auto stats = forEachJsonlLine(
      path,
      [&](std::string_view line, std::size_t, bool) {
        lines.emplace_back(line);
      },
      error);
  if (!stats) return std::nullopt;
  return fromTraceLines(lines, error);
}

const PathNode* PathTree::node(std::uint64_t id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

TreeCounts PathTree::counts() const {
  TreeCounts c;
  for (const auto& [id, n] : nodes_) {
    if (!n.ended) {
      ++c.unexplored;
      continue;
    }
    if (n.end == "completed") ++c.completed;
    else if (n.end == "error") ++c.error;
    else if (n.end == "infeasible") ++c.infeasible;
    else ++c.limited;  // "solver-limit" / "budget"
    c.instructions += n.instructions;
    if (n.has_test) ++c.tests;
  }
  return c;
}

SubtreeStats PathTree::subtree(std::uint64_t id) const {
  SubtreeStats s;
  // Iterative DFS (traces can be deep under DFS search).
  std::vector<std::uint64_t> stack{id};
  while (!stack.empty()) {
    const std::uint64_t cur = stack.back();
    stack.pop_back();
    const PathNode* n = node(cur);
    if (!n) continue;
    if (n->ended) {
      ++s.paths;
      s.instructions += n->instructions;
      s.solver_checks += n->solver_checks;
      for (const auto& [key, us] : n->times_us) s.times_us[key] += us;
    }
    for (std::uint64_t child : n->children) stack.push_back(child);
  }
  return s;
}

std::uint64_t PathTree::totalUs(const std::string& key) const {
  std::uint64_t total = 0;
  for (const auto& [id, n] : nodes_) total += n.timeUs(key);
  return total;
}

std::vector<const PathNode*> PathTree::topPaths(std::size_t k,
                                                const std::string& key) const {
  std::vector<const PathNode*> ended;
  for (const auto& [id, n] : nodes_)
    if (n.ended) ended.push_back(&n);
  std::sort(ended.begin(), ended.end(),
            [&key](const PathNode* a, const PathNode* b) {
              const std::uint64_t ua = a->timeUs(key), ub = b->timeUs(key);
              if (ua != ub) return ua > ub;
              return a->id < b->id;
            });
  if (ended.size() > k) ended.resize(k);
  return ended;
}

std::vector<std::pair<std::uint64_t, SubtreeStats>> PathTree::topSubtrees(
    std::size_t k, const std::string& key) const {
  std::vector<std::pair<std::uint64_t, SubtreeStats>> subs;
  const PathNode* r = node(0);
  if (!r) return subs;
  for (std::uint64_t child : r->children)
    subs.emplace_back(child, subtree(child));
  std::sort(subs.begin(), subs.end(), [&key](const auto& a, const auto& b) {
    const auto ua = a.second.times_us.count(key) ? a.second.times_us.at(key)
                                                 : std::uint64_t{0};
    const auto ub = b.second.times_us.count(key) ? b.second.times_us.at(key)
                                                 : std::uint64_t{0};
    if (ua != ub) return ua > ub;
    return a.first < b.first;
  });
  if (subs.size() > k) subs.resize(k);
  return subs;
}

std::map<std::string, std::uint64_t> PathTree::timeByTag(
    const std::string& prefix, const std::string& key) const {
  std::map<std::string, std::uint64_t> by_tag;
  for (const auto& [id, n] : nodes_) {
    if (!n.ended) continue;
    const std::uint64_t us = n.timeUs(key);
    for (const std::string& tag : n.tags)
      if (tag.rfind(prefix, 0) == 0) by_tag[tag] += us;
  }
  return by_tag;
}

std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
PathTree::qcacheByWorker() const {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> by_worker;
  for (const auto& [id, n] : nodes_) {
    if (!n.ended || (n.qc_hits == 0 && n.qc_misses == 0)) continue;
    auto& [hits, misses] = by_worker[n.qc_worker];
    hits += n.qc_hits;
    misses += n.qc_misses;
  }
  return by_worker;
}

std::string PathTree::renderReport(std::size_t top_k) const {
  std::ostringstream os;
  const TreeCounts c = counts();
  os << "exploration tree: " << c.total() << " paths (completed="
     << c.completed << " errors=" << c.error << " infeasible=" << c.infeasible
     << " limited=" << c.limited << " unexplored=" << c.unexplored
     << "), instr=" << c.instructions << ", tests=" << c.tests
     << ", jobs=" << jobs_ << ", searcher=" << searcher_ << "\n";
  os << "solver time total: " << totalUs("solver") << " us";
  if (totalUs("rtl") || totalUs("iss"))
    os << " (rtl " << totalUs("rtl") << " us, iss " << totalUs("iss")
       << " us)";
  os << "\n";

  os << "top paths by solver time:\n";
  for (const PathNode* n : topPaths(top_k, "solver")) {
    os << "  path " << n->id << ": " << n->solverUs() << " us, "
       << n->instructions << " instr, end=" << n->end;
    std::string classes;
    for (const std::string& tag : n->tags)
      if (tag.rfind("class:", 0) == 0)
        classes += (classes.empty() ? "" : ",") + tag.substr(6);
    if (!classes.empty()) os << ", classes=" << classes;
    os << "\n";
  }

  const auto subs = topSubtrees(top_k, "solver");
  if (!subs.empty()) {
    os << "top root subtrees by solver time:\n";
    for (const auto& [id, s] : subs)
      os << "  subtree @" << id << ": " << s.solverUs() << " us across "
         << s.paths << " paths (" << s.solver_checks << " checks)\n";
  }

  const auto by_worker = qcacheByWorker();
  if (!by_worker.empty()) {
    os << "query cache by worker (committed paths):\n";
    std::uint64_t th = 0, tm = 0;
    for (const auto& [worker, hm] : by_worker) {
      const std::uint64_t lookups = hm.first + hm.second;
      os << "  worker " << worker << ": " << hm.first << " hits / "
         << hm.second << " misses";
      if (lookups)
        os << " (" << (100 * hm.first / lookups) << "% hit)";
      os << "\n";
      th += hm.first;
      tm += hm.second;
    }
    os << "  total: " << th << " hits / " << tm << " misses\n";
  }

  const auto by_class = timeByTag("class:", "solver");
  if (!by_class.empty()) {
    // Dominating instruction classes, most expensive first.
    std::vector<std::pair<std::string, std::uint64_t>> sorted(
        by_class.begin(), by_class.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    os << "solver time by instruction class (paths touching the class):\n";
    for (const auto& [tag, us] : sorted)
      os << "  " << tag.substr(6) << ": " << us << " us\n";
  }
  return os.str();
}

}  // namespace rvsym::obs::analyze
