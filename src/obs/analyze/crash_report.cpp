#include "obs/analyze/crash_report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/analyze/json_reader.hpp"

namespace rvsym::obs::analyze {
namespace {

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fmtSeconds(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(us) / 1e6);
  return buf;
}

const char* solverVerdictName(std::uint64_t v) {
  switch (v) {
    case 0: return "sat";
    case 1: return "unsat";
    case 2: return "unknown";
  }
  return "?";
}

const char* mutantVerdictName(std::uint64_t v) {
  switch (v) {
    case 0: return "killed";
    case 1: return "survived";
    case 2: return "equivalent";
  }
  return "?";
}

/// One timeline line's event-specific tail ("path 12 end=completed ...").
std::string describeEvent(const CrashEvent& e) {
  char buf[160];
  if (e.ev == "path_commit") {
    std::snprintf(buf, sizeof buf, "path %llu end=%s instr=%llu",
                  static_cast<unsigned long long>(e.a),
                  e.tag.empty() ? "?" : e.tag.c_str(),
                  static_cast<unsigned long long>(e.c));
  } else if (e.ev == "solver_begin") {
    std::snprintf(buf, sizeof buf,
                  "solver begin %016llx%016llx constraints=%llu kind=%s",
                  static_cast<unsigned long long>(e.b),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.c),
                  e.tag.empty() ? "?" : e.tag.c_str());
  } else if (e.ev == "solver_end") {
    std::snprintf(buf, sizeof buf, "solver end   %016llx verdict=%s in %lluus",
                  static_cast<unsigned long long>(e.a),
                  solverVerdictName(e.b),
                  static_cast<unsigned long long>(e.c));
  } else if (e.ev == "phase") {
    std::snprintf(buf, sizeof buf, "phase %s depth=%llu",
                  e.tag.empty() ? "?" : e.tag.c_str(),
                  static_cast<unsigned long long>(e.a));
  } else if (e.ev == "mutant_begin") {
    std::snprintf(buf, sizeof buf, "mutant #%llu (%s) begin",
                  static_cast<unsigned long long>(e.a),
                  e.tag.empty() ? "?" : e.tag.c_str());
  } else if (e.ev == "mutant_verdict") {
    std::snprintf(buf, sizeof buf, "mutant #%llu (%s) %s",
                  static_cast<unsigned long long>(e.a),
                  e.tag.empty() ? "?" : e.tag.c_str(),
                  mutantVerdictName(e.b));
  } else {
    std::snprintf(buf, sizeof buf, "%s %llu %llu %llu %s", e.ev.c_str(),
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b),
                  static_cast<unsigned long long>(e.c), e.tag.c_str());
  }
  return buf;
}

}  // namespace

std::optional<CrashBundle> loadCrashBundle(const std::string& dir,
                                           std::string* err) {
  const auto setErr = [&](std::string msg) {
    if (err) *err = std::move(msg);
    return std::nullopt;
  };

  const auto manifest_text = readFile(dir + "/manifest.json");
  if (!manifest_text)
    return setErr("cannot read " + dir + "/manifest.json (not a bundle?)");
  std::string perr;
  const auto manifest = parseJson(*manifest_text, &perr);
  if (!manifest || !manifest->isObject())
    return setErr("malformed manifest.json: " + perr);
  const auto schema = manifest->getString("schema");
  if (!schema || *schema != "rvsym-crash-v1")
    return setErr("unexpected schema '" + schema.value_or("") +
                  "' (want rvsym-crash-v1)");

  CrashBundle b;
  b.dir = dir;
  b.reason = manifest->getString("reason").value_or("");
  b.tool = manifest->getString("tool").value_or("");
  b.signal = static_cast<int>(manifest->getU64("signal").value_or(0));
  b.signal_name = manifest->getString("signal_name").value_or("");
  b.pid = manifest->getU64("pid").value_or(0);
  b.t_us = manifest->getU64("t_us").value_or(0);
  if (const JsonValue* j = manifest->find("journal"); j && j->isObject()) {
    b.has_journal = true;
    b.journal_path = j->getString("path").value_or("");
    b.journal_judged = j->getU64("judged").value_or(0);
  }
  if (const JsonValue* threads = manifest->find("threads");
      threads && threads->isArray()) {
    for (const JsonValue& t : threads->items()) {
      if (!t.isObject()) continue;
      CrashThread th;
      th.slot = static_cast<std::size_t>(t.getU64("slot").value_or(0));
      th.name = t.getString("name").value_or("");
      th.events = t.getU64("events").value_or(0);
      th.busy = t.getBool("busy").value_or(false);
      th.busy_us = t.getU64("busy_us").value_or(0);
      th.idle_us = t.getU64("idle_us").value_or(0);
      th.inflight = t.getBool("inflight").value_or(false);
      th.stalled = t.getBool("stalled").value_or(false);
      b.threads.push_back(std::move(th));
    }
  }

  // Ring events: one JSON object per line; skip unparsable lines (a
  // fatal dump may have been truncated mid-write).
  if (const auto rings = readFile(dir + "/flightrec.jsonl")) {
    std::istringstream in(*rings);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto v = parseJson(line);
      if (!v || !v->isObject()) continue;
      CrashEvent e;
      e.slot = static_cast<std::size_t>(v->getU64("slot").value_or(0));
      e.name = v->getString("name").value_or("");
      e.index = v->getU64("i").value_or(0);
      e.t_us = v->getU64("t_us").value_or(0);
      e.ev = v->getString("ev").value_or("");
      e.a = v->getU64("a").value_or(0);
      e.b = v->getU64("b").value_or(0);
      e.c = v->getU64("c").value_or(0);
      e.tag = v->getString("tag").value_or("");
      b.events.push_back(std::move(e));
    }
  }
  std::stable_sort(b.events.begin(), b.events.end(),
                   [](const CrashEvent& x, const CrashEvent& y) {
                     return x.t_us < y.t_us;
                   });

  for (const CrashThread& th : b.threads) {
    const auto q =
        readFile(dir + "/inflight-" + std::to_string(th.slot) + ".query");
    if (q) b.inflight[th.slot] = *q;
  }
  if (const auto stacks = readFile(dir + "/stacks.txt")) b.stacks = *stacks;
  return b;
}

std::vector<QueryTimelineEntry> solverQueryTimeline(const CrashBundle& b) {
  std::vector<QueryTimelineEntry> out;
  // Per-slot index of the youngest unmatched begin. Solver queries do
  // not nest within one thread, so matching the most recent open begin
  // on the same slot is exact.
  std::map<std::size_t, std::size_t> open;
  for (const CrashEvent& e : b.events) {
    if (e.ev == "solver_begin") {
      QueryTimelineEntry q;
      q.slot = e.slot;
      q.thread = e.name;
      q.t_us = e.t_us;
      q.hash_lo = e.a;
      q.hash_hi = e.b;
      q.constraints = e.c;
      q.kind = e.tag;
      open[e.slot] = out.size();
      out.push_back(std::move(q));
    } else if (e.ev == "solver_end") {
      const auto it = open.find(e.slot);
      if (it == open.end()) continue;  // begin fell off the ring
      QueryTimelineEntry& q = out[it->second];
      if (q.hash_lo == e.a) {  // hash lo echoed in the end event
        q.completed = true;
        q.verdict = e.b;
        q.solve_us = e.c;
      }
      open.erase(it);
    }
  }
  return out;
}

std::vector<InFlightMutant> inFlightMutants(const CrashBundle& b) {
  // Per slot: the last MutantBegin wins; a later MutantVerdict for the
  // same enumeration index (on any slot — the committer emits verdicts
  // on its own ring) retires it.
  std::map<std::size_t, InFlightMutant> begun;
  for (const CrashEvent& e : b.events) {
    if (e.ev == "mutant_begin") {
      InFlightMutant m;
      m.enum_index = e.a;
      m.id_prefix = e.tag;
      m.slot = e.slot;
      m.thread = e.name;
      m.t_us = e.t_us;
      begun[e.slot] = std::move(m);
    } else if (e.ev == "mutant_verdict") {
      for (auto it = begun.begin(); it != begun.end();) {
        if (it->second.enum_index == e.a) it = begun.erase(it);
        else ++it;
      }
    }
  }
  std::vector<InFlightMutant> out;
  out.reserve(begun.size());
  for (auto& [slot, m] : begun) out.push_back(std::move(m));
  return out;
}

std::string renderCrashReport(const CrashBundle& b,
                              std::size_t timeline_events,
                              std::size_t last_queries) {
  std::string out;
  char buf[256];

  out += "crash bundle: " + b.dir + "\n";
  out += "  reason:  " + b.reason;
  if (b.signal != 0) {
    std::snprintf(buf, sizeof buf, " (signal %d %s)", b.signal,
                  b.signal_name.c_str());
    out += buf;
  }
  out += "\n";
  std::snprintf(buf, sizeof buf, "  tool:    %s   pid %llu   t=%s\n",
                b.tool.empty() ? "?" : b.tool.c_str(),
                static_cast<unsigned long long>(b.pid),
                fmtSeconds(b.t_us).c_str());
  out += buf;
  if (b.has_journal) {
    std::snprintf(buf, sizeof buf, "  journal: %s — %llu mutants judged\n",
                  b.journal_path.c_str(),
                  static_cast<unsigned long long>(b.journal_judged));
    out += buf;
  }

  out += "\nthreads:\n";
  out += "  slot name              events  state\n";
  for (const CrashThread& th : b.threads) {
    std::string state;
    if (th.busy) {
      state = "busy";
      if (th.busy_us != 0) state += " " + fmtSeconds(th.busy_us);
    } else {
      state = "idle";
      if (th.idle_us != 0) state += " " + fmtSeconds(th.idle_us);
    }
    if (th.stalled) state += "  STALLED";
    if (th.inflight) state += "  [query in flight]";
    std::snprintf(buf, sizeof buf, "  %-4zu %-16s %7llu  %s\n", th.slot,
                  th.name.c_str(), static_cast<unsigned long long>(th.events),
                  state.c_str());
    out += buf;
  }

  // Stall attribution: what was each stalled thread doing?
  for (const CrashThread& th : b.threads) {
    if (!th.stalled) continue;
    out += "\nstall: thread " + th.name;
    std::snprintf(buf, sizeof buf, " (slot %zu) busy %s without progress\n",
                  th.slot, fmtSeconds(th.busy_us).c_str());
    out += buf;
    const CrashEvent* last = nullptr;
    for (const CrashEvent& e : b.events)
      if (e.slot == th.slot) last = &e;
    if (last)
      out += "  last event: " + describeEvent(*last) + " at t=" +
             fmtSeconds(last->t_us) + "\n";
    if (b.inflight.count(th.slot))
      out += "  a solver query was in flight (see below)\n";
  }

  if (!b.events.empty()) {
    const std::size_t n = std::min(timeline_events, b.events.size());
    std::snprintf(buf, sizeof buf, "\ntimeline (last %zu of %zu events):\n",
                  n, b.events.size());
    out += buf;
    for (std::size_t i = b.events.size() - n; i < b.events.size(); ++i) {
      const CrashEvent& e = b.events[i];
      std::snprintf(buf, sizeof buf, "  t=%-10s %-16s %s\n",
                    fmtSeconds(e.t_us).c_str(), e.name.c_str(),
                    describeEvent(e).c_str());
      out += buf;
    }
  }

  const std::vector<QueryTimelineEntry> queries = solverQueryTimeline(b);
  if (!queries.empty()) {
    const std::size_t n = std::min(last_queries, queries.size());
    std::snprintf(buf, sizeof buf, "\nsolver queries (last %zu of %zu):\n",
                  n, queries.size());
    out += buf;
    for (std::size_t i = queries.size() - n; i < queries.size(); ++i) {
      const QueryTimelineEntry& q = queries[i];
      if (q.completed) {
        std::snprintf(buf, sizeof buf,
                      "  t=%-10s %-16s %016llx%016llx %-5s %4llu "
                      "constraints -> %s in %lluus\n",
                      fmtSeconds(q.t_us).c_str(), q.thread.c_str(),
                      static_cast<unsigned long long>(q.hash_hi),
                      static_cast<unsigned long long>(q.hash_lo),
                      q.kind.c_str(),
                      static_cast<unsigned long long>(q.constraints),
                      solverVerdictName(q.verdict),
                      static_cast<unsigned long long>(q.solve_us));
      } else {
        std::snprintf(buf, sizeof buf,
                      "  t=%-10s %-16s %016llx%016llx %-5s %4llu "
                      "constraints -> IN FLIGHT\n",
                      fmtSeconds(q.t_us).c_str(), q.thread.c_str(),
                      static_cast<unsigned long long>(q.hash_hi),
                      static_cast<unsigned long long>(q.hash_lo),
                      q.kind.c_str(),
                      static_cast<unsigned long long>(q.constraints));
      }
      out += buf;
    }
  }

  const std::vector<InFlightMutant> mutants = inFlightMutants(b);
  if (!mutants.empty()) {
    out += "\nmutants in flight (begun, never committed):\n";
    for (const InFlightMutant& m : mutants) {
      std::snprintf(buf, sizeof buf,
                    "  #%llu (%s…) on thread %s since t=%s\n",
                    static_cast<unsigned long long>(m.enum_index),
                    m.id_prefix.c_str(), m.thread.c_str(),
                    fmtSeconds(m.t_us).c_str());
      out += buf;
    }
  }

  for (const auto& [slot, query] : b.inflight) {
    std::string thread_name;
    for (const CrashThread& th : b.threads)
      if (th.slot == slot) thread_name = th.name;
    std::snprintf(buf, sizeof buf,
                  "\nin-flight query (slot %zu, %s) — first lines:\n", slot,
                  thread_name.c_str());
    out += buf;
    std::istringstream in(query);
    std::string line;
    for (int i = 0; i < 10 && std::getline(in, line); ++i)
      out += "  | " + line + "\n";
    if (in.peek() != EOF) out += "  | ...\n";
  }

  if (!b.stacks.empty())
    out += "\nper-thread stacks: see " + b.dir + "/stacks.txt\n";
  return out;
}

}  // namespace rvsym::obs::analyze
