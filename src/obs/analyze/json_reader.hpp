// Minimal JSON reader for the offline analysis layer.
//
// The runtime side of the observability stack is strictly streaming
// (obs::JsonWriter renders, JsonlTraceSink appends); the analysis side
// needs the inverse: parse the JSONL trace lines, --metrics-out
// documents and coverage maps back into a DOM it can query. This is a
// small recursive-descent parser over the JSON subset those emitters
// produce (which is all of JSON minus extensions: no comments, no
// trailing commas, no NaN literals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rvsym::obs {
class JsonWriter;  // obs/json.hpp
}

namespace rvsym::obs::analyze {

/// One parsed JSON value. Objects preserve nothing about key order (the
/// consumers key by name); duplicate keys keep the last occurrence, as
/// most JSON libraries do.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool asBool() const { return bool_; }
  double asDouble() const { return num_; }
  std::uint64_t asU64() const { return static_cast<std::uint64_t>(num_); }
  std::int64_t asI64() const { return static_cast<std::int64_t>(num_); }
  const std::string& asString() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Typed convenience lookups (nullopt when the member is absent or has
  // the wrong type) — the idiom every trace-event consumer uses.
  std::optional<double> getNumber(std::string_view key) const;
  std::optional<std::uint64_t> getU64(std::string_view key) const;
  std::optional<std::string> getString(std::string_view key) const;
  std::optional<bool> getBool(std::string_view key) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool b);
  static JsonValue makeNumber(double d);
  static JsonValue makeString(std::string s);
  static JsonValue makeArray(std::vector<JsonValue> items);
  static JsonValue makeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parses one JSON document. Returns nullopt on any syntax error
/// (optionally reporting a human-readable reason and byte offset).
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* error = nullptr);

/// Re-renders a parsed value through the streaming writer, as one value
/// (object members in map order — parsing does not preserve insertion
/// order). The round-trip tool for consumers that rewrite documents
/// they parsed, e.g. the chrome-trace merger.
void writeJson(JsonWriter& w, const JsonValue& v);

}  // namespace rvsym::obs::analyze
