// Run diffing — the determinism checker built on the analysis layer.
//
// The trace contract promises that for a fixed workload everything but
// the t_*/qc_* fields is byte-identical across --jobs values. This
// module turns that promise into a checkable artifact: load two runs
// (trace + optional metrics), reconstruct both path trees and coverage
// maps, and report every structural difference — used in CI to assert
// jobs=1 vs jobs=N parity, and by hand to compare runs across code
// revisions or fault configurations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "obs/analyze/path_tree.hpp"

namespace rvsym::obs::analyze {

/// One loaded run: the reconstructed tree plus its coverage replay.
struct RunArtifacts {
  std::string trace_path;
  PathTree tree;
  core::CoverageCollector coverage;
};

/// Loads a run from `path`: either a trace file itself, or a directory
/// containing one (tried in order: trace.jsonl, run.jsonl, the only
/// *.jsonl file). Returns nullopt with a reason on failure.
std::optional<RunArtifacts> loadRun(const std::string& path,
                                    std::string* error = nullptr);

struct DiffResult {
  /// Human-readable differences, one per entry; empty means the two
  /// runs are identical in every deterministic dimension.
  std::vector<std::string> differences;

  bool identical() const { return differences.empty(); }
  std::string render() const;
};

/// Compares the deterministic content of two runs: tree shape (per-id
/// parent/children), per-path verdicts, instruction counts, decisions,
/// tags, test vectors and messages — the t_*/qc_* fields are excluded
/// by construction since PathNode keeps them separately — plus the
/// coverage maps (opcode, decoder-cell, CSR, trap-cause and
/// voter-channel sets).
DiffResult diffRuns(const RunArtifacts& a, const RunArtifacts& b);

}  // namespace rvsym::obs::analyze
