#include "obs/analyze/json_reader.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "obs/json.hpp"

namespace rvsym::obs::analyze {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = members_.find(std::string(key));
  return it == members_.end() ? nullptr : &it->second;
}

std::optional<double> JsonValue::getNumber(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v || !v->isNumber()) return std::nullopt;
  return v->asDouble();
}

std::optional<std::uint64_t> JsonValue::getU64(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v || !v->isNumber()) return std::nullopt;
  return v->asU64();
}

std::optional<std::string> JsonValue::getString(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v || !v->isString()) return std::nullopt;
  return v->asString();
}

std::optional<bool> JsonValue::getBool(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v || !v->isBool()) return std::nullopt;
  return v->asBool();
}

JsonValue JsonValue::makeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::makeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}
JsonValue JsonValue::makeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}
JsonValue JsonValue::makeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}
JsonValue JsonValue::makeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skipWs();
    std::optional<JsonValue> v = parseValue();
    if (!v) return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* why) {
    if (error_ && error_->empty())
      *error_ = std::string(why) + " at byte " + std::to_string(pos_);
  }

  bool atEnd() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!atEnd()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (atEnd() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parseValue() {
    if (atEnd()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        std::optional<std::string> s = parseString();
        if (!s) return std::nullopt;
        return JsonValue::makeString(std::move(*s));
      }
      case 't':
        if (consumeLiteral("true")) return JsonValue::makeBool(true);
        fail("bad literal");
        return std::nullopt;
      case 'f':
        if (consumeLiteral("false")) return JsonValue::makeBool(false);
        fail("bad literal");
        return std::nullopt;
      case 'n':
        if (consumeLiteral("null")) return JsonValue::makeNull();
        fail("bad literal");
        return std::nullopt;
      default: return parseNumber();
    }
  }

  std::optional<JsonValue> parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (!atEnd() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' || peek() == '+' ||
                        peek() == '-'))
      ++pos_;
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    // strtod needs a NUL-terminated buffer; numbers are short.
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue::makeNumber(d);
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (atEnd()) {
        fail("unterminated string");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::optional<unsigned> cp = parseHex4();
          if (!cp) return std::nullopt;
          unsigned code = *cp;
          // Surrogate pair → one code point.
          if (code >= 0xD800 && code <= 0xDBFF && consumeLiteral("\\u")) {
            std::optional<unsigned> low = parseHex4();
            if (!low) return std::nullopt;
            if (*low >= 0xDC00 && *low <= 0xDFFF)
              code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          }
          appendUtf8(out, code);
          break;
        }
        default:
          fail("bad escape");
          return std::nullopt;
      }
    }
  }

  std::optional<unsigned> parseHex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        fail("bad \\u escape");
        return std::nullopt;
      }
    }
    return v;
  }

  static void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<JsonValue> parseArray() {
    consume('[');
    std::vector<JsonValue> items;
    skipWs();
    if (consume(']')) return JsonValue::makeArray(std::move(items));
    while (true) {
      skipWs();
      std::optional<JsonValue> v = parseValue();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skipWs();
      if (consume(']')) return JsonValue::makeArray(std::move(items));
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parseObject() {
    consume('{');
    std::map<std::string, JsonValue> members;
    skipWs();
    if (consume('}')) return JsonValue::makeObject(std::move(members));
    while (true) {
      skipWs();
      std::optional<std::string> key = parseString();
      if (!key) return std::nullopt;
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      skipWs();
      std::optional<JsonValue> v = parseValue();
      if (!v) return std::nullopt;
      members[std::move(*key)] = std::move(*v);
      skipWs();
      if (consume('}')) return JsonValue::makeObject(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

void writeJson(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      w.nullValue();
      break;
    case JsonValue::Kind::Bool:
      w.value(v.asBool());
      break;
    case JsonValue::Kind::Number:
      w.value(v.asDouble());
      break;
    case JsonValue::Kind::String:
      w.value(v.asString());
      break;
    case JsonValue::Kind::Array:
      w.beginArray();
      for (const JsonValue& item : v.items()) writeJson(w, item);
      w.endArray();
      break;
    case JsonValue::Kind::Object:
      w.beginObject();
      for (const auto& [key, val] : v.members()) {
        w.key(key);
        writeJson(w, val);
      }
      w.endObject();
      break;
  }
}

}  // namespace rvsym::obs::analyze
