#include "obs/analyze/jsonl.hpp"

#include <fstream>

namespace rvsym::obs::analyze {

namespace {

constexpr std::size_t kTailSnippet = 120;

std::string snippet(std::string_view s) {
  if (s.size() <= kTailSnippet) return std::string(s);
  return std::string(s.substr(0, kTailSnippet)) + "...";
}

}  // namespace

std::string JsonlStats::describe(const std::string& path) const {
  if (clean() && !truncated_tail) return "";
  std::string out = path + ":";
  if (torn_tail) {
    out += " final line torn mid-write (\"" + tail + "\"), record lost";
  } else if (truncated_tail) {
    out += " final line missing its newline (writer interrupted)";
  }
  if (malformed > 0) {
    if (torn_tail || truncated_tail) out += ";";
    out += " " + std::to_string(malformed) + " malformed line" +
           (malformed == 1 ? "" : "s") + " skipped";
    if (!first_error.empty()) out += " (first: " + first_error + ")";
  }
  return out;
}

void JsonlDecoder::feed(std::string_view chunk, const LineFn& fn) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = chunk.find('\n', start);
    if (nl == std::string_view::npos) break;
    ++lineno_;
    ++stats_.lines;
    ++stats_.delivered;
    if (partial_.empty()) {
      fn(chunk.substr(start, nl - start), lineno_, false);
    } else {
      partial_.append(chunk.substr(start, nl - start));
      fn(partial_, lineno_, false);
      partial_.clear();
    }
    start = nl + 1;
  }
  partial_.append(chunk.substr(start));
}

void JsonlDecoder::finish(const LineFn& fn) {
  if (partial_.empty()) return;
  ++lineno_;
  ++stats_.delivered;
  stats_.truncated_tail = true;
  stats_.tail = snippet(partial_);
  std::string tail;
  tail.swap(partial_);
  fn(tail, lineno_, true);
}

void JsonlDecoder::reset() {
  partial_.clear();
  lineno_ = 0;
  stats_ = JsonlStats{};
}

std::optional<JsonlStats> forEachJsonlLine(const std::string& path,
                                           const JsonlDecoder::LineFn& fn,
                                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  JsonlDecoder dec;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0)
    dec.feed(std::string_view(buf, static_cast<std::size_t>(in.gcount())),
             fn);
  dec.finish(fn);
  return dec.stats();
}

std::optional<JsonlStats> forEachJsonlValue(const std::string& path,
                                            const JsonlValueFn& fn,
                                            JsonlMalformed policy,
                                            std::string* error) {
  bool failed = false;
  std::size_t delivered = 0;
  std::size_t malformed = 0;
  bool torn_tail = false;
  std::string first_error;
  auto stats = forEachJsonlLine(
      path,
      [&](std::string_view line, std::size_t lineno, bool truncated) {
        if (failed || line.empty()) return;
        std::string perr;
        std::optional<JsonValue> v = parseJson(line, &perr);
        if (v) {
          ++delivered;
          fn(std::move(*v), lineno);
          return;
        }
        if (truncated) {
          // The record straddling the crash: its bytes are gone, so it
          // is a torn tail for the caller to report — never malformed
          // data and never (even under Fail) an error.
          torn_tail = true;
          return;
        }
        ++malformed;
        if (first_error.empty())
          first_error = "line " + std::to_string(lineno) + ": " + perr;
        if (policy == JsonlMalformed::Fail) {
          failed = true;
          if (error)
            *error = path + ": line " + std::to_string(lineno) + ": " + perr;
        }
      },
      error);
  if (!stats || failed) return std::nullopt;
  JsonlStats out = *stats;
  out.delivered = delivered;
  out.malformed = malformed;
  out.torn_tail = torn_tail;
  out.first_error = std::move(first_error);
  return out;
}

}  // namespace rvsym::obs::analyze
