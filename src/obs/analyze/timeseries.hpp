// Offline consumption of rvsym-timeseries-v1 streams (the live JSONL
// the TimeseriesSampler appends; see obs/timeseries.hpp for the
// producer-side schema and determinism contract).
//
// Three consumers share this module:
//  * rvsym-top tails a growing stream (or a --status-file object) and
//    renders the live terminal view — it parses records incrementally
//    via parseTimeseriesRecord;
//  * `rvsym-report timeseries FILE` loads a finished stream and prints
//    the run summary plus ASCII rate/latency plots (renderSummary);
//  * `rvsym-report timeseries A B` diffs two finished runs on exactly
//    the deterministic surface — header identity plus the ts_final
//    record with every t_*/qc_*-prefixed field stripped — turning the
//    sampler's --jobs parity promise into a checkable artifact, the
//    same role analyze/diff.hpp plays for traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/analyze/json_reader.hpp"
#include "obs/analyze/jsonl.hpp"

namespace rvsym::obs::analyze {

/// One parsed `sample` record (absent sections read as zeros; `has_*`
/// mirrors the producer's section flags).
struct TimeseriesSample {
  std::uint64_t seq = 0;
  double t_s = 0;

  bool has_paths = false;
  std::uint64_t paths_done = 0, paths_completed = 0, paths_errors = 0;
  std::uint64_t paths_partial = 0, worklist = 0, instr = 0;

  bool has_campaign = false;
  std::uint64_t mutants_total = 0, mutants_judged = 0, mutants_killed = 0;
  std::uint64_t mutants_survived = 0, mutants_equivalent = 0;

  bool has_work = false;
  std::string work_label;
  std::uint64_t work_done = 0, work_total = 0;

  bool has_solver = false;
  double solver_qps = 0;
  std::uint64_t solver_solves = 0;
  std::uint64_t p50_us = 0, p90_us = 0, p99_us = 0;
  std::uint64_t slow = 0;
  std::uint64_t answered_exact = 0, answered_cexm = 0, answered_cexc = 0;
  std::uint64_t answered_rw = 0, answered_sliced = 0;
  std::uint64_t qcache_hits = 0, qcache_misses = 0;
  double qcache_hit_rate = 0;

  std::string extra;

  /// Done-vs-total in whichever progress vocabulary the producer used
  /// (paths, mutants, generic work units). total 0 = open-ended.
  std::uint64_t done() const;
  std::uint64_t total() const;
};

struct TimeseriesHeader {
  std::string kind;
  double interval_s = 0;
  std::uint64_t total_work = 0;
  int version = 0;
};

/// One whole loaded stream.
struct TimeseriesRun {
  std::string path;
  TimeseriesHeader header;
  std::vector<TimeseriesSample> samples;
  /// The raw ts_final record, if the stream was closed cleanly.
  std::optional<JsonValue> final_record;
  /// What loading saw beyond the records above — in particular a final
  /// line torn by a killed writer, which used to fail the whole load.
  JsonlStats scan;
};

/// Parses one sample object (already identified as ev == "sample" — or
/// the "sample" member of a status file).
TimeseriesSample parseTimeseriesSample(const JsonValue& v);

/// Parses one JSONL line of a stream. Recognized records update `run`
/// (header / samples / final_record); unknown `ev` values are skipped
/// so the schema can grow. Returns false only on a JSON syntax error.
bool parseTimeseriesRecord(std::string_view line, TimeseriesRun& run,
                           std::string* error = nullptr);

/// Loads a finished stream from disk. Accepts a stream that is missing
/// its ts_final record (an interrupted run) — final_record stays empty —
/// and a final line torn mid-write by a killed sampler, which is
/// recorded in run.scan rather than dropped silently or failing the
/// load. A malformed *complete* line is still a hard error.
std::optional<TimeseriesRun> loadTimeseries(const std::string& path,
                                            std::string* error = nullptr);

/// The ts_final record with every t_*/qc_*-prefixed top-level member
/// removed, re-serialized with sorted keys — the canonical byte string
/// two runs of the same workload must agree on regardless of --jobs.
std::string canonicalFinal(const JsonValue& final_record);

/// Run summary plus ASCII time plots (sample rate, progress,
/// solver qps and p99) — the offline "plot" mode of rvsym-report.
std::string renderTimeseriesSummary(const TimeseriesRun& run);

/// Diffs the deterministic surface of two runs: header kind/total_work
/// and the canonicalized ts_final records. Each difference is one
/// human-readable line; empty = parity holds.
std::vector<std::string> diffTimeseries(const TimeseriesRun& a,
                                        const TimeseriesRun& b);

}  // namespace rvsym::obs::analyze
