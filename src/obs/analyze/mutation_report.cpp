#include "obs/analyze/mutation_report.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/analyze/json_reader.hpp"
#include "obs/json.hpp"

namespace rvsym::obs::analyze {

namespace {

MutationEntry entryFromJson(const JsonValue& v) {
  MutationEntry e;
  e.mutant = v.getString("mutant").value_or("");
  e.kind = v.getString("kind").value_or("");
  e.op = v.getString("op").value_or("");
  e.verdict = v.getString("verdict").value_or("");
  e.kill_instr_limit =
      static_cast<unsigned>(v.getU64("kill_instr_limit").value_or(0));
  e.kill_message = v.getString("kill_message").value_or("");
  e.kill_test = v.getString("kill_test").value_or("");
  e.instructions = v.getU64("instructions").value_or(0);
  e.paths = v.getU64("paths").value_or(0);
  e.partial_paths = v.getU64("partial_paths").value_or(0);
  e.solver_checks = v.getU64("solver_checks").value_or(0);
  e.t_seconds = v.getNumber("t_seconds").value_or(0);
  e.qc_hits = v.getU64("qc_hits").value_or(0);
  e.qc_misses = v.getU64("qc_misses").value_or(0);
  return e;
}

bool isTimingKey(const std::string& key) {
  return key.rfind("t_", 0) == 0 || key.rfind("qc_", 0) == 0;
}

/// Re-serializes a parsed value with object members in sorted key order
/// (JsonValue::members() is a std::map) and timing keys dropped.
void emitCanonical(const JsonValue& v, JsonWriter& w, bool strip_timing) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: w.nullValue(); break;
    case JsonValue::Kind::Bool: w.value(v.asBool()); break;
    case JsonValue::Kind::Number: w.value(v.asDouble()); break;
    case JsonValue::Kind::String: w.value(v.asString()); break;
    case JsonValue::Kind::Array:
      w.beginArray();
      for (const JsonValue& item : v.items())
        emitCanonical(item, w, strip_timing);
      w.endArray();
      break;
    case JsonValue::Kind::Object:
      w.beginObject();
      for (const auto& [key, member] : v.members()) {
        if (strip_timing && isTimingKey(key)) continue;
        w.key(key);
        emitCanonical(member, w, strip_timing);
      }
      w.endObject();
      break;
  }
}

}  // namespace

std::optional<MutationJournal> loadMutationJournal(const std::string& path,
                                                   std::string* error,
                                                   JsonlStats* scan) {
  MutationJournal j;
  bool saw_header = false;
  bool foreign = false;
  std::set<std::string> seen;
  const auto stats = forEachJsonlValue(
      path,
      [&](JsonValue&& v, std::size_t) {
        if (foreign) return;
        if (!saw_header) {
          saw_header = true;
          if (!v.find("rvsym_mutation_campaign")) {
            foreign = true;
            return;
          }
          j.scenario = v.getString("scenario").value_or("");
          j.max_instr_limit = static_cast<unsigned>(
              v.getU64("max_instr_limit").value_or(0));
          j.declared_mutants = v.getU64("mutants").value_or(0);
          return;
        }
        if (!v.getString("mutant")) return;  // foreign record kind
        MutationEntry e = entryFromJson(v);
        // Two campaigns racing one journal can duplicate entries; the
        // first committed verdict wins, as in a single campaign.
        if (!seen.insert(e.mutant).second) return;
        j.entries.push_back(std::move(e));
      },
      JsonlMalformed::Skip, error);
  if (!stats) return std::nullopt;
  if (foreign || !saw_header) {
    if (error)
      *error = stats->lines == 0 && !stats->truncated_tail
                   ? path + " is empty"
                   : path + " is not a mutation-campaign journal";
    return std::nullopt;
  }
  if (scan) *scan = *stats;
  return j;
}

MutationSummary summarizeMutationJournal(const MutationJournal& journal) {
  MutationSummary s;
  for (const MutationEntry& e : journal.entries) {
    MutationSummary::Cell* cells[] = {
        &s.by_op_kind[e.op][e.kind],
        &s.by_op_kind[e.op][""],
        &s.by_op_kind[""][e.kind],
    };
    for (MutationSummary::Cell* c : cells) {
      if (e.verdict == "killed") ++c->killed;
      else if (e.verdict == "survived") ++c->survived;
      else if (e.verdict == "equivalent") ++c->equivalent;
    }
    if (e.verdict == "killed") ++s.killed;
    else if (e.verdict == "survived") ++s.survived;
    else if (e.verdict == "equivalent") ++s.equivalent;
  }
  return s;
}

std::string canonicalizeMutationJournal(const std::string& text) {
  std::string out;
  const auto emit = [&](std::string_view line, std::size_t, bool) {
    if (line.empty()) return;
    const auto v = parseJson(line);
    if (!v) {
      out += line;  // keep corruption visible
    } else {
      JsonWriter w;
      emitCanonical(*v, w, /*strip_timing=*/true);
      out += w.str();
    }
    out += '\n';
  };
  JsonlDecoder dec;
  dec.feed(text, emit);
  dec.finish(emit);
  return out;
}

std::vector<std::string> diffMutationJournals(const MutationJournal& a,
                                              const MutationJournal& b) {
  std::vector<std::string> diffs;
  std::map<std::string, const MutationEntry*> bm;
  for (const MutationEntry& e : b.entries) bm[e.mutant] = &e;
  std::map<std::string, const MutationEntry*> am;
  for (const MutationEntry& e : a.entries) am[e.mutant] = &e;

  for (const MutationEntry& ea : a.entries) {
    const auto it = bm.find(ea.mutant);
    if (it == bm.end()) {
      diffs.push_back(ea.mutant + ": only in first journal");
      continue;
    }
    const MutationEntry& eb = *it->second;
    const auto field = [&](const char* name, auto va, auto vb) {
      if (va != vb) {
        std::ostringstream os;
        os << ea.mutant << ": " << name << " " << va << " != " << vb;
        diffs.push_back(os.str());
      }
    };
    field("verdict", ea.verdict, eb.verdict);
    field("kill_instr_limit", ea.kill_instr_limit, eb.kill_instr_limit);
    field("kill_test", ea.kill_test, eb.kill_test);
    field("instructions", ea.instructions, eb.instructions);
    field("paths", ea.paths, eb.paths);
    field("partial_paths", ea.partial_paths, eb.partial_paths);
    field("solver_checks", ea.solver_checks, eb.solver_checks);
  }
  for (const MutationEntry& eb : b.entries)
    if (!am.count(eb.mutant))
      diffs.push_back(eb.mutant + ": only in second journal");
  return diffs;
}

std::string renderMutationHtml(const MutationJournal& journal,
                               const std::string& title) {
  const MutationSummary s = summarizeMutationJournal(journal);
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>" << obs::jsonEscape(title) << "</title>\n"
     << "<style>\n"
        "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n"
        "h1{font-size:1.4em}\n"
        ".section{margin-top:1.5em}\n"
        "td,th{padding:2px 10px;text-align:left}\n"
        ".k{background:#2e7d32;color:#fff}\n"
        ".s{background:#c62828;color:#fff}\n"
        ".e{background:#9e9e9e;color:#fff}\n"
        ".mix{background:#f9a825}\n"
        ".cell{padding:4px 8px;border-radius:4px;font-size:0.85em;"
        "text-align:center;border:1px solid #ccc}\n"
        "</style>\n</head>\n<body>\n"
     << "<h1>" << obs::jsonEscape(title) << "</h1>\n";

  char line[160];
  std::snprintf(line, sizeof line,
                "mutation score %.1f%% — %llu killed / %llu survived / "
                "%llu equivalent (scenario %s, instruction limit %u)",
                100.0 * s.mutationScore(),
                static_cast<unsigned long long>(s.killed),
                static_cast<unsigned long long>(s.survived),
                static_cast<unsigned long long>(s.equivalent),
                journal.scenario.c_str(), journal.max_instr_limit);
  os << "<div class=\"section\"><pre>" << line << "</pre></div>\n";

  // Survivors first — they are the campaign's finding.
  os << "<div class=\"section\"><h2>Survivors</h2>\n";
  bool any = false;
  for (const MutationEntry& e : journal.entries) {
    if (e.verdict != "survived") continue;
    if (!any) os << "<table><tr><th>mutant</th><th>paths</th>"
                    "<th>instructions</th></tr>\n";
    any = true;
    os << "<tr><td>" << obs::jsonEscape(e.mutant) << "</td><td>" << e.paths
       << "</td><td>" << e.instructions << "</td></tr>\n";
  }
  os << (any ? "</table>\n" : "<p>none — every non-equivalent mutant was "
                              "killed.</p>\n")
     << "</div>\n";

  // The op x kind heatmap: one row per target opcode, shaded by verdict
  // mix (all killed = green, any survivor = amber/red).
  os << "<div class=\"section\"><h2>Survivor heatmap (op &times; kind)"
        "</h2>\n<table>\n<tr><th></th>";
  std::vector<std::string> kinds;
  if (const auto it = s.by_op_kind.find(""); it != s.by_op_kind.end())
    for (const auto& [kind, cell] : it->second)
      if (!kind.empty()) kinds.push_back(kind);
  for (const std::string& k : kinds) os << "<th>" << k << "</th>";
  os << "</tr>\n";
  for (const auto& [op, row] : s.by_op_kind) {
    if (op.empty()) continue;
    os << "<tr><th>" << obs::jsonEscape(op) << "</th>";
    for (const std::string& k : kinds) {
      const auto it = row.find(k);
      if (it == row.end() ||
          (it->second.killed + it->second.survived + it->second.equivalent) ==
              0) {
        os << "<td></td>";
        continue;
      }
      const MutationSummary::Cell& c = it->second;
      const char* cls = c.survived == 0 ? (c.killed > 0 ? "k" : "e")
                        : c.killed == 0 ? "s"
                                        : "mix";
      os << "<td class=\"cell " << cls << "\">" << c.killed << "/"
         << (c.killed + c.survived);
      if (c.equivalent) os << " (+" << c.equivalent << "eq)";
      os << "</td>";
    }
    os << "</tr>\n";
  }
  os << "</table>\n<p>cells are killed/(killed+survived); green = all "
        "killed, red = all survived, grey = equivalent only.</p>\n"
        "</div>\n</body>\n</html>\n";
  return os.str();
}

bool writeMutationHtml(const std::string& path, const MutationJournal& journal,
                       const std::string& title) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string html = renderMutationHtml(journal, title);
  const bool ok = std::fwrite(html.data(), 1, html.size(), f) == html.size();
  std::fclose(f);
  return ok;
}

}  // namespace rvsym::obs::analyze
