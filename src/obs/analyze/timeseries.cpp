#include "obs/analyze/timeseries.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace rvsym::obs::analyze {

namespace {

std::uint64_t u64(const JsonValue& obj, std::string_view key) {
  return obj.getU64(key).value_or(0);
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Recursive deterministic re-serialization (members() is a std::map,
/// so object keys come out sorted regardless of input order).
void writeCanonical(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: w.nullValue(); break;
    case JsonValue::Kind::Bool: w.value(v.asBool()); break;
    case JsonValue::Kind::Number: w.value(v.asDouble()); break;
    case JsonValue::Kind::String: w.value(v.asString()); break;
    case JsonValue::Kind::Array:
      w.beginArray();
      for (const JsonValue& item : v.items()) writeCanonical(w, item);
      w.endArray();
      break;
    case JsonValue::Kind::Object:
      w.beginObject();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        writeCanonical(w, member);
      }
      w.endObject();
      break;
  }
}

bool timingDependentKey(const std::string& key) {
  return key.rfind("t_", 0) == 0 || key.rfind("qc_", 0) == 0;
}

/// One fixed-width ASCII plot row: samples bucketed into `width` time
/// columns, each column the bucket mean scaled to a 10-glyph ramp.
std::string sparkline(const std::vector<double>& ys, std::size_t width) {
  static const char ramp[] = " .:-=+*#%@";
  if (ys.empty()) return std::string(width, ' ');
  double max = 0;
  for (const double y : ys) max = std::max(max, y);
  std::string out;
  out.reserve(width);
  for (std::size_t col = 0; col < width; ++col) {
    const std::size_t lo = col * ys.size() / width;
    const std::size_t hi = std::max(lo + 1, (col + 1) * ys.size() / width);
    double sum = 0;
    for (std::size_t i = lo; i < hi && i < ys.size(); ++i) sum += ys[i];
    const double mean = sum / static_cast<double>(hi - lo);
    const std::size_t level =
        max <= 0 ? 0
                 : std::min<std::size_t>(9, static_cast<std::size_t>(
                                               mean / max * 9.0 + 0.5));
    out += ramp[level];
  }
  return out;
}

void plotRow(std::string& out, const char* label,
             const std::vector<double>& ys, const char* unit) {
  double max = 0;
  for (const double y : ys) max = std::max(max, y);
  appendf(out, "  %-12s |%s| peak %.5g%s\n", label,
          sparkline(ys, 50).c_str(), max, unit);
}

}  // namespace

std::uint64_t TimeseriesSample::done() const {
  if (has_campaign) return mutants_judged;
  if (has_work) return work_done;
  return paths_done;
}

std::uint64_t TimeseriesSample::total() const {
  if (has_campaign) return mutants_total;
  if (has_work) return work_total;
  return 0;
}

TimeseriesSample parseTimeseriesSample(const JsonValue& v) {
  TimeseriesSample s;
  s.seq = u64(v, "seq");
  s.t_s = v.getNumber("t_s").value_or(0);
  if (const JsonValue* paths = v.find("paths")) {
    s.has_paths = true;
    s.paths_done = u64(*paths, "done");
    s.paths_completed = u64(*paths, "completed");
    s.paths_errors = u64(*paths, "errors");
    s.paths_partial = u64(*paths, "partial");
    s.worklist = u64(*paths, "worklist");
    s.instr = u64(v, "instr");
  }
  if (const JsonValue* c = v.find("campaign")) {
    s.has_campaign = true;
    s.mutants_total = u64(*c, "total");
    s.mutants_judged = u64(*c, "judged");
    s.mutants_killed = u64(*c, "killed");
    s.mutants_survived = u64(*c, "survived");
    s.mutants_equivalent = u64(*c, "equivalent");
  }
  if (const JsonValue* work = v.find("work")) {
    s.has_work = true;
    s.work_label = work->getString("label").value_or("");
    s.work_done = u64(*work, "done");
    s.work_total = u64(*work, "total");
  }
  if (const JsonValue* sol = v.find("solver")) {
    s.has_solver = true;
    s.solver_qps = sol->getNumber("qps").value_or(0);
    s.solver_solves = u64(*sol, "solves");
    s.p50_us = u64(*sol, "p50_us");
    s.p90_us = u64(*sol, "p90_us");
    s.p99_us = u64(*sol, "p99_us");
    s.slow = u64(*sol, "slow");
    if (const JsonValue* a = sol->find("answered")) {
      s.answered_exact = u64(*a, "exact");
      s.answered_cexm = u64(*a, "cexm");
      s.answered_cexc = u64(*a, "cexc");
      s.answered_rw = u64(*a, "rw");
      s.answered_sliced = u64(*a, "sliced");
    }
  }
  if (const JsonValue* qc = v.find("qcache")) {
    s.qcache_hits = u64(*qc, "hits");
    s.qcache_misses = u64(*qc, "misses");
    s.qcache_hit_rate = qc->getNumber("hit_rate").value_or(0);
  }
  s.extra = v.getString("extra").value_or("");
  return s;
}

bool parseTimeseriesRecord(std::string_view line, TimeseriesRun& run,
                           std::string* error) {
  if (line.empty()) return true;
  const std::optional<JsonValue> v = parseJson(line, error);
  if (!v) return false;
  const std::optional<std::string> ev = v->getString("ev");
  if (!ev) return true;  // not a timeseries record; skip
  if (*ev == "ts_header") {
    run.header.kind = v->getString("kind").value_or("");
    run.header.interval_s = v->getNumber("interval_s").value_or(0);
    run.header.total_work = u64(*v, "total_work");
    run.header.version = static_cast<int>(u64(*v, "version"));
  } else if (*ev == "sample") {
    run.samples.push_back(parseTimeseriesSample(*v));
  } else if (*ev == "ts_final") {
    run.final_record = *v;
  } else if (*ev == "status") {
    // A --status-file document: header fields + the latest sample in
    // one object. Tools can feed it through the same entry point.
    run.header.kind = v->getString("kind").value_or("");
    run.header.interval_s = v->getNumber("interval_s").value_or(0);
    run.header.total_work = u64(*v, "total_work");
    run.header.version = static_cast<int>(u64(*v, "version"));
    if (const JsonValue* sample = v->find("sample"))
      run.samples.push_back(parseTimeseriesSample(*sample));
  }
  return true;
}

std::optional<TimeseriesRun> loadTimeseries(const std::string& path,
                                            std::string* error) {
  TimeseriesRun run;
  run.path = path;
  bool failed = false;
  bool torn = false;
  const auto stats = forEachJsonlLine(
      path,
      [&](std::string_view line, std::size_t lineno, bool truncated) {
        if (failed) return;
        std::string perr;
        if (parseTimeseriesRecord(line, run, &perr)) return;
        // A crash can tear the last line mid-write; that is a fact to
        // surface (run.scan), not a reason to refuse the readable
        // prefix of the stream.
        if (truncated) {
          torn = true;
          return;
        }
        failed = true;
        if (error) *error = path + ":" + std::to_string(lineno) + ": " + perr;
      },
      error);
  if (!stats || failed) return std::nullopt;
  run.scan = *stats;
  run.scan.torn_tail = torn;
  return run;
}

std::string canonicalFinal(const JsonValue& final_record) {
  JsonWriter w;
  w.beginObject();
  for (const auto& [key, member] : final_record.members()) {
    if (timingDependentKey(key)) continue;
    w.key(key);
    writeCanonical(w, member);
  }
  w.endObject();
  return w.str();
}

std::string renderTimeseriesSummary(const TimeseriesRun& run) {
  std::string out;
  appendf(out, "timeseries %s (v%d, kind=%s, interval=%.2fs)\n",
          run.path.c_str(), run.header.version, run.header.kind.c_str(),
          run.header.interval_s);
  if (run.samples.empty()) {
    out += "  no samples\n";
    return out;
  }
  const TimeseriesSample& last = run.samples.back();
  appendf(out, "  %zu samples over %.1fs%s\n", run.samples.size(), last.t_s,
          run.final_record ? "" : " (stream not closed — interrupted run?)");
  if (run.scan.torn_tail)
    appendf(out, "  WARNING: final line torn mid-write (\"%s\")\n",
            run.scan.tail.c_str());
  if (last.has_paths)
    appendf(out,
            "  paths: %llu done (%llu completed, %llu errors, %llu partial), "
            "%llu instructions\n",
            static_cast<unsigned long long>(last.paths_done),
            static_cast<unsigned long long>(last.paths_completed),
            static_cast<unsigned long long>(last.paths_errors),
            static_cast<unsigned long long>(last.paths_partial),
            static_cast<unsigned long long>(last.instr));
  if (last.has_campaign)
    appendf(out,
            "  campaign: %llu/%llu judged — %llu killed, %llu survived, "
            "%llu equivalent\n",
            static_cast<unsigned long long>(last.mutants_judged),
            static_cast<unsigned long long>(last.mutants_total),
            static_cast<unsigned long long>(last.mutants_killed),
            static_cast<unsigned long long>(last.mutants_survived),
            static_cast<unsigned long long>(last.mutants_equivalent));
  if (last.has_work && !last.work_label.empty() &&
      !(last.has_paths && last.work_label == "paths"))
    appendf(out, "  %s: %llu/%llu\n", last.work_label.c_str(),
            static_cast<unsigned long long>(last.work_done),
            static_cast<unsigned long long>(last.work_total));
  if (last.has_solver) {
    appendf(out,
            "  solver: %llu solves, final p50/p90/p99 = %llu/%llu/%llu us, "
            "%llu slow\n",
            static_cast<unsigned long long>(last.solver_solves),
            static_cast<unsigned long long>(last.p50_us),
            static_cast<unsigned long long>(last.p90_us),
            static_cast<unsigned long long>(last.p99_us),
            static_cast<unsigned long long>(last.slow));
    const std::uint64_t no_solve = last.answered_exact + last.answered_cexm +
                                   last.answered_cexc + last.answered_rw;
    if (no_solve + last.solver_solves != 0)
      appendf(out,
              "  answered without solve: %llu (exact=%llu cexm=%llu "
              "cexc=%llu rw=%llu) — %.0f%% of checks\n",
              static_cast<unsigned long long>(no_solve),
              static_cast<unsigned long long>(last.answered_exact),
              static_cast<unsigned long long>(last.answered_cexm),
              static_cast<unsigned long long>(last.answered_cexc),
              static_cast<unsigned long long>(last.answered_rw),
              100.0 * static_cast<double>(no_solve) /
                  static_cast<double>(no_solve + last.solver_solves));
  }
  if (run.samples.size() >= 2) {
    // Per-interval rates (the samples carry cumulative counts).
    std::vector<double> done_rate, qps, p99;
    for (std::size_t i = 1; i < run.samples.size(); ++i) {
      const TimeseriesSample& a = run.samples[i - 1];
      const TimeseriesSample& b = run.samples[i];
      const double dt = std::max(1e-9, b.t_s - a.t_s);
      done_rate.push_back(
          static_cast<double>(b.done() - std::min(a.done(), b.done())) / dt);
      qps.push_back(b.solver_qps);
      p99.push_back(static_cast<double>(b.p99_us));
    }
    out += '\n';
    plotRow(out, "progress/s", done_rate, "");
    if (last.has_solver) {
      plotRow(out, "solver qps", qps, "");
      plotRow(out, "p99 latency", p99, "us");
    }
  }
  return out;
}

std::vector<std::string> diffTimeseries(const TimeseriesRun& a,
                                        const TimeseriesRun& b) {
  std::vector<std::string> diffs;
  if (a.header.kind != b.header.kind)
    diffs.push_back("header kind: " + a.header.kind + " vs " + b.header.kind);
  if (a.header.total_work != b.header.total_work)
    diffs.push_back("header total_work: " +
                    std::to_string(a.header.total_work) + " vs " +
                    std::to_string(b.header.total_work));
  if (a.final_record.has_value() != b.final_record.has_value()) {
    diffs.push_back(std::string("ts_final: present in ") +
                    (a.final_record ? "first" : "second") + " run only");
    return diffs;
  }
  if (a.final_record && b.final_record) {
    const std::string ca = canonicalFinal(*a.final_record);
    const std::string cb = canonicalFinal(*b.final_record);
    if (ca != cb)
      diffs.push_back("ts_final (canonicalized): " + ca + " vs " + cb);
  }
  return diffs;
}

}  // namespace rvsym::obs::analyze
