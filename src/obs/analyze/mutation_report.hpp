// Mutation-campaign journal analysis — the offline consumer of the
// JSONL journals rvsym-mutate writes (src/mut/journal.hpp documents the
// format). Pure JSON layer: it deliberately does not link src/mut, so
// the analysis tools can read journals from any build.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/analyze/jsonl.hpp"

namespace rvsym::obs::analyze {

/// One judged mutant, as recorded in the journal.
struct MutationEntry {
  std::string mutant;   ///< stable id, e.g. "dec:slli:b25"
  std::string kind;     ///< "dec" / "stuck" / "swap" / "mem" / "flag"
  std::string op;       ///< target opcode name
  std::string verdict;  ///< "killed" / "survived" / "equivalent"
  unsigned kill_instr_limit = 0;
  std::string kill_message;
  std::string kill_test;  ///< parseSerializedTest format
  std::uint64_t instructions = 0;
  std::uint64_t paths = 0;
  std::uint64_t partial_paths = 0;
  std::uint64_t solver_checks = 0;
  double t_seconds = 0;
  std::uint64_t qc_hits = 0;
  std::uint64_t qc_misses = 0;
};

struct MutationJournal {
  std::string scenario;
  unsigned max_instr_limit = 0;
  std::uint64_t declared_mutants = 0;  ///< header "mutants" count
  std::vector<MutationEntry> entries;
};

/// Parses a journal file. Returns nullopt (with a reason) only when the
/// file is unreadable or the header is missing/foreign. Torn trailing
/// lines from an interrupted campaign and malformed lines are skipped
/// but *reported* through `scan` (JsonlStats::describe renders the
/// warning); duplicated mutant entries (two campaigns racing one
/// journal) keep the first verdict.
std::optional<MutationJournal> loadMutationJournal(
    const std::string& path, std::string* error = nullptr,
    JsonlStats* scan = nullptr);

/// Aggregated verdict counts with the kill/survive breakdown per
/// operator and per mutation kind (the heatmap's data).
struct MutationSummary {
  std::uint64_t killed = 0;
  std::uint64_t survived = 0;
  std::uint64_t equivalent = 0;
  struct Cell {
    std::uint64_t killed = 0;
    std::uint64_t survived = 0;
    std::uint64_t equivalent = 0;
  };
  /// (op, kind) -> verdicts; ops and kinds also appear aggregated under
  /// the "" key of the other dimension.
  std::map<std::string, std::map<std::string, Cell>> by_op_kind;

  double mutationScore() const {
    const std::uint64_t denom = killed + survived;
    return denom == 0 ? 0.0 : static_cast<double>(killed) /
                                  static_cast<double>(denom);
  }
};

MutationSummary summarizeMutationJournal(const MutationJournal& journal);

/// Canonical form of a journal's text for determinism comparison:
/// every line parsed, the timing-dependent fields (t_* / qc_* keys)
/// dropped, members re-serialized in sorted key order. Two campaigns of
/// the same mutant set must canonicalize byte-identically regardless of
/// --jobs (the journal analog of the trace determinism contract).
/// Unparseable lines are kept verbatim so corruption stays visible.
std::string canonicalizeMutationJournal(const std::string& text);

/// Human-readable differences between two journals' deterministic
/// content (verdicts, kill limits, kill tests, counters); empty = equal.
std::vector<std::string> diffMutationJournals(const MutationJournal& a,
                                              const MutationJournal& b);

/// Self-contained HTML report: mutation score headline, survivor list
/// and an op x kind heatmap shaded by kill ratio (the analog of the
/// coverage heatmap; survivors glow, killed cells fade).
std::string renderMutationHtml(const MutationJournal& journal,
                               const std::string& title = "rvsym mutation");
bool writeMutationHtml(const std::string& path,
                       const MutationJournal& journal,
                       const std::string& title = "rvsym mutation");

}  // namespace rvsym::obs::analyze
