// One JSONL line reader for every consumer in the tree.
//
// Before this module, each JSONL consumer (the mutation-journal reader,
// the timeseries loader, rvsym-top's incremental tail, the trace
// path-tree loader) hand-rolled its own getline/partial-buffer loop,
// and each one silently dropped a final line that a killed writer left
// without its terminating newline. The contract here makes that state
// explicit:
//
//  * complete lines (newline-terminated) are delivered in order;
//  * a malformed complete line follows the caller's policy — counted
//    and skipped, or a hard error;
//  * an unterminated final line is still delivered (marked truncated)
//    so a crash-recovery reader can *report* it instead of pretending
//    it never existed. If it does not even parse, the value-level
//    reader records it as a torn tail — never as ordinary malformed
//    data, and never silently.
//
// JsonlDecoder is the incremental core (rvsym-top feeds it chunks of a
// growing stream and simply never calls finish() — an unterminated
// line is "not yet written", not truncated). forEachJsonlLine /
// forEachJsonlValue wrap it for whole files.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "obs/analyze/json_reader.hpp"

namespace rvsym::obs::analyze {

/// What a scan saw beyond the data it delivered. Callers that recover
/// from crashes surface describe() to the user; callers that demand
/// clean input check clean().
struct JsonlStats {
  std::size_t lines = 0;      ///< complete (newline-terminated) lines
  std::size_t delivered = 0;  ///< lines handed to the callback
  std::size_t malformed = 0;  ///< complete lines skipped as unparsable
  /// Stream did not end in '\n' — a writer died mid-line. The tail is
  /// still delivered (truncated=true) if it parses.
  bool truncated_tail = false;
  /// The unterminated tail did not parse as JSON: genuinely torn bytes
  /// whose record is lost. Reported here, not counted as malformed.
  bool torn_tail = false;
  std::string tail;         ///< first bytes of the unterminated tail
  std::string first_error;  ///< "line N: reason" of the first bad line

  bool clean() const { return malformed == 0 && !torn_tail; }
  /// One human-readable warning line ("" when nothing to report).
  std::string describe(const std::string& path) const;
};

/// Incremental JSONL line splitter. feed() buffers a trailing partial
/// line across calls; finish() flushes it as the truncated tail.
class JsonlDecoder {
 public:
  /// `truncated` is true only for the unterminated tail finish() emits.
  using LineFn =
      std::function<void(std::string_view line, std::size_t lineno,
                         bool truncated)>;

  void feed(std::string_view chunk, const LineFn& fn);
  /// End of stream: delivers a buffered unterminated line (truncated =
  /// true) and records it in stats(). Idempotent once drained.
  void finish(const LineFn& fn);
  const JsonlStats& stats() const { return stats_; }
  void reset();

 private:
  std::string partial_;
  std::size_t lineno_ = 0;
  JsonlStats stats_;
};

/// Policy for a *complete* line that fails to parse as JSON. The
/// unterminated tail is exempt: it is always reported via stats, never
/// an error (crash recovery must be able to read past it).
enum class JsonlMalformed {
  Skip,  ///< count it, record first_error, keep going
  Fail,  ///< stop and report the error
};

/// Streams every line of `path` (including a truncated tail) through
/// `fn`. Returns nullopt only when the file cannot be opened.
std::optional<JsonlStats> forEachJsonlLine(const std::string& path,
                                           const JsonlDecoder::LineFn& fn,
                                           std::string* error = nullptr);

/// Parsed-value variant: empty lines are skipped, parse failures follow
/// `policy`, and an unparsable truncated tail becomes stats.torn_tail.
/// Returns nullopt on open failure or (policy Fail) on a malformed
/// complete line.
using JsonlValueFn =
    std::function<void(JsonValue&& value, std::size_t lineno)>;
std::optional<JsonlStats> forEachJsonlValue(
    const std::string& path, const JsonlValueFn& fn,
    JsonlMalformed policy = JsonlMalformed::Skip,
    std::string* error = nullptr);

}  // namespace rvsym::obs::analyze
