#include "obs/analyze/coverage_map.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace rvsym::obs::analyze {

std::optional<symex::TestVector> parseSerializedTest(const std::string& s) {
  symex::TestVector tv;
  std::istringstream in(s);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    const std::size_t colon = token.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos || eq == 0)
      return std::nullopt;
    symex::TestValue v;
    v.name = token.substr(0, eq);
    char* end = nullptr;
    v.width = static_cast<unsigned>(
        std::strtoul(token.c_str() + eq + 1, &end, 10));
    if (end != token.c_str() + colon) return std::nullopt;
    v.value = std::strtoull(token.c_str() + colon + 1, &end, 16);
    if (end != token.c_str() + token.size()) return std::nullopt;
    tv.values.push_back(std::move(v));
  }
  return tv;
}

core::CoverageCollector coverageFromTree(const PathTree& tree) {
  core::CoverageCollector cov;
  for (const auto& [id, n] : tree.nodes()) {
    if (!n.ended) continue;
    // Reassemble the record shape the collector consumes: vector + tags.
    symex::PathRecord record;
    record.tags = n.tags;
    if (n.has_test && !n.test.empty()) {
      if (std::optional<symex::TestVector> tv = parseSerializedTest(n.test)) {
        record.test = std::move(*tv);
        record.has_test = true;
      }
    }
    cov.addPathRecord(record);
  }
  return cov;
}

std::string renderHtmlReport(const core::CoverageCollector& coverage,
                             const PathTree* tree, const std::string& title) {
  // Headline numbers rendered server-side; the decoder grid client-side
  // from the embedded JSON (a <script type="application/json"> island —
  // self-contained, no external assets, works from file://).
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>" << obs::jsonEscape(title) << "</title>\n"
     << "<style>\n"
        "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n"
        "h1{font-size:1.4em}\n"
        ".grid{display:grid;grid-template-columns:repeat(8,1fr);gap:4px;"
        "max-width:64em}\n"
        ".cell{padding:6px;border-radius:4px;font-size:0.8em;"
        "text-align:center;border:1px solid #ccc}\n"
        ".hit{background:#2e7d32;color:#fff}\n"
        ".hot{background:#1b5e20;color:#fff}\n"
        ".miss{background:#ffcdd2}\n"
        ".section{margin-top:1.5em}\n"
        "td,th{padding:2px 10px;text-align:left}\n"
        "</style>\n</head>\n<body>\n"
     << "<h1>" << obs::jsonEscape(title) << "</h1>\n";

  os << "<div class=\"section\"><pre>" << coverage.summary() << "</pre></div>\n";
  if (tree) {
    const TreeCounts c = tree->counts();
    os << "<div class=\"section\"><pre>paths=" << c.total()
       << " errors=" << c.error << " tests=" << c.tests
       << " solver_us=" << tree->totalUs("solver") << "</pre></div>\n";
  }

  const std::string holes = coverage.holeReport();
  if (!holes.empty())
    os << "<div class=\"section\"><h2>Holes</h2><pre>" << holes
       << "</pre></div>\n";

  os << "<div class=\"section\"><h2>Decoder-space heatmap</h2>\n"
     << "<div class=\"grid\" id=\"grid\"></div></div>\n";

  // The full coverage map, embedded verbatim for both the script below
  // and downstream tooling (extract with one grep).
  os << "<script type=\"application/json\" id=\"coverage-data\">\n"
     << coverage.toJson() << "\n</script>\n";

  os << "<script>\n"
        "const data = JSON.parse("
        "document.getElementById('coverage-data').textContent);\n"
        "const grid = document.getElementById('grid');\n"
        "let max = 1;\n"
        "for (const e of data.cells.map) max = Math.max(max, e.hits);\n"
        "for (const e of data.cells.map) {\n"
        "  const d = document.createElement('div');\n"
        "  const cls = e.hits === 0 ? 'miss' : (e.hits >= max / 2 ? 'hot' : "
        "'hit');\n"
        "  d.className = 'cell ' + cls;\n"
        "  d.title = e.class + ' — op=' + e.cell.op + ' f3=' + e.cell.f3 + "
        "' f7=' + e.cell.f7 + ' hits=' + e.hits;\n"
        "  d.textContent = e.opcode + (e.hits ? ' (' + e.hits + ')' : '');\n"
        "  grid.appendChild(d);\n"
        "}\n"
        "</script>\n</body>\n</html>\n";
  return os.str();
}

bool writeHtmlReport(const std::string& path,
                     const core::CoverageCollector& coverage,
                     const PathTree* tree, const std::string& title) {
  std::ofstream out(path);
  if (!out) return false;
  out << renderHtmlReport(coverage, tree, title);
  return static_cast<bool>(out);
}

}  // namespace rvsym::obs::analyze
