// Coverage reconstruction and rendering for the analysis layer.
//
// A path_end trace line carries everything coverage needs: the
// serialized test vector ("name=width:hexvalue") and the run-level tags
// ("trap:<cause>", "voter:<channel>"). This module replays those into a
// core::CoverageCollector — so a coverage map can be produced from the
// JSONL trace alone, with no ktest directory — and renders the
// collector as a self-contained single-file HTML heatmap (the coverage
// JSON embedded verbatim, a small inline script drawing the
// decoder-space grid; no external assets).
#pragma once

#include <optional>
#include <string>

#include "core/coverage.hpp"
#include "obs/analyze/path_tree.hpp"
#include "symex/state.hpp"

namespace rvsym::obs::analyze {

/// Parses a path_end "test" field back into a TestVector. Returns
/// nullopt on malformed input.
std::optional<symex::TestVector> parseSerializedTest(const std::string& s);

/// Replays every ended path of the tree into a coverage collector.
core::CoverageCollector coverageFromTree(const PathTree& tree);

/// Renders the collector (and, when given, tree headline numbers) as a
/// self-contained HTML document. Returns the document text.
std::string renderHtmlReport(const core::CoverageCollector& coverage,
                             const PathTree* tree = nullptr,
                             const std::string& title = "rvsym coverage");

/// Writes renderHtmlReport output to `path`; false on I/O failure.
bool writeHtmlReport(const std::string& path,
                     const core::CoverageCollector& coverage,
                     const PathTree* tree = nullptr,
                     const std::string& title = "rvsym coverage");

}  // namespace rvsym::obs::analyze
