#include "obs/analyze/diff.hpp"

#include <filesystem>
#include <sstream>

#include "obs/analyze/coverage_map.hpp"

namespace rvsym::obs::analyze {

namespace fs = std::filesystem;

std::optional<RunArtifacts> loadRun(const std::string& path,
                                    std::string* error) {
  std::string trace_path = path;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    trace_path.clear();
    for (const char* name : {"trace.jsonl", "run.jsonl"}) {
      const fs::path candidate = fs::path(path) / name;
      if (fs::exists(candidate, ec)) {
        trace_path = candidate.string();
        break;
      }
    }
    if (trace_path.empty()) {
      // Fall back to the only .jsonl file in the directory.
      for (const fs::directory_entry& e : fs::directory_iterator(path, ec)) {
        if (e.path().extension() == ".jsonl") {
          if (!trace_path.empty()) {
            if (error)
              *error = path + ": multiple .jsonl files, name one explicitly";
            return std::nullopt;
          }
          trace_path = e.path().string();
        }
      }
    }
    if (trace_path.empty()) {
      if (error) *error = path + ": no trace (.jsonl) found";
      return std::nullopt;
    }
  }

  std::optional<PathTree> tree = PathTree::fromFile(trace_path, error);
  if (!tree) return std::nullopt;
  RunArtifacts run;
  run.trace_path = trace_path;
  run.tree = std::move(*tree);
  run.coverage = coverageFromTree(run.tree);
  return run;
}

namespace {

std::string joinTags(const std::vector<std::string>& tags) {
  std::string out;
  for (const std::string& t : tags) {
    if (!out.empty()) out += ',';
    out += t;
  }
  return out;
}

void diffTrees(const PathTree& a, const PathTree& b,
               std::vector<std::string>& out) {
  if (a.size() != b.size())
    out.push_back("path count differs: " + std::to_string(a.size()) + " vs " +
                  std::to_string(b.size()));

  for (const auto& [id, na] : a.nodes()) {
    const PathNode* nb = b.node(id);
    const std::string where = "path " + std::to_string(id);
    if (!nb) {
      out.push_back(where + " only in first run");
      continue;
    }
    if (na.parent != nb->parent) {
      out.push_back(where + " parent differs");
      continue;
    }
    if (na.children != nb->children)
      out.push_back(where + " children differ");
    if (na.ended != nb->ended) {
      out.push_back(where + (na.ended ? " ended only in first run"
                                      : " ended only in second run"));
      continue;
    }
    if (!na.ended) continue;
    if (na.end != nb->end)
      out.push_back(where + " end differs: " + na.end + " vs " + nb->end);
    if (na.message != nb->message)
      out.push_back(where + " message differs");
    if (na.instructions != nb->instructions)
      out.push_back(where + " instructions differ: " +
                    std::to_string(na.instructions) + " vs " +
                    std::to_string(nb->instructions));
    if (na.decisions != nb->decisions)
      out.push_back(where + " decisions differ");
    if (na.forks != nb->forks) out.push_back(where + " forks differ");
    if (na.solver_checks != nb->solver_checks)
      out.push_back(where + " solver checks differ");
    if (na.has_test != nb->has_test)
      out.push_back(where + " test presence differs");
    else if (na.test != nb->test)
      out.push_back(where + " test vector differs");
    if (na.tags != nb->tags)
      out.push_back(where + " tags differ: [" + joinTags(na.tags) + "] vs [" +
                    joinTags(nb->tags) + "]");
  }
  for (const auto& [id, nb] : b.nodes())
    if (!a.node(id))
      out.push_back("path " + std::to_string(id) + " only in second run");
}

template <typename Set, typename Render>
void diffSets(const Set& a, const Set& b, const std::string& what,
              Render render, std::vector<std::string>& out) {
  for (const auto& v : a)
    if (b.count(v) == 0)
      out.push_back(what + " " + render(v) + " only in first run");
  for (const auto& v : b)
    if (a.count(v) == 0)
      out.push_back(what + " " + render(v) + " only in second run");
}

void diffCoverage(const core::CoverageCollector& a,
                  const core::CoverageCollector& b,
                  std::vector<std::string>& out) {
  const auto opName = [](rv32::Opcode op) {
    return std::string(rv32::opcodeName(op));
  };
  // Reconstruct opcode sets from uncovered (the covered set has no
  // direct getter; uncovered against the fixed universe is equivalent).
  std::set<rv32::Opcode> ua = a.uncoveredOpcodes(), ub = b.uncoveredOpcodes();
  diffSets(ub, ua, "opcode", opName, out);  // in b's holes but not a's = a covers

  const auto cellName = [](const core::DecoderCell& c) { return c.describe(); };
  diffSets(a.coveredCells(), b.coveredCells(), "decoder cell", cellName, out);
  diffSets(a.illegalCellsProbed(), b.illegalCellsProbed(),
           "illegal cell", cellName, out);

  const auto numName = [](auto v) { return std::to_string(v); };
  diffSets(a.csrAddresses(), b.csrAddresses(), "csr address", numName, out);
  diffSets(a.trapCauses(), b.trapCauses(), "trap cause", numName, out);

  const auto strName = [](const std::string& s) { return s; };
  diffSets(a.voterChannels(), b.voterChannels(), "voter channel", strName,
           out);
}

}  // namespace

std::string DiffResult::render() const {
  if (identical()) return "runs identical (deterministic content)\n";
  std::ostringstream os;
  os << differences.size() << " difference(s):\n";
  for (const std::string& d : differences) os << "  " << d << "\n";
  return os.str();
}

DiffResult diffRuns(const RunArtifacts& a, const RunArtifacts& b) {
  DiffResult result;
  diffTrees(a.tree, b.tree, result.differences);
  diffCoverage(a.coverage, b.coverage, result.differences);
  return result;
}

}  // namespace rvsym::obs::analyze
