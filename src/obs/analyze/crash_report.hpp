// Offline loader / renderer for rvsym-crash-v1 bundles (DESIGN.md §12)
// — the analysis-side counterpart of obs/flightrec/crashdump.cpp.
//
// `rvsym-report crash <dir>` loads a bundle and renders the forensics
// view: thread table with stall attribution, the interleaved per-thread
// event timeline, the last solver queries with matched begin/end
// durations, and the in-flight query that was on the SAT solver.
// `rvsym-mutate resume --crash-bundle <dir>` uses the same loader to
// cross-reference the bundle against the journal and name the mutant
// that was being judged when the process died.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rvsym::obs::analyze {

/// One row of the manifest's thread table.
struct CrashThread {
  std::size_t slot = 0;
  std::string name;
  std::uint64_t events = 0;
  bool busy = false;
  std::uint64_t busy_us = 0;  ///< 0 when idle / unknown
  std::uint64_t idle_us = 0;  ///< time since last ring event
  bool inflight = false;
  bool stalled = false;
};

/// One flightrec.jsonl line (already joined with its thread identity).
struct CrashEvent {
  std::size_t slot = 0;
  std::string name;
  std::uint64_t index = 0;
  std::uint64_t t_us = 0;
  std::string ev;  ///< wire kind name ("path_commit", ...)
  std::uint64_t a = 0, b = 0, c = 0;
  std::string tag;
};

/// A fully loaded bundle.
struct CrashBundle {
  std::string dir;
  std::string reason;
  std::string tool;
  int signal = 0;
  std::string signal_name;
  std::uint64_t pid = 0;
  std::uint64_t t_us = 0;  ///< dump time, µs since recorder start

  bool has_journal = false;
  std::string journal_path;
  std::uint64_t journal_judged = 0;

  std::vector<CrashThread> threads;
  std::vector<CrashEvent> events;  ///< all rings, ascending t_us
  std::map<std::size_t, std::string> inflight;  ///< slot -> query text
  std::string stacks;  ///< stacks.txt verbatim ("" when absent)
};

/// Loads `<dir>/manifest.json` + companions. Returns nullopt (with a
/// human-readable *err) when the directory is not a rvsym-crash-v1
/// bundle; missing optional sections (stacks, metrics) are tolerated.
std::optional<CrashBundle> loadCrashBundle(const std::string& dir,
                                           std::string* err = nullptr);

/// One solver query reconstructed from SolverBegin/SolverEnd pairs.
struct QueryTimelineEntry {
  std::size_t slot = 0;
  std::string thread;
  std::uint64_t t_us = 0;  ///< begin time
  std::uint64_t hash_lo = 0, hash_hi = 0;
  std::uint64_t constraints = 0;
  std::string kind;           ///< "check" | "path"
  bool completed = false;     ///< matching SolverEnd seen
  std::uint64_t verdict = 0;  ///< Sat=0 Unsat=1 Unknown=2 (when completed)
  std::uint64_t solve_us = 0;
};

/// Per-thread begin/end matching over the bundle's ring events, oldest
/// first. The final entry of a thread with completed=false is the query
/// that was on its solver when the bundle was written.
std::vector<QueryTimelineEntry> solverQueryTimeline(const CrashBundle& b);

/// A mutant judgement that was begun but not committed: MutantBegin on
/// a slot with no matching MutantVerdict anywhere in the bundle.
struct InFlightMutant {
  std::uint64_t enum_index = 0;  ///< index into the run's enumeration
  std::string id_prefix;         ///< first 16 bytes of the mutant id
  std::size_t slot = 0;
  std::string thread;
  std::uint64_t t_us = 0;  ///< when judging began
};

std::vector<InFlightMutant> inFlightMutants(const CrashBundle& b);

/// The human-readable forensics view (what `rvsym-report crash`
/// prints): header, thread table with stall attribution, interleaved
/// timeline (last `timeline_events` across all threads), last
/// `last_queries` solver queries, in-flight query excerpts.
std::string renderCrashReport(const CrashBundle& b,
                              std::size_t timeline_events = 40,
                              std::size_t last_queries = 8);

}  // namespace rvsym::obs::analyze
