#include "obs/fleet/history.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/analyze/jsonl.hpp"
#include "obs/json.hpp"

namespace rvsym::obs::fleet {

namespace {

namespace fs = std::filesystem;

// Same two-case tail repair as serve::JobStore: a torn tail (writer
// killed mid-line, bytes unparsable) is dropped back to the last
// complete line; a parsable-but-unterminated tail just needs its
// newline so the next append starts a fresh line.
void truncateToLastNewline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t nl = text.rfind('\n');
  const std::size_t keep = nl == std::string::npos ? 0 : nl + 1;
  std::error_code ec;
  fs::resize_file(path, keep, ec);
}

void completeFinalLine(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "a")) {
    std::fputs("\n", f);
    std::fclose(f);
  }
}

}  // namespace

std::string runEnvJson() {
  JsonWriter w;
  w.beginObject();
#if defined(__linux__)
  w.field("os", "linux");
#elif defined(__APPLE__)
  w.field("os", "darwin");
#else
  w.field("os", "unknown");
#endif
#if defined(__x86_64__)
  w.field("arch", "x86_64");
#elif defined(__aarch64__)
  w.field("arch", "aarch64");
#else
  w.field("arch", "unknown");
#endif
#if defined(__clang__)
  w.field("compiler", "clang " + std::to_string(__clang_major__) + "." +
                          std::to_string(__clang_minor__));
#elif defined(__GNUC__)
  w.field("compiler", "gcc " + std::to_string(__GNUC__) + "." +
                          std::to_string(__GNUC_MINOR__));
#else
  w.field("compiler", "unknown");
#endif
  w.field("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
#ifdef NDEBUG
  w.field("assertions", false);
#else
  w.field("assertions", true);
#endif
  w.endObject();
  return w.str();
}

std::string RunRecord::toJsonLine() const {
  JsonWriter w;
  w.beginObject();
  w.field("schema", "rvsym-runs-v1");
  w.field("job", job);
  w.field("kind", kind);
  w.field("scenario", scenario);
  w.field("solver_opt", solver_opt);
  w.field("status", status);
  w.field("units_total", units_total);
  w.field("units_done", units_done);
  w.field("unit_errors", unit_errors);
  w.key("verdicts").beginObject();
  for (const auto& [name, n] : verdicts) w.field(name, n);
  w.endObject();
  w.field("solver_checks", solver_checks);
  w.field("instructions", instructions);
  w.field("qc_sat_solves", qc_sat_solves);
  w.field("qc_hits", qc_hits);
  w.field("qc_misses", qc_misses);
  w.field("t_wall_s", wall_s);
  w.key("env").rawValue(env_json.empty() ? "{}" : env_json);
  w.endObject();
  return w.str();
}

std::optional<RunRecord> RunRecord::fromJson(const analyze::JsonValue& v) {
  if (!v.isObject()) return std::nullopt;
  if (v.getString("schema").value_or("") != "rvsym-runs-v1")
    return std::nullopt;
  RunRecord r;
  r.job = v.getString("job").value_or("");
  if (r.job.empty()) return std::nullopt;
  r.kind = v.getString("kind").value_or("");
  r.scenario = v.getString("scenario").value_or("");
  r.solver_opt = v.getString("solver_opt").value_or("");
  r.status = v.getString("status").value_or("");
  r.units_total = v.getU64("units_total").value_or(0);
  r.units_done = v.getU64("units_done").value_or(0);
  r.unit_errors = v.getU64("unit_errors").value_or(0);
  if (const analyze::JsonValue* verdicts = v.find("verdicts")) {
    for (const auto& [name, n] : verdicts->members())
      if (n.isNumber()) r.verdicts[name] = n.asU64();
  }
  r.solver_checks = v.getU64("solver_checks").value_or(0);
  r.instructions = v.getU64("instructions").value_or(0);
  r.qc_sat_solves = v.getU64("qc_sat_solves").value_or(0);
  r.qc_hits = v.getU64("qc_hits").value_or(0);
  r.qc_misses = v.getU64("qc_misses").value_or(0);
  r.wall_s = v.getNumber("t_wall_s").value_or(0);
  if (const analyze::JsonValue* env = v.find("env")) {
    JsonWriter w;
    w.beginObject();
    for (const auto& [name, val] : env->members()) {
      if (val.isString())
        w.field(name, val.asString());
      else if (val.isBool())
        w.field(name, val.asBool());
      else if (val.isNumber())
        w.field(name, val.asU64());
    }
    w.endObject();
    r.env_json = w.str();
  }
  return r;
}

bool RunHistory::append(const RunRecord& r) {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (!f) return false;
  const std::string line = r.toJsonLine();
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
      std::fputc('\n', f) != EOF && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

std::vector<RunRecord> RunHistory::loadAll(
    std::vector<std::string>* warnings) {
  std::vector<RunRecord> runs;
  std::error_code ec;
  if (!fs::exists(path_, ec)) return runs;

  std::size_t malformed = 0;
  bool torn = false;
  const auto stats = analyze::forEachJsonlLine(
      path_, [&](std::string_view line, std::size_t, bool truncated) {
        if (line.empty()) return;
        const auto v = analyze::parseJson(line);
        if (!v) {
          if (truncated)
            torn = true;
          else
            ++malformed;
          return;
        }
        auto r = RunRecord::fromJson(*v);
        if (r)
          runs.push_back(std::move(*r));
        else
          ++malformed;
      });
  if (!stats) {
    if (warnings) warnings->push_back(path_ + ": unreadable");
    return runs;
  }
  analyze::JsonlStats scan = *stats;
  scan.malformed = malformed;
  scan.torn_tail = torn;
  const std::string note = scan.describe(path_);
  if (!note.empty()) {
    if (warnings) warnings->push_back(note);
    if (scan.torn_tail)
      truncateToLastNewline(path_);
    else if (scan.truncated_tail)
      completeFinalLine(path_);
  }
  return runs;
}

std::string renderHistoryList(const std::vector<RunRecord>& runs) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %-8s %-10s %9s %9s %12s %10s\n",
                "job", "kind", "status", "units", "killed", "solver_chk",
                "t_wall_s");
  out << line;
  for (const RunRecord& r : runs) {
    const auto killed = r.verdicts.find("killed");
    std::snprintf(line, sizeof(line),
                  "%-8s %-8s %-10s %4llu/%-4llu %9llu %12llu %10.2f\n",
                  r.job.c_str(), r.kind.c_str(), r.status.c_str(),
                  static_cast<unsigned long long>(r.units_done),
                  static_cast<unsigned long long>(r.units_total),
                  static_cast<unsigned long long>(
                      killed == r.verdicts.end() ? 0 : killed->second),
                  static_cast<unsigned long long>(r.solver_checks), r.wall_s);
    out << line;
  }
  return out.str();
}

std::string renderHistoryShow(const RunRecord& r) {
  std::ostringstream out;
  out << "job:           " << r.job << "\n"
      << "kind:          " << r.kind << "\n"
      << "scenario:      " << r.scenario << "\n"
      << "solver_opt:    " << r.solver_opt << "\n"
      << "status:        " << r.status << "\n"
      << "units:         " << r.units_done << "/" << r.units_total << "\n"
      << "unit_errors:   " << r.unit_errors << "\n";
  out << "verdicts:     ";
  if (r.verdicts.empty()) out << " (none)";
  for (const auto& [name, n] : r.verdicts) out << " " << name << "=" << n;
  out << "\n";
  out << "solver_checks: " << r.solver_checks << "\n"
      << "instructions:  " << r.instructions << "\n"
      << "qc_sat_solves: " << r.qc_sat_solves << "\n"
      << "qcache:        " << r.qc_hits << " hits / " << r.qc_misses
      << " misses\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", r.wall_s);
  out << "t_wall_s:      " << buf << "\n"
      << "env:           " << (r.env_json.empty() ? "{}" : r.env_json)
      << "\n";
  return out.str();
}

std::optional<std::vector<RegressFinding>> flagRegressions(
    const std::vector<RunRecord>& runs, const std::string& baseline_path,
    const RegressOptions& opts, std::string* error) {
  std::ifstream in(baseline_path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot read baseline " + baseline_path;
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto doc = analyze::parseJson(text);
  if (!doc || doc->getString("schema").value_or("") != "rvsym-bench-run-v1") {
    if (error)
      *error = baseline_path + ": not an rvsym-bench-run-v1 document";
    return std::nullopt;
  }
  // table2 is the mutant-hunt bench: one hunt judges one mutant, the
  // same unit of work a serve campaign shards out, so its median wall
  // time per hunt is the natural per-unit budget anchor.
  const analyze::JsonValue* benches = doc->find("benches");
  double budget_us = 0;
  if (benches) {
    for (const analyze::JsonValue& b : benches->items()) {
      if (b.getString("name").value_or("") != "table2") continue;
      const double wall = b.getNumber("wall_median_us").value_or(0);
      std::uint64_t hunts = 0;
      if (const analyze::JsonValue* report = b.find("report"))
        if (const analyze::JsonValue* payload = report->find("payload"))
          if (const analyze::JsonValue* hlist = payload->find("hunts"))
            hunts = hlist->items().size();
      if (wall > 0 && hunts > 0)
        budget_us = wall / static_cast<double>(hunts);
      break;
    }
  }
  if (budget_us <= 0) {
    if (error)
      *error = baseline_path + ": no usable table2 bench (wall_median_us "
               "and payload.hunts required)";
    return std::nullopt;
  }
  budget_us *= 1.0 + opts.slack_pct / 100.0;

  std::vector<RegressFinding> findings;
  for (const RunRecord& r : runs) {
    if (r.units_done == 0) continue;
    const double per_unit = r.wall_s * 1e6 / static_cast<double>(r.units_done);
    if (per_unit > budget_us)
      findings.push_back({r.job, per_unit, budget_us});
  }
  return findings;
}

}  // namespace rvsym::obs::fleet
