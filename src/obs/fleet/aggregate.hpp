// Fleet-wide metrics aggregation for rvsym-serve (DESIGN.md §14).
//
// Each serve worker periodically serializes its MetricsRegistry (the
// toJson() document) into a metrics_report frame; the daemon parses the
// payload into a RegistrySnapshot and feeds it to a FleetAggregator,
// which keeps the *latest* snapshot per worker id and merges across
// sources on demand:
//
//  * counters  — summed. Worker ids are unique across respawns ("w0",
//    "w1", ... from a monotonic sequence) and a worker's counters are
//    monotone over its lifetime, so summing the last-seen snapshot of
//    every id ever reported yields fleet lifetime totals — a dead
//    worker's contribution is never lost or double-counted.
//  * histograms — bucket-merged via obs::Histogram::merge (power-of-2
//    buckets are identical across processes, so the merge is exact at
//    bucket resolution).
//  * gauges — last-write per worker: a gauge is an instantaneous
//    per-process reading, so the merged view sums the latest per-worker
//    values and keeps the max of the per-worker maxima.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "obs/analyze/json_reader.hpp"
#include "obs/metrics.hpp"

namespace rvsym::obs::fleet {

struct HistogramSnapshot {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

/// One registry frozen at a point in time — the wire form of a worker's
/// metrics and the result type of a fleet merge.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Parses a MetricsRegistry::toJson() document (the payload of a
  /// metrics_report frame). Returns nullopt when `doc` is not an
  /// object; unknown members and malformed instruments are skipped.
  static std::optional<RegistrySnapshot> fromJson(const analyze::JsonValue& doc);
  static std::optional<RegistrySnapshot> fromJsonText(std::string_view text);

  /// Snapshot of a live registry (serialize + reparse — the exposition
  /// path is cold, simplicity wins over a second iteration API).
  static RegistrySnapshot of(const MetricsRegistry& reg);
};

/// Rebuilds a live Histogram from its snapshot, so snapshot consumers
/// (quantile summaries, the merge below) share the one bucket-math
/// implementation in obs::Histogram.
std::unique_ptr<Histogram> toHistogram(const HistogramSnapshot& h);
HistogramSnapshot toSnapshot(const Histogram& h);

/// Latest-snapshot-per-source store + merge (see file comment).
class FleetAggregator {
 public:
  /// Replaces the stored snapshot for `source` (a worker id, or
  /// "daemon" for the daemon's own registry).
  void update(const std::string& source, RegistrySnapshot snap);

  const std::map<std::string, RegistrySnapshot>& sources() const {
    return sources_;
  }

  /// Counters summed, histograms bucket-merged (Histogram::merge),
  /// gauge values summed / maxima maxed across all sources ever seen.
  RegistrySnapshot merged() const;

 private:
  std::map<std::string, RegistrySnapshot> sources_;
};

}  // namespace rvsym::obs::fleet
