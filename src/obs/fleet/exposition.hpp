// Prometheus text exposition (format version 0.0.4) of the fleet
// aggregate — what `rvsym-serve scrape`, the daemon's `metrics` request
// and the `--metrics-listen` HTTP endpoint all serve.
//
// Rendering rules (DESIGN.md §14):
//  * instrument names mangle dots to underscores under an "rvsym_"
//    prefix: counter "qcache.hits" -> "rvsym_qcache_hits_total";
//  * counters render from the merged fleet view as *_total;
//  * gauges render per source with a {worker="..."} label (the merge
//    semantic is last-write per worker — collapsing them would hide
//    exactly what a scraper wants to see);
//  * histograms render cumulatively with power-of-2 `le` bounds, a
//    final +Inf bucket and _sum/_count in microseconds;
//  * per-job series (units done/total, state) carry {job=...} labels
//    with full label escaping.
//
// The output is deterministic: every map is ordered, and no
// time-derived value is rendered, so two scrapes of an idle daemon are
// byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/fleet/aggregate.hpp"

namespace rvsym::obs::fleet {

/// One job's exposition-facing state.
struct JobSeries {
  std::string id;
  std::string kind;   ///< "mutate" | "verify" | "replay"
  std::string state;  ///< "queued" | "running" | "done" | "failed" | ...
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
};

struct ExpositionInput {
  /// Merged fleet view (FleetAggregator::merged(), daemon included).
  RegistrySnapshot fleet;
  /// Per-source snapshots for worker-labeled gauge series.
  std::map<std::string, RegistrySnapshot> workers;
  std::vector<JobSeries> jobs;
};

/// Escapes a Prometheus label value: backslash, double quote and
/// newline (the three bytes the text format cannot carry verbatim).
std::string promEscapeLabel(std::string_view s);

/// "solver.check_us" -> "rvsym_solver_check_us": every byte outside
/// [a-zA-Z0-9_] becomes '_', under the rvsym_ prefix.
std::string promMetricName(std::string_view name);

std::string renderExposition(const ExpositionInput& in);

}  // namespace rvsym::obs::fleet
