// Durable run history for rvsym-serve — runs.rvhx, schema
// rvsym-runs-v1 (DESIGN.md §14).
//
// The daemon appends one JSONL record per finalized job: the job's
// verdict mix, solve counts and cache dispositions aggregated from its
// journal, total judging wall time, and the bench-style build
// environment block — enough to answer "what did this campaign cost"
// long after the per-job journals are compacted away. The file uses
// the same two-case tail repair as the job store (a torn tail from a
// killed daemon is truncated; a parsable unterminated tail gets its
// newline), so appends after a crash never corrupt it.
//
// `rvsym-report history list/show/regress` reads the store offline;
// regress flags runs whose mean per-unit judging wall time exceeds a
// budget derived from a committed rvsym-bench baseline.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/analyze/json_reader.hpp"

namespace rvsym::obs::fleet {

struct RunRecord {
  std::string job;
  std::string kind;      ///< JobSpec kind: mutate | verify | replay
  std::string scenario;
  std::string solver_opt;
  std::string status;    ///< done | failed | cancelled
  std::uint64_t units_total = 0;
  std::uint64_t units_done = 0;
  std::uint64_t unit_errors = 0;
  std::map<std::string, std::uint64_t> verdicts;
  std::uint64_t solver_checks = 0;
  std::uint64_t instructions = 0;
  std::uint64_t qc_sat_solves = 0;
  std::uint64_t qc_hits = 0;
  std::uint64_t qc_misses = 0;
  /// Sum of per-unit judging wall time. t_-prefixed in the serialized
  /// form: timing, not part of the deterministic byte-stable fields.
  double wall_s = 0;
  /// Raw env object ({"os","arch","compiler",...}); runEnvJson() shape.
  std::string env_json;

  /// One rvsym-runs-v1 JSONL line (no trailing newline).
  std::string toJsonLine() const;
  static std::optional<RunRecord> fromJson(const analyze::JsonValue& v);
};

/// Build-environment metadata in the rvsym-bench env-block shape:
/// {"os","arch","compiler","hardware_concurrency","assertions"}.
std::string runEnvJson();

class RunHistory {
 public:
  explicit RunHistory(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Appends one record (flushed). False on I/O failure.
  bool append(const RunRecord& r);

  /// Loads every parsable record, applying the job-store two-case tail
  /// repair first-thing so later appends stay line-aligned: a torn
  /// (unparsable) tail is truncated away, a parsable unterminated tail
  /// gets its newline completed. Repair notes and skipped-line warnings
  /// land in `warnings`. A missing file is an empty history.
  std::vector<RunRecord> loadAll(std::vector<std::string>* warnings = nullptr);

 private:
  std::string path_;
};

std::string renderHistoryList(const std::vector<RunRecord>& runs);
std::string renderHistoryShow(const RunRecord& r);

struct RegressOptions {
  /// Allowed slack over the baseline per-unit budget, in percent.
  double slack_pct = 50.0;
};

struct RegressFinding {
  std::string job;
  double us_per_unit = 0;  ///< observed mean judging time per unit
  double budget_us = 0;    ///< baseline budget incl. slack
};

/// Flags runs whose mean per-unit judging wall time exceeds the
/// baseline budget. The baseline is an rvsym-bench-run-v1 document
/// (bench/baselines/BENCH_smoke.json); the budget is the table2 bench's
/// wall_median_us divided by its hunt count — one hunt judges one
/// mutant, the same unit of work a serve campaign shards — times
/// (1 + slack_pct/100). Returns nullopt (with *error) when the baseline
/// is unreadable or has no usable table2 entry.
std::optional<std::vector<RegressFinding>> flagRegressions(
    const std::vector<RunRecord>& runs, const std::string& baseline_path,
    const RegressOptions& opts, std::string* error = nullptr);

}  // namespace rvsym::obs::fleet
