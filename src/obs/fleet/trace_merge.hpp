// Cross-process Chrome-trace merging (DESIGN.md §14).
//
// A campaign produces one trace file per process: the daemon's own
// spans plus one file per worker, each written with pid 1 and
// timestamps relative to that process's SpanCollector epoch. The
// merger stitches them into a single Chrome Trace Event document:
//
//  * each input file becomes one pid (files sorted by name, so
//    daemon.trace.json precedes worker-*.trace.json), with a
//    process_name metadata event naming the source;
//  * timestamps shift by (file epoch - earliest epoch). Epochs are
//    steady-clock microseconds recorded in otherData.epoch_us — one
//    CLOCK_MONOTONIC timebase per boot shared by every process, so the
//    shifted tracks align on real concurrency;
//  * tids and thread_name metadata pass through per file (tids are
//    already process-local).
//
// The result renders a whole fleet campaign in one Perfetto view with
// job -> shard -> solver-query span nesting intact per worker track.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace rvsym::obs::fleet {

struct TraceMergeStats {
  std::size_t files = 0;    ///< inputs merged
  std::size_t events = 0;   ///< events written (metadata included)
  std::size_t skipped = 0;  ///< inputs skipped (not a chrome-trace doc)
};

/// Merges the given chrome-trace files (in the given order; pid = index
/// + 1) into `out_path`. Returns nullopt (with *error) when no input
/// could be read or the output cannot be written.
std::optional<TraceMergeStats> mergeChromeTraces(
    const std::vector<std::string>& inputs, const std::string& out_path,
    std::string* error = nullptr);

/// Merges every `*.json` file directly under `dir` (sorted by name,
/// the output file itself excluded) into `out_path`.
std::optional<TraceMergeStats> mergeChromeTraceDir(
    const std::string& dir, const std::string& out_path,
    std::string* error = nullptr);

}  // namespace rvsym::obs::fleet
