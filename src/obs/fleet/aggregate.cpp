#include "obs/fleet/aggregate.hpp"

#include <algorithm>

namespace rvsym::obs::fleet {

std::optional<RegistrySnapshot> RegistrySnapshot::fromJson(
    const analyze::JsonValue& doc) {
  if (!doc.isObject()) return std::nullopt;
  RegistrySnapshot snap;
  if (const analyze::JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, v] : counters->members())
      if (v.isNumber()) snap.counters[name] = v.asU64();
  }
  if (const analyze::JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      if (!v.isObject()) continue;
      GaugeSnapshot g;
      g.value = static_cast<std::int64_t>(v.getNumber("value").value_or(0));
      g.max = static_cast<std::int64_t>(v.getNumber("max").value_or(0));
      snap.gauges[name] = g;
    }
  }
  if (const analyze::JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, v] : hists->members()) {
      if (!v.isObject()) continue;
      HistogramSnapshot h;
      h.count = v.getU64("count").value_or(0);
      h.sum_us = v.getU64("sum_us").value_or(0);
      if (const analyze::JsonValue* buckets = v.find("buckets")) {
        for (const analyze::JsonValue& b : buckets->items()) {
          const auto ge = b.getU64("ge_us");
          const auto n = b.getU64("n");
          if (!ge || !n) continue;
          // ge_us is the inclusive lower bound 2^i (0 for bucket 0), so
          // bucketFor() maps it straight back to the bucket index.
          h.buckets[Histogram::bucketFor(*ge)] += *n;
        }
      }
      snap.histograms[name] = h;
    }
  }
  return snap;
}

std::optional<RegistrySnapshot> RegistrySnapshot::fromJsonText(
    std::string_view text) {
  const auto doc = analyze::parseJson(text);
  if (!doc) return std::nullopt;
  return fromJson(*doc);
}

RegistrySnapshot RegistrySnapshot::of(const MetricsRegistry& reg) {
  auto snap = fromJsonText(reg.toJson());
  return snap ? std::move(*snap) : RegistrySnapshot{};
}

std::unique_ptr<Histogram> toHistogram(const HistogramSnapshot& h) {
  auto out = std::make_unique<Histogram>();
  for (unsigned i = 0; i < Histogram::kBuckets; ++i)
    if (h.buckets[i] != 0) out->addRaw(i, h.buckets[i], 0);
  // The per-bucket sample split of the sum is not recorded on the wire;
  // attach the total so mean-based quantile math stays exact.
  out->addRaw(0, 0, h.sum_us);
  return out;
}

HistogramSnapshot toSnapshot(const Histogram& h) {
  HistogramSnapshot out;
  for (unsigned i = 0; i < Histogram::kBuckets; ++i)
    out.buckets[i] = h.bucket(i);
  out.count = h.count();
  out.sum_us = h.sumMicros();
  return out;
}

void FleetAggregator::update(const std::string& source,
                             RegistrySnapshot snap) {
  sources_[source] = std::move(snap);
}

RegistrySnapshot FleetAggregator::merged() const {
  RegistrySnapshot out;
  std::map<std::string, std::unique_ptr<Histogram>> hists;
  for (const auto& [source, snap] : sources_) {
    for (const auto& [name, v] : snap.counters) out.counters[name] += v;
    for (const auto& [name, g] : snap.gauges) {
      GaugeSnapshot& dst = out.gauges[name];
      dst.value += g.value;
      dst.max = std::max(dst.max, g.max);
    }
    for (const auto& [name, h] : snap.histograms) {
      const auto it = hists.find(name);
      if (it == hists.end())
        hists.emplace(name, toHistogram(h));
      else
        it->second->merge(*toHistogram(h));
    }
  }
  for (const auto& [name, h] : hists) out.histograms[name] = toSnapshot(*h);
  return out;
}

}  // namespace rvsym::obs::fleet
