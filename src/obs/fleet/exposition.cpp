#include "obs/fleet/exposition.hpp"

#include <cstdio>

namespace rvsym::obs::fleet {

namespace {

void appendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void appendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void typeLine(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string promEscapeLabel(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string promMetricName(std::string_view name) {
  std::string out = "rvsym_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string renderExposition(const ExpositionInput& in) {
  std::string out;
  out.reserve(4096);
  out += "# rvsym-serve fleet metrics (Prometheus text format 0.0.4).\n";
  out +=
      "# Counters and histograms aggregate over every worker ever spawned "
      "plus the daemon; gauges are per-source.\n";

  for (const auto& [name, v] : in.fleet.counters) {
    const std::string metric = promMetricName(name) + "_total";
    typeLine(out, metric, "counter");
    out += metric;
    out += ' ';
    appendU64(out, v);
    out += '\n';
  }

  // Gauge series keyed by source. Collect the full name set first so a
  // gauge one source never reported still renders for the others under
  // one # TYPE header.
  std::map<std::string, bool> gauge_names;
  for (const auto& [source, snap] : in.workers)
    for (const auto& [name, g] : snap.gauges) gauge_names[name] = true;
  for (const auto& [name, unused] : gauge_names) {
    (void)unused;
    const std::string metric = promMetricName(name);
    typeLine(out, metric, "gauge");
    for (const auto& [source, snap] : in.workers) {
      const auto it = snap.gauges.find(name);
      if (it == snap.gauges.end()) continue;
      out += metric;
      out += "{worker=\"";
      out += promEscapeLabel(source);
      out += "\"} ";
      appendI64(out, it->second.value);
      out += '\n';
    }
  }

  for (const auto& [name, h] : in.fleet.histograms) {
    const std::string metric = promMetricName(name);
    typeLine(out, metric, "histogram");
    std::uint64_t cum = 0;
    // Buckets 0..kBuckets-2 have upper bound 2^(i+1) µs; the overflow
    // bucket folds into +Inf.
    for (unsigned i = 0; i + 1 < Histogram::kBuckets; ++i) {
      cum += h.buckets[i];
      out += metric;
      out += "_bucket{le=\"";
      appendU64(out, 1ull << (i + 1));
      out += "\"} ";
      appendU64(out, cum);
      out += '\n';
    }
    out += metric;
    out += "_bucket{le=\"+Inf\"} ";
    appendU64(out, h.count);
    out += '\n';
    out += metric;
    out += "_sum ";
    appendU64(out, h.sum_us);
    out += '\n';
    out += metric;
    out += "_count ";
    appendU64(out, h.count);
    out += '\n';
  }

  if (!in.jobs.empty()) {
    typeLine(out, "rvsym_job_units_done", "gauge");
    for (const JobSeries& j : in.jobs) {
      out += "rvsym_job_units_done{job=\"" + promEscapeLabel(j.id) +
             "\",kind=\"" + promEscapeLabel(j.kind) + "\"} ";
      appendU64(out, j.units_done);
      out += '\n';
    }
    typeLine(out, "rvsym_job_units_total", "gauge");
    for (const JobSeries& j : in.jobs) {
      out += "rvsym_job_units_total{job=\"" + promEscapeLabel(j.id) +
             "\",kind=\"" + promEscapeLabel(j.kind) + "\"} ";
      appendU64(out, j.units_total);
      out += '\n';
    }
    typeLine(out, "rvsym_job_state", "gauge");
    for (const JobSeries& j : in.jobs) {
      out += "rvsym_job_state{job=\"" + promEscapeLabel(j.id) +
             "\",state=\"" + promEscapeLabel(j.state) + "\"} 1\n";
    }
  }
  return out;
}

}  // namespace rvsym::obs::fleet
