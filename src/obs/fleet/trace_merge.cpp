#include "obs/fleet/trace_merge.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "obs/analyze/json_reader.hpp"
#include "obs/json.hpp"

namespace rvsym::obs::fleet {

namespace {

namespace fs = std::filesystem;

struct InputTrace {
  std::string name;  ///< file stem, used as the process name
  std::uint64_t epoch_us = 0;
  bool has_epoch = false;
  analyze::JsonValue doc;
};

}  // namespace

std::optional<TraceMergeStats> mergeChromeTraces(
    const std::vector<std::string>& inputs, const std::string& out_path,
    std::string* error) {
  TraceMergeStats stats;
  std::vector<InputTrace> traces;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++stats.skipped;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto doc = analyze::parseJson(text);
    if (!doc || !doc->isObject() || !doc->find("traceEvents") ||
        !doc->find("traceEvents")->isArray()) {
      ++stats.skipped;
      continue;
    }
    InputTrace t;
    t.name = fs::path(path).stem().string();
    // "worker-w0.trace" stem -> drop the inner .trace too.
    if (t.name.size() > 6 && t.name.rfind(".trace") == t.name.size() - 6)
      t.name.resize(t.name.size() - 6);
    if (const analyze::JsonValue* other = doc->find("otherData")) {
      if (const auto epoch = other->getU64("epoch_us")) {
        t.epoch_us = *epoch;
        t.has_epoch = true;
      }
      if (const auto name = other->getString("process_name")) t.name = *name;
    }
    t.doc = std::move(*doc);
    traces.push_back(std::move(t));
  }
  if (traces.empty()) {
    if (error) *error = "no chrome-trace inputs found";
    return std::nullopt;
  }

  std::uint64_t min_epoch = UINT64_MAX;
  for (const InputTrace& t : traces)
    if (t.has_epoch) min_epoch = std::min(min_epoch, t.epoch_us);
  if (min_epoch == UINT64_MAX) min_epoch = 0;

  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (std::size_t k = 0; k < traces.size(); ++k) {
    const InputTrace& t = traces[k];
    const std::uint64_t pid = k + 1;
    const std::uint64_t shift = t.has_epoch ? t.epoch_us - min_epoch : 0;

    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", std::uint64_t{0});
    w.key("args").beginObject();
    w.field("name", t.name);
    w.endObject();
    w.endObject();
    ++stats.events;

    for (const analyze::JsonValue& ev : t.doc.find("traceEvents")->items()) {
      if (!ev.isObject()) continue;
      w.beginObject();
      const bool metadata = ev.getString("ph").value_or("") == "M";
      for (const auto& [key, val] : ev.members()) {
        if (key == "pid") {
          w.field("pid", pid);
        } else if (key == "ts" && !metadata && val.isNumber()) {
          w.field("ts", val.asU64() + shift);
        } else {
          w.key(key);
          analyze::writeJson(w, val);
        }
      }
      w.endObject();
      ++stats.events;
    }
    ++stats.files;
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").beginObject();
  w.field("producer", "rvsym-trace-merge");
  w.field("files", static_cast<std::uint64_t>(stats.files));
  w.endObject();
  w.endObject();

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot write " + out_path;
    return std::nullopt;
  }
  out << w.str() << "\n";
  if (!out) {
    if (error) *error = "write failed: " + out_path;
    return std::nullopt;
  }
  return stats;
}

std::optional<TraceMergeStats> mergeChromeTraceDir(const std::string& dir,
                                                   const std::string& out_path,
                                                   std::string* error) {
  std::vector<std::string> inputs;
  std::error_code ec;
  const fs::path out_abs = fs::weakly_canonical(out_path, ec);
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    if (!ent.is_regular_file() || ent.path().extension() != ".json") continue;
    std::error_code ec2;
    if (!out_abs.empty() && fs::weakly_canonical(ent.path(), ec2) == out_abs)
      continue;
    inputs.push_back(ent.path().string());
  }
  if (ec) {
    if (error) *error = "cannot list " + dir;
    return std::nullopt;
  }
  std::sort(inputs.begin(), inputs.end());
  if (inputs.empty()) {
    if (error) *error = "no .json files under " + dir;
    return std::nullopt;
  }
  return mergeChromeTraces(inputs, out_path, error);
}

}  // namespace rvsym::obs::fleet
