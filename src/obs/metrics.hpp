// MetricsRegistry — thread-safe counters, gauges and fixed-bucket
// latency histograms for the symbolic co-simulation engine.
//
// Design constraints (mirrored from the engine's threading model):
//  * record-side calls are lock-free (single atomic RMW) so workers can
//    instrument hot paths — solver checks, per-instruction step times —
//    without serializing on a registry mutex;
//  * instrument handles returned by counter()/gauge()/histogram() are
//    stable for the registry's lifetime (node-based storage), so callers
//    cache the reference once and never re-look-up by name;
//  * one JSON snapshot serializer (obs/json.hpp) that every consumer —
//    EngineReport emission, rvsym-verify --metrics-out, the benches —
//    reuses instead of hand-rolling its own format.
//
// Histograms use fixed power-of-two buckets in microseconds (1us ..
// ~34s), which keeps recording a single clz + atomic increment and makes
// snapshots from different runs directly comparable (identical bounds).
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace rvsym::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t get() const { return v_.load(std::memory_order_relaxed); }
  /// Tracks the maximum value ever set()/sample()d.
  void sampleMax(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency histogram. Bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs sub-microsecond
/// samples, the last bucket absorbs everything above ~17s.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 25;  // 1us .. 2^24us (~16.8s) +overflow

  void record(std::uint64_t micros) {
    buckets_[bucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  void recordSeconds(double s) {
    record(s <= 0 ? 0 : static_cast<std::uint64_t>(s * 1e6));
  }

  static unsigned bucketFor(std::uint64_t micros) {
    unsigned b = 0;
    while (b + 1 < kBuckets && micros >= (1ull << (b + 1))) ++b;
    return b;
  }
  /// Inclusive lower bound of bucket `i` in microseconds.
  static std::uint64_t bucketLowerBound(unsigned i) {
    return i == 0 ? 0 : (1ull << i);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(unsigned i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bucket-wise add of `other` into this histogram — the fleet
  /// aggregation primitive (DESIGN.md §14). Power-of-2 buckets are
  /// identical across histograms, so merging is exact at bucket
  /// resolution: quantiles of the merged histogram match quantiles of
  /// the pooled samples to within one bucket. Safe against concurrent
  /// record() on either side; the merged totals are a snapshot.
  void merge(const Histogram& other) {
    for (unsigned i = 0; i < kBuckets; ++i)
      buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_micros_.fetch_add(other.sumMicros(), std::memory_order_relaxed);
  }

  /// Raw accumulation for rebuilding a histogram from a serialized
  /// snapshot (a metrics_report frame): adds `n` samples to bucket `i`
  /// and `sum_us` microseconds to the sum. Out-of-range buckets clamp
  /// to the overflow bucket.
  void addRaw(unsigned i, std::uint64_t n, std::uint64_t sum_us) {
    if (i >= kBuckets) i = kBuckets - 1;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_micros_.fetch_add(sum_us, std::memory_order_relaxed);
  }

  /// Approximate quantile from the power-of-2 buckets: the inclusive
  /// lower bound of the bucket holding the q-th sample (q in [0,1]).
  /// Resolution is the bucket width — good enough to tell a 100µs p99
  /// from a 10ms one, which is what the summaries are for. Returns 0
  /// for an empty histogram.
  std::uint64_t quantileLowerBound(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      seen += bucket(i);
      if (seen >= quantileRank(q, total)) return bucketLowerBound(i);
    }
    return bucketLowerBound(kBuckets - 1);
  }

  /// Quantile estimate in microseconds with defined edge-case values
  /// (the contract heartbeats, the timeseries sampler and rvsym-top
  /// rely on):
  ///  * empty histogram          -> 0;
  ///  * every sample in ONE bucket (so also a single sample) -> the
  ///    mean sum/count, which is exact for one sample and always lies
  ///    inside the bucket instead of pinning to its boundary;
  ///  * otherwise -> linear interpolation of the q-th sample's rank
  ///    position inside its bucket's [lower, upper) range; the
  ///    overflow bucket has no upper bound and degrades to its lower
  ///    bound.
  /// Concurrent recording can skew the mean-based case by the in-flight
  /// samples — acceptable for the live summaries this feeds.
  std::uint64_t quantileMicros(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    const std::uint64_t rank = quantileRank(q, total);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = bucket(i);
      if (n == 0) continue;
      if (seen + n >= rank) {
        if (n >= total) return sumMicros() / total;
        const std::uint64_t lo = bucketLowerBound(i);
        if (i + 1 >= kBuckets) return lo;  // open-ended overflow bucket
        const std::uint64_t hi = 1ull << (i + 1);
        // Midpoint convention: the k-th of n samples sits at
        // (k - 0.5) / n of the bucket width.
        const double pos =
            (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(n);
        return lo + static_cast<std::uint64_t>(
                        pos * static_cast<double>(hi - lo));
      }
      seen += n;
    }
    return bucketLowerBound(kBuckets - 1);
  }

 private:
  /// 1-based rank of the q-th sample: ceil(q * total) clamped to
  /// [1, total], so q=0.5 over three samples selects the second (the
  /// true median) instead of truncating to the first.
  static std::uint64_t quantileRank(double q, std::uint64_t total) {
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    return rank;
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// RAII stopwatch recording into a histogram on destruction. A null
/// histogram makes the timer a no-op (the disabled-observability path
/// costs one branch and no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_)
      h_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. Thread-safe;
  /// the returned reference is stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON snapshot of every registered instrument:
  ///   {"counters": {...}, "gauges": {name: {"value":V,"max":M}, ...},
  ///    "histograms": {name: {"count":N,"sum_us":S,
  ///                          "buckets":[{"ge_us":B,"n":N}, ...]}, ...}}
  /// Histogram buckets with zero samples are elided.
  std::string toJson() const;

  /// Compact snapshot for periodic sampling: full counters and gauges,
  /// but histograms reduced to count/sum plus interpolated p50/p90/p99
  /// (Histogram::quantileMicros) instead of the bucket vector — the
  /// per-tick payload of the rvsym-timeseries-v1 stream.
  ///   {"counters": {...}, "gauges": {...},
  ///    "hist": {name: {"count":N,"sum_us":S,
  ///             "p50_us":A,"p90_us":B,"p99_us":C}, ...}}
  std::string toSummaryJson() const;

 private:
  mutable std::mutex mu_;  // guards the maps only, never the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rvsym::obs
