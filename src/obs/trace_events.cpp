#include "obs/trace_events.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace rvsym::obs {

SpanCollector::SpanCollector(std::size_t max_spans)
    : epoch_(std::chrono::steady_clock::now()), max_spans_(max_spans) {}

std::uint32_t SpanCollector::threadTrack() {
  // Per-(thread, collector) ids, mirroring PhaseProfiler::threadStack:
  // tests run several collectors in one process and worker threads
  // outlive individual runs.
  thread_local std::unordered_map<const SpanCollector*, std::uint32_t> tracks;
  const auto it = tracks.find(this);
  if (it != tracks.end()) return it->second;
  std::uint32_t id;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    id = next_track_++;
  }
  tracks.emplace(this, id);
  return id;
}

std::uint64_t SpanCollector::sinceEpochUs(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
          .count());
}

void SpanCollector::add(Span s) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(s));
}

void SpanCollector::addEnding(
    std::string name, const char* cat, std::uint64_t dur_us,
    std::vector<std::pair<std::string, std::string>> args) {
  Span s;
  s.name = std::move(name);
  s.cat = cat;
  s.tid = threadTrack();
  const std::uint64_t now = nowUs();
  s.ts_us = now >= dur_us ? now - dur_us : 0;
  s.dur_us = dur_us;
  s.args = std::move(args);
  add(std::move(s));
}

std::uint64_t SpanCollector::epochSteadyUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          epoch_.time_since_epoch())
          .count());
}

std::vector<Span> SpanCollector::drain() {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<Span> out;
  out.swap(spans_);
  return out;
}

std::size_t SpanCollector::size() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

std::uint64_t SpanCollector::dropped() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::vector<Span> SpanCollector::sorted() const {
  std::vector<Span> out;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    out = spans_;
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // enclosing span first
  });
  return out;
}

std::string SpanCollector::toChromeTrace() const {
  const std::vector<Span> spans = sorted();
  std::uint64_t drops;
  std::uint32_t tracks;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    drops = dropped_;
    tracks = next_track_;
  }

  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  // One thread_name metadata event per track. Track 0 is whichever
  // thread touched the collector first — the committer for engine runs.
  for (std::uint32_t t = 0; t < tracks; ++t) {
    w.beginObject();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::uint64_t>(t));
    w.key("args").beginObject();
    w.field("name", t == 0 ? std::string("worker-0 (committer)")
                           : "worker-" + std::to_string(t));
    w.endObject();
    w.endObject();
  }
  for (const Span& s : spans) {
    w.beginObject();
    w.field("name", s.name);
    w.field("cat", s.cat);
    w.field("ph", "X");
    w.field("ts", s.ts_us);
    w.field("dur", s.dur_us);
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::uint64_t>(s.tid));
    if (!s.args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : s.args) w.key(k).rawValue(v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").beginObject();
  w.field("producer", "rvsym");
  w.field("dropped_spans", drops);
  w.endObject();
  w.endObject();
  return w.str();
}

bool SpanCollector::writeChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << toChromeTrace() << "\n";
  return static_cast<bool>(out);
}

}  // namespace rvsym::obs
