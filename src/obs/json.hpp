// Minimal streaming JSON writer — the single serializer every JSON
// emitter in the repo shares (EngineReport, the metrics registry, the
// JSONL trace sink, the bench output files, mismatch-bundle manifests).
// Replaces the hand-rolled fprintf emitters that silently produced
// invalid JSON for strings containing quotes or control characters.
//
// The writer is strictly streaming (no DOM): begin/end object/array,
// key(), value(). Structural commas and escaping are handled here so a
// caller can never emit a syntactically invalid document by forgetting
// either. Doubles are rendered with enough precision to round-trip and
// non-finite values degrade to null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rvsym::obs {

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included). Handles ", \, and all control characters (as \uXXXX).
std::string jsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& nullValue();
  /// Splices a pre-rendered JSON fragment as one value (caller
  /// guarantees validity — used to nest documents).
  JsonWriter& rawValue(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The rendered document. Valid once every begin has been ended.
  const std::string& str() const { return out_; }

 private:
  void beforeValue();

  std::string out_;
  // One frame per open container: true once a first element was written
  // (a comma is needed before the next one).
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace rvsym::obs
