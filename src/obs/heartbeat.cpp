#include "obs/heartbeat.hpp"

#include <cstdarg>
#include <cstdio>

namespace rvsym::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

void HeartbeatSnapshot::readRegistry(MetricsRegistry& registry) {
  has_solver = true;
  Histogram& check = registry.histogram("solver.check_us");
  solver_solves = check.count();
  solver_qps = elapsed_s > 0
                   ? static_cast<double>(solver_solves) / elapsed_s
                   : 0;
  solver_p50_us = check.quantileMicros(0.50);
  solver_p90_us = check.quantileMicros(0.90);
  solver_p99_us = check.quantileMicros(0.99);
  slow_queries = registry.counter("solver.slow_queries").get();
  answered_exact = registry.counter("qcache.hits").get();
  answered_cexm = registry.counter("cexcache.model_hits").get();
  answered_cexc = registry.counter("cexcache.core_hits").get();
  answered_rw = registry.counter("solver.rewrite_decided").get();
  answered_sliced = registry.counter("solver.sliced_solves").get();
  qcache_hits = registry.counter("qcache.hits").get();
  qcache_misses = registry.counter("qcache.misses").get();
}

void HeartbeatSnapshot::readProgress(MetricsRegistry& registry) {
  const std::uint64_t committed =
      registry.counter("engine.paths_committed").get();
  if (committed != 0 || has_paths) {
    has_paths = true;
    paths_done = committed;
    paths_completed = registry.counter("engine.paths_completed").get();
    paths_error = registry.counter("engine.paths_error").get();
    paths_partial = registry.counter("engine.paths_partial").get();
    worklist_depth = static_cast<std::uint64_t>(
        registry.gauge("engine.worklist_depth").get());
    instructions = registry.counter("engine.instructions").get();
  }
  const auto total = static_cast<std::uint64_t>(
      registry.gauge("campaign.total").get());
  if (total != 0 || has_campaign) {
    has_campaign = true;
    mutants_total = total;
    mutants_judged = registry.counter("campaign.judged").get();
    mutants_killed = registry.counter("campaign.killed").get();
    mutants_survived = registry.counter("campaign.survived").get();
    mutants_equivalent = registry.counter("campaign.equivalent").get();
  }
}

double HeartbeatSnapshot::cacheHitRate() const {
  const std::uint64_t answered = answeredWithoutSolve() + solver_solves;
  return answered == 0 ? 0
                       : static_cast<double>(answeredWithoutSolve()) /
                             static_cast<double>(answered);
}

std::string formatHeartbeatLine(const HeartbeatSnapshot& s,
                                const char* prefix) {
  std::string out;
  appendf(out, "[%s] t=%.1fs", prefix, s.elapsed_s);
  if (s.has_paths) {
    appendf(out,
            " paths=%llu (completed=%llu errors=%llu partial=%llu)"
            " worklist=%llu instr=%llu",
            static_cast<unsigned long long>(s.paths_done),
            static_cast<unsigned long long>(s.paths_completed),
            static_cast<unsigned long long>(s.paths_error),
            static_cast<unsigned long long>(s.paths_partial),
            static_cast<unsigned long long>(s.worklist_depth),
            static_cast<unsigned long long>(s.instructions));
  }
  if (s.has_campaign) {
    appendf(out,
            " mutants=%llu/%llu killed=%llu survived=%llu equivalent=%llu"
            " remaining=%llu",
            static_cast<unsigned long long>(s.mutants_judged),
            static_cast<unsigned long long>(s.mutants_total),
            static_cast<unsigned long long>(s.mutants_killed),
            static_cast<unsigned long long>(s.mutants_survived),
            static_cast<unsigned long long>(s.mutants_equivalent),
            static_cast<unsigned long long>(
                s.mutants_total > s.mutants_judged
                    ? s.mutants_total - s.mutants_judged
                    : 0));
  }
  if (s.has_work) {
    appendf(out, " %s=%llu",
            s.work_label.empty() ? "done" : s.work_label.c_str(),
            static_cast<unsigned long long>(s.work_done));
    if (s.work_total != 0)
      appendf(out, "/%llu", static_cast<unsigned long long>(s.work_total));
  }
  if (s.has_solver) {
    appendf(out, " solver_qps=%.0f", s.solver_qps);
    if (s.solver_solves != 0)
      appendf(out, " p50/p90/p99=%llu/%llu/%lluus",
              static_cast<unsigned long long>(s.solver_p50_us),
              static_cast<unsigned long long>(s.solver_p90_us),
              static_cast<unsigned long long>(s.solver_p99_us));
    if (s.slow_queries != 0)
      appendf(out, " slow_q=%llu",
              static_cast<unsigned long long>(s.slow_queries));
    if (s.answeredWithoutSolve() + s.answered_sliced != 0) {
      appendf(out, " answered exact=%llu cexm=%llu cexc=%llu rw=%llu",
              static_cast<unsigned long long>(s.answered_exact),
              static_cast<unsigned long long>(s.answered_cexm),
              static_cast<unsigned long long>(s.answered_cexc),
              static_cast<unsigned long long>(s.answered_rw));
      if (s.answered_sliced != 0)
        appendf(out, " sliced=%llu",
                static_cast<unsigned long long>(s.answered_sliced));
    }
  }
  if (!s.extra.empty()) {
    out += ' ';
    out += s.extra;
  }
  return out;
}

void emitHeartbeatLine(const HeartbeatSnapshot& s, const char* prefix) {
  std::fprintf(stderr, "%s\n", formatHeartbeatLine(s, prefix).c_str());
  std::fflush(stderr);
}

}  // namespace rvsym::obs
