#include "obs/phase.hpp"

#include <cstdio>
#include <unordered_map>

#include "obs/flightrec/ring.hpp"
#include "obs/trace_events.hpp"

namespace rvsym::obs {

std::vector<PhaseProfiler::Frame>& PhaseProfiler::threadStack() {
  // Per-(thread, profiler) stacks: tests run several profilers in one
  // process, and worker threads outlive individual runs.
  thread_local std::unordered_map<const PhaseProfiler*,
                                  std::vector<Frame>> stacks;
  return stacks[this];
}

void PhaseProfiler::enter(const char* name) {
  std::vector<Frame>& stack = threadStack();
  // Crash forensics: phase transitions on the flight recorder give a
  // crash bundle its "what was this thread doing" spine (no-op unless a
  // recorder is installed).
  flightrec::emit(flightrec::EventKind::Phase, stack.size() + 1, 0, 0, name);
  stack.push_back(Frame{name, std::chrono::steady_clock::now(), 0});
}

void PhaseProfiler::exit() {
  std::vector<Frame>& stack = threadStack();
  if (stack.empty()) return;  // unbalanced exit: ignore
  const Frame frame = stack.back();
  stack.pop_back();
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - frame.start)
          .count());
  const std::uint64_t self =
      elapsed >= frame.child_us ? elapsed - frame.child_us : 0;
  if (!stack.empty()) stack.back().child_us += elapsed;

  if (spans_ != nullptr) {
    Span sp;
    sp.name = frame.name;
    sp.cat = "phase";
    sp.tid = spans_->threadTrack();
    sp.ts_us = spans_->sinceEpochUs(frame.start);
    sp.dur_us = elapsed;
    spans_->add(std::move(sp));
  }

  std::string key;
  for (const Frame& f : stack) {
    key += f.name;
    key += ';';
  }
  key += frame.name;

  const std::lock_guard<std::mutex> lk(mu_);
  Agg& agg = stacks_[key];
  ++agg.count;
  agg.self_us += self;
}

std::string PhaseProfiler::folded() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[32];
  for (const auto& [stack, agg] : stacks_) {
    out += stack;
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(agg.self_us));
    out += buf;
  }
  return out;
}

std::string PhaseProfiler::canonicalizeFolded(std::string_view text) {
  std::string out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start : nl - start);
    start = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    out += line.substr(0, sp == std::string_view::npos ? line.size() : sp);
    out += " 0\n";
  }
  return out;
}

std::uint64_t PhaseProfiler::distinctStacks() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return stacks_.size();
}

}  // namespace rvsym::obs
