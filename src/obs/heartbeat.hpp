// Heartbeat — the one progress-snapshot type and line formatter behind
// every live-progress surface in the repo.
//
// Before this helper existed, rvsym-verify (via the engines), the
// mutation campaign runner and rvsym-mutate each hand-rolled their own
// stderr progress line; the formats drifted and none of them could be
// reused by a machine consumer. Now every producer fills one
// HeartbeatSnapshot — path-exploration progress, campaign progress,
// generic work-unit progress, and the solver/cache liveness section
// read straight from the shared MetricsRegistry — and both sinks
// consume it:
//
//  * emitLine() renders the classic one-line stderr heartbeat
//    ("[rvsym] t=12.3s paths=... solver_qps=... p50/p90/p99=...");
//  * the TimeseriesSampler (obs/timeseries.hpp) serializes the same
//    snapshot as one rvsym-timeseries-v1 JSONL sample.
//
// Snapshots are wall-clock driven and therefore timing-dependent by
// nature; nothing here feeds the deterministic trace/journal surfaces.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace rvsym::obs {

struct HeartbeatSnapshot {
  double elapsed_s = 0;

  // --- Path exploration (the engines) -----------------------------------
  bool has_paths = false;
  std::uint64_t paths_done = 0;       ///< committed paths (totals - unexplored)
  std::uint64_t paths_completed = 0;
  std::uint64_t paths_error = 0;
  std::uint64_t paths_partial = 0;    ///< error + infeasible + limited
  std::uint64_t worklist_depth = 0;
  std::uint64_t instructions = 0;

  // --- Mutation campaign (rvsym-mutate) ----------------------------------
  bool has_campaign = false;
  std::uint64_t mutants_total = 0;
  std::uint64_t mutants_judged = 0;
  std::uint64_t mutants_killed = 0;
  std::uint64_t mutants_survived = 0;
  std::uint64_t mutants_equivalent = 0;

  // --- Generic done-vs-total work units (bench suite, journal loads) -----
  bool has_work = false;
  std::string work_label;             ///< e.g. "benches", "queries"
  std::uint64_t work_done = 0;
  std::uint64_t work_total = 0;       ///< 0 = open-ended

  // --- Solver + cache liveness (readRegistry) ----------------------------
  bool has_solver = false;
  std::uint64_t solver_solves = 0;    ///< real SAT solves (check_us count)
  double solver_qps = 0;              ///< solves / elapsed_s
  std::uint64_t solver_p50_us = 0;
  std::uint64_t solver_p90_us = 0;
  std::uint64_t solver_p99_us = 0;
  std::uint64_t slow_queries = 0;
  // Disposition split: how checks were answered without a full solve
  // (DESIGN.md §10) plus the sliced subset of real solves.
  std::uint64_t answered_exact = 0;
  std::uint64_t answered_cexm = 0;
  std::uint64_t answered_cexc = 0;
  std::uint64_t answered_rw = 0;
  std::uint64_t answered_sliced = 0;
  std::uint64_t qcache_hits = 0;
  std::uint64_t qcache_misses = 0;

  /// Annotator output (live coverage, campaign counters) appended
  /// verbatim to the line and carried as the "extra" sample field.
  std::string extra;

  /// Fills the solver/cache section (and has_solver) from the shared
  /// registry's instruments. Safe while workers are recording; lookups
  /// create missing instruments at zero, which is harmless.
  void readRegistry(MetricsRegistry& registry);

  /// Fills the paths / campaign sections from the engine.* and
  /// campaign.* instruments the engines and the campaign runner keep
  /// updated (timeseries samplers run on their own thread, so registry
  /// counters are their only race-free view of progress). Sections stay
  /// disabled when their instruments were never touched.
  void readProgress(MetricsRegistry& registry);

  std::uint64_t answeredWithoutSolve() const {
    return answered_exact + answered_cexm + answered_cexc + answered_rw;
  }
  /// Cache-layer hit rate over all answered checks (0 when none).
  double cacheHitRate() const;
};

/// Renders the canonical single-line heartbeat (no trailing newline).
/// `prefix` names the producer: "rvsym" for engine runs, "campaign" for
/// the mutation runner, "bench"/"replay"/"report" for the CLIs.
std::string formatHeartbeatLine(const HeartbeatSnapshot& s,
                                const char* prefix);

/// formatHeartbeatLine + write to stderr + explicit flush (heartbeats
/// exist to be watched; stderr is block-buffered under redirection).
void emitHeartbeatLine(const HeartbeatSnapshot& s, const char* prefix);

}  // namespace rvsym::obs
